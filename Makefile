# Developer entry points. `make ci` is the full local gate; the repo's
# tier-1 check remains `go build ./... && go test ./...` (see ROADMAP.md).

GO ?= go

.PHONY: build test race bench bench-json vet lint lint-sarif lint-check ci golden trace-check fuzz-short cover sweep-check replay-check perf-check manifest-check serve-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The -race run includes the 16-goroutine cache/tuner hammer in
# internal/core and the cold-vs-warm parallelism golden in
# internal/experiments.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Machine-readable perf trajectory (DESIGN.md §3g): BENCH_compiled.json
# records ns/op, allocs/op and simulated-DRAM MB/s for the compiled-vs-
# interpreted engine benchmarks; BENCH_sweep.json records the canonical
# pruned design-space sweep's throughput and pruned fraction (§3h). CI runs
# one iteration per benchmark — enough to prove the harness and refresh the
# artifacts; quote numbers from a longer run (`make bench-json BENCHTIME=2s`).
BENCHTIME ?= 1x
bench-json:
	$(GO) run ./cmd/benchjson -benchtime $(BENCHTIME) -o BENCH_compiled.json -sweep-o BENCH_sweep.json -serve-o BENCH_serve.json

# Observability gate: the disabled trace path must not allocate or change
# results, and the Chrome-trace export must match the goldens byte for byte
# (regenerate with `go test ./internal/trace/ -run Golden -update`).
trace-check:
	$(GO) test ./internal/trace/ -run 'TestDisabledPathZeroAllocs|TestTracingDoesNotChangeResults|TestGoldenTraceJSON' -count=1

# Project-specific static analysis (see DESIGN.md §3e, §3j): determinism
# and zero-overhead invariants checked at compile time by cmd/igolint,
# including the interprocedural detflow proof that no cycle-domain entry
# point reaches wall-clock or ambient randomness. Part of `make ci` but
# deliberately not of tier-1 (`go build && go test`) so a new analyzer can
# land stricter than the tree without breaking the build; the analyzers'
# own unit tests still run under plain `go test ./...`. The run is held to
# a wall-time budget (exit 3 past it) and records its timing in the run
# manifest's wall domain.
LINT_BUDGET ?= 60s
lint:
	$(GO) run ./cmd/igolint -budget $(LINT_BUDGET) -manifest results/lint_manifest.json ./...

# Findings as a SARIF 2.1.0 artifact for code-scanning UIs.
lint-sarif:
	$(GO) run ./cmd/igolint -sarif results/lint.sarif ./...

# Lint-gate-has-teeth check (DESIGN.md §3j): igolint lints internal/lint
# itself, a pristine tree copy lints clean, and an injected two-hop
# time.Now leak must fail with the full interprocedural call chain.
lint-check:
	sh scripts/lint_check.sh

# Native fuzzing against the property-suite generators (DESIGN.md §3f).
# The seed corpus lives in internal/proptest/testdata/fuzz/; 30 seconds per
# target is enough to replay it and mutate a few hundred thousand inputs.
# Go allows one -fuzz pattern per invocation, hence four runs.
FUZZTIME ?= 30s
fuzz-short:
	$(GO) test ./internal/proptest/ -run '^$$' -fuzz '^FuzzBackwardSchedules$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/proptest/ -run '^$$' -fuzz '^FuzzTilingCounts$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/proptest/ -run '^$$' -fuzz '^FuzzSPMResidency$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/proptest/ -run '^$$' -fuzz '^FuzzCompiledEngine$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/proptest/ -run '^$$' -fuzz '^FuzzResolvedReplay$$' -fuzztime $(FUZZTIME)

# Design-space exploration gate (DESIGN.md §3h): internal/dse's unit and
# property tests, then an end-to-end CLI check that a pruned sweep's
# simulated rows match an unpruned sweep's byte for byte and that a sweep
# killed after one shard resumes to a byte-identical CSV.
sweep-check:
	$(GO) test ./internal/dse/ ./internal/analytic/ -count=1
	sh scripts/sweep_check.sh

# Two-phase executor gate (DESIGN.md §3l): the pruned, residency-cached
# canonical sweep must be byte-identical across -j 1/-j 8 and to an
# unpruned engine-only sweep (-residency-cache 0), and an injected
# one-cycle replay skew must fail the comparison naming the CSV column.
replay-check:
	sh scripts/replay_check.sh

# Perf-regression gate (DESIGN.md §3i): regenerate the BENCH_*.json
# artifacts into a temp dir and igostat-diff them against the committed
# baselines. Wall-clock leaves are tolerance-open (1x benchtime is noise);
# allocs/op and sweep counts gate at zero. Runs before bench-json in `ci`
# so the committed baselines are still pristine when compared. Move a
# number deliberately with `make bench-json` in the same change.
perf-check:
	sh scripts/perf_check.sh

# Simulation-service gate (DESIGN.md §3k): the serve + loadtest suites
# under -race (body determinism across -j1/-j8 replay, error paths, cache
# semantics), then a fresh fixed-seed load test igostat-diffed against
# BENCH_serve.json — exact counts and the response-body digest at zero
# tolerance, latency/throughput leaves wall-open — plus an injected p99
# regression that must fail the gate by name.
serve-check:
	sh scripts/serve_check.sh

# Manifest determinism gate (DESIGN.md §3i): igosim -manifest must write
# byte-identical files at -j 1 and -j 8, igostat must self-diff clean, and
# a one-cycle corruption must be caught by name.
manifest-check:
	$(GO) test ./internal/metrics/ -run 'TestManifest' -count=1
	sh scripts/manifest_check.sh

# Coverage profile across all packages; prints the total percentage that
# README.md records under "Testing".
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./... ./...
	$(GO) tool cover -func=coverage.out | tail -1

ci: vet build race bench perf-check serve-check bench-json trace-check lint lint-check manifest-check sweep-check replay-check cover fuzz-short

# Full-suite determinism check: regenerates every figure twice (cold at
# -j 8, warm at -j 1) and demands byte-identical reports. Takes minutes.
golden:
	IGOSIM_GOLDEN_ALL=1 $(GO) test -run TestAllByteIdenticalAcrossParallelism -timeout 30m -v ./internal/experiments/
