#!/bin/sh
# manifest-check: end-to-end determinism gate for run manifests, run by
# `make manifest-check` as part of `make ci`.
#
#   1. igosim -manifest at -j 1 and -j 8 must write byte-identical files:
#      everything a manifest carries is cycle-domain by construction.
#   2. igostat diff of a manifest against itself must exit 0.
#   3. A manifest with one corrupted counter (total_cycles off by one) must
#      make igostat exit non-zero and name the metric.
#
# The same properties are unit-tested in internal/metrics; this script
# complements them by going through the real CLIs, flag parsing and files.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

run="$GO run ./cmd/igosim -config small -model all -policy partition"

$run -j 1 -manifest "$dir/j1.json" > /dev/null
$run -j 8 -manifest "$dir/j8.json" > /dev/null
if cmp -s "$dir/j1.json" "$dir/j8.json"; then
    echo "manifest-check: manifest byte-identical at -j 1 and -j 8"
else
    echo "manifest-check: FAIL: manifest differs across -j:" >&2
    diff "$dir/j1.json" "$dir/j8.json" | head >&2
    exit 1
fi

if $GO run ./cmd/igostat diff "$dir/j1.json" "$dir/j8.json" -q; then
    echo "manifest-check: igostat self-diff clean"
else
    echo "manifest-check: FAIL: igostat self-diff regressed" >&2
    exit 1
fi

# Corrupt the first total_cycles by one cycle; the gate must catch it and
# say which metric moved.
cycles=$(sed -n 's/.*"total_cycles": \([0-9]*\).*/\1/p' "$dir/j1.json" | head -1)
if [ -z "$cycles" ]; then
    echo "manifest-check: FAIL: no total_cycles field in manifest" >&2
    exit 1
fi
sed "0,/\"total_cycles\": $cycles/s//\"total_cycles\": $((cycles + 1))/" \
    "$dir/j1.json" > "$dir/bad.json"
if out=$($GO run ./cmd/igostat diff "$dir/j1.json" "$dir/bad.json" 2>&1); then
    echo "manifest-check: FAIL: one-cycle corruption passed the gate" >&2
    exit 1
fi
if ! printf '%s\n' "$out" | grep -q 'total_cycles'; then
    echo "manifest-check: FAIL: regression report does not name total_cycles:" >&2
    printf '%s\n' "$out" >&2
    exit 1
fi
echo "manifest-check: one-cycle corruption caught and named"
