#!/bin/sh
# serve-check: the simulation-service gate, run by `make serve-check` as
# part of `make ci`. Three stages:
#
#   1. The serve + loadtest test suites under -race: response-body
#      determinism across -j1/-j8 replay, error paths, cache semantics
#      (LRU bound, doorkeeper admission, singleflight collapse), client
#      disconnects, draining.
#   2. Regenerate BENCH_serve.json into a temp dir with the canonical
#      fixed-seed load test and igostat-diff it against the committed
#      baseline. The Cycle half (requests, distinct_keys, errors,
#      body_digest, hit_rate) gates at exactly zero — any drift in a
#      response body anywhere in the request space changes the digest and
#      fails here. The Wall half (p50_us, p99_us, rps, wall_seconds) is
#      tolerance-open: shared CI hosts are noise.
#   3. Gate-has-teeth: a copy with p99_us multiplied 1000x must fail an
#      igostat diff run at a finite wall tolerance (50%), naming p99_us —
#      proving the latency leaves are wired into the gate, not ignored.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

$GO test -race ./internal/serve/ ./internal/serve/loadtest/ -count=1
echo "serve-check: race suite passed"

$GO run ./cmd/benchjson -o '' -sweep-o '' -serve-o "$dir/BENCH_serve.json" > /dev/null

TOL='wall=100000%'
if $GO run ./cmd/igostat diff BENCH_serve.json "$dir/BENCH_serve.json" -tol "$TOL"; then
    echo "serve-check: BENCH_serve.json matches the committed baseline"
else
    echo "serve-check: FAIL: serve results drifted from the committed baseline" >&2
    echo "serve-check: (a body_digest change means some response body changed; regenerate" >&2
    echo "serve-check: the baseline deliberately with 'make bench-json' in the same change)" >&2
    exit 1
fi

# Gate-has-teeth: inflate p99 1000x in a copy of the fresh artifact and
# require igostat to reject it at a finite wall tolerance, naming p99_us.
awk '!done && /"p99_us"/ { sub(/: [0-9.]+/, sprintf(": %d", 1000 * $2)); done=1 } { print }' \
    "$dir/BENCH_serve.json" > "$dir/BENCH_bad.json"
if out=$($GO run ./cmd/igostat diff "$dir/BENCH_serve.json" "$dir/BENCH_bad.json" -tol 'wall=50%' 2>&1); then
    echo "serve-check: FAIL: injected p99 regression passed the gate" >&2
    exit 1
fi
if ! printf '%s\n' "$out" | grep -q 'p99_us'; then
    echo "serve-check: FAIL: regression report does not name p99_us:" >&2
    printf '%s\n' "$out" >&2
    exit 1
fi
echo "serve-check: injected p99 regression caught and named"
