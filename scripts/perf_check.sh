#!/bin/sh
# perf-check: the perf-regression gate, run by `make perf-check` as part of
# `make ci`. Regenerates the machine-readable benchmark artifacts into a
# temporary directory and diffs them against the committed baselines with
# cmd/igostat:
#
#   - wall-clock-derived leaves (ns_op, mb_s, speedup, points_per_sec,
#     wall_seconds, allocs_ratio) get an effectively-open tolerance: CI runs
#     one benchmark iteration, so timing is noise;
#   - allocs/op gets a 0.1% relative tolerance: the interpreted engine's
#     ~56k allocs jitter by a few (runner-pool and GC bookkeeping lands
#     nondeterministically at 1x benchtime), while 0.1% of the compiled
#     rows' 96/8 allocs is still less than one, so a single new allocation
#     on the compiled hot path fails CI;
#   - everything else — sweep point/simulated/frontier counts, pruned
#     fraction — gates at exactly zero. Move a number deliberately by
#     regenerating the baseline (`make bench-json`) in the same change.
#
# The negative path is checked too: a baseline with one extra allocation
# must make igostat exit non-zero and name allocs_op, proving the gate has
# teeth.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

$GO run ./cmd/benchjson -benchtime 1x -o "$dir/BENCH_compiled.json" -sweep-o "$dir/BENCH_sweep.json" -serve-o "$dir/BENCH_serve.json" > /dev/null

TOL='wall=100000%,allocs_op=0.1%'
for f in BENCH_compiled.json BENCH_sweep.json BENCH_serve.json; do
    if $GO run ./cmd/igostat diff "$f" "$dir/$f" -tol "$TOL"; then
        echo "perf-check: $f matches the committed baseline"
    else
        echo "perf-check: FAIL: $f regressed vs the committed baseline" >&2
        exit 1
    fi
done

# Gate-has-teeth check: inject one extra alloc/op into a copy of the fresh
# artifact and require igostat to reject it, naming the metric.
awk '!done && /"allocs_op"/ { sub(/: [0-9]+/, ": 1000000"); done=1 } { print }' \
    "$dir/BENCH_compiled.json" > "$dir/BENCH_bad.json"
if out=$($GO run ./cmd/igostat diff "$dir/BENCH_compiled.json" "$dir/BENCH_bad.json" -tol "$TOL" 2>&1); then
    echo "perf-check: FAIL: injected alloc regression passed the gate" >&2
    exit 1
fi
if ! printf '%s\n' "$out" | grep -q 'allocs_op'; then
    echo "perf-check: FAIL: regression report does not name allocs_op:" >&2
    printf '%s\n' "$out" >&2
    exit 1
fi
echo "perf-check: injected alloc regression caught and named"
