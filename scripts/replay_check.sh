#!/bin/sh
# replay-check: end-to-end gate for the two-phase (resolve/replay) executor
# (DESIGN.md §3l), run by `make replay-check` as part of `make ci`.
#
#   1. Parallelism independence: the pruned, residency-cached canonical
#      sweep must write byte-identical CSVs at -j 1 and -j 8 — worker
#      scheduling decides which point resolves a shared trace first, and
#      that choice must never show in the results.
#   2. Replay exactness: every row the cached sweep simulates must be
#      byte-identical to the row an unpruned engine-only sweep
#      (-residency-cache 0, every point runs the full hit/miss recurrence)
#      produces for that point.
#   3. Teeth: a one-cycle replay coefficient skew (-replay-skew 1) must
#      make the comparison fail, and the report must name the CSV column
#      that moved.
#
# The grid is the canonical 240-point benchmark grid (-canonical), the same
# population BENCH_sweep.json is measured on, so the gate covers exactly
# the configuration whose speedup this subsystem exists to provide.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

sweep="$GO run ./cmd/sweep -canonical -shard-size 60 -wave-size 30"

# 1. Cached sweep CSVs byte-identical across worker counts.
$sweep -j 8 -csv "$dir/j8.csv" > /dev/null
$sweep -j 1 -csv "$dir/j1.csv" > /dev/null
if cmp -s "$dir/j1.csv" "$dir/j8.csv"; then
    echo "replay-check: cached sweep CSV byte-identical at -j 1 and -j 8"
else
    echo "replay-check: FAIL: cached sweep differs between -j 1 and -j 8:" >&2
    diff "$dir/j1.csv" "$dir/j8.csv" | head >&2
    exit 1
fi

# 2. Cached+pruned simulated rows agree with engine-only unpruned rows.
$sweep -prune=false -residency-cache 0 -csv "$dir/engine.csv" > /dev/null
grep ',sim,' "$dir/j8.csv" | sort > "$dir/cached-sim.txt"
sort "$dir/engine.csv" > "$dir/engine-sorted.txt"
if ! comm -23 "$dir/cached-sim.txt" "$dir/engine-sorted.txt" | grep -q .; then
    echo "replay-check: replayed rows byte-identical to engine-only rows"
else
    echo "replay-check: FAIL: cached sweep rows missing from engine-only sweep:" >&2
    comm -23 "$dir/cached-sim.txt" "$dir/engine-sorted.txt" >&2
    exit 1
fi
if ! grep -q ',pruned,' "$dir/j8.csv"; then
    echo "replay-check: FAIL: canonical sweep pruned nothing (gate has no teeth)" >&2
    exit 1
fi

# 3. Teeth: a skewed replay coefficient must be caught by column name.
$sweep -prune=false -replay-skew 1 -csv "$dir/skewed.csv" > /dev/null
if cmp -s "$dir/skewed.csv" "$dir/engine.csv"; then
    echo "replay-check: FAIL: -replay-skew 1 left the sweep unchanged (replay path not exercised?)" >&2
    exit 1
fi
col=$(awk -F, 'NR==FNR { a[FNR] = $0; next }
    a[FNR] != $0 { n = split(a[FNR], f, ","); for (i = 1; i <= n; i++) if (f[i] != $i) { print i; exit } }' \
    "$dir/engine.csv" "$dir/skewed.csv")
name=$(head -1 "$dir/engine.csv" | cut -d, -f"$col")
case "$name" in
base_cycles|igo_cycles)
    echo "replay-check: injected replay skew caught; first differing column: $name" ;;
*)
    echo "replay-check: FAIL: replay skew moved unexpected column $name (want base_cycles or igo_cycles)" >&2
    exit 1 ;;
esac
