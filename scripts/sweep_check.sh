#!/bin/sh
# sweep-check: end-to-end gates for the design-space exploration subsystem
# (cmd/sweep on internal/dse), run by `make sweep-check` as part of `make ci`.
#
#   1. Pruned-vs-unpruned equivalence: every row the pruned sweep simulates
#      must be byte-identical to the unpruned sweep's row for that point.
#   2. Checkpoint kill+resume: a sweep stopped after one shard and resumed
#      from its checkpoint directory must produce a CSV byte-identical to an
#      uninterrupted run's.
#
# The grid is small (64 points of BERT-tiny on the small NPU) so the whole
# script takes a few seconds; the same properties are exercised more deeply
# by internal/dse's unit tests, which this script complements by going
# through the real CLI, flag parsing and CSV writer.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

sweep="$GO run ./cmd/sweep -model bert -suite edge -npu small \
    -bw 8,11,16,22,32,44,64,88 -spm 1,2 -cores 1,2 -tkcap 0 \
    -policy baseline,partition -shard-size 16 -wave-size 8"

# 1. Pruned rows agree with unpruned rows on every simulated point.
$sweep -prune=true  -csv "$dir/pruned.csv"   > /dev/null
$sweep -prune=false -csv "$dir/unpruned.csv" > /dev/null
grep ',sim,' "$dir/pruned.csv" | sort > "$dir/pruned-sim.txt"
sort "$dir/unpruned.csv" > "$dir/unpruned-sorted.txt"
if ! comm -23 "$dir/pruned-sim.txt" "$dir/unpruned-sorted.txt" | grep -q .; then
    echo "sweep-check: pruned/unpruned simulated rows agree"
else
    echo "sweep-check: FAIL: pruned sweep simulated rows missing from unpruned sweep:" >&2
    comm -23 "$dir/pruned-sim.txt" "$dir/unpruned-sorted.txt" >&2
    exit 1
fi
if ! grep -q ',pruned,' "$dir/pruned.csv"; then
    echo "sweep-check: FAIL: pruned sweep pruned nothing (gate has no teeth)" >&2
    exit 1
fi

# 2. Kill after the first shard, resume, compare against an uninterrupted run.
$sweep -checkpoint "$dir/ck" -max-shards 1 -csv /dev/null > /dev/null
$sweep -checkpoint "$dir/ck" -resume -csv "$dir/resumed.csv" > /dev/null
$sweep -csv "$dir/fresh.csv" > /dev/null
if cmp -s "$dir/resumed.csv" "$dir/fresh.csv"; then
    echo "sweep-check: kill+resume CSV byte-identical to uninterrupted run"
else
    echo "sweep-check: FAIL: resumed sweep differs from uninterrupted run" >&2
    diff "$dir/resumed.csv" "$dir/fresh.csv" | head >&2
    exit 1
fi
