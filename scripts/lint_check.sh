#!/bin/sh
# lint-check: the static-analysis gate's gate, run by `make lint-check` as
# part of `make ci`. `make lint` proves the tree is clean; this script
# proves the detflow analyzer has teeth, the same way perf_check.sh proves
# the perf gate does:
#
#   1. igolint must lint its own implementation: an explicit run over the
#      internal/lint packages (the analyzers, the loader, the analysis
#      mirror) must come back clean — the determinism invariants apply to
#      the tool that enforces them;
#   2. a pristine copy of the tree must lint clean, so any failure below is
#      attributable to the injection;
#   3. an injected two-hop wall-clock leak — a time.Now helper planted in
#      internal/schedule, called from a new entry point in internal/sim —
#      must make igolint exit non-zero AND report the full interprocedural
#      chain (sim entry → schedule helper → time.Now), proving the taint
#      propagates across packages and the diagnostic names every hop.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

# 1. Self-lint: the analyzers are cycle-adjacent tooling and must satisfy
# their own invariants.
for p in internal/lint internal/lint/analysis internal/lint/analysistest \
	internal/lint/loader internal/lint/wallclock internal/lint/ctrreg \
	internal/lint/detmap internal/lint/cycleint internal/lint/detflow; do
	pkgs="${pkgs:-} $p"
done
if $GO run ./cmd/igolint $pkgs > /dev/null; then
	echo "lint-check: internal/lint lints itself clean"
else
	echo "lint-check: FAIL: igolint reports findings in internal/lint" >&2
	exit 1
fi

# 2. Pristine copy lints clean (baseline for the injection).
mkdir "$dir/repo"
tar -C . --exclude='.git' --exclude='results' --exclude='coverage.out' \
	-cf - . | tar -C "$dir/repo" -xf -
if (cd "$dir/repo" && $GO run ./cmd/igolint ./... > /dev/null); then
	echo "lint-check: pristine copy lints clean"
else
	echo "lint-check: FAIL: pristine copy does not lint clean" >&2
	exit 1
fi

# 3. Gate-has-teeth: plant the two-hop leak and require the full chain.
cat > "$dir/repo/internal/schedule/zz_injected_leak.go" <<'EOF'
package schedule

import "time"

// InjectedStamp is lint_check.sh's planted leak: a wall-clock read one
// hop below the cycle-domain entry planted in internal/sim.
func InjectedStamp() int64 { return time.Now().UnixNano() }
EOF
cat > "$dir/repo/internal/sim/zz_injected_leak.go" <<'EOF'
package sim

import "igosim/internal/schedule"

// InjectedTick is lint_check.sh's planted cycle-domain entry: it reaches
// the clock only through schedule.InjectedStamp, so the finding must
// carry the full two-hop chain.
func InjectedTick() int64 { return schedule.InjectedStamp() }
EOF
if out=$(cd "$dir/repo" && $GO run ./cmd/igolint ./... 2>&1); then
	echo "lint-check: FAIL: injected two-hop time.Now leak passed the gate" >&2
	exit 1
fi
chain='sim.InjectedTick → schedule.InjectedStamp → time.Now'
if ! printf '%s\n' "$out" | grep -F -q "$chain"; then
	echo "lint-check: FAIL: finding does not carry the full call chain '$chain':" >&2
	printf '%s\n' "$out" >&2
	exit 1
fi
echo "lint-check: injected two-hop leak caught with the full call chain"
