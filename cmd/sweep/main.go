// Command sweep explores the NPU design space: it measures the interleaved
// gradient order's benefit over a grid of DRAM bandwidths, scratchpad sizes,
// core counts, tiling caps and schedule policies, for any zoo model.
// Architects use it to find where on-chip reuse pays (Section 6.4's trend
// study, generalized to millions of points).
//
// The sweep is built on internal/dse: an analytic pruner skips points whose
// lower bounds prove them dominated by an already-simulated point, shards
// checkpoint to disk for kill+resume, and the Pareto frontier over
// (cycles, traffic, reduction) is extracted at the end. Results are
// byte-identical across reruns, worker counts and resumes.
//
// Usage:
//
//	sweep -model res -bw 300,150,75,37.5 -spm 4,8,16 -cores 1
//	sweep -model bert-tiny -suite edge -bw 20:320:250:log -spm 0.5:16:200:log \
//	      -cores 1,2,4,8 -tkcap 0,32,64,128,256 -checkpoint /tmp/ck -csv rows.csv
//	sweep -model res -resume -checkpoint /tmp/ck -csv rows.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"igosim/internal/bench"
	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/dse"
	"igosim/internal/metrics"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/stats"
	"igosim/internal/trace"
	"igosim/internal/workload"
)

// main's clock reads feed the progress line and the points/s summary on
// stderr; sweep results and manifests never see them.
//
//lint:walldomain progress throughput and the summary line are host-time by nature
func main() {
	var (
		modelName = flag.String("model", "res", "model abbreviation (Table 4 or variant: bert-base, T5-base, yolo-s, res18)")
		suiteName = flag.String("suite", "server", "zoo suite for size variants: edge or server")
		npuName   = flag.String("npu", "large", "base NPU preset: small, large or gpu")
		bwList    = flag.String("bw", "300,150,75,37.5", "per-core DRAM bandwidths to sweep, GB/s (comma list and/or lo:hi:n[:log] ranges)")
		spmList   = flag.String("spm", "8", "per-core SPM sizes to sweep, MiB (comma list and/or lo:hi:n[:log] ranges)")
		coreList  = flag.String("cores", "1", "core counts to sweep (integers)")
		tkList    = flag.String("tkcap", "0", "Tk tiling caps to sweep (integers; 0 = engine default)")
		polList   = flag.String("policy", "partition", "schedule policies to sweep: baseline, interleave, rearrange, partition, all")

		prune     = flag.Bool("prune", true, "skip points whose analytic bounds prove them dominated by a simulated point")
		eps       = flag.Float64("eps", -1, "dominance relaxation on the cycle and traffic legs (negative = default)")
		epsRed    = flag.Float64("eps-red", -1, "dominance relaxation on the reduction leg, percentage points/100 (negative = default)")
		budget    = flag.Int("budget", 0, "simulate at most N points, spent where the analytic model is least certain (0 = unlimited)")
		shardSize = flag.Int("shard-size", 0, "points per checkpoint shard (0 = default)")
		waveSize  = flag.Int("wave-size", 0, "points per pruning wave (0 = default)")
		ckptDir   = flag.String("checkpoint", "", "directory for per-shard checkpoint files")
		resume    = flag.Bool("resume", false, "load completed shards from -checkpoint instead of recomputing them")
		maxShards = flag.Int("max-shards", 0, "stop after N shards (for checkpoint testing; 0 = run all)")

		canonical  = flag.Bool("canonical", false, "sweep the canonical benchmark grid (BERT-tiny on the small NPU, 240 points; overrides the model and axis flags)")
		resCache   = flag.String("residency-cache", "", "max resolved residency traces retained by the two-phase executor (0 disables replay entirely; empty = engine default)")
		replaySkew = flag.Int64("replay-skew", 0, "add N cycles to every replayed op's compute time (fault injection for make replay-check; leave at 0)")

		csvPath     = flag.String("csv", "", "write all rows as CSV to this path (\"-\" = stdout)")
		jobs        = flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		traceOut    = flag.String("trace", "", "write Chrome trace-event JSON of the run to this file (view in Perfetto)")
		report      = flag.Bool("report", false, "print the trace-derived report: stall attribution, SPM occupancy, reuse distances")
		compiled    = flag.Bool("compiled", true, "execute schedules on the compiled engine (false = reference interpreter; results are identical)")
		manifest    = flag.String("manifest", "", "write the deterministic run manifest (JSON, prune efficacy) to this file")
		metricsAddr = flag.String("metrics-http", "", "serve live metrics (Prometheus text / ?format=json) on this address, e.g. :9090")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	stopProf, err := metrics.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	sim.SetCompiledDefault(*compiled)
	if *resCache != "" {
		// Strict like the integer axes: "512.5 traces" is a config error,
		// not something to truncate silently.
		n, err := strconv.Atoi(strings.TrimSpace(*resCache))
		if err != nil {
			fatal(fmt.Errorf("-residency-cache: %q is not an integer (this knob takes a whole number of retained traces)", *resCache))
		}
		if n < 0 {
			fatal(fmt.Errorf("-residency-cache: %d is negative (want 0 to disable, or a positive trace count)", n))
		}
		sim.SetResidencyCacheCap(n)
	}
	sim.SetReplaySkew(*replaySkew)
	runner.SetParallelism(*jobs)
	if *metricsAddr != "" {
		// Live scraping wants latency histograms too, so turn wall-clock
		// collection on for the run; the server dies with the process.
		metrics.SetTiming(true)
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: metrics-http:", err)
			}
		}()
	}
	stopTrace := trace.StartCLI(*traceOut, *report)

	var space dse.Space
	if *canonical {
		// The canonical benchmark grid (BENCH_sweep.json, make
		// replay-check): one fixed space shared with internal/bench so CLI
		// checks and recorded numbers describe the same work.
		space = bench.SweepSpace()
	} else {
		model, err := workload.FindModel(*suiteName, *modelName)
		if err != nil {
			fatal(err)
		}
		base, err := basePreset(*npuName)
		if err != nil {
			fatal(err)
		}
		space = dse.Space{Model: model, Base: base}
		if space.BWGBs, err = parseFloatAxis("-bw", *bwList); err != nil {
			fatal(err)
		}
		if space.SPMMiB, err = parseFloatAxis("-spm", *spmList); err != nil {
			fatal(err)
		}
		// Core counts and tiling caps are integer axes: "2.7 cores" is a
		// config error, not something to truncate silently.
		if space.Cores, err = parseIntAxis("-cores", *coreList, 1); err != nil {
			fatal(err)
		}
		if space.TkCaps, err = parseIntAxis("-tkcap", *tkList, 0); err != nil {
			fatal(err)
		}
		if space.Policies, err = parsePolicies(*polList); err != nil {
			fatal(err)
		}
	}
	model := space.Model

	opts := dse.Options{
		Prune: *prune, Eps: *eps, EpsRed: *epsRed, Budget: *budget,
		ShardSize: *shardSize, WaveSize: *waveSize,
		CheckpointDir: *ckptDir, Resume: *resume, MaxShards: *maxShards,
	}
	total := space.Size()
	start := time.Now()
	if total >= 10_000 {
		// Live progress is sourced from the metrics registry: the prune
		// counter is Cycle-domain (deterministic), while throughput and the
		// ETA are wall-clock derivations for the human watching stderr.
		prunedAt := metrics.Value("dse_points_total", "pruned")
		phasesAt := sim.ResolvedPhaseStats()
		opts.Progress = func(done, total int) {
			pruned := metrics.Value("dse_points_total", "pruned") - prunedAt
			phases := sim.ResolvedPhaseStats()
			elapsed := time.Since(start)
			rate := float64(done) / elapsed.Seconds()
			eta := time.Duration(float64(total-done) / rate * float64(time.Second))
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d points (%.1f%%) | pruned %.1f%% | %d resolve %d replay (%.1f%% residency hits) | %.0f points/s | ETA %s",
				done, total, 100*float64(done)/float64(total),
				100*frac(int(pruned), done),
				phases.Resolutions-phasesAt.Resolutions, phases.Replays-phasesAt.Replays,
				100*sim.ResolvedCacheStats().HitRate(), rate, eta.Round(time.Second))
			if done >= total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	res, err := dse.Run(space, opts)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	if *csvPath != "" {
		if err := writeCSV(*csvPath, space, res.Rows); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("design-space sweep: %s (%s), %d points\n", model.Name, model.Abbr, total)
	if !res.Complete {
		fmt.Printf("stopped after -max-shards: %d of %d points processed\n", len(res.Rows), total)
	}
	// Row table only for small grids; a million-point sweep goes to -csv.
	if len(res.Rows) <= 200 && *csvPath != "-" {
		fmt.Println()
		fmt.Print(rowTable(space, res.Rows))
	}
	done := len(res.Rows)
	fmt.Printf("\nsimulated %d | pruned %d (%.1f%%) | skipped %d | over budget %d\n",
		res.Simulated, res.Pruned, 100*frac(res.Pruned, done), res.Skipped, res.Budgeted)
	fmt.Printf("wall %.2fs, %.0f points/s\n", wall.Seconds(), float64(done)/wall.Seconds())
	ph := sim.ResolvedPhaseStats()
	fmt.Printf("two-phase executor: %d resolutions, %d replays (%.1f%% residency-cache hits)\n",
		ph.Resolutions, ph.Replays, 100*sim.ResolvedCacheStats().HitRate())

	if len(res.Frontier) > 0 {
		fmt.Printf("\nPareto frontier (%d points; minimize cycles and traffic, maximize reduction):\n", len(res.Frontier))
		t := stats.NewTable("cores", "bw GB/s", "spm MiB", "tkcap", "policy", "igo cycles", "traffic MiB", "reduction%")
		for _, idx := range res.Frontier {
			r := res.Rows[idx]
			p := space.Point(r.Index)
			t.AddRowF(
				"%d", p.Cores,
				"%.4g", p.BWGB,
				"%.4g", p.SPMMiB,
				"%d", p.TkCap,
				"%s", p.Policy.String(),
				"%d", r.IgoCycles,
				"%.2f", float64(r.Traffic)/float64(1<<20),
				"%.1f", 100*r.Reduction,
			)
		}
		fmt.Print(t)
	}
	if err := stopTrace(); err != nil {
		fatal(err)
	}
	if *manifest != "" {
		m := metrics.NewManifest("sweep")
		if err := m.SetFingerprint(struct {
			Tool        string `json:"tool"`
			Space       string `json:"space"`
			Prune       bool   `json:"prune"`
			Eps, EpsRed float64
			Budget      int  `json:"budget"`
			ShardSize   int  `json:"shard_size"`
			WaveSize    int  `json:"wave_size"`
			Compiled    bool `json:"compiled"`
		}{"sweep", space.Fingerprint(), *prune, *eps, *epsRed, *budget, *shardSize, *waveSize, *compiled}); err != nil {
			fatal(err)
		}
		m.Sweep = &metrics.SweepSummary{
			Points:         total,
			Simulated:      res.Simulated,
			Pruned:         res.Pruned,
			Skipped:        res.Skipped,
			Budgeted:       res.Budgeted,
			PrunedFraction: frac(res.Pruned, len(res.Rows)),
			FrontierSize:   len(res.Frontier),
			Complete:       res.Complete,
		}
		m.Finalize(metrics.Default())
		if err := m.WriteFile(*manifest); err != nil {
			fatal(err)
		}
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func basePreset(name string) (config.NPU, error) {
	switch name {
	case "small":
		return config.SmallNPU(), nil
	case "large":
		return config.LargeNPU(), nil
	case "gpu":
		return config.GPULike(), nil
	}
	return config.NPU{}, fmt.Errorf("unknown -npu preset %q (want small, large or gpu)", name)
}

// parseIntAxis parses a comma-separated integer axis strictly: "2.7" is
// rejected with a clear error instead of being truncated to 2.
func parseIntAxis(flagName, s string, lo int) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %q is not an integer (this axis takes whole numbers only)", flagName, p)
		}
		if v < lo {
			return nil, fmt.Errorf("%s: %d is below the minimum %d", flagName, v, lo)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloatAxis parses a comma-separated float axis; each entry is either a
// positive number or a range lo:hi:n (n evenly spaced points, inclusive) with
// an optional :log suffix for log spacing — "20:320:250:log" is how a sweep
// reaches hundreds of points on one axis without a generated flag string.
func parseFloatAxis(flagName, s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if strings.Contains(p, ":") {
			vals, err := parseRange(p)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", flagName, err)
			}
			out = append(out, vals...)
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("%s: bad entry %q (want a positive number or lo:hi:n[:log])", flagName, p)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseRange expands from:to:n[:log] into n inclusive points. from > to is
// allowed and yields a descending axis. Grid index order is also simulation
// priority across shards, so putting the strongest configurations first
// (e.g. -bw 320:20:250:log) seeds the pruning frontier with the points most
// likely to dominate the rest of the grid.
func parseRange(s string) ([]float64, error) {
	parts := strings.Split(s, ":")
	log := false
	if len(parts) == 4 && parts[3] == "log" {
		log = true
		parts = parts[:3]
	}
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad range %q (want from:to:n[:log])", s)
	}
	from, err1 := strconv.ParseFloat(parts[0], 64)
	to, err2 := strconv.ParseFloat(parts[1], 64)
	n, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || from <= 0 || to <= 0 || n < 1 {
		return nil, fmt.Errorf("bad range %q (want positive from and to, n >= 1)", s)
	}
	if n == 1 {
		return []float64{from}, nil
	}
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / float64(n-1)
		if log {
			out[i] = from * math.Exp(t*math.Log(to/from))
		} else {
			out[i] = from + t*(to-from)
		}
	}
	return out, nil
}

func parsePolicies(s string) ([]core.Policy, error) {
	var out []core.Policy
	for _, p := range strings.Split(s, ",") {
		switch strings.TrimSpace(p) {
		case "baseline":
			out = append(out, core.PolBaseline)
		case "interleave":
			out = append(out, core.PolInterleave)
		case "rearrange":
			out = append(out, core.PolRearrange)
		case "partition":
			out = append(out, core.PolPartition)
		case "all":
			out = append(out, core.Policies()...)
		default:
			return nil, fmt.Errorf("-policy: unknown policy %q (want baseline, interleave, rearrange, partition or all)", p)
		}
	}
	return out, nil
}

func rowTable(space dse.Space, rows []dse.Row) *stats.Table {
	t := stats.NewTable("cores", "bw GB/s", "spm MiB", "tkcap", "policy", "status",
		"cyc LB", "base cyc", "igo cyc", "reduction%", "evict", "spills")
	for _, r := range rows {
		p := space.Point(r.Index)
		status := string(r.Status)
		if r.Status == dse.StatusPruned {
			status = fmt.Sprintf("pruned(#%d)", r.PrunedBy)
		}
		t.AddRowF(
			"%d", p.Cores,
			"%.4g", p.BWGB,
			"%.4g", p.SPMMiB,
			"%d", p.TkCap,
			"%s", p.Policy.String(),
			"%s", status,
			"%d", r.CyclesLB,
			"%d", r.BaseCycles,
			"%d", r.IgoCycles,
			"%.1f", 100*r.Reduction,
			"%d", r.Evictions,
			"%d", r.Spills,
		)
	}
	return t
}

// writeCSV streams every row to path ("-" = stdout) through a buffered
// writer; a million-point sweep writes tens of MB, so rows never pass
// through an in-memory table.
func writeCSV(path string, space dse.Space, rows []dse.Row) error {
	if path == "-" {
		return streamCSV(os.Stdout, space, rows)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := streamCSV(f, space, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func streamCSV(out *os.File, space dse.Space, rows []dse.Row) error {
	w := bufio.NewWriterSize(out, 1<<20)
	fmt.Fprintln(w, "index,cores,bw_gbs,spm_mib,tkcap,policy,status,reason,cycles_lb,traffic_lb,red_cap,balance,pruned_by,base_cycles,igo_cycles,traffic,reduction,evictions,spills")
	for _, r := range rows {
		p := space.Point(r.Index)
		fmt.Fprintf(w, "%d,%d,%g,%g,%d,%s,%s,%s,%d,%d,%.6g,%.6g,%d,%d,%d,%d,%.6g,%d,%d\n",
			r.Index, p.Cores, p.BWGB, p.SPMMiB, p.TkCap, p.Policy.String(),
			r.Status, csvEscape(r.Reason),
			r.CyclesLB, r.TrafficLB, r.RedCap, r.Balance, r.PrunedBy,
			r.BaseCycles, r.IgoCycles, r.Traffic, r.Reduction, r.Evictions, r.Spills)
	}
	return w.Flush()
}

// csvEscape quotes a free-text field (skip reasons carry error strings).
func csvEscape(s string) string {
	if s == "" {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
