// Command sweep explores the NPU design space: it measures the interleaved
// gradient order's benefit over a grid of DRAM bandwidths, scratchpad sizes
// and core counts, for any zoo model. Architects use it to find where
// on-chip reuse pays (Section 6.4's trend study, generalized).
//
// Usage:
//
//	sweep -model res -bw 300,150,75,37.5 -spm 4,8,16 -cores 1
//	sweep -model bert-base -suite server -cores 1,2,4 -csv
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"igosim/internal/analytic"
	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/stats"
	"igosim/internal/trace"
	"igosim/internal/workload"
)

func main() {
	var (
		modelName = flag.String("model", "res", "model abbreviation (Table 4 or variant: bert-base, T5-base, yolo-s, res18)")
		suiteName = flag.String("suite", "server", "zoo suite for size variants: edge or server")
		bwList    = flag.String("bw", "300,150,75,37.5", "per-core DRAM bandwidths to sweep, GB/s")
		spmList   = flag.String("spm", "8", "per-core SPM sizes to sweep, MiB")
		coreList  = flag.String("cores", "1", "core counts to sweep")
		csv       = flag.Bool("csv", false, "emit CSV")
		jobs      = flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		traceOut  = flag.String("trace", "", "write Chrome trace-event JSON of the run to this file (view in Perfetto)")
		report    = flag.Bool("report", false, "print the trace-derived report: stall attribution, SPM occupancy, reuse distances")
		compiled  = flag.Bool("compiled", true, "execute schedules on the compiled engine (false = reference interpreter; results are identical)")
	)
	flag.Parse()
	sim.SetCompiledDefault(*compiled)
	runner.SetParallelism(*jobs)
	stopTrace := trace.StartCLI(*traceOut, *report)

	model, err := workload.FindModel(*suiteName, *modelName)
	if err != nil {
		fatal(err)
	}
	bws, err := parseFloats(*bwList)
	if err != nil {
		fatal(err)
	}
	spms, err := parseFloats(*spmList)
	if err != nil {
		fatal(err)
	}
	cores, err := parseFloats(*coreList)
	if err != nil {
		fatal(err)
	}

	// The full cores x bw x spm grid is flattened and fanned out through
	// the runner; a bad configuration cancels outstanding work and the
	// first (lowest-index) error is reported. Rows come back in grid order
	// regardless of worker count.
	type point struct{ nc, bw, spm float64 }
	var grid []point
	for _, nc := range cores {
		for _, bw := range bws {
			for _, spm := range spms {
				grid = append(grid, point{nc, bw, spm})
			}
		}
	}
	type result struct {
		p         point
		seconds   [2]float64
		ridge     float64
		reduction float64
		evictions int64
		spills    int64
	}
	results, err := runner.MapErr(context.Background(), grid, func(_ context.Context, p point) (result, error) {
		cfg := config.LargeNPU().WithCores(int(p.nc)).WithBandwidth(p.bw * 1e9)
		cfg.SPMBytes = int64(math.Round(p.spm * float64(1<<20)))
		cfg.Name = fmt.Sprintf("sweep-%gc-%gGB-%gMiB", p.nc, p.bw, p.spm)
		if err := cfg.Validate(); err != nil {
			return result{}, err
		}
		base := core.RunTraining(cfg, sim.Options{}, model, core.PolBaseline)
		igo := core.RunTraining(cfg, sim.Options{}, model, core.PolPartition)
		r := result{
			p:         p,
			seconds:   [2]float64{base.Seconds(cfg), igo.Seconds(cfg)},
			ridge:     analytic.Ridge(cfg),
			reduction: core.Improvement(base, igo),
		}
		// Residency pressure of the winning policy's backward pass: how often
		// the LRU set evicted, and how many live partial sums spilled to DRAM.
		for _, l := range igo.Bwd {
			r.evictions += l.SPM.Evictions
			r.spills += l.Spills
		}
		return r, nil
	})
	if err != nil {
		fatal(err)
	}

	t := stats.NewTable("cores", "bw GB/s", "spm MiB", "base ms", "igo ms", "reduction%", "evict", "spills", "ridge MACs/B")
	for _, r := range results {
		t.AddRowF(
			"%.0f", r.p.nc,
			"%.1f", r.p.bw,
			"%.0f", r.p.spm,
			"%.2f", r.seconds[0]*1e3,
			"%.2f", r.seconds[1]*1e3,
			"%.1f", 100*r.reduction,
			"%d", r.evictions,
			"%d", r.spills,
			"%.0f", r.ridge,
		)
	}

	fmt.Printf("design-space sweep: %s (%s)\n\n", model.Name, model.Abbr)
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t)
	}
	if err := stopTrace(); err != nil {
		fatal(err)
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("sweep: bad list entry %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
