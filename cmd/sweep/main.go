// Command sweep explores the NPU design space: it measures the interleaved
// gradient order's benefit over a grid of DRAM bandwidths, scratchpad sizes
// and core counts, for any zoo model. Architects use it to find where
// on-chip reuse pays (Section 6.4's trend study, generalized).
//
// Usage:
//
//	sweep -model res -bw 300,150,75,37.5 -spm 4,8,16 -cores 1
//	sweep -model bert-base -suite server -cores 1,2,4 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"igosim/internal/analytic"
	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/sim"
	"igosim/internal/stats"
	"igosim/internal/workload"
)

func main() {
	var (
		modelName = flag.String("model", "res", "model abbreviation (Table 4 or variant: bert-base, T5-base, yolo-s, res18)")
		suiteName = flag.String("suite", "server", "zoo suite for size variants: edge or server")
		bwList    = flag.String("bw", "300,150,75,37.5", "per-core DRAM bandwidths to sweep, GB/s")
		spmList   = flag.String("spm", "8", "per-core SPM sizes to sweep, MiB")
		coreList  = flag.String("cores", "1", "core counts to sweep")
		csv       = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	model, err := workload.FindModel(*suiteName, *modelName)
	if err != nil {
		fatal(err)
	}
	bws, err := parseFloats(*bwList)
	if err != nil {
		fatal(err)
	}
	spms, err := parseFloats(*spmList)
	if err != nil {
		fatal(err)
	}
	cores, err := parseFloats(*coreList)
	if err != nil {
		fatal(err)
	}

	t := stats.NewTable("cores", "bw GB/s", "spm MiB", "base ms", "igo ms", "reduction%", "ridge MACs/B")
	for _, nc := range cores {
		for _, bw := range bws {
			for _, spm := range spms {
				cfg := config.LargeNPU().WithCores(int(nc)).WithBandwidth(bw * 1e9)
				cfg.SPMBytes = int64(spm * float64(1<<20))
				cfg.Name = fmt.Sprintf("sweep-%gc-%gGB-%gMiB", nc, bw, spm)
				if err := cfg.Validate(); err != nil {
					fatal(err)
				}
				base := core.RunTraining(cfg, sim.Options{}, model, core.PolBaseline)
				igo := core.RunTraining(cfg, sim.Options{}, model, core.PolPartition)
				t.AddRowF(
					"%.0f", nc,
					"%.1f", bw,
					"%.0f", spm,
					"%.2f", base.Seconds(cfg)*1e3,
					"%.2f", igo.Seconds(cfg)*1e3,
					"%.1f", 100*core.Improvement(base, igo),
					"%.0f", analytic.Ridge(cfg),
				)
			}
		}
	}

	fmt.Printf("design-space sweep: %s (%s)\n\n", model.Name, model.Abbr)
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t)
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("sweep: bad list entry %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
