// Command figures regenerates the paper's evaluation artifacts: every
// figure of Sections 3 and 6 plus the Section 4.3 and Section 5 studies.
//
// Usage:
//
//	figures -fig 12         # one experiment (fig3 fig5 fig6 fig12 fig13
//	                        #  fig14 fig15 fig16 fig17 alg1 knn)
//	figures -fig all        # everything, in paper order
//	figures -fig knn -trials 1000
//	figures -fig 12 -csv    # machine-readable table output
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"igosim/internal/experiments"
	"igosim/internal/metrics"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/trace"
)

// main times each experiment for the stderr progress report; figure and
// table bytes are derived from simulation results alone.
//
//lint:walldomain per-experiment wall timings go to stderr only
func main() {
	var (
		fig        = flag.String("fig", "all", "experiment id or 'all': "+strings.Join(experiments.IDs(), " "))
		trials     = flag.Int("trials", experiments.DefaultKNNTrials, "KNN study repetitions")
		seed       = flag.Int64("knn-seed", experiments.DefaultKNNSeed, "KNN study split-shuffle seed")
		csv        = flag.Bool("csv", false, "emit tables as CSV")
		timing     = flag.Bool("time", false, "print wall-clock time per experiment")
		jobs       = flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		traceOut   = flag.String("trace", "", "write Chrome trace-event JSON of the run to this file (view in Perfetto)")
		report     = flag.Bool("report", false, "print the trace-derived report: stall attribution, SPM occupancy, reuse distances")
		compiled   = flag.Bool("compiled", true, "execute schedules on the compiled engine (false = reference interpreter; results are identical)")
		manifest   = flag.String("manifest", "", "write the deterministic run manifest (JSON, report digests) to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	stopProf, err := metrics.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	sim.SetCompiledDefault(*compiled)
	runner.SetParallelism(*jobs)
	stopTrace := trace.StartCLI(*traceOut, *report)

	ids := experiments.IDs()
	if *fig != "all" {
		ids = strings.Split(*fig, ",")
	}

	// Experiments fan out through the runner (each is itself internally
	// parallel, sharing the same worker budget and memo cache); reports are
	// printed afterwards in request order, so output is identical at any -j.
	type timed struct {
		rep     experiments.Report
		elapsed time.Duration
	}
	reports, err := runner.MapErr(context.Background(), ids, func(_ context.Context, id string) (timed, error) {
		start := time.Now()
		var rep experiments.Report
		var err error
		if strings.EqualFold(id, "knn") || strings.EqualFold(id, "sec5") {
			rep = experiments.KNNSelectionSeeded(*trials, *seed)
		} else {
			rep, err = experiments.ByID(id)
			if err != nil {
				return timed{}, err
			}
		}
		return timed{rep: rep, elapsed: time.Since(start)}, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	for _, r := range reports {
		rep := r.rep
		if *csv {
			fmt.Printf("# %s: %s\n%s\n", rep.ID, rep.Title, rep.Table.CSV())
			for _, s := range rep.Summary {
				fmt.Println("#", s)
			}
		} else {
			fmt.Println(rep)
		}
		if *timing {
			fmt.Printf("[%s took %.1fs]\n\n", rep.ID, r.elapsed.Seconds())
		}
	}
	if err := stopTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	if *manifest != "" {
		// Each report is pinned by the content hash of its CSV table plus
		// summary lines: a manifest diff catches any change to an evaluation
		// artifact without embedding the whole table.
		m := metrics.NewManifest("figures")
		if err := m.SetFingerprint(struct {
			Tool     string   `json:"tool"`
			IDs      []string `json:"ids"`
			Trials   int      `json:"trials"`
			Seed     int64    `json:"seed"`
			Compiled bool     `json:"compiled"`
		}{"figures", ids, *trials, *seed, *compiled}); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		for _, r := range reports {
			rep := r.rep
			m.Reports = append(m.Reports, metrics.ReportDigest{
				ID:     rep.ID,
				Title:  rep.Title,
				SHA256: metrics.Digest([]byte(rep.Table.CSV() + "\n" + strings.Join(rep.Summary, "\n"))),
			})
		}
		m.Finalize(metrics.Default())
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
