// Command igolint runs the repo's custom static-analysis suite (see
// internal/lint and DESIGN.md §3e) over the module. It is the compile-time
// complement to `make golden`: the analyzers prove determinism and
// zero-overhead invariants on every path, not just the exercised ones.
//
// Usage:
//
//	igolint [-list] [pattern ...]
//
// Patterns are package directories relative to the module root, or the
// literal "./..." (the default) for the whole module. Test files are not
// analyzed: the invariants govern shipping code. Diagnostics print as
// file:line:col: message (analyzer); the exit status is 1 when any
// diagnostic survives marker suppression, 2 on load or usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"igosim/internal/lint"
	"igosim/internal/lint/analysis"
	"igosim/internal/lint/loader"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := loader.ModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	paths, err := packagePaths(root, flag.Args())
	if err != nil {
		fatal(err)
	}

	l := loader.New(loader.Root{Prefix: "igosim", Dir: root})
	var findings []analysis.Finding
	failed := false
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "igolint: %v\n", err)
			failed = true
			continue
		}
		fs, err := analysis.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "igolint: %s: %v\n", path, err)
			failed = true
			continue
		}
		findings = append(findings, fs...)
	}
	if failed {
		os.Exit(2)
	}
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// packagePaths expands the command-line patterns into module import paths.
func packagePaths(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := walkPackages(root)
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		default:
			dir := strings.TrimSuffix(filepath.ToSlash(filepath.Clean(arg)), "/")
			dir = strings.TrimPrefix(dir, "./")
			abs := filepath.Join(root, filepath.FromSlash(dir))
			if !hasGoFiles(abs) {
				return nil, fmt.Errorf("igolint: no Go files in %s", arg)
			}
			add(pathJoin("igosim", dir))
		}
	}
	sort.Strings(out)
	return out, nil
}

// walkPackages lists every module directory containing non-test Go files.
func walkPackages(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "results") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			out = append(out, pathJoin("igosim", filepath.ToSlash(rel)))
		}
		return nil
	})
	return out, err
}

// hasGoFiles reports whether dir has at least one non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

func pathJoin(mod, rel string) string {
	if rel == "." || rel == "" {
		return mod
	}
	return mod + "/" + rel
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "igolint: %v\n", err)
	os.Exit(2)
}
