// Command igolint runs the repo's custom static-analysis suite (see
// internal/lint and DESIGN.md §3e, §3j) over the module. It is the
// compile-time complement to `make golden`: the analyzers prove
// determinism and zero-overhead invariants on every path, not just the
// exercised ones.
//
// Usage:
//
//	igolint [-list] [-sarif file] [-budget d] [-manifest file] [pattern ...]
//
// Patterns are package directories relative to the module root, or the
// literal "./..." (the default) for the whole module. Test files are not
// analyzed: the invariants govern shipping code.
//
// Packages load serially through the memoizing loader (each package
// type-checks exactly once, shared across all analyzers and dependents),
// then analyze in parallel; findings print position-sorted, so output is
// identical at any parallelism. Diagnostics print as file:line:col:
// message (analyzer). -sarif additionally writes the findings as a SARIF
// 2.1.0 artifact. -budget fails the run when wall time exceeds the given
// duration; -manifest records the timing in a run manifest's wall domain.
//
// Exit status: 0 clean, 1 findings, 2 load or usage errors, 3 budget
// exceeded.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"igosim/internal/lint"
	"igosim/internal/lint/analysis"
	"igosim/internal/lint/loader"
	"igosim/internal/metrics"
)

var (
	lintWallMS   = metrics.NewGauge("lint_wall_ms", "igolint wall time in milliseconds", metrics.Wall)
	lintPackages = metrics.NewGauge("lint_packages", "packages analyzed by igolint", metrics.Cycle)
	lintFindings = metrics.NewGauge("lint_findings", "findings surviving suppression", metrics.Cycle)
)

// main times the run against -budget and records it in the manifest's wall
// domain; findings, ordering and exit status are time-independent.
//
//lint:walldomain wall-time budget accounting only
func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	sarifPath := flag.String("sarif", "", "write findings as a SARIF 2.1.0 log to this file")
	budget := flag.Duration("budget", 0, "fail with exit 3 when the run exceeds this wall time")
	manifestPath := flag.String("manifest", "", "write a run manifest (timing in wall_metrics) to this file")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	start := time.Now()
	root, err := loader.ModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	paths, err := packagePaths(root, flag.Args())
	if err != nil {
		fatal(err)
	}

	// Serial load: the loader memoizes, so every package (named or
	// dependency) type-checks exactly once, then the snapshot is the
	// whole-program view the interprocedural analyzers share.
	l := loader.New(loader.Root{Prefix: "igosim", Dir: root})
	pkgs := make([]*loader.Package, 0, len(paths))
	failed := false
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "igolint: %v\n", err)
			failed = true
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	prog := l.Program()

	// Parallel analysis: packages are independent given the program view;
	// results land at their index, so output order never depends on
	// scheduling.
	perPkg := make([][]analysis.Finding, len(pkgs))
	errs := make([]error, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			perPkg[i], errs[i] = analysis.Run(pkg, prog, analyzers)
		}()
	}
	wg.Wait()

	var findings []analysis.Finding
	for i := range pkgs {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "igolint: %s: %v\n", pkgs[i].Path, errs[i])
			failed = true
			continue
		}
		findings = append(findings, perPkg[i]...)
	}
	if failed {
		os.Exit(2)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})

	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}

	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, analyzers, findings, root); err != nil {
			fatal(err)
		}
	}

	elapsed := time.Since(start)
	lintWallMS.Set(elapsed.Milliseconds())
	lintPackages.Set(int64(len(pkgs)))
	lintFindings.Set(int64(len(findings)))
	if *manifestPath != "" {
		if err := writeManifest(*manifestPath, paths, *budget); err != nil {
			fatal(err)
		}
	}

	switch {
	case len(findings) > 0:
		os.Exit(1)
	case *budget > 0 && elapsed > *budget:
		fmt.Fprintf(os.Stderr, "igolint: wall time %s exceeds budget %s\n",
			elapsed.Round(time.Millisecond), *budget)
		os.Exit(3)
	}
}

func writeSARIF(path string, analyzers []*analysis.Analyzer, findings []analysis.Finding, root string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lint.WriteSARIF(f, analyzers, findings, root); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeManifest(path string, paths []string, budget time.Duration) error {
	m := metrics.NewManifest("igolint")
	if err := m.SetFingerprint(struct {
		Tool   string   `json:"tool"`
		Budget string   `json:"budget"`
		Paths  []string `json:"paths"`
	}{Tool: "igolint", Budget: budget.String(), Paths: paths}); err != nil {
		return err
	}
	m.Finalize(metrics.Default())
	m.FinalizeWall(metrics.Default())
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return m.WriteFile(path)
}

// packagePaths expands the command-line patterns into module import paths.
func packagePaths(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := walkPackages(root)
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		default:
			dir := strings.TrimSuffix(filepath.ToSlash(filepath.Clean(arg)), "/")
			dir = strings.TrimPrefix(dir, "./")
			abs := filepath.Join(root, filepath.FromSlash(dir))
			if !hasGoFiles(abs) {
				return nil, fmt.Errorf("igolint: no Go files in %s", arg)
			}
			add(pathJoin("igosim", dir))
		}
	}
	sort.Strings(out)
	return out, nil
}

// walkPackages lists every module directory containing non-test Go files.
func walkPackages(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "results") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			out = append(out, pathJoin("igosim", filepath.ToSlash(rel)))
		}
		return nil
	})
	return out, err
}

// hasGoFiles reports whether dir has at least one non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

func pathJoin(mod, rel string) string {
	if rel == "." || rel == "" {
		return mod
	}
	return mod + "/" + rel
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "igolint: %v\n", err)
	os.Exit(2)
}
