// Command modelinfo dumps the model zoo of Table 4: every workload's
// trainable layers lowered to GEMM dimensions, plus parameter counts.
//
// Usage:
//
//	modelinfo -suite server            # summary of all server models
//	modelinfo -suite edge -model yolo  # per-layer dump of one model
package main

import (
	"flag"
	"fmt"
	"os"

	"igosim/internal/stats"
	"igosim/internal/workload"
)

func main() {
	var (
		suiteName = flag.String("suite", "server", "workload suite: edge or server")
		modelName = flag.String("model", "", "dump one model's layers (Table 4 abbreviation)")
		batch     = flag.Int("batch", 8, "base batch size for layer dimensions")
	)
	flag.Parse()

	suite, err := workload.SuiteFor(*suiteName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modelinfo:", err)
		os.Exit(1)
	}

	if *modelName == "" {
		t := stats.NewTable("abbr", "model", "layers", "GEMM params", "GEMM MACs/step")
		for _, m := range suite {
			layers := m.Layers(*batch)
			var flops int64
			for _, l := range layers {
				flops += l.Dims.FLOPs()
			}
			t.AddRowF("%s", m.Abbr, "%s", m.Name, "%d", len(layers), "%d", m.Params(), "%d", flops)
		}
		fmt.Print(t)
		return
	}

	m, err := workload.ByAbbr(suite, *modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modelinfo:", err)
		os.Exit(1)
	}
	fmt.Printf("%s (%s), batch %d\n\n", m.Name, m.Abbr, *batch)
	t := stats.NewTable("#", "layer", "M", "K", "N", "params", "xreuse", "notes")
	for i, l := range m.Layers(*batch) {
		notes := ""
		if l.SkipDX {
			notes = "first layer: dW only"
		}
		xr := 1.0
		if l.XReuse > 0 {
			xr = l.XReuse
		}
		t.AddRowF("%d", i, "%s", l.Name, "%d", l.Dims.M, "%d", l.Dims.K, "%d", l.Dims.N,
			"%d", l.Dims.SizeW(), "%.3f", xr, "%s", notes)
	}
	fmt.Print(t)
}
