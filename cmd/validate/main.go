// Command validate proves the paper's "no extra computation, identical
// gradients" claim over the whole model zoo: for every layer of every
// workload it executes the baseline, interleaved, rearranged and
// partitioned schedules numerically (on deterministic matrices, scaled
// down to keep runtimes sane) and checks the resulting dX/dW against
// reference matrix products.
//
// Usage:
//
//	validate                  # whole zoo, scaled layers
//	validate -model res -v    # one model, per-layer progress
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/spm"
	"igosim/internal/tensor"
	"igosim/internal/trace"
	"igosim/internal/workload"
)

// shrink caps a dimension so the O(M*K*N) numeric execution stays fast
// while preserving the layer's aspect ratio and tile-edge behaviour.
func shrink(v, cap int) int {
	if v <= cap {
		return v
	}
	// Keep a non-multiple-of-tile remainder to exercise edge tiles.
	return cap + v%7
}

func main() {
	var (
		modelName = flag.String("model", "", "validate a single model (default: whole zoo)")
		suiteName = flag.String("suite", "server", "zoo suite: edge or server")
		verbose   = flag.Bool("v", false, "per-layer progress")
		jobs      = flag.Int("j", 0, "parallel validation workers (0 = GOMAXPROCS)")
		traceOut  = flag.String("trace", "", "write Chrome trace-event JSON of the residency simulations to this file (view in Perfetto)")
		report    = flag.Bool("report", false, "print the trace-derived report: stall attribution, SPM occupancy, reuse distances")
	)
	flag.Parse()
	runner.SetParallelism(*jobs)
	stopTrace := trace.StartCLI(*traceOut, *report)

	models, err := workload.AllModels(*suiteName)
	if err != nil {
		fatal(err)
	}
	if *modelName != "" {
		m, err := workload.FindModel(*suiteName, *modelName)
		if err != nil {
			fatal(err)
		}
		models = []workload.Model{m}
	}

	// Models fan out through the runner; each worker buffers its own
	// progress lines so the output is printed in zoo order afterwards,
	// identical at every -j. The first failing model (in zoo order) wins.
	cfg := config.SmallNPU()
	type modelReport struct {
		layers, checks int
		lines          []string
		// Residency behaviour of the simulated schedules: eviction and
		// spill counts surface scratchpad pressure next to the numeric
		// verdicts (a schedule can be correct yet thrash the SPM).
		spmStats spm.Stats
		spills   int64
	}
	reports, err := runner.MapErr(context.Background(), models, func(_ context.Context, m workload.Model) (modelReport, error) {
		var rep modelReport
		for i, l := range m.Layers(2) {
			if l.SkipDX {
				continue
			}
			d := tensor.Dims{M: shrink(l.Dims.M, 64), K: shrink(l.Dims.K, 64), N: shrink(l.Dims.N, 64)}
			tl := schedule.Tiling{
				Tm: min(cfg.ArrayRows/4, d.M),
				Tk: min(16, d.K),
				Tn: min(cfg.ArrayCols/4, d.N),
			}
			p := schedule.TileParams{Dims: d, Tiling: tl, ElemBytes: 4, Layer: 1}

			// Whole-layer schedules: structural check + numeric equivalence.
			for _, s := range []schedule.Schedule{
				schedule.BaselineBackward(p),
				core.InterleaveOnly(p),
				core.InterleaveDXMajor(p),
				core.InterleaveDWMajor(p),
			} {
				if err := schedule.VerifyBackward(p, s.Ops, false); err != nil {
					return rep, fmt.Errorf("%s layer %d (%s) %s: structure: %w", m.Abbr, i, l.Name, s.Name, err)
				}
				if err := core.CheckEquivalence(d, tl, s.Ops, 1e-6); err != nil {
					return rep, fmt.Errorf("%s layer %d (%s) %s: %w", m.Abbr, i, l.Name, s.Name, err)
				}
				res := sim.RunSchedules(cfg, sim.Options{
					Trace:      trace.Active(),
					TraceLabel: m.Abbr + "/" + l.Name + " " + s.Name,
				}, s)
				rep.spmStats.Merge(res.SPM)
				rep.spills += res.Spills
				rep.checks++
			}

			// Partitioned schedules: structural check per partition (each
			// partition is its own sub-GEMM), numeric equivalence on the
			// concatenated stream (the cross-partition reduction happens in
			// the executor's accumulation).
			for _, scheme := range core.Schemes() {
				plan := core.PartitionLayer(p, scheme, 2)
				var ops []schedule.Op
				for _, sub := range plan.Parts {
					s := core.InterleaveDXMajor(sub)
					if err := schedule.VerifyBackward(sub, s.Ops, false); err != nil {
						return rep, fmt.Errorf("%s layer %d (%s) %v: structure: %w", m.Abbr, i, l.Name, scheme, err)
					}
					ops = append(ops, s.Ops...)
				}
				if err := core.CheckEquivalence(d, tl, ops, 1e-6); err != nil {
					return rep, fmt.Errorf("%s layer %d (%s) %v: %w", m.Abbr, i, l.Name, scheme, err)
				}
				rep.checks++
			}
			rep.layers++
			if *verbose {
				rep.lines = append(rep.lines, fmt.Sprintf("  %s %-24s %-18v ok", m.Abbr, l.Name, d))
			}
		}
		return rep, nil
	})
	if err != nil {
		fatal(err)
	}

	var layers, checks int
	for i, m := range models {
		rep := reports[i]
		if len(rep.lines) > 0 {
			fmt.Println(strings.Join(rep.lines, "\n"))
		}
		fmt.Printf("%-10s validated   residency: %d hits, %d misses, %d evictions, %d spills\n",
			m.Abbr, rep.spmStats.Hits, rep.spmStats.Misses, rep.spmStats.Evictions, rep.spills)
		layers += rep.layers
		checks += rep.checks
	}
	fmt.Printf("\nOK: %d layers, %d schedule executions, gradients bit-match the reference\n", layers, checks)
	if err := stopTrace(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "validate:", err)
	os.Exit(1)
}
