// Command validate proves the paper's "no extra computation, identical
// gradients" claim over the whole model zoo: for every layer of every
// workload it executes the baseline, interleaved, rearranged and
// partitioned schedules numerically (on deterministic matrices, scaled
// down to keep runtimes sane) and checks the resulting dX/dW against
// reference matrix products. With -refcheck every residency simulation is
// additionally replayed through the internal/refmodel oracle and must
// agree bit-exactly on every counter.
//
// Usage:
//
//	validate                  # whole zoo, scaled layers
//	validate -model res -v    # one model, per-layer progress
//	validate -refcheck        # also diff every simulation against the oracle
//	validate -manifest v.json # also write the run manifest (igostat diff)
package main

import (
	"flag"
	"fmt"
	"os"

	"igosim/internal/metrics"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/trace"
	"igosim/internal/validate"
)

func main() {
	var (
		modelName  = flag.String("model", "", "validate a single model (default: whole zoo)")
		suiteName  = flag.String("suite", "server", "zoo suite: edge or server")
		verbose    = flag.Bool("v", false, "per-layer progress")
		jobs       = flag.Int("j", 0, "parallel validation workers (0 = GOMAXPROCS)")
		refCheck   = flag.Bool("refcheck", false, "replay every simulation through the refmodel oracle and require bit-exact counters")
		traceOut   = flag.String("trace", "", "write Chrome trace-event JSON of the residency simulations to this file (view in Perfetto)")
		report     = flag.Bool("report", false, "print the trace-derived report: stall attribution, SPM occupancy, reuse distances")
		compiled   = flag.Bool("compiled", true, "execute schedules on the compiled engine (false = reference interpreter; results are identical)")
		manifest   = flag.String("manifest", "", "write the deterministic run manifest (JSON) to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	stopProf, err := metrics.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	sim.SetCompiledDefault(*compiled)
	runner.SetParallelism(*jobs)
	stopTrace := trace.StartCLI(*traceOut, *report)

	sum, err := validate.Run(validate.Options{
		Suite:    *suiteName,
		Model:    *modelName,
		Verbose:  *verbose,
		RefCheck: *refCheck,
		Trace:    trace.Active(),
		Out:      os.Stdout,
	})
	if err != nil {
		fatal(err)
	}
	if err := stopTrace(); err != nil {
		fatal(err)
	}
	if *manifest != "" {
		m := metrics.NewManifest("validate")
		if err := m.SetFingerprint(struct {
			Tool     string `json:"tool"`
			Suite    string `json:"suite"`
			Model    string `json:"model"`
			RefCheck bool   `json:"refcheck"`
			Compiled bool   `json:"compiled"`
		}{"validate", *suiteName, *modelName, *refCheck, *compiled}); err != nil {
			fatal(err)
		}
		m.Validate = &sum
		m.Finalize(metrics.Default())
		if err := m.WriteFile(*manifest); err != nil {
			fatal(err)
		}
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "validate:", err)
	os.Exit(1)
}
