// Command benchjson runs the end-to-end engine benchmarks (internal/bench,
// the same bodies behind BenchmarkCompiledEngine) through testing.Benchmark
// and writes a machine-readable summary so the perf trajectory is tracked
// across PRs. The output records, per benchmark, ns/op, allocs/op and
// simulated-DRAM MB/s, plus the headline interpreted-vs-compiled speedup
// and allocation ratios the acceptance criteria gate on.
//
// Usage:
//
//	benchjson [-benchtime 1x] [-o BENCH_compiled.json]
//
// -benchtime uses the testing package's syntax (a duration like 2s, or an
// iteration count like 1x). The CI default of one iteration proves the
// harness and refreshes the artifact cheaply; use a duration for numbers
// stable enough to quote.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"igosim/internal/bench"
	"igosim/internal/core"
	"igosim/internal/serve"
	"igosim/internal/serve/loadtest"
	"igosim/internal/sim"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	MBPerSec    float64 `json:"mb_s"`
}

type report struct {
	Workload    string  `json:"workload"`
	Benchmarks  []entry `json:"benchmarks"`
	Speedup     float64 `json:"speedup"`      // interpreted ns/op ÷ compiled ns/op
	AllocsRatio float64 `json:"allocs_ratio"` // interpreted allocs/op ÷ compiled allocs/op
}

func main() {
	testing.Init()
	benchtime := flag.String("benchtime", "1x", "per-benchmark budget, testing syntax (duration or Nx iterations)")
	out := flag.String("o", "BENCH_compiled.json", "output path (empty = skip the engine benchmarks)")
	sweepOut := flag.String("sweep-o", "BENCH_sweep.json", "sweep summary output path (empty = skip the sweep)")
	serveOut := flag.String("serve-o", "BENCH_serve.json", "serve load-test output path (empty = skip the load test)")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatal(fmt.Errorf("bad -benchtime %q: %w", *benchtime, err))
	}
	if *out == "" {
		if *sweepOut != "" {
			if err := writeSweep(*sweepOut); err != nil {
				fatal(err)
			}
		}
		if *serveOut != "" {
			if err := writeServe(*serveOut); err != nil {
				fatal(err)
			}
		}
		return
	}

	w := bench.ResNet50Backward()
	if err := w.Verify(); err != nil {
		fatal(err)
	}

	rep := report{Workload: "ResNet-50 backward, LargeNPU"}
	for _, b := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"CompiledEngine/interpreted", w.Pass(sim.EngineInterpreted)},
		{"CompiledEngine/compiled", w.Pass(sim.EngineCompiled)},
		{"CompiledEngine/steady", w.Steady()},
	} {
		r := testing.Benchmark(b.fn)
		e := entry{Name: b.name, NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp()}
		if secs := r.T.Seconds(); secs > 0 {
			e.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / secs
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Printf("%-28s %14.0f ns/op %8d allocs/op %10.1f MB/s\n", e.Name, e.NsPerOp, e.AllocsPerOp, e.MBPerSec)
	}
	interp, compiled := rep.Benchmarks[0], rep.Benchmarks[1]
	if compiled.NsPerOp > 0 {
		rep.Speedup = interp.NsPerOp / compiled.NsPerOp
	}
	if compiled.AllocsPerOp > 0 {
		rep.AllocsRatio = float64(interp.AllocsPerOp) / float64(compiled.AllocsPerOp)
	}
	fmt.Printf("speedup %.2fx, allocs ratio %.0fx\n", rep.Speedup, rep.AllocsRatio)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *sweepOut != "" {
		if err := writeSweep(*sweepOut); err != nil {
			fatal(err)
		}
	}
	if *serveOut != "" {
		if err := writeServe(*serveOut); err != nil {
			fatal(err)
		}
	}
}

// writeServe drives an in-process igoserved instance with the canonical
// fixed-seed load test and records the result — exact counts and the
// response-body digest (gated at zero tolerance) plus p50/p99 latency and
// throughput (gated loosely as wall time) — tracked across PRs as
// BENCH_serve.json.
//
//lint:walldomain client-observed latency and throughput are the measurement itself
func writeServe(path string) error {
	core.ResetCaches()
	defer core.ResetCaches()
	s := serve.New(serve.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res, err := loadtest.Run(loadtest.Options{URL: ts.URL, Client: ts.Client()})
	if err != nil {
		return err
	}
	if res.Errors > 0 {
		return fmt.Errorf("serve load test: %d of %d requests failed", res.Errors, res.Requests)
	}
	res.ResidencyHitRate = sim.ResolvedCacheStats().HitRate()
	fmt.Printf("%-28s %6d requests %4d distinct %5.1f%% hit rate %5.1f%% residency  p50 %.0fus  p99 %.0fus  %.1f req/s\n",
		"ServeLoadtest", res.Requests, res.DistinctKeys, 100*res.HitRate, 100*res.ResidencyHitRate,
		res.P50Micros, res.P99Micros, res.RPS)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeSweep runs the canonical pruned design-space sweep once and records
// its throughput and pruned fraction — the numbers BenchmarkSweepPruned
// reports, tracked across PRs as BENCH_sweep.json.
//
//lint:walldomain benchmark wall time is the measurement itself
func writeSweep(path string) error {
	start := time.Now()
	res, err := bench.RunSweep(0)
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	res.WallSeconds = wall
	if wall > 0 {
		res.PointsPerSec = float64(res.Points) / wall
	}
	fmt.Printf("%-28s %6d points %6d simulated %5.1f%% pruned %8.1f points/s  %d resolve %d replay (%.1fx reuse)\n",
		"SweepPruned", res.Points, res.Simulated, 100*res.PrunedFrac, res.PointsPerSec,
		res.Resolutions, res.Replays, res.ReuseRatio)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
