// Command igoserved serves the simulator over HTTP — simulation as a
// service. Clients POST (workload, NPU config, options) JSON to /simulate
// (or a request list to /batch) and receive the schedule choice, cycles,
// per-class DRAM traffic, energy and optionally the trace report; every
// client of one igoserved process shares the result, layer-memo and
// compiled-program caches, so a fleet of experiment scripts pays for each
// distinct simulation once.
//
// Endpoints:
//
//	POST /simulate  one request  -> one result (X-Igosim-Cache: hit|miss|coalesced)
//	POST /batch     request list -> results in order, -j fan-out
//	GET  /healthz   liveness (503 once draining)
//	GET  /metrics   Prometheus text exposition (?format=json for JSON)
//	POST /reset     flush every cache (only with -reset)
//
// Response bodies are a pure function of the request — byte-identical at
// any -j, any cache state, any request interleaving. Cache status and
// timing travel in headers and /metrics only.
//
// Shutdown: SIGINT/SIGTERM starts draining — /healthz flips to 503, new
// simulation requests are refused, in-flight requests get up to
// -drain-timeout to finish — then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"igosim/internal/runner"
	"igosim/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8606", "listen address")
		jobs         = flag.Int("j", 0, "max concurrent simulations across all requests (0 = GOMAXPROCS; affects latency only, never response bodies)")
		cacheCap     = flag.Int("cache-cap", 256, "result-cache capacity in entries (negative disables caching, keeping in-flight deduplication)")
		timeout      = flag.Duration("timeout", 2*time.Minute, "per-request budget including queueing (exceeding it yields 504)")
		maxBatch     = flag.Int("max-batch", 64, "max requests per /batch call")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown grace period for in-flight requests")
		reset        = flag.Bool("reset", false, "expose POST /reset (flushes every cache; operator use)")
	)
	flag.Parse()
	if *jobs > 0 {
		runner.SetParallelism(*jobs)
	}

	s := serve.New(serve.Options{
		CacheCap:    *cacheCap,
		Timeout:     *timeout,
		MaxBatch:    *maxBatch,
		Parallel:    *jobs,
		EnableReset: *reset,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: the first signal starts draining (load balancers
	// see /healthz fail, new simulations get 503) and hands in-flight
	// requests the grace period; a second signal aborts immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		stop() // restore default signal handling: a second signal kills us
		s.StartDraining()
		fmt.Fprintln(os.Stderr, "igoserved: draining")
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		done <- hs.Shutdown(sctx)
	}()

	fmt.Printf("igoserved: listening on http://%s (j=%d, cache-cap=%d)\n",
		*addr, runner.Parallelism(), *cacheCap)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "igoserved:", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "igoserved: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("igoserved: drained, bye")
}
