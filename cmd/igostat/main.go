// Command igostat compares and inspects the simulator's machine-readable
// run records: manifests written by `-manifest` on igosim/figures/validate/
// sweep, and the BENCH_*.json perf-trajectory artifacts.
//
// Usage:
//
//	igostat diff OLD.json NEW.json [-tol cycles=0,traffic=0,wall=15%]
//	igostat show FILE.json
//
// diff exits 0 when no metric regressed beyond its tolerance, 1 naming
// every regressed metric otherwise, 2 on usage or I/O errors. Tolerances
// are key=value pairs: the key matches metric leaf names (substring) or the
// pseudo-class "wall" (every wall-clock-derived leaf: ns_op, mb_s,
// wall_seconds, points_per_sec, speedup, allocs_ratio); the value is an
// absolute allowance or a percentage ("15%"). Lower-is-better is the
// default direction; known benefit metrics (speedup, hit_rate, reduction,
// points_per_sec, ...) gate on decreases instead. `make perf-check` runs
// this tool against the committed BENCH artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"igosim/internal/metrics"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "diff":
		diffCmd(os.Args[2:])
	case "show":
		showCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: igostat diff OLD.json NEW.json [-tol key=val,...]")
	fmt.Fprintln(os.Stderr, "       igostat show FILE.json")
	os.Exit(2)
}

func diffCmd(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tolSpec := fs.String("tol", "", "tolerances, e.g. cycles=0,traffic=0,wall=15%")
	quiet := fs.Bool("q", false, "suppress the OK summary line")
	// Accept both `igostat diff a b -tol ...` and flag-first order.
	var paths []string
	for len(args) > 0 {
		if args[0] != "" && args[0][0] != '-' {
			paths = append(paths, args[0])
			args = args[1:]
			continue
		}
		break
	}
	fs.Parse(args)
	paths = append(paths, fs.Args()...)
	if len(paths) != 2 {
		usage()
	}
	tols, err := metrics.ParseTolerances(*tolSpec)
	if err != nil {
		fatal(err)
	}
	oldData, err := os.ReadFile(paths[0])
	if err != nil {
		fatal(err)
	}
	newData, err := os.ReadFile(paths[1])
	if err != nil {
		fatal(err)
	}
	res, err := metrics.Diff(oldData, newData, tols)
	if err != nil {
		fatal(err)
	}
	if !res.OK() {
		for _, r := range res.Regressions {
			fmt.Fprintf(os.Stderr, "igostat: REGRESSION %s\n", r)
		}
		fmt.Fprintf(os.Stderr, "igostat: %d regression(s) in %s vs %s\n", len(res.Regressions), paths[1], paths[0])
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("igostat: OK — %d metrics compared, %d improved, 0 regressions\n", res.Compared, res.Improved)
	}
}

func showCmd(args []string) {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	nums, strs, err := metrics.Flatten(data)
	if err != nil {
		fatal(err)
	}
	keys := make([]string, 0, len(nums)+len(strs))
	for k := range nums {
		keys = append(keys, k)
	}
	for k := range strs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, p := range keys {
		if v, ok := strs[p]; ok {
			fmt.Printf("%-60s %s\n", p, v)
			continue
		}
		fmt.Printf("%-60s %g\n", p, nums[p])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "igostat:", err)
	os.Exit(2)
}
