// Command igosim simulates one training step of a DNN workload on an NPU
// configuration under a chosen interleaved-gradient-order policy, printing
// per-layer and total cycles and DRAM traffic.
//
// Usage:
//
//	igosim -config large -model res -policy partition -cores 1 [-layers]
package main

import (
	"flag"
	"fmt"
	"os"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/dram"
	"igosim/internal/energy"
	"igosim/internal/metrics"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/trace"
	"igosim/internal/workload"
)

func main() {
	var (
		cfgName    = flag.String("config", "large", "NPU config: small, large, gpu")
		modelName  = flag.String("model", "res", "model abbreviation from Table 4 (rcnn goo ncf res dlrm mob yolo bert T5) or 'all'")
		polName    = flag.String("policy", "partition", "policy: baseline, interleave, rearrange, partition")
		cores      = flag.Int("cores", 1, "number of NPU cores (large config only)")
		bandwidth  = flag.Float64("bw", 0, "override per-core DRAM bandwidth in GB/s (0 = preset)")
		batch      = flag.Int("batch", 0, "override per-core batch size (0 = preset)")
		perLayer   = flag.Bool("layers", false, "print per-layer breakdown")
		withNRG    = flag.Bool("energy", false, "print an energy estimate (45nm coefficients)")
		jobs       = flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS; results are identical at any width)")
		traceOut   = flag.String("trace", "", "write Chrome trace-event JSON of the run to this file (view in Perfetto)")
		report     = flag.Bool("report", false, "print the trace-derived report: stall attribution, SPM occupancy, reuse distances")
		compiled   = flag.Bool("compiled", true, "execute schedules on the compiled engine (false = reference interpreter; results are identical)")
		manifest   = flag.String("manifest", "", "write the deterministic run manifest (JSON) to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	stopProf, err := metrics.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	sim.SetCompiledDefault(*compiled)
	runner.SetParallelism(*jobs)
	stopTrace := trace.StartCLI(*traceOut, *report)

	cfg, suite, err := resolveConfig(*cfgName)
	if err != nil {
		fatal(err)
	}
	if *cores > 1 {
		cfg = cfg.WithCores(*cores)
	}
	if *bandwidth > 0 {
		cfg = cfg.WithBandwidth(*bandwidth * 1e9)
	}
	if *batch > 0 {
		cfg = cfg.WithBatch(*batch)
	}
	pol, err := resolvePolicy(*polName)
	if err != nil {
		fatal(err)
	}

	models := suite
	if *modelName != "all" {
		m, err := workload.ByAbbr(suite, *modelName)
		if err != nil {
			fatal(err)
		}
		models = []workload.Model{m}
	}

	fmt.Printf("config %s: %dx(%dx%d PE), %.1f GB/s/core, %s SPM/core, batch %d/core\n\n",
		cfg.Name, cfg.Cores, cfg.ArrayRows, cfg.ArrayCols, cfg.DRAMBandwidth/1e9,
		fmtBytes(cfg.SPMBytes), cfg.Batch)

	var workloads []metrics.WorkloadResult
	for _, m := range models {
		base := core.RunTraining(cfg, sim.Options{}, m, core.PolBaseline)
		run := base
		if pol != core.PolBaseline {
			run = core.RunTraining(cfg, sim.Options{}, m, pol)
		}
		if *manifest != "" {
			workloads = append(workloads, core.ManifestWorkload(cfg, base, run))
		}
		fmt.Printf("%-5s  policy=%-17s fwd %12d cyc   bwd %12d cyc   total %12d cyc   (%.3f ms)\n",
			m.Abbr, run.Policy, run.FwdCycles, run.BwdCycles, run.TotalCycles(),
			run.Seconds(cfg)*1e3)
		if pol != core.PolBaseline {
			fmt.Printf("       vs baseline: %+.1f%% execution time reduction (baseline %d cyc)\n",
				100*core.Improvement(base, run), base.TotalCycles())
		}
		fmt.Printf("       bwd traffic: %s total | dY %s (%.1f%% of reads) | spills(acc) %s\n",
			fmtBytes(run.BwdTraffic.Total()),
			fmtBytes(run.BwdTraffic.Read[dram.ClassDY]),
			100*run.BwdTraffic.ReadShare(dram.ClassDY),
			fmtBytes(run.BwdTraffic.Read[dram.ClassAcc]+run.BwdTraffic.Write[dram.ClassAcc]))
		if *withNRG {
			em := energy.Default45nm()
			b := em.TrainingStep(run)
			fmt.Printf("       energy: %.2f mJ/step (DRAM %.2f, SPM %.2f, compute %.2f, static %.2f)",
				b.Total()*1e3, b.DRAM*1e3, b.SPM*1e3, b.Compute*1e3, b.Static*1e3)
			if pol != core.PolBaseline {
				fmt.Printf(" | %.1f%% saved vs baseline", 100*em.Savings(base, run))
			}
			fmt.Println()
		}
		if *perLayer {
			printLayers(base, run)
		}
		fmt.Println()
	}
	// Capture the trace digest before stopTrace uninstalls the sink.
	var traceSum *metrics.TraceSummary
	if sink := trace.Active(); sink != nil {
		ts := sink.Metrics().ManifestSummary()
		traceSum = &ts
	}
	if err := stopTrace(); err != nil {
		fatal(err)
	}
	if *manifest != "" {
		if err := writeManifest(*manifest, cfg, models, *polName, *compiled, workloads, traceSum); err != nil {
			fatal(err)
		}
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

// writeManifest emits the run's canonical record: fingerprint over
// everything that determines the outcome, per-workload cycle/traffic
// results, the derived cache report and the cycle-domain registry
// snapshot. Byte-identical at any -j (see make manifest-check).
func writeManifest(path string, cfg config.NPU, models []workload.Model, policy string, compiled bool, workloads []metrics.WorkloadResult, traceSum *metrics.TraceSummary) error {
	m := metrics.NewManifest("igosim")
	names := make([]string, len(models))
	for i, w := range models {
		names[i] = w.Abbr
	}
	if err := m.SetFingerprint(struct {
		Tool     string     `json:"tool"`
		Config   config.NPU `json:"config"`
		Models   []string   `json:"models"`
		Policy   string     `json:"policy"`
		Compiled bool       `json:"compiled"`
	}{"igosim", cfg, names, policy, compiled}); err != nil {
		return err
	}
	m.Config = &cfg
	m.Workloads = workloads
	m.Trace = traceSum
	m.Finalize(metrics.Default())
	return m.WriteFile(path)
}

func printLayers(base, run core.ModelRun) {
	fmt.Printf("       %-22s %14s %14s %8s  %-20s %s\n",
		"layer (M,K,N)", "base bwd cyc", "bwd cyc", "speedup", "order", "scheme")
	for i := range run.Bwd {
		b, r := base.Bwd[i], run.Bwd[i]
		sp := 1.0
		if r.Cycles > 0 {
			sp = float64(b.Cycles) / float64(r.Cycles)
		}
		fmt.Printf("       %-22s %14d %14d %7.2fx  %-20s %s/%d\n",
			fmt.Sprintf("%s(%d,%d,%d)", r.Name, r.Dims.M, r.Dims.K, r.Dims.N),
			b.Cycles, r.Cycles, sp, r.Order, r.Scheme, r.Parts)
	}
}

func resolveConfig(name string) (config.NPU, []workload.Model, error) {
	switch name {
	case "small", "edge":
		return config.SmallNPU(), workload.EdgeSuite(), nil
	case "large", "server":
		return config.LargeNPU(), workload.ServerSuite(), nil
	case "gpu":
		return config.GPULike(), workload.EdgeSuite(), nil
	default:
		return config.NPU{}, nil, fmt.Errorf("unknown config %q (want small, large, gpu)", name)
	}
}

func resolvePolicy(name string) (core.Policy, error) {
	switch name {
	case "baseline":
		return core.PolBaseline, nil
	case "interleave", "interleaving":
		return core.PolInterleave, nil
	case "rearrange", "rearrangement":
		return core.PolRearrange, nil
	case "partition", "partitioning":
		return core.PolPartition, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", name)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "igosim:", err)
	os.Exit(1)
}
