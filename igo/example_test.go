package igo_test

import (
	"fmt"

	"igosim/igo"
)

// ExampleSelectOrder shows Algorithm 1's static decision on three layer
// shapes: nearly square, M-heavy, and N-heavy.
func ExampleSelectOrder() {
	fmt.Println(igo.SelectOrder(igo.Dims{M: 512, K: 512, N: 512}))
	fmt.Println(igo.SelectOrder(igo.Dims{M: 25088, K: 64, N: 256}))
	fmt.Println(igo.SelectOrder(igo.Dims{M: 64, K: 512, N: 4096}))
	// Output:
	// interleave
	// interleave+dXmajor
	// interleave+dWmajor
}

// ExampleTrain runs the paper's headline comparison on the smallest zoo
// model and reports whether the full stack wins.
func ExampleTrain() {
	cfg := igo.SmallNPU()
	model, _ := igo.ModelByName(igo.EdgeSuite(), "ncf")
	base := igo.Train(cfg, model, igo.Baseline)
	fast := igo.Train(cfg, model, igo.Partition)
	fmt.Println(igo.Improvement(base, fast) >= 0)
	// Output:
	// true
}

// ExampleRooflineRidge shows the large NPU's balance point: layers with
// fewer MACs per DRAM byte than this are memory-bound.
func ExampleRooflineRidge() {
	ridge := igo.RooflineRidge(igo.LargeNPU())
	fmt.Println(ridge > 100 && ridge < 130)
	// Output:
	// true
}

// ExampleAnalyze classifies a skinny fully connected layer.
func ExampleAnalyze() {
	cfg := igo.LargeNPU()
	layer := igo.Layer{Name: "fc", Dims: igo.Dims{M: 8, K: 4096, N: 1000}}
	a := igo.Analyze(cfg, layer)
	fmt.Println(a.Classify(cfg))
	// Output:
	// memory-bound
}
