package igo

import (
	"io"
	"net/http"

	"igosim/internal/metrics"
)

// MetricSample is one metric's snapshot row: name, optional label, domain
// ("cycle" samples are deterministic — identical at any parallelism — while
// "wall" samples describe host execution), kind, and value (histograms also
// carry sum/min/max/quantiles).
type MetricSample = metrics.Sample

// Metrics returns the deterministic (cycle-domain) snapshot of the
// simulator's metrics registry: model runs, simulated cycles, sweep prune
// outcomes. Pass metric names to embed in dashboards or diff across runs.
func Metrics() []MetricSample { return metrics.Default().Snapshot(metrics.Cycle) }

// AllMetrics returns every registered metric, including wall-clock samples
// (pool width, task latency, executed-pass totals) that legitimately vary
// with parallelism and cache state.
func AllMetrics() []MetricSample { return metrics.Default().Snapshot() }

// WriteMetrics writes the full registry in Prometheus text exposition
// format. Every sample carries a domain label ("cycle" or "wall").
func WriteMetrics(w io.Writer) error { return metrics.Default().WritePrometheus(w) }

// MetricsHandler serves the registry over HTTP: Prometheus text by default,
// JSON with ?format=json. Mount it wherever the embedding application
// exposes diagnostics.
func MetricsHandler() http.Handler { return metrics.Handler() }

// EnableMetricsTiming turns wall-clock latency collection on or off
// (histograms such as runner task latency read the clock only while tracing
// or timing is enabled) and reports the previous setting. Simulation
// results are unaffected either way.
func EnableMetricsTiming(on bool) bool { return metrics.SetTiming(on) }
