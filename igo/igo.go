// Package igo is the public API of igosim: a simulator and schedule
// transformer reproducing "Improving Data Reuse in NPU On-chip Memory with
// Interleaved Gradient Order for DNN Training" (MICRO 2023).
//
// The package curates the library surface a downstream user needs:
//
//   - NPU configurations (the paper's Table 3 presets plus custom configs);
//   - the Table 4 model zoo, lowered to per-layer GEMM dimensions;
//   - the four policy levels — Baseline, Interleave, Rearrange,
//     Partition — applied to a model's training step;
//   - per-layer control for schedule research: explicit access orders,
//     partitioning schemes, and the KNN scheme selector;
//   - the experiment harnesses that regenerate every figure of the paper.
//
// # Quick start
//
//	cfg := igo.LargeNPU()
//	model, _ := igo.ModelByName(igo.ServerSuite(), "res")
//	base := igo.Train(cfg, model, igo.Baseline)
//	fast := igo.Train(cfg, model, igo.Partition)
//	fmt.Printf("execution time reduced %.1f%%\n", 100*igo.Improvement(base, fast))
//
// All heavy lifting lives in internal packages; this package only names
// the supported surface.
package igo

import (
	"io"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/experiments"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/stats"
	"igosim/internal/tensor"
	"igosim/internal/trace"
	"igosim/internal/workload"
)

// Config describes a simulated NPU (PE array, scratchpad, DRAM, cores).
// Construct one with SmallNPU/LargeNPU/GPULike and adjust via the With*
// methods, or fill the struct directly and call Validate.
type Config = config.NPU

// Dataflow selects the systolic-array mapping of a Config.
type Dataflow = config.Dataflow

// Dataflow mappings.
const (
	OutputStationary = config.OutputStationary
	WeightStationary = config.WeightStationary
)

// SmallNPU returns the paper's edge-class configuration (Table 3):
// 45x45 PEs, 1 MB SPM, 22 GB/s, 1 GHz, batch 4.
func SmallNPU() Config { return config.SmallNPU() }

// LargeNPU returns the paper's server-class configuration (Table 3):
// 128x128 PEs, 8 MB SPM and 150 GB/s per core, 1.05 GHz, batch 8.
func LargeNPU() Config { return config.LargeNPU() }

// GPULike returns the shared-memory-sized configuration backing the
// paper's Figure 17 GPU validation study.
func GPULike() Config { return config.GPULike() }

// Dims are the dimensions of one layer's forward GEMM:
// X(M,K) x W(K,N) -> Y(M,N).
type Dims = tensor.Dims

// Layer is one trainable layer of a workload, lowered to GEMM dimensions.
type Layer = workload.Layer

// Model is one Table 4 workload.
type Model = workload.Model

// EdgeSuite returns the nine workloads with their edge-sized variants.
func EdgeSuite() []Model { return workload.EdgeSuite() }

// ServerSuite returns the nine workloads with their server-sized variants.
func ServerSuite() []Model { return workload.ServerSuite() }

// ModelByName finds a model in a suite by its Table 4 abbreviation
// ("rcnn", "goo", "ncf", "res", "dlrm", "mob", "yolo", "bert", "T5").
func ModelByName(suite []Model, abbr string) (Model, error) {
	return workload.ByAbbr(suite, abbr)
}

// Policy selects how much of the interleaved-gradient-order stack is
// applied to the backward pass. Levels are cumulative.
type Policy = core.Policy

// Policy levels, in Figure 12 order.
const (
	Baseline   = core.PolBaseline
	Interleave = core.PolInterleave
	Rearrange  = core.PolRearrange
	Partition  = core.PolPartition
)

// Order is an interleaved access order (Figure 10).
type Order = core.Order

// Access orders.
const (
	OnlyInterleave = core.OnlyInterleave
	DXMajor        = core.DXMajor
	DWMajor        = core.DWMajor
)

// Scheme is a data-partitioning scheme (Figure 11).
type Scheme = core.Scheme

// Partitioning schemes.
const (
	NoPartition   = core.NoPartition
	WeightSharing = core.WeightSharing
	DYSharing     = core.DYSharing
	IfmapSharing  = core.IfmapSharing
)

// ModelRun is one simulated training step (forward + backward).
type ModelRun = core.ModelRun

// LayerOutcome is the per-layer simulation result inside a ModelRun.
type LayerOutcome = core.LayerOutcome

// Train simulates one training step of the model under the given policy.
// Multi-core configurations (cfg.Cores > 1) are handled transparently:
// the backward pass is distributed per the policy's partitioning rules.
func Train(cfg Config, m Model, pol Policy) ModelRun {
	return core.RunTraining(cfg, sim.Options{}, m, pol)
}

// TrainBackwardOnly simulates just the backward pass (the Figure 17
// measurement mode).
func TrainBackwardOnly(cfg Config, m Model, pol Policy) ModelRun {
	return core.RunBackwardOnly(cfg, sim.Options{}, m, pol)
}

// Improvement returns the fractional execution-time reduction of run
// against base — the paper's headline metric.
func Improvement(base, run ModelRun) float64 { return core.Improvement(base, run) }

// SelectOrder applies the paper's Algorithm 1 (prose rule) to a layer's
// dimensions: nearly-square computations keep plain interleaving, skewed
// ones pick the major order that carries the smaller gradient.
func SelectOrder(d Dims) Order { return core.SelectOrder(d) }

// Report is one regenerated evaluation artifact (a figure or study).
type Report = experiments.Report

// Experiment regenerates one of the paper's evaluation artifacts by id:
// fig3 fig5 fig6 fig12 fig13 fig14 fig15 fig16 fig17 alg1 knn.
func Experiment(id string) (Report, error) { return experiments.ByID(id) }

// Experiments lists the available experiment ids in paper order.
func Experiments() []string { return experiments.IDs() }

// Parallelism sets the number of worker goroutines used by Train,
// TrainBackwardOnly, Experiment and the rest of the simulation surface,
// returning the previous setting. n <= 0 restores the default
// (GOMAXPROCS). Results are bit-identical at every setting: the engine
// fans work out by index and reassembles it in order.
func Parallelism(n int) int { return runner.SetParallelism(n) }

// Compiled toggles the compiled execution engine process-wide, returning
// the previous setting. On (the default), schedules are lowered once into
// a dense program — tile keys interned to integer IDs, sizes and costs
// precomputed — and executed against array-indexed scratchpad state; off
// falls back to the reference interpreter. Results are bit-identical in
// both modes (the property suite holds them to the refmodel oracle); only
// speed differs.
func Compiled(on bool) bool { return sim.SetCompiledDefault(on) }

// CacheStats reports the hit/miss counters of the simulator's memo caches
// (layer simulations and order-tuning results), one line per cache. Useful
// when judging whether a sweep benefits from shape sharing.
func CacheStats() []string {
	snaps := stats.CacheReport()
	out := make([]string, len(snaps))
	for i, s := range snaps {
		out[i] = s.String()
	}
	return out
}

// ResetCaches clears the simulator's memo caches and the hit/miss counters
// of every registered cache — mainly for benchmarking cold-start behaviour
// and for isolating back-to-back measurement runs.
func ResetCaches() { core.ResetCaches() }

// TraceMetrics is the derived summary of a traced run: stall-cycle
// attribution, SPM occupancy high-water marks, per-tensor-class reuse
// distances, memo hits and runner task spans. Render it with Report().
type TraceMetrics = trace.Metrics

// WithTrace runs fn with cycle-level event tracing enabled process-wide:
// every simulation started inside fn — Train, Experiment, anything built on
// the engine — emits tile-op spans, SPM occupancy samples and phase spans
// into one sink. When w is non-nil the collected events are written to it as
// Chrome trace-event JSON (loadable in Perfetto or chrome://tracing); the
// returned TraceMetrics summarises the run either way.
//
// Tracing never changes simulation results; it only records them. Nested or
// concurrent WithTrace calls are not supported (the sink is process-wide):
// the inner call would capture the outer call's events.
func WithTrace(w io.Writer, fn func()) (TraceMetrics, error) {
	sink := trace.New()
	prev := trace.SetActive(sink)
	defer trace.SetActive(prev)
	fn()
	if err := sink.Check(); err != nil {
		return sink.Metrics(), err
	}
	if w != nil {
		if err := sink.WriteJSON(w); err != nil {
			return sink.Metrics(), err
		}
	}
	return sink.Metrics(), nil
}
