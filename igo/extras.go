package igo

import (
	"fmt"

	"igosim/internal/analytic"
	"igosim/internal/energy"
	"igosim/internal/proptest"
	"igosim/internal/workload"
)

// EnergyModel converts simulated traffic and work into joules.
type EnergyModel = energy.Model

// EnergyBreakdown is the per-component energy of a run.
type EnergyBreakdown = energy.Breakdown

// DefaultEnergyModel returns the 45nm coefficient set (Horowitz-derived).
func DefaultEnergyModel() EnergyModel { return energy.Default45nm() }

// LayerAnalytic is the closed-form first-order model of one layer's
// backward pass: traffic lower bounds, arithmetic intensity and roofline
// classification.
type LayerAnalytic = analytic.LayerModel

// RooflineRidge returns cfg's ridge point in MACs per DRAM byte: layers
// below it are memory-bound.
func RooflineRidge(cfg Config) float64 { return analytic.Ridge(cfg) }

// Analyze builds the analytic model for one zoo layer under cfg.
func Analyze(cfg Config, l Layer) LayerAnalytic {
	return analytic.LayerModel{Dims: l.Dims, ElemBytes: cfg.ElemBytes, XReuse: l.XReuse}
}

// Variants lists the extra zoo models beyond the Table 4 suites
// (bert-base, T5-base, yolo-s, res18).
func Variants() []Model { return workload.Variants() }

// SelfCheck runs a small deterministic slice of the simulator's property
// suite — the differential-oracle, conservation, cycle-envelope and
// partition invariants over generated cases — and returns the first
// violation, or nil. It is an embedding sanity check: a library user (or a
// CI job without the repository's test files) can prove the simulator
// behaves on their platform in about a second.
func SelfCheck() error {
	const casesPerInvariant = 25
	for _, inv := range proptest.Invariants() {
		c, err := proptest.RunPure("selfcheck-"+inv.Name, casesPerInvariant, inv.Check)
		if err != nil {
			return fmt.Errorf("igo: self-check property %s failed on %v: %w", inv.Name, c, err)
		}
	}
	return nil
}
