package igo_test

import (
	"strings"
	"testing"

	"igosim/igo"
)

// The public-API tests exercise the package exactly as a downstream user
// would: presets, zoo lookup, training under each policy level, and the
// headline improvement metric.

func smallFastConfig() igo.Config {
	cfg := igo.SmallNPU()
	return cfg
}

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := smallFastConfig()
	model, err := igo.ModelByName(igo.EdgeSuite(), "ncf")
	if err != nil {
		t.Fatal(err)
	}
	base := igo.Train(cfg, model, igo.Baseline)
	fast := igo.Train(cfg, model, igo.Partition)
	if base.TotalCycles() <= 0 {
		t.Fatal("baseline produced no work")
	}
	if imp := igo.Improvement(base, fast); imp < 0 {
		t.Fatalf("full stack slower than baseline: %+.1f%%", 100*imp)
	}
}

func TestPublicPolicyLevelsRun(t *testing.T) {
	cfg := smallFastConfig()
	model, err := igo.ModelByName(igo.EdgeSuite(), "dlrm")
	if err != nil {
		t.Fatal(err)
	}
	var prev igo.ModelRun
	for i, pol := range []igo.Policy{igo.Baseline, igo.Interleave, igo.Rearrange, igo.Partition} {
		run := igo.Train(cfg, model, pol)
		if run.Policy != pol {
			t.Fatalf("policy echo: %v != %v", run.Policy, pol)
		}
		if len(run.Bwd) == 0 {
			t.Fatal("no per-layer outcomes")
		}
		if i > 0 && run.FwdCycles != prev.FwdCycles {
			t.Fatal("forward pass must be policy independent")
		}
		prev = run
	}
}

func TestPublicSuitesAndLookup(t *testing.T) {
	if len(igo.EdgeSuite()) != 9 || len(igo.ServerSuite()) != 9 {
		t.Fatal("suites incomplete")
	}
	if _, err := igo.ModelByName(igo.ServerSuite(), "not-a-model"); err == nil {
		t.Fatal("bad lookup accepted")
	}
}

func TestPublicSelectOrder(t *testing.T) {
	if igo.SelectOrder(igo.Dims{M: 128, K: 128, N: 128}) != igo.OnlyInterleave {
		t.Fatal("square layer should keep plain interleaving")
	}
	if igo.SelectOrder(igo.Dims{M: 65536, K: 64, N: 64}) != igo.DXMajor {
		t.Fatal("M-heavy layer should pick dXmajor")
	}
}

func TestPublicBackwardOnly(t *testing.T) {
	cfg := smallFastConfig()
	model, _ := igo.ModelByName(igo.EdgeSuite(), "ncf")
	run := igo.TrainBackwardOnly(cfg, model, igo.Baseline)
	if run.FwdCycles != 0 {
		t.Fatal("backward-only run simulated the forward pass")
	}
	if run.BwdCycles <= 0 {
		t.Fatal("backward-only run did no work")
	}
}

func TestPublicCustomConfig(t *testing.T) {
	cfg := igo.LargeNPU().WithCores(2).WithBatch(4).WithBandwidth(75e9)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	model, _ := igo.ModelByName(igo.ServerSuite(), "ncf")
	run := igo.Train(cfg, model, igo.Partition)
	if run.TotalCycles() <= 0 {
		t.Fatal("custom config run failed")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	ids := igo.Experiments()
	if len(ids) != 11 {
		t.Fatalf("experiment registry has %d entries", len(ids))
	}
	if _, err := igo.Experiment("bogus"); err == nil {
		t.Fatal("bogus experiment accepted")
	}
}

func TestPublicParallelismAndCaches(t *testing.T) {
	// Parallelism returns the previous width and round-trips.
	prev := igo.Parallelism(2)
	defer igo.Parallelism(prev)
	if got := igo.Parallelism(2); got != 2 {
		t.Fatalf("Parallelism(2) twice returned %d, want 2", got)
	}

	// A training run at width 2 must equal the width-1 run bit for bit,
	// warm or cold.
	cfg := smallFastConfig()
	model, err := igo.ModelByName(igo.EdgeSuite(), "ncf")
	if err != nil {
		t.Fatal(err)
	}
	igo.ResetCaches()
	par := igo.Train(cfg, model, igo.Rearrange)
	igo.Parallelism(1)
	seq := igo.Train(cfg, model, igo.Rearrange)
	if par.TotalCycles() != seq.TotalCycles() {
		t.Fatalf("cycles differ across widths: %d vs %d", par.TotalCycles(), seq.TotalCycles())
	}

	// The run above populated the layer memo; CacheStats must mention it
	// with a nonzero lookup count.
	found := false
	for _, line := range igo.CacheStats() {
		if strings.Contains(line, "core/layer-sim") && !strings.Contains(line, "0 lookups") {
			found = true
		}
	}
	if !found {
		t.Fatalf("CacheStats missing live layer-sim counters: %q", igo.CacheStats())
	}

	// ResetCaches also zeroes the registered hit/miss counters.
	igo.ResetCaches()
	for _, line := range igo.CacheStats() {
		if strings.Contains(line, "core/layer-sim") && !strings.Contains(line, "0 hits / 0 lookups") {
			t.Fatalf("ResetCaches left counters live: %q", line)
		}
	}
}

func TestPublicWithTrace(t *testing.T) {
	cfg := smallFastConfig()
	model, err := igo.ModelByName(igo.EdgeSuite(), "ncf")
	if err != nil {
		t.Fatal(err)
	}

	igo.ResetCaches()
	plain := igo.Train(cfg, model, igo.Interleave)

	igo.ResetCaches()
	var buf strings.Builder
	var traced igo.ModelRun
	m, err := igo.WithTrace(&buf, func() {
		traced = igo.Train(cfg, model, igo.Interleave)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Tracing is observability only: the run is bit-identical.
	if plain.TotalCycles() != traced.TotalCycles() {
		t.Fatalf("tracing changed the result: %d vs %d cycles", plain.TotalCycles(), traced.TotalCycles())
	}
	// The metrics reconcile with the simulated work.
	if m.Cycles == 0 || m.Cycles != m.ComputeBusy+m.StallDMA+m.StallSpill {
		t.Fatalf("stall attribution does not reconcile: %+v", m)
	}
	if m.Tracks == 0 || m.Ops == 0 || m.Tasks == 0 {
		t.Fatalf("trace missing engine tracks or runner tasks: %+v", m)
	}
	// The writer received the Chrome trace-event JSON.
	out := buf.String()
	if !strings.HasPrefix(out, `{"displayTimeUnit"`) || !strings.Contains(out, `"traceEvents"`) {
		t.Fatalf("WithTrace wrote unexpected output: %.80s", out)
	}
	if rep := m.Report(); !strings.Contains(rep, "=== trace report ===") {
		t.Fatalf("Report() malformed: %.80s", rep)
	}
}

// TestSelfCheck runs the embedded property-suite slice: the differential
// oracle and its sibling invariants must hold on this platform.
func TestSelfCheck(t *testing.T) {
	if err := igo.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}
