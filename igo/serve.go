package igo

import (
	"net/http"

	"igosim/internal/serve"
)

// Serving: the simulation-as-a-service layer behind cmd/igoserved.
// ServeHandler returns the full HTTP API — POST /simulate and /batch,
// GET /healthz and /metrics — for embedding in a host process; response
// bodies are a pure function of the request (byte-identical at any
// parallelism or cache state), with cache status and timings confined to
// headers and /metrics.

// ServeRequest is one simulation query (workload, NPU config, options).
type ServeRequest = serve.Request

// ServeResponse is one simulation result.
type ServeResponse = serve.Response

// ServeOptions configure the service: cache capacity, per-request
// timeout, batch limit, simulation concurrency. The zero value is usable.
type ServeOptions = serve.Options

// ServeServer is a configured service instance; see ServeHandler.
type ServeServer = serve.Server

// NewServer builds a service instance. Run one per process: every client
// then shares the result, layer-memo and compiled-program caches.
func NewServer(opts ServeOptions) *ServeServer { return serve.New(opts) }

// ServeHandler builds a service instance with the given options and
// returns its HTTP handler, for mounting into an existing mux.
func ServeHandler(opts ServeOptions) http.Handler { return serve.New(opts).Handler() }

// ServeFingerprint canonicalizes a request and returns its cache key:
// requests sharing a fingerprint share one cache entry and one
// simulation.
func ServeFingerprint(req ServeRequest) (string, error) { return serve.Fingerprint(req) }
