// Package bench holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (go test -bench=. -benchmem). Each
// BenchmarkFigXX runs the corresponding experiment end to end and reports
// the headline quantity the paper quotes as a custom metric, so the bench
// log doubles as the reproduction record. Microbenchmarks for the
// simulator's hot paths follow at the bottom.
package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"

	ibench "igosim/internal/bench"
	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/experiments"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/tensor"
	"igosim/internal/workload"
)

// summaryMetric extracts the first number following the given marker in an
// experiment summary line and reports it on the benchmark. A missing
// marker or an unparsable number fails the benchmark: these metrics are
// the reproduction record, so silently reporting nothing would let a
// reworded summary line go unnoticed.
func summaryMetric(b *testing.B, rep experiments.Report, marker, unit string) {
	b.Helper()
	for _, line := range rep.Summary {
		idx := strings.Index(line, marker)
		if idx < 0 {
			continue
		}
		rest := line[idx+len(marker):]
		var num strings.Builder
		for _, r := range rest {
			if (r >= '0' && r <= '9') || r == '.' || r == '-' || r == '+' {
				num.WriteRune(r)
				continue
			}
			if num.Len() > 0 {
				break
			}
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(num.String(), "+"), 64)
		if err != nil {
			b.Fatalf("%s: summary line %q has no parsable number after marker %q", rep.ID, line, marker)
		}
		b.ReportMetric(v, unit)
		return
	}
	b.Fatalf("%s: no summary line contains marker %q (summaries: %q)", rep.ID, marker, rep.Summary)
}

func BenchmarkFig03Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Fig03()
		summaryMetric(b, rep, "average backward share ", "bwd_share_%")
	}
}

func BenchmarkFig05DYTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Fig05()
		summaryMetric(b, rep, "read traffic ", "dY_read_share_%")
	}
}

func BenchmarkFig06IdealReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Fig06()
		summaryMetric(b, rep, "speedup ", "ideal_reuse_speedup_x")
	}
}

func BenchmarkFig12SingleCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Fig12()
		summaryMetric(b, rep, "+datapartitioning ", "small_npu_reduction_%")
	}
}

func BenchmarkFig13PerLayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Fig13()
		summaryMetric(b, rep, "average normalized traffic ", "norm_traffic")
	}
}

func BenchmarkAlg1Selection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Alg1()
	}
}

func BenchmarkFig14MultiCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Fig14()
		summaryMetric(b, rep, "4 cores: average execution-time reduction ", "quad_core_reduction_%")
	}
}

func BenchmarkFig15Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Fig15()
		summaryMetric(b, rep, "(37.5 GB/s): average execution-time reduction ", "quarter_bw_reduction_%")
	}
}

func BenchmarkFig16BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Fig16()
		summaryMetric(b, rep, "batch 32: average execution-time reduction ", "batch32_reduction_%")
	}
}

func BenchmarkFig17GPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Fig17()
		summaryMetric(b, rep, "+datapartitioning ", "gpu_full_stack_reduction_%")
	}
}

func BenchmarkKNNSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.KNNSelection(10)
		summaryMetric(b, rep, "average accuracy ", "knn_accuracy_%")
	}
}

// --- ablation benches: the design choices DESIGN.md calls out ---

// BenchmarkAblationOrderSelectors compares rearrangement under the
// Algorithm 1 listing, the prose rule, the static cost model and the ideal
// simulated selection on the large NPU (ResNet-50).
func BenchmarkAblationOrderSelectors(b *testing.B) {
	cfg := config.LargeNPU()
	m, _ := workload.ByAbbr(workload.ServerSuite(), "res")
	base := core.RunTraining(cfg, sim.Options{}, m, core.PolBaseline)
	selectors := map[string]core.OrderSelector{
		"listing": func(_ config.NPU, p schedule.TileParams) core.Order { return core.SelectOrderLiteral(p.Dims) },
		"prose":   func(_ config.NPU, p schedule.TileParams) core.Order { return core.SelectOrder(p.Dims) },
		"static":  func(c config.NPU, p schedule.TileParams) core.Order { return core.SelectOrderFor(p, c.SPMBytes) },
		"ideal":   func(c config.NPU, p schedule.TileParams) core.Order { return core.BestOrderSimulated(c, p) },
	}
	for name, sel := range selectors {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run := core.RunTrainingSelector(cfg, sim.Options{}, m, sel)
				b.ReportMetric(100*core.Improvement(base, run), "reduction_%")
			}
		})
	}
}

// BenchmarkAblationPartitionSchemes pins each partitioning scheme on a
// quad-core NPU for BERT-large, isolating the inter-core distribution
// choice.
func BenchmarkAblationPartitionSchemes(b *testing.B) {
	cfg := config.LargeNPU().WithCores(4)
	m, _ := workload.ByAbbr(workload.ServerSuite(), "bert")
	plans := core.PlanModel(cfg, m)
	for _, scheme := range core.Schemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var total int64
				for _, lp := range plans {
					if lp.Layer.SkipDX {
						continue
					}
					out := core.RunPartitionedScheme(cfg, sim.Options{}, lp.Params, scheme, cfg.Cores)
					total += out.Cycles
				}
				b.ReportMetric(float64(total), "bwd_cycles")
			}
		})
	}
}

// BenchmarkAblationSharedSPM quantifies the shared-vs-private scratchpad
// placement on the multi-core backward pass (ResNet-50, 4 cores).
func BenchmarkAblationSharedSPM(b *testing.B) {
	cfg := config.LargeNPU().WithCores(4)
	m, _ := workload.ByAbbr(workload.ServerSuite(), "res")
	for i := 0; i < b.N; i++ {
		run := core.RunBackwardOnly(cfg, sim.Options{}, m, core.PolPartition)
		var shared int64
		for _, l := range run.Bwd {
			shared += l.SharedHits
		}
		b.ReportMetric(float64(shared), "cross_core_hits")
	}
}

// --- runner: parallel speedup and memo effectiveness ---

// BenchmarkRunnerSpeedup measures the wall-clock ratio of the same cold
// experiment grid (one baseline training step per server-suite model) at
// -j 1 versus -j 4, reporting it as speedup_x, plus the layer memo's hit
// rate on the cold run. On a 4+ core machine the speedup approaches the
// worker count; on a single core it hovers around 1.0x (scheduling
// overhead only — the work itself is identical).
func BenchmarkRunnerSpeedup(b *testing.B) {
	cfg := config.LargeNPU()
	models := workload.ServerSuite()
	grid := func(j int) time.Duration {
		prev := runner.SetParallelism(j)
		defer runner.SetParallelism(prev)
		core.ResetCaches() // cold: both widths pay full simulation cost
		start := time.Now()
		runner.Map(models, func(m workload.Model) core.ModelRun {
			return core.RunTraining(cfg, sim.Options{}, m, core.PolBaseline)
		})
		return time.Since(start)
	}
	for i := 0; i < b.N; i++ {
		seq := grid(1)
		par := grid(4)
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup_x")
		b.ReportMetric(100*core.LayerMemoStats().HitRate(), "memo_hit_%")
	}
}

// BenchmarkSweepPruned runs the canonical pruned design-space sweep
// (internal/bench.SweepSpace: a dense-bandwidth, two-policy grid) end to
// end, reporting throughput in points/s and the fraction of points the
// analytic pruner skipped. cmd/benchjson tracks the same numbers as
// BENCH_sweep.json.
func BenchmarkSweepPruned(b *testing.B) {
	ibench.SweepPruned()(b)
}

// --- microbenchmarks: simulator hot paths ---

func BenchmarkEngineStep(b *testing.B) {
	cfg := config.LargeNPU()
	p := core.LayerParams(tensor.Dims{M: 1024, K: 1024, N: 1024}, 1, cfg)
	ops := schedule.BaselineBackward(p).Ops
	e := sim.NewEngine(cfg, sim.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Run(ops)
	}
	b.ReportMetric(float64(len(ops)), "ops/run")
}

func BenchmarkScheduleGeneration(b *testing.B) {
	cfg := config.LargeNPU()
	p := core.LayerParams(tensor.Dims{M: 4096, K: 1024, N: 4096}, 1, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.InterleaveDXMajorChunked(p, 4)
	}
}

func BenchmarkChooseTiling(b *testing.B) {
	cfg := config.LargeNPU()
	d := tensor.Dims{M: 25088, K: 576, N: 64}
	for i := 0; i < b.N; i++ {
		_ = schedule.ChooseTiling(d, cfg)
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	var samples []core.SchemeSample
	for i := 1; i <= 64; i++ {
		samples = append(samples, core.SchemeSample{
			Dims: tensor.Dims{M: 64 * i, K: 64 + i, N: 512 - i},
			Best: core.Schemes()[i%3],
		})
	}
	sel, err := core.TrainSchemeSelector(samples, core.DefaultSchemeK)
	if err != nil {
		b.Fatal(err)
	}
	d := tensor.Dims{M: 777, K: 99, N: 303}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sel.Predict(d)
	}
}

func BenchmarkNumericalValidation(b *testing.B) {
	d := tensor.Dims{M: 32, K: 24, N: 28}
	tl := schedule.Tiling{Tm: 8, Tk: 6, Tn: 7}
	p := schedule.TileParams{Dims: d, Tiling: tl, ElemBytes: 4, Layer: 1}
	ops := core.InterleaveDXMajor(p).Ops
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.CheckEquivalence(d, tl, ops, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}
