// Federated-edge scenario: the paper's introduction motivates on-device
// training for personalization and federated learning, where each edge
// device computes model updates locally. This example sizes a federated
// round on the Ethos-class edge NPU: fine-tuning BERT-tiny and MobileNet
// locally, it reports per-step time and DRAM traffic (the dominant energy
// term on edge silicon) with and without the interleaved gradient order.
package main

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/sim"
	"igosim/internal/workload"
)

const (
	stepsPerRound = 50 // local SGD steps per federated round
)

func main() {
	cfg := config.SmallNPU()
	suite := workload.EdgeSuite()

	fmt.Printf("Federated round on %s: %d local steps, batch %d\n\n",
		cfg.Name, stepsPerRound, cfg.Batch)

	for _, abbr := range []string{"bert", "mob"} {
		model, err := workload.ByAbbr(suite, abbr)
		if err != nil {
			panic(err)
		}
		base := core.RunTraining(cfg, sim.Options{}, model, core.PolBaseline)
		igo := core.RunTraining(cfg, sim.Options{}, model, core.PolPartition)

		baseRound := base.Seconds(cfg) * stepsPerRound
		igoRound := igo.Seconds(cfg) * stepsPerRound
		baseGB := float64(base.BwdTraffic.Total()) * stepsPerRound / 1e9
		igoGB := float64(igo.BwdTraffic.Total()) * stepsPerRound / 1e9

		fmt.Printf("%s (%s):\n", model.Name, model.Abbr)
		fmt.Printf("  baseline: %7.1f ms/round, %6.2f GB backward DRAM traffic\n", baseRound*1e3, baseGB)
		fmt.Printf("  IGO:      %7.1f ms/round, %6.2f GB backward DRAM traffic\n", igoRound*1e3, igoGB)
		fmt.Printf("  round time reduced %.1f%%, backward traffic reduced %.1f%%\n\n",
			100*(1-igoRound/baseRound), 100*(1-igoGB/baseGB))
	}

	fmt.Println("Traffic reductions translate almost directly to energy on edge")
	fmt.Println("devices, where DRAM access dominates the power budget.")
}
