// Server multi-core scenario: train BERT-large on a TPUv4-like quad-core
// NPU with shared scratchpad. The example shows the inter-core
// distribution step at work: for each of the longest layers it prints the
// partitioning scheme the planner picked (weight-sharing / dY-sharing /
// ifmap-sharing) and the resulting speedup over conventional batch-basis
// data parallelism.
package main

import (
	"fmt"
	"sort"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/sim"
	"igosim/internal/workload"
)

func main() {
	cfg := config.LargeNPU().WithCores(4)
	model, err := workload.ByAbbr(workload.ServerSuite(), "bert")
	if err != nil {
		panic(err)
	}

	fmt.Printf("Training %s on %s: %d cores x (%dx%d PEs), %d MiB shared SPM, batch %d\n\n",
		model.Name, cfg.Name, cfg.Cores, cfg.ArrayRows, cfg.ArrayCols,
		cfg.TotalSPMBytes()>>20, cfg.TotalBatch())

	base := core.RunTraining(cfg, sim.Options{}, model, core.PolBaseline)
	igo := core.RunTraining(cfg, sim.Options{}, model, core.PolPartition)

	fmt.Printf("baseline (batch-split data parallelism): %8.2f ms/step\n", base.Seconds(cfg)*1e3)
	fmt.Printf("interleaved gradient order (full stack): %8.2f ms/step\n", igo.Seconds(cfg)*1e3)
	fmt.Printf("execution-time reduction: %.1f%%\n\n", 100*core.Improvement(base, igo))

	// Rank layers by baseline backward time and show the chosen mapping.
	type entry struct {
		name string
		base int64
		out  core.LayerOutcome
	}
	var entries []entry
	for i := range igo.Bwd {
		entries = append(entries, entry{name: igo.Bwd[i].Name, base: base.Bwd[i].Cycles, out: igo.Bwd[i]})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].base > entries[j].base })

	fmt.Printf("%-18s %-22s %-20s %-9s %s\n", "layer", "dims (M,K,N)", "scheme", "order", "speedup")
	for _, e := range entries[:10] {
		sp := float64(e.base) / float64(e.out.Cycles)
		fmt.Printf("%-18s %-22s %-20s %-20s %.2fx\n",
			e.name, fmt.Sprintf("(%d,%d,%d)", e.out.Dims.M, e.out.Dims.K, e.out.Dims.N),
			fmt.Sprintf("%s x%d", e.out.Scheme, e.out.Parts), e.out.Order, sp)
	}
}
