// Quickstart: simulate one training step of ResNet-50 on the edge NPU,
// comparing the conventional backward pass against the full interleaved
// gradient order stack. This is the five-minute tour of the library:
// pick a config, pick a model, run the policies, read the numbers.
package main

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/dram"
	"igosim/internal/sim"
	"igosim/internal/workload"
)

func main() {
	cfg := config.SmallNPU()
	model, err := workload.ByAbbr(workload.EdgeSuite(), "res")
	if err != nil {
		panic(err)
	}

	fmt.Printf("Simulating %s on %s (%dx%d PEs, %d KiB SPM, %.0f GB/s)\n\n",
		model.Name, cfg.Name, cfg.ArrayRows, cfg.ArrayCols,
		cfg.SPMBytes/1024, cfg.DRAMBandwidth/1e9)

	base := core.RunTraining(cfg, sim.Options{}, model, core.PolBaseline)
	fmt.Printf("%-20s %12s %12s %10s %12s\n", "policy", "fwd cycles", "bwd cycles", "time (ms)", "dY read (MB)")
	for _, pol := range core.Policies() {
		run := base
		if pol != core.PolBaseline {
			run = core.RunTraining(cfg, sim.Options{}, model, pol)
		}
		fmt.Printf("%-20s %12d %12d %10.2f %12.1f\n",
			run.Policy, run.FwdCycles, run.BwdCycles, run.Seconds(cfg)*1e3,
			float64(run.BwdTraffic.Read[dram.ClassDY])/1e6)
		if pol != core.PolBaseline {
			fmt.Printf("%-20s execution-time reduction vs baseline: %.1f%%\n",
				"", 100*core.Improvement(base, run))
		}
	}
}
