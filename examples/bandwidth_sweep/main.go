// Bandwidth/SPM design-space sweep: the paper argues (Section 6.4) that
// data reuse matters more as bandwidth per PE shrinks — the TPU trend. This
// example sweeps DRAM bandwidth and scratchpad size on a custom single-core
// server NPU, maps where the interleaved gradient order pays off, and finds
// the bandwidth below which its benefit exceeds 15% — the kind of study a
// hardware architect would run with this library.
package main

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/sim"
	"igosim/internal/workload"
)

func main() {
	model, err := workload.ByAbbr(workload.ServerSuite(), "res")
	if err != nil {
		panic(err)
	}

	bandwidths := []float64{300e9, 150e9, 75e9, 37.5e9}
	spmSizes := []int64{4 << 20, 8 << 20, 16 << 20}

	fmt.Printf("IGO execution-time reduction for %s, single server core\n\n", model.Name)
	fmt.Printf("%12s", "BW \\ SPM")
	for _, spm := range spmSizes {
		fmt.Printf(" %9d MiB", spm>>20)
	}
	fmt.Println()

	var crossover float64
	for _, bw := range bandwidths {
		fmt.Printf("%9.1f GB/s", bw/1e9)
		for _, spm := range spmSizes {
			cfg := config.LargeNPU().WithBandwidth(bw)
			cfg.SPMBytes = spm
			cfg.Name = fmt.Sprintf("custom-%dMiB", spm>>20)

			base := core.RunTraining(cfg, sim.Options{}, model, core.PolBaseline)
			igo := core.RunTraining(cfg, sim.Options{}, model, core.PolPartition)
			imp := core.Improvement(base, igo)
			fmt.Printf(" %12.1f%%", 100*imp)
			if spm == 8<<20 && imp > 0.15 && crossover == 0 {
				crossover = bw
			}
		}
		fmt.Println()
	}

	fmt.Println()
	if crossover > 0 {
		fmt.Printf("With the 8 MiB scratchpad, IGO buys >15%% once bandwidth drops to %.1f GB/s per core —\n", crossover/1e9)
		fmt.Println("the regime TPUv4 already lives in (150 GB/s per MXU, down from 350 in TPUv2).")
	} else {
		fmt.Println("The >15% regime starts below the swept bandwidth range for this model.")
	}
}
