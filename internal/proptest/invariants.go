package proptest

import (
	"fmt"
	"reflect"

	"igosim/internal/analytic"
	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/dram"
	"igosim/internal/refmodel"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/trace"
)

// Invariant is one property every generated case must satisfy. The check
// returns a descriptive error naming the violated relation; the runner
// attaches the (shrunk) case.
type Invariant struct {
	Name  string
	Check func(Case) error
}

// Invariants returns the differential property suite. Ordering is by cost:
// the cheap structural checks run first so a shrink loop on a structural
// failure never pays for simulations.
func Invariants() []Invariant {
	return []Invariant{
		{"structure", CheckStructure},
		{"oracle", CheckOracle},
		{"compiled-equivalence", CheckCompiledEquivalence},
		{"resolved-replay", CheckResolvedReplay},
		{"cycle-bounds", CheckCycleBounds},
		{"conservation", CheckConservation},
		{"partition", CheckPartition},
		{"dy-reuse", CheckDYReuse},
		{"analytic-bounds", CheckAnalyticBounds},
	}
}

// CheckStructure verifies the generated schedule variant is a well-formed
// backward pass: the stream passes schedule.VerifyBackward and numerically
// reproduces the reference gradients (every variant is a pure reordering of
// the same tile operations).
func CheckStructure(c Case) error {
	ops := c.AllOps()
	if len(ops) == 0 {
		return fmt.Errorf("variant produced an empty stream")
	}
	if err := schedule.VerifyBackward(c.Params(), ops, false); err != nil {
		return err
	}
	return core.CheckEquivalence(c.Dims, c.Tiling, ops, 1e-8)
}

// CheckOracle replays the case's kernel stream through the internal/refmodel
// interpreter and demands bit-exact agreement with internal/sim on every
// counter: cycles, per-class traffic, residency stats and spills. Both the
// default engine semantics and the Section 3.3 free-dY limit study are
// compared.
func CheckOracle(c Case) error {
	cfg := c.Config()
	scheds := c.Schedules()
	for _, free := range []bool{false, true} {
		got := sim.RunSchedules(cfg, sim.Options{FreeDYOnDW: free}, scheds...)
		want := refmodel.ReplaySchedules(cfg, refmodel.Options{FreeDYOnDW: free}, scheds...)
		if err := refmodel.Compare(got, want); err != nil {
			return fmt.Errorf("freeDY=%v: %w", free, err)
		}
	}
	return nil
}

// CheckCompiledEquivalence is the three-way agreement property behind the
// compiled execution path (DESIGN.md §3g): for every generated case and
// both free-dY modes, the compiled engine, the interpreter and the
// refmodel oracle must agree bit-exactly on every counter. The
// compiled/interpreted comparison is full-struct equality; the oracle
// comparison reuses refmodel's field-by-field diff for readable failures.
func CheckCompiledEquivalence(c Case) error {
	cfg := c.Config()
	scheds := c.Schedules()
	for _, free := range []bool{false, true} {
		interp := sim.RunSchedules(cfg, sim.Options{FreeDYOnDW: free, Compiled: sim.EngineInterpreted}, scheds...)
		compiled := sim.RunSchedules(cfg, sim.Options{FreeDYOnDW: free, Compiled: sim.EngineCompiled}, scheds...)
		if !reflect.DeepEqual(compiled, interp) {
			return fmt.Errorf("freeDY=%v: compiled %+v != interpreted %+v", free, compiled, interp)
		}
		want := refmodel.ReplaySchedules(cfg, refmodel.Options{FreeDYOnDW: free}, scheds...)
		if err := refmodel.Compare(compiled, want); err != nil {
			return fmt.Errorf("freeDY=%v: compiled vs oracle: %w", free, err)
		}
	}
	return nil
}

// costVariants returns hardware points that re-price the base case's op
// stream without touching emission (ElemBytes), residency (SPMBytes) or
// partitioning (Cores): DRAM bandwidth, burst latency, the clock, and the
// array-timing axes. These are exactly the axes a resolved trace claims
// invariance over, so each variant must replay bit-exactly from a trace
// resolved at the base point.
func costVariants(base config.NPU) []config.NPU {
	wide := base
	wide.DRAMBandwidth *= 2
	slow := base
	slow.DRAMLatency += 7
	slow.DRAMBandwidth = max(1e9, base.DRAMBandwidth/3)
	clocked := base
	clocked.DRAMLatency = 0
	clocked.FrequencyHz = base.FrequencyHz / 2
	swapped := base
	swapped.ArrayRows, swapped.ArrayCols = base.ArrayCols, base.ArrayRows
	if swapped.Dataflow == config.OutputStationary {
		swapped.Dataflow = config.WeightStationary
	} else {
		swapped.Dataflow = config.OutputStationary
	}
	return []config.NPU{wide, slow, clocked, swapped}
}

// CheckResolvedReplay is the two-phase execution property (DESIGN.md §3l):
// a trace resolved once at a base hardware point must replay bit-exactly —
// full Result equality — at every cost variant, agreeing with both a fresh
// one-shot engine run and the refmodel oracle at that variant, in both
// dY regimes. This is what licenses the sweep and serving layers to pay
// residency resolution once per (program, capacity, policy) key and
// re-price the trace thousands of times.
func CheckResolvedReplay(c Case) error {
	base := c.Config()
	scheds := c.Schedules()
	prog := sim.CompileSchedules(scheds...)
	for _, free := range []bool{false, true} {
		opts := sim.Options{FreeDYOnDW: free}
		_, rt := sim.ResolveProgram(base, opts, prog)
		if rt == nil {
			return fmt.Errorf("freeDY=%v: resolution yielded no trace", free)
		}
		for vi, cfg := range costVariants(base) {
			replayed := rt.Replay(cfg)
			engine, _ := sim.ResolveProgram(cfg, opts, prog)
			if !reflect.DeepEqual(replayed, engine) {
				return fmt.Errorf("freeDY=%v variant %d: replay %+v != engine %+v", free, vi, replayed, engine)
			}
			want := refmodel.ReplaySchedules(cfg, refmodel.Options{FreeDYOnDW: free}, scheds...)
			if err := refmodel.Compare(replayed, want); err != nil {
				return fmt.Errorf("freeDY=%v variant %d: replay vs oracle: %w", free, vi, err)
			}
		}
	}
	return nil
}

// CheckCycleBounds verifies the pipeline makespan sits inside its analytic
// envelope — at least the busier stage, at most the sum of both stages (a
// two-stage pipeline is always at least serially correct and never slower
// than unoverlapped execution) — and that the cycle-level trace reconciles
// with the result counters to the cycle.
func CheckCycleBounds(c Case) error {
	cfg := c.Config()
	scheds := c.Schedules()
	snk := trace.New()
	r := sim.RunSchedules(cfg, sim.Options{Trace: snk, TraceLabel: "proptest"}, scheds...)

	if r.Cycles < max(r.ComputeCycles, r.MemCycles) {
		return fmt.Errorf("makespan %d below stage maximum max(comp %d, mem %d)",
			r.Cycles, r.ComputeCycles, r.MemCycles)
	}
	if r.Cycles > r.ComputeCycles+r.MemCycles {
		return fmt.Errorf("makespan %d exceeds unoverlapped bound comp %d + mem %d",
			r.Cycles, r.ComputeCycles, r.MemCycles)
	}
	var wantOps int64
	for _, s := range scheds {
		wantOps += int64(len(s.Ops))
	}
	if r.Ops != wantOps {
		return fmt.Errorf("result counts %d ops, stream has %d", r.Ops, wantOps)
	}
	if err := snk.Check(); err != nil {
		return err
	}
	m := snk.Metrics()
	if m.Cycles != r.Cycles || m.Ops != r.Ops || m.Spills != r.Spills {
		return fmt.Errorf("trace metrics (cycles %d ops %d spills %d) disagree with result (cycles %d ops %d spills %d)",
			m.Cycles, m.Ops, m.Spills, r.Cycles, r.Ops, r.Spills)
	}
	return nil
}

// CheckConservation holds simulated traffic to the op stream's
// compulsory-traffic floor: per class, reads at or above the floor, writes
// exactly at it (accumulator spill writebacks excepted).
func CheckConservation(c Case) error {
	r := sim.RunSchedules(c.Config(), sim.Options{}, c.Schedules()...)
	return analytic.BoundsOf(c.AllOps()).Check(r.Traffic)
}

// CheckDYReuse is the paper's headline claim as an executable property: with
// enough scratchpad for the working set of one interleaved block, the
// rearranged orders (dXmajor / dWmajor, chunked or not) read every dY tile
// from DRAM exactly once, while the conventional two-kernel baseline reads
// the whole of dY once per gradient. The capacity premise matters — under
// heavy pressure a rearranged order can thrash like any other — so the
// check runs on the case relaxed to an eight-tile scratchpad floor, which
// covers the at-most-six-tile gap between consecutive uses of a dY tile
// inside one rearranged block. The plain interleave (no reordering) carries
// no such guarantee and is held only to the compulsory floor.
func CheckDYReuse(c Case) error {
	rc := c.Relaxed()
	cfg := rc.Config()
	p := rc.Params()

	base := sim.RunSchedules(cfg, sim.Options{},
		schedule.Schedule{Name: "dx-kernel", Ops: schedule.BaselineDX(p)},
		schedule.Schedule{Name: "dw-kernel", Ops: schedule.BaselineDW(p)},
	)
	baseDY := base.Traffic.Read[dram.ClassDY]
	distinctDY := analytic.BoundsOf(schedule.BaselineDX(p)).MinRead[dram.ClassDY]

	// The baseline's two flushed kernels each stream dY at least once.
	if baseDY < 2*distinctDY {
		return fmt.Errorf("two-kernel baseline read %d dY bytes, below the 2x floor %d", baseDY, 2*distinctDY)
	}

	rearranged := []schedule.Schedule{
		core.InterleaveDXMajor(p),
		core.InterleaveDWMajor(p),
		core.InterleaveDXMajorChunked(p, rc.Chunk),
		core.InterleaveDWMajorChunked(p, rc.Chunk),
	}
	for _, s := range rearranged {
		r := sim.RunSchedules(cfg, sim.Options{}, s)
		dy := r.Traffic.Read[dram.ClassDY]
		if dy != distinctDY {
			return fmt.Errorf("%s read %d dY bytes, want exactly the distinct-tile floor %d", s.Name, dy, distinctDY)
		}
		if dy > baseDY {
			return fmt.Errorf("%s read %d dY bytes, more than the two-kernel baseline %d", s.Name, dy, baseDY)
		}
	}

	il := sim.RunSchedules(cfg, sim.Options{}, core.InterleaveOnly(p))
	if dy := il.Traffic.Read[dram.ClassDY]; dy < distinctDY {
		return fmt.Errorf("interleave-only read %d dY bytes, below compulsory floor %d", dy, distinctDY)
	}
	return nil
}

// CheckPartition verifies the Figure 11 partitioning machinery: the plan
// reassembles the parent dimensions, every partition's stream is a valid
// backward pass for its sub-shape, the union of partition streams covers
// the parent tile grid exactly once per gradient, and executing all
// partitions together reproduces the reference gradients (the reduction of
// partial outputs is implicit in accumulation).
func CheckPartition(c Case) error {
	p := c.Params()
	plan := core.PartitionLayer(p, c.Scheme, c.Parts)
	if n := len(plan.Parts); n < 1 || n > c.Parts {
		return fmt.Errorf("%v plan has %d partitions, requested at most %d", c.Scheme, n, c.Parts)
	}
	if got := plan.Dims(); got != c.Dims {
		return fmt.Errorf("%v plan dims %v do not reassemble parent %v", c.Scheme, got, c.Dims)
	}
	streams := make([][]schedule.Op, len(plan.Parts))
	for i, sub := range plan.Parts {
		s := core.Interleaved(sub, core.SelectOrder(sub.Dims))
		if err := schedule.VerifyBackward(sub, s.Ops, false); err != nil {
			return fmt.Errorf("%v partition %d: %w", c.Scheme, i, err)
		}
		streams[i] = s.Ops
	}
	if err := CheckCoverage(c.Dims, c.Tiling, streams); err != nil {
		return fmt.Errorf("%v x%d: %w", c.Scheme, c.Parts, err)
	}
	var combined []schedule.Op
	for _, ops := range streams {
		combined = append(combined, ops...)
	}
	if err := core.CheckEquivalence(c.Dims, c.Tiling, combined, 1e-8); err != nil {
		return fmt.Errorf("%v x%d: %w", c.Scheme, c.Parts, err)
	}
	return nil
}

// gridPoint identifies one (m,k,n) tile-grid op of one gradient in parent
// coordinates.
type gridPoint struct {
	kind       schedule.Kind
	mo, ko, no int32
}

// parentCoords recovers the parent tile-grid coordinates of a backward op
// from its operand keys (which partitioned generators emit in parent-grid
// coordinates by construction).
func parentCoords(op *schedule.Op) (gridPoint, error) {
	switch op.Kind {
	case schedule.KindDX:
		// A = dY[mo,no], B = W[ko,no]
		return gridPoint{kind: schedule.KindDX, mo: op.A.Key.Row, no: op.A.Key.Col, ko: op.B.Key.Row}, nil
	case schedule.KindDW:
		// A = X[mo,ko], B = dY[mo,no]
		return gridPoint{kind: schedule.KindDW, mo: op.A.Key.Row, ko: op.A.Key.Col, no: op.B.Key.Col}, nil
	default:
		return gridPoint{}, fmt.Errorf("op kind %v has no backward grid point", op.Kind)
	}
}

// CheckCoverage verifies a set of op streams covers the parent backward
// tile grid exactly once: each of the mt*kt*nt grid points appears exactly
// once per gradient across all streams, never twice and never zero times.
// The multicore partition tests reuse this to prove split streams neither
// drop nor duplicate work.
func CheckCoverage(d schedule.Dims, t schedule.Tiling, streams [][]schedule.Op) error {
	mt, kt, nt := t.Counts(d)
	seen := make(map[gridPoint]int)
	for si, ops := range streams {
		for i := range ops {
			gp, err := parentCoords(&ops[i])
			if err != nil {
				return fmt.Errorf("stream %d op %d: %w", si, i, err)
			}
			if int(gp.mo) >= mt || int(gp.ko) >= kt || int(gp.no) >= nt || gp.mo < 0 || gp.ko < 0 || gp.no < 0 {
				return fmt.Errorf("stream %d op %d grid point (%d,%d,%d) outside parent grid %dx%dx%d",
					si, i, gp.mo, gp.ko, gp.no, mt, kt, nt)
			}
			seen[gp]++
			if seen[gp] > 1 {
				return fmt.Errorf("stream %d op %d: %v grid point (%d,%d,%d) covered twice",
					si, i, gp.kind, gp.mo, gp.ko, gp.no)
			}
		}
	}
	want := 2 * mt * kt * nt
	if len(seen) != want {
		return fmt.Errorf("streams cover %d grid points, want %d (%dx%dx%d per gradient)",
			len(seen), want, mt, kt, nt)
	}
	return nil
}

// CheckAnalyticBounds holds internal/analytic's sweep-pruning lower bounds
// (lower.go) at or below the simulated values on every schedule variant the
// generator produces — the soundness property internal/dse's pruner rests
// on: a point whose *bound* is dominated would also be dominated by its
// *simulation*, so skipping it never discards a frontier point (up to the
// sweep's explicit epsilon relaxations). Both FreeDYOnDW modes run, since
// the dY floor is dropped under the free-dY limit study. The sequential
// two-kernel baseline additionally meets the tighter TrafficSeq/CyclesSeq
// floors that fuel the reduction cap.
func CheckAnalyticBounds(c Case) error {
	cfg := c.Config()
	p := c.Params()
	fb := analytic.ForwardBounds(cfg, p)
	fr := sim.RunSchedules(cfg, sim.Options{}, schedule.Forward(p))
	if err := passBelow("forward", fb, fr, fb.Traffic, fb.Mem); err != nil {
		return err
	}
	for _, free := range []bool{false, true} {
		pb := analytic.BackwardBounds(cfg, p, false, free)
		r := sim.RunSchedules(cfg, sim.Options{FreeDYOnDW: free}, c.Schedules()...)
		if err := passBelow(fmt.Sprintf("backward(freeDY=%v)", free), pb, r, pb.Traffic, pb.Mem); err != nil {
			return err
		}
		if c.Variant == VariantBaselineTwoKernel && !free {
			if pb.TrafficSeq > r.Traffic.Total() {
				return fmt.Errorf("sequential traffic floor %d above two-kernel baseline %d", pb.TrafficSeq, r.Traffic.Total())
			}
			if pb.MemSeq > r.MemCycles {
				return fmt.Errorf("sequential mem floor %d above two-kernel baseline %d", pb.MemSeq, r.MemCycles)
			}
			if pb.CyclesSeq > r.Cycles {
				return fmt.Errorf("sequential cycle bound %d above two-kernel baseline %d", pb.CyclesSeq, r.Cycles)
			}
		}
	}
	return nil
}

// passBelow compares one pass's analytic bounds against a simulation.
func passBelow(pass string, pb analytic.PassBounds, r sim.Result, traffic, mem int64) error {
	switch {
	case pb.Compute > r.ComputeCycles:
		return fmt.Errorf("%s: compute total %d above simulated %d (must be exact-or-below)", pass, pb.Compute, r.ComputeCycles)
	case mem > r.MemCycles:
		return fmt.Errorf("%s: mem floor %d above simulated %d", pass, mem, r.MemCycles)
	case pb.Cycles > r.Cycles:
		return fmt.Errorf("%s: cycle bound %d above simulated makespan %d", pass, pb.Cycles, r.Cycles)
	case traffic > r.Traffic.Total():
		return fmt.Errorf("%s: traffic floor %d above simulated %d", pass, traffic, r.Traffic.Total())
	}
	return nil
}
