package proptest

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"igosim/internal/sim"
)

var errTooManyKTiles = errors.New("synthetic: more than one K tile")

// casesPerInvariant is the sample size of each property inside plain
// `go test`; the generator's op budget (maxOpsPerCase) keeps the whole
// suite well under the one-minute ceiling.
const casesPerInvariant = 200

func TestPropertyStructure(t *testing.T) {
	t.Parallel()
	Run(t, "structure", casesPerInvariant, CheckStructure)
}

func TestPropertyOracle(t *testing.T) {
	t.Parallel()
	Run(t, "oracle", casesPerInvariant, CheckOracle)
}

func TestPropertyCompiledEquivalence(t *testing.T) {
	t.Parallel()
	Run(t, "compiled-equivalence", casesPerInvariant, CheckCompiledEquivalence)
}

func TestPropertyResolvedReplay(t *testing.T) {
	t.Parallel()
	Run(t, "resolved-replay", casesPerInvariant, CheckResolvedReplay)
}

func TestPropertyCycleBounds(t *testing.T) {
	t.Parallel()
	Run(t, "cycle-bounds", casesPerInvariant, CheckCycleBounds)
}

func TestPropertyConservation(t *testing.T) {
	t.Parallel()
	Run(t, "conservation", casesPerInvariant, CheckConservation)
}

func TestPropertyPartition(t *testing.T) {
	t.Parallel()
	Run(t, "partition", casesPerInvariant, CheckPartition)
}

func TestPropertyDYReuse(t *testing.T) {
	t.Parallel()
	Run(t, "dy-reuse", casesPerInvariant, CheckDYReuse)
}

// TestGenCaseWellFormed proves the generator only emits cases the engine
// accepts: configs validate and normalization is idempotent.
func TestGenCaseWellFormed(t *testing.T) {
	t.Parallel()
	for i := 0; i < 500; i++ {
		c := GenCase(NewSource(uint64(i)))
		if err := c.Config().Validate(); err != nil {
			t.Fatalf("case %d: %v\n  %v", i, err, c)
		}
		if n := c.normalize(); n != c {
			t.Fatalf("case %d not normalization-fixed:\n  got  %v\n  want %v", i, c, n)
		}
		mt, kt, nt := c.Tiling.Counts(c.Dims)
		if mt*kt*nt > maxOpsPerCase {
			t.Fatalf("case %d exceeds op budget: %dx%dx%d", i, mt, kt, nt)
		}
	}
}

// TestGenCaseDeterministic pins generation to the seed alone.
func TestGenCaseDeterministic(t *testing.T) {
	t.Parallel()
	for i := 0; i < 50; i++ {
		a := GenCase(NewSource(uint64(i) * 977))
		b := GenCase(NewSource(uint64(i) * 977))
		if a != b {
			t.Fatalf("seed %d: %v != %v", i*977, a, b)
		}
	}
}

// TestGenCaseCoversVariants proves the sampler reaches every schedule
// variant and every partitioning scheme, so no invariant silently runs
// against a single code path.
func TestGenCaseCoversVariants(t *testing.T) {
	t.Parallel()
	variants := make(map[Variant]int)
	schemes := make(map[string]int)
	for i := 0; i < 600; i++ {
		c := GenCase(NewSource(uint64(i)))
		variants[c.Variant]++
		schemes[c.Scheme.String()]++
	}
	for v := Variant(0); v < NumVariants; v++ {
		if variants[v] == 0 {
			t.Errorf("variant %v never generated", v)
		}
	}
	if len(schemes) != 3 {
		t.Errorf("schemes sampled: %v, want all 3", schemes)
	}
}

// TestGenCaseReachesPressure proves the sampled case space includes the
// interesting regime: some generated cases must actually spill live
// partial sums, and some must evict clean tiles, otherwise the oracle
// agreement property would be vacuous for the pressure paths.
func TestGenCaseReachesPressure(t *testing.T) {
	t.Parallel()
	var spilled, evicted int
	for i := 0; i < 300; i++ {
		c := GenCase(NewSource(uint64(i)))
		r := sim.RunSchedules(c.Config(), sim.Options{}, c.Schedules()...)
		if r.Spills > 0 {
			spilled++
		}
		if r.SPM.Evictions > 0 {
			evicted++
		}
	}
	if spilled == 0 || evicted == 0 {
		t.Fatalf("300 cases produced %d spilling and %d evicting runs; generator misses the pressure regime", spilled, evicted)
	}
	t.Logf("pressure coverage: %d/300 cases spill, %d/300 evict", spilled, evicted)
}

// TestShrinkMinimisesSyntheticPredicate drives Shrink against a predicate
// with a known minimal failing shape — "K >= 10" must shrink to exactly
// K == 10 — and asserts every independent coordinate reaches its floor.
func TestShrinkMinimisesSyntheticPredicate(t *testing.T) {
	t.Parallel()
	c := GenCase(NewSource(7))
	c.Dims.K = 37
	c = c.normalize()
	fails := func(m Case) bool { return m.Dims.K >= 10 }
	min := Shrink(c, fails, 10_000)
	if min.Dims.K != 10 {
		t.Fatalf("shrunk K = %d, want 10 (case %v)", min.Dims.K, min)
	}
	if min.Dims.M != 1 || min.Dims.N != 1 {
		t.Fatalf("independent dims not minimised: %v", min)
	}
	if min.Variant != VariantBaseline || min.Latency != 0 || min.XFactor != 0 {
		t.Fatalf("independent knobs not minimised: %v", min)
	}
}

// TestRunReportsShrunkCounterexample checks the runner's failure path end
// to end through a fake Failer: a property that rejects any case with more
// than one K tile must fail, and the reported minimal case must sit right
// at the boundary (exactly two K tiles).
func TestRunReportsShrunkCounterexample(t *testing.T) {
	t.Parallel()
	f := &fakeFailer{}
	Run(f, "synthetic-ktiles", 50, func(c Case) error {
		_, kt, _ := c.Tiling.Counts(c.Dims)
		if kt > 1 {
			return errTooManyKTiles
		}
		return nil
	})
	if !f.failed {
		t.Fatal("runner passed a property that must fail")
	}
	if !strings.Contains(f.msg, "minimal case") || !strings.Contains(f.msg, errTooManyKTiles.Error()) {
		t.Fatalf("failure message lacks the counterexample: %q", f.msg)
	}
	// The reported case is embedded in the message; reconstruct the
	// boundary condition from a fresh shrink of the same property instead.
	min, err := RunPure("synthetic-ktiles", 50, func(c Case) error {
		_, kt, _ := c.Tiling.Counts(c.Dims)
		if kt > 1 {
			return errTooManyKTiles
		}
		return nil
	})
	if err == nil {
		t.Fatal("run found no counterexample")
	}
	if _, kt, _ := min.Tiling.Counts(min.Dims); kt != 2 {
		t.Fatalf("minimal counterexample has %d K tiles, want the boundary 2: %v", kt, min)
	}
}

type fakeFailer struct {
	failed bool
	msg    string
	logs   []string
}

func (f *fakeFailer) Helper() {}
func (f *fakeFailer) Logf(format string, args ...any) {
	f.logs = append(f.logs, format)
}
func (f *fakeFailer) Fatalf(format string, args ...any) {
	f.failed = true
	f.msg = fmt.Sprintf(format, args...)
}

func TestPropertyAnalyticBounds(t *testing.T) {
	t.Parallel()
	Run(t, "analytic-bounds", casesPerInvariant, CheckAnalyticBounds)
}
