package proptest

import (
	"os"
	"strconv"
)

// Failer is the slice of *testing.T the runner needs. Depending on an
// interface instead of the testing package keeps proptest importable from
// non-test code (the igo facade's self-check), which the testing package
// prohibits.
type Failer interface {
	Helper()
	Logf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// seedEnv overrides the per-property deterministic seed, to replay a
// failure from another machine or widen a local search:
//
//	IGOSIM_PROPTEST_SEED=12345 go test ./internal/proptest/
const seedEnv = "IGOSIM_PROPTEST_SEED"

// shrinkBudget caps predicate evaluations during counterexample
// minimisation. Shrinking only runs after a failure, so the budget trades
// minimality against how long a red test takes to print.
const shrinkBudget = 400

// seedFor derives the deterministic base seed of a named property: an
// FNV-1a hash of the name, so every property explores its own case
// sequence and adding a property never perturbs the others.
func seedFor(name string) uint64 {
	seed := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		seed = (seed ^ uint64(name[i])) * 0x100000001b3
	}
	if s := os.Getenv(seedEnv); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			seed ^= v
		}
	}
	return seed
}

// Run checks an invariant against n generated cases. On the first failure
// it shrinks the counterexample to a local minimum and fails the test with
// the minimal case, its seed and the original error. Generation is
// deterministic per property name (see seedFor), so a red run reproduces
// everywhere.
func Run(f Failer, name string, n int, check func(Case) error) {
	f.Helper()
	c, err := RunPure(name, n, check)
	if err == nil {
		return
	}
	f.Logf("property %s: set %s to reproduce this exact sequence", name, seedEnv)
	f.Fatalf("property %s violated\n  minimal case: %v\n  error: %v", name, c, err)
}

// RunPure is the engine behind Run without the testing affordances: it
// returns the shrunk counterexample and its error, or a nil error if all n
// cases pass. Non-test callers (igo.SelfCheck) use it directly.
func RunPure(name string, n int, check func(Case) error) (Case, error) {
	seed := seedFor(name)
	for i := 0; i < n; i++ {
		// One independent source per case: a failure reproduces from
		// (name, i) alone, not from the draw history of earlier cases.
		c := GenCase(NewSource(seed + uint64(i)))
		if check(c) == nil {
			continue
		}
		fails := func(m Case) bool { return check(m) != nil }
		min := Shrink(c, fails, shrinkBudget)
		return min, check(min)
	}
	return Case{}, nil
}
