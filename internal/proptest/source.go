// Package proptest is the property-based verification layer of the
// simulator (DESIGN.md §3f): a stdlib-only generator/shrinker for random
// GEMM shapes, NPU configurations, tilings and schedule variants, plus the
// differential invariants every generated case must satisfy — chief among
// them bit-exact agreement between internal/sim and the internal/refmodel
// oracle. The same generators back the native fuzz targets in this
// package's test files, so `go test -fuzz` explores exactly the case space
// the property suite samples.
package proptest

import "encoding/binary"

// Source is a deterministic value source. It draws either from a PRNG
// (property-test mode, NewSource) or from a caller-supplied byte string
// first (fuzz mode, FromBytes) — the fuzzing engine then mutates the bytes
// and thereby steers generation. The PRNG is a self-contained splitmix64 so
// generation is reproducible everywhere and no package in the module needs
// math/rand (see internal/lint/wallclock).
type Source struct {
	data  []byte
	off   int
	state uint64
}

// NewSource returns a PRNG-backed source for the given seed.
func NewSource(seed uint64) *Source {
	return &Source{state: seed}
}

// FromBytes returns a source that consumes data byte-by-byte and falls back
// to a PRNG seeded from the data's fold once exhausted, so short fuzz
// inputs still decode to complete cases.
func FromBytes(data []byte) *Source {
	s := &Source{data: data}
	for _, b := range data {
		s.state = (s.state ^ uint64(b)) * 0x100000001b3 // FNV-1a fold
	}
	return s
}

// mix is one splitmix64 step.
func (s *Source) mix() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// byteAt returns the next raw byte: payload bytes while they last, then
// PRNG bytes.
func (s *Source) byteAt() byte {
	if s.off < len(s.data) {
		b := s.data[s.off]
		s.off++
		return b
	}
	return byte(s.mix())
}

// Uint64 returns the next 64-bit draw.
func (s *Source) Uint64() uint64 {
	var buf [8]byte
	for i := range buf {
		buf[i] = s.byteAt()
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// IntRange returns a draw in [lo, hi]. Degenerate ranges return lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	span := uint64(hi - lo + 1)
	return lo + int(s.Uint64()%span)
}

// Int63Range returns an int64 draw in [lo, hi].
func (s *Source) Int63Range(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	span := uint64(hi-lo) + 1
	return lo + int64(s.Uint64()%span)
}

// Bool returns a fair coin flip.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// Pick returns an index in [0, n).
func (s *Source) Pick(n int) int {
	if n <= 1 {
		return 0
	}
	return int(s.Uint64() % uint64(n))
}
