package proptest

import (
	"bytes"
	"testing"

	"igosim/internal/refmodel"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/spm"
	"igosim/internal/tensor"
	"igosim/internal/trace"
)

// The fuzz targets decode their input bytes through the same Source /
// GenCase pipeline the property suite samples from, so the fuzzing engine
// mutates directly in case space: every interesting byte flip lands on a
// shape, tiling, capacity or variant decision. Seed corpora live under
// testdata/fuzz/<FuzzName>/ and replay as ordinary subtests in plain
// `go test`; `make fuzz-short` runs each target's mutation loop.

// FuzzBackwardSchedules holds every decoded schedule variant to the
// structural invariant and to bit-exact oracle agreement — the two
// properties whose violations have historically been real bugs rather than
// spec drift.
func FuzzBackwardSchedules(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x80, 0xff, 0x13, 0x07, 0x3a, 0x42, 0x00, 0x55, 0xaa})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := GenCase(FromBytes(data))
		if err := CheckStructure(c); err != nil {
			t.Fatalf("structure: %v\n  case: %v", err, c)
		}
		if err := CheckOracle(c); err != nil {
			t.Fatalf("oracle: %v\n  case: %v", err, c)
		}
	})
}

// FuzzTilingCounts checks the tiling arithmetic every generator builds on:
// tile extents partition each dimension exactly, the forward stream passes
// its verifier, and each chunked partial-stationary stream is a
// permutation of the baseline's op multiset for any chunk size, in-range
// or not (the clamp must absorb 0, negative and oversized chunks).
func FuzzTilingCounts(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x1f, 0x08, 0x40, 0x02, 0x9c})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01, 0x00, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := FromBytes(data)
		d := tensor.Dims{M: s.IntRange(1, 96), K: s.IntRange(1, 96), N: s.IntRange(1, 96)}
		tl := schedule.Tiling{Tm: s.IntRange(1, d.M+3), Tk: s.IntRange(1, d.K+3), Tn: s.IntRange(1, d.N+3)}
		chunk := s.IntRange(-2, 20)

		mt, kt, nt := tl.Counts(d)
		if mt < 1 || kt < 1 || nt < 1 {
			t.Fatalf("tile grid %dx%dx%d for %v under %v", mt, kt, nt, d, tl)
		}
		for _, dim := range []struct {
			tiles, tile, total int
		}{{mt, tl.Tm, d.M}, {kt, tl.Tk, d.K}, {nt, tl.Tn, d.N}} {
			sum := 0
			for i := 0; i < dim.tiles; i++ {
				e := min(dim.tile, dim.total-i*dim.tile)
				if e <= 0 {
					t.Fatalf("tile %d of %d has extent %d (tile %d, total %d)", i, dim.tiles, e, dim.tile, dim.total)
				}
				sum += e
			}
			if sum != dim.total {
				t.Fatalf("tile extents sum to %d, want %d", sum, dim.total)
			}
		}

		p := schedule.TileParams{Dims: d, Tiling: tl, ElemBytes: 4, Layer: 1}
		if err := schedule.VerifyForward(p, schedule.Forward(p).Ops); err != nil {
			t.Fatalf("forward: %v", err)
		}
		base := append(schedule.BaselineDX(p), schedule.BaselineDW(p)...)
		for _, chunked := range [][]schedule.Op{
			append(schedule.PartialStationaryDX(p, chunk), schedule.PartialStationaryDW(p, chunk)...),
			append(schedule.PartialStationaryDXCols(p, chunk), schedule.PartialStationaryDWCols(p, chunk)...),
		} {
			if err := schedule.VerifyBackward(p, chunked, false); err != nil {
				t.Fatalf("chunk %d: %v", chunk, err)
			}
			if err := sameOpMultiset(base, chunked); err != nil {
				t.Fatalf("chunk %d: %v", chunk, err)
			}
		}
	})
}

// FuzzCompiledEngine fuzzes the compiled execution path against the
// interpreter in case space: bit-exact counter agreement in both free-dY
// modes (CheckCompiledEquivalence, which also replays the refmodel oracle)
// and byte-identical trace-event exports — the compiled engine must be
// indistinguishable from the interpreter to every observer.
func FuzzCompiledEngine(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x41, 0x17, 0x88, 0x0c, 0x3d, 0x5e, 0x99, 0x21, 0x6f})
	f.Add([]byte{0xca, 0xfe, 0x10, 0x07, 0x64, 0x2b, 0x90, 0x00, 0xee, 0x31, 0x5a, 0x7d})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := GenCase(FromBytes(data))
		if err := CheckCompiledEquivalence(c); err != nil {
			t.Fatalf("compiled-equivalence: %v\n  case: %v", err, c)
		}
		var dumps [2]bytes.Buffer
		for i, mode := range []sim.EngineChoice{sim.EngineInterpreted, sim.EngineCompiled} {
			snk := trace.New()
			sim.RunSchedules(c.Config(), sim.Options{Trace: snk, TraceLabel: "fuzz", Compiled: mode}, c.Schedules()...)
			if err := snk.Check(); err != nil {
				t.Fatalf("mode %d: trace reconciliation: %v\n  case: %v", mode, err, c)
			}
			if err := snk.WriteJSON(&dumps[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(dumps[0].Bytes(), dumps[1].Bytes()) {
			t.Fatalf("compiled trace differs from interpreted trace\n  case: %v", c)
		}
	})
}

// opIdentity is the order-free identity of a tile op: its computation and
// data movement, everything but stream position and OutFirst/OutLast
// placement (which depend on order by design).
type opIdentity struct {
	kind       schedule.Kind
	a, b, out  schedule.TileKey
	tm, tk, tn int
	bytes      [3]int64
}

func sameOpMultiset(want, got []schedule.Op) error {
	count := make(map[opIdentity]int)
	id := func(op *schedule.Op) opIdentity {
		return opIdentity{
			kind: op.Kind, a: op.A.Key, b: op.B.Key, out: op.Out.Key,
			tm: op.Tm, tk: op.Tk, tn: op.Tn,
			bytes: [3]int64{op.A.Bytes, op.B.Bytes, op.Out.Bytes},
		}
	}
	for i := range want {
		count[id(&want[i])]++
	}
	for i := range got {
		k := id(&got[i])
		count[k]--
		if count[k] < 0 {
			return errExtraOp(got[i])
		}
	}
	if len(got) != len(want) {
		return errOpCount(len(got), len(want))
	}
	return nil
}

func errExtraOp(op schedule.Op) error {
	return &multisetError{op: &op}
}

func errOpCount(got, want int) error {
	return &multisetError{got: got, want: want}
}

type multisetError struct {
	op        *schedule.Op
	got, want int
}

func (e *multisetError) Error() string {
	if e.op != nil {
		return "op not in baseline multiset: " + e.op.Out.Key.Class.String()
	}
	return "op count mismatch"
}

// FuzzSPMResidency differentially tests the production LRU (intrusive
// list + map) against a brutally simple slice model: identical hits,
// misses, evictions, eviction order, byte occupancy and full recency
// ordering after every operation.
func FuzzSPMResidency(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x10, 0x20, 0x30, 0x40})
	f.Add([]byte{0x7f, 0x03, 0x91, 0x15, 0xe4, 0x33, 0x02, 0x58, 0x9b, 0xcc, 0xdd})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := FromBytes(data)
		capacity := int64(s.IntRange(8, 512))
		buf := spm.New[int](capacity)
		ref := newRefLRU(capacity)

		nops := s.IntRange(1, 200)
		for i := 0; i < nops; i++ {
			key := s.IntRange(0, 30)
			switch s.Pick(4) {
			case 0:
				wantHit := ref.touch(key)
				if got := buf.Touch(key); got != wantHit {
					t.Fatalf("op %d: Touch(%d) = %v, reference says %v", i, key, got, wantHit)
				}
			case 1:
				bytes := int64(s.IntRange(1, int(capacity)))
				wantEv := ref.insert(key, bytes)
				gotEv := buf.Insert(key, bytes)
				if len(gotEv) != len(wantEv) {
					t.Fatalf("op %d: Insert(%d,%d) evicted %v, reference %v", i, key, bytes, gotEv, wantEv)
				}
				for j := range gotEv {
					if gotEv[j] != wantEv[j] {
						t.Fatalf("op %d: eviction order %v, reference %v", i, gotEv, wantEv)
					}
				}
			case 2:
				want := ref.remove(key)
				if got := buf.Remove(key); got != want {
					t.Fatalf("op %d: Remove(%d) = %v, reference says %v", i, key, got, want)
				}
			default:
				want := ref.contains(key)
				if got := buf.Contains(key); got != want {
					t.Fatalf("op %d: Contains(%d) = %v, reference says %v", i, key, got, want)
				}
			}

			if buf.Used() != ref.used() {
				t.Fatalf("op %d: used %d, reference %d", i, buf.Used(), ref.used())
			}
			if buf.Len() != len(ref.entries) {
				t.Fatalf("op %d: len %d, reference %d", i, buf.Len(), len(ref.entries))
			}
			gotKeys := buf.Keys()
			if len(gotKeys) != len(ref.entries) {
				t.Fatalf("op %d: Keys() has %d entries, reference %d", i, len(gotKeys), len(ref.entries))
			}
			for j, k := range gotKeys {
				if k != ref.entries[j].key {
					t.Fatalf("op %d: recency order %v, reference %v", i, gotKeys, ref.keyList())
				}
			}
		}
		if buf.Stats != (spm.Stats{Hits: ref.hits, Misses: ref.misses, Evictions: ref.evictions}) {
			t.Fatalf("stats %+v, reference hits %d misses %d evictions %d",
				buf.Stats, ref.hits, ref.misses, ref.evictions)
		}
	})
}

// refLRU is the naive reference: a slice ordered most-recently-used first.
type refLRU struct {
	capacity                int64
	entries                 []refEntry
	hits, misses, evictions int64
}

type refEntry struct {
	key   int
	bytes int64
}

func newRefLRU(capacity int64) *refLRU { return &refLRU{capacity: capacity} }

func (r *refLRU) find(key int) int {
	for i, e := range r.entries {
		if e.key == key {
			return i
		}
	}
	return -1
}

func (r *refLRU) used() int64 {
	var u int64
	for _, e := range r.entries {
		u += e.bytes
	}
	return u
}

func (r *refLRU) contains(key int) bool { return r.find(key) >= 0 }

func (r *refLRU) touch(key int) bool {
	i := r.find(key)
	if i < 0 {
		r.misses++
		return false
	}
	r.hits++
	e := r.entries[i]
	r.entries = append(r.entries[:i], r.entries[i+1:]...)
	r.entries = append([]refEntry{e}, r.entries...)
	return true
}

func (r *refLRU) insert(key int, bytes int64) []int {
	if i := r.find(key); i >= 0 {
		e := r.entries[i]
		r.entries = append(r.entries[:i], r.entries[i+1:]...)
		r.entries = append([]refEntry{e}, r.entries...)
		return nil
	}
	var evicted []int
	for r.used()+bytes > r.capacity && len(r.entries) > 0 {
		last := r.entries[len(r.entries)-1]
		r.entries = r.entries[:len(r.entries)-1]
		r.evictions++
		evicted = append(evicted, last.key)
	}
	r.entries = append([]refEntry{{key: key, bytes: bytes}}, r.entries...)
	return evicted
}

func (r *refLRU) remove(key int) bool {
	i := r.find(key)
	if i < 0 {
		return false
	}
	r.entries = append(r.entries[:i], r.entries[i+1:]...)
	return true
}

func (r *refLRU) keyList() []int {
	out := make([]int, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.key
	}
	return out
}

// TestRefmodelSmoke keeps one direct compile-time dependency on refmodel's
// exported API in this package's tests so `go test ./internal/proptest/`
// fails loudly if the oracle's surface drifts from what CheckOracle needs.
func TestRefmodelSmoke(t *testing.T) {
	t.Parallel()
	c := GenCase(NewSource(1))
	got := sim.RunSchedules(c.Config(), sim.Options{}, c.Schedules()...)
	want := refmodel.ReplaySchedules(c.Config(), refmodel.Options{}, c.Schedules()...)
	if err := refmodel.Compare(got, want); err != nil {
		t.Fatal(err)
	}
}

// FuzzResolvedReplay fuzzes the two-phase execution path in case space:
// a trace resolved at the decoded case's base hardware point must replay
// bit-exactly at every cost variant against a fresh engine run and the
// refmodel oracle (CheckResolvedReplay), in both dY regimes.
func FuzzResolvedReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x04, 0x2e, 0x71, 0x1b, 0xc5, 0x08, 0x93, 0x60, 0x12, 0xfa})
	f.Add([]byte{0xb1, 0x6b, 0x00, 0xd5, 0x27, 0x4c, 0x8e, 0x39, 0xf0, 0x1e, 0x66, 0xa2})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := GenCase(FromBytes(data))
		if err := CheckResolvedReplay(c); err != nil {
			t.Fatalf("resolved-replay: %v\n  case: %v", err, c)
		}
	})
}
