package proptest

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/schedule"
	"igosim/internal/tensor"
)

// Variant selects which schedule generator a case exercises. The list spans
// every backward-pass producer in the tree: the sequential baselines, the
// chunked partial-stationary orders of the prior-work baseline, and the
// paper's three interleaved orders plus their chunked forms.
type Variant uint8

const (
	// VariantBaselineTwoKernel runs the conventional dX and dW GEMMs as two
	// flushed kernels — the paper's Figure 8a baseline.
	VariantBaselineTwoKernel Variant = iota
	// VariantBaseline runs the same ops as one unflushed stream.
	VariantBaseline
	// VariantBaselineAlt uses the alternative per-GEMM loop orders (KM, NK).
	VariantBaselineAlt
	// VariantPartialRows chains the row-chunked partial-stationary GEMMs.
	VariantPartialRows
	// VariantPartialCols chains the column-chunked partial-stationary GEMMs.
	VariantPartialCols
	// VariantInterleave fuses the gradient streams, traditional orders.
	VariantInterleave
	// VariantDXMajor walks dY row-major for both gradients.
	VariantDXMajor
	// VariantDWMajor walks dY column-major for both gradients.
	VariantDWMajor
	// VariantDXMajorChunked bounds dXmajor's live partials by row chunks.
	VariantDXMajorChunked
	// VariantDWMajorChunked bounds dWmajor's live partials by column chunks.
	VariantDWMajorChunked
	// NumVariants counts the variants.
	NumVariants
)

func (v Variant) String() string {
	switch v {
	case VariantBaselineTwoKernel:
		return "baseline-two-kernel"
	case VariantBaseline:
		return "baseline"
	case VariantBaselineAlt:
		return "baseline-alt-orders"
	case VariantPartialRows:
		return "partial-stationary-rows"
	case VariantPartialCols:
		return "partial-stationary-cols"
	case VariantInterleave:
		return "interleave"
	case VariantDXMajor:
		return "interleave+dXmajor"
	case VariantDWMajor:
		return "interleave+dWmajor"
	case VariantDXMajorChunked:
		return "interleave+dXmajor-chunked"
	case VariantDWMajorChunked:
		return "interleave+dWmajor-chunked"
	default:
		return fmt.Sprintf("variant(%d)", uint8(v))
	}
}

// Case is one generated test case: a GEMM shape, a tiling, an NPU
// configuration and a schedule variant. The scratchpad is expressed
// relative to the largest tile (SPMFactor tiles plus SPMExtra loose bytes)
// so shrinking the shape keeps the case well-formed, and so pressure — the
// interesting regime — survives shrinking.
type Case struct {
	Dims      tensor.Dims
	Tiling    schedule.Tiling
	ElemBytes int

	ArrayRows, ArrayCols int
	// WeightStationary selects the alternative systolic mapping.
	WeightStationary bool
	// BandBPC is the DRAM bandwidth in whole bytes per cycle.
	BandBPC int
	// Latency is the per-burst DRAM latency in cycles.
	Latency int64
	// SPMFactor scales the residency capacity in units of the largest tile;
	// values below 8 put the scratchpad under real pressure.
	SPMFactor int
	// SPMExtra adds loose bytes below one tile to hit off-by-one capacities.
	SPMExtra int64
	// XFactor, when in (0,1), models im2col reuse on X/dX tiles.
	XFactor float64

	Variant Variant
	// Chunk feeds the chunked variants (and clampChunk: zero and
	// out-of-range values are legal inputs).
	Chunk int

	// Scheme and Parts configure the partitioning invariants.
	Scheme core.Scheme
	Parts  int
}

// maxOpsPerCase bounds the tile-op grid so a single case stays fast enough
// to run by the hundreds inside plain `go test`.
const maxOpsPerCase = 2500

// GenCase draws one case. All constraints the engine hard-requires (tiles
// fit the scratchpad, positive dimensions) are enforced here; everything
// else — pressure, edge tiles, degenerate chunk sizes — is left free.
func GenCase(s *Source) Case {
	c := Case{
		Dims: tensor.Dims{
			M: s.IntRange(1, 40),
			K: s.IntRange(1, 40),
			N: s.IntRange(1, 40),
		},
		ElemBytes:        []int{1, 2, 4}[s.Pick(3)],
		ArrayRows:        s.IntRange(2, 32),
		ArrayCols:        s.IntRange(2, 32),
		WeightStationary: s.Pick(4) == 0,
		BandBPC:          s.IntRange(1, 64),
		Latency:          []int64{0, 1, 10, 100}[s.Pick(4)],
		SPMFactor:        s.IntRange(3, 24),
		Variant:          Variant(s.Pick(int(NumVariants))),
		Chunk:            s.IntRange(0, 6),
		Scheme:           core.Schemes()[s.Pick(len(core.Schemes()))],
		Parts:            s.IntRange(1, 6),
	}
	// Occasionally skew one dimension hard: the rearranged orders only
	// differ from the baseline on skewed shapes (Algorithm 1).
	if s.Pick(4) == 0 {
		switch s.Pick(3) {
		case 0:
			c.Dims.M *= 2
		case 1:
			c.Dims.K *= 2
		default:
			c.Dims.N *= 2
		}
	}
	c.Tiling = schedule.Tiling{
		Tm: s.IntRange(1, c.Dims.M+1),
		Tk: s.IntRange(1, c.Dims.K+1),
		Tn: s.IntRange(1, c.Dims.N+1),
	}
	if s.Pick(3) == 0 {
		c.XFactor = float64(s.IntRange(5, 95)) / 100
	}
	c.SPMExtra = s.Int63Range(0, max(c.maxTileBytes()-1, 0))
	return c.normalize()
}

// normalize clamps a case into the space the engine accepts and the op
// budget allows. Generated and shrunk cases both pass through here, so
// every case handed to an invariant is well-formed by construction.
func (c Case) normalize() Case {
	c.Dims.M = max(c.Dims.M, 1)
	c.Dims.K = max(c.Dims.K, 1)
	c.Dims.N = max(c.Dims.N, 1)
	c.Tiling.Tm = max(c.Tiling.Tm, 1)
	c.Tiling.Tk = max(c.Tiling.Tk, 1)
	c.Tiling.Tn = max(c.Tiling.Tn, 1)
	c.ElemBytes = max(c.ElemBytes, 1)
	c.ArrayRows = max(c.ArrayRows, 1)
	c.ArrayCols = max(c.ArrayCols, 1)
	c.BandBPC = max(c.BandBPC, 1)
	c.Latency = max(c.Latency, 0)
	c.SPMFactor = max(c.SPMFactor, 3)
	c.SPMExtra = max(c.SPMExtra, 0)
	if c.XFactor < 0 || c.XFactor >= 1 {
		c.XFactor = 0
	}
	c.Chunk = max(c.Chunk, 0)
	if c.Variant >= NumVariants {
		c.Variant = VariantBaseline
	}
	c.Parts = min(max(c.Parts, 1), schedule.MaxPartitions)
	switch c.Scheme {
	case core.WeightSharing, core.DYSharing, core.IfmapSharing:
	default:
		c.Scheme = core.IfmapSharing
	}
	// Bound the tile grid: grow tiles until the op count fits the budget.
	for {
		mt, kt, nt := c.Tiling.Counts(c.Dims)
		if mt*kt*nt <= maxOpsPerCase {
			break
		}
		switch {
		case mt >= kt && mt >= nt:
			c.Tiling.Tm *= 2
		case kt >= nt:
			c.Tiling.Tk *= 2
		default:
			c.Tiling.Tn *= 2
		}
	}
	return c
}

// maxTileBytes returns the largest tile the tiling can emit for the case's
// shape — the scratchpad sizing unit.
func (c Case) maxTileBytes() int64 {
	em := int64(min(c.Tiling.Tm, c.Dims.M))
	ek := int64(min(c.Tiling.Tk, c.Dims.K))
	en := int64(min(c.Tiling.Tn, c.Dims.N))
	return int64(c.ElemBytes) * max(em*ek, max(ek*en, em*en))
}

// Config realises the case's NPU. Bandwidth is an exact whole number of
// bytes per cycle so traffic-to-cycle conversions carry no float noise.
func (c Case) Config() config.NPU {
	df := config.OutputStationary
	if c.WeightStationary {
		df = config.WeightStationary
	}
	return config.NPU{
		Name:          "proptest",
		ArrayRows:     c.ArrayRows,
		ArrayCols:     c.ArrayCols,
		Cores:         1,
		SPMBytes:      2 * (int64(c.SPMFactor)*c.maxTileBytes() + c.SPMExtra),
		DRAMBandwidth: float64(c.BandBPC) * 1e9,
		DRAMLatency:   c.Latency,
		FrequencyHz:   1e9,
		ElemBytes:     c.ElemBytes,
		Batch:         1,
		Dataflow:      df,
	}
}

// Relaxed returns the case with the scratchpad floor raised to eight tiles.
// The dY-reuse inequality is only a theorem when consecutive uses of a dY
// tile cannot be separated by enough insertions to evict it (see
// CheckDYReuse); eight largest-tiles is comfortably past that bound.
func (c Case) Relaxed() Case {
	if c.SPMFactor < 8 {
		c.SPMFactor = 8
	}
	return c
}

// Params returns the layer tile parameters of the case.
func (c Case) Params() schedule.TileParams {
	return schedule.TileParams{
		Dims:      c.Dims,
		Tiling:    c.Tiling,
		ElemBytes: c.ElemBytes,
		Layer:     1,
		XFactor:   c.XFactor,
	}
}

// Schedules materialises the case's schedule variant as the kernel sequence
// sim.RunSchedules (and the oracle) executes.
func (c Case) Schedules() []schedule.Schedule {
	p := c.Params()
	switch c.Variant {
	case VariantBaselineTwoKernel:
		return []schedule.Schedule{
			{Name: "dx-kernel", Ops: schedule.BaselineDX(p)},
			{Name: "dw-kernel", Ops: schedule.BaselineDW(p)},
		}
	case VariantBaseline:
		return []schedule.Schedule{schedule.BaselineBackward(p)}
	case VariantBaselineAlt:
		return []schedule.Schedule{schedule.BaselineBackwardOrdered(p, schedule.DXOrderKM, schedule.DWOrderNK)}
	case VariantPartialRows:
		ops := schedule.PartialStationaryDX(p, c.Chunk)
		ops = append(ops, schedule.PartialStationaryDW(p, c.Chunk)...)
		return []schedule.Schedule{{Name: "partial-stationary-rows", Ops: ops}}
	case VariantPartialCols:
		ops := schedule.PartialStationaryDXCols(p, c.Chunk)
		ops = append(ops, schedule.PartialStationaryDWCols(p, c.Chunk)...)
		return []schedule.Schedule{{Name: "partial-stationary-cols", Ops: ops}}
	case VariantInterleave:
		return []schedule.Schedule{core.InterleaveOnly(p)}
	case VariantDXMajor:
		return []schedule.Schedule{core.InterleaveDXMajor(p)}
	case VariantDWMajor:
		return []schedule.Schedule{core.InterleaveDWMajor(p)}
	case VariantDXMajorChunked:
		return []schedule.Schedule{core.InterleaveDXMajorChunked(p, c.Chunk)}
	default:
		return []schedule.Schedule{core.InterleaveDWMajorChunked(p, c.Chunk)}
	}
}

// AllOps concatenates the case's kernel streams, for stream-level checks.
func (c Case) AllOps() []schedule.Op {
	var ops []schedule.Op
	for _, s := range c.Schedules() {
		ops = append(ops, s.Ops...)
	}
	return ops
}

func (c Case) String() string {
	return fmt.Sprintf(
		"case{%v tile %dx%dx%d elem %d arr %dx%d ws=%v band %dB/c lat %d spm %dxTile+%dB xf %.2f %v chunk %d %v parts %d}",
		c.Dims, c.Tiling.Tm, c.Tiling.Tk, c.Tiling.Tn, c.ElemBytes,
		c.ArrayRows, c.ArrayCols, c.WeightStationary, c.BandBPC, c.Latency,
		c.SPMFactor, c.SPMExtra, c.XFactor, c.Variant, c.Chunk, c.Scheme, c.Parts)
}
