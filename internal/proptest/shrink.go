package proptest

// Shrink greedily minimises a failing case: it tries one simplification at
// a time — halving dimensions and tiles toward 1, zeroing chunk and
// latency, collapsing partitions, narrowing elements, dropping the im2col
// factor, trimming scratchpad slack — and keeps any move that still fails
// the predicate. The result is a local minimum: no single move both keeps
// the case failing and makes it simpler. budget caps predicate evaluations
// so a slow check cannot stall a test run.
func Shrink(c Case, fails func(Case) bool, budget int) Case {
	for budget > 0 {
		improved := false
		for _, cand := range moves(c) {
			if budget <= 0 {
				break
			}
			budget--
			if fails(cand) {
				c = cand
				improved = true
				break
			}
		}
		if !improved {
			return c
		}
	}
	return c
}

// halve moves v toward 1 (or toward lo) quickly first, then by one.
func halve(v, lo int) (int, bool) {
	if v <= lo {
		return v, false
	}
	if h := (v + lo) / 2; h < v {
		return h, true
	}
	return v - 1, true
}

// moves returns the candidate simplifications of c, simplest-first. Every
// candidate is renormalised so the shrinker can never leave the valid case
// space.
func moves(c Case) []Case {
	var out []Case
	add := func(m Case) { out = append(out, m.normalize()) }

	for _, f := range []func(*Case) bool{
		func(m *Case) bool { v, ok := halve(m.Dims.M, 1); m.Dims.M = v; return ok },
		func(m *Case) bool { v, ok := halve(m.Dims.K, 1); m.Dims.K = v; return ok },
		func(m *Case) bool { v, ok := halve(m.Dims.N, 1); m.Dims.N = v; return ok },
		func(m *Case) bool { v, ok := halve(m.Tiling.Tm, 1); m.Tiling.Tm = v; return ok },
		func(m *Case) bool { v, ok := halve(m.Tiling.Tk, 1); m.Tiling.Tk = v; return ok },
		func(m *Case) bool { v, ok := halve(m.Tiling.Tn, 1); m.Tiling.Tn = v; return ok },
		func(m *Case) bool { v, ok := halve(m.Parts, 1); m.Parts = v; return ok },
		func(m *Case) bool { v, ok := halve(m.Chunk, 0); m.Chunk = v; return ok },
		func(m *Case) bool { v, ok := halve(m.ElemBytes, 1); m.ElemBytes = v; return ok },
		func(m *Case) bool { v, ok := halve(m.ArrayRows, 1); m.ArrayRows = v; return ok },
		func(m *Case) bool { v, ok := halve(m.ArrayCols, 1); m.ArrayCols = v; return ok },
		func(m *Case) bool { v, ok := halve(m.BandBPC, 1); m.BandBPC = v; return ok },
		func(m *Case) bool { v, ok := halve(int(m.Latency), 0); m.Latency = int64(v); return ok },
		func(m *Case) bool { v, ok := halve(m.SPMFactor, 3); m.SPMFactor = v; return ok },
		func(m *Case) bool { v, ok := halve(int(m.SPMExtra), 0); m.SPMExtra = int64(v); return ok },
		func(m *Case) bool {
			if m.XFactor == 0 {
				return false
			}
			m.XFactor = 0
			return true
		},
		func(m *Case) bool {
			if !m.WeightStationary {
				return false
			}
			m.WeightStationary = false
			return true
		},
		func(m *Case) bool {
			// Simplify the schedule variant toward the plain baseline.
			if m.Variant == VariantBaseline {
				return false
			}
			m.Variant = VariantBaseline
			return true
		},
	} {
		m := c
		if f(&m) {
			add(m)
		}
	}
	return out
}
