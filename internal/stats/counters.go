package stats

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// CacheCounters accumulates hit/miss counts for one named cache. The
// counters are lock-free so hot simulation paths can bump them from many
// goroutines; construct with NewCacheCounters to register the cache in the
// process-wide report.
//
//lint:registered
type CacheCounters struct {
	name      string
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	coalesced atomic.Int64
	// sizer, when set, reports the cache's current entry count. Guarded by
	// sizerMu: SetSizer races with Snapshot only at registration time, but
	// the race detector is right that it is a race.
	sizerMu sync.Mutex
	sizer   func() int
}

// SetSizer installs a callback reporting the cache's current entry count,
// surfaced as Entries in snapshots. Raw hit/miss splits are not
// deterministic under concurrent miss races (two workers may both miss and
// compute the same key), but the entry count — the set of distinct keys ever
// requested — is, which is what lets run manifests derive a
// parallelism-independent hit rate: (lookups − entries) / lookups.
func (c *CacheCounters) SetSizer(fn func() int) {
	c.sizerMu.Lock()
	c.sizer = fn
	c.sizerMu.Unlock()
}

// Hit records one cache hit.
func (c *CacheCounters) Hit() { c.hits.Add(1) }

// Miss records one cache miss.
func (c *CacheCounters) Miss() { c.misses.Add(1) }

// Eviction records one entry evicted by a bounded cache's replacement
// policy. Unbounded memo caches never call it.
func (c *CacheCounters) Eviction() { c.evictions.Add(1) }

// Coalesced records one lookup that neither hit nor missed: it joined an
// in-flight computation of the same key (singleflight deduplication) and
// waited for that result instead of computing its own.
func (c *CacheCounters) Coalesced() { c.coalesced.Add(1) }

// Reset zeroes the counters.
func (c *CacheCounters) Reset() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.coalesced.Store(0)
}

// Snapshot returns the current counter values.
func (c *CacheCounters) Snapshot() CacheSnapshot {
	s := CacheSnapshot{
		Name: c.name, Hits: c.hits.Load(), Misses: c.misses.Load(),
		Evictions: c.evictions.Load(), Coalesced: c.coalesced.Load(),
		Entries: -1,
	}
	c.sizerMu.Lock()
	sizer := c.sizer
	c.sizerMu.Unlock()
	if sizer != nil {
		s.Entries = int64(sizer())
	}
	return s
}

// CacheSnapshot is one cache's counters at a point in time. Entries is the
// current entry count, or -1 when the cache installed no sizer.
type CacheSnapshot struct {
	Name      string
	Hits      int64
	Misses    int64
	Evictions int64
	Coalesced int64
	Entries   int64
}

// Lookups returns the total number of lookups, including coalesced ones.
func (s CacheSnapshot) Lookups() int64 { return s.Hits + s.Misses + s.Coalesced }

// HitRate returns the fraction of lookups that hit (0 with no lookups).
func (s CacheSnapshot) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

func (s CacheSnapshot) String() string {
	return fmt.Sprintf("%s: %d hits / %d lookups (%.1f%% hit rate)",
		s.Name, s.Hits, s.Lookups(), 100*s.HitRate())
}

// PhaseCounters splits a two-phase evaluator's executions into expensive
// resolutions and cheap replays. Wall domain like raw hit/miss splits: under
// a miss race two workers may both resolve the same key, so the executed
// counts vary legitimately with -j (the deterministic view is the owning
// cache's distinct-key census). Construct with NewPhaseCounters.
//
//lint:registered
type PhaseCounters struct {
	name        string
	resolutions atomic.Int64
	replays     atomic.Int64
}

// Resolution records one full (expensive) resolution phase executed.
func (p *PhaseCounters) Resolution() { p.resolutions.Add(1) }

// Replay records one cheap replay executed from a resolved artifact.
func (p *PhaseCounters) Replay() { p.replays.Add(1) }

// Reset zeroes both counters.
func (p *PhaseCounters) Reset() {
	p.resolutions.Store(0)
	p.replays.Store(0)
}

// Snapshot returns the current phase split.
func (p *PhaseCounters) Snapshot() PhaseSnapshot {
	return PhaseSnapshot{
		Name:        p.name,
		Resolutions: p.resolutions.Load(),
		Replays:     p.replays.Load(),
	}
}

// PhaseSnapshot is one evaluator's phase split at a point in time.
type PhaseSnapshot struct {
	Name        string
	Resolutions int64
	Replays     int64
}

// ReuseRatio returns replays per resolution (0 with no resolutions): how
// many cheap passes each expensive pass amortized over.
func (s PhaseSnapshot) ReuseRatio() float64 {
	if s.Resolutions > 0 {
		return float64(s.Replays) / float64(s.Resolutions)
	}
	return 0
}

// NewPhaseCounters creates phase counters under the given name.
func NewPhaseCounters(name string) *PhaseCounters {
	return &PhaseCounters{name: name}
}

// cacheRegistry tracks every registered cache for CacheReport.
var cacheRegistry struct {
	mu   sync.Mutex
	list []*CacheCounters
}

// NewCacheCounters creates counters registered under the given name; the
// cache then shows up in CacheReport.
func NewCacheCounters(name string) *CacheCounters {
	c := &CacheCounters{name: name}
	cacheRegistry.mu.Lock()
	cacheRegistry.list = append(cacheRegistry.list, c)
	cacheRegistry.mu.Unlock()
	return c
}

// ResetAllCacheCounters zeroes every registered cache's hit/miss counters,
// so hit-rate reports from back-to-back runs don't mix. The cached entries
// themselves are untouched — only the counters reset.
func ResetAllCacheCounters() {
	cacheRegistry.mu.Lock()
	defer cacheRegistry.mu.Unlock()
	for _, c := range cacheRegistry.list {
		c.Reset()
	}
}

// CacheReport returns a snapshot of every registered cache, sorted by name.
func CacheReport() []CacheSnapshot {
	cacheRegistry.mu.Lock()
	defer cacheRegistry.mu.Unlock()
	out := make([]CacheSnapshot, 0, len(cacheRegistry.list))
	for _, c := range cacheRegistry.list {
		out = append(out, c.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
