// Package stats provides the small aggregation and formatting helpers the
// experiment harnesses share: normalized series, means, and fixed-width
// text tables that mirror the rows the paper's figures report.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive xs (0 if any is <= 0).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Normalize divides each value by its baseline (paired by index).
func Normalize(values, base []float64) []float64 {
	if len(values) != len(base) {
		panic(fmt.Sprintf("stats: normalize length mismatch %d vs %d", len(values), len(base)))
	}
	out := make([]float64, len(values))
	for i := range values {
		if base[i] == 0 {
			out[i] = 0
			continue
		}
		out[i] = values[i] / base[i]
	}
	return out
}

// ImprovementPct converts a normalized execution time to the paper's
// "execution time reduction" percentage.
func ImprovementPct(normalized float64) float64 { return 100 * (1 - normalized) }

// Table accumulates rows for fixed-width text output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowF appends a row of formatted cells: each cell is (format, value).
func (t *Table) AddRowF(cells ...any) {
	if len(cells)%2 != 0 {
		panic("stats: AddRowF needs (format, value) pairs")
	}
	row := make([]string, 0, len(cells)/2)
	for i := 0; i < len(cells); i += 2 {
		row = append(row, fmt.Sprintf(cells[i].(string), cells[i+1]))
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting: the
// harnesses only emit identifiers and numbers).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Pct formats a fraction as a signed percentage.
func Pct(frac float64) string { return fmt.Sprintf("%+.1f%%", 100*frac) }

// SortedKeys returns the sorted keys of a string-keyed map.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
