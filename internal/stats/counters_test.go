package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestCacheCountersBasics(t *testing.T) {
	c := NewCacheCounters("test-basic")
	c.Hit()
	c.Hit()
	c.Miss()
	s := c.Snapshot()
	if s.Name != "test-basic" || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Lookups() != 3 {
		t.Fatalf("lookups = %d", s.Lookups())
	}
	if got := s.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %g", got)
	}
	c.Reset()
	if s := c.Snapshot(); s.Lookups() != 0 {
		t.Fatalf("reset snapshot = %+v", s)
	}
}

func TestCacheCountersSizer(t *testing.T) {
	c := NewCacheCounters("test-sizer")
	if e := c.Snapshot().Entries; e != -1 {
		t.Fatalf("Entries without sizer = %d, want -1", e)
	}
	n := 0
	c.SetSizer(func() int { return n })
	if e := c.Snapshot().Entries; e != 0 {
		t.Fatalf("Entries = %d, want 0", e)
	}
	n = 7
	if e := c.Snapshot().Entries; e != 7 {
		t.Fatalf("Entries = %d, want 7", e)
	}
	// Reset zeroes hit/miss but leaves the sizer installed: the entry count
	// is the cache's, not the counters'.
	c.Hit()
	c.Reset()
	if s := c.Snapshot(); s.Lookups() != 0 || s.Entries != 7 {
		t.Fatalf("reset snapshot = %+v", s)
	}
}

func TestCacheSnapshotString(t *testing.T) {
	s := CacheSnapshot{Name: "layer-sim", Hits: 3, Misses: 1}
	out := s.String()
	for _, want := range []string{"layer-sim", "3 hits", "4 lookups", "75.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() = %q, missing %q", out, want)
		}
	}
}

func TestHitRateEmpty(t *testing.T) {
	if r := (CacheSnapshot{}).HitRate(); r != 0 {
		t.Fatalf("empty hit rate = %g", r)
	}
}

func TestCacheReportSortedAndRegistered(t *testing.T) {
	NewCacheCounters("zz-report-b").Hit()
	NewCacheCounters("aa-report-a").Miss()
	rep := CacheReport()
	ia, ib := -1, -1
	for i, s := range rep {
		switch s.Name {
		case "aa-report-a":
			ia = i
		case "zz-report-b":
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		t.Fatalf("registered caches missing from report: %v", rep)
	}
	if ia > ib {
		t.Fatal("report not sorted by name")
	}
	for i := 1; i < len(rep); i++ {
		if rep[i-1].Name > rep[i].Name {
			t.Fatalf("report out of order at %d: %q > %q", i, rep[i-1].Name, rep[i].Name)
		}
	}
}

// TestCountersConcurrent verifies the counters are safe to bump from many
// goroutines (run with -race) and lose no updates.
func TestCountersConcurrent(t *testing.T) {
	c := NewCacheCounters("test-concurrent")
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Hit()
				c.Miss()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Hits != goroutines*each || s.Misses != goroutines*each {
		t.Fatalf("lost updates: %+v", s)
	}
}

func TestResetAllCacheCounters(t *testing.T) {
	a := NewCacheCounters("test-resetall-a")
	b := NewCacheCounters("test-resetall-b")
	a.Hit()
	a.Miss()
	b.Miss()
	ResetAllCacheCounters()
	if s := a.Snapshot(); s.Lookups() != 0 {
		t.Fatalf("a not reset: %+v", s)
	}
	if s := b.Snapshot(); s.Lookups() != 0 {
		t.Fatalf("b not reset: %+v", s)
	}
}
