package stats

import (
	"strings"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zeroed: %v", h.String())
	}
	for _, v := range []int64{1, 2, 3, 4, 100, 0} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Min() != 0 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d, want 0/100", h.Min(), h.Max())
	}
	wantMean := (1 + 2 + 3 + 4 + 100.0) / 6
	if m := h.Mean(); m != wantMean {
		t.Fatalf("mean = %g, want %g", m, wantMean)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(1) // bucket 1: <=1
	h.Add(2) // bucket 2: <=3
	h.Add(3)
	h.Add(7)   // bucket 3: <=7
	h.Add(128) // bucket 8: <=255
	s := h.String()
	for _, want := range []string{"<=1:1", "<=3:2", "<=7:1", "<=255:1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Add(i)
	}
	// The median of 1..100 falls in bucket <=63; p100 clamps to max.
	if q := h.Quantile(0.5); q != 63 {
		t.Fatalf("p50 = %d, want 63", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %d, want 100 (clamped to max)", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %d, want 1", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(5)
	a.Add(9)
	b.Add(1)
	b.Add(1000)
	a.Merge(&b)
	if a.Count() != 4 || a.Min() != 1 || a.Max() != 1000 {
		t.Fatalf("merge wrong: %s", a.String())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 4 {
		t.Fatalf("merging empty changed count: %d", a.Count())
	}
	empty.Merge(&a)
	if empty.Count() != 4 || empty.Min() != 1 || empty.Max() != 1000 {
		t.Fatalf("merge into empty wrong: %s", empty.String())
	}
}
