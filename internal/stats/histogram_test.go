package stats

import (
	"fmt"
	"strings"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zeroed: %v", h.String())
	}
	for _, v := range []int64{1, 2, 3, 4, 100, 0} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Min() != 0 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d, want 0/100", h.Min(), h.Max())
	}
	wantMean := (1 + 2 + 3 + 4 + 100.0) / 6
	if m := h.Mean(); m != wantMean {
		t.Fatalf("mean = %g, want %g", m, wantMean)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(1) // bucket 1: <=1
	h.Add(2) // bucket 2: <=3
	h.Add(3)
	h.Add(7)   // bucket 3: <=7
	h.Add(128) // bucket 8: <=255
	s := h.String()
	for _, want := range []string{"<=1:1", "<=3:2", "<=7:1", "<=255:1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Add(i)
	}
	// The median of 1..100 falls in bucket <=63; p100 clamps to max.
	if q := h.Quantile(0.5); q != 63 {
		t.Fatalf("p50 = %d, want 63", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %d, want 100 (clamped to max)", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %d, want 1", q)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	for _, v := range []int64{-3, 0, 7, 1 << 40} {
		h.Add(v)
	}
	if h.Count() == 0 {
		t.Fatal("setup: histogram empty")
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 ||
		h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("Reset left state behind: %s", h.String())
	}
	if h.String() != "empty" {
		t.Fatalf("String after Reset = %q, want \"empty\"", h.String())
	}
	// The reset histogram must behave exactly like a fresh one.
	h.Add(42)
	if h.Count() != 1 || h.Min() != 42 || h.Max() != 42 || h.Sum() != 42 {
		t.Fatalf("reused histogram wrong: %s", h.String())
	}
}

// TestHistogramBucketBoundaries pins the power-of-two bucket edges: 2^k-1
// and 2^k must land in adjacent buckets for every k, and non-positive
// values share bucket 0.
func TestHistogramBucketBoundaries(t *testing.T) {
	for k := 1; k < 62; k++ {
		var h Histogram
		lo := int64(1)<<k - 1 // top of bucket k
		hi := int64(1) << k   // bottom of bucket k+1
		h.Add(lo)
		h.Add(hi)
		s := h.String()
		for _, want := range []string{
			"<=" + itoa(lo) + ":1",
			"<=" + itoa(int64(1)<<(k+1)-1) + ":1",
		} {
			if !strings.Contains(s, want) {
				t.Fatalf("k=%d: String() = %q, missing %q", k, s, want)
			}
		}
	}
	var h Histogram
	h.Add(0)
	h.Add(-5)
	if !strings.Contains(h.String(), "<=0:2") {
		t.Fatalf("non-positive values not in bucket 0: %s", h.String())
	}
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }

// TestHistogramQuantileEdges pins the documented edge semantics: quantiles
// clamp q into [0,1], empty histograms return 0 everywhere, and a
// single-observation histogram reports that observation at every quantile.
func TestHistogramQuantileEdges(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %d, want 0", q, got)
		}
	}
	var one Histogram
	one.Add(100)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := one.Quantile(q); got != 100 {
			t.Fatalf("single-value Quantile(%g) = %d, want 100", q, got)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(5)
	a.Add(9)
	b.Add(1)
	b.Add(1000)
	a.Merge(&b)
	if a.Count() != 4 || a.Min() != 1 || a.Max() != 1000 {
		t.Fatalf("merge wrong: %s", a.String())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 4 {
		t.Fatalf("merging empty changed count: %d", a.Count())
	}
	empty.Merge(&a)
	if empty.Count() != 4 || empty.Min() != 1 || empty.Max() != 1000 {
		t.Fatalf("merge into empty wrong: %s", empty.String())
	}
}
