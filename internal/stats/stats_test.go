package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %g", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %g", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("non-positive input must yield 0")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
}

func TestGeoMeanLeqArithmetic(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 9, 5}, []float64{4, 3, 0})
	if got[0] != 0.5 || got[1] != 3 || got[2] != 0 {
		t.Fatalf("normalize = %v", got)
	}
}

func TestNormalizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Normalize([]float64{1}, []float64{1, 2})
}

func TestImprovementPct(t *testing.T) {
	if got := ImprovementPct(0.8); math.Abs(got-20) > 1e-12 {
		t.Fatalf("improvement = %g", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowF("%s", "beta-long", "%.2f", 3.14159)
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + separator + 2 rows
		t.Fatalf("table has %d lines", len(lines))
	}
	// Columns must align: all lines equal width.
	w := len(lines[0])
	for _, l := range lines[1:] {
		if len(l) > w+2 {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("x", "1")
	csv := tab.CSV()
	if csv != "a,b\nx,1\n" {
		t.Fatalf("csv = %q", csv)
	}
}

func TestAddRowTruncatesExtras(t *testing.T) {
	tab := NewTable("only")
	tab.AddRow("a", "b", "c")
	if strings.Contains(tab.String(), "b") {
		t.Fatal("extra cells should be dropped")
	}
}

func TestAddRowFOddArgsPanics(t *testing.T) {
	tab := NewTable("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd AddRowF args")
		}
	}()
	tab.AddRowF("%s")
}

func TestPct(t *testing.T) {
	if Pct(0.125) != "+12.5%" {
		t.Fatalf("Pct = %q", Pct(0.125))
	}
	if Pct(-0.05) != "-5.0%" {
		t.Fatalf("Pct = %q", Pct(-0.05))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("sorted keys = %v", got)
	}
}
