package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// histBuckets is the bucket count of Histogram: bucket i collects values v
// with bits.Len64(v) == i, i.e. power-of-two ranges, plus bucket 0 for
// non-positive values. 64 buckets cover the whole int64 range.
const histBuckets = 64

// Histogram counts int64 observations in power-of-two buckets. Bucket i
// (i >= 1) holds values in [2^(i-1), 2^i - 1]; bucket 0 holds values <= 0.
// The zero value is an empty histogram ready for use; it is a plain value
// type, so merging track-local histograms needs no locking.
//
// Empty-histogram semantics are defined, not accidental: Count, Sum, Min,
// Max, Mean and Quantile all return 0 when no observation has been recorded
// (including immediately after Reset). Min()/Max() == 0 is therefore
// ambiguous between "empty" and "observed only zeros"; check Count first
// when the distinction matters.
type Histogram struct {
	counts   [histBuckets]int64
	n        int64
	sum      int64
	min, max int64
}

// Add records one observation.
func (h *Histogram) Add(v int64) {
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.counts[i]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
}

// Merge adds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.n == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Reset returns the histogram to the empty state, as if freshly declared:
// Count, Sum, Min, Max, Mean and Quantile all report 0 again afterwards.
func (h *Histogram) Reset() { *h = Histogram{} }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the exact sum of the observations (0 when empty).
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<i - 1
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the
// inclusive upper edge of the bucket in which the quantile falls, clamped to
// the observed maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(h.n) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= target {
			return min(bucketUpper(i), h.max)
		}
	}
	return h.max
}

// String renders the histogram compactly: summary stats followed by the
// non-empty buckets as "<=upper:count" pairs.
func (h *Histogram) String() string {
	if h.n == 0 {
		return "empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f min=%d max=%d |", h.n, h.Mean(), h.min, h.max)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, " <=%d:%d", bucketUpper(i), c)
	}
	return b.String()
}
