package spm

import (
	"testing"
	"testing/quick"
)

func TestInsertAndTouch(t *testing.T) {
	b := New[string](100)
	if b.Touch("a") {
		t.Fatal("hit on empty buffer")
	}
	if evicted := b.Insert("a", 40); evicted != nil {
		t.Fatalf("unexpected evictions %v", evicted)
	}
	if !b.Touch("a") {
		t.Fatal("miss after insert")
	}
	if b.Used() != 40 || b.Len() != 1 {
		t.Fatalf("used/len = %d/%d", b.Used(), b.Len())
	}
	if b.Stats.Hits != 1 || b.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	b := New[string](100)
	b.Insert("a", 40)
	b.Insert("b", 40)
	b.Touch("a") // refresh a: b is now least recently used
	evicted := b.Insert("c", 40)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if !b.Contains("a") || !b.Contains("c") || b.Contains("b") {
		t.Fatal("wrong residency after eviction")
	}
}

func TestInsertEvictsMultiple(t *testing.T) {
	b := New[string](100)
	b.Insert("a", 30)
	b.Insert("b", 30)
	b.Insert("c", 30)
	evicted := b.Insert("big", 90)
	if len(evicted) != 3 {
		t.Fatalf("evicted %v, want all three", evicted)
	}
	if b.Used() != 90 || b.Len() != 1 {
		t.Fatalf("used/len = %d/%d", b.Used(), b.Len())
	}
}

func TestReinsertRefreshesRecency(t *testing.T) {
	b := New[string](100)
	b.Insert("a", 40)
	b.Insert("b", 40)
	b.Insert("a", 40) // refresh, no size change
	if b.Used() != 80 {
		t.Fatalf("used = %d after refresh", b.Used())
	}
	evicted := b.Insert("c", 40)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
}

func TestRemove(t *testing.T) {
	b := New[string](100)
	b.Insert("a", 60)
	if !b.Remove("a") {
		t.Fatal("remove reported missing")
	}
	if b.Remove("a") {
		t.Fatal("double remove succeeded")
	}
	if b.Used() != 0 || b.Contains("a") {
		t.Fatal("remove left residue")
	}
}

func TestFlushKeepsStats(t *testing.T) {
	b := New[string](100)
	b.Insert("a", 10)
	b.Touch("a")
	if n := b.Flush(); n != 1 {
		t.Fatalf("flush dropped %d tiles", n)
	}
	if b.Used() != 0 || b.Len() != 0 {
		t.Fatal("flush incomplete")
	}
	if b.Stats.Hits != 1 {
		t.Fatal("flush cleared stats")
	}
	b.ResetStats()
	if b.Stats.Hits != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestOversizedTilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tile larger than buffer")
		}
	}()
	New[int](10).Insert(1, 11)
}

func TestInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive tile size")
		}
	}()
	New[int](10).Insert(1, 0)
}

func TestNewInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive capacity")
		}
	}()
	New[int](0)
}

// TestAccountingInvariant checks with random workloads that Used() always
// equals the sum of resident tile sizes and never exceeds capacity.
func TestAccountingInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		b := New[uint16](256)
		shadow := make(map[uint16]int64)
		for _, op := range ops {
			key := op % 37
			size := int64(op%63) + 1
			if op%3 == 0 {
				if b.Remove(key) {
					delete(shadow, key)
				}
				continue
			}
			if b.Contains(key) {
				b.Touch(key)
				continue
			}
			for _, v := range b.Insert(key, size) {
				delete(shadow, v)
			}
			shadow[key] = size
			var sum int64
			for _, s := range shadow {
				sum += s
			}
			if b.Used() != sum || b.Used() > b.Capacity() || b.Len() != len(shadow) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionsCountedInStats(t *testing.T) {
	b := New[int](50)
	b.Insert(1, 30)
	b.Insert(2, 30)
	if b.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", b.Stats.Evictions)
	}
}

func TestOnChangeObservesEveryMutation(t *testing.T) {
	b := New[int](50)
	var samples []int64
	b.OnChange = func(used int64) { samples = append(samples, used) }

	b.Insert(1, 30) // resident: 30
	b.Insert(2, 20) // resident: 50
	b.Touch(1)      // recency only: no sample
	b.Insert(3, 30) // evicts 2 and 1, inserts 3: resident 30
	b.Remove(3)     // resident: 0
	b.Insert(4, 10) // resident: 10
	b.Flush()       // resident: 0

	want := []int64{30, 50, 30, 0, 10, 0}
	if len(samples) != len(want) {
		t.Fatalf("samples = %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("sample %d = %d, want %d (all: %v)", i, samples[i], want[i], samples)
		}
	}
}

func TestKeysRecencyOrder(t *testing.T) {
	b := New[string](100)
	b.Insert("a", 10)
	b.Insert("b", 10)
	b.Insert("c", 10)
	if got := b.Keys(); len(got) != 3 || got[0] != "c" || got[1] != "b" || got[2] != "a" {
		t.Fatalf("Keys() = %v, want [c b a]", got)
	}
	// Touching refreshes recency; removing drops the key from the order.
	b.Touch("a")
	b.Remove("b")
	if got := b.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("Keys() after touch/remove = %v, want [a c]", got)
	}
	if b.Flush(); len(b.Keys()) != 0 {
		t.Fatalf("Keys() after flush = %v, want empty", b.Keys())
	}
}
