// Package spm models the software-managed on-chip scratchpad memory of the
// NPU. The simulator gives the streaming half of the SPM (the other half is
// the double-buffer fill target) to a byte-accounted LRU residency set; data
// reuse — including the cross-operation dY reuse the paper creates — then
// *emerges* from the order of tile accesses rather than being asserted.
package spm

import "fmt"

// Buffer is a byte-capacity LRU residency set over tile keys.
// The zero value is not usable; construct with New.
type Buffer[K comparable] struct {
	capacity int64
	used     int64
	entries  map[K]*node[K]
	head     *node[K] // most recently used
	tail     *node[K] // least recently used

	// Stats accumulates hit/miss/eviction counts since the last Reset.
	Stats Stats

	// OnChange, when set, is invoked with the resident byte count after
	// every mutation (Insert, Remove, Flush) — the trace layer's occupancy
	// sampling hook. The nil default costs one predictable branch per
	// mutation and nothing else; every invocation goes through the
	// notifyChange fast path, and the hotalloc-adjacent nilguard rule below
	// keeps it that way.
	//
	//lint:guardedcall nil OnChange is the tracing-disabled configuration
	OnChange func(used int64)
}

// Stats counts residency events.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// Merge adds o's counters into s. Every counter merge in the simulator goes
// through here, so a counter added to Stats cannot be forgotten in one of
// the call sites.
func (s *Stats) Merge(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
}

type node[K comparable] struct {
	key        K
	bytes      int64
	prev, next *node[K]
}

// New creates a buffer holding at most capacity bytes.
func New[K comparable](capacity int64) *Buffer[K] {
	if capacity <= 0 {
		panic(fmt.Sprintf("spm: invalid capacity %d", capacity))
	}
	return &Buffer[K]{capacity: capacity, entries: make(map[K]*node[K])}
}

// Capacity returns the buffer capacity in bytes.
func (b *Buffer[K]) Capacity() int64 { return b.capacity }

// Used returns the bytes currently resident.
func (b *Buffer[K]) Used() int64 { return b.used }

// Len returns the number of resident tiles.
func (b *Buffer[K]) Len() int { return len(b.entries) }

// Contains reports residency without touching recency or stats.
func (b *Buffer[K]) Contains(k K) bool {
	_, ok := b.entries[k]
	return ok
}

// Touch marks k as most recently used if resident, recording a hit or miss.
func (b *Buffer[K]) Touch(k K) bool {
	n, ok := b.entries[k]
	if !ok {
		b.Stats.Misses++
		return false
	}
	b.Stats.Hits++
	b.moveToFront(n)
	return true
}

// Insert adds k with the given size, evicting least-recently-used tiles as
// needed, and returns the evicted keys (oldest first). Inserting an already
// resident key refreshes its recency and returns nil. A tile larger than
// the whole buffer cannot be held: Insert panics, because the tiler is
// required to produce SPM-fitting tiles.
func (b *Buffer[K]) Insert(k K, bytes int64) []K {
	if bytes <= 0 {
		panic(fmt.Sprintf("spm: invalid tile size %d", bytes))
	}
	if bytes > b.capacity {
		panic(fmt.Sprintf("spm: tile of %d bytes exceeds SPM capacity %d", bytes, b.capacity))
	}
	if n, ok := b.entries[k]; ok {
		b.moveToFront(n)
		return nil
	}
	var evicted []K
	for b.used+bytes > b.capacity {
		v := b.tail
		if v == nil {
			break
		}
		b.remove(v)
		b.Stats.Evictions++
		evicted = append(evicted, v.key)
	}
	n := &node[K]{key: k, bytes: bytes}
	b.entries[k] = n
	b.used += bytes
	b.pushFront(n)
	b.notifyChange(b.used)
	return evicted
}

// Remove drops k from the buffer, reporting whether it was resident.
func (b *Buffer[K]) Remove(k K) bool {
	n, ok := b.entries[k]
	if !ok {
		return false
	}
	b.remove(n)
	b.notifyChange(b.used)
	return true
}

// Flush empties the buffer, returning the number of tiles dropped.
// Statistics are preserved.
func (b *Buffer[K]) Flush() int {
	n := len(b.entries)
	b.entries = make(map[K]*node[K])
	b.head, b.tail = nil, nil
	b.used = 0
	b.notifyChange(0)
	return n
}

// notifyChange is the single point through which every mutation reports
// the new resident byte count. The nil fast path lives here so no mutation
// pays more than one predictable branch when tracing is disabled, and so
// the nilguard analyzer has exactly one guarded call site to verify.
func (b *Buffer[K]) notifyChange(used int64) {
	if b.OnChange == nil {
		return
	}
	b.OnChange(used)
}

// ResetStats zeroes the hit/miss/eviction counters.
func (b *Buffer[K]) ResetStats() { b.Stats = Stats{} }

// Keys returns the resident keys in recency order, most recently used
// first. Differential tests use it to compare the buffer's full LRU state
// against an independently-modelled reference, not just the byte totals.
func (b *Buffer[K]) Keys() []K {
	keys := make([]K, 0, len(b.entries))
	for n := b.head; n != nil; n = n.next {
		keys = append(keys, n.key)
	}
	return keys
}

func (b *Buffer[K]) pushFront(n *node[K]) {
	n.prev = nil
	n.next = b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	if b.tail == nil {
		b.tail = n
	}
}

func (b *Buffer[K]) remove(n *node[K]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	delete(b.entries, n.key)
	b.used -= n.bytes
}

func (b *Buffer[K]) moveToFront(n *node[K]) {
	if b.head == n {
		return
	}
	b.remove(n)
	b.entries[n.key] = n
	b.used += n.bytes
	b.pushFront(n)
}
