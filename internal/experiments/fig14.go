package experiments

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/stats"
)

// Fig14 reproduces the multi-core scalability study: the full technique
// stack on 1/2/4/8-core server NPUs, normalized to the baseline with the
// same core count (DRAM bandwidth, SPM and batch scale with cores). The
// paper reports reductions from 14.5% (one core) to 27.7% (eight cores),
// with 23.7% on the TPUv4-like quad-core.
func Fig14() Report {
	t := stats.NewTable("cores", "model", "normalized time")
	var summaries []string

	for _, cores := range []int{1, 2, 4, 8} {
		cfg := config.LargeNPU().WithCores(cores)
		models := suiteFor(cfg)
		grid := policyGrid(cfg, models, []core.Policy{core.PolBaseline, core.PolPartition})
		base, full := grid[0], grid[1]
		var imps []float64
		for i, m := range models {
			norm := float64(full[i].TotalCycles()) / float64(base[i].TotalCycles())
			t.AddRowF("%d", cores, "%s", m.Abbr, "%.3f", norm)
			imps = append(imps, 1-norm)
		}
		summaries = append(summaries, fmt.Sprintf(
			"%d cores: average execution-time reduction %.1f%%", cores, 100*stats.Mean(imps)))
	}
	summaries = append(summaries, "paper: 14.5% (1 core) rising to 27.7% (8 cores), 23.7% at 4 cores")

	return Report{
		ID:      "fig14",
		Title:   "Multi-core scalability of the full technique stack",
		Table:   t,
		Summary: summaries,
	}
}
