// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 3 motivation data and Section 6). Each harness
// returns a Report whose table holds the same rows/series the paper plots;
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"strings"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/stats"
	"igosim/internal/workload"
)

// Report is the outcome of one experiment harness.
type Report struct {
	// ID matches the paper artifact ("fig12", "alg1", ...).
	ID    string
	Title string
	// Table holds the figure's data series.
	Table *stats.Table
	// Summary lines state the headline numbers the paper quotes.
	Summary []string
}

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.String())
	}
	if len(r.Summary) > 0 {
		b.WriteByte('\n')
		for _, s := range r.Summary {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// suiteFor returns the workload suite matching a configuration.
func suiteFor(cfg config.NPU) []workload.Model {
	if strings.HasPrefix(cfg.Name, "small") {
		return workload.EdgeSuite()
	}
	return workload.ServerSuite()
}

// trainingCycles runs one training step per model under pol and returns
// total (fwd+bwd) cycles keyed by model abbreviation, in suite order. The
// models fan out over the runner pool; results land in suite order.
func trainingCycles(cfg config.NPU, models []workload.Model, pol core.Policy) []core.ModelRun {
	return runner.Map(models, func(m workload.Model) core.ModelRun {
		return core.RunTraining(cfg, sim.Options{}, m, pol)
	})
}

// policyGrid runs the whole models x policies grid through the runner in
// one fan-out and returns runs[policyIndex][modelIndex]. Harnesses that
// need several policy rows use it instead of sequential trainingCycles
// calls so the full grid parallelizes at once.
func policyGrid(cfg config.NPU, models []workload.Model, pols []core.Policy) [][]core.ModelRun {
	type cell struct{ pi, mi int }
	cells := make([]cell, 0, len(pols)*len(models))
	for pi := range pols {
		for mi := range models {
			cells = append(cells, cell{pi, mi})
		}
	}
	flat := runner.Map(cells, func(c cell) core.ModelRun {
		return core.RunTraining(cfg, sim.Options{}, models[c.mi], pols[c.pi])
	})
	out := make([][]core.ModelRun, len(pols))
	for pi := range pols {
		out[pi] = flat[pi*len(models) : (pi+1)*len(models)]
	}
	return out
}

// improvementSummary renders the average execution-time reduction of runs
// against base.
func improvementSummary(label string, base, runs []core.ModelRun) (string, float64) {
	var imps []float64
	for i := range runs {
		imps = append(imps, core.Improvement(base[i], runs[i]))
	}
	avg := stats.Mean(imps)
	return fmt.Sprintf("%s: average execution-time reduction %s", label, stats.Pct(avg)), avg
}

// All runs every experiment and returns the reports in paper order. The
// harnesses fan out over the runner pool (each one also parallelizes its
// own grid internally); the report order — and every byte of every report —
// is independent of the pool width.
func All() []Report {
	harnesses := []func() Report{
		Fig03,
		Fig05,
		Fig06,
		Fig12,
		Fig13,
		Alg1,
		Fig14,
		Fig15,
		Fig16,
		Fig17,
		func() Report { return KNNSelection(DefaultKNNTrials) },
	}
	return runner.Map(harnesses, func(h func() Report) Report { return h() })
}

// ByID returns the named experiment report.
func ByID(id string) (Report, error) {
	switch strings.ToLower(id) {
	case "3", "fig3", "fig03":
		return Fig03(), nil
	case "5", "fig5", "fig05":
		return Fig05(), nil
	case "6", "fig6", "fig06":
		return Fig06(), nil
	case "12", "fig12":
		return Fig12(), nil
	case "13", "fig13":
		return Fig13(), nil
	case "14", "fig14":
		return Fig14(), nil
	case "15", "fig15":
		return Fig15(), nil
	case "16", "fig16":
		return Fig16(), nil
	case "17", "fig17":
		return Fig17(), nil
	case "alg1", "sec4.3":
		return Alg1(), nil
	case "knn", "sec5":
		return KNNSelection(DefaultKNNTrials), nil
	default:
		return Report{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{"fig3", "fig5", "fig6", "fig12", "fig13", "alg1", "fig14", "fig15", "fig16", "fig17", "knn"}
}
