package experiments

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/stats"
	"igosim/internal/workload"
)

// Figure 3 decomposes total training time into five phases: forward pass,
// backward pass, host<->device memory copies, loss computation, and the
// parameter update. The paper profiles an NVIDIA A100 with PyTorch at
// batch 256; we substitute our simulator for the two GEMM phases and a
// roofline model (published A100 parameters) for the remaining three —
// the claim the figure supports is only that the backward pass dominates
// (56.5% vs 27.6% forward in the paper).
const (
	a100HBMBandwidth  = 1555e9 // bytes/s
	a100PCIeBandwidth = 25e9   // effective host->device bytes/s
	fig03Batch        = 256
)

// Fig03 reproduces the training-time breakdown.
func Fig03() Report {
	cfg := config.LargeNPU()
	models := suiteFor(cfg)

	t := stats.NewTable("model", "fwd%", "bwd%", "memcopy%", "loss%", "update%")
	var fwdShare, bwdShare []float64

	type phases struct {
		fwd, bwd, memcopy, loss, update float64
	}
	rows := runner.Map(models, func(m workload.Model) phases {
		// Simulated GEMM phases at the figure's batch size.
		run := core.RunTraining(cfg.WithBatch(fig03Batch), sim.Options{}, m, core.PolBaseline)
		var ph phases
		ph.fwd = float64(run.FwdCycles) / cfg.FrequencyHz
		ph.bwd = float64(run.BwdCycles) / cfg.FrequencyHz

		// Roofline phases. Input copy: the first layer's activation bytes.
		layers := m.Layers(fig03Batch)
		inputBytes := float64(layers[0].Dims.SizeX()) * 4
		if layers[0].XReuse > 0 {
			inputBytes *= layers[0].XReuse
		}
		ph.memcopy = inputBytes / a100PCIeBandwidth

		// Loss: elementwise over the final output.
		last := layers[len(layers)-1].Dims
		ph.loss = float64(last.SizeY()) * 4 * 4 / a100HBMBandwidth

		// Update: read weights + gradients + optimizer state, write weights
		// (SGD with momentum: ~5 tensor passes over the parameters).
		params := float64(m.Params()) * 4
		ph.update = 5 * params / a100HBMBandwidth
		return ph
	})

	for i, m := range models {
		ph := rows[i]
		total := ph.fwd + ph.bwd + ph.memcopy + ph.loss + ph.update
		t.AddRowF(
			"%s", m.Abbr,
			"%.1f", 100*ph.fwd/total,
			"%.1f", 100*ph.bwd/total,
			"%.1f", 100*ph.memcopy/total,
			"%.1f", 100*ph.loss/total,
			"%.1f", 100*ph.update/total,
		)
		fwdShare = append(fwdShare, ph.fwd/total)
		bwdShare = append(bwdShare, ph.bwd/total)
	}

	return Report{
		ID:    "fig3",
		Title: "Training-time decomposition (paper: fwd 27.6%, bwd 56.5%, rest ~16%)",
		Table: t,
		Summary: []string{
			fmt.Sprintf("average forward share %.1f%% (paper 27.6%%)", 100*stats.Mean(fwdShare)),
			fmt.Sprintf("average backward share %.1f%% (paper 56.5%%)", 100*stats.Mean(bwdShare)),
		},
	}
}
