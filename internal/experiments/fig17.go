package experiments

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/sim"
	"igosim/internal/stats"
)

// Fig17 reproduces the GPU validation study. The paper implements the
// techniques as CUDA kernels on an RTX 3090, using SM shared memory as the
// reuse buffer, measuring only the backward pass; its baseline is, per
// layer, the better of (a) two sequential GEMM kernels and (b) one fused
// kernel computing dX then dW sequentially — so the reported gains isolate
// dY reuse from mere kernel fusion. We substitute the GPULike
// configuration (128 KB shared-memory-sized buffer, per-SM bandwidth
// share) and the same per-layer best-of-two baseline: (a) maps to the two
// kernels with a buffer flush in between, (b) to the concatenated stream
// without a flush. The paper reports cumulative improvements of 8.6%,
// 20.3% and 30.3%.
func Fig17() Report {
	cfg := config.GPULike()
	models := suiteFor(cfg) // gpu-like runs the edge-size variants (Section 6.6)

	t := stats.NewTable("model", "interleaving", "+rearrangement", "+datapartitioning")
	var iAll, rAll, pAll []float64

	for _, m := range models {
		var baseC, ilvC, reaC, parC int64
		for _, lp := range core.PlanModel(cfg, m) {
			p := lp.Params
			if lp.Layer.SkipDX {
				dw := core.TunedDWOnly(cfg, p)
				r := sim.RunSchedules(cfg, sim.Options{}, dw)
				baseC += r.Cycles
				ilvC += r.Cycles
				reaC += r.Cycles
				parC += r.Cycles
				continue
			}
			// GPU baseline: best of two-kernel and fused-sequential.
			dxK, dwK := core.TunedBaselineKernels(cfg, p)
			two := sim.RunSchedules(cfg, sim.Options{}, dxK, dwK)
			fusedSeq := sim.RunSchedules(cfg, sim.Options{}, core.ConcatKernels(dxK, dwK))
			baseC += min(two.Cycles, fusedSeq.Cycles)

			ilvC += sim.RunSchedules(cfg, sim.Options{}, core.TunedInterleave(cfg, p)).Cycles
			rea, _ := core.RearrangedTuned(cfg, p)
			reaC += sim.RunSchedules(cfg, sim.Options{}, rea).Cycles
			parC += core.RunBackward(cfg, sim.Options{}, p, core.PolPartition, false).Cycles
		}
		b := float64(baseC)
		t.AddRowF("%s", m.Abbr,
			"%.3f", float64(ilvC)/b,
			"%.3f", float64(reaC)/b,
			"%.3f", float64(parC)/b)
		iAll = append(iAll, 1-float64(ilvC)/b)
		rAll = append(rAll, 1-float64(reaC)/b)
		pAll = append(pAll, 1-float64(parC)/b)
	}

	return Report{
		ID:    "fig17",
		Title: "GPU-like validation, backward pass only (baseline = best of unfused/fused-sequential)",
		Table: t,
		Summary: []string{
			fmt.Sprintf("average reduction: interleaving %.1f%%, +rearrangement %.1f%%, +datapartitioning %.1f%%",
				100*stats.Mean(iAll), 100*stats.Mean(rAll), 100*stats.Mean(pAll)),
			"paper (RTX 3090): 8.6%, 20.3%, 30.3%",
		},
	}
}
