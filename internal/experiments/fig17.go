package experiments

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/stats"
	"igosim/internal/workload"
)

// Fig17 reproduces the GPU validation study. The paper implements the
// techniques as CUDA kernels on an RTX 3090, using SM shared memory as the
// reuse buffer, measuring only the backward pass; its baseline is, per
// layer, the better of (a) two sequential GEMM kernels and (b) one fused
// kernel computing dX then dW sequentially — so the reported gains isolate
// dY reuse from mere kernel fusion. We substitute the GPULike
// configuration (128 KB shared-memory-sized buffer, per-SM bandwidth
// share) and the same per-layer best-of-two baseline: (a) maps to the two
// kernels with a buffer flush in between, (b) to the concatenated stream
// without a flush. The paper reports cumulative improvements of 8.6%,
// 20.3% and 30.3%.
func Fig17() Report {
	cfg := config.GPULike()
	models := suiteFor(cfg) // gpu-like runs the edge-size variants (Section 6.6)

	t := stats.NewTable("model", "interleaving", "+rearrangement", "+datapartitioning")
	var iAll, rAll, pAll []float64

	type totals struct{ base, ilv, rea, par int64 }
	perModel := runner.Map(models, func(m workload.Model) totals {
		var c totals
		for _, lp := range core.PlanModel(cfg, m) {
			p := lp.Params
			if lp.Layer.SkipDX {
				// dW-only first layer: identical under every policy.
				r := core.RunBackwardMulti(cfg, sim.Options{}, p, core.PolBaseline, true)
				c.base += r.Cycles
				c.ilv += r.Cycles
				c.rea += r.Cycles
				c.par += r.Cycles
				continue
			}
			// GPU baseline: best of two-kernel and fused-sequential.
			dxK, dwK := core.TunedBaselineKernels(cfg, p)
			two := core.RunBackwardMulti(cfg, sim.Options{}, p, core.PolBaseline, false)
			fusedSeq := sim.RunSchedules(cfg, sim.Options{}, core.ConcatKernels(dxK, dwK))
			c.base += min(two.Cycles, fusedSeq.Cycles)

			c.ilv += core.RunBackwardMulti(cfg, sim.Options{}, p, core.PolInterleave, false).Cycles
			c.rea += core.RunBackwardMulti(cfg, sim.Options{}, p, core.PolRearrange, false).Cycles
			c.par += core.RunBackwardMulti(cfg, sim.Options{}, p, core.PolPartition, false).Cycles
		}
		return c
	})
	for i, m := range models {
		c := perModel[i]
		b := float64(c.base)
		t.AddRowF("%s", m.Abbr,
			"%.3f", float64(c.ilv)/b,
			"%.3f", float64(c.rea)/b,
			"%.3f", float64(c.par)/b)
		iAll = append(iAll, 1-float64(c.ilv)/b)
		rAll = append(rAll, 1-float64(c.rea)/b)
		pAll = append(pAll, 1-float64(c.par)/b)
	}

	return Report{
		ID:    "fig17",
		Title: "GPU-like validation, backward pass only (baseline = best of unfused/fused-sequential)",
		Table: t,
		Summary: []string{
			fmt.Sprintf("average reduction: interleaving %.1f%%, +rearrangement %.1f%%, +datapartitioning %.1f%%",
				100*stats.Mean(iAll), 100*stats.Mean(rAll), 100*stats.Mean(pAll)),
			"paper (RTX 3090): 8.6%, 20.3%, 30.3%",
		},
	}
}
