package experiments

import (
	"fmt"
	"sort"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/stats"
	"igosim/internal/workload"
)

// Fig13 reproduces the per-layer study: for the top 15% longest-running
// backward layers on the large NPU, the DRAM traffic and execution time of
// +Rearrangement normalized to the baseline. The paper observes a strong
// correspondence between traffic reduction and time reduction for GEMM/late
// convolution layers, and traffic reductions without matching time
// reductions for early convolution layers with large input feature maps.
func Fig13() Report {
	cfg := config.LargeNPU()
	models := suiteFor(cfg)

	type row struct {
		name        string
		baseCycles  int64
		normTraffic float64
		normTime    float64
	}
	perModel := runner.Map(models, func(m workload.Model) []row {
		base := core.RunBackwardOnly(cfg, sim.Options{}, m, core.PolBaseline)
		rea := core.RunBackwardOnly(cfg, sim.Options{}, m, core.PolRearrange)
		var out []row
		for i := range base.Bwd {
			b, r := base.Bwd[i], rea.Bwd[i]
			// The paper excludes the first layer (no dX computation).
			if i == 0 || b.Cycles == 0 || b.Traffic.Total() == 0 {
				continue
			}
			out = append(out, row{
				name:        fmt.Sprintf("%s_%d", m.Abbr, i),
				baseCycles:  b.Cycles,
				normTraffic: float64(r.Traffic.Total()) / float64(b.Traffic.Total()),
				normTime:    float64(r.Cycles) / float64(b.Cycles),
			})
		}
		return out
	})
	var rows []row
	for _, rs := range perModel {
		rows = append(rows, rs...)
	}

	// Top 15% of the longest-running layers.
	sort.Slice(rows, func(i, j int) bool { return rows[i].baseCycles > rows[j].baseCycles })
	keep := len(rows) * 15 / 100
	if keep < 1 {
		keep = 1
	}
	rows = rows[:keep]

	t := stats.NewTable("layer", "base cycles", "norm DRAM traffic", "norm exec time")
	var trafficN, timeN []float64
	for _, r := range rows {
		t.AddRowF("%s", r.name, "%d", r.baseCycles, "%.3f", r.normTraffic, "%.3f", r.normTime)
		trafficN = append(trafficN, r.normTraffic)
		timeN = append(timeN, r.normTime)
	}

	return Report{
		ID:    "fig13",
		Title: "Top-15% longest backward layers: +Rearrangement vs baseline, large NPU",
		Table: t,
		Summary: []string{
			fmt.Sprintf("layers shown: %d; average normalized traffic %.3f, time %.3f",
				len(rows), stats.Mean(trafficN), stats.Mean(timeN)),
		},
	}
}
