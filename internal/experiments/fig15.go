package experiments

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/stats"
)

// Fig15 reproduces the DRAM-bandwidth sensitivity study: the full technique
// stack on the single-core large NPU with 1x (150 GB/s), 0.5x and 0.25x
// bandwidth, each normalized to the baseline at the same bandwidth. The
// paper reports reductions of 14.5%, 19.3% and 22.7%: the scarcer the
// bandwidth, the more on-chip reuse pays.
func Fig15() Report {
	t := stats.NewTable("bandwidth", "model", "normalized time")
	var summaries []string

	for _, scale := range []float64{1, 0.5, 0.25} {
		cfg := config.LargeNPU()
		cfg = cfg.WithBandwidth(cfg.DRAMBandwidth * scale)
		models := suiteFor(cfg)
		grid := policyGrid(cfg, models, []core.Policy{core.PolBaseline, core.PolPartition})
		base, full := grid[0], grid[1]
		var imps []float64
		label := fmt.Sprintf("%.2gx (%.1f GB/s)", scale, cfg.DRAMBandwidth/1e9)
		for i, m := range models {
			norm := float64(full[i].TotalCycles()) / float64(base[i].TotalCycles())
			t.AddRowF("%s", label, "%s", m.Abbr, "%.3f", norm)
			imps = append(imps, 1-norm)
		}
		summaries = append(summaries, fmt.Sprintf(
			"%s: average execution-time reduction %.1f%%", label, 100*stats.Mean(imps)))
	}
	summaries = append(summaries, "paper: 14.5% (1x), 19.3% (0.5x), 22.7% (0.25x)")

	return Report{
		ID:      "fig15",
		Title:   "DRAM-bandwidth sensitivity of the full technique stack, large NPU",
		Table:   t,
		Summary: summaries,
	}
}
