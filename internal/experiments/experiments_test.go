package experiments

import (
	"strings"
	"testing"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/stats"
)

func TestIDsResolve(t *testing.T) {
	for _, id := range IDs() {
		if id == "knn" {
			continue // exercised separately with a tiny trial count
		}
		// Resolution only — running every figure here would take minutes.
		if _, err := ByID("definitely-not-" + id); err == nil {
			t.Fatalf("bogus id accepted")
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestSuiteForMatchesConfig(t *testing.T) {
	small := suiteFor(config.SmallNPU())
	large := suiteFor(config.LargeNPU())
	if small[7].Name == large[7].Name {
		t.Fatal("edge and server suites should use different bert variants")
	}
	if len(small) != 9 || len(large) != 9 {
		t.Fatal("suites incomplete")
	}
}

func TestFig05Shape(t *testing.T) {
	rep := Fig05()
	if rep.ID != "fig5" || rep.Table == nil || len(rep.Summary) != 2 {
		t.Fatalf("malformed report: %+v", rep)
	}
	out := rep.String()
	// Every Table 4 model must appear.
	for _, abbr := range []string{"rcnn", "goo", "ncf", "res", "dlrm", "mob", "yolo", "bert", "T5"} {
		if !strings.Contains(out, abbr) {
			t.Errorf("fig5 missing model %s", abbr)
		}
	}
	// The paper's headline property: dY is a large share of backward reads.
	if !strings.Contains(out, "paper 51.4%") {
		t.Error("fig5 should cite the paper's number")
	}
}

func TestFig06ShowsSpeedup(t *testing.T) {
	rep := Fig06()
	if len(rep.Summary) != 2 {
		t.Fatalf("fig6 summaries: %v", rep.Summary)
	}
	// Ideal dY reuse can never slow training down.
	for _, line := range rep.Summary {
		if strings.Contains(line, "speedup 0.") {
			t.Errorf("ideal reuse reported a slowdown: %s", line)
		}
	}
}

func TestImprovementSummaryFormatting(t *testing.T) {
	base := []core.ModelRun{{FwdCycles: 100, BwdCycles: 100}}
	runs := []core.ModelRun{{FwdCycles: 100, BwdCycles: 50}}
	line, avg := improvementSummary("x", base, runs)
	if avg != 0.25 {
		t.Fatalf("avg = %g", avg)
	}
	if !strings.Contains(line, "+25.0%") {
		t.Fatalf("line = %q", line)
	}
	_ = stats.Pct(avg)
}

func TestReportString(t *testing.T) {
	r := Report{ID: "t", Title: "title", Table: stats.NewTable("a"), Summary: []string{"s"}}
	out := r.String()
	if !strings.Contains(out, "== t: title ==") || !strings.Contains(out, "s") {
		t.Fatalf("report string %q", out)
	}
}
