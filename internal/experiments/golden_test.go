package experiments

import (
	"os"
	"testing"

	"igosim/internal/core"
	"igosim/internal/runner"
)

// renderAll concatenates every report's rendering; any difference in any
// byte of any table or summary shows up in the comparison.
func renderReports(reps []Report) string {
	var out string
	for _, r := range reps {
		out += r.String()
	}
	return out
}

// TestReportsByteIdenticalAcrossParallelism runs a set of cheap harnesses
// cold at width 8 and again (warm) at width 1 and demands byte-identical
// output: the runner's indexed fan-in plus the pure simulation functions
// make worker count and cache state invisible in the results.
func TestReportsByteIdenticalAcrossParallelism(t *testing.T) {
	harnesses := []func() Report{Fig05, Fig06, func() Report { return KNNSelection(5) }}

	prev := runner.SetParallelism(8)
	defer runner.SetParallelism(prev)
	core.ResetCaches()
	var parallel []Report
	for _, h := range harnesses {
		parallel = append(parallel, h())
	}

	runner.SetParallelism(1)
	var sequential []Report
	for _, h := range harnesses {
		sequential = append(sequential, h())
	}

	if p, s := renderReports(parallel), renderReports(sequential); p != s {
		t.Fatalf("reports differ between -j 8 (cold) and -j 1 (warm)\n--- parallel ---\n%s\n--- sequential ---\n%s", p, s)
	}
}

// TestAllByteIdenticalAcrossParallelism is the full-suite version: every
// experiment of All(), cold at width 8 versus warm at width 1. It
// regenerates the whole evaluation (~minutes), so it only runs when
// IGOSIM_GOLDEN_ALL=1 is set (the `make golden` target).
func TestAllByteIdenticalAcrossParallelism(t *testing.T) {
	if os.Getenv("IGOSIM_GOLDEN_ALL") != "1" {
		t.Skip("set IGOSIM_GOLDEN_ALL=1 (or run `make golden`) for the full-suite golden comparison")
	}
	prev := runner.SetParallelism(8)
	defer runner.SetParallelism(prev)
	core.ResetCaches()
	parallel := renderReports(All())

	runner.SetParallelism(1)
	sequential := renderReports(All())

	if parallel != sequential {
		t.Fatal("experiments.All() output differs between -j 8 (cold) and -j 1 (warm)")
	}
}
