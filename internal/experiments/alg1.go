package experiments

import (
	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/stats"
)

// Alg1 reproduces the Section 4.3 order-selection study: the execution-time
// reduction (forward + backward) of rearrangement when the access order is
// chosen by (a) the Algorithm 1 listing verbatim, (b) the paper's prose
// rule (spill the smaller gradient), (c) our static cost model, and (d) the
// ideal selection that simulates all three orders. The paper reports
// Algorithm 1 at 23.8%/10.9% (edge/server) versus an ideal of 25.1%/12.4%
// — i.e. the static choice is nearly ideal.
func Alg1() Report {
	selectors := []struct {
		name string
		sel  core.OrderSelector
	}{
		{"alg1-listing", func(_ config.NPU, p schedule.TileParams) core.Order {
			return core.SelectOrderLiteral(p.Dims)
		}},
		{"alg1-prose", func(_ config.NPU, p schedule.TileParams) core.Order {
			return core.SelectOrder(p.Dims)
		}},
		{"static-cost", func(cfg config.NPU, p schedule.TileParams) core.Order {
			return core.SelectOrderFor(p, cfg.SPMBytes)
		}},
		{"ideal", func(cfg config.NPU, p schedule.TileParams) core.Order {
			return core.BestOrderSimulated(cfg, p)
		}},
	}

	t := stats.NewTable("config", "selector", "avg reduction%")
	var summaries []string

	for _, cfg := range []config.NPU{config.SmallNPU(), config.LargeNPU()} {
		models := suiteFor(cfg)
		base := trainingCycles(cfg, models, core.PolBaseline)

		// Flatten the selector x model grid into one parallel map; rows are
		// then folded back per selector in order.
		type cell struct{ sel, model int }
		var cells []cell
		for si := range selectors {
			for mi := range models {
				cells = append(cells, cell{si, mi})
			}
		}
		imps := runner.Map(cells, func(c cell) float64 {
			run := core.RunTrainingSelector(cfg, sim.Options{}, models[c.model], selectors[c.sel].sel)
			return core.Improvement(base[c.model], run)
		})
		for si, s := range selectors {
			row := imps[si*len(models) : (si+1)*len(models)]
			t.AddRowF("%s", cfg.Name, "%s", s.name, "%.1f", 100*stats.Mean(row))
		}
	}
	summaries = append(summaries,
		"paper: Algorithm 1 improves 23.8%/10.9% (edge/server); ideal order selection 25.1%/12.4%")

	return Report{
		ID:      "alg1",
		Title:   "Access-order selection: static Algorithm 1 variants vs ideal (Section 4.3)",
		Table:   t,
		Summary: summaries,
	}
}
