package experiments

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/stats"
	"igosim/internal/workload"
)

// Fig06 reproduces the Section 3.3 limit study: the baseline schedule with
// the dW-side dY reads made free ("assuming the data are hypothetically
// available without any external memory access"), i.e. the performance
// potential of perfect dY reuse. The paper reports average speedups of
// 1.43x on the large NPU and 1.70x on the small NPU.
func Fig06() Report {
	t := stats.NewTable("config", "model", "normalized time", "speedup")
	summaries := make([]string, 0, 2)

	for _, cfg := range []config.NPU{config.LargeNPU(), config.SmallNPU()} {
		models := suiteFor(cfg)
		norms := runner.Map(models, func(m workload.Model) float64 {
			base := core.RunTraining(cfg, sim.Options{}, m, core.PolBaseline)
			free := core.RunTraining(cfg, sim.Options{FreeDYOnDW: true}, m, core.PolBaseline)
			return float64(free.TotalCycles()) / float64(base.TotalCycles())
		})
		var speedups []float64
		for i, m := range models {
			norm := norms[i]
			sp := 1 / norm
			t.AddRowF("%s", cfg.Name, "%s", m.Abbr, "%.3f", norm, "%.2fx", sp)
			speedups = append(speedups, sp)
		}
		paper := 1.43
		if cfg.Name == "small-npu" {
			paper = 1.70
		}
		summaries = append(summaries, fmt.Sprintf(
			"%s: average ideal-dY-reuse speedup %.2fx (paper %.2fx)",
			cfg.Name, stats.GeoMean(speedups), paper))
	}

	return Report{
		ID:      "fig6",
		Title:   "Performance potential of reusing the entire dY (Section 3.3)",
		Table:   t,
		Summary: summaries,
	}
}
