package experiments

import (
	"fmt"
	"math/rand"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/stats"
)

// DefaultKNNTrials is the number of random 80/20 splits used to estimate
// the KNN selector's accuracy. The paper uses 1000 repetitions; the default
// here keeps the harness quick — pass a higher count for a tighter
// estimate.
const DefaultKNNTrials = 100

// DefaultKNNSeed seeds the study's split generator so the report is
// byte-identical run to run. Pass a different seed to KNNSelectionSeeded to
// re-randomise the splits.
const DefaultKNNSeed = 20231028 // MICRO'23 opening day

// KNNSelection runs the Section 5 study with the default seed. See
// KNNSelectionSeeded.
func KNNSelection(trials int) Report {
	return KNNSelectionSeeded(trials, DefaultKNNSeed)
}

// KNNSelectionSeeded reproduces the Section 5 partition-scheme selection
// study on a dual-core server NPU: every layer of every workload is labelled
// with its empirically best partitioning scheme, a KNN classifier (features:
// the dimensions of dX, dW and dY) is trained on random 80% splits, and its
// accuracy is measured on the held-out 20%. The paper reports ~91% average
// accuracy, and a dual-core improvement of 22.4% with ideal selection
// versus 21.5% with KNN selection.
//
// math/rand is certified here because the randomness never touches
// simulated time: it only permutes the train/test split of an experiment
// harness, the generator is a local rand.New (never the global, ambiently
// seeded source), and the seed arrives explicitly from the caller's
// configuration, so every run with the same (trials, seed) pair is
// reproducible.
//
//lint:walldomain seeded local rng permutes only the train/test split of this harness
func KNNSelectionSeeded(trials int, seed int64) Report {
	if trials <= 0 {
		trials = DefaultKNNTrials
	}
	cfg := config.LargeNPU().WithCores(2)
	models := suiteFor(cfg)

	// Label every layer with its empirically best scheme, and record the
	// per-layer cycles of each scheme plus the baseline.
	type labelled struct {
		sample   core.SchemeSample
		cycles   map[core.Scheme]int64
		baseline int64
		best     int64
	}
	var plans []core.LayerPlan
	for _, m := range models {
		for _, lp := range core.PlanModel(cfg, m) {
			if !lp.Layer.SkipDX {
				plans = append(plans, lp)
			}
		}
	}
	data := runner.Map(plans, func(lp core.LayerPlan) labelled {
		base := core.RunBackwardMulti(cfg, sim.Options{}, lp.Params, core.PolBaseline, false)
		l := labelled{cycles: make(map[core.Scheme]int64), baseline: base.Cycles, best: -1}
		bestScheme := core.WeightSharing
		for _, sch := range core.Schemes() {
			out := core.RunPartitionedScheme(cfg, sim.Options{}, lp.Params, sch, cfg.Cores)
			l.cycles[sch] = out.Cycles
			if l.best < 0 || out.Cycles < l.best {
				l.best = out.Cycles
				bestScheme = sch
			}
		}
		l.sample = core.SchemeSample{Dims: lp.Params.Dims, Best: bestScheme}
		return l
	})
	var baseTotal, idealTotal int64
	for _, l := range data {
		baseTotal += l.baseline
		idealTotal += l.best
	}

	// Repeated random 80/20 splits for accuracy, and KNN-selected cycles
	// accumulated over the held-out layers to estimate the end-to-end cost
	// of mispredictions.
	rng := rand.New(rand.NewSource(seed))
	var accs []float64
	var knnTotal, knnIdealTotal, knnBaseTotal int64
	for trial := 0; trial < trials; trial++ {
		perm := rng.Perm(len(data))
		cut := len(data) * 8 / 10
		train := make([]core.SchemeSample, 0, cut)
		for _, i := range perm[:cut] {
			train = append(train, data[i].sample)
		}
		sel, err := core.TrainSchemeSelector(train, core.DefaultSchemeK)
		if err != nil {
			panic(err)
		}
		correct := 0
		for _, i := range perm[cut:] {
			pred := sel.Predict(data[i].sample.Dims)
			if pred == data[i].sample.Best {
				correct++
			}
			knnTotal += data[i].cycles[pred]
			knnIdealTotal += data[i].cycles[data[i].sample.Best]
			knnBaseTotal += data[i].baseline
		}
		accs = append(accs, float64(correct)/float64(len(data)-cut))
	}

	t := stats.NewTable("metric", "measured", "paper")
	t.AddRowF("%s", "KNN accuracy (avg)", "%.1f%%", 100*stats.Mean(accs), "%s", "91%")
	idealImp := 1 - float64(idealTotal)/float64(baseTotal)
	t.AddRowF("%s", "dual-core bwd reduction, ideal scheme", "%.1f%%", 100*idealImp, "%s", "22.4%")
	knnImp := 0.0
	if knnBaseTotal > 0 {
		knnImp = 1 - float64(knnTotal)/float64(knnBaseTotal)
		knnIdeal := 1 - float64(knnIdealTotal)/float64(knnBaseTotal)
		t.AddRowF("%s", "dual-core bwd reduction, KNN scheme", "%.1f%%", 100*knnImp, "%s", "21.5%")
		t.AddRowF("%s", "  (ideal on same held-out layers)", "%.1f%%", 100*knnIdeal, "%s", "")
	}

	return Report{
		ID:    "knn",
		Title: fmt.Sprintf("KNN partition-scheme selection, dual-core large NPU (%d trials, %d layers)", trials, len(data)),
		Table: t,
		Summary: []string{
			fmt.Sprintf("average accuracy %.1f%% over %d random 80/20 splits", 100*stats.Mean(accs), trials),
		},
	}
}
