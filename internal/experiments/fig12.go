package experiments

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/stats"
)

// Fig12 reproduces the headline single-core result: per-model execution
// time (forward + backward) under the three cumulative techniques,
// normalized to the baseline, for both NPU classes. The paper reports
// average reductions of 29.3% (small NPU) and 14.5% (large NPU) with all
// techniques applied.
func Fig12() Report {
	t := stats.NewTable("config", "model", "interleaving", "+rearrangement", "+datapartitioning")
	var summaries []string

	for _, cfg := range []config.NPU{config.SmallNPU(), config.LargeNPU()} {
		models := suiteFor(cfg)
		grid := policyGrid(cfg, models, core.Policies())
		base, ilv, rea, par := grid[0], grid[1], grid[2], grid[3]

		for i, m := range models {
			b := float64(base[i].TotalCycles())
			t.AddRowF(
				"%s", cfg.Name,
				"%s", m.Abbr,
				"%.3f", float64(ilv[i].TotalCycles())/b,
				"%.3f", float64(rea[i].TotalCycles())/b,
				"%.3f", float64(par[i].TotalCycles())/b,
			)
		}
		paper := map[string]string{"small-npu": "0.8/23.8/29.3", "large-npu": "7.4/10.9/14.5"}[cfg.Name]
		_, iAvg := improvementSummary("", base, ilv)
		_, rAvg := improvementSummary("", base, rea)
		_, pAvg := improvementSummary("", base, par)
		summaries = append(summaries, fmt.Sprintf(
			"%s: average reduction interleaving %.1f%%, +rearrangement %.1f%%, +datapartitioning %.1f%% (paper %s%%)",
			cfg.Name, 100*iAvg, 100*rAvg, 100*pAvg, paper))
	}

	return Report{
		ID:      "fig12",
		Title:   "Normalized execution time of the cumulative techniques, single-core NPUs",
		Table:   t,
		Summary: summaries,
	}
}
