package experiments

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/dram"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/stats"
	"igosim/internal/workload"
)

// Fig05 reproduces the dY traffic shares of the baseline backward pass on
// the large NPU: dY as a fraction of all read+write traffic (paper average
// 39.0%) and of read traffic (paper average 51.4%, with dlrm the highest at
// 68.3%).
func Fig05() Report {
	cfg := config.LargeNPU()
	models := suiteFor(cfg)

	t := stats.NewTable("model", "dY/(R+W)%", "dY/R%")
	type shares struct{ rw, r float64 }
	rows := runner.Map(models, func(m workload.Model) shares {
		tr := core.RunBackwardOnly(cfg, sim.Options{}, m, core.PolBaseline).BwdTraffic
		return shares{rw: tr.Share(dram.ClassDY), r: tr.ReadShare(dram.ClassDY)}
	})
	var rw, r []float64
	for i, m := range models {
		t.AddRowF("%s", m.Abbr, "%.1f", 100*rows[i].rw, "%.1f", 100*rows[i].r)
		rw = append(rw, rows[i].rw)
		r = append(r, rows[i].r)
	}

	return Report{
		ID:    "fig5",
		Title: "dY share of backward-pass DRAM traffic, baseline large NPU",
		Table: t,
		Summary: []string{
			fmt.Sprintf("average dY share of read+write traffic %.1f%% (paper 39.0%%)", 100*stats.Mean(rw)),
			fmt.Sprintf("average dY share of read traffic %.1f%% (paper 51.4%%)", 100*stats.Mean(r)),
		},
	}
}
