package experiments

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/dram"
	"igosim/internal/sim"
	"igosim/internal/stats"
)

// Fig05 reproduces the dY traffic shares of the baseline backward pass on
// the large NPU: dY as a fraction of all read+write traffic (paper average
// 39.0%) and of read traffic (paper average 51.4%, with dlrm the highest at
// 68.3%).
func Fig05() Report {
	cfg := config.LargeNPU()
	models := suiteFor(cfg)

	t := stats.NewTable("model", "dY/(R+W)%", "dY/R%")
	var rw, r []float64
	for _, m := range models {
		run := core.RunBackwardOnly(cfg, sim.Options{}, m, core.PolBaseline)
		tr := run.BwdTraffic
		rwShare := tr.Share(dram.ClassDY)
		rShare := tr.ReadShare(dram.ClassDY)
		t.AddRowF("%s", m.Abbr, "%.1f", 100*rwShare, "%.1f", 100*rShare)
		rw = append(rw, rwShare)
		r = append(r, rShare)
	}

	return Report{
		ID:    "fig5",
		Title: "dY share of backward-pass DRAM traffic, baseline large NPU",
		Table: t,
		Summary: []string{
			fmt.Sprintf("average dY share of read+write traffic %.1f%% (paper 39.0%%)", 100*stats.Mean(rw)),
			fmt.Sprintf("average dY share of read traffic %.1f%% (paper 51.4%%)", 100*stats.Mean(r)),
		},
	}
}
