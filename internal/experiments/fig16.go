package experiments

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/stats"
)

// Fig16 reproduces the batch-size sensitivity study: the full technique
// stack on the single-core large NPU with per-core batch sizes 8, 16 and
// 32, each normalized to the baseline at the same batch. The paper reports
// 14.5%, 14.7% and 14.0% — i.e. the benefit is essentially batch
// independent.
func Fig16() Report {
	t := stats.NewTable("batch", "model", "normalized time")
	var summaries []string

	for _, batch := range []int{8, 16, 32} {
		cfg := config.LargeNPU().WithBatch(batch)
		models := suiteFor(cfg)
		grid := policyGrid(cfg, models, []core.Policy{core.PolBaseline, core.PolPartition})
		base, full := grid[0], grid[1]
		var imps []float64
		for i, m := range models {
			norm := float64(full[i].TotalCycles()) / float64(base[i].TotalCycles())
			t.AddRowF("%d", batch, "%s", m.Abbr, "%.3f", norm)
			imps = append(imps, 1-norm)
		}
		summaries = append(summaries, fmt.Sprintf(
			"batch %d: average execution-time reduction %.1f%%", batch, 100*stats.Mean(imps)))
	}
	summaries = append(summaries, "paper: 14.5% (batch 8), 14.7% (16), 14.0% (32)")

	return Report{
		ID:      "fig16",
		Title:   "Batch-size sensitivity of the full technique stack, large NPU",
		Table:   t,
		Summary: summaries,
	}
}
