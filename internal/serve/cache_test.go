package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"igosim/internal/core"
	"igosim/internal/runner"
	"igosim/internal/stats"
)

// fakeCompute builds a compute function returning a fixed body while
// counting executions.
func fakeCompute(counter *int, mu *sync.Mutex, body string) func() ([]byte, *Error) {
	return func() ([]byte, *Error) {
		mu.Lock()
		*counter++
		mu.Unlock()
		return []byte(body), nil
	}
}

// TestCacheLRUBound churns a capacity-4 cache with recurring keys and
// checks the bound holds, the doorkeeper admits recurring keys, and
// evictions are counted.
func TestCacheLRUBound(t *testing.T) {
	counters := stats.NewCacheCounters("serve/test-lru")
	c := newResultCache(4, counters, runner.NewLimiter(1))
	ctx := context.Background()
	var mu sync.Mutex
	computes := 0

	get := func(key string) string {
		body, status, err := c.Get(ctx, key, fakeCompute(&computes, &mu, "body-"+key))
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if string(body) != "body-"+key {
			t.Fatalf("Get(%s) = %q", key, body)
		}
		return status
	}

	// Fill to capacity: all admitted.
	for i := 0; i < 4; i++ {
		if s := get(fmt.Sprintf("k%d", i)); s != StatusMiss {
			t.Errorf("first Get(k%d) = %s, want miss", i, s)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d after filling capacity 4", c.Len())
	}
	for i := 0; i < 4; i++ {
		if s := get(fmt.Sprintf("k%d", i)); s != StatusHit {
			t.Errorf("second Get(k%d) = %s, want hit", i, s)
		}
	}

	// A one-shot scan over 32 fresh keys must not displace the working
	// set: each scan key is seen once, computed, and refused admission.
	for i := 0; i < 32; i++ {
		get(fmt.Sprintf("scan%d", i))
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d after scan, want 4 (doorkeeper should refuse one-shot keys)", c.Len())
	}
	if ev := counters.Snapshot().Evictions; ev != 0 {
		t.Errorf("%d evictions during a one-shot scan, want 0", ev)
	}
	for i := 0; i < 4; i++ {
		if s := get(fmt.Sprintf("k%d", i)); s != StatusHit {
			t.Errorf("Get(k%d) after scan = %s, want hit: scan displaced the working set", i, s)
		}
	}

	// A *recurring* key earns admission on its second computation,
	// evicting the LRU tail (k0: everything else was touched later).
	get("hot")
	if s := get("hot"); s != StatusMiss {
		t.Fatalf("recurring key's second Get = %s, want miss (first was refused admission)", s)
	}
	if s := get("hot"); s != StatusHit {
		t.Errorf("recurring key's third Get = %s, want hit (admitted on recurrence)", s)
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d after admission-by-recurrence, want 4", c.Len())
	}
	if ev := counters.Snapshot().Evictions; ev != 1 {
		t.Errorf("evictions = %d after admission-by-recurrence, want 1", ev)
	}
	if s := get("k0"); s != StatusMiss {
		t.Errorf("Get(k0) = %s, want miss: k0 was the LRU tail and should have been evicted", s)
	}
}

// TestCacheSingleflight proves N concurrent identical requests collapse to
// one computation, counted as 1 miss + N-1 coalesced lookups.
func TestCacheSingleflight(t *testing.T) {
	counters := stats.NewCacheCounters("serve/test-sf")
	c := newResultCache(8, counters, runner.NewLimiter(4))
	var mu sync.Mutex
	computes := 0
	release := make(chan struct{})
	compute := func() ([]byte, *Error) {
		mu.Lock()
		computes++
		mu.Unlock()
		<-release // hold every caller in flight until all have joined
		return []byte("v"), nil
	}

	const n = 16
	var wg sync.WaitGroup
	joined := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			joined <- struct{}{}
			body, _, err := c.Get(context.Background(), "same", compute)
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			if string(body) != "v" {
				t.Errorf("Get = %q", body)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-joined
	}
	// All n goroutines are at least launched; wait until n-1 have
	// registered as waiters so exactly one leader holds the computation.
	for {
		if counters.Snapshot().Coalesced == n-1 {
			break
		}
	}
	close(release)
	wg.Wait()

	if computes != 1 {
		t.Errorf("%d computations for %d concurrent identical requests, want 1", computes, n)
	}
	snap := counters.Snapshot()
	if snap.Misses != 1 || snap.Coalesced != n-1 {
		t.Errorf("counters: %d misses + %d coalesced, want 1 + %d", snap.Misses, snap.Coalesced, n-1)
	}
	if snap.Lookups() != n {
		t.Errorf("lookups = %d, want %d", snap.Lookups(), n)
	}
}

// TestServerSingleflight repeats the collapse proof end-to-end: 16
// concurrent identical HTTP requests against a live server must execute
// one simulation, visible in the serve/result counters.
func TestServerSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates one model point")
	}
	serveCounters.Reset()
	_, ts := newTestServer(t, Options{})
	req := Request{Workload: "ncf", Suite: "edge", NPU: "small", Batch: 2}

	const n = 16
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, _ := post(t, ts.Client(), ts.URL+"/simulate", req)
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, body)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("concurrent identical requests returned different bodies")
		}
	}
	snap := serveCounters.Snapshot()
	if snap.Misses != 1 {
		t.Errorf("misses = %d for %d identical concurrent requests, want 1 (singleflight)", snap.Misses, n)
	}
	if snap.Lookups() != n {
		t.Errorf("lookups = %d, want %d", snap.Lookups(), n)
	}
}

// TestResetCachesClearsServerState proves ResetCaches returns the whole
// process to cold: the result cache empties (the same request misses
// again) and the simulator-side caches are dropped too.
func TestResetCachesClearsServerState(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates one model point")
	}
	s, ts := newTestServer(t, Options{})
	req := Request{Workload: "dlrm", Suite: "edge", NPU: "small", Batch: 2}

	_, first, st1 := post(t, ts.Client(), ts.URL+"/simulate", req)
	if st1 != StatusMiss {
		t.Fatalf("first request: cache %s, want miss", st1)
	}
	_, _, st2 := post(t, ts.Client(), ts.URL+"/simulate", req)
	if st2 != StatusHit {
		t.Fatalf("second request: cache %s, want hit", st2)
	}
	if core.LayerMemoStats().Entries <= 0 {
		t.Fatal("layer memo stayed empty after a simulation")
	}

	s.ResetCaches()
	if s.cache.Len() != 0 {
		t.Errorf("result cache holds %d entries after ResetCaches", s.cache.Len())
	}
	if n := core.LayerMemoStats().Entries; n != 0 {
		t.Errorf("layer memo holds %d entries after ResetCaches", n)
	}
	if n := core.ProgramCacheLen(); n != 0 {
		t.Errorf("program cache holds %d entries after ResetCaches", n)
	}

	_, again, st3 := post(t, ts.Client(), ts.URL+"/simulate", req)
	if st3 != StatusMiss {
		t.Errorf("request after ResetCaches: cache %s, want miss (cold state)", st3)
	}
	if !bytes.Equal(first, again) {
		t.Error("cold recomputation after ResetCaches produced a different body")
	}
}

// TestResetEndpoint checks the opt-in /reset route.
func TestResetEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{EnableReset: true})
	c := s.cache
	c.Get(context.Background(), "x", func() ([]byte, *Error) { return []byte("v"), nil })
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	resp, err := ts.Client().Post(ts.URL+"/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/reset: %d", resp.StatusCode)
	}
	if c.Len() != 0 {
		t.Errorf("result cache holds %d entries after POST /reset", c.Len())
	}

	// Without EnableReset the route must not exist.
	_, ts2 := newTestServer(t, Options{})
	resp, err = ts2.Client().Post(ts2.URL+"/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST /reset without EnableReset: %d, want 404", resp.StatusCode)
	}
}
