// Package serve is the simulation-as-a-service layer (DESIGN.md §3k): a
// stdlib-only JSON HTTP API over the simulator. Clients submit a
// (workload, NPU configuration, options) request and receive the schedule
// choice, cycles, per-class DRAM traffic, energy and optionally a trace
// report; /batch fans a request list out through internal/runner with the
// process-wide -j semantics.
//
// The Cycle/Wall split applies to the server exactly as it does to the
// CLIs: the server *process* is wall-domain (clocks, sockets, timeouts,
// latency histograms), but every response body is a pure Cycle-domain
// function of the canonicalized request — byte-identical at any
// parallelism, any cache state, any request interleaving. Everything that
// may legitimately vary (cache hit status, timings) travels in headers and
// /metrics, never in a body. Evaluate, the request→result function, is
// registered as a Cycle-domain entry point with the detflow lint, so "the
// body is deterministic" is a proven property, not a convention.
package serve

import (
	"fmt"
	"strings"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/dram"
	"igosim/internal/energy"
	"igosim/internal/metrics"
	"igosim/internal/sim"
	"igosim/internal/trace"
	"igosim/internal/workload"
)

// SchemaVersion names the response schema; it rides in every response so
// clients and cached bodies can be validated against the right shape.
const SchemaVersion = "igosim.serve/1"

// Request is one simulation query.
type Request struct {
	// Workload is the Table 4 abbreviation or full model name ("res",
	// "bert", "ResNet-50", ...). Required.
	Workload string `json:"workload"`
	// Suite selects the model-zoo variant set: "server" (default) or
	// "edge".
	Suite string `json:"suite,omitempty"`
	// Policy is the transformation level: "baseline", "interleave",
	// "rearrange" or "partition" (default "partition"). The paper's long
	// forms ("interleaving", "+rearrangement", "+datapartitioning") are
	// accepted too.
	Policy string `json:"policy,omitempty"`
	// NPU names a preset configuration: "small"/"edge", "large"/"server"
	// or "gpu". Exactly one of NPU and Config must be set.
	NPU string `json:"npu,omitempty"`
	// Config is a full custom configuration; it must pass Validate.
	Config *config.NPU `json:"config,omitempty"`
	// Cores/BandwidthGBs/SPMMiB/Batch/TkCap override the named preset
	// (ignored when Config is set); zero values leave the preset alone.
	Cores        int     `json:"cores,omitempty"`
	BandwidthGBs float64 `json:"bandwidth_gbs,omitempty"`
	SPMMiB       int64   `json:"spm_mib,omitempty"`
	Batch        int     `json:"batch,omitempty"`
	TkCap        int     `json:"tkcap,omitempty"`
	// Options select what the response carries.
	Options RequestOptions `json:"options,omitempty"`
}

// RequestOptions toggle optional response sections.
type RequestOptions struct {
	// BackwardOnly simulates only the backward pass (the Figure 17
	// measurement mode).
	BackwardOnly bool `json:"backward_only,omitempty"`
	// Baseline additionally simulates the conventional baseline and
	// reports the execution-time reduction against it.
	Baseline bool `json:"baseline,omitempty"`
	// Energy adds the 45nm energy breakdown (and savings, with Baseline).
	Energy bool `json:"energy,omitempty"`
	// Report adds the cycle-domain trace report (stall attribution, SPM
	// occupancy, reuse distances). Single-core configurations only.
	Report bool `json:"report,omitempty"`
}

// Response is one simulation result. Field order is the wire order
// (encoding/json emits struct fields in declaration order and sorts map
// keys), so marshaling is deterministic.
type Response struct {
	Schema      string `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Model       string `json:"model"`
	Config      string `json:"config"`
	Policy      string `json:"policy"`

	TotalCycles int64   `json:"total_cycles"`
	FwdCycles   int64   `json:"fwd_cycles"`
	BwdCycles   int64   `json:"bwd_cycles"`
	Seconds     float64 `json:"seconds"`

	// Layers lists the backward pass's per-layer schedule choices.
	Layers []LayerChoice `json:"layers"`

	// BwdRead/BwdWrite break the backward-pass DRAM traffic down by
	// tensor class, in bytes.
	BwdRead         map[string]int64 `json:"bwd_read"`
	BwdWrite        map[string]int64 `json:"bwd_write"`
	BwdTrafficBytes int64            `json:"bwd_traffic_bytes"`
	Spills          int64            `json:"spills"`

	// Baseline section (Options.Baseline).
	BaseCycles int64   `json:"base_cycles,omitempty"`
	Reduction  float64 `json:"reduction,omitempty"`

	// Energy section (Options.Energy), joules per training step.
	Energy *EnergyResult `json:"energy,omitempty"`

	// Report is the rendered trace report (Options.Report).
	Report string `json:"report,omitempty"`
}

// LayerChoice is one layer's chosen backward schedule.
type LayerChoice struct {
	Name   string `json:"name"`
	Order  string `json:"order"`
	Scheme string `json:"scheme"`
	Parts  int    `json:"parts"`
	Cycles int64  `json:"cycles"`
}

// EnergyResult is the per-component energy of the simulated training step.
type EnergyResult struct {
	DRAMJoules    float64 `json:"dram_j"`
	SPMJoules     float64 `json:"spm_j"`
	ComputeJoules float64 `json:"compute_j"`
	StaticJoules  float64 `json:"static_j"`
	TotalJoules   float64 `json:"total_j"`
	// Savings is the fractional energy reduction vs the baseline
	// (Options.Baseline only).
	Savings float64 `json:"savings,omitempty"`
}

// Error is the structured error body every non-200 response carries.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Code + ": " + e.Message }

// Error codes.
const (
	CodeBadJSON         = "bad_json"
	CodeBadRequest      = "bad_request"
	CodeUnknownModel    = "unknown_model"
	CodeInvalidConfig   = "invalid_config"
	CodeBatchTooLarge   = "batch_too_large"
	CodeDeadline        = "deadline_exceeded"
	CodeShuttingDown    = "shutting_down"
	CodeMethodNotWanted = "method_not_allowed"
)

func badRequest(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// resolved is a canonicalized request: every default filled, the
// configuration materialized. Its JSON form (via the embedded Request) is
// what the cache fingerprint hashes, so two requests that mean the same
// simulation share one fingerprint.
type resolved struct {
	req    Request
	model  workload.Model
	cfg    config.NPU
	policy core.Policy
}

// policyByName maps accepted policy spellings to levels.
func policyByName(s string) (core.Policy, bool) {
	switch strings.ToLower(s) {
	case "", "partition", "+datapartitioning":
		return core.PolPartition, true
	case "baseline":
		return core.PolBaseline, true
	case "interleave", "interleaving":
		return core.PolInterleave, true
	case "rearrange", "rearrangement", "+rearrangement":
		return core.PolRearrange, true
	}
	return 0, false
}

// presetByName maps accepted preset spellings to configurations.
func presetByName(s string) (config.NPU, bool) {
	switch strings.ToLower(s) {
	case "small", "edge":
		return config.SmallNPU(), true
	case "large", "server":
		return config.LargeNPU(), true
	case "gpu", "gpu-like":
		return config.GPULike(), true
	}
	return config.NPU{}, false
}

// canonicalize validates a request and fills every default, returning the
// resolved simulation point or a structured error. The returned resolved
// request is what gets fingerprinted: requests differing only in
// equivalent spellings ("partition" vs "", "small" vs "edge") canonicalize
// identically and share a cache entry.
func canonicalize(req Request) (resolved, *Error) {
	var r resolved

	suite := strings.ToLower(req.Suite)
	switch suite {
	case "", "large":
		suite = "server"
	case "small":
		suite = "edge"
	}
	models, err := workload.SuiteFor(suite)
	if err != nil {
		return r, badRequest(CodeBadRequest, "unknown suite %q (want server or edge)", req.Suite)
	}
	if req.Workload == "" {
		return r, badRequest(CodeBadRequest, "missing workload (one of %v)", workload.Abbrs(models))
	}
	model, err := workload.ByAbbr(models, req.Workload)
	if err != nil {
		return r, badRequest(CodeUnknownModel, "unknown workload %q in suite %q (one of %v)",
			req.Workload, suite, workload.Abbrs(models))
	}

	pol, ok := policyByName(req.Policy)
	if !ok {
		return r, badRequest(CodeBadRequest,
			"unknown policy %q (want baseline, interleave, rearrange or partition)", req.Policy)
	}

	var cfg config.NPU
	switch {
	case req.Config != nil && req.NPU != "":
		return r, badRequest(CodeBadRequest, "config and npu are mutually exclusive")
	case req.Config != nil:
		cfg = *req.Config
	default:
		name := req.NPU
		if name == "" {
			name = "large"
		}
		cfg, ok = presetByName(name)
		if !ok {
			return r, badRequest(CodeBadRequest, "unknown npu preset %q (want small, large or gpu)", req.NPU)
		}
		if req.Cores > 0 {
			cfg = cfg.WithCores(req.Cores)
		}
		if req.BandwidthGBs > 0 {
			cfg = cfg.WithBandwidth(req.BandwidthGBs * 1e9)
		}
		if req.SPMMiB > 0 {
			cfg.SPMBytes = req.SPMMiB << 20
		}
		if req.Batch > 0 {
			cfg = cfg.WithBatch(req.Batch)
		}
		if req.TkCap > 0 {
			cfg = cfg.WithTkCap(req.TkCap)
		}
	}
	if err := cfg.Validate(); err != nil {
		return r, badRequest(CodeInvalidConfig, "%v", err)
	}
	if req.Options.Report && cfg.Cores != 1 {
		return r, badRequest(CodeInvalidConfig,
			"trace reports require a single-core configuration (got %d cores)", cfg.Cores)
	}

	// The canonical request: spellings normalized, the materialized config
	// embedded, preset/override fields cleared. Its JSON is the
	// fingerprint input.
	r.req = Request{
		Workload: model.Abbr,
		Suite:    suite,
		Policy:   pol.String(),
		Config:   &cfg,
		Options:  req.Options,
	}
	r.model = model
	r.cfg = cfg
	r.policy = pol
	return r, nil
}

// fingerprint returns the SHA-256 hex digest of the canonical request —
// the result cache's key and the Fingerprint field of the response.
func (r resolved) fingerprint() (string, error) {
	return metrics.Fingerprint(r.req)
}

// Fingerprint canonicalizes a request and returns its cache key. Clients
// (and the load-test harness) use it to predict cache behaviour: requests
// sharing a fingerprint share one cache entry and one simulation.
func Fingerprint(req Request) (string, error) {
	res, e := canonicalize(req)
	if e != nil {
		return "", e
	}
	return res.fingerprint()
}

// Evaluate runs the resolved simulation and assembles the response. It is
// a pure Cycle-domain function of its argument — registered as a
// cycle-domain entry point with the detflow lint — which is the proof
// obligation behind the byte-identical-response guarantee: everything
// nondeterministic about serving (cache state, concurrency, wall time)
// lives outside this function.
func Evaluate(r resolved) *Response {
	runOne := core.RunTraining
	if r.req.Options.BackwardOnly {
		runOne = core.RunBackwardOnly
	}

	run := runOne(r.cfg, sim.Options{}, r.model, r.policy)
	resp := &Response{
		Schema: SchemaVersion,
		Model:  run.Model,
		Config: r.cfg.Name,
		Policy: r.policy.String(),

		TotalCycles: run.TotalCycles(),
		FwdCycles:   run.FwdCycles,
		BwdCycles:   run.BwdCycles,
		Seconds:     run.Seconds(r.cfg),

		BwdTrafficBytes: run.BwdTraffic.Total(),
		BwdRead:         trafficMap(run.BwdTraffic, false),
		BwdWrite:        trafficMap(run.BwdTraffic, true),
	}
	for _, l := range run.Bwd {
		resp.Layers = append(resp.Layers, LayerChoice{
			Name:   l.Name,
			Order:  l.Order.String(),
			Scheme: l.Scheme.String(),
			Parts:  l.Parts,
			Cycles: l.Cycles,
		})
		resp.Spills += l.Spills
	}

	var base core.ModelRun
	if r.req.Options.Baseline {
		base = runOne(r.cfg, sim.Options{}, r.model, core.PolBaseline)
		resp.BaseCycles = base.TotalCycles()
		resp.Reduction = core.Improvement(base, run)
	}
	if r.req.Options.Energy {
		model := energy.Default45nm()
		b := model.TrainingStep(run)
		resp.Energy = &EnergyResult{
			DRAMJoules:    b.DRAM,
			SPMJoules:     b.SPM,
			ComputeJoules: b.Compute,
			StaticJoules:  b.Static,
			TotalJoules:   b.Total(),
		}
		if r.req.Options.Baseline {
			resp.Energy.Savings = model.Savings(base, run)
		}
	}
	if r.req.Options.Report {
		resp.Report = traceReport(r)
	}
	return resp
}

// traceReport re-runs the model's layers sequentially on a private sink
// and renders the trace report. The memoized entry points are bypassed on
// purpose: a memo hit would suppress the engine spans of whatever executed
// first, making the report depend on cache state. The private sink is
// never installed process-wide, so the runner contributes no wall-clock
// task spans and the rendered text is a pure function of the request.
func traceReport(r resolved) string {
	sink := trace.New()
	for _, lp := range core.PlanModel(r.cfg, r.model) {
		label := r.model.Abbr + "/" + lp.Layer.Name
		if !r.req.Options.BackwardOnly {
			core.RunForward(r.cfg, sim.Options{Trace: sink, TraceLabel: label + " fwd"}, lp.Params)
		}
		core.RunBackward(r.cfg, sim.Options{Trace: sink, TraceLabel: label + " bwd"},
			lp.Params, r.policy, lp.Layer.SkipDX)
	}
	return sink.Metrics().Report()
}

// trafficMap flattens one direction of a traffic breakdown into a
// class-name map, walking dram.Classes() (a fixed slice, not a Go map) so
// no map-iteration order can leak; encoding/json then sorts the keys.
func trafficMap(t dram.Traffic, write bool) map[string]int64 {
	out := make(map[string]int64, dram.NumClasses)
	for _, c := range dram.Classes() {
		v := t.Read[c]
		if write {
			v = t.Write[c]
		}
		if v != 0 {
			out[c.String()] = v
		}
	}
	return out
}
