package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"igosim/internal/config"
)

// errorBody decodes the structured error envelope.
func errorBody(t *testing.T, body []byte) Error {
	t.Helper()
	var env struct {
		Error Error `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not the structured envelope: %v\n%s", err, body)
	}
	if env.Error.Code == "" {
		t.Fatalf("error body has no code: %s", body)
	}
	return env.Error
}

// TestErrorPaths drives every documented failure through the live handler
// and checks both the HTTP status and the structured error code.
func TestErrorPaths(t *testing.T) {
	badCfg := config.SmallNPU()
	badCfg.SPMBytes = -1

	cases := []struct {
		name     string
		path     string
		raw      string // raw body when set; otherwise req is marshaled
		req      any
		status   int
		code     string
		inErrMsg string
	}{
		{
			name:   "malformed json",
			path:   "/simulate",
			raw:    `{"workload": "ncf",`,
			status: http.StatusBadRequest,
			code:   CodeBadJSON,
		},
		{
			name:   "trailing garbage",
			path:   "/simulate",
			raw:    `{"workload": "ncf"} extra`,
			status: http.StatusBadRequest,
			code:   CodeBadJSON,
		},
		{
			name:   "unknown field",
			path:   "/simulate",
			raw:    `{"workload": "ncf", "wrokload": "oops"}`,
			status: http.StatusBadRequest,
			code:   CodeBadJSON,
		},
		{
			name:   "missing workload",
			path:   "/simulate",
			req:    Request{},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
		{
			name:     "unknown workload",
			path:     "/simulate",
			req:      Request{Workload: "alexnet"},
			status:   http.StatusNotFound,
			code:     CodeUnknownModel,
			inErrMsg: "alexnet",
		},
		{
			name:   "unknown policy",
			path:   "/simulate",
			req:    Request{Workload: "ncf", Policy: "yolo"},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
		{
			name:   "unknown preset",
			path:   "/simulate",
			req:    Request{Workload: "ncf", NPU: "huge"},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
		{
			name:   "config and npu together",
			path:   "/simulate",
			req:    Request{Workload: "ncf", NPU: "small", Config: &badCfg},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
		{
			name:     "config failing Validate",
			path:     "/simulate",
			req:      Request{Workload: "ncf", Config: &badCfg},
			status:   http.StatusUnprocessableEntity,
			code:     CodeInvalidConfig,
			inErrMsg: "SPM",
		},
		{
			name: "report on multi-core config",
			path: "/simulate",
			req: Request{Workload: "ncf", NPU: "large", Cores: 4,
				Options: RequestOptions{Report: true}},
			status:   http.StatusUnprocessableEntity,
			code:     CodeInvalidConfig,
			inErrMsg: "single-core",
		},
		{
			name:   "oversized batch",
			path:   "/batch",
			req:    make([]Request, 5),
			status: http.StatusRequestEntityTooLarge,
			code:   CodeBatchTooLarge,
		},
	}

	_, ts := newTestServer(t, Options{MaxBatch: 4})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var status int
			var body []byte
			if tc.raw != "" {
				resp, err := ts.Client().Post(ts.URL+tc.path, "application/json",
					strings.NewReader(tc.raw))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				status = resp.StatusCode
				buf := new(bytes.Buffer)
				buf.ReadFrom(resp.Body)
				body = buf.Bytes()
			} else {
				status, body, _ = post(t, ts.Client(), ts.URL+tc.path, tc.req)
			}
			if status != tc.status {
				t.Fatalf("status %d, want %d: %s", status, tc.status, body)
			}
			e := errorBody(t, body)
			if e.Code != tc.code {
				t.Errorf("code %q, want %q (%s)", e.Code, tc.code, e.Message)
			}
			if tc.inErrMsg != "" && !strings.Contains(e.Message, tc.inErrMsg) {
				t.Errorf("message %q does not mention %q", e.Message, tc.inErrMsg)
			}
		})
	}
}

// TestMethodNotAllowed checks the simulation endpoints refuse GET.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/simulate", "/batch"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}

// TestClientDisconnectMidRequest proves a client hanging up mid-simulation
// neither kills the server nor wastes the work: the detached computation
// finishes and populates the cache, so the retry hits.
func TestClientDisconnectMidRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates one model point")
	}
	s, ts := newTestServer(t, Options{})
	req := Request{Workload: "dlrm", Suite: "edge", NPU: "small", Batch: 2}

	payload, _ := json.Marshal(req)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	hreq, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/simulate", bytes.NewReader(payload))
	hreq.Header.Set("Content-Type", "application/json")
	if resp, err := ts.Client().Do(hreq); err == nil {
		// The server may still have answered 504 before the client bailed.
		resp.Body.Close()
	}

	// The detached leader finishes regardless; poll until the result lands.
	// The ceiling is generous because this package shares the host with the
	// loadtest package under -race in CI — the pass case lands in well under
	// a second, so the slack never slows a healthy run.
	deadline := time.Now().Add(120 * time.Second)
	for s.cache.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnected request never populated the cache")
		}
		time.Sleep(10 * time.Millisecond)
	}

	status, body, cacheStatus := post(t, ts.Client(), ts.URL+"/simulate", req)
	if status != http.StatusOK {
		t.Fatalf("retry after disconnect: status %d: %s", status, body)
	}
	if cacheStatus != StatusHit {
		t.Errorf("retry was %q, want %q: the abandoned computation's result should be cached", cacheStatus, StatusHit)
	}

	// And the server is still healthy.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz after disconnect: %d", resp.StatusCode)
	}
}

// TestDrainingRefusesNewWork checks the graceful-shutdown handshake:
// draining flips /healthz to 503 and refuses new simulations with the
// shutting_down code.
func TestDrainingRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	s.StartDraining()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz while draining: %d, want 503", resp.StatusCode)
	}

	status, body, _ := post(t, ts.Client(), ts.URL+"/simulate",
		Request{Workload: "ncf", Suite: "edge", NPU: "small"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("simulate while draining: status %d: %s", status, body)
	}
	if e := errorBody(t, body); e.Code != CodeShuttingDown {
		t.Errorf("code %q, want %q", e.Code, CodeShuttingDown)
	}
}
