package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"igosim/internal/core"
	"igosim/internal/metrics"
	"igosim/internal/runner"
	"igosim/internal/stats"
)

// Server wires the simulation API onto an http.ServeMux. One Server owns
// one result cache and one admission limiter; cmd/igoserved runs exactly
// one per process so every client shares the compiled-program and
// layer-memo caches underneath.
type Server struct {
	opts    Options
	cache   *resultCache
	limiter *runner.Limiter
	mux     *http.ServeMux

	// draining is closed-over state for graceful shutdown: once set (via
	// StartDraining), new requests are refused with 503 while in-flight
	// ones finish.
	draining chan struct{}
}

// Options configure a Server. The zero value is usable: defaults fill in
// on New.
type Options struct {
	// CacheCap bounds the result cache's entry count (default 256;
	// negative disables result caching, keeping singleflight).
	CacheCap int
	// Timeout bounds each request's total latency, including queueing
	// behind the admission limiter (default 120s). Exceeding it yields 504
	// with code deadline_exceeded.
	Timeout time.Duration
	// MaxBatch bounds the request count of one /batch call (default 64).
	MaxBatch int
	// Parallel bounds concurrent simulations across all requests
	// (default: the runner's parallelism, i.e. -j).
	Parallel int
	// EnableReset exposes POST /reset (cache flush). Off by default:
	// flushing shared caches is an operator action, not a client one.
	EnableReset bool
}

func (o Options) withDefaults() Options {
	if o.CacheCap == 0 {
		o.CacheCap = 256
	}
	if o.CacheCap < 0 {
		o.CacheCap = 0
	}
	if o.Timeout <= 0 {
		o.Timeout = 120 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	return o
}

// maxBodyBytes bounds request bodies; a full custom config plus options is
// well under 1 KiB, so 1 MiB leaves room for large /batch payloads.
const maxBodyBytes = 1 << 20

// serveCounters is the result cache's process-wide stats entry. Wall
// domain: hit/miss splits depend on arrival order and concurrency.
var serveCounters = stats.NewCacheCounters("serve/result")

// Request-level counters (Wall: request arrival is host behaviour).
var (
	mRequests = metrics.NewCounter("serve_requests_total",
		"simulation requests received (including batch members)", metrics.Wall)
	mErrors = metrics.NewCounter("serve_errors_total",
		"requests answered with a structured error", metrics.Wall)
)

// New builds a Server.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		limiter:  runner.NewLimiter(opts.Parallel),
		mux:      http.NewServeMux(),
		draining: make(chan struct{}),
	}
	s.cache = newResultCache(opts.CacheCap, serveCounters, s.limiter)
	s.mux.HandleFunc("/simulate", s.handleSimulate)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.Handle("/metrics", metrics.Handler())
	if opts.EnableReset {
		s.mux.HandleFunc("/reset", s.handleReset)
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDraining flips the server into shutdown mode: /healthz starts
// failing (so load balancers stop routing here) and new simulation
// requests get 503; requests already in flight run to completion under
// http.Server.Shutdown's usual draining.
func (s *Server) StartDraining() {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// ResetCaches empties every cache the server can reach: its own result
// cache (and doorkeeper memory), plus the simulator's layer memo,
// schedule-tuning and compiled-program caches via core.ResetCaches.
func (s *Server) ResetCaches() {
	s.cache.Reset()
	core.ResetCaches()
}

// CacheStats returns the result cache's counter snapshot.
func (s *Server) CacheStats() stats.CacheSnapshot { return serveCounters.Snapshot() }

// writeError emits the structured error body with the given HTTP status.
func writeError(w http.ResponseWriter, status int, e *Error) {
	mErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(struct {
		Error *Error `json:"error"`
	}{e})
	w.Write(append(body, '\n'))
}

// statusFor maps error codes to HTTP statuses.
func statusFor(e *Error) int {
	switch e.Code {
	case CodeBadJSON, CodeBadRequest:
		return http.StatusBadRequest
	case CodeUnknownModel:
		return http.StatusNotFound
	case CodeInvalidConfig:
		return http.StatusUnprocessableEntity
	case CodeBatchTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeShuttingDown:
		return http.StatusServiceUnavailable
	case CodeMethodNotWanted:
		return http.StatusMethodNotAllowed
	}
	return http.StatusInternalServerError
}

// decode reads one JSON value from the request body, rejecting trailing
// garbage and oversized payloads.
func decode(w http.ResponseWriter, r *http.Request, v any) *Error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &Error{Code: CodeBadJSON, Message: err.Error()}
	}
	if dec.More() {
		return &Error{Code: CodeBadJSON, Message: "trailing data after JSON value"}
	}
	return nil
}

// preflight handles the checks shared by the simulation endpoints,
// reporting false after writing an error response.
func (s *Server) preflight(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed,
			&Error{Code: CodeMethodNotWanted, Message: "use POST"})
		return false
	}
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable,
			&Error{Code: CodeShuttingDown, Message: "server is draining"})
		return false
	}
	return true
}

// simulate resolves, fingerprints and evaluates one request through the
// result cache, returning the exact marshaled body.
func (s *Server) simulate(ctx context.Context, req Request) (body []byte, status string, e *Error) {
	mRequests.Inc()
	res, e := canonicalize(req)
	if e != nil {
		return nil, "", e
	}
	fp, err := res.fingerprint()
	if err != nil {
		return nil, "", &Error{Code: CodeBadRequest, Message: "unfingerprintable request: " + err.Error()}
	}
	return s.cache.Get(ctx, fp, func() ([]byte, *Error) {
		resp := Evaluate(res)
		resp.Fingerprint = fp
		b, err := json.Marshal(resp)
		if err != nil {
			return nil, &Error{Code: "internal", Message: err.Error()}
		}
		return append(b, '\n'), nil
	})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if !s.preflight(w, r) {
		return
	}
	var req Request
	if e := decode(w, r, &req); e != nil {
		writeError(w, statusFor(e), e)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	body, status, e := s.simulate(ctx, req)
	if e != nil {
		writeError(w, statusFor(e), e)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Igosim-Cache", status)
	w.Write(body)
}

// BatchResponse is the /batch response envelope: results in request
// order, each either a result or a structured error.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// BatchItem is one /batch member's outcome. Exactly one of Result and
// Error is set; Result is the raw /simulate body (already-marshaled JSON).
type BatchItem struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  *Error          `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.preflight(w, r) {
		return
	}
	var reqs []Request
	if e := decode(w, r, &reqs); e != nil {
		writeError(w, statusFor(e), e)
		return
	}
	if len(reqs) > s.opts.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, badRequest(CodeBatchTooLarge,
			"batch of %d exceeds the limit of %d", len(reqs), s.opts.MaxBatch))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()

	// Members fan out through the runner's worker pool — the same -j
	// semantics as the CLI grids — while the admission limiter keeps total
	// simulation concurrency bounded across every in-flight request.
	items := runner.Map(reqs, func(req Request) BatchItem {
		body, _, e := s.simulate(ctx, req)
		if e != nil {
			return BatchItem{Error: e}
		}
		return BatchItem{Result: json.RawMessage(body)}
	})
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(BatchResponse{Results: items})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed,
			&Error{Code: CodeMethodNotWanted, Message: "use POST"})
		return
	}
	s.ResetCaches()
	fmt.Fprintln(w, "reset")
}
