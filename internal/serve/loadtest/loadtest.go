// Package loadtest is the deterministic load-test harness behind
// make serve-check and BENCH_serve.json: it drives a live igosim server
// with a fixed-seed randomized request stream from closed-loop concurrent
// workers and reports both halves of the Cycle/Wall split explicitly.
//
// The Cycle half — request count, distinct fingerprints, error count, the
// digest over every response body, and the hit rate derived from counts —
// is a pure function of the seed and must be byte-identical across runs,
// worker counts and machines; the perf gate compares these leaves at zero
// tolerance. The Wall half — p50/p99 latency, throughput, elapsed time —
// measures the host and is gated only loosely ("wall" tolerance).
//
// The hit rate is deliberately derived, not measured: with singleflight
// collapsing concurrent identical requests and a cache capacity exceeding
// the stream's distinct-key count, the server computes each distinct
// fingerprint exactly once, so hits = requests − distinct_keys by
// construction. The raw hit/coalesced split in the server's counters
// varies with arrival timing (wall); the derived rate does not — and the
// loadtest test asserts the server-side miss count agrees exactly.
package loadtest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"igosim/internal/proptest"
	"igosim/internal/serve"
)

// Options configure one load-test run.
type Options struct {
	// URL is the base URL of a live server (e.g. http://127.0.0.1:8080).
	URL string
	// Client issues the requests (default http.DefaultClient).
	Client *http.Client
	// Requests is the stream length (default 200).
	Requests int
	// Workers is the closed-loop concurrency (default 8). Workers affect
	// only the Wall half of the result.
	Workers int
	// Seed drives the request generator (default 0x1905, the same stream
	// as the serve determinism test).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Seed == 0 {
		o.Seed = 0x1905
	}
	return o
}

// Result is one load-test run's summary — the schema of BENCH_serve.json.
// Cycle-domain leaves first (exact across runs), then wall leaves.
type Result struct {
	Name         string `json:"name"`
	Requests     int    `json:"requests"`
	DistinctKeys int    `json:"distinct_keys"`
	Errors       int    `json:"errors"`
	// BodyDigest is the SHA-256 over every response body in request order;
	// two runs agreeing here returned byte-identical bodies throughout.
	BodyDigest string `json:"body_digest"`
	// HitRate = (Requests − DistinctKeys) / Requests: the exact hit rate
	// of a compute-once server (see the package comment).
	HitRate float64 `json:"hit_rate"`
	// ResidencyHitRate is the resolved-trace (residency) cache's hit rate
	// over the run: result-cache misses that shared a residency key with a
	// prior request skipped hit/miss resolution and only replayed costs
	// (DESIGN.md §3l). The caller stamps it after the run; wall domain —
	// concurrent misses on one key can race the admission check.
	ResidencyHitRate float64 `json:"residency_hit_rate"`

	// Wall half: latency quantiles, throughput, elapsed time.
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
	RPS         float64 `json:"rps"`
	WallSeconds float64 `json:"wall_seconds"`
}

// GenRequest draws one request from the canonical load-test space: the
// same generator (and default seed) as the serve determinism test, so the
// two suites exercise one request population.
func GenRequest(src *proptest.Source) serve.Request {
	models := []string{"ncf", "dlrm", "mob"}
	policies := []string{"baseline", "interleave", "rearrange", "partition"}
	suites := []string{"edge", "server"}
	req := serve.Request{
		Workload: models[src.IntRange(0, len(models)-1)],
		Suite:    suites[src.IntRange(0, len(suites)-1)],
		Policy:   policies[src.IntRange(0, len(policies)-1)],
		NPU:      "small",
		Batch:    2 * src.IntRange(1, 2),
		Options: serve.RequestOptions{
			Baseline: src.IntRange(0, 1) == 1,
			Energy:   src.IntRange(0, 1) == 1,
		},
	}
	if src.IntRange(0, 7) == 0 {
		req.Options.Report = true
	}
	return req
}

// Stream generates the n-request stream for a seed, with each request's
// canonical fingerprint.
func Stream(seed uint64, n int) (reqs []serve.Request, fingerprints []string, err error) {
	src := proptest.NewSource(seed)
	reqs = make([]serve.Request, n)
	fingerprints = make([]string, n)
	for i := range reqs {
		reqs[i] = GenRequest(src)
		fingerprints[i], err = serve.Fingerprint(reqs[i])
		if err != nil {
			return nil, nil, fmt.Errorf("request %d: %w", i, err)
		}
	}
	return reqs, fingerprints, nil
}

// Run drives the server at opts.URL with the generated stream and
// summarizes the run. It returns an error only on transport-level
// failures; HTTP-level errors are counted in Result.Errors.
//
//lint:walldomain client-side latency and throughput are the measurement itself
func Run(opts Options) (Result, error) {
	opts = opts.withDefaults()
	reqs, fps, err := Stream(opts.Seed, opts.Requests)
	if err != nil {
		return Result{}, err
	}
	payloads := make([][]byte, len(reqs))
	for i, r := range reqs {
		if payloads[i], err = json.Marshal(r); err != nil {
			return Result{}, err
		}
	}

	bodies := make([][]byte, len(reqs))
	statuses := make([]int, len(reqs))
	micros := make([]int64, len(reqs))
	var transportErr atomic.Value

	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				t0 := time.Now()
				resp, err := opts.Client.Post(opts.URL+"/simulate", "application/json",
					bytes.NewReader(payloads[i]))
				if err != nil {
					transportErr.Store(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					transportErr.Store(err)
					return
				}
				micros[i] = time.Since(t0).Microseconds()
				statuses[i] = resp.StatusCode
				bodies[i] = body
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	if err, ok := transportErr.Load().(error); ok {
		return Result{}, err
	}

	res := Result{
		Name:        "serve-loadtest",
		Requests:    len(reqs),
		WallSeconds: wall,
	}
	distinct := make(map[string]bool, len(fps))
	for _, fp := range fps {
		distinct[fp] = true
	}
	res.DistinctKeys = len(distinct)
	res.HitRate = float64(res.Requests-res.DistinctKeys) / float64(res.Requests)

	h := sha256.New()
	for i, body := range bodies {
		if statuses[i] != http.StatusOK {
			res.Errors++
			continue
		}
		h.Write(body)
	}
	res.BodyDigest = hex.EncodeToString(h.Sum(nil))

	sort.Slice(micros, func(i, j int) bool { return micros[i] < micros[j] })
	res.P50Micros = float64(quantile(micros, 0.50))
	res.P99Micros = float64(quantile(micros, 0.99))
	if wall > 0 {
		res.RPS = float64(res.Requests) / wall
	}
	return res, nil
}

// quantile picks the q-th quantile of a sorted latency slice (nearest-rank).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
