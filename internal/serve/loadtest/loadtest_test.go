package loadtest

import (
	"net/http/httptest"
	"testing"

	"igosim/internal/core"
	"igosim/internal/serve"
)

// runOnce drives a fresh server (cold simulator caches) with the canonical
// stream and returns the run plus the server's own cache counters.
func runOnce(t *testing.T, workers, n int) (Result, *serve.Server) {
	t.Helper()
	core.ResetCaches()
	s := serve.New(serve.Options{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(core.ResetCaches)
	res, err := Run(Options{URL: ts.URL, Client: ts.Client(), Requests: n, Workers: workers})
	if err != nil {
		t.Fatalf("loadtest: %v", err)
	}
	return res, s
}

// TestLoadtestDeterministic is the gate behind BENCH_serve.json's exact
// leaves: the Cycle half of the result — request/distinct/error counts,
// body digest, derived hit rate — must be identical between a sequential
// and a heavily concurrent run against fresh servers.
func TestLoadtestDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a few dozen distinct simulations twice")
	}
	const n = 80
	seq, _ := runOnce(t, 1, n)
	conc, _ := runOnce(t, 8, n)

	if seq.Errors != 0 || conc.Errors != 0 {
		t.Fatalf("errors: %d sequential, %d concurrent, want 0", seq.Errors, conc.Errors)
	}
	if seq.BodyDigest != conc.BodyDigest {
		t.Errorf("body digest differs between 1 and 8 workers:\n%s\n%s", seq.BodyDigest, conc.BodyDigest)
	}
	if seq.DistinctKeys != conc.DistinctKeys || seq.Requests != conc.Requests {
		t.Errorf("stream shape differs: %d/%d vs %d/%d distinct/requests",
			seq.DistinctKeys, seq.Requests, conc.DistinctKeys, conc.Requests)
	}
	if seq.HitRate != conc.HitRate {
		t.Errorf("hit rate differs: %v vs %v", seq.HitRate, conc.HitRate)
	}
	if seq.DistinctKeys == 0 || seq.DistinctKeys == n {
		t.Errorf("degenerate stream: %d distinct keys of %d requests", seq.DistinctKeys, n)
	}
}

// TestDerivedHitRateMatchesCounters proves the "derived, not measured"
// claim: the server computes each distinct fingerprint exactly once, so
// its miss counter equals the stream's distinct-key count even under
// concurrency.
func TestDerivedHitRateMatchesCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a few dozen distinct simulations")
	}
	const n = 80
	res, s := runOnce(t, 8, n)
	snap := s.CacheStats()
	if snap.Misses != int64(res.DistinctKeys) {
		t.Errorf("server misses = %d, want %d (one compute per distinct fingerprint)",
			snap.Misses, res.DistinctKeys)
	}
	if snap.Lookups() != int64(res.Requests) {
		t.Errorf("server lookups = %d, want %d", snap.Lookups(), res.Requests)
	}
}

// TestStreamIsStable pins the canonical stream: same seed, same requests,
// same fingerprints — and distinct fingerprints only for distinct
// simulations.
func TestStreamIsStable(t *testing.T) {
	reqs1, fps1, err := Stream(0x1905, 50)
	if err != nil {
		t.Fatal(err)
	}
	reqs2, fps2, err := Stream(0x1905, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs1 {
		if reqs1[i] != reqs2[i] || fps1[i] != fps2[i] {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
	// A longer stream extends, never rewrites, a shorter one.
	_, fps3, err := Stream(0x1905, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fps1 {
		if fps3[i] != fps1[i] {
			t.Fatalf("request %d differs between stream lengths 50 and 60", i)
		}
	}
}
