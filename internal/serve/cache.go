package serve

import (
	"container/list"
	"context"

	"sync"

	"igosim/internal/runner"
	"igosim/internal/stats"
)

// resultCache is the process-wide response cache: a bounded LRU over
// marshaled response bodies keyed by request fingerprint, with
// singleflight deduplication of in-flight computations and a doorkeeper
// admission filter.
//
// Admission policy (scan resistance): while the LRU is below capacity,
// every computed result is admitted. Once full, a newly computed key is
// only admitted — evicting the LRU tail — if it has been *seen before*
// (recorded in a bounded doorkeeper set). A one-shot scan over thousands
// of distinct requests therefore cannot flush the working set: each scan
// key is computed, remembered, and discarded; only keys that recur earn a
// slot. This is the classic TinyLFU doorkeeper simplified to a set, which
// is enough for a result cache whose entries are expensive to compute but
// cheap to hold.
//
// Determinism: the cache stores exact marshaled bytes, and cached bytes
// are returned verbatim, so hit-vs-miss cannot change a response body.
// Whether a given lookup hits IS wall-domain (it depends on arrival order
// and capacity), which is why cache status travels in a response header
// and the counters live in the Wall metric domain.
type resultCache struct {
	mu       sync.Mutex
	cap      int
	lru      *list.List               // front = most recently used
	entries  map[string]*list.Element // fingerprint -> element
	seen     map[string]struct{}      // doorkeeper: keys computed but not admitted
	seenQ    []string                 // FIFO bound on the doorkeeper set
	inflight map[string]*call
	counters *stats.CacheCounters
	limiter  *runner.Limiter
}

// cacheEntry is one admitted result.
type cacheEntry struct {
	key  string
	body []byte
}

// call is one in-flight computation; waiters block on done.
type call struct {
	done chan struct{}
	body []byte
	err  *Error
}

// seenBoundFactor bounds the doorkeeper set to seenBoundFactor × capacity
// keys; beyond that the oldest recorded keys are forgotten FIFO.
const seenBoundFactor = 8

func newResultCache(capacity int, counters *stats.CacheCounters, limiter *runner.Limiter) *resultCache {
	c := &resultCache{
		cap:      capacity,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
		seen:     make(map[string]struct{}),
		inflight: make(map[string]*call),
		counters: counters,
		limiter:  limiter,
	}
	counters.SetSizer(c.Len)
	return c
}

// Len returns the number of admitted entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Reset drops every admitted entry and the doorkeeper's memory. In-flight
// computations are left to finish; their results are admitted per the
// usual policy into the now-empty cache.
func (c *resultCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[string]*list.Element)
	c.seen = make(map[string]struct{})
	c.seenQ = nil
}

// Status values for the X-Igosim-Cache response header.
const (
	StatusHit       = "hit"
	StatusMiss      = "miss"
	StatusCoalesced = "coalesced"
)

// Get returns the cached body for key, computing it at most once across
// concurrent callers. compute runs detached from ctx: a caller
// disconnecting mid-computation (context canceled) abandons its wait but
// the computation finishes and populates the cache, so the work is never
// wasted. The returned status is one of the Status* constants.
func (c *resultCache) Get(ctx context.Context, key string, compute func() ([]byte, *Error)) (body []byte, status string, err *Error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e)
		body = e.Value.(*cacheEntry).body
		c.mu.Unlock()
		c.counters.Hit()
		return body, StatusHit, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.counters.Coalesced()
		return c.wait(ctx, cl, StatusCoalesced)
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()
	c.counters.Miss()

	// The leader computes on a detached goroutine so that the computation —
	// and the cache admission that follows — survives the leader's client
	// hanging up. Waiters (and the leader itself) bail out on their own
	// contexts; the result still lands.
	go c.run(key, cl, compute)
	return c.wait(ctx, cl, StatusMiss)
}

// run executes one computation and publishes its result.
func (c *resultCache) run(key string, cl *call, compute func() ([]byte, *Error)) {
	// The limiter bounds concurrent *simulations* across requests;
	// detached from any client context, so admission never aborts.
	if err := c.limiter.Acquire(context.Background()); err == nil {
		cl.body, cl.err = compute()
		c.limiter.Release()
	} else {
		cl.err = &Error{Code: CodeShuttingDown, Message: err.Error()}
	}
	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil {
		c.admit(key, cl.body)
	}
	c.mu.Unlock()
	close(cl.done)
}

// wait blocks until the call completes or ctx is done.
func (c *resultCache) wait(ctx context.Context, cl *call, status string) ([]byte, string, *Error) {
	select {
	case <-cl.done:
		return cl.body, status, cl.err
	case <-ctx.Done():
		return nil, status, &Error{Code: CodeDeadline, Message: ctx.Err().Error()}
	}
}

// admit applies the doorkeeper policy; the caller holds c.mu.
func (c *resultCache) admit(key string, body []byte) {
	if _, ok := c.entries[key]; ok {
		return // a racing reset + recompute may have re-admitted it already
	}
	if c.cap <= 0 {
		return // caching disabled: singleflight only
	}
	if c.lru.Len() >= c.cap {
		if _, ok := c.seen[key]; !ok {
			// First sighting at full capacity: remember the key, keep the
			// working set. The key earns admission on its next computation.
			c.remember(key)
			return
		}
		delete(c.seen, key)
		tail := c.lru.Back()
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.lru.Remove(tail)
		c.counters.Eviction()
	}
	//lint:spanpair container/list insertion, not a trace span; removal happens on later evictions
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, body: body})
}

// remember records a rejected key in the bounded doorkeeper set.
func (c *resultCache) remember(key string) {
	if _, ok := c.seen[key]; ok {
		return
	}
	bound := c.cap * seenBoundFactor
	for len(c.seenQ) >= bound && len(c.seenQ) > 0 {
		delete(c.seen, c.seenQ[0])
		c.seenQ = c.seenQ[1:]
	}
	c.seen[key] = struct{}{}
	c.seenQ = append(c.seenQ, key)
}
