package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"igosim/internal/core"
	"igosim/internal/proptest"
	"igosim/internal/runner"
)

// genRequest draws one valid randomized request. The space is kept cheap
// (MLP-heavy models on the small NPU) but covers both model zoos, every
// policy, the optional baseline/energy sections and — single-core only —
// the trace report. It mirrors loadtest.GenRequest draw for draw (the loadtest
// package cannot be imported from here without a cycle); keep the two in
// sync so the race suite and the BENCH_serve gate exercise one request
// population.
func genRequest(src *proptest.Source) Request {
	models := []string{"ncf", "dlrm", "mob"}
	policies := []string{"baseline", "interleave", "rearrange", "partition"}
	suites := []string{"edge", "server"}
	req := Request{
		Workload: models[src.IntRange(0, len(models)-1)],
		Suite:    suites[src.IntRange(0, len(suites)-1)],
		Policy:   policies[src.IntRange(0, len(policies)-1)],
		NPU:      "small",
		Batch:    2 * src.IntRange(1, 2),
		Options: RequestOptions{
			Baseline: src.IntRange(0, 1) == 1,
			Energy:   src.IntRange(0, 1) == 1,
		},
	}
	if src.IntRange(0, 7) == 0 {
		req.Options.Report = true // small preset is single-core
	}
	return req
}

// post sends one JSON POST and returns status, body and cache header.
func post(t *testing.T, client *http.Client, url string, v any) (int, []byte, string) {
	t.Helper()
	payload, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("X-Igosim-Cache")
}

// newTestServer starts a fresh live server over a cold simulator.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	core.ResetCaches()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(core.ResetCaches)
	return s, ts
}

// TestResponseDeterminism is the service-level determinism gate: the same
// randomized request stream replayed sequentially (-j1) and with 8
// concurrent clients against a live server must produce byte-identical
// response bodies per request — regardless of cache state, arrival order
// or which worker computed what. Run under -race this also shakes out
// data races in the cache and singleflight paths.
func TestResponseDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a few dozen distinct layer points")
	}
	const n = 200
	src := proptest.NewSource(0x1905)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = genRequest(src)
	}

	run := func(parallel int) [][]byte {
		restore := runner.SetParallelism(parallel)
		defer runner.SetParallelism(restore)
		_, ts := newTestServer(t, Options{})
		bodies := make([][]byte, n)
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					status, body, _ := post(t, ts.Client(), ts.URL+"/simulate", reqs[i])
					if status != http.StatusOK {
						t.Errorf("request %d: status %d: %s", i, status, body)
					}
					bodies[i] = body
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
		return bodies
	}

	seq := run(1)
	conc := run(8)
	for i := range seq {
		if !bytes.Equal(seq[i], conc[i]) {
			t.Fatalf("request %d: body differs between -j1 and -j8 replay\nreq:  %+v\n-j1:  %s\n-j8:  %s",
				i, reqs[i], seq[i], conc[i])
		}
	}
}

// TestBatchMatchesSimulate proves /batch members carry the exact /simulate
// bodies, in request order.
func TestBatchMatchesSimulate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates several model points")
	}
	src := proptest.NewSource(7)
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = genRequest(src)
		reqs[i].Options.Report = false
	}
	_, ts := newTestServer(t, Options{})

	status, body, _ := post(t, ts.Client(), ts.URL+"/batch", reqs)
	if status != http.StatusOK {
		t.Fatalf("/batch: status %d: %s", status, body)
	}
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatalf("/batch body: %v", err)
	}
	if len(batch.Results) != len(reqs) {
		t.Fatalf("/batch returned %d results for %d requests", len(batch.Results), len(reqs))
	}
	for i, req := range reqs {
		status, single, _ := post(t, ts.Client(), ts.URL+"/simulate", req)
		if status != http.StatusOK {
			t.Fatalf("/simulate %d: status %d: %s", i, status, single)
		}
		if batch.Results[i].Error != nil {
			t.Fatalf("/batch member %d errored: %v", i, batch.Results[i].Error)
		}
		if !bytes.Equal(bytes.TrimSpace(batch.Results[i].Result), bytes.TrimSpace(single)) {
			t.Errorf("member %d: /batch body differs from /simulate:\nbatch:    %s\nsimulate: %s",
				i, batch.Results[i].Result, single)
		}
	}
}

// TestEquivalentSpellingsShareFingerprint proves canonicalization: default
// and explicit spellings of the same simulation share one fingerprint and
// therefore one cache entry.
func TestEquivalentSpellingsShareFingerprint(t *testing.T) {
	a, e := canonicalize(Request{Workload: "ncf", Suite: "edge", NPU: "small"})
	if e != nil {
		t.Fatal(e)
	}
	b, e := canonicalize(Request{Workload: "NCF-recommendation", Suite: "small", Policy: "+datapartitioning", NPU: "edge"})
	if e != nil {
		t.Fatal(e)
	}
	fa, _ := a.fingerprint()
	fb, _ := b.fingerprint()
	if fa != fb {
		t.Errorf("equivalent spellings canonicalized to distinct fingerprints:\n%s\n%s", fa, fb)
	}

	c, e := canonicalize(Request{Workload: "ncf", Suite: "edge", NPU: "small", Policy: "baseline"})
	if e != nil {
		t.Fatal(e)
	}
	fc, _ := c.fingerprint()
	if fc == fa {
		t.Error("different policies share a fingerprint")
	}
}
