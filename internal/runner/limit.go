package runner

import "context"

// Limiter bounds how many units of simulation work run concurrently. The
// worker pool (Map/MapErr) already bounds fan-out *within* one top-level
// call; a server handling many independent requests needs the same bound
// *across* calls, or N concurrent requests each fanning out -j wide would
// oversubscribe the host by N×. A Limiter is that cross-call admission
// gate: callers acquire one slot per simulation they are about to run.
type Limiter struct {
	sem chan struct{}
}

// NewLimiter creates a limiter admitting up to n concurrent holders; n <= 0
// uses the runner's current parallelism.
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		n = Parallelism()
	}
	return &Limiter{sem: make(chan struct{}, n)}
}

// Cap returns the limiter's slot count.
func (l *Limiter) Cap() int { return cap(l.sem) }

// Acquire blocks until a slot is free or ctx is done, reporting ctx.Err()
// in the latter case. Every successful Acquire must be paired with Release.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot taken by Acquire.
func (l *Limiter) Release() { <-l.sem }
