// Package runner is the bounded parallel execution engine behind the
// simulator's evaluation pipeline. Every simulation in this repository is a
// pure function of its inputs — an NPU configuration, a layer's tile
// parameters and a policy — so experiment grids (model x policy x config)
// are embarrassingly parallel. The runner provides:
//
//   - a process-wide parallelism setting (GOMAXPROCS by default, the CLIs'
//     -j flag and igo.Parallelism override it);
//   - Map / MapErr: indexed fan-out/fan-in over a bounded worker pool with
//     deterministic result ordering (results land at their input index, so
//     output is byte-identical regardless of worker count) and, for MapErr,
//     context cancellation on the first error;
//   - Shards: deterministic partitioning of a flattened work grid into
//     contiguous index ranges, the unit of checkpointing for resumable
//     sweeps (internal/dse);
//   - Cache (cache.go): a sharded, shape-keyed memoization cache for
//     per-layer simulation results.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"igosim/internal/metrics"
	"igosim/internal/trace"
)

// Pool metrics (wall domain: they describe host execution, not simulated
// cycles). The task counter is a single atomic add per task; the latency
// histogram additionally needs two clock reads, so it is collected only
// when tracing or metrics timing is on — the disabled path reads no clock.
var (
	mTasks = metrics.NewCounter("runner_tasks_total",
		"tasks executed by the worker pool", metrics.Wall)
	mPoolWidth = metrics.NewGauge("runner_pool_width",
		"worker-pool width as of the last SetParallelism", metrics.Wall)
	mTaskMicros = metrics.NewHistogram("runner_task_us",
		"per-task wall latency in microseconds (collected while tracing or metrics timing is enabled)", metrics.Wall)
)

// parallelism holds the worker-pool width; 0 means "use GOMAXPROCS".
var parallelism atomic.Int64

// Parallelism returns the current worker-pool width used by Map and MapErr.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism sets the worker-pool width and returns the previous
// setting. n <= 0 resets to the default (GOMAXPROCS). The setting is
// process-wide: simulations are pure, so the width affects only wall-clock
// time, never results.
func SetParallelism(n int) int {
	prev := Parallelism()
	if n <= 0 {
		n = 0
	}
	parallelism.Store(int64(n))
	mPoolWidth.Set(int64(Parallelism()))
	return prev
}

// Map applies fn to every item on up to Parallelism() workers and returns
// the results in input order. With a width of 1 (or a single item) it runs
// inline on the calling goroutine, making the sequential path the trivial
// special case of the parallel one.
func Map[T, R any](items []T, fn func(T) R) []R {
	out := make([]R, len(items))
	workers := min(Parallelism(), len(items))
	sink := trace.Active() // one atomic load per Map call; nil when tracing is off
	if workers <= 1 {
		for i := range items {
			out[i] = runTask(sink, 0, i, items[i], fn)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				out[i] = runTask(sink, w, i, items[i], fn)
			}
		}()
	}
	wg.Wait()
	return out
}

// runTask applies fn to one item, emitting a wall-clock task span on the
// sink and a latency observation into the metrics registry. With tracing
// off and metrics timing off it is a plain call plus one atomic counter
// add: no time reads.
//
//lint:walldomain task spans measure host execution; only trace/metrics outputs see them
func runTask[T, R any](sink *trace.Sink, worker, index int, item T, fn func(T) R) R {
	mTasks.Inc()
	if sink == nil && !metrics.TimingEnabled() {
		return fn(item)
	}
	begin := time.Now()
	r := fn(item)
	end := time.Now()
	if sink != nil {
		sink.Task(worker, index, begin, end)
	}
	mTaskMicros.Observe(end.Sub(begin).Microseconds())
	return r
}

// MapErr is Map with failure handling: fn receives a context that is
// cancelled as soon as any item fails, workers stop claiming new items once
// cancelled, and the lowest-indexed error observed is returned. On error
// the returned slice holds the results completed before cancellation.
func MapErr[T, R any](ctx context.Context, items []T, fn func(context.Context, T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	workers := min(Parallelism(), len(items))
	sink := trace.Active()
	if workers <= 1 {
		for i := range items {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			r, err := runTaskErr(sink, 0, i, ctx, items[i], fn)
			if err != nil {
				return out, err
			}
			out[i] = r
		}
		return out, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = len(items)
		next     atomic.Int64
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || ctx.Err() != nil {
					return
				}
				r, err := runTaskErr(sink, w, i, ctx, items[i], fn)
				if err != nil {
					mu.Lock()
					if i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
					cancel()
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return out, firstErr
	}
	return out, parent.Err()
}

// runTaskErr is runTask for the error-propagating fan-out. Failed tasks
// still get a span: the trace shows where wall-clock time went either way.
//
//lint:walldomain task spans measure host execution; only trace/metrics outputs see them
func runTaskErr[T, R any](sink *trace.Sink, worker, index int, ctx context.Context, item T, fn func(context.Context, T) (R, error)) (R, error) {
	mTasks.Inc()
	if sink == nil && !metrics.TimingEnabled() {
		return fn(ctx, item)
	}
	begin := time.Now()
	r, err := fn(ctx, item)
	end := time.Now()
	if sink != nil {
		sink.Task(worker, index, begin, end)
	}
	mTaskMicros.Observe(end.Sub(begin).Microseconds())
	return r, err
}

// Shard is one contiguous half-open index range [Lo, Hi) of a flattened
// work grid. Sharding is pure arithmetic on (total, size): the same inputs
// always produce the same shard boundaries, which is what lets a resumed
// sweep line its checkpoint files up with a fresh run's shards.
type Shard struct {
	Index  int
	Lo, Hi int
}

// Len returns the number of grid points in the shard.
func (s Shard) Len() int { return s.Hi - s.Lo }

// Shards partitions [0, total) into consecutive ranges of at most size
// points (the last shard takes the remainder). size <= 0 yields a single
// shard covering everything; total <= 0 yields none.
func Shards(total, size int) []Shard {
	if total <= 0 {
		return nil
	}
	if size <= 0 || size > total {
		size = total
	}
	n := (total + size - 1) / size
	out := make([]Shard, 0, n)
	for lo := 0; lo < total; lo += size {
		out = append(out, Shard{Index: len(out), Lo: lo, Hi: min(lo+size, total)})
	}
	return out
}
