package runner

import (
	"context"
	"testing"
	"time"
)

func TestLimiterBoundsConcurrency(t *testing.T) {
	l := NewLimiter(2)
	if l.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", l.Cap())
	}
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	// Third acquire must block until a release, and must respect its
	// context while waiting.
	short, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if err := l.Acquire(short); err == nil {
		t.Fatal("third Acquire succeeded with both slots held")
	} else if err != context.DeadlineExceeded {
		t.Fatalf("blocked Acquire returned %v, want DeadlineExceeded", err)
	}

	l.Release()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	l.Release()
	l.Release()
}

func TestLimiterDefaultsToParallelism(t *testing.T) {
	prev := SetParallelism(3)
	defer SetParallelism(prev)
	if got := NewLimiter(0).Cap(); got != 3 {
		t.Errorf("NewLimiter(0).Cap() = %d, want 3", got)
	}
	if got := NewLimiter(5).Cap(); got != 5 {
		t.Errorf("NewLimiter(5).Cap() = %d, want 5", got)
	}
}
