package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// withParallelism runs the body at the given pool width, restoring the
// previous width afterwards.
func withParallelism(t *testing.T, n int, body func()) {
	t.Helper()
	prev := SetParallelism(n)
	defer SetParallelism(prev)
	body()
}

func TestSetParallelism(t *testing.T) {
	prev := SetParallelism(3)
	defer SetParallelism(prev)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	if got := SetParallelism(7); got != 3 {
		t.Fatalf("SetParallelism returned %d, want previous 3", got)
	}
	// n <= 0 restores the GOMAXPROCS default.
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("default Parallelism() = %d, want >= 1", got)
	}
}

func TestMapOrderIndependentOfWidth(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	want := Map(items, func(v int) int { return v * v }) // current width
	for _, width := range []int{1, 2, 4, 16, 128} {
		withParallelism(t, width, func() {
			got := Map(items, func(v int) int { return v * v })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("width %d: got[%d] = %d, want %d", width, i, got[i], want[i])
				}
			}
		})
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(nil, func(v int) int { return v }); len(got) != 0 {
		t.Fatalf("Map(nil) = %v", got)
	}
	if got := Map([]int{42}, func(v int) int { return v + 1 }); got[0] != 43 {
		t.Fatalf("Map single = %v", got)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const width = 4
	withParallelism(t, width, func() {
		var cur, peak atomic.Int64
		Map(make([]int, 64), func(int) int {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			defer cur.Add(-1)
			return 0
		})
		if p := peak.Load(); p > width {
			t.Fatalf("observed %d concurrent workers, want <= %d", p, width)
		}
	})
}

func TestMapErrLowestIndexWins(t *testing.T) {
	items := make([]int, 64)
	for _, width := range []int{1, 8} {
		withParallelism(t, width, func() {
			_, err := MapErr(context.Background(), items, func(_ context.Context, _ int) (int, error) {
				return 0, errors.New("boom")
			})
			if err == nil || err.Error() != "boom" {
				t.Fatalf("width %d: err = %v", width, err)
			}
		})
	}

	// With several failing items, the lowest-indexed error is reported:
	// indices are claimed in order, so the earliest failing index is
	// always among those observed before cancellation settles, and the
	// lowest observed one wins.
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i
	}
	withParallelism(t, 8, func() {
		_, err := MapErr(context.Background(), idx, func(_ context.Context, v int) (int, error) {
			if v >= 10 {
				return 0, fmt.Errorf("item %d failed", v)
			}
			return v, nil
		})
		if err == nil || err.Error() != "item 10 failed" {
			t.Fatalf("err = %v, want item 10 failed", err)
		}
	})
}

func TestMapErrSuccess(t *testing.T) {
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	withParallelism(t, 4, func() {
		got, err := MapErr(context.Background(), items, func(_ context.Context, v int) (int, error) {
			return v * 10, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range items {
			if got[i] != v*10 {
				t.Fatalf("got[%d] = %d", i, got[i])
			}
		}
	})
}

func TestMapErrCancelledParent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, width := range []int{1, 4} {
		withParallelism(t, width, func() {
			var calls atomic.Int64
			_, err := MapErr(ctx, make([]int, 32), func(_ context.Context, _ int) (int, error) {
				calls.Add(1)
				return 0, nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("width %d: err = %v, want context.Canceled", width, err)
			}
		})
	}
}

func TestMapErrStopsClaimingAfterFailure(t *testing.T) {
	// After the first item fails, cancelled workers stop claiming; far
	// fewer than all items run. Can't assert an exact count (in-flight
	// items finish), but with width 2 and item 0 failing, the tail of a
	// long slice must be untouched.
	withParallelism(t, 2, func() {
		var calls atomic.Int64
		_, err := MapErr(context.Background(), make([]int, 10_000), func(_ context.Context, _ int) (int, error) {
			calls.Add(1)
			return 0, errors.New("first item fails")
		})
		if err == nil {
			t.Fatal("want error")
		}
		if n := calls.Load(); n > 100 {
			t.Fatalf("%d items ran after early failure, want early stop", n)
		}
	})
}

func TestShards(t *testing.T) {
	for _, tc := range []struct {
		total, size int
		want        []Shard
	}{
		{0, 10, nil},
		{-3, 10, nil},
		{5, 0, []Shard{{0, 0, 5}}},
		{5, 10, []Shard{{0, 0, 5}}},
		{10, 5, []Shard{{0, 0, 5}, {1, 5, 10}}},
		{11, 5, []Shard{{0, 0, 5}, {1, 5, 10}, {2, 10, 11}}},
		{1, 1, []Shard{{0, 0, 1}}},
	} {
		got := Shards(tc.total, tc.size)
		if len(got) != len(tc.want) {
			t.Fatalf("Shards(%d, %d) = %v, want %v", tc.total, tc.size, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Shards(%d, %d)[%d] = %v, want %v", tc.total, tc.size, i, got[i], tc.want[i])
			}
		}
	}
	// Shards cover [0, total) exactly once, in order, whatever the size.
	for _, size := range []int{1, 3, 7, 100} {
		next := 0
		for _, s := range Shards(100, size) {
			if s.Lo != next || s.Hi <= s.Lo || s.Len() != s.Hi-s.Lo {
				t.Fatalf("size %d: bad shard %v at offset %d", size, s, next)
			}
			next = s.Hi
		}
		if next != 100 {
			t.Fatalf("size %d: shards cover %d of 100", size, next)
		}
	}
}
