package runner

import (
	"sync"

	"igosim/internal/stats"
)

// Bounded is a capacity-bounded LRU cache with a doorkeeper admission
// policy, for values too large to memoize unboundedly (resolved residency
// traces run to megabytes on big programs). It trades the sharding of
// Cache for strict LRU ordering under a single mutex: the values it holds
// are expensive enough to produce that the lock is never the bottleneck.
//
// Admission: while the cache is below capacity every key is admitted
// immediately (a cold sweep must not pay a double-resolve tax). Once full,
// a new key is admitted — evicting the LRU entry — only on its second
// miss: the unbounded `seen` set remembers every key ever requested, so
// one-shot keys cannot thrash the working set (the doorkeeper idea from
// the serving layer's admission cache, TinyLFU-style).
//
// The `seen` set doubles as the cache's deterministic census: the set of
// distinct keys ever requested does not depend on worker interleaving,
// even though the hit/miss split and the surviving resident set do. The
// stats sizer reports len(seen) for exactly that reason — manifests and
// benchmark gates need a -j-independent entry count.
type Bounded[K comparable, V any] struct {
	mu       sync.Mutex
	cap      int
	m        map[K]*boundedEntry[K, V]
	seen     map[K]struct{}
	head     *boundedEntry[K, V] // most recently used
	tail     *boundedEntry[K, V] // least recently used
	counters *stats.CacheCounters
}

type boundedEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *boundedEntry[K, V]
}

// NewBounded creates a bounded cache registered in the stats cache report
// under name, holding at most capacity entries. Capacity 0 disables the
// cache: Get always misses and Put is a no-op (only the seen-census still
// records keys).
func NewBounded[K comparable, V any](name string, capacity int) *Bounded[K, V] {
	b := &Bounded[K, V]{
		cap:      capacity,
		m:        make(map[K]*boundedEntry[K, V]),
		seen:     make(map[K]struct{}),
		counters: stats.NewCacheCounters(name),
	}
	b.counters.SetSizer(b.Distinct)
	return b
}

// SetCap changes the capacity. Shrinking evicts LRU entries down to the
// new bound; capacity 0 drops everything and disables the cache.
func (b *Bounded[K, V]) SetCap(capacity int) {
	b.mu.Lock()
	b.cap = capacity
	for len(b.m) > b.cap {
		b.evictLocked()
	}
	b.mu.Unlock()
}

// Cap returns the current capacity.
func (b *Bounded[K, V]) Cap() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cap
}

// Get returns the cached value for k, counting the lookup and recording k
// in the seen-census. A hit moves the entry to the front of the LRU list.
func (b *Bounded[K, V]) Get(k K) (V, bool) {
	b.mu.Lock()
	b.seen[k] = struct{}{}
	e, ok := b.m[k]
	if ok {
		b.moveFrontLocked(e)
		b.mu.Unlock()
		b.counters.Hit()
		return e.val, true
	}
	b.mu.Unlock()
	b.counters.Miss()
	var zero V
	return zero, false
}

// Put offers v for caching under k. Below capacity it is admitted
// immediately; at capacity the doorkeeper admits only keys already in the
// seen-census (i.e. requested at least once before), evicting the LRU
// entry to make room. Returns whether the value was admitted.
func (b *Bounded[K, V]) Put(k K, v V) bool {
	b.mu.Lock()
	if b.cap <= 0 {
		b.mu.Unlock()
		return false
	}
	if e, ok := b.m[k]; ok {
		e.val = v
		b.moveFrontLocked(e)
		b.mu.Unlock()
		return true
	}
	if len(b.m) >= b.cap {
		if _, ok := b.seen[k]; !ok {
			b.mu.Unlock()
			return false
		}
		b.evictLocked()
	}
	b.seen[k] = struct{}{}
	e := &boundedEntry[K, V]{key: k, val: v}
	b.m[k] = e
	b.pushFrontLocked(e)
	b.mu.Unlock()
	return true
}

func (b *Bounded[K, V]) evictLocked() {
	e := b.tail
	if e == nil {
		return
	}
	b.unlinkLocked(e)
	delete(b.m, e.key)
	b.counters.Eviction()
}

func (b *Bounded[K, V]) pushFrontLocked(e *boundedEntry[K, V]) {
	e.prev = nil
	e.next = b.head
	if b.head != nil {
		b.head.prev = e
	}
	b.head = e
	if b.tail == nil {
		b.tail = e
	}
}

func (b *Bounded[K, V]) unlinkLocked(e *boundedEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		b.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (b *Bounded[K, V]) moveFrontLocked(e *boundedEntry[K, V]) {
	if b.head == e {
		return
	}
	b.unlinkLocked(e)
	b.pushFrontLocked(e)
}

// Len returns the number of resident entries.
func (b *Bounded[K, V]) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

// Distinct returns the number of distinct keys ever requested (via Get or
// admitted Put) since the last Reset. Unlike Len or the hit/miss split,
// this count is independent of worker interleaving for a fixed workload.
func (b *Bounded[K, V]) Distinct() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.seen)
}

// Reset drops every entry, clears the seen-census, and zeroes counters.
func (b *Bounded[K, V]) Reset() {
	b.mu.Lock()
	b.m = make(map[K]*boundedEntry[K, V])
	b.seen = make(map[K]struct{})
	b.head, b.tail = nil, nil
	b.mu.Unlock()
	b.counters.Reset()
}

// Stats returns the cache's current hit/miss snapshot.
func (b *Bounded[K, V]) Stats() stats.CacheSnapshot { return b.counters.Snapshot() }
