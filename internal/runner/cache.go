package runner

import (
	"hash/maphash"
	"sync"

	"igosim/internal/stats"
)

// cacheShards is the shard count of Cache. Sharding keeps lock contention
// negligible when every worker of the pool consults the cache at once; 64
// comfortably covers the pool widths the runner produces.
const cacheShards = 64

// Cache is a sharded, concurrency-safe memoization cache. It is built for
// pure functions: GetOrCompute may invoke the compute function more than
// once for the same key under a miss race, which is harmless (both calls
// produce the identical value) and keeps the fast path free of per-key
// locking. Hit/miss counts are published through the stats cache report.
type Cache[K comparable, V any] struct {
	seed     maphash.Seed
	counters *stats.CacheCounters
	shards   [cacheShards]cacheShard[K, V]
}

type cacheShard[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
}

// NewCache creates a cache registered in the stats cache report under name.
//
//lint:walldomain the per-process hash seed only shards keys; cached values are key-determined
func NewCache[K comparable, V any](name string) *Cache[K, V] {
	c := &Cache[K, V]{
		seed:     maphash.MakeSeed(),
		counters: stats.NewCacheCounters(name),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[K]V)
	}
	// The entry count is the deterministic half of the cache's statistics
	// (distinct keys ever requested); manifests derive their
	// parallelism-independent hit rate from it.
	c.counters.SetSizer(c.Len)
	return c
}

func (c *Cache[K, V]) shard(k K) *cacheShard[K, V] {
	return &c.shards[maphash.Comparable(c.seed, k)%cacheShards]
}

// Get returns the cached value for k, counting the lookup.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	s := c.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		c.counters.Hit()
	} else {
		c.counters.Miss()
	}
	return v, ok
}

// Put stores v under k.
func (c *Cache[K, V]) Put(k K, v V) {
	s := c.shard(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// GetOrCompute returns the cached value for k, computing and storing it on
// a miss. compute runs outside the shard lock; concurrent misses on the
// same key may compute twice and last-write-wins, which is deterministic
// for pure compute functions.
func (c *Cache[K, V]) GetOrCompute(k K, compute func() V) V {
	if v, ok := c.Get(k); ok {
		return v
	}
	v := compute()
	c.Put(k, v)
	return v
}

// PutIfAbsent stores v under k only if no value is resident, and returns
// the resident value either way. Losers of a miss race therefore adopt the
// winner's value instead of overwriting it — the property downstream
// identity caches need when the cached value's *pointer* is itself a cache
// key (one canonical value per logical key, regardless of -j).
func (c *Cache[K, V]) PutIfAbsent(k K, v V) V {
	s := c.shard(k)
	s.mu.Lock()
	if cur, ok := s.m[k]; ok {
		s.mu.Unlock()
		return cur
	}
	s.m[k] = v
	s.mu.Unlock()
	return v
}

// GetOrComputeShared is GetOrCompute with canonical results: under a miss
// race both workers compute, but PutIfAbsent makes them converge on a
// single resident value, so callers that key further caches by the
// returned value (e.g. by a *schedule.Program pointer) see exactly one
// representative per logical key at any parallelism.
func (c *Cache[K, V]) GetOrComputeShared(k K, compute func() V) V {
	if v, ok := c.Get(k); ok {
		return v
	}
	return c.PutIfAbsent(k, compute())
}

// Range calls f for every cached key in unspecified order (diagnostics
// and determinism tests only; holds each shard's read lock during f).
func (c *Cache[K, V]) Range(f func(K)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k := range s.m {
			f(k)
		}
		s.mu.RUnlock()
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Reset drops every entry and zeroes the hit/miss counters (used by tests
// and benchmarks that need a cold cache).
func (c *Cache[K, V]) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[K]V)
		s.mu.Unlock()
	}
	c.counters.Reset()
}

// Stats returns the cache's current hit/miss snapshot.
func (c *Cache[K, V]) Stats() stats.CacheSnapshot { return c.counters.Snapshot() }
