package runner

import (
	"sync"
	"testing"
)

type testKey struct {
	A int
	B string
}

func TestCacheBasics(t *testing.T) {
	c := NewCache[testKey, int]("test/basics")
	k := testKey{A: 1, B: "x"}

	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(k, 42)
	if v, ok := c.Get(k); !ok || v != 42 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d", got)
	}

	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %g", s.HitRate())
	}

	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset left entries behind")
	}
	if s := c.Stats(); s.Lookups() != 0 {
		t.Fatalf("Reset left counters: %+v", s)
	}
}

func TestCacheGetOrCompute(t *testing.T) {
	c := NewCache[int, string]("test/compute")
	calls := 0
	for i := 0; i < 3; i++ {
		got := c.GetOrCompute(7, func() string {
			calls++
			return "seven"
		})
		if got != "seven" {
			t.Fatalf("got %q", got)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines across a key
// space wide enough to touch every shard; run with -race.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache[int, int]("test/concurrent")
	const goroutines = 16
	const keys = 512
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				v := c.GetOrCompute(k, func() int { return k * 3 })
				if v != k*3 {
					t.Errorf("key %d: got %d", k, v)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Len(); got != keys {
		t.Fatalf("Len = %d, want %d", got, keys)
	}
	// Every one of goroutines*keys lookups is accounted for.
	if s := c.Stats(); s.Lookups() != goroutines*keys {
		t.Fatalf("lookups = %d, want %d", s.Lookups(), goroutines*keys)
	}
}

func TestCacheSpreadsAcrossShards(t *testing.T) {
	c := NewCache[int, int]("test/shards")
	for k := 0; k < 4096; k++ {
		c.Put(k, k)
	}
	used := 0
	for i := range c.shards {
		if len(c.shards[i].m) > 0 {
			used++
		}
	}
	// With 4096 uniformly hashed keys the odds of an idle shard are nil;
	// an imbalance here means the shard function is broken.
	if used < cacheShards/2 {
		t.Fatalf("only %d/%d shards used", used, cacheShards)
	}
}
