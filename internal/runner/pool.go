package runner

import "sync"

// Pool is a typed free-list over sync.Pool, used to recycle large reusable
// simulation state — most importantly sim's compiled engines, whose dense
// residency arrays would otherwise be reallocated for every layer a worker
// simulates. Pooling is invisible in results: pooled values are fully
// reinitialized by their owner before reuse, so it only removes steady-state
// allocations from the Map workers' hot loop.
type Pool[T any] struct {
	p sync.Pool
}

// NewPool creates a pool that mints fresh values with newf.
func NewPool[T any](newf func() T) *Pool[T] {
	pl := &Pool[T]{}
	pl.p.New = func() any { return newf() }
	return pl
}

// Get takes a value from the pool, minting one if empty.
func (p *Pool[T]) Get() T { return p.p.Get().(T) }

// Put returns a value to the pool for reuse.
func (p *Pool[T]) Put(v T) { p.p.Put(v) }
