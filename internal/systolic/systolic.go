// Package systolic models the compute timing of a systolic PE array,
// following the analytical style of SCALE-Sim (the simulator the paper
// builds on): a tiled GEMM is executed as a sequence of array passes, each
// charged its pipeline fill, stream and drain cycles.
package systolic

import "igosim/internal/config"

// Array is the timing model for one systolic core.
type Array struct {
	Rows, Cols int
	Dataflow   config.Dataflow
}

// New builds the timing model for the given configuration.
func New(c config.NPU) Array {
	return Array{Rows: c.ArrayRows, Cols: c.ArrayCols, Dataflow: c.Dataflow}
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// TileCycles returns the cycles needed to compute one tm x tk x tn tile
// GEMM on the array.
//
// Output-stationary mapping: the tm x tn output tile is folded onto the
// Rows x Cols array in ceil(tm/Rows)*ceil(tn/Cols) passes; each pass streams
// tk partial products through the array and pays Rows+Cols-2 cycles of
// skew/drain.
//
// Weight-stationary mapping: a tk x tn weight tile is preloaded (tk cycles,
// folded), then tm activation rows stream through with the same skew.
func (a Array) TileCycles(tm, tk, tn int) int64 {
	if tm <= 0 || tk <= 0 || tn <= 0 {
		return 0
	}
	// Consecutive folds stream back-to-back through the array, so the
	// pipeline skew (Rows+Cols-2) is paid once per tile op, not per fold.
	switch a.Dataflow {
	case config.WeightStationary:
		folds := int64(ceilDiv(tk, a.Rows)) * int64(ceilDiv(tn, a.Cols))
		return folds*(int64(min(tk, a.Rows))+int64(tm)) + int64(a.Rows+a.Cols-2)
	default: // OutputStationary
		folds := int64(ceilDiv(tm, a.Rows)) * int64(ceilDiv(tn, a.Cols))
		return folds*int64(tk) + int64(a.Rows+a.Cols-2)
	}
}

// GEMMCycles returns the compute-only cycles of a full M x K x N GEMM tiled
// with tiles tm x tk x tn (no memory stalls). Used for roofline estimates.
func (a Array) GEMMCycles(m, k, n, tm, tk, tn int) int64 {
	if m <= 0 || k <= 0 || n <= 0 {
		return 0
	}
	tiles := int64(ceilDiv(m, tm)) * int64(ceilDiv(k, tk)) * int64(ceilDiv(n, tn))
	return tiles * a.TileCycles(min(tm, m), min(tk, k), min(tn, n))
}

// Utilization returns the fraction of peak MACs a tm x tn output tile
// achieves on the array: small tiles leave PE rows/columns idle, which is
// why the paper notes that splitting M below the array width "does not
// improve performance at all".
func (a Array) Utilization(tm, tn int) float64 {
	if tm <= 0 || tn <= 0 {
		return 0
	}
	er := min(tm, a.Rows)
	ec := min(tn, a.Cols)
	return float64(er*ec) / float64(a.Rows*a.Cols)
}
