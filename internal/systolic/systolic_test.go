package systolic

import (
	"testing"
	"testing/quick"

	"igosim/internal/config"
)

func osArray() Array {
	return Array{Rows: 128, Cols: 128, Dataflow: config.OutputStationary}
}

func TestTileCyclesOutputStationary(t *testing.T) {
	a := osArray()
	// One fold: tk stream + skew paid once.
	if got := a.TileCycles(128, 100, 128); got != 100+254 {
		t.Fatalf("single fold cycles = %d, want %d", got, 100+254)
	}
	// Four folds pipeline back to back.
	if got := a.TileCycles(256, 100, 256); got != 4*100+254 {
		t.Fatalf("four-fold cycles = %d, want %d", got, 4*100+254)
	}
}

func TestTileCyclesWeightStationary(t *testing.T) {
	a := Array{Rows: 64, Cols: 64, Dataflow: config.WeightStationary}
	// One fold: weight load (min(tk,rows)) + tm stream + skew.
	if got := a.TileCycles(32, 64, 64); got != int64(64+32+126) {
		t.Fatalf("WS cycles = %d", got)
	}
}

func TestTileCyclesZeroWork(t *testing.T) {
	a := osArray()
	for _, dims := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if got := a.TileCycles(dims[0], dims[1], dims[2]); got != 0 {
			t.Errorf("TileCycles(%v) = %d, want 0", dims, got)
		}
	}
}

func TestTileCyclesMonotone(t *testing.T) {
	a := osArray()
	f := func(tm, tk, tn uint8) bool {
		m, k, n := int(tm)+1, int(tk)+1, int(tn)+1
		base := a.TileCycles(m, k, n)
		return a.TileCycles(m+128, k, n) >= base &&
			a.TileCycles(m, k+7, n) >= base &&
			a.TileCycles(m, k, n+128) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGEMMCyclesConsistency(t *testing.T) {
	a := osArray()
	// 256x512x256 GEMM in 128^3-ish tiles: 2*4*2 = 16 tiles.
	got := a.GEMMCycles(256, 512, 256, 128, 128, 128)
	want := int64(16) * a.TileCycles(128, 128, 128)
	if got != want {
		t.Fatalf("GEMMCycles = %d, want %d", got, want)
	}
	if a.GEMMCycles(0, 1, 1, 1, 1, 1) != 0 {
		t.Fatal("zero-dim GEMM should cost nothing")
	}
}

func TestUtilization(t *testing.T) {
	a := osArray()
	if u := a.Utilization(128, 128); u != 1 {
		t.Fatalf("full tile utilization = %g", u)
	}
	if u := a.Utilization(64, 128); u != 0.5 {
		t.Fatalf("half-rows utilization = %g", u)
	}
	// The Section 5 observation: a batch smaller than the array wastes PEs.
	if u := a.Utilization(8, 128); u != 8.0/128 {
		t.Fatalf("skinny tile utilization = %g", u)
	}
	if u := a.Utilization(0, 10); u != 0 {
		t.Fatalf("empty tile utilization = %g", u)
	}
	// Oversized tiles fold: utilization capped at 1.
	if u := a.Utilization(1024, 1024); u != 1 {
		t.Fatalf("folded utilization = %g", u)
	}
}

func TestNewFromConfig(t *testing.T) {
	a := New(config.SmallNPU())
	if a.Rows != 45 || a.Cols != 45 {
		t.Fatalf("array dims %dx%d", a.Rows, a.Cols)
	}
}

func TestPipelinedFoldsCheaperThanSeparateOps(t *testing.T) {
	// A single op with four folds must not cost more than four separate
	// single-fold ops (the skew is amortised).
	a := osArray()
	fused := a.TileCycles(256, 64, 256)
	separate := 4 * a.TileCycles(128, 64, 128)
	if fused > separate {
		t.Fatalf("folds not pipelined: fused %d > separate %d", fused, separate)
	}
}
