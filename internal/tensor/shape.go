// Package tensor provides the shape algebra and a small dense-matrix
// reference implementation used throughout the simulator.
//
// The simulator itself only consumes GEMM dimensions (it models time and
// traffic, not values), but the Matrix type lets tests execute transformed
// tile schedules numerically and verify that interleaving, reordering and
// partitioning leave the computed gradients bit-identical to the sequential
// baseline — the paper's "no extra computation, same results" claim.
package tensor

import "fmt"

// Dims describes one GEMM in the canonical forward-pass orientation used by
// the paper: X(M,K) x W(K,N) -> Y(M,N).
//
// The two backward-pass GEMMs of the same layer are then
//
//	dX(M,K) = dY(M,N) x W^T(N,K)
//	dW(K,N) = X^T(K,M) x dY(M,N)
//
// so a single Dims value fully determines the shapes of all five tensors
// (X, W, Y=dY, dX, dW) that the backward pass touches.
type Dims struct {
	M, K, N int
}

// Valid reports whether all three dimensions are positive.
func (d Dims) Valid() bool { return d.M > 0 && d.K > 0 && d.N > 0 }

// FLOPs returns the multiply-accumulate count of the forward GEMM.
func (d Dims) FLOPs() int64 { return 2 * int64(d.M) * int64(d.K) * int64(d.N) }

// Max returns the largest of the three dimensions.
func (d Dims) Max() int { return max(d.M, max(d.K, d.N)) }

// Min returns the smallest of the three dimensions.
func (d Dims) Min() int { return min(d.M, min(d.K, d.N)) }

// AlmostSquare reports whether the computation is "nearly square" in the
// paper's sense (Section 4.3): the largest of M, K, N is less than ratio
// times the smallest. The paper uses ratio = 4.
func (d Dims) AlmostSquare(ratio float64) bool {
	return float64(d.Max()) < ratio*float64(d.Min())
}

// SizeX returns the element count of the input feature map X.
func (d Dims) SizeX() int64 { return int64(d.M) * int64(d.K) }

// SizeW returns the element count of the weight tensor W.
func (d Dims) SizeW() int64 { return int64(d.K) * int64(d.N) }

// SizeY returns the element count of the output feature map Y (and of dY).
func (d Dims) SizeY() int64 { return int64(d.M) * int64(d.N) }

func (d Dims) String() string {
	return fmt.Sprintf("M=%d K=%d N=%d", d.M, d.K, d.N)
}

// Conv2D describes a convolution layer before im2col lowering.
type Conv2D struct {
	Batch    int // N in NCHW
	InC      int // input channels
	InH, InW int // input spatial dims
	OutC     int // filter count
	KH, KW   int // kernel spatial dims
	Stride   int
	Pad      int
}

// OutH returns the output height of the convolution.
func (c Conv2D) OutH() int { return (c.InH+2*c.Pad-c.KH)/c.Stride + 1 }

// OutW returns the output width of the convolution.
func (c Conv2D) OutW() int { return (c.InW+2*c.Pad-c.KW)/c.Stride + 1 }

// Im2Col lowers the convolution to the GEMM the simulator operates on,
// following the paper's assumption that "all convolution layer computations
// are transformed into GEMM operations by applying im2col":
//
//	M = Batch * OutH * OutW   (one row per output pixel)
//	K = InC * KH * KW         (one column per receptive-field element)
//	N = OutC                  (one output column per filter)
func (c Conv2D) Im2Col() Dims {
	return Dims{
		M: c.Batch * c.OutH() * c.OutW(),
		K: c.InC * c.KH * c.KW,
		N: c.OutC,
	}
}

// FC describes a fully connected layer: Batch x In -> Batch x Out.
type FC struct {
	Batch, In, Out int
}

// Dims lowers the fully connected layer to its GEMM dimensions.
func (f FC) Dims() Dims { return Dims{M: f.Batch, K: f.In, N: f.Out} }
