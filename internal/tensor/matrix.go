package tensor

import (
	"fmt"
	"math"
)

// Matrix is a small row-major dense matrix of float64 used for functional
// validation of schedules. It is deliberately minimal: the simulator never
// computes values, so this type exists only so tests (and the correctness
// checker in internal/core) can run a tile schedule numerically.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Add accumulates v into element (r, c).
func (m *Matrix) Add(r, c int, v float64) { m.Data[r*m.Cols+c] += v }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul computes a x b with a reference triple loop.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns the transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, m.At(r, c))
		}
	}
	return out
}

// TileMulAdd accumulates the product of the [ar:ar+tm, ac:ac+tk] block of a
// and the [br:br+tk, bc:bc+tn] block of b into the [or_:or_+tm, oc:oc+tn]
// block of out. Blocks are clipped to matrix bounds, mirroring how edge
// tiles behave in the simulator. transA selects a^T indexing for the left
// operand (used by the dW = X^T x dY computation, which reads X through a
// transposed access pattern rather than materialising X^T).
func TileMulAdd(out, a, b *Matrix, or_, oc, ar, ac, br, bc, tm, tk, tn int, transA bool) {
	for i := 0; i < tm; i++ {
		if or_+i >= out.Rows {
			break
		}
		for j := 0; j < tn; j++ {
			if oc+j >= out.Cols {
				break
			}
			sum := 0.0
			for k := 0; k < tk; k++ {
				var av float64
				if transA {
					// a is stored untransposed; read a[ac+k][ar+i].
					if ac+k >= a.Rows || ar+i >= a.Cols {
						continue
					}
					av = a.At(ac+k, ar+i)
				} else {
					if ar+i >= a.Rows || ac+k >= a.Cols {
						continue
					}
					av = a.At(ar+i, ac+k)
				}
				if br+k >= b.Rows || bc+j >= b.Cols {
					continue
				}
				sum += av * b.At(br+k, bc+j)
			}
			out.Add(or_+i, oc+j, sum)
		}
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// equally shaped matrices.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var worst float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// FillPattern writes a deterministic, position-dependent pattern so that
// misplaced tile indexing in a schedule is guaranteed to change results.
func (m *Matrix) FillPattern(seed float64) {
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			m.Set(r, c, seed+math.Sin(float64(r*31+c*17))*0.5+float64(r%7)-float64(c%5))
		}
	}
}
