package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMatMulSmall(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almostEq(c.Data[i], w) {
			t.Fatalf("matmul[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestTranspose(t *testing.T) {
	m := NewMatrix(2, 3)
	m.FillPattern(0.3)
	mt := m.Transpose()
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if m.At(r, c) != mt.At(c, r) {
				t.Fatalf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
	if diff := MaxAbsDiff(m, mt.Transpose()); diff != 0 {
		t.Fatalf("double transpose changed matrix by %g", diff)
	}
}

func TestTransposeProduct(t *testing.T) {
	// Property: (A x B)^T == B^T x A^T.
	f := func(seedA, seedB uint8) bool {
		a := NewMatrix(5, 7)
		b := NewMatrix(7, 3)
		a.FillPattern(float64(seedA) / 16)
		b.FillPattern(float64(seedB) / 16)
		left := MatMul(a, b).Transpose()
		right := MatMul(b.Transpose(), a.Transpose())
		return MaxAbsDiff(left, right) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTileMulAddMatchesMatMul(t *testing.T) {
	a := NewMatrix(6, 5)
	b := NewMatrix(5, 4)
	a.FillPattern(1.5)
	b.FillPattern(-0.5)
	want := MatMul(a, b)

	got := NewMatrix(6, 4)
	// Cover with 2x3x2 tiles including clipped edges.
	for or_ := 0; or_ < 6; or_ += 2 {
		for oc := 0; oc < 4; oc += 2 {
			for kk := 0; kk < 5; kk += 3 {
				TileMulAdd(got, a, b, or_, oc, or_, kk, kk, oc, 2, 3, 2, false)
			}
		}
	}
	if diff := MaxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("tiled product deviates by %g", diff)
	}
}

func TestTileMulAddTransA(t *testing.T) {
	a := NewMatrix(5, 6) // used as a^T: effective 6x5
	b := NewMatrix(5, 4)
	a.FillPattern(0.25)
	b.FillPattern(2.0)
	want := MatMul(a.Transpose(), b)

	got := NewMatrix(6, 4)
	TileMulAdd(got, a, b, 0, 0, 0, 0, 0, 0, 6, 5, 4, true)
	if diff := MaxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("transA tiled product deviates by %g", diff)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatrix(3, 3)
	m.FillPattern(1)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("clone shares storage with original")
	}
}

func TestZero(t *testing.T) {
	m := NewMatrix(3, 3)
	m.FillPattern(1)
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left nonzero elements")
		}
	}
}

func TestFillPatternPositionDependent(t *testing.T) {
	m := NewMatrix(8, 8)
	m.FillPattern(0)
	seen := make(map[float64]int)
	for _, v := range m.Data {
		seen[v]++
	}
	if len(seen) < 16 {
		t.Fatalf("pattern too uniform: only %d distinct values", len(seen))
	}
}

func TestNewMatrixInvalidPanics(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMatrix(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewMatrix(dims[0], dims[1])
		}()
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 2)
	b.Set(1, 1, -3.5)
	if got := MaxAbsDiff(a, b); got != 3.5 {
		t.Fatalf("MaxAbsDiff = %g, want 3.5", got)
	}
}
