package tensor

import (
	"testing"
	"testing/quick"
)

func TestDimsValid(t *testing.T) {
	cases := []struct {
		d    Dims
		want bool
	}{
		{Dims{1, 1, 1}, true},
		{Dims{128, 256, 512}, true},
		{Dims{0, 1, 1}, false},
		{Dims{1, 0, 1}, false},
		{Dims{1, 1, 0}, false},
		{Dims{-1, 1, 1}, false},
	}
	for _, c := range cases {
		if got := c.d.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestDimsFLOPs(t *testing.T) {
	d := Dims{M: 3, K: 5, N: 7}
	if got := d.FLOPs(); got != 2*3*5*7 {
		t.Fatalf("FLOPs = %d, want %d", got, 2*3*5*7)
	}
}

func TestDimsMinMax(t *testing.T) {
	d := Dims{M: 12, K: 5, N: 99}
	if d.Max() != 99 || d.Min() != 5 {
		t.Fatalf("Max/Min = %d/%d, want 99/5", d.Max(), d.Min())
	}
}

func TestAlmostSquare(t *testing.T) {
	cases := []struct {
		d     Dims
		ratio float64
		want  bool
	}{
		{Dims{100, 100, 100}, 4, true},
		{Dims{100, 399, 100}, 4, true},
		{Dims{100, 400, 100}, 4, false}, // boundary: strict less-than
		{Dims{1, 1, 4}, 4, false},
		{Dims{8, 1024, 1024}, 4, false},
	}
	for _, c := range cases {
		if got := c.d.AlmostSquare(c.ratio); got != c.want {
			t.Errorf("AlmostSquare(%v, %g) = %v, want %v", c.d, c.ratio, got, c.want)
		}
	}
}

func TestTensorSizes(t *testing.T) {
	d := Dims{M: 4, K: 6, N: 8}
	if d.SizeX() != 24 || d.SizeW() != 48 || d.SizeY() != 32 {
		t.Fatalf("sizes = %d/%d/%d, want 24/48/32", d.SizeX(), d.SizeW(), d.SizeY())
	}
}

func TestConv2DOutputDims(t *testing.T) {
	// ResNet conv1: 224x224x3, 7x7/2 pad 3 -> 112x112.
	c := Conv2D{Batch: 1, InC: 3, InH: 224, InW: 224, OutC: 64, KH: 7, KW: 7, Stride: 2, Pad: 3}
	if c.OutH() != 112 || c.OutW() != 112 {
		t.Fatalf("out dims = %dx%d, want 112x112", c.OutH(), c.OutW())
	}
	d := c.Im2Col()
	want := Dims{M: 112 * 112, K: 3 * 49, N: 64}
	if d != want {
		t.Fatalf("im2col = %v, want %v", d, want)
	}
}

func TestConv2DSamePadding(t *testing.T) {
	c := Conv2D{Batch: 2, InC: 16, InH: 56, InW: 56, OutC: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if c.OutH() != 56 || c.OutW() != 56 {
		t.Fatalf("same-padding conv changed spatial dims: %dx%d", c.OutH(), c.OutW())
	}
	d := c.Im2Col()
	if d.M != 2*56*56 || d.K != 16*9 || d.N != 32 {
		t.Fatalf("im2col = %v", d)
	}
}

func TestFCDims(t *testing.T) {
	d := FC{Batch: 4, In: 1024, Out: 1000}.Dims()
	if (d != Dims{M: 4, K: 1024, N: 1000}) {
		t.Fatalf("FC dims = %v", d)
	}
}

func TestIm2ColBatchLinearity(t *testing.T) {
	// Property: M scales linearly with batch, K and N do not depend on it.
	f := func(b uint8) bool {
		batch := int(b%8) + 1
		c := Conv2D{Batch: batch, InC: 8, InH: 16, InW: 16, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
		d := c.Im2Col()
		one := Conv2D{Batch: 1, InC: 8, InH: 16, InW: 16, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}.Im2Col()
		return d.M == batch*one.M && d.K == one.K && d.N == one.N
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlmostSquareScaleInvariance(t *testing.T) {
	// Property: scaling all dims by the same factor preserves the verdict.
	f := func(m, k, n uint8, s uint8) bool {
		d := Dims{M: int(m) + 1, K: int(k) + 1, N: int(n) + 1}
		scale := int(s%4) + 1
		ds := Dims{M: d.M * scale, K: d.K * scale, N: d.N * scale}
		return d.AlmostSquare(4) == ds.AlmostSquare(4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
