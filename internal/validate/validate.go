// Package validate implements the model-zoo validation pass behind
// cmd/validate: for every layer of every workload it executes the baseline,
// interleaved, rearranged and partitioned schedules numerically and checks
// the resulting dX/dW against reference matrix products, optionally holding
// every residency simulation to bit-exact agreement with the
// internal/refmodel oracle. It lives outside the command so tests can drive
// the full pass in-process — including the failure paths a CLI can only
// signal with its exit status.
package validate

import (
	"context"
	"fmt"
	"io"
	"strings"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/metrics"
	"igosim/internal/refmodel"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/spm"
	"igosim/internal/tensor"
	"igosim/internal/trace"
	"igosim/internal/workload"
)

// Options configures one validation pass.
type Options struct {
	// Suite selects the model zoo ("edge" or "server").
	Suite string
	// Model restricts the pass to a single model; empty runs the whole zoo.
	Model string
	// Verbose emits per-layer progress lines.
	Verbose bool
	// RefCheck replays every residency simulation through the
	// internal/refmodel oracle and demands bit-exact counter agreement.
	RefCheck bool
	// Trace, when non-nil, receives cycle-level events from the residency
	// simulations.
	Trace *trace.Sink
	// Out receives the report; nil discards it.
	Out io.Writer
	// Corrupt, when set, mutates each simulated result before the oracle
	// comparison. It exists purely for tests: injecting a single-counter
	// corruption proves the differential check actually fails (and names
	// the divergent metric) rather than vacuously passing.
	Corrupt func(*sim.Result)
}

// shrink caps a dimension so the O(M*K*N) numeric execution stays fast
// while preserving the layer's aspect ratio and tile-edge behaviour.
func shrink(v, cap int) int {
	if v <= cap {
		return v
	}
	// Keep a non-multiple-of-tile remainder to exercise edge tiles.
	return cap + v%7
}

// modelReport is one worker's buffered outcome, printed in zoo order.
type modelReport struct {
	layers, checks int
	refChecks      int
	lines          []string
	// Residency behaviour of the simulated schedules: eviction and
	// spill counts surface scratchpad pressure next to the numeric
	// verdicts (a schedule can be correct yet thrash the SPM).
	spmStats spm.Stats
	spills   int64
}

// Run executes the validation pass and returns the first failure in zoo
// order, or an aggregate summary (for the run manifest) with the report
// written to opts.Out. Every summary field is a pure function of the zoo
// and the options — identical at every -j.
func Run(opts Options) (metrics.ValidateSummary, error) {
	var sum metrics.ValidateSummary
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	models, err := workload.AllModels(opts.Suite)
	if err != nil {
		return sum, err
	}
	if opts.Model != "" {
		m, err := workload.FindModel(opts.Suite, opts.Model)
		if err != nil {
			return sum, err
		}
		models = []workload.Model{m}
	}

	// Models fan out through the runner; each worker buffers its own
	// progress lines so the output is printed in zoo order afterwards,
	// identical at every -j. The first failing model (in zoo order) wins.
	cfg := config.SmallNPU()
	reports, err := runner.MapErr(context.Background(), models, func(_ context.Context, m workload.Model) (modelReport, error) {
		return validateModel(cfg, opts, m)
	})
	if err != nil {
		return sum, err
	}

	for i, m := range models {
		rep := reports[i]
		if len(rep.lines) > 0 {
			fmt.Fprintln(out, strings.Join(rep.lines, "\n"))
		}
		fmt.Fprintf(out, "%-10s validated   residency: %d hits, %d misses, %d evictions, %d spills\n",
			m.Abbr, rep.spmStats.Hits, rep.spmStats.Misses, rep.spmStats.Evictions, rep.spills)
		sum.Layers += rep.layers
		sum.Checks += rep.checks
		sum.RefChecks += rep.refChecks
		sum.SPMHits += rep.spmStats.Hits
		sum.SPMMisses += rep.spmStats.Misses
		sum.Evictions += rep.spmStats.Evictions
		sum.Spills += rep.spills
	}
	fmt.Fprintf(out, "\nOK: %d layers, %d schedule executions, gradients bit-match the reference\n", sum.Layers, sum.Checks)
	if opts.RefCheck {
		fmt.Fprintf(out, "OK: %d simulations bit-match the refmodel oracle\n", sum.RefChecks)
	}
	return sum, nil
}

func validateModel(cfg config.NPU, opts Options, m workload.Model) (modelReport, error) {
	var rep modelReport
	for i, l := range m.Layers(2) {
		if l.SkipDX {
			continue
		}
		d := tensor.Dims{M: shrink(l.Dims.M, 64), K: shrink(l.Dims.K, 64), N: shrink(l.Dims.N, 64)}
		tl := schedule.Tiling{
			Tm: min(cfg.ArrayRows/4, d.M),
			Tk: min(16, d.K),
			Tn: min(cfg.ArrayCols/4, d.N),
		}
		p := schedule.TileParams{Dims: d, Tiling: tl, ElemBytes: 4, Layer: 1}

		// Whole-layer schedules: structural check + numeric equivalence.
		for _, s := range []schedule.Schedule{
			schedule.BaselineBackward(p),
			core.InterleaveOnly(p),
			core.InterleaveDXMajor(p),
			core.InterleaveDWMajor(p),
		} {
			if err := schedule.VerifyBackward(p, s.Ops, false); err != nil {
				return rep, fmt.Errorf("%s layer %d (%s) %s: structure: %w", m.Abbr, i, l.Name, s.Name, err)
			}
			if err := core.CheckEquivalence(d, tl, s.Ops, 1e-6); err != nil {
				return rep, fmt.Errorf("%s layer %d (%s) %s: %w", m.Abbr, i, l.Name, s.Name, err)
			}
			res := sim.RunSchedules(cfg, sim.Options{
				Trace:      opts.Trace,
				TraceLabel: m.Abbr + "/" + l.Name + " " + s.Name,
			}, s)
			if opts.Corrupt != nil {
				opts.Corrupt(&res)
			}
			if opts.RefCheck {
				want := refmodel.ReplaySchedules(cfg, refmodel.Options{}, s)
				if err := refmodel.Compare(res, want); err != nil {
					return rep, fmt.Errorf("%s layer %d (%s) %s: refcheck: %w", m.Abbr, i, l.Name, s.Name, err)
				}
				rep.refChecks++
			}
			rep.spmStats.Merge(res.SPM)
			rep.spills += res.Spills
			rep.checks++
		}

		// Partitioned schedules: structural check per partition (each
		// partition is its own sub-GEMM), numeric equivalence on the
		// concatenated stream (the cross-partition reduction happens in
		// the executor's accumulation).
		for _, scheme := range core.Schemes() {
			plan := core.PartitionLayer(p, scheme, 2)
			var ops []schedule.Op
			for _, sub := range plan.Parts {
				s := core.InterleaveDXMajor(sub)
				if err := schedule.VerifyBackward(sub, s.Ops, false); err != nil {
					return rep, fmt.Errorf("%s layer %d (%s) %v: structure: %w", m.Abbr, i, l.Name, scheme, err)
				}
				ops = append(ops, s.Ops...)
			}
			if err := core.CheckEquivalence(d, tl, ops, 1e-6); err != nil {
				return rep, fmt.Errorf("%s layer %d (%s) %v: %w", m.Abbr, i, l.Name, scheme, err)
			}
			rep.checks++
		}
		rep.layers++
		if opts.Verbose {
			rep.lines = append(rep.lines, fmt.Sprintf("  %s %-24s %-18v ok", m.Abbr, l.Name, d))
		}
	}
	return rep, nil
}
