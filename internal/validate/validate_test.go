package validate

import (
	"strings"
	"testing"

	"igosim/internal/dram"
	"igosim/internal/sim"
)

// smallOpts keeps the pass to one model so the failure-path tests stay
// quick; res18 is the smallest member of the edge zoo.
func smallOpts() Options {
	return Options{Suite: "edge", Model: "res18", RefCheck: true}
}

func TestRunRefCheckPasses(t *testing.T) {
	var out strings.Builder
	opts := smallOpts()
	opts.Out = &out
	sum, err := Run(opts)
	if err != nil {
		t.Fatalf("refcheck pass failed: %v", err)
	}
	if !strings.Contains(out.String(), "bit-match the refmodel oracle") {
		t.Fatalf("summary does not report the oracle check:\n%s", out.String())
	}
	if sum.Layers == 0 || sum.Checks == 0 || sum.RefChecks == 0 {
		t.Fatalf("summary counters empty: %+v", sum)
	}
}

// TestRunDetectsCorruptedMetric is the regression test for the validation
// command's exit discipline: when any simulated metric diverges from the
// oracle, Run must return an error (which main turns into a non-zero exit)
// and the error must say which metric diverged and where. One corruption
// per Result field proves no counter is outside the differential net.
func TestRunDetectsCorruptedMetric(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*sim.Result)
		want    string // substring the error must contain
	}{
		{"cycles", func(r *sim.Result) { r.Cycles++ }, "Cycles"},
		{"compute-cycles", func(r *sim.Result) { r.ComputeCycles-- }, "ComputeCycles"},
		{"mem-cycles", func(r *sim.Result) { r.MemCycles += 7 }, "MemCycles"},
		{"ops", func(r *sim.Result) { r.Ops++ }, "Ops"},
		{"hits", func(r *sim.Result) { r.SPM.Hits++ }, "Hits"},
		{"misses", func(r *sim.Result) { r.SPM.Misses-- }, "Misses"},
		{"evictions", func(r *sim.Result) { r.SPM.Evictions++ }, "Evictions"},
		{"spills", func(r *sim.Result) { r.Spills++ }, "Spills"},
		{"dy-read-traffic", func(r *sim.Result) { r.Traffic.AddRead(dram.ClassDY, 64) }, "Traffic.Read[dY]"},
		{"dw-write-traffic", func(r *sim.Result) { r.Traffic.AddWrite(dram.ClassDW, 64) }, "Traffic.Write[dW]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := smallOpts()
			opts.Corrupt = tc.corrupt
			_, err := Run(opts)
			if err == nil {
				t.Fatalf("corrupting %s went undetected", tc.name)
			}
			if !strings.Contains(err.Error(), "refcheck") {
				t.Fatalf("error does not name the refcheck stage: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error does not name the corrupted metric %q: %v", tc.want, err)
			}
		})
	}
}

// TestRunWithoutRefCheckStillValidates pins the default mode: structural
// and numeric validation run and the summary omits the oracle line.
func TestRunWithoutRefCheckStillValidates(t *testing.T) {
	var out strings.Builder
	opts := smallOpts()
	opts.RefCheck = false
	opts.Out = &out
	sum, err := Run(opts)
	if err != nil {
		t.Fatalf("plain pass failed: %v", err)
	}
	if sum.RefChecks != 0 {
		t.Fatalf("ref checks counted without -refcheck: %+v", sum)
	}
	s := out.String()
	if !strings.Contains(s, "gradients bit-match the reference") {
		t.Fatalf("summary missing:\n%s", s)
	}
	if strings.Contains(s, "refmodel oracle") {
		t.Fatalf("oracle line printed without -refcheck:\n%s", s)
	}
}

func TestRunUnknownModelFails(t *testing.T) {
	opts := smallOpts()
	opts.Model = "no-such-model"
	if _, err := Run(opts); err == nil {
		t.Fatal("unknown model accepted")
	}
}
