// Package loader type-checks Go packages from source using only the
// standard library, standing in for golang.org/x/tools/go/packages (which
// the repo cannot vendor). Import paths resolve through an ordered list of
// Roots — typically an analysistest testdata tree, then the module root,
// then GOROOT/src — and the whole transitive closure is checked from
// source, so the loader works offline with no build cache or export data.
//
// Packages that resolve through a Root (the module under analysis and any
// fixture tree) are checked with full function bodies and a populated
// types.Info, exactly once per loader, whether they are named directly or
// pulled in as dependencies; the resulting Program is the shared
// whole-program view the interprocedural analyzers (detflow) consume, and
// the memoization is what keeps one igolint run from re-type-checking a
// package per analyzer or per dependent. Packages that fall through to
// GOROOT (the standard library) are checked with bodies ignored — their
// exported API is all any analyzer needs.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Root maps an import-path prefix to a directory. A Root with an empty
// Prefix serves any path whose directory exists under Dir (the analysistest
// `testdata/src` convention).
type Root struct {
	Prefix string // import-path prefix, e.g. "igosim"; "" matches any path
	Dir    string // directory holding <import path minus prefix>
}

// Package is one fully type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader resolves and type-checks packages, caching shared dependencies.
type Loader struct {
	Fset  *token.FileSet
	roots []Root
	ctxt  build.Context
	sizes types.Sizes

	deps    map[string]*types.Package // API-only stdlib packages, bodies ignored
	full    map[string]*Package       // in-root packages, full bodies + Info
	loading map[string]bool           // import cycle detection
}

// New creates a loader resolving through roots (in order) and then
// GOROOT/src. Cgo is disabled so every package resolves to its pure-Go
// fallback files.
func New(roots ...Root) *Loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:    token.NewFileSet(),
		roots:   roots,
		ctxt:    ctxt,
		sizes:   types.SizesFor("gc", build.Default.GOARCH),
		deps:    make(map[string]*types.Package),
		full:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// dirFor resolves an import path to a directory, or "" when unresolvable.
// inRoot reports whether the path resolved through one of the loader's
// Roots (and so belongs to the analyzed program) rather than GOROOT.
func (l *Loader) dirFor(path string) (dir string, inRoot bool) {
	for _, r := range l.roots {
		var dir string
		switch {
		case r.Prefix == "":
			dir = filepath.Join(r.Dir, filepath.FromSlash(path))
		case path == r.Prefix:
			dir = r.Dir
		case strings.HasPrefix(path, r.Prefix+"/"):
			dir = filepath.Join(r.Dir, filepath.FromSlash(strings.TrimPrefix(path, r.Prefix+"/")))
		default:
			continue
		}
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	dir = filepath.Join(l.goroot(), "src", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, false
	}
	// The standard library vendors its golang.org/x dependencies (net/http
	// pulls crypto/tls pulls golang.org/x/crypto/...) under src/vendor.
	dir = filepath.Join(l.goroot(), "src", "vendor", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, false
	}
	return "", false
}

func (l *Loader) goroot() string {
	if l.ctxt.GOROOT != "" {
		return l.ctxt.GOROOT
	}
	return build.Default.GOROOT
}

// Load type-checks the package at the given import path with full function
// bodies and a populated types.Info, memoized per loader: a package named
// on the command line and the same package reached as another's dependency
// are checked once and share one *Package. Test files are excluded:
// igolint's invariants govern shipping code.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.full[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, _ := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("loader: cannot resolve %q under any root", path)
	}
	files, err := l.parseDir(path, dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := l.config(false)
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: pkg, Info: info}
	l.full[path] = p
	return p, nil
}

// Program is the whole-program view over every in-root package a loader
// has fully type-checked: the input to interprocedural analyses (the
// detflow call graph) and the shared artifact that keeps analyzers from
// re-loading. Snapshot it with Loader.Program after all Load calls.
type Program struct {
	pkgs  map[string]*Package
	order []string // sorted paths, for deterministic iteration
}

// Program returns the current whole-program snapshot: every in-root
// package fully loaded so far (directly or as a dependency), in sorted
// path order.
func (l *Loader) Program() *Program {
	p := &Program{pkgs: make(map[string]*Package, len(l.full))}
	for path, pkg := range l.full {
		p.pkgs[path] = pkg
		p.order = append(p.order, path)
	}
	sort.Strings(p.order)
	return p
}

// Package returns the fully loaded package at path, or nil when the path
// is outside the program (standard library, unanalyzed).
func (p *Program) Package(path string) *Package {
	if p == nil {
		return nil
	}
	return p.pkgs[path]
}

// Packages returns every program package in sorted path order.
func (p *Program) Packages() []*Package {
	if p == nil {
		return nil
	}
	out := make([]*Package, 0, len(p.order))
	for _, path := range p.order {
		out = append(out, p.pkgs[path])
	}
	return out
}

func (l *Loader) config(ignoreBodies bool) types.Config {
	return types.Config{
		Importer:         importerFunc(l.importDep),
		Sizes:            l.sizes,
		IgnoreFuncBodies: ignoreBodies,
		// Dependencies only need their APIs; soft errors inside function
		// bodies of analyzed packages still fail the load, which is what a
		// lint driver wants.
	}
}

// importDep satisfies types.Importer for transitive dependencies. In-root
// dependencies (module and fixture packages) are fully loaded through Load
// — bodies, Info and all — so the whole-program analyses see them and the
// work is shared with any later direct Load of the same path. Standard
// library dependencies are checked once with bodies ignored.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.full[path]; ok {
		return pkg.Types, nil
	}
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	dir, inRoot := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("loader: cannot resolve import %q", path)
	}
	if inRoot {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(path, dir)
	if err != nil {
		return nil, err
	}
	conf := l.config(true)
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("loader: dependency %s: %w", path, err)
	}
	l.deps[path] = pkg
	return pkg, nil
}

// parseDir parses the package's non-test Go files (honouring build
// constraints for the host platform, cgo off). Files parse concurrently —
// token.FileSet is documented safe for concurrent use — and land at their
// name-sorted index, so the file order the type checker sees is
// deterministic regardless of scheduling.
func (l *Loader) parseDir(path, dir string) ([]*ast.File, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", path, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func() {
			defer wg.Done()
			files[i], errs[i] = parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("loader: %s: %w", path, err)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: %s: no buildable Go files in %s", path, dir)
	}
	return files, nil
}

// importerFunc adapts a function to types.Importer (as go/importer does).
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Compile-time check that the adapter matches the stdlib interface shape.
var _ types.Importer = importerFunc(nil)

// ModuleRoot walks up from dir to the nearest directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loader: no go.mod above %s", dir)
		}
		dir = parent
	}
}
