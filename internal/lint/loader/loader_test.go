package loader

import "testing"

// TestLoadModulePackage checks the loader against a real module package
// whose transitive closure spans generics, sync/atomic and fmt — the same
// shape every igolint analyzer run exercises.
func TestLoadModulePackage(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := New(Root{Prefix: "igosim", Dir: root})
	pkg, err := l.Load("igosim/internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "stats" {
		t.Fatalf("package name = %q, want stats", pkg.Types.Name())
	}
	if obj := pkg.Types.Scope().Lookup("SortedKeys"); obj == nil {
		t.Fatal("SortedKeys not found in igosim/internal/stats")
	}
	if obj := pkg.Types.Scope().Lookup("NewCacheCounters"); obj == nil {
		t.Fatal("NewCacheCounters not found in igosim/internal/stats")
	}
	// Full loads must carry body-level type info: find at least one
	// identifier use resolved to a stdlib object.
	var sawStdlibUse bool
	for _, obj := range pkg.Info.Uses {
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sort" {
			sawStdlibUse = true
			break
		}
	}
	if !sawStdlibUse {
		t.Error("types.Info.Uses has no resolved sort.* reference; body info missing")
	}
}

// TestLoadCachesDependencies checks that two loads share dependency
// packages instead of re-checking the stdlib closure.
func TestLoadCachesDependencies(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := New(Root{Prefix: "igosim", Dir: root})
	if _, err := l.Load("igosim/internal/knn"); err != nil {
		t.Fatal(err)
	}
	before := len(l.deps)
	if _, err := l.Load("igosim/internal/tensor"); err != nil {
		t.Fatal(err)
	}
	if len(l.deps) < before {
		t.Fatalf("dependency cache shrank: %d -> %d", before, len(l.deps))
	}
	if before == 0 {
		t.Fatal("no dependencies cached after loading a package that imports fmt")
	}
}

// TestUnresolvableImport checks the error path for unknown import paths.
func TestUnresolvableImport(t *testing.T) {
	l := New()
	if _, err := l.Load("igosim/internal/does-not-exist"); err == nil {
		t.Fatal("expected error for unresolvable package")
	}
}
