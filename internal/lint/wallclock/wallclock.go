// Package wallclock forbids wall-clock reads (time.Now, time.Since,
// time.Sleep) and math/rand in the simulator's cycle-accounting packages.
// Simulated time advances only by integer cycle arithmetic; a wall-clock
// read or RNG draw in internal/sim, internal/core, internal/spm,
// internal/schedule, internal/dram, internal/energy, internal/refmodel,
// internal/proptest or internal/dse would make results vary run to run and
// break the byte-identical golden figures (proptest's deterministic
// splitmix64 source exists precisely so the property suite never needs
// math/rand). Findings here are unsuppressable.
//
// This analyzer is the fast, syntactic first line: it flags direct call
// sites inside the cycle domain. The interprocedural half — nondeterminism
// reached through helper calls, and the per-function //lint:walldomain
// certifications that wall-domain packages (runner, trace, cmd/*) use to
// document legitimate clock reads — lives in the detflow analyzer. There
// is no package allowlist: a package is either cycle-accounting (listed
// here and in detflow's cycle domain) or its functions certify each
// wall-clock use individually.
//
// Package matching anchors to the module path: "igosim/internal/sim"
// matches, a hypothetical "othermod/internal/sim" or "igosim/internal/
// xsim" never does. (Fixture trees that mimic the module layout without
// the prefix match by the bare relative path.)
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"igosim/internal/lint/analysis"
)

// Analyzer is the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/Since/Sleep and math/rand call sites in cycle-accounting " +
		"packages (unsuppressable); detflow proves the transitive closure",
	Run: run,
}

// forbidden packages account simulated cycles; wall-clock reads there are
// never legitimate, so markers cannot suppress them. internal/serve is
// listed although it is not cycle-accounting: its response bodies must be
// pure functions of the request, so all clock reads of the serving stack
// are pushed out to cmd/igoserved and the loadtest harness — timeouts
// reach serve only as time.Duration values.
var forbidden = []string{
	"internal/sim", "internal/core", "internal/spm",
	"internal/schedule", "internal/dram", "internal/energy",
	"internal/refmodel", "internal/proptest", "internal/dse",
	"internal/serve",
}

// clockFuncs are the time functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Sleep": true}

func run(pass *analysis.Pass) error {
	if !analysis.InModuleAny(pass.Pkg.Path(), forbidden) {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Report(analysis.Diagnostic{
					Pos:            imp.Pos(),
					Message:        "math/rand imported in a cycle-accounting package; simulated behaviour must be deterministic",
					Unsuppressable: true,
				})
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !clockFuncs[obj.Name()] {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos: sel.Pos(),
				Message: "wall-clock read time." + obj.Name() +
					" in a cycle-accounting package; cycles advance only by integer arithmetic",
				Unsuppressable: true,
			})
			return true
		})
	}
	return nil
}
