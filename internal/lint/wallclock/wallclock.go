// Package wallclock forbids wall-clock reads (time.Now, time.Since,
// time.Sleep) and math/rand in the simulator's cycle-accounting packages.
// Simulated time advances only by integer cycle arithmetic; a wall-clock
// read or RNG draw in internal/sim, internal/core, internal/spm,
// internal/schedule, internal/dram, internal/energy, internal/refmodel or
// internal/proptest would make results vary run to run and break the
// byte-identical golden figures (proptest's deterministic splitmix64 source
// exists precisely so the property suite never needs math/rand). Findings
// in those packages are unsuppressable.
//
// internal/runner, internal/trace, internal/metrics and cmd/sweep
// legitimately observe wall-clock time (worker task spans, trace
// timestamps, wall-domain metric observations, sweep progress ETA); each
// such use must carry a `//lint:wallclock <reason>` marker on its line or
// the line above, which both documents the exemption and suppresses the
// finding.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"igosim/internal/lint/analysis"
)

// Analyzer is the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/Since/Sleep and math/rand in cycle-accounting packages; " +
		"runner/trace/metrics/sweep uses need a //lint:wallclock marker",
	Run: run,
}

// forbidden packages account simulated cycles; wall-clock reads there are
// never legitimate, so markers cannot suppress them.
var forbidden = []string{
	"internal/sim", "internal/core", "internal/spm",
	"internal/schedule", "internal/dram", "internal/energy",
	"internal/refmodel", "internal/proptest", "internal/dse",
}

// marked packages may read the wall clock with a documented marker.
var marked = []string{"internal/runner", "internal/trace", "internal/metrics", "cmd/sweep"}

// clockFuncs are the time functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Sleep": true}

func hasSuffix(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	hard := hasSuffix(path, forbidden)
	if !hard && !hasSuffix(path, marked) {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Report(analysis.Diagnostic{
					Pos:            imp.Pos(),
					Message:        "math/rand imported in a cycle-accounting package; simulated behaviour must be deterministic",
					Unsuppressable: hard,
				})
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !clockFuncs[obj.Name()] {
				return true
			}
			msg := "wall-clock read time." + obj.Name() + " in a cycle-accounting package; cycles advance only by integer arithmetic"
			if !hard {
				msg = "time." + obj.Name() + " in " + path + " needs a //lint:wallclock marker explaining the wall-clock use"
			}
			pass.Report(analysis.Diagnostic{Pos: sel.Pos(), Message: msg, Unsuppressable: hard})
			return true
		})
	}
	return nil
}
