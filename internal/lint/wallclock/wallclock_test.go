package wallclock_test

import (
	"testing"

	"igosim/internal/lint/analysistest"
	"igosim/internal/lint/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer,
		"igosim/internal/sim",   // forbidden: flagged, markers stale
		"othermod/internal/sim", // same suffix, other module: ignored
		"wcother",               // unscoped: ignored entirely
	)
}
