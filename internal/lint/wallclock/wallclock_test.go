package wallclock_test

import (
	"testing"

	"igosim/internal/lint/analysistest"
	"igosim/internal/lint/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer,
		"igosim/internal/sim",    // forbidden: flagged, markers ignored
		"igosim/internal/runner", // marked: flagged unless //lint:wallclock
		"igosim/cmd/sweep",       // marked CLI: progress ETA reads need markers
		"wcother",                // unscoped: ignored entirely
	)
}
