// Package sim sits at a path whose SUFFIX matches a cycle-accounting
// package ("internal/sim") but which belongs to another module. The
// module-anchored matcher must leave it alone — a suffix match here was
// exactly the bug this fixture pins.
package sim

import "time"

func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
