// Package wcother is outside both the forbidden and marked package lists:
// wall-clock reads here (CLI timing, benchmarks) are not wallclock's
// business.
package wcother

import "time"

func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
