// Package sweep is the wallclock fixture for the marked CLI: progress
// throughput and ETA lines read the wall clock, and each read must carry a
// //lint:wallclock marker documenting why.
package sweep

import "time"

func progressRate(start time.Time, done int) float64 {
	elapsed := time.Since(start) //lint:wallclock progress throughput is host-time by nature
	return float64(done) / elapsed.Seconds()
}

func unmarked() time.Time {
	return time.Now() // want `time\.Now in igosim/cmd/sweep needs a //lint:wallclock marker`
}
