// Package runner is the wallclock fixture for a marked package: wall-clock
// reads are legitimate here but each must carry a //lint:wallclock marker
// documenting why.
package runner

import "time"

func taskSpan() (begin, end time.Time) {
	begin = time.Now() //lint:wallclock runner task spans are wall-clock by design
	//lint:wallclock marker on the preceding line also works
	end = time.Now()
	return begin, end
}

func unmarked() time.Time {
	return time.Now() // want `time\.Now in igosim/internal/runner needs a //lint:wallclock marker`
}
