// Package sim is the wallclock fixture for a forbidden (cycle-accounting)
// package: every wall-clock read and math/rand import is flagged, findings
// are unsuppressable, and a //lint:wallclock marker — since it can excuse
// nothing here — is itself reported stale.
package sim

import (
	"math/rand" // want `math/rand imported in a cycle-accounting package`
	"time"
)

func elapsed() int64 {
	start := time.Now()       // want `wall-clock read time\.Now`
	wait := time.Since(start) // want `wall-clock read time\.Since`
	return wait.Microseconds() + int64(rand.Intn(3))
}

func markedAnyway() {
	//lint:wallclock markers cannot excuse cycle packages // want `stale //lint:wallclock marker`
	time.Sleep(0) // want `wall-clock read time\.Sleep`
}

// cycleMath is what cycle accounting is supposed to look like.
func cycleMath(busy, stall int64) int64 { return busy + stall }
