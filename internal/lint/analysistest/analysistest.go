// Package analysistest runs one analyzer over fixture packages under a
// testdata/src tree and matches its findings against `// want` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line carrying `// want "regexp"` (double- or back-quoted, one
// or more) must produce exactly that many findings on that line, each
// matching one of the regexps; any unmatched finding or unmet expectation
// fails the test. Fixture packages resolve imports first through the
// testdata tree, then through the enclosing module (so fixtures may import
// real igosim packages like internal/stats), then GOROOT.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"igosim/internal/lint/analysis"
	"igosim/internal/lint/loader"
)

// Run loads each fixture package (an import path under testdata/src) and
// checks analyzer a's findings against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	modRoot, err := loader.ModuleRoot(testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	l := loader.New(
		loader.Root{Prefix: "", Dir: src},
		loader.Root{Prefix: "igosim", Dir: modRoot},
	)
	// Load everything first, then snapshot the whole-program view: the
	// interprocedural analyzers see all fixture packages at once, exactly
	// like an igolint run over the module.
	pkgs := make([]*loader.Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Errorf("analysistest: loading %s: %v", path, err)
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	prog := l.Program()
	for _, pkg := range pkgs {
		findings, err := analysis.Run(pkg, prog, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("analysistest: running %s on %s: %v", a.Name, pkg.Path, err)
			continue
		}
		checkWants(t, pkg, findings)
	}
}

// expectation is one `// want` regexp awaiting a finding on its line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

func checkWants(t *testing.T, pkg *loader.Package, findings []analysis.Finding) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.met || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: want matching %q, got no finding", w.file, w.line, w.re)
		}
	}
}

// collectWants scans every fixture file's comments for want expectations.
func collectWants(t *testing.T, pkg *loader.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(strings.TrimPrefix(text, "/*"))
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parsePatterns(text[idx+len("want "):])
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parsePatterns extracts the quoted regexps after "want": a sequence of
// double- or back-quoted Go string literals separated by spaces.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			lit, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, lit)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			// Trailing prose after the patterns is allowed.
			if len(out) == 0 {
				return nil, fmt.Errorf("expected quoted regexp in %q", s)
			}
			return out, nil
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return out, nil
}
