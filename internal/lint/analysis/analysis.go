// Package analysis is a self-contained miniature of golang.org/x/tools'
// go/analysis framework: an Analyzer runs over one type-checked package and
// reports position-tagged diagnostics. The repo vendors no third-party
// code, so igolint's analyzers build against this stdlib-only mirror; the
// API intentionally matches go/analysis closely enough that migrating to
// the real framework is a mechanical import swap.
//
// # Marker suppression
//
// A diagnostic is suppressed when the flagged line — or the line directly
// above it — carries a `//lint:<analyzer>` marker comment (for example
// `//lint:wallclock runner task spans are wall-clock by design`). Analyzers
// that guard hard invariants can set Diagnostic.Unsuppressable to make a
// finding immune to markers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in `//lint:<name>`
	// suppression markers. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description shown by `igolint -list`.
	Doc string

	// Run applies the check to one package via the Pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Analyzers usually call Reportf.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding inside the package being analyzed.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Unsuppressable findings ignore `//lint:<name>` markers: the analyzer
	// considers the invariant too load-bearing for an escape hatch.
	Unsuppressable bool
}

// Finding is a resolved diagnostic: position mapped through the file set
// and tagged with the analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Run applies every analyzer to one type-checked package and returns the
// surviving findings sorted by position. Marker suppression (see the
// package comment) is applied here so every analyzer honours the same
// escape hatch without reimplementing it.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	markers := collectMarkers(fset, files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if !d.Unsuppressable && markers.suppresses(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// markerIndex records which analyzers are marker-suppressed on which lines.
type markerIndex map[string]map[int][]string // filename -> line -> analyzer names

func (m markerIndex) suppresses(analyzer string, pos token.Position) bool {
	lines := m[pos.Filename]
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// collectMarkers indexes every `//lint:<name>` comment by file and line.
func collectMarkers(fset *token.FileSet, files []*ast.File) markerIndex {
	idx := make(markerIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:") {
					continue
				}
				name := strings.TrimPrefix(text, "lint:")
				if i := strings.IndexAny(name, " \t"); i >= 0 {
					name = name[:i]
				}
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = make(map[int][]string)
				}
				idx[pos.Filename][pos.Line] = append(idx[pos.Filename][pos.Line], name)
			}
		}
	}
	return idx
}
