// Package analysis is a self-contained miniature of golang.org/x/tools'
// go/analysis framework: an Analyzer runs over one type-checked package and
// reports position-tagged diagnostics. The repo vendors no third-party
// code, so igolint's analyzers build against this stdlib-only mirror; the
// API intentionally matches go/analysis closely enough that migrating to
// the real framework is a mechanical import swap.
//
// # Marker suppression
//
// A diagnostic is suppressed when the flagged line — or the line directly
// above it — carries a `//lint:<analyzer>` marker comment (for example
// `//lint:detmap fixture demonstrating the escape hatch`). Analyzers that
// guard hard invariants can set Diagnostic.Unsuppressable to make a
// finding immune to markers.
//
// Suppression markers are themselves checked: a `//lint:<analyzer>` comment
// naming an analyzer in the run that suppresses no diagnostic is reported
// as stale (analyzer name "stalemarker"), so certifications and escape
// hatches cannot outlive the code they were written for. Annotation markers
// (`//lint:hotpath`, `//lint:sink`, `//lint:guardedcall`, `//lint:walldomain`,
// `//lint:registered`) use names outside the analyzer roster and are exempt.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"igosim/internal/lint/loader"
)

// ModulePath is the import-path prefix of the module under analysis.
// Package scoping rules (wallclock's forbidden list, detflow's cycle
// domain) anchor to it so that a package in some other tree whose path
// merely ends in the same suffix can never match.
const ModulePath = "igosim"

// InModule reports whether path names the module package with the given
// module-relative path (e.g. entry "internal/sim" matches exactly
// "igosim/internal/sim", and — for fixture trees that mimic the module
// layout without the prefix — "internal/sim" itself). Unlike a suffix
// match, "othermod/internal/sim" and "igosim/internal/xsim" never match.
func InModule(path, entry string) bool {
	return path == entry || path == ModulePath+"/"+entry
}

// InModuleAny reports whether path matches any of the module-relative
// entries under the InModule rule.
func InModuleAny(path string, entries []string) bool {
	for _, e := range entries {
		if InModule(path, e) {
			return true
		}
	}
	return false
}

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in `//lint:<name>`
	// suppression markers. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description shown by `igolint -list`.
	Doc string

	// Run applies the check to one package via the Pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an Analyzer,
// plus the whole-program view for interprocedural checks.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the loader's whole-program snapshot: every in-root package,
	// fully type-checked. Interprocedural analyzers (detflow, and the
	// transitive halves of detmap/cycleint/ctrreg) consult it; it may be
	// nil in bare single-package runs, which disables those halves.
	Prog *loader.Program

	// Report delivers one diagnostic. Analyzers usually call Reportf.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding inside the package being analyzed.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Unsuppressable findings ignore `//lint:<name>` markers: the analyzer
	// considers the invariant too load-bearing for an escape hatch.
	Unsuppressable bool
}

// Finding is a resolved diagnostic: position mapped through the file set
// and tagged with the analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Run applies every analyzer to one type-checked package and returns the
// surviving findings sorted by position. Marker suppression (see the
// package comment) is applied here so every analyzer honours the same
// escape hatch without reimplementing it, and markers that suppressed
// nothing across the whole run are reported stale.
func Run(pkg *loader.Package, prog *loader.Program, analyzers []*Analyzer) ([]Finding, error) {
	fset := pkg.Fset
	markers := collectMarkers(fset, pkg.Files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Prog:      prog,
		}
		pass.Report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if !d.Unsuppressable && markers.suppress(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	// Stale-marker check: a suppression comment naming an analyzer that ran
	// here but silenced nothing is dead weight — and, worse, false
	// documentation that a finding exists. Unsuppressable by construction:
	// the fix is deleting the marker, not marking the marker.
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, m := range markers.stale(ran) {
		findings = append(findings, Finding{
			Analyzer: "stalemarker",
			Pos:      fset.Position(m.pos),
			Message:  fmt.Sprintf("stale //lint:%s marker: it suppresses no %s diagnostic; delete it", m.name, m.name),
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// marker is one `//lint:<name>` comment, tracked so unused suppressions
// can be reported stale.
type marker struct {
	name string
	pos  token.Pos
	used bool
}

// markerIndex records which analyzers are marker-suppressed on which lines.
type markerIndex struct {
	byLine map[string]map[int][]*marker // filename -> line -> markers
	all    []*marker                    // in source order
}

// suppress reports whether a marker for analyzer covers pos, recording the
// marker as used when it does.
func (m *markerIndex) suppress(analyzer string, pos token.Position) bool {
	lines := m.byLine[pos.Filename]
	hit := false
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, mk := range lines[line] {
			if mk.name == analyzer {
				mk.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale returns, in source order, every unused marker whose name is in the
// ran set. Names outside the set are annotations (hotpath, sink,
// guardedcall, walldomain, registered) or target analyzers not in this
// run; neither is this run's business.
func (m *markerIndex) stale(ran map[string]bool) []*marker {
	var out []*marker
	for _, mk := range m.all {
		if !mk.used && ran[mk.name] {
			out = append(out, mk)
		}
	}
	return out
}

// collectMarkers indexes every `//lint:<name>` comment by file and line.
func collectMarkers(fset *token.FileSet, files []*ast.File) *markerIndex {
	idx := &markerIndex{byLine: make(map[string]map[int][]*marker)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:") {
					continue
				}
				name := strings.TrimPrefix(text, "lint:")
				if i := strings.IndexAny(name, " \t"); i >= 0 {
					name = name[:i]
				}
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if idx.byLine[pos.Filename] == nil {
					idx.byLine[pos.Filename] = make(map[int][]*marker)
				}
				mk := &marker{name: name, pos: c.Pos()}
				idx.byLine[pos.Filename][pos.Line] = append(idx.byLine[pos.Filename][pos.Line], mk)
				idx.all = append(idx.all, mk)
			}
		}
	}
	return idx
}
