// Package sim is the detflow fixture for the cycle domain: every entry
// point must be unable to reach nondeterminism through any chain of calls,
// wall-clock and randomness findings are unsuppressable and carry the full
// chain, and the structural kinds report once at their source site.
package sim

import (
	"sync"

	"igosim/internal/wallhelp"
)

// twoHop reaches the clock through a helper in another package: the
// finding names every hop.
func twoHop() int64 { // want `cycle-domain function sim\.twoHop reaches wall-clock: sim\.twoHop → wallhelp\.Stamp → time\.Now \(a\.go:\d+\)`
	return wallhelp.Stamp()
}

// viaRand reaches ambient randomness two hops away.
func viaRand() int { // want `cycle-domain function sim\.viaRand reaches ambient randomness: sim\.viaRand → wallhelp\.Roll → rand\.Int \(a\.go:\d+\)`
	return wallhelp.Roll()
}

// certifiedBarrier calls a certified helper: the certification is the
// propagation barrier, so nothing is reported here.
func certifiedBarrier() int64 {
	return wallhelp.CertStamp()
}

// fieldFlow calls through a function-typed field: the callee set is every
// function ever assigned to the field, here wallhelp.Stamp.
func fieldFlow() int64 { // want `cycle-domain function sim\.fieldFlow reaches wall-clock: sim\.fieldFlow → wallhelp\.Stamp → time\.Now \(a\.go:\d+\)`
	c := wallhelp.Cfg{Hook: wallhelp.Stamp}
	return c.Hook()
}

// hooks is a package-level collection of function values: candidates are
// not tracked through collections, so a call through an element is
// conservatively unknown, reported (suppressably) at the call site.
var hooks = map[string]func(){"a": func() {}}

func callHook() {
	hooks["a"]() // want `unresolvable function value reachable from the cycle domain: sim\.callHook → call through an element of hooks, a collection of function values \(a\.go:\d+\)`
}

var total int64

// accumulate writes a package-level variable without synchronization.
func accumulate(d int64) {
	total += d // want `unsynchronized global write reachable from the cycle domain: sim\.accumulate → write to package-level total \(a\.go:\d+\)`
}

var mu sync.Mutex

// guarded takes a lock before writing: the sync heuristic excuses it.
func guarded(d int64) {
	mu.Lock()
	total += d
	mu.Unlock()
}

// suppressed demonstrates the structural-kind escape hatch: the marker is
// honoured (and therefore not stale).
func suppressed(d int64) {
	//lint:detflow fixture demonstrating the escape hatch
	total += d
}

// dumpAll emits inside a map range through a helper: iteration order leaks
// into the output stream two hops away.
func dumpAll(m map[string]int) {
	for k, v := range m { // want `order-dependent map emission reachable from the cycle domain: sim\.dumpAll → map-range body calls wallhelp\.Emit, which emits output \(a\.go:\d+\)`
		wallhelp.Emit(k, v)
	}
}

// cannotCertify shows the cycle domain cannot certify nondeterminism away.
//
//lint:walldomain void here // want `//lint:walldomain on cycle-domain function sim\.cannotCertify`
func cannotCertify() {}
