// Package wallhelp is the detflow fixture's wall-domain helper package:
// direct clock and randomness use must be certified per function, and a
// certification must be load-bearing and attached to a declaration.
package wallhelp

import (
	"fmt"
	"math/rand"
	"time"
)

// Stamp reads the clock without certification: flagged at the source site.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in wallhelp\.Stamp: certify the enclosing top-level declaration`
}

// Roll draws ambient randomness without certification.
func Roll() int {
	return rand.Int() // want `rand\.Int in wallhelp\.Roll: certify the enclosing top-level declaration`
}

// CertStamp's clock read is declared wall-domain-only; the certification
// is load-bearing, so it stands.
//
//lint:walldomain fixture: timing feeds wall-domain output only
func CertStamp() int64 { return time.Now().UnixNano() }

// Pure reaches no nondeterminism, so certifying it is an error.
//
//lint:walldomain dead certification // want `//lint:walldomain on wallhelp\.Pure is not load-bearing`
func Pure() int { return 42 }

// Cfg carries the function-typed field the sim fixture calls through.
type Cfg struct{ Hook func() int64 }

// Emit prints one entry: it transitively "emits output".
func Emit(k string, v int) { fmt.Println(k, v) }

//lint:walldomain floating, attached to nothing // want `//lint:walldomain attaches to no function declaration`

var _ = 0
