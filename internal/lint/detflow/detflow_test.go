package detflow_test

import (
	"testing"

	"igosim/internal/lint/analysistest"
	"igosim/internal/lint/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, "testdata", detflow.Analyzer,
		"igosim/internal/sim",      // cycle domain: entry-point proofs
		"igosim/internal/wallhelp", // wall domain: certification hygiene
	)
}
