// The detflow analyzer proves — not spot-checks — that the Cycle domain is
// deterministic: every function in a cycle-domain package (and the metrics
// Cycle-registry entry points) must be unable to reach a nondeterminism
// source through any chain of calls. Violations carry the full call chain
// ("sim.Step → runner.tick → time.Now (runner.go:42)") so a finding is a
// readable proof trace, not a bare position.
//
// Wall-domain packages opt individual functions out with a per-function
// //lint:walldomain certification (on the declaration or its doc comment),
// asserting the nondeterminism stays in wall-domain outputs (timings,
// progress logs) and never feeds simulation state. Certifications are
// verified load-bearing: one on a function that reaches no nondeterminism
// is itself an error, as is one inside the cycle domain or one attached to
// no declaration. There are no package allowlists.
package detflow

import (
	"fmt"
	"sync"

	"igosim/internal/lint/analysis"
	"igosim/internal/lint/loader"
)

// Analyzer is the detflow check.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "proves cycle-domain determinism by whole-program taint propagation over the call " +
		"graph {wall-clock, rand, map-order emission, global writes}; verifies every " +
		"//lint:walldomain certification is load-bearing",
	Run: run,
}

var (
	graphMu sync.Mutex
	graphs  = make(map[*loader.Program]*Graph)
)

func run(pass *analysis.Pass) error {
	g := For(pass.Prog)
	if g == nil {
		return nil // single-package run: no whole-program view
	}
	path := pass.Pkg.Path()
	isCyclePkg := cycleDomainPkg(path)

	for _, n := range g.nodesOf(path) {
		// Clock and randomness reaching the cycle domain can never be waved
		// through: reported on the entry declaration with the full chain.
		// Literal nodes propagate into their enclosing declaration, so only
		// top-level nodes report.
		if n.parent == nil && cycleEntry(n) {
			for _, k := range []Kind{KindWallclock, KindRand} {
				if !n.taint.Has(k) {
					continue
				}
				pass.Report(analysis.Diagnostic{
					Pos: n.Pos,
					Message: fmt.Sprintf("cycle-domain function %s reaches %s: %s",
						n.name, k, g.chain(n, k)),
					Unsuppressable: true,
				})
			}
		}

		// The structural kinds (map-order emission, global writes, unknown
		// callees) report once at the source site — with a real chain from
		// one cycle-domain entry — rather than once per entry reaching it,
		// and keep the //lint:detflow marker escape at that site.
		if _, reached := g.reach[n]; reached {
			for _, k := range []Kind{KindMapOrder, KindGlobalWrite, KindUnknown} {
				if s := n.direct[k]; s != nil {
					pass.Report(analysis.Diagnostic{
						Pos: s.pos,
						Message: fmt.Sprintf("%s reachable from the cycle domain: %s",
							k, g.reachChain(n, k)),
					})
				}
			}
		}

		// Certification hygiene: a certification must sit outside the
		// cycle domain and must actually stand between the cycle domain
		// and real nondeterminism.
		if n.certified {
			switch {
			case isCyclePkg || cycleEntry(n):
				pass.Report(analysis.Diagnostic{
					Pos: n.certPos,
					Message: fmt.Sprintf("//lint:walldomain on cycle-domain function %s: "+
						"the cycle domain cannot certify nondeterminism away; remove the marker", n.name),
					Unsuppressable: true,
				})
			case n.rawTaint == 0:
				pass.Report(analysis.Diagnostic{
					Pos: n.certPos,
					Message: fmt.Sprintf("//lint:walldomain on %s is not load-bearing: "+
						"the function reaches no nondeterminism source; delete the marker", n.name),
					Unsuppressable: true,
				})
			}
		}

		// Outside the cycle domain, direct clock/randomness use must be
		// explicitly certified — that is the per-function replacement for
		// the old package allowlist.
		if !isCyclePkg && !cycleEntry(n) && !n.effCertified() {
			for _, k := range []Kind{KindWallclock, KindRand} {
				if s := n.direct[k]; s != nil {
					pass.Report(analysis.Diagnostic{
						Pos: s.pos,
						Message: fmt.Sprintf("%s in %s: certify the enclosing top-level declaration "+
							"with //lint:walldomain <reason> (wall-domain use only)", s.desc, n.name),
						Unsuppressable: true,
					})
				}
			}
		}
	}

	// Certifications attached to no function declaration.
	for _, pos := range g.strayCerts[path] {
		pass.Report(analysis.Diagnostic{
			Pos: pos,
			Message: "//lint:walldomain attaches to no function declaration; " +
				"place it on the declaration line or its doc comment",
			Unsuppressable: true,
		})
	}
	return nil
}
