// Call-graph construction for the detflow analyzer: one node per declared
// function, method, function literal and per-package initializer across
// every package of the loader's Program, with edges that over-approximate
// "may call". Resolution rules, from precise to conservative:
//
//   - direct calls to declared functions and methods resolve through static
//     types (generic instantiations collapse to their Origin declaration);
//   - interface method calls resolve by class-hierarchy analysis: an edge
//     to the matching method of every in-program named type implementing
//     the interface;
//   - function literals are nodes of their own, with an edge from the
//     lexically enclosing function (creating the value may mean calling
//     it), and they inherit that function's //lint:walldomain
//     certification;
//   - referencing a declared function as a value adds the same edge as
//     calling it would — whoever receives the value may call it;
//   - calls through function-typed struct fields and package-level
//     variables resolve to the set of functions ever assigned to that
//     variable anywhere in the program (resolved after the whole walk, so
//     assignment order cannot hide a candidate; one level of parameter
//     flow covers the constructor-stores-its-argument pattern); if any
//     assignment is unresolvable, every call through the variable is
//     tainted "unknown callee";
//   - calls through function-typed parameters and locals add no edge at
//     the call site — the taint was already attributed where the value was
//     created or handed over (literal enclosure, value reference, field
//     assignment).
//
// The graph also records each node's direct taint sources (wall-clock,
// randomness, order-dependent map emission, unsynchronized global writes)
// and two derived facts the retrofitted analyzers consume: transitive
// stream emission (detmap) and truncated-float returns (cycleint).
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"igosim/internal/lint/loader"
)

// Kind is one lattice element of the determinism taint.
type Kind uint8

const (
	KindWallclock Kind = iota // time.Now/Since/Sleep/After/Tick/NewTimer/NewTicker
	KindRand                  // math/rand, math/rand/v2, crypto/rand, maphash.MakeSeed
	KindMapOrder              // map iteration order reaching emitted output
	KindGlobalWrite           // unsynchronized write to a package-level variable
	KindUnknown               // call through an unresolvable function value
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindWallclock:
		return "wall-clock"
	case KindRand:
		return "ambient randomness"
	case KindMapOrder:
		return "order-dependent map emission"
	case KindGlobalWrite:
		return "unsynchronized global write"
	default:
		return "unresolvable function value"
	}
}

// Taint is a set of Kinds.
type Taint uint8

// bit returns the Taint with only k set.
func bit(k Kind) Taint { return Taint(1) << k }

// Has reports whether k is in the set.
func (t Taint) Has(k Kind) bool { return t&bit(k) != 0 }

// src is one direct taint source site inside a function body.
type src struct {
	pos  token.Pos
	desc string // e.g. "time.Now", "write to package-level total"
}

// Node is one function-level vertex of the call graph.
type Node struct {
	Obj  *types.Func     // nil for literals and package initializers
	Pkg  *loader.Package // defining package
	Pos  token.Pos       // declaration position (reporting anchor)
	name string          // display name, e.g. "runner.runTask", "sim.Step.func1"

	parent *Node   // enclosing node for function literals
	calls  []*Node // may-call edges, in source order

	direct    [numKinds]*src // first direct source per kind
	directSet Taint

	emitsDirect bool    // calls a fmt stream printer directly
	truncDirect *src    // returns an unrounded float→int truncation
	returnCalls []*Node // direct calls in return position (trunc propagation)
	mapCalls    []mcall // calls made inside a map-range body
	globalWr    []src   // global writes pending the lock heuristic
	hasLock     bool    // body calls .Lock/.RLock (sync heuristic)
	isInit      bool    // func init or the package-initializer node

	certified bool      // carries //lint:walldomain
	certPos   token.Pos // position of the certification marker

	// propagation results (computed by the fixpoint in taint.go)
	taint    Taint // with certification barriers honoured
	rawTaint Taint // ignoring barriers (load-bearing check)
	emitsAll bool
	truncAll bool
}

// Name returns the node's display name.
func (n *Node) Name() string { return n.name }

// mcall is one call made lexically inside a range-over-map body.
type mcall struct {
	rangePos token.Pos
	to       *Node
}

// candSet is the resolved assignment set of one tracked function-typed
// variable (struct field or package-level var).
type candSet struct {
	funcs      []*Node
	unresolved bool
	pending    []pendingParam // param-flow resolutions, applied after the walk
}

type pendingParam struct {
	fn    *types.Func // enclosing function whose parameter was stored
	index int         // parameter index
}

// argSet accumulates the function values observed flowing into one
// parameter position across all in-program call sites.
type argSet struct {
	funcs      []*Node
	unresolved bool
}

// varSite is one deferred call or value escape through a tracked variable.
// Sites resolve after the whole program is walked so that an assignment in
// a later-walked package still reaches an earlier-walked call site.
type varSite struct {
	node     *Node
	pos      token.Pos
	v        *types.Var
	rangePos token.Pos // enclosing map-range, if any
	inMap    bool
	read     bool // value escape (read) rather than a call
}

// Graph is the whole-program call graph plus taint facts.
type Graph struct {
	prog  *loader.Program
	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
	all   []*Node // deterministic order: package path, then position

	varCands  map[*types.Var]*candSet         // tracked func-typed vars -> assigned funcs
	varSites  []varSite                       // deferred uses of tracked vars
	argCands  map[*types.Func]map[int]*argSet // callee -> param index -> observed values
	ifaceMemo map[string][]*Node              // CHA cache: iface + method

	namedTypes []*types.Named         // in-program named types (CHA universe)
	strayCerts map[string][]token.Pos // pkg path -> walldomain markers on nothing

	// reach maps every node reachable from a top-level cycle-domain entry
	// (along non-certified edges) to its BFS predecessor; entries map to nil.
	reach map[*Node]*Node
}

// build constructs the graph for a program. Deterministic: packages in
// sorted path order, files and declarations in source order.
func build(prog *loader.Program) *Graph {
	g := &Graph{
		prog:       prog,
		byObj:      make(map[*types.Func]*Node),
		byLit:      make(map[*ast.FuncLit]*Node),
		varCands:   make(map[*types.Var]*candSet),
		argCands:   make(map[*types.Func]map[int]*argSet),
		ifaceMemo:  make(map[string][]*Node),
		strayCerts: make(map[string][]token.Pos),
	}
	pkgs := prog.Packages()
	certs := make(map[string]*certIndex, len(pkgs))

	// Pass 1: a node per declared function/method, the CHA type universe,
	// and certification markers.
	for _, pkg := range pkgs {
		ci := collectCerts(pkg)
		certs[pkg.Path] = ci
		scope := pkg.Types.Scope()
		for _, tn := range scope.Names() {
			if obj, ok := scope.Lookup(tn).(*types.TypeName); ok && !obj.IsAlias() {
				if named, ok := obj.Type().(*types.Named); ok {
					g.namedTypes = append(g.namedTypes, named)
				}
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &Node{
					Obj:    obj,
					Pkg:    pkg,
					Pos:    fd.Name.Pos(),
					name:   declName(pkg, fd),
					isInit: fd.Name.Name == "init" && fd.Recv == nil,
				}
				n.certified, n.certPos = ci.certFor(pkg.Fset, fd)
				g.byObj[obj] = n
				g.all = append(g.all, n)
			}
		}
	}

	// Pass 2: walk bodies and package-level initializers, creating literal
	// nodes on the fly and recording edges, sources and assignments.
	for _, pkg := range pkgs {
		var initNode *Node
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					n := g.byObj[pkg.Info.Defs[d.Name].(*types.Func)]
					w := newWalker(g, pkg, n)
					w.walkBody(d.Body)
					n.finish()
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok || len(vs.Values) == 0 {
							continue
						}
						if initNode == nil {
							initNode = &Node{
								Pkg:    pkg,
								Pos:    file.Name.Pos(),
								name:   pkg.Types.Name() + ".init",
								isInit: true,
							}
							g.all = append(g.all, initNode)
						}
						w := newWalker(g, pkg, initNode)
						for i, v := range vs.Values {
							// `var f = rhs` of function type at package
							// level is a tracked variable like any other.
							if i < len(vs.Names) {
								if obj, ok := pkg.Info.Defs[vs.Names[i]].(*types.Var); ok {
									w.recordVarAssign(obj, v)
								}
							}
							w.walkExpr(v)
						}
					}
				}
			}
		}
	}

	// Leftover walldomain markers attach to no declaration: recorded so a
	// certification cannot silently drift away from its function.
	for _, pkg := range pkgs {
		if stray := certs[pkg.Path].stray(); len(stray) > 0 {
			g.strayCerts[pkg.Path] = stray
		}
	}

	g.finalize()
	g.propagate()
	return g
}

// finish applies end-of-body heuristics: global writes only count when the
// function is not an initializer and holds no lock anywhere in its body.
func (n *Node) finish() {
	if n.isInit || n.hasLock {
		return
	}
	for i := range n.globalWr {
		n.addDirect(KindGlobalWrite, n.globalWr[i].pos, n.globalWr[i].desc)
	}
}

func (n *Node) addDirect(k Kind, pos token.Pos, desc string) {
	if n.direct[k] == nil {
		n.direct[k] = &src{pos: pos, desc: desc}
	}
	n.directSet |= bit(k)
}

func (n *Node) addCall(to *Node) {
	if to == nil || to == n {
		return
	}
	n.calls = append(n.calls, to)
}

// effCertified reports whether n or a lexical ancestor carries a
// //lint:walldomain certification. Certifications inside cycle-domain
// packages are void — those packages cannot opt out.
func (n *Node) effCertified() bool {
	if cycleDomainPkg(n.Pkg.Path) {
		return false
	}
	for m := n; m != nil; m = m.parent {
		if m.certified {
			return true
		}
	}
	return false
}

// declName formats a declared function's display name: pkg.Func or
// pkg.Type.Method.
func declName(pkg *loader.Package, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg.Types.Name() + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver Cache[K]
		t = ix.X
	}
	if ix, ok := t.(*ast.IndexListExpr); ok { // Cache[K, V]
		t = ix.X
	}
	recv := "?"
	if id, ok := t.(*ast.Ident); ok {
		recv = id.Name
	}
	return pkg.Types.Name() + "." + recv + "." + fd.Name.Name
}

// walker builds one node's edges and sources from its body.
type walker struct {
	g    *Graph
	pkg  *loader.Package
	node *Node
	lits int // literal counter for display names

	consumed  map[ast.Node]bool // callee expressions classified by call()
	mapRanges []token.Pos       // stack of enclosing range-over-map statements
}

func newWalker(g *Graph, pkg *loader.Package, node *Node) *walker {
	return &walker{g: g, pkg: pkg, node: node, consumed: make(map[ast.Node]bool)}
}

func (w *walker) walkBody(body *ast.BlockStmt) {
	ast.Inspect(body, w.visit)
}

func (w *walker) walkExpr(e ast.Expr) {
	ast.Inspect(e, w.visit)
}

// visit dispatches on one AST node. Function literals are not descended
// into here — they become their own graph node walked by a child walker.
func (w *walker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		w.node.addCall(w.litNode(n))
		return false
	case *ast.CallExpr:
		w.call(n)
		// Descend anyway: arguments and the receiver chain may hold calls,
		// references and literals of their own. The callee expression is
		// marked consumed so the reference pass below skips it.
		fun := ast.Unparen(n.Fun)
		w.consumed[fun] = true
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			w.consumed[sel.Sel] = true
		}
		return true
	case *ast.RangeStmt:
		if t := w.pkg.Info.TypeOf(n.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				w.walkExpr(n.X)
				w.mapRanges = append(w.mapRanges, n.For)
				ast.Inspect(n.Body, w.visit)
				w.mapRanges = w.mapRanges[:len(w.mapRanges)-1]
				return false
			}
		}
		return true
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			w.assignment(lhs, rhsFor(n, i))
		}
		return true
	case *ast.IncDecStmt:
		w.assignment(n.X, nil)
		return true
	case *ast.CompositeLit:
		w.compositeAssigns(n)
		return true
	case *ast.ReturnStmt:
		w.returns(n)
		return true
	case *ast.Ident:
		if !w.consumed[n] {
			w.reference(n, n)
		}
		return true
	case *ast.SelectorExpr:
		if !w.consumed[n] {
			w.reference(n.Sel, n)
		}
		w.consumed[n.Sel] = true // already handled; skip as bare identifier
		return true
	}
	return true
}

// rhsFor pairs an assignment LHS with its RHS expression (nil for the
// multi-value forms where no single expression corresponds).
func rhsFor(a *ast.AssignStmt, i int) ast.Expr {
	if len(a.Rhs) == len(a.Lhs) {
		return a.Rhs[i]
	}
	return nil
}

// litNode returns the node for a function literal, creating and walking it
// on first sight (memoized: candidate resolution may reach a literal
// before the enclosing traversal does).
func (w *walker) litNode(lit *ast.FuncLit) *Node {
	if n, ok := w.g.byLit[lit]; ok {
		return n
	}
	w.lits++
	n := &Node{
		Pkg:    w.pkg,
		Pos:    lit.Pos(),
		name:   fmt.Sprintf("%s.func%d", w.node.name, w.lits),
		parent: w.node,
	}
	w.g.byLit[lit] = n
	w.g.all = append(w.g.all, n)
	cw := newWalker(w.g, w.pkg, n)
	cw.walkBody(lit.Body)
	n.finish()
	return n
}

func (w *walker) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Type conversions and builtins are not calls.
	if tv, ok := w.pkg.Info.Types[fun]; ok && tv.IsType() {
		return
	}

	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := w.pkg.Info.Uses[f].(type) {
		case *types.Func:
			w.callFunc(call, obj)
		case *types.Var:
			w.callVar(call, obj)
		}
	case *ast.SelectorExpr:
		switch obj := w.pkg.Info.Uses[f.Sel].(type) {
		case *types.Func:
			if sel, ok := w.pkg.Info.Selections[f]; ok && sel.Kind() == types.MethodVal {
				if recv := sel.Recv(); recv != nil && types.IsInterface(recv) {
					w.callInterface(recv, obj)
					return
				}
			}
			w.callFunc(call, obj)
		case *types.Var:
			w.callVar(call, obj)
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: the enclosure edge added by visit()
		// covers it.
	default:
		// spm.New[K](...) — generic instantiation of a declared function.
		if obj := instantiatedFunc(w.pkg, fun); obj != nil {
			w.callFunc(call, obj)
			return
		}
		// occ[i](...) — a call through an element of a collection rooted at
		// a variable. A local or parameter root needs no edge (the values'
		// taint was attributed where they were created); a tracked root
		// defers like the variable itself.
		if v, ok := rootObject(w.pkg, fun).(*types.Var); ok {
			w.callVar(call, v)
			return
		}
		// Anything else (a call returning a func, a type assertion, ...):
		// unresolvable.
		w.node.addDirect(KindUnknown, call.Pos(), "call through an unresolvable function value")
	}
}

// instantiatedFunc resolves an explicit generic instantiation callee
// (f[T] or pkg.F[T1, T2]) to the declared function it instantiates.
func instantiatedFunc(pkg *loader.Package, fun ast.Expr) *types.Func {
	var x ast.Expr
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		x = ix.X
	case *ast.IndexListExpr:
		x = ix.X
	default:
		return nil
	}
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// callFunc handles a statically resolved function or method call.
func (w *walker) callFunc(call *ast.CallExpr, obj *types.Func) {
	obj = origin(obj)
	if isLockName(obj.Name()) {
		w.node.hasLock = true
	}
	if to, ok := w.g.byObj[obj]; ok {
		w.edgeTo(to)
		w.collectArgs(call, obj)
		return
	}
	// External (standard library) callee: classify against the source
	// tables; anything else is assumed deterministic. Function-typed
	// arguments handed to an external callee (sort.Slice's less) need no
	// extra edge: literal-enclosure and value-reference edges already
	// attribute their taint here.
	if k, desc, ok := externalSource(obj); ok {
		w.node.addDirect(k, call.Pos(), desc)
		return
	}
	if isStreamPrinter(obj) {
		w.node.emitsDirect = true
		if len(w.mapRanges) > 0 {
			w.node.addDirect(KindMapOrder, w.mapRanges[len(w.mapRanges)-1],
				"map-range body calls "+pkgDot(obj))
		}
	}
}

// edgeTo adds a call edge plus the map-range bookkeeping.
func (w *walker) edgeTo(to *Node) {
	w.node.addCall(to)
	if to != nil && to != w.node && len(w.mapRanges) > 0 {
		w.node.mapCalls = append(w.node.mapCalls,
			mcall{rangePos: w.mapRanges[len(w.mapRanges)-1], to: to})
	}
}

// collectArgs records function values flowing into an in-program callee's
// parameters, for the one-level param-flow used by field resolution.
func (w *walker) collectArgs(call *ast.CallExpr, obj *types.Func) {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if pi < 0 || pi >= sig.Params().Len() {
			continue
		}
		if !isFuncType(sig.Params().At(pi).Type()) {
			continue
		}
		m := w.g.argCands[obj]
		if m == nil {
			m = make(map[int]*argSet)
			w.g.argCands[obj] = m
		}
		as := m[pi]
		if as == nil {
			as = &argSet{}
			m[pi] = as
		}
		if isNilExpr(w.pkg, arg) {
			continue
		}
		if cand := w.resolveFuncExpr(arg); cand != nil {
			as.funcs = append(as.funcs, cand)
		} else {
			as.unresolved = true
		}
	}
}

// callInterface resolves an interface method call by class-hierarchy
// analysis over the program's named types.
func (w *walker) callInterface(recv types.Type, obj *types.Func) {
	if isLockName(obj.Name()) { // sync.Locker-style interfaces
		w.node.hasLock = true
	}
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, to := range w.g.implementers(iface, obj) {
		w.edgeTo(to)
	}
}

// implementers returns the in-program methods an interface method call may
// dispatch to, memoized per (interface, method).
func (g *Graph) implementers(iface *types.Interface, m *types.Func) []*Node {
	key := iface.String() + "\x00" + m.Name()
	if cached, ok := g.ifaceMemo[key]; ok {
		return cached
	}
	var out []*Node
	for _, named := range g.namedTypes {
		if named.TypeParams().Len() > 0 {
			continue // uninstantiated generics: reached by static calls instead
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		sel := types.NewMethodSet(ptr).Lookup(m.Pkg(), m.Name())
		if sel == nil {
			continue
		}
		if fn, ok := sel.Obj().(*types.Func); ok {
			if node, ok := g.byObj[origin(fn)]; ok {
				out = append(out, node)
			}
		}
	}
	g.ifaceMemo[key] = out
	return out
}

// callVar defers a call through a function-typed variable: tracked
// variables resolve after the whole program is walked; parameters and
// locals add nothing here (their taint lives where the value was made).
func (w *walker) callVar(call *ast.CallExpr, v *types.Var) {
	if !trackedVar(v) {
		return
	}
	if !isFuncType(v.Type()) {
		// An element of a tracked collection (slice/map of funcs in a field
		// or global): candidates are not tracked through collections, so
		// the callee is unknown.
		w.node.addDirect(KindUnknown, call.Pos(),
			"call through an element of "+v.Name()+", a collection of function values")
		return
	}
	w.addVarSite(varSite{node: w.node, pos: call.Pos(), v: v})
}

func (w *walker) addVarSite(s varSite) {
	if len(w.mapRanges) > 0 {
		s.inMap = true
		s.rangePos = w.mapRanges[len(w.mapRanges)-1]
	}
	w.g.varSites = append(w.g.varSites, s)
}

// reference handles a use of a function as a value (passed, stored,
// returned): the receiver may call it, so the edge is the same as a call.
// References to external nondeterminism sources taint directly — handing
// out time.Now as a value is reading the clock at one remove.
func (w *walker) reference(id *ast.Ident, at ast.Expr) {
	switch obj := w.pkg.Info.Uses[id].(type) {
	case *types.Func:
		fn := origin(obj)
		if to, ok := w.g.byObj[fn]; ok {
			w.node.addCall(to)
			return
		}
		if k, desc, ok := externalSource(fn); ok {
			w.node.addDirect(k, at.Pos(), desc+" (as a function value)")
		}
	case *types.Var:
		// Reading a tracked function-typed variable lets the value escape:
		// whoever receives it may call it.
		if trackedVar(obj) && isFuncType(obj.Type()) {
			w.addVarSite(varSite{node: w.node, pos: at.Pos(), v: obj, read: true})
		}
	}
}

// assignment records global writes and tracked-variable candidates for one
// LHS (rhs is nil for IncDec and multi-value assignments).
func (w *walker) assignment(lhs ast.Expr, rhs ast.Expr) {
	if v := targetVar(w.pkg, lhs); v != nil && rhs != nil {
		w.recordVarAssign(v, rhs)
	}
	// Unsynchronized global write: the write target roots at a
	// package-level variable, outside init, with no lock held anywhere in
	// this function (applied in finish).
	if v, ok := rootObject(w.pkg, lhs).(*types.Var); ok && packageLevel(v) && !syncType(v.Type()) {
		w.node.globalWr = append(w.node.globalWr,
			src{pos: lhs.Pos(), desc: "write to package-level " + v.Name()})
	}
}

// recordVarAssign records rhs as a candidate for tracked variable v.
func (w *walker) recordVarAssign(v *types.Var, rhs ast.Expr) {
	if !trackedVar(v) || !isFuncType(v.Type()) || isNilExpr(w.pkg, rhs) {
		return
	}
	cs := w.g.varCands[v]
	if cs == nil {
		cs = &candSet{}
		w.g.varCands[v] = cs
	}
	if cand := w.resolveFuncExpr(rhs); cand != nil {
		cs.funcs = append(cs.funcs, cand)
		return
	}
	// One level of parameter flow: `func NewX(f func()) { x.f = f }`
	// resolves through the function values passed at NewX's call sites.
	if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && w.node.Obj != nil {
		if p, ok := w.pkg.Info.Uses[id].(*types.Var); ok {
			if idx := paramIndex(w.node.Obj, p); idx >= 0 {
				cs.pending = append(cs.pending, pendingParam{fn: w.node.Obj, index: idx})
				return
			}
		}
	}
	cs.unresolved = true
}

// compositeAssigns records function values stored through composite
// literals (keyed or positional struct fields).
func (w *walker) compositeAssigns(cl *ast.CompositeLit) {
	t := w.pkg.Info.TypeOf(cl)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range cl.Elts {
		var field *types.Var
		var val ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				field, _ = w.pkg.Info.Uses[id].(*types.Var)
			}
			val = kv.Value
		} else if i < st.NumFields() {
			field, val = st.Field(i), elt
		}
		if field != nil && val != nil {
			w.recordVarAssign(field, val)
		}
	}
}

// returns records truncated-float return facts and return-position calls.
func (w *walker) returns(r *ast.ReturnStmt) {
	for _, res := range r.Results {
		if pos, conv, ok := FloatTruncation(w.pkg.Info, res); ok {
			if w.node.truncDirect == nil {
				w.node.truncDirect = &src{pos: pos, desc: conv + "(...) of unrounded float arithmetic"}
			}
			continue
		}
		if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
			if obj := calleeFunc(w.pkg, call); obj != nil {
				if to, ok := w.g.byObj[origin(obj)]; ok {
					w.node.returnCalls = append(w.node.returnCalls, to)
				}
			}
		}
	}
}

// resolveFuncExpr resolves an expression to the graph node of the function
// value it denotes, or nil when it cannot.
func (w *walker) resolveFuncExpr(e ast.Expr) *Node {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return w.litNode(e)
	case *ast.Ident:
		if obj, ok := w.pkg.Info.Uses[e].(*types.Func); ok {
			return w.g.byObj[origin(obj)]
		}
	case *ast.SelectorExpr:
		if obj, ok := w.pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return w.g.byObj[origin(obj)]
		}
	case *ast.IndexExpr, *ast.IndexListExpr:
		if obj := instantiatedFunc(w.pkg, e); obj != nil {
			return w.g.byObj[origin(obj)]
		}
	}
	return nil
}

// finalize resolves the deferred parts of construction: one-level
// parameter flow into tracked variables, then every call/read site through
// a tracked variable against the program-wide candidate set.
func (g *Graph) finalize() {
	// Sorted by declaration position so candidate (and hence edge) order is
	// independent of map iteration — detflow's own chains must be as
	// deterministic as the code it checks.
	vars := make([]*types.Var, 0, len(g.varCands))
	for v := range g.varCands {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for _, v := range vars {
		cs := g.varCands[v]
		for _, p := range cs.pending {
			as := g.argCands[p.fn][p.index]
			if as == nil || as.unresolved {
				cs.unresolved = true
				continue
			}
			cs.funcs = append(cs.funcs, as.funcs...)
		}
		cs.pending = nil
	}
	for _, s := range g.varSites {
		cs := g.varCands[s.v]
		if cs == nil {
			// Never assigned a non-nil value anywhere in shipping code:
			// the call site is dead (nilguard owns the guard discipline).
			continue
		}
		if cs.unresolved {
			what := "call through "
			if s.read {
				what = "use of "
			}
			s.node.addDirect(KindUnknown, s.pos,
				what+s.v.Name()+", assigned an unresolvable function value")
			continue
		}
		for _, f := range cs.funcs {
			s.node.addCall(f)
			if s.inMap && !s.read {
				s.node.mapCalls = append(s.node.mapCalls, mcall{rangePos: s.rangePos, to: f})
			}
		}
	}
}
