package detflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"igosim/internal/lint/loader"
)

// origin collapses a generic instantiation to its declared object, so call
// edges land on the node created from the declaration.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// clockFuncs are the time package entry points that read or depend on the
// wall clock. Formatting and arithmetic on time values stays clean.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// randPkgs are packages whose every function is an ambient-randomness
// source.
var randPkgs = map[string]bool{
	"math/rand":   true,
	"math/rand/v2": true,
	"crypto/rand": true,
}

// externalSource classifies a standard-library function as a taint source.
func externalSource(fn *types.Func) (Kind, string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0, "", false
	}
	switch {
	case pkg.Path() == "time" && clockFuncs[fn.Name()]:
		return KindWallclock, "time." + fn.Name(), true
	case randPkgs[pkg.Path()]:
		return KindRand, pkg.Name() + "." + fn.Name(), true
	case pkg.Path() == "hash/maphash" && fn.Name() == "MakeSeed":
		return KindRand, "maphash.MakeSeed", true
	}
	return 0, "", false
}

// streamPrinters are the fmt functions that write to a stream as a side
// effect; calling one inside a map-range makes the output order-dependent.
// Sprint*/Errorf build values instead of emitting, so they stay with
// detmap's direct in-loop check.
var streamPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func isStreamPrinter(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && streamPrinters[fn.Name()]
}

// isLockName matches mutex-acquisition method names: a function that takes
// a lock anywhere is exempt from the unsynchronized-global-write source
// (the write is synchronized; cross-goroutine ordering is the scheduler's
// problem, not this lattice's).
func isLockName(name string) bool {
	return name == "Lock" || name == "RLock"
}

// trackedVar reports whether assignments to v are worth tracking for call
// resolution: struct fields and package-level variables. Parameters and
// locals are handled by value-flow at their producing sites.
func trackedVar(v *types.Var) bool {
	return v != nil && (v.IsField() || packageLevel(v))
}

// packageLevel reports whether v is declared at package scope.
func packageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// syncType reports whether t is declared in sync or sync/atomic (writing a
// whole mutex or atomic value is initialization, not shared-state drift).
func syncType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

// isFuncType reports whether t's underlying type is a function signature.
func isFuncType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(pkg *loader.Package, e ast.Expr) bool {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.IsNil()
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// paramIndex returns the index of p in fn's parameter list, or -1.
func paramIndex(fn *types.Func, p *types.Var) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == p {
			return i
		}
	}
	return -1
}

// rootObject resolves the base object a write expression ultimately stores
// into: the object of the leftmost identifier, looking through selectors,
// indexing, derefs and parens. Qualified references (pkg.Var) resolve to
// the named variable, not the package name.
func rootObject(pkg *loader.Package, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		if obj := pkg.Info.Uses[e]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
				return pkg.Info.Uses[e.Sel]
			}
		}
		return rootObject(pkg, e.X)
	case *ast.IndexExpr:
		return rootObject(pkg, e.X)
	case *ast.StarExpr:
		return rootObject(pkg, e.X)
	case *ast.ParenExpr:
		return rootObject(pkg, e.X)
	}
	return nil
}

// targetVar resolves an assignment LHS to the variable it stores into (the
// field for x.F, the variable for plain identifiers), or nil.
func targetVar(pkg *loader.Package, lhs ast.Expr) *types.Var {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok {
			return v
		}
		v, _ := pkg.Info.Defs[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := pkg.Info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

// calleeFunc returns the statically resolved callee of a call, or nil.
func calleeFunc(pkg *loader.Package, call *ast.CallExpr) *types.Func {
	if tv, ok := pkg.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		return nil // conversion
	}
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pkgDot formats an external function as pkg.Name.
func pkgDot(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// roundFuncs make a float's rounding direction explicit.
var roundFuncs = map[string]bool{
	"Round": true, "Floor": true, "Ceil": true, "Trunc": true, "RoundToEven": true,
}

// FloatTruncation reports whether e contains an integer conversion whose
// operand is unrounded float arithmetic — the silent off-by-one source
// cycleint exists for — returning the conversion's type name ("int64").
// Shared here so cycleint's direct check and detflow's transitive
// truncated-return fact agree exactly.
func FloatTruncation(info *types.Info, e ast.Expr) (pos token.Pos, conv string, found bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		at := info.TypeOf(arg)
		if at == nil {
			return true
		}
		ab, ok := at.Underlying().(*types.Basic)
		if !ok || ab.Info()&types.IsFloat == 0 {
			return true
		}
		if isRoundCall(info, arg) || !containsFloatArith(info, arg) {
			return true
		}
		pos, conv, found = call.Pos(), basic.Name(), true
		return false
	})
	return pos, conv, found
}

// isRoundCall reports whether e is math.Round/Floor/Ceil/Trunc(...).
func isRoundCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == "math" && roundFuncs[obj.Name()]
}

// containsFloatArith reports whether e contains +,-,*,/ on float operands,
// ignoring operands already inside an explicit rounding call.
func containsFloatArith(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isRoundCall(info, call) {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return true
		}
		if t := info.TypeOf(bin.X); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// certIndex records the //lint:walldomain markers of one package and which
// declarations claimed them.
type certIndex struct {
	byLine map[string]map[int]*certMark
	all    []*certMark
}

type certMark struct {
	pos  token.Pos
	used bool
}

// collectCerts indexes every walldomain marker in the package by file and
// line.
func collectCerts(pkg *loader.Package) *certIndex {
	ci := &certIndex{byLine: make(map[string]map[int]*certMark)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if text != "lint:walldomain" && !strings.HasPrefix(text, "lint:walldomain ") &&
					!strings.HasPrefix(text, "lint:walldomain\t") {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				if ci.byLine[p.Filename] == nil {
					ci.byLine[p.Filename] = make(map[int]*certMark)
				}
				m := &certMark{pos: c.Pos()}
				ci.byLine[p.Filename][p.Line] = m
				ci.all = append(ci.all, m)
			}
		}
	}
	return ci
}

// certFor reports whether fd carries a walldomain certification: a marker
// on the declaration line, the line directly above it, or any line of the
// attached doc comment. Matched markers are claimed, so leftovers surface
// as stray.
func (ci *certIndex) certFor(fset *token.FileSet, fd *ast.FuncDecl) (bool, token.Pos) {
	p := fset.Position(fd.Pos())
	lines := []int{p.Line, p.Line - 1}
	if fd.Doc != nil {
		start := fset.Position(fd.Doc.Pos()).Line
		end := fset.Position(fd.Doc.End()).Line
		for l := start; l <= end; l++ {
			lines = append(lines, l)
		}
	}
	var hit *certMark
	for _, l := range lines {
		if m := ci.byLine[p.Filename][l]; m != nil {
			m.used = true
			if hit == nil {
				hit = m
			}
		}
	}
	if hit == nil {
		return false, token.NoPos
	}
	return true, hit.pos
}

// stray returns the positions of markers no declaration claimed.
func (ci *certIndex) stray() []token.Pos {
	var out []token.Pos
	for _, m := range ci.all {
		if !m.used {
			out = append(out, m.pos)
		}
	}
	return out
}
