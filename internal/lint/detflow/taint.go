package detflow

import (
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"igosim/internal/lint/analysis"
	"igosim/internal/lint/loader"
)

// cyclePackages are the module-relative paths whose every function is a
// Cycle-domain entry point: anything here must be provably deterministic.
// This is the old wallclock forbidden list plus the analytic bounds and
// systolic models the DSE trusts.
var cyclePackages = []string{
	"internal/sim",
	"internal/core",
	"internal/spm",
	"internal/schedule",
	"internal/dram",
	"internal/energy",
	"internal/refmodel",
	"internal/proptest",
	"internal/dse",
	"internal/analytic",
	"internal/systolic",
}

// cycleFuncs names Cycle-domain entry points inside otherwise wall-adjacent
// packages: the metrics Cycle registry's emission path must stay
// deterministic even though the package also hosts Wall-domain gauges.
var cycleFuncs = map[string]map[string]bool{
	"internal/metrics": {
		"Finalize":    true,
		"Snapshot":    true,
		"Fingerprint": true,
	},
	// The serving layer's request→result function: the HTTP server around
	// it is wall-domain (sockets, timeouts, latency histograms), but every
	// response body must be a pure function of the canonicalized request —
	// byte-identical at any -j and any cache state — so the evaluator (and
	// the canonicalization feeding the cache fingerprint) is held to the
	// cycle-domain proof.
	"internal/serve": {
		"Evaluate":     true,
		"canonicalize": true,
		"Fingerprint":  true,
	},
	// The two-phase executor's residency cache (DESIGN.md §3l): the
	// resolve/replay fast path in internal/sim consults a runner.Bounded
	// from cycle-domain code, so the cache's lookup/admission surface is
	// held to the cycle-domain proof even though the package also hosts
	// the wall-domain worker pool. Name-matching deliberately covers the
	// Cache and Pool methods of the same names — every cache the engine
	// reads mid-simulation must meet the same bar.
	"internal/runner": {
		"Get": true,
		"Put": true,
		"Cap": true,
	},
}

// cycleDomainPkg reports whether every function of the package is a
// Cycle-domain entry point.
func cycleDomainPkg(path string) bool {
	return analysis.InModuleAny(path, cyclePackages)
}

// cycleEntry reports whether node n is a Cycle-domain entry point.
func cycleEntry(n *Node) bool {
	if cycleDomainPkg(n.Pkg.Path) {
		return true
	}
	for rel, names := range cycleFuncs {
		if analysis.InModule(n.Pkg.Path, rel) && n.Obj != nil && names[n.Obj.Name()] {
			return true
		}
	}
	return false
}

// propagate runs the emission/truncation fixpoints, derives map-order
// sources from final emission facts, then runs the two taint fixpoints.
// Every step is monotone over a finite lattice, so iteration terminates;
// the deterministic node order makes the result order-independent.
func (g *Graph) propagate() {
	for _, n := range g.all {
		n.emitsAll = n.emitsDirect
		n.truncAll = n.truncDirect != nil
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.all {
			for _, to := range n.calls {
				if to.emitsAll && !n.emitsAll {
					n.emitsAll = true
					changed = true
				}
			}
			for _, to := range n.returnCalls {
				if to.truncAll && !n.truncAll {
					n.truncAll = true
					changed = true
				}
			}
		}
	}

	// Calling a transitively-emitting function from a map-range body leaks
	// iteration order into output: a map-order source at the range site.
	for _, n := range g.all {
		for _, mc := range n.mapCalls {
			if mc.to.emitsAll && !mc.to.effCertified() {
				n.addDirect(KindMapOrder, mc.rangePos,
					"map-range body calls "+mc.to.name+", which emits output")
			}
		}
	}

	for _, n := range g.all {
		n.taint = n.directSet
		n.rawTaint = n.directSet
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.all {
			for _, to := range n.calls {
				// Certification is the propagation barrier: a certified
				// callee's nondeterminism is declared wall-domain-only.
				if add := to.taint &^ n.taint; add != 0 && !to.effCertified() {
					n.taint |= add
					changed = true
				}
				if add := to.rawTaint &^ n.rawTaint; add != 0 {
					n.rawTaint |= add
					changed = true
				}
			}
		}
	}

	// Entry reachability: every node reachable from a top-level cycle-domain
	// entry point along non-certified edges, each with one BFS predecessor.
	// Source-site diagnostics (map order, global writes, unknown callees)
	// report here once per site instead of once per entry point, and use the
	// predecessors to show a real entry-to-site chain.
	g.reach = make(map[*Node]*Node)
	var queue []*Node
	for _, n := range g.all {
		if n.parent == nil && cycleEntry(n) {
			g.reach[n] = nil
			queue = append(queue, n)
		}
	}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		for _, to := range cur.calls {
			if to.effCertified() {
				continue
			}
			if _, ok := g.reach[to]; !ok {
				g.reach[to] = cur
				queue = append(queue, to)
			}
		}
	}
}

// reachChain formats the recorded entry-to-n path, ending at n's direct
// source of k: "core.Run → sim.dump → write to package-level total (x.go:9)".
func (g *Graph) reachChain(n *Node, k Kind) string {
	var names []string
	for m := n; m != nil; m = g.reach[m] {
		names = append([]string{m.name}, names...)
		if g.reach[m] == nil {
			break
		}
	}
	s := n.direct[k]
	p := g.position(s.pos)
	return strings.Join(names, " → ") + " → " + s.desc +
		" (" + filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line) + ")"
}

// chain returns the shortest call path from n to a direct source of k,
// formatted "a.F → b.G → time.Now (file.go:12)". BFS over the same edges
// taint flowed through, so a reported chain is always a real propagation
// path.
func (g *Graph) chain(n *Node, k Kind) string {
	type qent struct {
		node *Node
		prev int
	}
	queue := []qent{{node: n, prev: -1}}
	seen := map[*Node]bool{n: true}
	for i := 0; i < len(queue); i++ {
		cur := queue[i].node
		if s := cur.direct[k]; s != nil {
			var names []string
			for j := i; j != -1; j = queue[j].prev {
				names = append([]string{queue[j].node.name}, names...)
			}
			p := g.position(s.pos)
			return strings.Join(names, " → ") + " → " + s.desc +
				" (" + filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line) + ")"
		}
		for _, to := range cur.calls {
			if !seen[to] && !to.effCertified() {
				seen[to] = true
				queue = append(queue, qent{node: to, prev: i})
			}
		}
	}
	return n.name + " → (source unreachable in graph)" // fixpoint/chain mismatch; should not happen
}

func (g *Graph) position(pos token.Pos) token.Position {
	pkgs := g.prog.Packages()
	if len(pkgs) > 0 {
		return pkgs[0].Fset.Position(pos)
	}
	return token.Position{}
}

// nodesOf returns the graph nodes declared in the package at path, in
// construction (source) order.
func (g *Graph) nodesOf(path string) []*Node {
	var out []*Node
	for _, n := range g.all {
		if n.Pkg.Path == path {
			out = append(out, n)
		}
	}
	return out
}

// EmitsAll reports whether fn transitively calls a fmt stream printer.
// detmap's map-range check consults this to make in-loop emission
// detection interprocedural.
func (g *Graph) EmitsAll(fn *types.Func) bool {
	if g == nil || fn == nil {
		return false
	}
	n, ok := g.byObj[origin(fn)]
	return ok && n.emitsAll
}

// TruncatedReturn reports whether fn (transitively, through bare
// return-call chains) returns an integer truncation of unrounded float
// arithmetic, with a human-readable chain to the truncating conversion.
// cycleint consults this to catch counters assigned from helper calls.
func (g *Graph) TruncatedReturn(fn *types.Func) (string, bool) {
	if g == nil || fn == nil {
		return "", false
	}
	n, ok := g.byObj[origin(fn)]
	if !ok || !n.truncAll {
		return "", false
	}
	var names []string
	seen := map[*Node]bool{}
	for n != nil && !seen[n] {
		seen[n] = true
		names = append(names, n.name)
		if n.truncDirect != nil {
			p := g.position(n.truncDirect.pos)
			return strings.Join(names, " → ") + " → " + n.truncDirect.desc +
				" (" + filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line) + ")", true
		}
		next := (*Node)(nil)
		for _, to := range n.returnCalls {
			if to.truncAll {
				next = to
				break
			}
		}
		n = next
	}
	return strings.Join(names, " → "), true
}

// For returns the (memoized) call graph of a program, or nil when prog is
// nil. Safe for concurrent use: igolint analyzes packages in parallel and
// every pass shares one graph per program.
func For(prog *loader.Program) *Graph {
	if prog == nil {
		return nil
	}
	graphMu.Lock()
	defer graphMu.Unlock()
	if g, ok := graphs[prog]; ok {
		return g
	}
	g := build(prog)
	graphs[prog] = g
	return g
}
