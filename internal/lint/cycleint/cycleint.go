// Package cycleint keeps cycle and byte accounting integer-exact. The
// simulator reconciles per-track cycle sums to the final Result.Cycles via
// trace.Sink.Check, so any float32/float64 arithmetic truncated into a
// cycle- or byte-counting variable (names containing Cycles, Stall, Bytes,
// Evict or Spill) is a silent source of off-by-one drift: int64(x*y)
// truncates toward zero and the error compounds across tiles. The analyzer
// flags integer conversions whose operand is float arithmetic unless the
// operand passes through an explicit rounding call (math.Round, math.Floor,
// math.Ceil, math.Trunc, math.RoundToEven) that makes the rounding
// direction a stated decision.
//
// The check is transitive: a counter assigned from a helper call is
// checked against the detflow call graph's truncated-return fact, so
// hiding the truncation one function away (`c.Cycles = scaled(x)` where
// scaled returns int64 of float arithmetic) is caught too, with the chain
// to the truncating conversion in the message.
package cycleint

import (
	"go/ast"
	"go/types"
	"regexp"

	"igosim/internal/lint/analysis"
	"igosim/internal/lint/detflow"
)

// Analyzer is the cycleint check.
var Analyzer = &analysis.Analyzer{
	Name: "cycleint",
	Doc: "flags float arithmetic truncated into cycle/byte counters (names matching " +
		"Cycles|Stall|Bytes|Evict|Spill) without an explicit math.Round/Floor/Ceil, " +
		"including truncations hidden behind helper returns",
	Run: run,
}

// counterName matches identifiers that account cycles or bytes.
var counterName = regexp.MustCompile(`(?i)(cycles|stall|bytes|evict|spill)`)

func run(pass *analysis.Pass) error {
	g := detflow.For(pass.Prog)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					if !lhsMatches(lhs) {
						continue
					}
					if i < len(st.Rhs) {
						checkExpr(pass, g, st.Rhs[i], exprName(lhs))
					} else if len(st.Rhs) == 1 {
						checkExpr(pass, g, st.Rhs[0], exprName(lhs))
					}
				}
			case *ast.ValueSpec:
				for _, name := range st.Names {
					if counterName.MatchString(name.Name) {
						for _, v := range st.Values {
							checkExpr(pass, g, v, name.Name)
						}
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := st.Key.(*ast.Ident); ok && counterName.MatchString(id.Name) {
					checkExpr(pass, g, st.Value, id.Name)
				}
			}
			return true
		})
	}
	return nil
}

func lhsMatches(lhs ast.Expr) bool {
	name := exprName(lhs)
	return name != "" && counterName.MatchString(name)
}

// exprName extracts the identifier an assignment targets (the selector
// field name for x.Cycles, the identifier itself for cycles).
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X)
	}
	return ""
}

// checkExpr flags rhs feeding the named counter: inline integer
// conversions of unrounded float arithmetic (shared detector with
// detflow), and calls to functions that transitively return one.
func checkExpr(pass *analysis.Pass, g *detflow.Graph, rhs ast.Expr, target string) {
	if pos, conv, ok := detflow.FloatTruncation(pass.TypesInfo, rhs); ok {
		pass.Reportf(pos, "float arithmetic truncated into %s by %s(...); wrap the operand in math.Round/Floor/Ceil to make the rounding explicit", target, conv)
		return
	}
	// Transitive: counter assigned from a helper whose return truncates.
	ast.Inspect(rhs, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pass, call)
		if fn == nil {
			return true
		}
		if chain, ok := g.TruncatedReturn(fn); ok {
			pass.Reportf(call.Pos(), "%s is assigned from %s, which returns truncated float arithmetic: %s; round explicitly at the source", target, fn.Name(), chain)
			return false
		}
		return true
	})
}

// calleeOf resolves a call's static callee, skipping conversions.
func calleeOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		return nil
	}
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}
