// Package cycleint keeps cycle and byte accounting integer-exact. The
// simulator reconciles per-track cycle sums to the final Result.Cycles via
// trace.Sink.Check, so any float32/float64 arithmetic truncated into a
// cycle- or byte-counting variable (names containing Cycles, Stall, Bytes,
// Evict or Spill) is a silent source of off-by-one drift: int64(x*y)
// truncates toward zero and the error compounds across tiles. The analyzer
// flags integer conversions whose operand is float arithmetic unless the
// operand passes through an explicit rounding call (math.Round, math.Floor,
// math.Ceil, math.Trunc, math.RoundToEven) that makes the rounding
// direction a stated decision.
package cycleint

import (
	"go/ast"
	"go/types"
	"regexp"

	"igosim/internal/lint/analysis"
)

// Analyzer is the cycleint check.
var Analyzer = &analysis.Analyzer{
	Name: "cycleint",
	Doc: "flags float arithmetic truncated into cycle/byte counters (names matching " +
		"Cycles|Stall|Bytes|Evict|Spill) without an explicit math.Round/Floor/Ceil",
	Run: run,
}

// counterName matches identifiers that account cycles or bytes.
var counterName = regexp.MustCompile(`(?i)(cycles|stall|bytes|evict|spill)`)

// roundFuncs make the rounding direction explicit.
var roundFuncs = map[string]bool{
	"Round": true, "Floor": true, "Ceil": true, "Trunc": true, "RoundToEven": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					if !lhsMatches(lhs) {
						continue
					}
					if i < len(st.Rhs) {
						checkExpr(pass, st.Rhs[i], exprName(lhs))
					} else if len(st.Rhs) == 1 {
						checkExpr(pass, st.Rhs[0], exprName(lhs))
					}
				}
			case *ast.ValueSpec:
				for _, name := range st.Names {
					if counterName.MatchString(name.Name) {
						for _, v := range st.Values {
							checkExpr(pass, v, name.Name)
						}
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := st.Key.(*ast.Ident); ok && counterName.MatchString(id.Name) {
					checkExpr(pass, st.Value, id.Name)
				}
			}
			return true
		})
	}
	return nil
}

func lhsMatches(lhs ast.Expr) bool {
	name := exprName(lhs)
	return name != "" && counterName.MatchString(name)
}

// exprName extracts the identifier an assignment targets (the selector
// field name for x.Cycles, the identifier itself for cycles).
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X)
	}
	return ""
}

// checkExpr walks rhs for integer conversions of unrounded float
// arithmetic feeding the named counter.
func checkExpr(pass *analysis.Pass, rhs ast.Expr, target string) {
	ast.Inspect(rhs, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil {
			return true
		}
		ab, ok := at.Underlying().(*types.Basic)
		if !ok || ab.Info()&types.IsFloat == 0 {
			return true
		}
		if isRoundCall(pass, arg) {
			return true
		}
		if !containsFloatArith(pass, arg) {
			return true
		}
		pass.Reportf(call.Pos(), "float arithmetic truncated into %s by %s(...); wrap the operand in math.Round/Floor/Ceil to make the rounding explicit", target, basic.Name())
		return false
	})
}

// isRoundCall reports whether e is math.Round/Floor/Ceil/Trunc(...).
func isRoundCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == "math" && roundFuncs[obj.Name()]
}

// containsFloatArith reports whether e contains +,-,*,/ on float operands.
func containsFloatArith(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		// Don't descend into nested rounding calls: their operand's
		// arithmetic is already rounded.
		if call, ok := n.(*ast.CallExpr); ok && isRoundCall(pass, call) {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op.String() {
		case "+", "-", "*", "/":
		default:
			return true
		}
		if t := pass.TypesInfo.TypeOf(bin.X); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
