package cycleint_test

import (
	"testing"

	"igosim/internal/lint/analysistest"
	"igosim/internal/lint/cycleint"
)

func TestCycleint(t *testing.T) {
	analysistest.Run(t, "testdata", cycleint.Analyzer, "cycleinttest")
}
