// Package cycleinttest is the cycleint fixture: float arithmetic truncated
// into cycle/byte counters must be flagged unless routed through an
// explicit math rounding call; integer math and non-counter names pass.
package cycleinttest

import "math"

type result struct {
	Cycles int64
	Bytes  int64
	name   string
}

func tileCycles(n int, scale float64) int64 {
	cycles := int64(float64(n) * scale) // want `float arithmetic truncated into cycles by int64`
	return cycles
}

func fields(n int, frac float64) result {
	var r result
	r.Cycles = int64(float64(n) * frac)            // want `float arithmetic truncated into Cycles by int64`
	r.Bytes = int64(math.Round(float64(n) * frac)) // rounded: allowed
	return r
}

func literal(n int, frac float64) result {
	return result{
		Cycles: int64(frac * float64(n)), // want `float arithmetic truncated into Cycles by int64`
		Bytes:  int64(math.Ceil(frac)),   // no arithmetic in the operand: allowed
		name:   "fixture",
	}
}

func plusEquals(n int, frac float64) int64 {
	var spillBytes int64
	spillBytes += int64(frac * float64(n)) // want `float arithmetic truncated into spillBytes by int64`
	return spillBytes
}

// nonCounter names stay unflagged: the analyzer scopes to accounting state.
func nonCounter(n int, frac float64) int64 {
	share := int64(float64(n) * frac)
	return share
}

// intOnly arithmetic never involves floats.
func intOnly(a, b int64) int64 {
	var stallCycles int64
	stallCycles = a*b + 1
	return stallCycles
}

// plainConversion has no arithmetic inside the conversion.
func plainConversion(f float64) int64 {
	var evictBytes int64
	evictBytes = int64(f)
	return evictBytes
}

// suppressed shows the marker escape hatch for a deliberate truncation.
func suppressed(n int, frac float64) int64 {
	//lint:cycleint deliberate truncation toward zero, validated by test
	totalBytes := int64(frac * float64(n))
	return totalBytes
}

// scaled returns a truncated float product: the truncation fact detflow
// derives for it travels to every counter assignment below.
func scaled(n int, frac float64) int64 {
	return int64(frac * float64(n))
}

// rescaled forwards scaled's truncation through a bare return call.
func rescaled(n int, frac float64) int64 {
	return scaled(n, frac)
}

// viaHelper assigns a counter from a helper that returns truncated float
// arithmetic: flagged transitively through the call graph.
func viaHelper(n int, frac float64) int64 {
	var dmaCycles int64
	dmaCycles = scaled(n, frac) // want `dmaCycles is assigned from scaled, which returns truncated float arithmetic`
	return dmaCycles
}

// viaDeepHelper follows a two-hop return chain.
func viaDeepHelper(n int, frac float64) int64 {
	var stallCycles int64
	stallCycles = rescaled(n, frac) // want `stallCycles is assigned from rescaled, which returns truncated float arithmetic`
	return stallCycles
}

// viaRounded assigns from a helper that rounds explicitly: clean.
func viaRounded(f float64) int64 {
	var readBytes int64
	readBytes = rounded(f)
	return readBytes
}

// rounded makes its rounding explicit.
func rounded(f float64) int64 {
	return int64(math.Round(f * 2))
}
