package lint_test

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"igosim/internal/lint"
	"igosim/internal/lint/analysis"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteSARIFGolden pins the SARIF artifact byte for byte: rules in
// roster order plus the synthetic stalemarker rule, results in input order,
// URIs relative to the root and forward-slashed.
func TestWriteSARIFGolden(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("work", "igosim")
	findings := []analysis.Finding{
		{
			Analyzer: "detflow",
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "sim", "sim.go"), Line: 12, Column: 3},
			Message:  "cycle-domain function sim.Step reaches wall-clock: sim.Step → runner.tick → time.Now (runner.go:42)",
		},
		{
			Analyzer: "stalemarker",
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "runner", "runner.go"), Line: 7, Column: 1},
			Message:  "stale //lint:detmap marker: it suppresses no detmap diagnostic; delete it",
		},
		{
			Analyzer: "wallclock",
			Pos:      token.Position{Filename: filepath.Join("elsewhere", "x.go"), Line: 1, Column: 1},
			Message:  "a finding outside root keeps its original path",
		},
	}

	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, lint.All(), findings, root); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	golden := filepath.Join("testdata", "sarif.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output differs from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestWriteSARIFEmpty keeps the no-findings artifact well-formed: results
// must encode as [], not null.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, lint.All(), nil, "/work"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"results": null`)) {
		t.Errorf("empty findings encoded as null results:\n%s", buf.Bytes())
	}
}
