// Package ctrregtest is the ctrreg fixture: package-level counters must be
// constructed through stats.NewCacheCounters so the process-wide registry
// can reset them.
package ctrregtest

import "igosim/internal/stats"

var registered = stats.NewCacheCounters("good")

var literal = &stats.CacheCounters{} // want `stats\.CacheCounters composite literal bypasses registration`

var viaNew = new(stats.CacheCounters) // want `new\(stats\.CacheCounters\) bypasses registration`

var zero stats.CacheCounters // want `zero-value stats\.CacheCounters is never registered`

// nilPtr stays nil until something constructs it properly.
var nilPtr *stats.CacheCounters

type cache struct {
	counters *stats.CacheCounters
	name     string
}

var wrapped = cache{counters: &stats.CacheCounters{}, name: "bad"} // want `stats\.CacheCounters composite literal bypasses registration`

var wrappedGood = cache{counters: stats.NewCacheCounters("ok"), name: "good"}

// localIsFine: function-scope construction is the constructor's problem,
// not the package registry's.
func localIsFine() stats.CacheSnapshot {
	c := stats.NewCacheCounters("local")
	c.Hit()
	return c.Snapshot()
}
