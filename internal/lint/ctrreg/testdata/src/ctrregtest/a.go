// Package ctrregtest is the ctrreg fixture: package-level counters must be
// constructed through stats.NewCacheCounters (and metrics through the
// metrics constructors) so the process-wide registries can reset them.
package ctrregtest

import (
	"igosim/internal/metrics"
	"igosim/internal/stats"
)

var registered = stats.NewCacheCounters("good")

var literal = &stats.CacheCounters{} // want `stats\.CacheCounters composite literal bypasses registration`

var viaNew = new(stats.CacheCounters) // want `new\(stats\.CacheCounters\) bypasses registration`

var zero stats.CacheCounters // want `zero-value stats\.CacheCounters is never registered`

// nilPtr stays nil until something constructs it properly.
var nilPtr *stats.CacheCounters

type cache struct {
	counters *stats.CacheCounters
	name     string
}

var wrapped = cache{counters: &stats.CacheCounters{}, name: "bad"} // want `stats\.CacheCounters composite literal bypasses registration`

var wrappedGood = cache{counters: stats.NewCacheCounters("ok"), name: "good"}

// localIsFine: function-scope construction is the constructor's problem,
// not the package registry's.
func localIsFine() stats.CacheSnapshot {
	c := stats.NewCacheCounters("local")
	c.Hit()
	return c.Snapshot()
}

// Metrics registry types follow the same rule.

var goodCounter = metrics.NewCounter("ctrregtest_good_total", "registered", metrics.Wall)

var badCounter = &metrics.Counter{} // want `metrics\.Counter composite literal bypasses registration`

var badGauge = new(metrics.Gauge) // want `new\(metrics\.Gauge\) bypasses registration`

var badHist metrics.Histogram // want `zero-value metrics\.Histogram is never registered`

var badVec = metrics.CounterVec{} // want `metrics\.CounterVec composite literal bypasses registration`

// nilCounter stays nil until something constructs it properly.
var nilCounter *metrics.Counter
