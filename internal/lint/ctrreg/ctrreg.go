// Package ctrreg keeps the stats counter registry complete: every
// stats.CacheCounters constructed at package level must come from
// stats.NewCacheCounters, which registers it so igo.ResetCaches /
// stats.ResetAllCacheCounters can zero it between runs. A counter built
// with a composite literal (or new, or declared as a zero value) never
// registers, so back-to-back experiment runs silently mix its hit/miss
// totals — the kind of cross-run contamination the parallel golden tests
// cannot see because it only skews the observability report.
package ctrreg

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"igosim/internal/lint/analysis"
)

// Analyzer is the ctrreg check.
var Analyzer = &analysis.Analyzer{
	Name: "ctrreg",
	Doc: "package-level stats.CacheCounters must be constructed with " +
		"stats.NewCacheCounters so ResetAllCacheCounters can zero them",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if p := pass.Pkg.Path(); p == "internal/stats" || strings.HasSuffix(p, "/internal/stats") {
		return nil // the constructor's own package builds the literal
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 0 {
					// Zero-value declaration: a value-typed counter is live
					// and unregistered; a nil pointer is just nil.
					if vs.Type != nil && isCacheCounters(pass.TypesInfo.TypeOf(vs.Type)) {
						pass.Reportf(vs.Pos(), "zero-value stats.CacheCounters is never registered; construct with stats.NewCacheCounters so ResetAllCacheCounters can zero it")
					}
					continue
				}
				for _, v := range vs.Values {
					checkInit(pass, v)
				}
			}
		}
	}
	return nil
}

// checkInit walks a package-level initializer for counter constructions
// that bypass registration.
func checkInit(pass *analysis.Pass, expr ast.Expr) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if isCacheCounters(pass.TypesInfo.TypeOf(n)) {
				pass.Reportf(n.Pos(), "stats.CacheCounters composite literal bypasses registration; use stats.NewCacheCounters so ResetAllCacheCounters can zero it")
				return false
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "new" && len(n.Args) == 1 {
					if isCacheCounters(pass.TypesInfo.TypeOf(n.Args[0])) {
						pass.Reportf(n.Pos(), "new(stats.CacheCounters) bypasses registration; use stats.NewCacheCounters so ResetAllCacheCounters can zero it")
						return false
					}
				}
			}
		}
		return true
	})
}

// isCacheCounters reports whether t is exactly stats.CacheCounters. A
// *CacheCounters is deliberately not matched: a nil pointer declaration is
// inert, while a value-typed zero counter is live and unregistered.
func isCacheCounters(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "CacheCounters" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/stats" || strings.HasSuffix(path, "/internal/stats")
}
