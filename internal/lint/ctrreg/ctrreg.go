// Package ctrreg keeps the observability registries complete: every
// stats.CacheCounters constructed at package level must come from
// stats.NewCacheCounters, which registers it so igo.ResetCaches /
// stats.ResetAllCacheCounters can zero it between runs, and every
// metrics.Counter / Gauge / Histogram / CounterVec must come from the
// metrics constructors, which register it in the process-wide registry so
// it appears in run manifests and exposition and resets with
// metrics.Reset. A metric built with a composite literal (or new, or
// declared as a zero value) never registers, so back-to-back experiment
// runs silently mix its totals — the kind of cross-run contamination the
// parallel golden tests cannot see because it only skews the observability
// report.
package ctrreg

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"igosim/internal/lint/analysis"
)

// Analyzer is the ctrreg check.
var Analyzer = &analysis.Analyzer{
	Name: "ctrreg",
	Doc: "package-level stats.CacheCounters and metrics.Counter/Gauge/Histogram/CounterVec " +
		"must be built via their registering constructors",
	Run: run,
}

// watched maps defining-package suffix to the registered type names whose
// bare construction bypasses registration.
var watched = map[string]map[string]bool{
	"internal/stats":   {"CacheCounters": true},
	"internal/metrics": {"Counter": true, "Gauge": true, "Histogram": true, "CounterVec": true},
}

func run(pass *analysis.Pass) error {
	// The constructors' own packages build the literals.
	p := pass.Pkg.Path()
	for pkg := range watched {
		if p == pkg || strings.HasSuffix(p, "/"+pkg) {
			return nil
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 0 {
					// Zero-value declaration: a value-typed counter is live
					// and unregistered; a nil pointer is just nil.
					if vs.Type != nil {
						if name := watchedType(pass.TypesInfo.TypeOf(vs.Type)); name != "" {
							pass.Reportf(vs.Pos(), "zero-value %s is never registered; construct with its registering constructor so resets and manifests see it", name)
						}
					}
					continue
				}
				for _, v := range vs.Values {
					checkInit(pass, v)
				}
			}
		}
	}
	return nil
}

// checkInit walks a package-level initializer for counter constructions
// that bypass registration.
func checkInit(pass *analysis.Pass, expr ast.Expr) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if name := watchedType(pass.TypesInfo.TypeOf(n)); name != "" {
				pass.Reportf(n.Pos(), "%s composite literal bypasses registration; use its registering constructor so resets and manifests see it", name)
				return false
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "new" && len(n.Args) == 1 {
					if name := watchedType(pass.TypesInfo.TypeOf(n.Args[0])); name != "" {
						pass.Reportf(n.Pos(), "new(%s) bypasses registration; use its registering constructor so resets and manifests see it", name)
						return false
					}
				}
			}
		}
		return true
	})
}

// watchedType reports the qualified name ("stats.CacheCounters",
// "metrics.Counter", ...) when t is exactly one of the registered counter
// types, or "" otherwise. A pointer type is deliberately not matched: a nil
// pointer declaration is inert, while a value-typed zero counter is live
// and unregistered.
func watchedType(t types.Type) string {
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	for pkg, names := range watched {
		if (path == pkg || strings.HasSuffix(path, "/"+pkg)) && names[obj.Name()] {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return ""
}
