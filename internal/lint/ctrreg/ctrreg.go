// Package ctrreg keeps the observability registries complete: every
// counter type whose declaration carries a `//lint:registered` annotation
// (stats.CacheCounters, metrics.Counter/Gauge/Histogram/CounterVec) must
// be constructed through its registering constructor. A metric built with
// a composite literal (or new, or declared as a zero value) never
// registers, so back-to-back experiment runs silently mix its totals — the
// kind of cross-run contamination the parallel golden tests cannot see
// because it only skews the observability report.
//
// There is no hardcoded type list: the defining package annotates the type
// declaration, and the analyzer discovers the set from the whole-program
// view. Inside the defining package itself the check is off — that is
// where the constructors build the literals.
package ctrreg

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"igosim/internal/lint/analysis"
	"igosim/internal/lint/loader"
)

// Analyzer is the ctrreg check.
var Analyzer = &analysis.Analyzer{
	Name: "ctrreg",
	Doc: "types annotated //lint:registered (stats.CacheCounters, metrics.Counter/...) " +
		"must be built via their registering constructors outside their defining package",
	Run: run,
}

func run(pass *analysis.Pass) error {
	watched := registeredTypes(pass.Prog)
	if len(watched) == 0 {
		return nil
	}
	watchedType := func(t types.Type) string {
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		obj := named.Obj()
		// The constructors' own package builds the literals.
		if !watched[obj] || obj.Pkg() == pass.Pkg {
			return ""
		}
		return obj.Pkg().Name() + "." + obj.Name()
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 0 {
					// Zero-value declaration: a value-typed counter is live
					// and unregistered; a nil pointer is just nil.
					if vs.Type != nil {
						if name := watchedType(pass.TypesInfo.TypeOf(vs.Type)); name != "" {
							pass.Reportf(vs.Pos(), "zero-value %s is never registered; construct with its registering constructor so resets and manifests see it", name)
						}
					}
					continue
				}
				for _, v := range vs.Values {
					checkInit(pass, v, watchedType)
				}
			}
		}
	}
	return nil
}

// checkInit walks a package-level initializer for counter constructions
// that bypass registration.
func checkInit(pass *analysis.Pass, expr ast.Expr, watchedType func(types.Type) string) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if name := watchedType(pass.TypesInfo.TypeOf(n)); name != "" {
				pass.Reportf(n.Pos(), "%s composite literal bypasses registration; use its registering constructor so resets and manifests see it", name)
				return false
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "new" && len(n.Args) == 1 {
					if name := watchedType(pass.TypesInfo.TypeOf(n.Args[0])); name != "" {
						pass.Reportf(n.Pos(), "new(%s) bypasses registration; use its registering constructor so resets and manifests see it", name)
						return false
					}
				}
			}
		}
		return true
	})
}

// registeredTypes scans the whole program for type declarations annotated
// `//lint:registered` (on the declaration line, the line above, or the doc
// comment) and returns their type objects. Nil-safe: a bare
// single-package run without a Program yields the empty set.
func registeredTypes(prog *loader.Program) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, pkg := range prog.Packages() {
		for _, file := range pkg.Files {
			marks := registeredLines(pkg.Fset, file)
			if len(marks) == 0 {
				continue
			}
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !specAnnotated(pkg.Fset, marks, gd, ts) {
						continue
					}
					if obj := pkg.Info.Defs[ts.Name]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
	}
	return out
}

// registeredLines returns the line numbers of //lint:registered comments.
func registeredLines(fset *token.FileSet, file *ast.File) map[int]bool {
	var lines map[int]bool
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if text == "lint:registered" || strings.HasPrefix(text, "lint:registered ") {
				if lines == nil {
					lines = make(map[int]bool)
				}
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// specAnnotated reports whether the type spec (or its enclosing
// declaration's doc comment) carries a registered annotation.
func specAnnotated(fset *token.FileSet, marks map[int]bool, gd *ast.GenDecl, ts *ast.TypeSpec) bool {
	line := fset.Position(ts.Pos()).Line
	if marks[line] || marks[line-1] {
		return true
	}
	for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc} {
		if doc == nil {
			continue
		}
		start := fset.Position(doc.Pos()).Line
		end := fset.Position(doc.End()).Line
		for l := start; l <= end; l++ {
			if marks[l] {
				return true
			}
		}
	}
	return false
}
