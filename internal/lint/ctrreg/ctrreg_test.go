package ctrreg_test

import (
	"testing"

	"igosim/internal/lint/analysistest"
	"igosim/internal/lint/ctrreg"
)

func TestCtrreg(t *testing.T) {
	analysistest.Run(t, "testdata", ctrreg.Analyzer, "ctrregtest")
}
