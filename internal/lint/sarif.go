package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"igosim/internal/lint/analysis"
)

// SARIF 2.1.0 output, the minimal subset CI artifact viewers consume: one
// run, one rule per analyzer, one result per finding. Everything is
// emitted in deterministic order (rules in roster order, results in the
// driver's position-sorted order), so the artifact is byte-stable for a
// given tree — the same property the run manifests guarantee.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF emits the findings as a SARIF 2.1.0 log. File paths are
// rewritten relative to root (forward-slashed) so the artifact is
// machine-independent.
func WriteSARIF(w io.Writer, analyzers []*analysis.Analyzer, findings []analysis.Finding, root string) error {
	driver := sarifDriver{Name: "igolint"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// The stale-marker check is framework-level, not an Analyzer, but its
	// findings carry its name; give it a rule entry so every result's
	// ruleId resolves.
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               "stalemarker",
		ShortDescription: sarifMessage{Text: "a //lint: suppression marker that suppresses no diagnostic must be deleted"},
	})

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	})
}
