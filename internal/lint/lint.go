// Package lint assembles the igolint analyzer suite: eight
// go/analysis-style checks that prove the simulator's determinism and
// zero-overhead invariants at compile time (see DESIGN.md §3e and §3j).
// The cmd/igolint driver runs All() over the module; each analyzer also
// ships an analysistest-based unit suite so plain `go test ./...`
// exercises the checks themselves.
package lint

import (
	"igosim/internal/lint/analysis"
	"igosim/internal/lint/ctrreg"
	"igosim/internal/lint/cycleint"
	"igosim/internal/lint/detflow"
	"igosim/internal/lint/detmap"
	"igosim/internal/lint/hotalloc"
	"igosim/internal/lint/nilguard"
	"igosim/internal/lint/spanpair"
	"igosim/internal/lint/wallclock"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctrreg.Analyzer,
		cycleint.Analyzer,
		detflow.Analyzer,
		detmap.Analyzer,
		hotalloc.Analyzer,
		nilguard.Analyzer,
		spanpair.Analyzer,
		wallclock.Analyzer,
	}
}
