// Package spanpair pairs trace span openers with closers inside each
// function: every Begin*/Push* method call must have a matching End*/Pop*
// on the same receiver, and unless the closer is deferred, no return may
// sit between the opener and its closer. An unbalanced span corrupts the
// trace's stall-attribution reconciliation (trace.Sink.Check) silently —
// the span stays open, its duration absorbs everything after it, and the
// per-track cycle identity still "adds up".
//
// Matching is by name suffix and receiver expression: s.BeginCompute pairs
// with s.EndCompute, st.PushPhase with st.PopPhase. Prefixes only count
// when followed by an upper-case rune or nothing, so Populate/Ended-style
// names never match. The check is intra-procedural and linear by design:
// a span opened in one function and closed in another needs either a
// `defer`-based API or a `//lint:spanpair` marker explaining the transfer
// of ownership.
package spanpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"

	"igosim/internal/lint/analysis"
)

// Analyzer is the spanpair check.
var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc: "every Begin*/Push* trace span must have a matching End*/Pop* on the same " +
		"receiver, deferred or before every return",
	Run: run,
}

// spanCall is one opener or closer occurrence within a function.
type spanCall struct {
	key      string // pair kind + suffix + receiver, e.g. "begin/Compute/s"
	name     string // method name as written
	pos      token.Pos
	deferred bool
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// splitSpan classifies a method name as an opener or closer and returns
// the pair key root and suffix. ok is false for non-span names.
func splitSpan(name string) (kind, suffix string, open, ok bool) {
	for _, p := range [4]struct {
		prefix, kind string
		open         bool
	}{
		{"Begin", "begin", true}, {"End", "begin", false},
		{"Push", "push", true}, {"Pop", "push", false},
	} {
		rest, found := strings.CutPrefix(name, p.prefix)
		if !found {
			continue
		}
		if rest != "" {
			r, _ := utf8.DecodeRuneInString(rest)
			if !unicode.IsUpper(r) {
				continue // Populate, Endless, Pushy, ...
			}
		}
		return p.kind, rest, p.open, true
	}
	return "", "", false, false
}

// checkFunc scans one function body (excluding nested function literals,
// which are checked separately) for span calls and returns.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var opens, closes []spanCall
	var returns []token.Pos

	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				// A nested literal is its own scope (checked by run) —
				// except under defer, where its body runs on every return
				// path and so counts as deferred closers.
				return deferred
			case *ast.DeferStmt:
				// defer s.End(...) — or defer func() { s.End(...) }().
				walk(m.Call, true)
				return false
			case *ast.ReturnStmt:
				if !deferred {
					returns = append(returns, m.Pos())
				}
			case *ast.CallExpr:
				sel, ok := m.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				kind, suffix, open, ok := splitSpan(sel.Sel.Name)
				if !ok {
					return true
				}
				c := spanCall{
					key:      kind + "/" + suffix + "/" + types.ExprString(sel.X),
					name:     sel.Sel.Name,
					pos:      m.Pos(),
					deferred: deferred,
				}
				if open {
					opens = append(opens, c)
				} else {
					closes = append(closes, c)
				}
			}
			return true
		})
	}
	walk(body, false)

	for _, o := range opens {
		var matched []spanCall
		for _, c := range closes {
			if c.key == o.key {
				matched = append(matched, c)
			}
		}
		if len(matched) == 0 {
			pass.Reportf(o.pos, "%s has no matching %s in this function; close the span on every path (defer it) or mark the ownership transfer with //lint:spanpair", o.name, closerName(o.name))
			continue
		}
		deferred := false
		last := matched[0]
		for _, c := range matched {
			if c.deferred {
				deferred = true
			}
			if c.pos > last.pos {
				last = c
			}
		}
		if deferred {
			continue
		}
		for _, r := range returns {
			if r > o.pos && r < last.pos {
				pass.Reportf(r, "return between %s and its %s leaves the span open; defer the %s or close before returning", o.name, last.name, last.name)
				break
			}
		}
	}
}

// closerName maps an opener method name to its expected closer.
func closerName(open string) string {
	if rest, ok := strings.CutPrefix(open, "Begin"); ok {
		return "End" + rest
	}
	return "Pop" + strings.TrimPrefix(open, "Push")
}
