// Package spanpairtest is the spanpair fixture: Begin/End and Push/Pop
// method pairs must balance within a function, with deferred closers
// covering every return path.
package spanpairtest

type span struct{}

func (s *span) BeginCompute()      {}
func (s *span) EndCompute()        {}
func (s *span) BeginDMA()          {}
func (s *span) EndDMA()            {}
func (s *span) PushPhase(n string) {}
func (s *span) PopPhase()          {}
func (s *span) Populate()          {}
func (s *span) Ended() bool        { return true }

func balanced(s *span) {
	s.BeginCompute()
	s.EndCompute()
}

func deferredClose(s *span, err error) error {
	s.BeginCompute()
	defer s.EndCompute()
	if err != nil {
		return err // covered by the deferred closer
	}
	return nil
}

func deferredLiteral(s *span, err error) error {
	s.BeginCompute()
	defer func() { s.EndCompute() }()
	if err != nil {
		return err
	}
	return nil
}

func missingEnd(s *span) {
	s.BeginCompute() // want `BeginCompute has no matching EndCompute`
}

func earlyReturn(s *span, err error) error {
	s.BeginDMA()
	if err != nil {
		return err // want `return between BeginDMA and its EndDMA leaves the span open`
	}
	s.EndDMA()
	return nil
}

func pushPop(s *span) {
	s.PushPhase("fwd")
	s.PopPhase()
}

func pushNoPop(s *span) {
	s.PushPhase("bwd") // want `PushPhase has no matching PopPhase`
}

// prefixesNeedUppercaseSuffix: Populate is not Pop+ulate, Ended is not
// End+ed.
func prefixesNeedUppercaseSuffix(s *span) bool {
	s.Populate()
	return s.Ended()
}

func mismatchedReceiver(a, b *span) {
	a.BeginCompute() // want `BeginCompute has no matching EndCompute`
	b.EndCompute()
}

// suppressed transfers span ownership to a returned closure — the marker
// documents the intra-procedural analysis limit.
func suppressed(s *span) func() {
	s.BeginCompute() //lint:spanpair closed by the returned stop function
	return func() { s.EndCompute() }
}
