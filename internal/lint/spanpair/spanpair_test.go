package spanpair_test

import (
	"testing"

	"igosim/internal/lint/analysistest"
	"igosim/internal/lint/spanpair"
)

func TestSpanpair(t *testing.T) {
	analysistest.Run(t, "testdata", spanpair.Analyzer, "spanpairtest")
}
