// Package detmaptest is the detmap analyzer fixture: map-range loops with
// order-dependent effects must be flagged; order-insensitive or explicitly
// sorted loops must not.
package detmaptest

import (
	"fmt"
	"sort"
	"strings"
)

func emitUnsorted(m map[string]int) {
	for k, v := range m { // want `map iteration order reaches output via fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func errUnsorted(m map[string]int) error {
	for k := range m { // want `map iteration order reaches output via fmt\.Errorf`
		if k == "" {
			return fmt.Errorf("empty key in map of %d entries", len(m))
		}
	}
	return nil
}

func writeUnsorted(m map[string]int, b *strings.Builder) {
	for k := range m { // want `map iteration order reaches output via method WriteString`
		b.WriteString(k)
	}
}

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration appends to keys in nondeterministic order`
		keys = append(keys, k)
	}
	return keys
}

// sortedKeysPattern mirrors stats.SortedKeys: append then sort is the
// sanctioned way to turn a map into a deterministic sequence.
func sortedKeysPattern(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sumOnly is order-insensitive: accumulation commutes.
func sumOnly(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// viaSorted emits from a slice, not a map: the loop the fix produces.
func viaSorted(m map[string]int) {
	for _, k := range sortedKeysPattern(m) {
		fmt.Println(k, m[k])
	}
}

// suppressed shows the marker escape hatch.
func suppressed(m map[string]int) {
	//lint:detmap fixture demonstrating the escape hatch
	for k := range m {
		fmt.Println(k)
	}
}

// loopLocal appends to a slice scoped inside the loop body: each
// iteration's slice dies with the iteration, so order cannot leak.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// logEntry prints through one level of indirection.
func logEntry(k string, v int) {
	fmt.Println(k, v)
}

// logDeep prints through two levels.
func logDeep(k string, v int) {
	logEntry(k, v)
}

// viaHelper emits through a helper call: the whole-program call graph
// proves the helper transitively prints.
func viaHelper(m map[string]int) {
	for k, v := range m { // want `map iteration order reaches output via call to logEntry, which transitively prints`
		logEntry(k, v)
	}
}

// viaDeepHelper emits through two helper hops.
func viaDeepHelper(m map[string]int) {
	for k, v := range m { // want `map iteration order reaches output via call to logDeep, which transitively prints`
		logDeep(k, v)
	}
}

// viaPureHelper calls a helper that never prints: clean.
func viaPureHelper(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += double(v)
	}
	return n
}

// double is a pure helper.
func double(v int) int { return 2 * v }
