// Package detmap flags `range` loops over maps whose bodies have
// order-dependent effects: printing/formatting (including fmt.Errorf — the
// chosen error then depends on iteration order) or appending to a slice
// declared outside the loop. Go randomises map iteration order, so any
// such loop makes reports, figures and error messages nondeterministic —
// exactly the silent nondeterminism the simulator's byte-identical golden
// tests exist to prevent.
//
// Two escapes keep legitimate code clean:
//
//   - range over a sorted key slice instead (stats.SortedKeys or any
//     explicit sort) — the loop no longer ranges over a map at all;
//   - appending to an outer slice is allowed when the same function later
//     sorts that slice (the stats.SortedKeys implementation pattern).
//
// Order-insensitive bodies (summing, counting, building another map) are
// never flagged.
//
// The emission check is transitive: a map-range body that calls a helper
// which (through any chain of calls, per the detflow call graph) reaches a
// fmt stream printer leaks iteration order into output just as surely as
// printing inline, and is flagged the same way.
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"

	"igosim/internal/lint/analysis"
	"igosim/internal/lint/detflow"
)

// Analyzer is the detmap check.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc: "flags map-range loops that print, format errors, or append to outer slices " +
		"without a later sort; iterate stats.SortedKeys(m) or sort explicitly",
	Run: run,
}

// emitMethods are writer/report method names that serialise output.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "AddRowF": true,
}

// fmtEmitters are fmt functions whose call order shapes observable output.
var fmtEmitters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Errorf": true,
}

func run(pass *analysis.Pass) error {
	g := detflow.For(pass.Prog)
	for _, file := range pass.Files {
		// Map each function body to its node so a range statement can find
		// the enclosing function for the sort-after-append escape.
		var funcBodies []*ast.BlockStmt
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					funcBodies = append(funcBodies, fn.Body)
				}
			case *ast.FuncLit:
				funcBodies = append(funcBodies, fn.Body)
			}
			return true
		})

		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, g, rs, enclosingBody(funcBodies, rs))
			return true
		})
	}
	return nil
}

// enclosingBody returns the innermost function body containing n.
func enclosingBody(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || (best.Pos() <= b.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}

func checkMapRange(pass *analysis.Pass, g *detflow.Graph, rs *ast.RangeStmt, fn *ast.BlockStmt) {
	var appendTargets []types.Object
	reported := false
	report := func(pos token.Pos, what string) {
		if !reported {
			pass.Reportf(rs.For, "map iteration order reaches output via %s; range over sorted keys (e.g. stats.SortedKeys) instead", what)
			reported = true
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && obj.Name() == "append" && len(call.Args) > 0 {
				if obj := outerObject(pass, call.Args[0], rs); obj != nil {
					appendTargets = append(appendTargets, obj)
				}
			}
			if obj, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok && g.EmitsAll(obj) {
				report(call.Pos(), "call to "+obj.Name()+", which transitively prints")
			}
		case *ast.SelectorExpr:
			if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
				if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && fmtEmitters[obj.Name()] {
					report(call.Pos(), "fmt."+obj.Name())
					return true
				}
				if g.EmitsAll(obj) {
					report(call.Pos(), "call to "+obj.Name()+", which transitively prints")
					return true
				}
			}
			if sel := pass.TypesInfo.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal && emitMethods[fun.Sel.Name] {
				report(call.Pos(), "method "+fun.Sel.Name)
			}
		}
		return true
	})
	if reported {
		return
	}

	// Appending to an outer slice is nondeterministic unless the function
	// sorts that slice after the loop.
	for _, obj := range appendTargets {
		if fn == nil || !sortedAfter(pass, fn, rs, obj) {
			pass.Reportf(rs.For, "map iteration appends to %s in nondeterministic order; sort it afterwards or range over sorted keys", obj.Name())
			return
		}
	}
}

// outerObject resolves expr to a variable declared outside the range
// statement (an identifier or the base of a selector), or nil.
func outerObject(pass *analysis.Pass, expr ast.Expr, rs *ast.RangeStmt) types.Object {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil || obj.Pos() == token.NoPos {
		return nil
	}
	if rs.Pos() <= obj.Pos() && obj.Pos() <= rs.End() {
		return nil // loop-local accumulator: scoped to this iteration set
	}
	return obj
}

// sortFuncs are sort/slices functions that impose a total order.
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true,
}

// sortedAfter reports whether fn contains, after the range statement, a
// sort.*/slices.* call referencing obj.
func sortedAfter(pass *analysis.Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		cf, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || cf.Pkg() == nil || !sortFuncs[cf.Name()] {
			return true
		}
		if p := cf.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			refs := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					refs = true
				}
				return !refs
			})
			if refs {
				found = true
				break
			}
		}
		return true
	})
	return found
}
