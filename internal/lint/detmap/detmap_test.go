package detmap_test

import (
	"testing"

	"igosim/internal/lint/analysistest"
	"igosim/internal/lint/detmap"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, "testdata", detmap.Analyzer, "detmaptest")
}
