package lint_test

import (
	"testing"

	"igosim/internal/lint"
)

// TestSuiteShape pins the analyzer roster: eight distinct, documented,
// runnable checks. A rename or accidental drop fails here before the
// Makefile's lint target can silently thin out.
func TestSuiteShape(t *testing.T) {
	all := lint.All()
	if len(all) != 8 {
		t.Fatalf("lint.All() has %d analyzers, want 8", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"detmap", "detflow", "wallclock", "cycleint", "hotalloc", "nilguard", "spanpair", "ctrreg"} {
		if !seen[want] {
			t.Errorf("analyzer %q missing from lint.All()", want)
		}
	}
}
