// Package nilguardtest checks the //lint:sink registration marker: a type
// outside internal/trace opts into the nil-guard contract via its doc
// comment, and unmarked types stay unconstrained.
package nilguardtest

// Buffered is a sink-like collector registered for nil-guard checking.
//
//lint:sink nil Buffered must be the disabled collector
type Buffered struct{ n int }

// Add forgets the guard.
func (b *Buffered) Add(v int) { // want `\(\*Buffered\)\.Add must begin with the .if b == nil. fast-path return`
	b.n += v
}

// Guarded complies.
func (b *Buffered) Guarded(v int) {
	if b == nil {
		return
	}
	b.n += v
}

// Plain never opted in: no constraint.
type Plain struct{ n int }

func (p *Plain) Add(v int) { p.n += v }
