// Package nilguardtest checks the //lint:sink registration marker: a type
// outside internal/trace opts into the nil-guard contract via its doc
// comment, and unmarked types stay unconstrained.
package nilguardtest

// Buffered is a sink-like collector registered for nil-guard checking.
//
//lint:sink nil Buffered must be the disabled collector
type Buffered struct{ n int }

// Add forgets the guard.
func (b *Buffered) Add(v int) { // want `\(\*Buffered\)\.Add must begin with the .if b == nil. fast-path return`
	b.n += v
}

// Guarded complies.
func (b *Buffered) Guarded(v int) {
	if b == nil {
		return
	}
	b.n += v
}

// Plain never opted in: no constraint.
type Plain struct{ n int }

func (p *Plain) Add(v int) { p.n += v }

// Notifier exercises the //lint:guardedcall rule on an optional callback
// field, mirroring spm.Buffer.OnChange.
type Notifier struct {
	n int

	// OnEvent fires after every bump when set.
	//
	//lint:guardedcall nil OnEvent means notifications are off
	OnEvent func(v int)

	// Hook never opted in: calls through it are unconstrained.
	Hook func()
}

// BumpInline guards the call lexically: ok.
func (x *Notifier) BumpInline() {
	x.n++
	if x.OnEvent != nil {
		x.OnEvent(x.n)
	}
}

// notify uses the early-return fast path — the helper shape the rule is
// designed to bless.
func (x *Notifier) notify(v int) {
	if x.OnEvent == nil {
		return
	}
	x.OnEvent(v)
}

// BumpChain guards inside an && chain: ok.
func (x *Notifier) BumpChain(loud bool) {
	if loud && x.OnEvent != nil {
		x.OnEvent(x.n)
	}
}

// BumpUnguarded forgets the nil check.
func (x *Notifier) BumpUnguarded() {
	x.n++
	x.OnEvent(x.n) // want `call to guarded callback x\.OnEvent must sit behind an .if x\.OnEvent != nil. check`
}

// BumpCross guards the wrong receiver's field: the guard on a.OnEvent must
// not license the call through b.OnEvent.
func BumpCross(a, b *Notifier) {
	if a.OnEvent != nil {
		b.OnEvent(1) // want `call to guarded callback b\.OnEvent must sit behind`
	}
}

// BumpHook calls the unmarked callback with no guard: no constraint.
func (x *Notifier) BumpHook() { x.Hook() }
