// Package trace is the nilguard fixture for the real sink types: every
// exported pointer-receiver method on Sink and Track must open with the
// nil fast path that makes a nil sink the zero-overhead disabled tracer.
package trace

type Sink struct {
	events []int
}

// Emit shows the canonical guard.
func (s *Sink) Emit(v int) {
	if s == nil {
		return
	}
	s.events = append(s.events, v)
}

// EmitIf shows the guard inside an || chain.
func (s *Sink) EmitIf(v int, ok bool) {
	if s == nil || !ok {
		return
	}
	s.events = append(s.events, v)
}

// Enabled is a single return with no field reads: nil-safe by
// construction.
func (s *Sink) Enabled() bool { return s != nil }

// Count reads a field with no guard.
func (s *Sink) Count() int { // want `\(\*Sink\)\.Count must begin with the .if s == nil. fast-path return`
	return len(s.events)
}

// Flush guards too late: the first statement already ran on a nil sink.
func (s *Sink) Flush() { // want `\(\*Sink\)\.Flush must begin with the .if s == nil. fast-path return`
	n := len(s.events)
	if s == nil {
		return
	}
	s.events = s.events[:0]
	_ = n
}

// unexported methods are behind the guard already; the contract covers the
// exported surface.
func (s *Sink) grow() { s.events = append(s.events, 0) }

type Track struct{ n int }

// Add forgets the guard on the second sink type.
func (t *Track) Add(v int) { // want `\(\*Track\)\.Add must begin with the .if t == nil. fast-path return`
	t.n += v
}

// Reset is guarded.
func (t *Track) Reset() {
	if t == nil {
		return
	}
	t.n = 0
}

// Snapshot has a value receiver: a nil pointer can never reach it.
type Snapshot struct{ n int }

func (s Snapshot) N() int { return s.n }
