package nilguard_test

import (
	"testing"

	"igosim/internal/lint/analysistest"
	"igosim/internal/lint/nilguard"
)

func TestNilguard(t *testing.T) {
	analysistest.Run(t, "testdata", nilguard.Analyzer,
		"igosim/internal/trace", // Sink/Track checked by package path
		"nilguardtest",          // //lint:sink and //lint:guardedcall markers
		"igosim/internal/spm",   // real OnChange call sites stay guarded
	)
}
