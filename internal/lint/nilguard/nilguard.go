// Package nilguard enforces the trace layer's zero-overhead contract: a
// nil *trace.Sink (or *trace.Track) is the disabled tracer, so every
// exported pointer-receiver method on those types must begin with the
// `if s == nil { return ... }` fast path. A method that touches a field
// before that guard panics the instant someone runs with tracing off —
// the exact configuration the golden figure runs use.
//
// Checked types are Sink and Track in any package whose import path ends
// in internal/trace, plus any type whose declaration carries a
// `//lint:sink` marker in its doc comment (the hook for registering future
// sink-like types).
//
// Accepted method shapes:
//
//   - first statement `if s == nil { ... return }` (the condition may be
//     an || chain containing s == nil, as in `if t == nil || end <= start`);
//   - a single-return body that never reads a field of the receiver
//     (e.g. `func (s *Sink) Enabled() bool { return s != nil }` — method
//     calls are fine, nil-safe by this same contract; field reads are not).
package nilguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"igosim/internal/lint/analysis"
)

// Analyzer is the nilguard check.
var Analyzer = &analysis.Analyzer{
	Name: "nilguard",
	Doc: "exported pointer-receiver methods on trace.Sink/Track (and //lint:sink types) " +
		"must start with the `if s == nil` fast-path return",
	Run: run,
}

func run(pass *analysis.Pass) error {
	targets := targetTypes(pass)
	if len(targets) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 || !fn.Name.IsExported() {
				continue
			}
			recvType, recvName := receiver(fn)
			if recvType == "" || !targets[recvType] {
				continue
			}
			if recvName == "" {
				pass.Reportf(fn.Pos(), "exported method %s.%s discards its receiver and cannot implement the nil fast path; name the receiver and guard it", recvType, fn.Name.Name)
				continue
			}
			if fn.Body == nil || guarded(pass, fn, recvName) {
				continue
			}
			pass.Reportf(fn.Pos(), "exported method (*%s).%s must begin with the `if %s == nil` fast-path return (zero-overhead-when-disabled contract)", recvType, fn.Name.Name, recvName)
		}
	}
	return nil
}

// targetTypes returns the type names whose methods must be nil-guarded.
func targetTypes(pass *analysis.Pass) map[string]bool {
	targets := make(map[string]bool)
	path := pass.Pkg.Path()
	if path == "internal/trace" || strings.HasSuffix(path, "/internal/trace") {
		targets["Sink"] = true
		targets["Track"] = true
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, doc := range [2]*ast.CommentGroup{gd.Doc, ts.Doc} {
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						if strings.Contains(c.Text, "lint:sink") {
							targets[ts.Name.Name] = true
						}
					}
				}
			}
		}
	}
	return targets
}

// receiver extracts the pointer receiver's base type name and binding name
// ("" for value receivers, which a nil pointer can never reach).
func receiver(fn *ast.FuncDecl) (typeName, recvName string) {
	field := fn.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", ""
	}
	base := star.X
	if idx, ok := base.(*ast.IndexExpr); ok { // generic receiver
		base = idx.X
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(field.Names) == 1 && field.Names[0].Name != "_" {
		return id.Name, field.Names[0].Name
	}
	return id.Name, ""
}

// guarded reports whether the method body starts with the nil fast path or
// is a single return that never reads a receiver field.
func guarded(pass *analysis.Pass, fn *ast.FuncDecl, recvName string) bool {
	body := fn.Body.List
	if len(body) == 0 {
		return true // nothing to do is nil-safe
	}
	if ifs, ok := body[0].(*ast.IfStmt); ok && ifs.Init == nil {
		if condHasNilCheck(ifs.Cond, recvName) && endsInReturn(ifs.Body) {
			return true
		}
	}
	if len(body) == 1 {
		if ret, ok := body[0].(*ast.ReturnStmt); ok && !readsField(pass, ret, recvName) {
			return true
		}
	}
	return false
}

// condHasNilCheck reports whether cond contains `recv == nil` as an ||
// operand (checked first, so it still short-circuits for nil receivers).
func condHasNilCheck(cond ast.Expr, recvName string) bool {
	cond = ast.Unparen(cond)
	if bin, ok := cond.(*ast.BinaryExpr); ok {
		switch bin.Op {
		case token.LOR:
			return condHasNilCheck(bin.X, recvName) || condHasNilCheck(bin.Y, recvName)
		case token.EQL:
			return isIdent(bin.X, recvName) && isNil(bin.Y) || isNil(bin.X) && isIdent(bin.Y, recvName)
		}
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// endsInReturn reports whether the block's last statement is a return.
func endsInReturn(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	_, ok := block.List[len(block.List)-1].(*ast.ReturnStmt)
	return ok
}

// readsField reports whether n selects a struct field of the receiver —
// the dereference that panics on a nil pointer. Method selections are
// allowed: they dispatch without dereferencing.
func readsField(pass *analysis.Pass, n ast.Node, recvName string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		sel, ok := m.(*ast.SelectorExpr)
		if !ok || !isIdent(sel.X, recvName) {
			return true
		}
		if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			found = true
			return false
		}
		return true
	})
	return found
}
