// Package nilguard enforces the trace layer's zero-overhead contract: a
// nil *trace.Sink (or *trace.Track) is the disabled tracer, so every
// exported pointer-receiver method on those types must begin with the
// `if s == nil { return ... }` fast path. A method that touches a field
// before that guard panics the instant someone runs with tracing off —
// the exact configuration the golden figure runs use.
//
// Checked types are Sink and Track in any package whose import path ends
// in internal/trace, plus any type whose declaration carries a
// `//lint:sink` marker in its doc comment (the hook for registering future
// sink-like types).
//
// Accepted method shapes:
//
//   - first statement `if s == nil { ... return }` (the condition may be
//     an || chain containing s == nil, as in `if t == nil || end <= start`);
//   - a single-return body that never reads a field of the receiver
//     (e.g. `func (s *Sink) Enabled() bool { return s != nil }` — method
//     calls are fine, nil-safe by this same contract; field reads are not).
//
// A second rule covers optional callback fields such as spm.Buffer.OnChange:
// a function-typed struct field whose doc comment carries a
// `//lint:guardedcall` marker may only be invoked behind a nil check — either
// lexically inside `if x.Field != nil { ... }` (the condition may be an &&
// chain) or after an early-return `if x.Field == nil { return }` fast path
// earlier in the same block. The guard is matched on the full selector
// expression, so guarding a.Field does not license a call through b.Field.
// Calls are checked in the field's declaring package (the only place the
// simulator invokes its hooks); other packages merely assign them.
package nilguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"igosim/internal/lint/analysis"
)

// Analyzer is the nilguard check.
var Analyzer = &analysis.Analyzer{
	Name: "nilguard",
	Doc: "exported pointer-receiver methods on trace.Sink/Track (and //lint:sink types) " +
		"must start with the `if s == nil` fast-path return; calls through " +
		"//lint:guardedcall callback fields must sit behind a nil check",
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkSinkMethods(pass)
	checkGuardedCalls(pass)
	return nil
}

func checkSinkMethods(pass *analysis.Pass) {
	targets := targetTypes(pass)
	if len(targets) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 || !fn.Name.IsExported() {
				continue
			}
			recvType, recvName := receiver(fn)
			if recvType == "" || !targets[recvType] {
				continue
			}
			if recvName == "" {
				pass.Reportf(fn.Pos(), "exported method %s.%s discards its receiver and cannot implement the nil fast path; name the receiver and guard it", recvType, fn.Name.Name)
				continue
			}
			if fn.Body == nil || guarded(pass, fn, recvName) {
				continue
			}
			pass.Reportf(fn.Pos(), "exported method (*%s).%s must begin with the `if %s == nil` fast-path return (zero-overhead-when-disabled contract)", recvType, fn.Name.Name, recvName)
		}
	}
}

// checkGuardedCalls enforces the //lint:guardedcall contract: every call
// through a marked callback field must be dominated by a nil check on that
// exact selector expression.
func checkGuardedCalls(pass *analysis.Pass) {
	marked := markedCallbackFields(pass)
	if len(marked) == 0 {
		return
	}
	c := &callChecker{pass: pass, marked: marked}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				c.stmts(fn.Body.List, nil)
			}
		}
	}
}

// markedCallbackFields collects the function-typed struct fields whose doc
// comment carries the `//lint:guardedcall` marker.
func markedCallbackFields(pass *analysis.Pass) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if _, ok := field.Type.(*ast.FuncType); !ok {
					continue
				}
				if !hasMarker(field.Doc) && !hasMarker(field.Comment) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						marked[obj] = true
					}
				}
			}
			return true
		})
	}
	return marked
}

func hasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, "lint:guardedcall") {
			return true
		}
	}
	return false
}

// callChecker walks function bodies carrying the set of callback selector
// expressions (keyed by their printed form, e.g. "b.OnChange") currently
// proven non-nil.
type callChecker struct {
	pass   *analysis.Pass
	marked map[types.Object]bool
}

// stmts checks a statement list. An early-return `if x.F == nil { return }`
// extends the guarded set for the remainder of the same block — the shape
// of spm.Buffer.notifyChange.
func (c *callChecker) stmts(list []ast.Stmt, guarded map[string]bool) {
	guarded = cloneSet(guarded)
	for _, s := range list {
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Init == nil {
			c.walk(ifs.Cond, guarded)
			c.stmts(ifs.Body.List, withKeys(guarded, c.nilCmpKeys(ifs.Cond, token.NEQ, token.LAND)))
			if ifs.Else != nil {
				c.walk(ifs.Else, guarded)
			}
			if keys := c.nilCmpKeys(ifs.Cond, token.EQL, token.LOR); len(keys) > 0 && endsInReturn(ifs.Body) {
				for _, k := range keys {
					guarded[k] = true
				}
			}
			continue
		}
		c.walk(s, guarded)
	}
}

// walk checks an arbitrary subtree, descending into nested blocks and if
// statements with the appropriate guard extensions.
func (c *callChecker) walk(n ast.Node, guarded map[string]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.BlockStmt:
			c.stmts(v.List, guarded)
			return false
		case *ast.IfStmt:
			if v.Init != nil {
				c.walk(v.Init, guarded)
			}
			c.walk(v.Cond, guarded)
			c.stmts(v.Body.List, withKeys(guarded, c.nilCmpKeys(v.Cond, token.NEQ, token.LAND)))
			if v.Else != nil {
				c.walk(v.Else, guarded)
			}
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				if k, ok := c.fieldKey(sel); ok && !guarded[k] {
					c.pass.Reportf(v.Pos(), "call to guarded callback %s must sit behind an `if %s != nil` check or a preceding nil fast-path return", k, k)
				}
			}
			return true
		}
		return true
	})
}

// nilCmpKeys collects the marked-field selectors compared against nil with
// cmp inside a chain of the given logical operator: NEQ/&& operands prove
// the field non-nil inside the branch, EQL/|| operands prove it non-nil
// after an early-return branch.
func (c *callChecker) nilCmpKeys(cond ast.Expr, cmp, chain token.Token) []string {
	cond = ast.Unparen(cond)
	if bin, ok := cond.(*ast.BinaryExpr); ok {
		switch bin.Op {
		case chain:
			return append(c.nilCmpKeys(bin.X, cmp, chain), c.nilCmpKeys(bin.Y, cmp, chain)...)
		case cmp:
			if k, ok := c.fieldKey(bin.X); ok && isNil(bin.Y) {
				return []string{k}
			}
			if k, ok := c.fieldKey(bin.Y); ok && isNil(bin.X) {
				return []string{k}
			}
		}
	}
	return nil
}

// fieldKey resolves e to a marked callback field selection and returns its
// printed selector expression as the guard key.
func (c *callChecker) fieldKey(e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s := c.pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal || !c.marked[s.Obj()] {
		return "", false
	}
	return types.ExprString(sel), true
}

func cloneSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func withKeys(s map[string]bool, keys []string) map[string]bool {
	if len(keys) == 0 {
		return s
	}
	out := cloneSet(s)
	for _, k := range keys {
		out[k] = true
	}
	return out
}

// targetTypes returns the type names whose methods must be nil-guarded.
func targetTypes(pass *analysis.Pass) map[string]bool {
	targets := make(map[string]bool)
	path := pass.Pkg.Path()
	if path == "internal/trace" || strings.HasSuffix(path, "/internal/trace") {
		targets["Sink"] = true
		targets["Track"] = true
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, doc := range [2]*ast.CommentGroup{gd.Doc, ts.Doc} {
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						if strings.Contains(c.Text, "lint:sink") {
							targets[ts.Name.Name] = true
						}
					}
				}
			}
		}
	}
	return targets
}

// receiver extracts the pointer receiver's base type name and binding name
// ("" for value receivers, which a nil pointer can never reach).
func receiver(fn *ast.FuncDecl) (typeName, recvName string) {
	field := fn.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", ""
	}
	base := star.X
	if idx, ok := base.(*ast.IndexExpr); ok { // generic receiver
		base = idx.X
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(field.Names) == 1 && field.Names[0].Name != "_" {
		return id.Name, field.Names[0].Name
	}
	return id.Name, ""
}

// guarded reports whether the method body starts with the nil fast path or
// is a single return that never reads a receiver field.
func guarded(pass *analysis.Pass, fn *ast.FuncDecl, recvName string) bool {
	body := fn.Body.List
	if len(body) == 0 {
		return true // nothing to do is nil-safe
	}
	if ifs, ok := body[0].(*ast.IfStmt); ok && ifs.Init == nil {
		if condHasNilCheck(ifs.Cond, recvName) && endsInReturn(ifs.Body) {
			return true
		}
	}
	if len(body) == 1 {
		if ret, ok := body[0].(*ast.ReturnStmt); ok && !readsField(pass, ret, recvName) {
			return true
		}
	}
	return false
}

// condHasNilCheck reports whether cond contains `recv == nil` as an ||
// operand (checked first, so it still short-circuits for nil receivers).
func condHasNilCheck(cond ast.Expr, recvName string) bool {
	cond = ast.Unparen(cond)
	if bin, ok := cond.(*ast.BinaryExpr); ok {
		switch bin.Op {
		case token.LOR:
			return condHasNilCheck(bin.X, recvName) || condHasNilCheck(bin.Y, recvName)
		case token.EQL:
			return isIdent(bin.X, recvName) && isNil(bin.Y) || isNil(bin.X) && isIdent(bin.Y, recvName)
		}
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// endsInReturn reports whether the block's last statement is a return.
func endsInReturn(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	_, ok := block.List[len(block.List)-1].(*ast.ReturnStmt)
	return ok
}

// readsField reports whether n selects a struct field of the receiver —
// the dereference that panics on a nil pointer. Method selections are
// allowed: they dispatch without dereferencing.
func readsField(pass *analysis.Pass, n ast.Node, recvName string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		sel, ok := m.(*ast.SelectorExpr)
		if !ok || !isIdent(sel.X, recvName) {
			return true
		}
		if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			found = true
			return false
		}
		return true
	})
	return found
}
