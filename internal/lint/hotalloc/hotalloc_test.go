package hotalloc_test

import (
	"testing"

	"igosim/internal/lint/analysistest"
	"igosim/internal/lint/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer,
		"hotalloctest",             // //lint:hotpath marker semantics
		"igosim/internal/sim",      // CompiledEngine/residency hot paths stay clean
		"igosim/internal/schedule", // Compiler.Intern stays clean
		"igosim/internal/spm",      // interpreter-side buffer has no marked paths
	)
}
