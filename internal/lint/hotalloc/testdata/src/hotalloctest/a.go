// Package hotalloctest checks the //lint:hotpath marker: map indexing and
// allocation expressions inside marked functions are flagged, while
// unmarked functions, amortized append reuse, and value composite literals
// stay unconstrained.
package hotalloctest

type pair struct{ a, b int }

type table struct {
	m   map[int]int
	s   []int
	buf []int
}

// lookup runs per op: map indexing defeats the interned-ID design.
//
//lint:hotpath
func (t *table) lookup(k int) int {
	return t.m[k] // want `map index in hot-path function lookup`
}

// store writes through a map index: same violation on the LHS.
//
//lint:hotpath
func (t *table) store(k, v int) {
	t.m[k] = v // want `map index in hot-path function store`
}

// fill allocates in four distinct ways; the append into the reused buffer
// and the value composite literal are fine.
//
//lint:hotpath
func (t *table) fill(n int) {
	t.s = make([]int, n) // want `allocation \(make\) in hot-path function fill`
	p := new(int)        // want `allocation \(new\) in hot-path function fill`
	q := &pair{1, 2}     // want `allocation \(composite-literal pointer\) in hot-path function fill`
	r := []int{n}        // want `allocation \(slice literal\) in hot-path function fill`
	t.buf = append(t.buf[:0], *p, q.a, r[0])
	v := pair{1, 2} // value composite literal: no heap allocation implied
	_ = v
}

// viaClosure hides the violation inside a closure: still on the hot path.
//
//lint:hotpath
func (t *table) viaClosure(k int) int {
	get := func() int {
		return t.m[k] // want `map index in hot-path function viaClosure`
	}
	return get()
}

// cold is unmarked: anything goes.
func (t *table) cold(k int) int {
	t.m[k] = k
	return t.m[k]
}

// suppressed documents a deliberate, measured exception.
//
//lint:hotpath
func (t *table) suppressed(k int) int {
	//lint:hotalloc dominated by the DRAM model, measured cold
	return t.m[k]
}
