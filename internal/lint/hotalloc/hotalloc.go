// Package hotalloc polices the compiled execution path's zero-alloc
// contract (DESIGN.md §3g). Functions whose doc comment carries a
// `//lint:hotpath` marker run once per simulated op — the residency-table
// methods, CompiledEngine.step, the interner probe — and their speedup over
// the interpreter comes precisely from doing no map lookups and no heap
// allocations there. The analyzer flags, inside marked functions (and any
// closures they contain):
//
//   - map index expressions, reads and writes alike — hot-path state is
//     interned to dense IDs and indexed through slices;
//   - allocation expressions: make, new, slice and map literals, and
//     &T{} composite-literal pointers.
//
// Amortized growth through append into a reused buffer is deliberately not
// flagged (the pooled buffers rely on it), and neither are calls like the
// fmt.Sprintf inside panic messages — the check targets expressions that
// allocate on the happy path every op. A finding on a measured-cold line is
// suppressed with a `//lint:hotalloc <reason>` marker.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"igosim/internal/lint/analysis"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags map indexing and allocation expressions (make/new/slice/map/&T{} literals) " +
		"inside functions marked //lint:hotpath",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn.Doc) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

// isHotPath reports whether the function's doc comment carries the marker.
func isHotPath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, "lint:hotpath") {
			return true
		}
	}
	return false
}

// checkBody walks one marked function, including nested closures: a closure
// defined in a hot function runs on the same per-op path.
func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.IndexExpr:
			if t := pass.TypesInfo.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(v.Pos(), "map index in hot-path function %s; intern to a dense ID and index a slice instead", name)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "make" || b.Name() == "new") {
					pass.Reportf(v.Pos(), "allocation (%s) in hot-path function %s; allocate in setup and reuse", b.Name(), name)
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
					pass.Reportf(v.Pos(), "allocation (composite-literal pointer) in hot-path function %s; allocate in setup and reuse", name)
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(v); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(v.Pos(), "allocation (%s literal) in hot-path function %s; allocate in setup and reuse", kindName(t), name)
				}
			}
		}
		return true
	})
}

func kindName(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}
