// Package sim is the NPU simulator engine. It executes tile-operation
// streams (internal/schedule) against the scratchpad residency model
// (internal/spm), the DRAM channel (internal/dram) and the systolic-array
// timing model (internal/systolic), with double-buffered overlap of data
// transfer and computation — the execution model the paper assumes
// (Section 2.2 and 6.1).
package sim

import (
	"fmt"
	"sync/atomic"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/spm"
	"igosim/internal/systolic"
	"igosim/internal/trace"
)

// EngineChoice selects which executor RunSchedules and RunMultiPhased use.
// Both produce bit-identical results (held together by the refmodel oracle
// and PropCompiledEquivalence); only speed differs.
type EngineChoice uint8

const (
	// EngineDefault follows the process-wide default: compiled, unless
	// flipped with SetCompiledDefault(false).
	EngineDefault EngineChoice = iota
	// EngineCompiled forces the compiled path (schedule.Compile +
	// CompiledEngine).
	EngineCompiled
	// EngineInterpreted forces the reference interpreter (Engine).
	EngineInterpreted
)

// interpretByDefault inverts the default so the zero value means
// "compiled" — the intended production setting.
var interpretByDefault atomic.Bool

// SetCompiledDefault sets the process-wide executor default used when
// Options.Compiled is EngineDefault, returning the previous setting.
func SetCompiledDefault(on bool) bool {
	prev := !interpretByDefault.Load()
	interpretByDefault.Store(!on)
	return prev
}

// CompiledDefault reports whether EngineDefault currently resolves to the
// compiled path.
func CompiledDefault() bool { return !interpretByDefault.Load() }

func (o Options) useCompiled() bool {
	switch o.Compiled {
	case EngineCompiled:
		return true
	case EngineInterpreted:
		return false
	default:
		return CompiledDefault()
	}
}

// Options tweak engine behaviour for specific studies.
type Options struct {
	// FreeDYOnDW makes dY reads issued by dW-side operations free (no
	// traffic, no transfer time), reproducing the Section 3.3 limit study
	// ("we eliminate dY reads, assuming the data are hypothetically
	// available without any external memory access").
	FreeDYOnDW bool

	// Trace, when non-nil, receives cycle-level events from every engine
	// built with these options: per-op DMA and compute spans, stall
	// attribution, SPM occupancy samples and kernel phase spans. nil (the
	// default) disables tracing at zero cost — results are bit-identical
	// either way; only observability changes.
	Trace *trace.Sink

	// TraceLabel names the trace tracks of engines built with these options
	// (typically "model/layer pass"). Ignored when Trace is nil.
	TraceLabel string

	// Compiled selects the executor. The zero value (EngineDefault) follows
	// the process-wide default set by SetCompiledDefault — compiled unless
	// turned off. Results are identical either way.
	Compiled EngineChoice
}

// Result aggregates the outcome of simulated tile streams.
type Result struct {
	// Cycles is the pipelined makespan.
	Cycles int64
	// ComputeCycles is the sum of systolic compute time (no stalls).
	ComputeCycles int64
	// MemCycles is the sum of DMA transfer time (no overlap accounting).
	MemCycles int64
	// Traffic is the DRAM traffic broken down by tensor class.
	Traffic dram.Traffic
	// Ops is the number of tile operations executed.
	Ops int64
	// SPM reports scratchpad hit/miss/eviction counts.
	SPM spm.Stats
	// Spills counts live partial-sum tiles pushed to DRAM by pressure.
	Spills int64
}

// Seconds converts the makespan to wall-clock time for the configuration.
// A configuration without a valid clock (FrequencyHz <= 0) yields 0 rather
// than leaking +Inf/NaN into reports.
func (r Result) Seconds(cfg config.NPU) float64 {
	if cfg.FrequencyHz <= 0 {
		return 0
	}
	return float64(r.Cycles) / cfg.FrequencyHz
}

// Add merges another result that executed *sequentially after* r.
func (r *Result) Add(o Result) {
	r.Cycles += o.Cycles
	r.ComputeCycles += o.ComputeCycles
	r.MemCycles += o.MemCycles
	r.Traffic.Merge(o.Traffic)
	r.Ops += o.Ops
	r.SPM.Merge(o.SPM)
	r.Spills += o.Spills
}

// Engine simulates one NPU core. The scratchpad streaming half persists
// across Run calls so fused schedules can reuse resident tiles; call Reset
// between independent measurements.
type Engine struct {
	cfg  config.NPU
	arr  systolic.Array
	chn  dram.Channel
	buf  *spm.Buffer[schedule.TileKey]
	live map[schedule.TileKey]int64 // active partial-sum tiles -> bytes
	opts Options
	tr   *trace.Track // nil when tracing is disabled

	// pipeline state
	memDone     int64 // completion time of the DMA stage
	compDone    int64 // completion time of the compute stage
	prevCompEnd int64 // compute completion one op back (prefetch depth 2)

	res Result
}

// NewEngine builds a single-core engine for cfg.
func NewEngine(cfg config.NPU, opts Options) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{
		cfg: cfg,
		arr: systolic.New(cfg),
		chn: dram.Channel{
			BytesPerCycle: cfg.BytesPerCycle(),
			BurstLatency:  cfg.DRAMLatency,
		},
		// Half of the SPM is the double-buffer fill target; the residency
		// set models the other half (Section 2.2).
		buf:  spm.New[schedule.TileKey](cfg.SPMBytes / 2),
		live: make(map[schedule.TileKey]int64),
		opts: opts,
	}
	if opts.Trace != nil {
		label := opts.TraceLabel
		if label == "" {
			label = "engine"
		}
		e.tr = opts.Trace.NewTrack(label)
		e.tr.SetCapacity(e.buf.Capacity())
		// Occupancy is sampled by the scratchpad itself on every residency
		// mutation, timestamped with the DMA stage's current completion time.
		e.buf.OnChange = func(used int64) { e.tr.Occupancy(e.memDone, used) }
	}
	return e
}

// Reset clears scratchpad contents, pipeline state and accumulated results.
func (e *Engine) Reset() {
	e.buf.Flush()
	e.buf.ResetStats()
	clear(e.live)
	e.memDone, e.compDone, e.prevCompEnd = 0, 0, 0
	e.res = Result{}
}

// FlushSPM empties the scratchpad without touching pipeline time or
// accumulated results. It models a kernel boundary: sequential execution
// frees each operation's staged buffers, which is exactly why the
// conventional backward pass cannot reuse dY across the two gradient GEMMs
// (Section 3.2).
func (e *Engine) FlushSPM() {
	e.buf.Flush()
	clear(e.live)
}

// Result returns the accumulated result of all Run calls since Reset.
func (e *Engine) Result() Result {
	r := e.res
	r.Cycles = e.compDone
	r.SPM = e.buf.Stats
	return r
}

// Run executes one op stream, continuing the pipeline from previous calls.
func (e *Engine) Run(ops []schedule.Op) {
	for i := range ops {
		e.step(&ops[i])
	}
}

// step executes a single tile op through the two-stage pipeline. Spill
// write-backs are accounted separately from ordinary fetches and drains so
// the trace layer can attribute stall cycles to scratchpad pressure; the
// transfer timing itself depends only on the totals and is unchanged.
func (e *Engine) step(op *schedule.Op) {
	var fetchBytes, writeBytes, spillBytes int64
	var bursts, spillBursts int

	// Output (partial-sum) tile handling.
	out := op.Out
	if op.OutFirst {
		if !op.OutLast {
			e.live[out.Key] = out.Bytes
		}
		e.insert(out.Key, out.Bytes, &spillBytes, &spillBursts)
	} else {
		if !e.buf.Touch(out.Key) {
			// The partial was spilled earlier; bring it back.
			fetchBytes += out.Bytes
			bursts++
			e.res.Traffic.AddRead(dram.ClassAcc, out.Bytes)
			e.insert(out.Key, out.Bytes, &spillBytes, &spillBursts)
		}
	}
	e.tr.Access(out.Key)

	// Operand tiles.
	for _, t := range [2]schedule.Tile{op.A, op.B} {
		e.tr.Access(t.Key)
		if e.buf.Touch(t.Key) {
			continue
		}
		free := e.opts.FreeDYOnDW && op.Kind == schedule.KindDW && t.Key.Class == dram.ClassDY
		if !free {
			fetchBytes += t.Bytes
			bursts++
			e.res.Traffic.AddRead(t.Key.Class, t.Bytes)
		}
		e.insert(t.Key, t.Bytes, &spillBytes, &spillBursts)
	}

	// Final accumulation: stream the finished output back to DRAM.
	if op.OutLast {
		writeBytes += out.Bytes
		bursts++
		e.res.Traffic.AddWrite(out.Key.Class, out.Bytes)
		e.buf.Remove(out.Key)
		delete(e.live, out.Key)
	}

	memCycles := e.chn.TransferCycles(fetchBytes+writeBytes+spillBytes, bursts+spillBursts)
	compCycles := e.arr.TileCycles(op.Tm, op.Tk, op.Tn)

	// Double-buffered pipeline: the DMA may run at most one op ahead of the
	// compute stage (prefetch depth 2).
	memStart := max(e.memDone, e.prevCompEnd)
	memEnd := memStart + memCycles
	compStart := max(e.compDone, memEnd)
	compEnd := compStart + compCycles

	if e.tr != nil {
		e.tr.DMA(memStart, memCycles, fetchBytes, writeBytes, spillBytes, bursts+spillBursts)
		e.tr.Compute(op.Kind.String(), compStart, compCycles, op.Tm, op.Tk, op.Tn)
		e.tr.Stall(splitStall(e.chn, compStart-e.compDone, memCycles, spillBytes, spillBursts))
	}

	e.memDone = memEnd
	e.prevCompEnd = e.compDone
	e.compDone = compEnd

	e.res.ComputeCycles += compCycles
	e.res.MemCycles += memCycles
	e.res.Ops++
}

// splitStall attributes one op's compute-stage stall between ordinary DMA
// waiting and pressure-spill waiting, proportionally to the spill share of
// the blocking transfer. The two parts always sum to the stall, keeping the
// per-track reconciliation exact.
func splitStall(chn dram.Channel, stall, memCycles, spillBytes int64, spillBursts int) (dma, spill int64) {
	if stall <= 0 {
		return 0, 0
	}
	if memCycles > 0 && spillBytes > 0 {
		spillCyc := min(chn.TransferCycles(spillBytes, spillBursts), memCycles)
		spill = stall * spillCyc / memCycles
	}
	return stall - spill, spill
}

// insert places a tile in the residency set, charging spill writes for any
// live partial-sum tiles that get evicted.
func (e *Engine) insert(k schedule.TileKey, bytes int64, spillBytes *int64, spillBursts *int) {
	for _, victim := range e.buf.Insert(k, bytes) {
		vb, isLive := e.live[victim]
		if !isLive {
			continue // clean operand tile: dropping it is free
		}
		*spillBytes += vb
		*spillBursts++
		e.res.Traffic.AddWrite(dram.ClassAcc, vb)
		e.res.Spills++
		e.tr.Spill(e.memDone, vb)
	}
}

// RunSchedule executes one named schedule, continuing the pipeline from
// previous calls, and emits a phase span covering it on the trace track.
func (e *Engine) RunSchedule(s schedule.Schedule) {
	start := e.compDone
	e.Run(s.Ops)
	e.tr.Phase(s.Name, start, e.compDone)
}

// RunStream executes a pull-based op stream to exhaustion, continuing the
// pipeline from previous calls.
func (e *Engine) RunStream(s schedule.OpStream) {
	s(func(op *schedule.Op) bool {
		e.step(op)
		return true
	})
}

// RunSchedules is a convenience wrapper: it executes the given schedules in
// order on a fresh single-core engine, flushing the scratchpad at each
// schedule boundary (schedules model separate kernels), and returns the
// combined result. Options.Compiled picks the executor; both paths are
// bit-identical.
func RunSchedules(cfg config.NPU, opts Options, scheds ...schedule.Schedule) Result {
	if opts.useCompiled() {
		res := runSchedulesCompiled(cfg, opts, scheds)
		countPass(res)
		return res
	}
	e := NewEngine(cfg, opts)
	for i, s := range scheds {
		if i > 0 {
			e.FlushSPM()
		}
		e.RunSchedule(s)
	}
	res := e.Result()
	countPass(res)
	return res
}

// RunStreams is RunSchedules for pull-based generators: each kernel's ops
// are produced on demand, so the compiled path never materializes a []Op
// and the interpreted path executes ops as they are yielded.
func RunStreams(cfg config.NPU, opts Options, kernels ...schedule.StreamKernel) Result {
	if opts.useCompiled() {
		res := runStreamsCompiled(cfg, opts, kernels)
		countPass(res)
		return res
	}
	e := NewEngine(cfg, opts)
	for i, k := range kernels {
		if i > 0 {
			e.FlushSPM()
		}
		start := e.compDone
		e.RunStream(k.Ops)
		e.tr.Phase(k.Name, start, e.compDone)
	}
	res := e.Result()
	countPass(res)
	return res
}

// ReduceResult describes the cost of a cross-partition reduction phase.
type ReduceResult struct {
	Cycles  int64
	Traffic dram.Traffic
}

// ReduceCost models the accumulation step that weight-sharing (dW) and
// dY-sharing (dX) partitioning require: parts partial tensors of outBytes
// each are read back, summed element-wise and the final tensor written out.
// The sum itself is vector work that proceeds at DMA line rate, so the
// phase is bandwidth-bound on the aggregate channel.
func ReduceCost(cfg config.NPU, parts int, outBytes int64, finalClass dram.Class) ReduceResult {
	if parts <= 1 || outBytes <= 0 {
		return ReduceResult{}
	}
	chn := dram.Channel{
		BytesPerCycle: cfg.TotalBandwidth() / cfg.FrequencyHz,
		BurstLatency:  cfg.DRAMLatency,
	}
	var tr dram.Traffic
	readBytes := int64(parts) * outBytes
	tr.AddRead(dram.ClassAcc, readBytes)
	tr.AddWrite(finalClass, outBytes)
	return ReduceResult{
		Cycles:  chn.TransferCycles(readBytes+outBytes, parts+1),
		Traffic: tr,
	}
}

func validateStreams(streams [][]schedule.Op) error {
	if len(streams) == 0 {
		return fmt.Errorf("sim: no op streams")
	}
	return nil
}
