package sim

import (
	"math"
	"sync/atomic"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/stats"
	"igosim/internal/systolic"
)

// Two-phase execution (DESIGN.md §3l). The SPM hit/miss outcome of a
// compiled program is a deterministic function of only (program, SPM
// residency capacity, free-dY option): DRAM bandwidth, burst latency,
// frequency and the systolic timing axes merely re-price the same access
// trace. ResolveProgram runs the full residency/LRU machinery once and
// flattens the outcome into a ResolvedTrace — per-op transfer totals plus
// a tile-dimension index — and Replay turns that trace plus any cost
// point into the exact Result the engine would have produced, with no
// maps, no LRU and no residency branching. RunProgram threads a bounded,
// admission-controlled trace cache between the two so bandwidth/frequency
// sweeps resolve once and replay thousands of times.

// resolvedOp is one op's residency-resolved cost coefficients: the total
// bytes the DMA stage moves for it (fetches + final write + pressure
// spills), the burst count those bytes arrive in, and an index into the
// trace's tile-dimension table for the compute-stage cost. 8 bytes/op.
type resolvedOp struct {
	bytes  uint32
	bursts uint16
	dim    uint16
}

// tileDim is one distinct (Tm, Tk, Tn) tile shape of a program. Programs
// have a handful (interior tiles plus edge remainders), so a uint16 index
// per op suffices and replay prices each shape exactly once.
type tileDim struct {
	tm, tk, tn int32
}

// ResolvedTrace is the residency-resolved form of one compiled program
// under one (SPM capacity, free-dY) key. It is immutable after resolution
// and safe to replay concurrently from many goroutines. agg carries the
// cost-independent half of the Result (traffic by class, SPM hit/miss
// stats, spill and op counts); the cycle fields are recomputed per replay.
type ResolvedTrace struct {
	ops  []resolvedOp
	dims []tileDim
	agg  Result
}

// Ops returns the number of resolved ops (the program's op count).
func (t *ResolvedTrace) Ops() int { return len(t.ops) }

// replaySkew is a test hook: extra cycles added to every replayed op's
// compute time, so the replay-check gate can prove it distinguishes replay
// from the engine. Zero in production; set only by the hidden -replay-skew
// flag. Same package-atomic pattern as interpretByDefault.
var replaySkew atomic.Int64

// SetReplaySkew installs a per-op compute-cycle skew applied only on the
// replay path, returning the previous value. A non-zero skew makes replay
// deliberately diverge from the engine — the teeth test for byte-identity
// gates. Never set outside tests and the replay-check harness.
func SetReplaySkew(cycles int64) int64 { return replaySkew.Swap(cycles) }

// replayScratch holds a replay call's per-dimension compute-cycle table,
// pooled so steady-state replays allocate nothing.
type replayScratch struct {
	dimCycles []int64
}

var replayPool = runner.NewPool(func() *replayScratch { return &replayScratch{} })

// Replay prices the resolved trace under cfg's cost axes and returns the
// exact Result the compiled engine would produce for the same program —
// bit-identical, as long as cfg agrees with the trace's resolution key on
// SPM capacity (the replay-equivalence proptest and the replay-check gate
// hold this). Safe for concurrent use on a shared trace.
func (t *ResolvedTrace) Replay(cfg config.NPU) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	arr := systolic.New(cfg)
	chn := dram.Channel{
		BytesPerCycle: cfg.BytesPerCycle(),
		BurstLatency:  cfg.DRAMLatency,
	}
	sc := replayPool.Get()
	if cap(sc.dimCycles) >= len(t.dims) {
		sc.dimCycles = sc.dimCycles[:len(t.dims)]
	} else {
		sc.dimCycles = make([]int64, len(t.dims))
	}
	for i, d := range t.dims {
		// Same function, same arguments as the engine's Bind-time cost
		// table, so the per-op compute cycles match bit-for-bit.
		sc.dimCycles[i] = arr.TileCycles(int(d.tm), int(d.tk), int(d.tn))
	}
	cycles, compSum, memSum := replayOps(t.ops, sc.dimCycles, chn, replaySkew.Load())
	replayPool.Put(sc)
	res := t.agg
	res.Cycles = cycles
	res.ComputeCycles = compSum
	res.MemCycles = memSum
	return res
}

// replayOps advances the double-buffered pipeline over the resolved ops —
// the same recurrence as CompiledEngine.step, minus all residency work.
//
//lint:hotpath
func replayOps(ops []resolvedOp, dimCycles []int64, chn dram.Channel, skew int64) (cycles, compSum, memSum int64) {
	var memDone, compDone, prevCompEnd int64
	for i := range ops {
		op := &ops[i]
		memCycles := chn.TransferCycles(int64(op.bytes), int(op.bursts))
		compCycles := dimCycles[op.dim] + skew

		// Prefetch depth 2: the DMA runs at most one op ahead of compute.
		memStart := max(memDone, prevCompEnd)
		memEnd := memStart + memCycles
		compStart := max(compDone, memEnd)
		compEnd := compStart + compCycles

		memDone = memEnd
		prevCompEnd = compDone
		compDone = compEnd

		compSum += compCycles
		memSum += memCycles
	}
	return compDone, compSum, memSum
}

// maxResolvedOps bounds the per-trace memory (8 B/op) a cached resolution
// may pin; larger programs stay on the engine path.
const maxResolvedOps = 1 << 20

// maxCachedResolvedOps bounds the program size RunProgram admits to the
// residency cache. The entry cap bounds trace count, not bytes: a grid of
// tiny-SPM configurations (the GPU validation study) produces op streams a
// hundred thousand ops long, and pinning hundreds of megabyte-scale traces
// grows the heap far faster than replays repay — each such program runs
// once per layer memo anyway. Oversized programs take the one-shot engine
// path, which is bit-identical (PropResolvedReplayEquivalence).
const maxCachedResolvedOps = 1 << 15

// ResolveProgram executes prog on a fresh single-core compiled engine
// exactly as RunProgram would, additionally recording the residency-
// resolved trace. The trace is nil when the program is not representable
// (per-op byte/burst totals or the dimension table overflow the compact
// encoding, or the program exceeds the trace size bound) — callers then
// simply keep using the engine path. Tracing is unsupported here: traces
// carry no event stream, so traced runs must resolve nothing.
func ResolveProgram(cfg config.NPU, opts Options, prog *schedule.Program) (Result, *ResolvedTrace) {
	if opts.Trace != nil {
		panic("sim: ResolveProgram with tracing enabled")
	}
	cr := compiledPool.Get()
	e := &cr.eng
	e.Init(cfg, opts)
	e.rec = &ResolvedTrace{ops: make([]resolvedOp, 0, len(prog.Code))}
	e.recOK = len(prog.Code) <= maxResolvedOps
	e.RunProgram(prog)
	res := e.Result()
	var rt *ResolvedTrace
	if e.recOK {
		rt = e.rec
		rt.agg = res
		// The cycle fields are cost-point-dependent; replay recomputes them.
		rt.agg.Cycles, rt.agg.ComputeCycles, rt.agg.MemCycles = 0, 0, 0
	}
	e.rec, e.recOK = nil, false
	e.prog, e.keys, e.tr = nil, nil, nil // don't retain the program view
	compiledPool.Put(cr)
	countPass(res)
	return res, rt
}

// record captures one op's resolved coefficients. Falls back (recOK=false,
// trace discarded) when totals overflow the compact encoding; the run's
// Result is unaffected either way.
//
//lint:hotpath
func (e *CompiledEngine) record(op *schedule.CompiledOp, bytes int64, bursts int) {
	if !e.recOK {
		return
	}
	if bytes < 0 || bytes > math.MaxUint32 || bursts < 0 || bursts > math.MaxUint16 {
		e.recOK = false
		return
	}
	if op.Tm != e.recTm || op.Tk != e.recTk || op.Tn != e.recTn {
		t := e.rec
		found := -1
		for i := range t.dims {
			d := &t.dims[i]
			if d.tm == op.Tm && d.tk == op.Tk && d.tn == op.Tn {
				found = i
				break
			}
		}
		if found < 0 {
			if len(t.dims) >= math.MaxUint16 {
				e.recOK = false
				return
			}
			t.dims = append(t.dims, tileDim{tm: op.Tm, tk: op.Tk, tn: op.Tn})
			found = len(t.dims) - 1
		}
		e.recTm, e.recTk, e.recTn = op.Tm, op.Tk, op.Tn
		e.recDim = uint16(found)
	}
	e.rec.ops = append(e.rec.ops, resolvedOp{bytes: uint32(bytes), bursts: uint16(bursts), dim: e.recDim})
}

// resolvedKey identifies one resolution: the retained program (canonical
// pointer — CompileSchedules callers share programs through identity
// caches) and the only two axes residency depends on. Everything else in
// config.NPU is replay-safe.
type resolvedKey struct {
	prog     *schedule.Program
	capacity int64
	freeDY   bool
}

// defaultResolvedCacheCap bounds the resolved-trace cache. Traces cost
// 8 B/op plus the aggregate result, so typical programs pin a few KiB per
// entry. The default must comfortably hold a grid's distinct-trace working
// set — the canonical 240-point sweep needs ~1.6k (mostly partition tuning
// candidates) and an undersized cache re-resolves instead of replaying,
// ~8× the work — while keeping worst-case pin bounded; sweeps with wider
// working sets raise it via SetResidencyCacheCap (-residency-cache).
const defaultResolvedCacheCap = 8192

var (
	resolvedCache = runner.NewBounded[resolvedKey, *ResolvedTrace]("sim/resolved", defaultResolvedCacheCap)
	// Wall domain: under a layer-memo miss race two workers may both
	// resolve or replay the same key, so the executed split varies with
	// -j. The deterministic census is the cache's Distinct count.
	resolvedPhases = stats.NewPhaseCounters("sim/resolved")
)

// SetResidencyCacheCap sets the resolved-trace cache capacity (entries),
// returning the previous value. Capacity 0 disables two-phase execution
// entirely: RunProgram runs the engine for every call (the checkable slow
// path the replay-check gate compares against).
func SetResidencyCacheCap(n int) int {
	prev := resolvedCache.Cap()
	if n < 0 {
		n = 0
	}
	resolvedCache.SetCap(n)
	return prev
}

// ResidencyCacheCap returns the current resolved-trace cache capacity.
func ResidencyCacheCap() int { return resolvedCache.Cap() }

// ResetResolvedCache drops every cached trace, the distinct-key census and
// the phase counters, returning two-phase execution to a cold state.
func ResetResolvedCache() {
	resolvedCache.Reset()
	resolvedPhases.Reset()
}

// ResolvedCacheStats returns the resolved-trace cache's snapshot. Entries
// is the distinct-key census (deterministic at any -j); the hit/miss split
// is wall-domain.
func ResolvedCacheStats() stats.CacheSnapshot { return resolvedCache.Stats() }

// ResolvedPhaseStats returns the resolve/replay execution split
// (wall-domain; see ResolvedCacheStats for the deterministic census).
func ResolvedPhaseStats() stats.PhaseSnapshot { return resolvedPhases.Snapshot() }
