package sim_test

import (
	"testing"

	"igosim/internal/bench"
	"igosim/internal/sim"
)

// BenchmarkCompiledEngine measures a full ResNet-50 backward pass per
// iteration: the interpreter against the compiled path (lower + execute),
// plus the compiled steady state (programs lowered once, execution only).
// The bodies live in internal/bench so cmd/benchjson reports exactly the
// numbers this benchmark measures.
func BenchmarkCompiledEngine(b *testing.B) {
	w := bench.ResNet50Backward()
	// The two paths must agree before their speeds are worth comparing.
	if err := w.Verify(); err != nil {
		b.Fatal(err)
	}
	b.Run("interpreted", w.Pass(sim.EngineInterpreted))
	b.Run("compiled", w.Pass(sim.EngineCompiled))
	b.Run("steady", w.Steady())
}
