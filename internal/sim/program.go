package sim

import (
	"igosim/internal/config"
	"igosim/internal/runner"
	"igosim/internal/schedule"
)

// Retained compiled programs (DESIGN.md §3k). The pooled compiled path
// (compiled.go) rebuilds its program from the schedule on every call and
// deliberately keeps no reference to it — the right trade for one-shot
// experiment grids. Long-running callers (the serving layer's shared
// program cache) instead need to pay schedule emission and interning once
// and replay the artifact many times, possibly under different DRAM/clock
// timings: CompileSchedules produces a self-contained Program safe to
// retain and share across goroutines, and RunProgram executes one against
// a pooled engine exactly as RunSchedules would have.

// CompileSchedules lowers the given kernels into a retained, immutable
// compiled program. Unlike the internal pooled path, the returned Program
// owns its code, kernel and tile-table storage: callers may cache it
// indefinitely and execute it concurrently from many goroutines (execution
// state lives in the engine, never in the program).
func CompileSchedules(scheds ...schedule.Schedule) *schedule.Program {
	comp := retainedCompilers.Get()
	comp.Reset()
	var n int
	for _, s := range scheds {
		n += len(s.Ops)
	}
	code := make([]schedule.CompiledOp, 0, n)
	kernels := make([]schedule.Kernel, 0, len(scheds))
	for _, s := range scheds {
		start := len(code)
		for i := range s.Ops {
			code = append(code, comp.Lower(&s.Ops[i]))
		}
		kernels = append(kernels, schedule.Kernel{Name: s.Name, Start: start, End: len(code)})
	}
	prog := &schedule.Program{Code: code, Kernels: kernels, Table: comp.DetachTable()}
	retainedCompilers.Put(comp)
	return prog
}

// retainedCompilers pools the compilers behind CompileSchedules: the probe
// table (grown once to the largest program seen) is reused across the
// thousands of candidate-program compilations a tuning sweep performs,
// while each program's code and detached key storage remain owned by the
// retained program.
var retainedCompilers = runner.NewPool(schedule.NewCompiler)

// RunProgram executes a retained compiled program on a fresh single-core
// engine, flushing the scratchpad at each kernel boundary — the compiled
// twin of RunSchedules for a program built once with CompileSchedules. The
// program is read-only here; concurrent RunProgram calls on the same
// program are safe.
//
// Untraced calls go through two-phase execution (resolved.go): the first
// call for a (program, SPM capacity, free-dY) key resolves the residency
// trace, later calls replay it under whatever cost axes cfg carries —
// bit-identical to the engine, held by the replay-equivalence proptest and
// the replay-check gate. Traced calls and disabled caches (capacity 0)
// take the one-shot engine path.
func RunProgram(cfg config.NPU, opts Options, prog *schedule.Program) Result {
	if opts.Trace == nil && resolvedCache.Cap() > 0 && len(prog.Code) <= maxCachedResolvedOps {
		key := resolvedKey{prog: prog, capacity: cfg.SPMBytes / 2, freeDY: opts.FreeDYOnDW}
		if rt, ok := resolvedCache.Get(key); ok {
			res := rt.Replay(cfg)
			resolvedPhases.Replay()
			countPass(res)
			return res
		}
		res, rt := ResolveProgram(cfg, opts, prog)
		resolvedPhases.Resolution()
		if rt != nil {
			resolvedCache.Put(key, rt)
		}
		return res
	}
	cr := compiledPool.Get()
	e := &cr.eng
	e.Init(cfg, opts)
	e.RunProgram(prog)
	res := e.Result()
	e.prog, e.keys, e.tr = nil, nil, nil // don't retain the program view or sink
	compiledPool.Put(cr)
	countPass(res)
	return res
}

// CompiledResolved reports whether these options resolve to the compiled
// executor (following the process-wide default when Compiled is
// EngineDefault). Callers that maintain compiled-program caches use it to
// decide whether a cached program would actually be executed.
func (o Options) CompiledResolved() bool { return o.useCompiled() }
