package sim

import (
	"bytes"
	"reflect"
	"testing"

	"igosim/internal/config"
	"igosim/internal/schedule"
	"igosim/internal/tensor"
	"igosim/internal/trace"
)

// tightCfg shrinks the scratchpad below the test layers' working sets so the
// compiled/interpreted comparison covers evictions, spills and fetch-backs.
func tightCfg() config.NPU {
	cfg := testCfg()
	cfg.SPMBytes = 1 << 10
	return cfg
}

// burstCfg adds DRAM burst latency so per-op burst counts matter.
func burstCfg() config.NPU {
	cfg := testCfg()
	cfg.DRAMLatency = 7
	return cfg
}

// testKernelSets enumerates schedule sequences covering the protocol space:
// multi-kernel flushes, fused interleaving, chunked partials and edge tiles.
func testKernelSets() map[string][]schedule.Schedule {
	p := params(tensor.Dims{M: 16, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	// Uneven dims produce edge tiles with distinct byte sizes and systolic
	// costs.
	pe := params(tensor.Dims{M: 18, K: 13, N: 10}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	return map[string][]schedule.Schedule{
		"baseline-two-kernels": {
			{Name: "dx", Ops: schedule.BaselineDX(p)},
			{Name: "dw", Ops: schedule.BaselineDW(p)},
		},
		"paired-interleave": {
			{Name: "fused", Ops: pairedBackward(p)},
		},
		"chunked-partials": {
			{Name: "dx", Ops: schedule.PartialStationaryDX(p, 2)},
			{Name: "dw", Ops: schedule.PartialStationaryDWCols(p, 2)},
		},
		"edge-tiles": {
			{Name: "dx", Ops: schedule.PartialStationaryDXCols(pe, 2)},
			{Name: "dw", Ops: schedule.PartialStationaryDW(pe, 2)},
			{Name: "fused", Ops: pairedBackward(pe)},
		},
	}
}

// TestCompiledMatchesInterpreter holds the compiled engine to full Result
// equality with the interpreter across configurations, kernel shapes and
// the free-dY study toggle.
func TestCompiledMatchesInterpreter(t *testing.T) {
	cfgs := map[string]config.NPU{
		"base":  testCfg(),
		"tight": tightCfg(),
		"burst": burstCfg(),
	}
	for cname, cfg := range cfgs {
		for kname, scheds := range testKernelSets() {
			for _, free := range []bool{false, true} {
				want := RunSchedules(cfg, Options{FreeDYOnDW: free, Compiled: EngineInterpreted}, scheds...)
				got := RunSchedules(cfg, Options{FreeDYOnDW: free, Compiled: EngineCompiled}, scheds...)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s freeDY=%v: compiled %+v != interpreted %+v",
						cname, kname, free, got, want)
				}
			}
		}
	}
}

// TestCompiledSpillsUnderPressure guards that the equivalence above is not
// vacuous: the tight configuration must actually exercise spills.
func TestCompiledSpillsUnderPressure(t *testing.T) {
	scheds := testKernelSets()["paired-interleave"]
	r := RunSchedules(tightCfg(), Options{Compiled: EngineCompiled}, scheds...)
	if r.Spills == 0 {
		t.Fatal("tight config no longer spills — shrink its SPM so the compiled/interpreted comparison keeps covering spill paths")
	}
	if r.SPM.Evictions == 0 {
		t.Fatal("tight config no longer evicts")
	}
}

// TestCompiledTraceParity compares the full trace-event export byte for
// byte: the compiled engine must emit the identical event sequence, not
// just identical counters.
func TestCompiledTraceParity(t *testing.T) {
	for kname, scheds := range testKernelSets() {
		var dumps [2]bytes.Buffer
		for i, mode := range []EngineChoice{EngineInterpreted, EngineCompiled} {
			sink := trace.New()
			RunSchedules(tightCfg(), Options{Trace: sink, TraceLabel: "parity", Compiled: mode}, scheds...)
			if err := sink.Check(); err != nil {
				t.Fatalf("%s mode %d: %v", kname, mode, err)
			}
			if err := sink.WriteJSON(&dumps[i]); err != nil {
				t.Fatalf("%s: %v", kname, err)
			}
		}
		if !bytes.Equal(dumps[0].Bytes(), dumps[1].Bytes()) {
			t.Errorf("%s: compiled trace differs from interpreted trace", kname)
		}
	}
}

// multiPhases builds a two-core, two-phase workload where both cores touch
// the same dY tiles (shared-hit coverage) and the scratchpad is under
// pressure.
func multiPhases() [][][]schedule.Op {
	p := params(tensor.Dims{M: 16, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	return [][][]schedule.Op{
		{schedule.BaselineDX(p), schedule.BaselineDXOrdered(p, schedule.DXOrderKM)},
		{schedule.BaselineDW(p), schedule.BaselineDWOrdered(p, schedule.DWOrderNK)},
	}
}

// TestCompiledMultiMatchesInterpreter holds the compiled multi-core path to
// full MultiResult equality, in both scratchpad organisations.
func TestCompiledMultiMatchesInterpreter(t *testing.T) {
	cfg := testCfg()
	cfg.Cores = 2
	cfg.SPMBytes = 1 << 10
	for _, shared := range []bool{true, false} {
		for _, free := range []bool{false, true} {
			want := RunMultiPhased(cfg, Options{FreeDYOnDW: free, Compiled: EngineInterpreted}, multiPhases(), shared)
			got := RunMultiPhased(cfg, Options{FreeDYOnDW: free, Compiled: EngineCompiled}, multiPhases(), shared)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shared=%v freeDY=%v: compiled %+v != interpreted %+v", shared, free, got, want)
			}
			if shared && want.SharedHits == 0 {
				t.Error("multi workload no longer produces shared hits — the comparison lost its cross-core coverage")
			}
		}
	}
}

// TestCompiledMultiTraceParity is TestCompiledTraceParity for the
// multi-core path (per-core tracks, per-buffer occupancy tracks, phases).
func TestCompiledMultiTraceParity(t *testing.T) {
	cfg := testCfg()
	cfg.Cores = 2
	cfg.SPMBytes = 1 << 10
	for _, shared := range []bool{true, false} {
		var dumps [2]bytes.Buffer
		for i, mode := range []EngineChoice{EngineInterpreted, EngineCompiled} {
			sink := trace.New()
			RunMultiPhased(cfg, Options{Trace: sink, TraceLabel: "mparity", Compiled: mode}, multiPhases(), shared)
			if err := sink.Check(); err != nil {
				t.Fatalf("shared=%v mode %d: %v", shared, mode, err)
			}
			if err := sink.WriteJSON(&dumps[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(dumps[0].Bytes(), dumps[1].Bytes()) {
			t.Errorf("shared=%v: compiled multi-core trace differs from interpreted", shared)
		}
	}
}

// TestRunStreamsMatchesRunSchedules checks the stream entry point against
// the materialized one on both executors.
func TestRunStreamsMatchesRunSchedules(t *testing.T) {
	p := params(tensor.Dims{M: 16, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	scheds := []schedule.Schedule{
		{Name: "dx", Ops: schedule.PartialStationaryDX(p, 2)},
		{Name: "dw", Ops: schedule.PartialStationaryDW(p, 2)},
	}
	kernels := []schedule.StreamKernel{
		{Name: "dx", Ops: schedule.PartialStationaryDXStream(p, 2)},
		{Name: "dw", Ops: schedule.PartialStationaryDWStream(p, 2)},
	}
	for _, mode := range []EngineChoice{EngineInterpreted, EngineCompiled} {
		want := RunSchedules(tightCfg(), Options{Compiled: mode}, scheds...)
		got := RunStreams(tightCfg(), Options{Compiled: mode}, kernels...)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("mode %d: RunStreams %+v != RunSchedules %+v", mode, got, want)
		}
	}
}

// TestCompiledEngineReuse checks that a pooled engine re-initialized for a
// new configuration and program carries nothing over from the previous run.
func TestCompiledEngineReuse(t *testing.T) {
	big := testKernelSets()["edge-tiles"]
	small := testKernelSets()["baseline-two-kernels"]

	fresh := NewCompiledEngine(tightCfg(), Options{})
	progSmall := schedule.Compile(small...)
	fresh.RunProgram(&progSmall)
	want := fresh.Result()

	reused := NewCompiledEngine(burstCfg(), Options{FreeDYOnDW: true})
	progBig := schedule.Compile(big...)
	reused.RunProgram(&progBig)
	reused.Init(tightCfg(), Options{})
	reused.RunProgram(&progSmall)
	if got := reused.Result(); !reflect.DeepEqual(got, want) {
		t.Errorf("reused engine %+v != fresh engine %+v", got, want)
	}
}

// TestSetCompiledDefault checks the process-wide default toggle and its
// return-previous contract.
func TestSetCompiledDefault(t *testing.T) {
	orig := CompiledDefault()
	defer SetCompiledDefault(orig)
	if prev := SetCompiledDefault(false); prev != orig {
		t.Errorf("SetCompiledDefault returned %v, want %v", prev, orig)
	}
	if CompiledDefault() {
		t.Error("default still compiled after SetCompiledDefault(false)")
	}
	if (Options{}).useCompiled() {
		t.Error("EngineDefault ignored the process default")
	}
	if !(Options{Compiled: EngineCompiled}).useCompiled() {
		t.Error("EngineCompiled did not force the compiled path")
	}
	SetCompiledDefault(true)
	if !(Options{}).useCompiled() || (Options{Compiled: EngineInterpreted}).useCompiled() {
		t.Error("default restore or EngineInterpreted override broken")
	}
}
