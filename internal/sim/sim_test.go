package sim

import (
	"testing"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/tensor"
)

// testCfg is a small, deterministic configuration: 4x4 PE array, 4 KiB SPM
// (2 KiB residency), 16 bytes/cycle, no burst latency.
func testCfg() config.NPU {
	return config.NPU{
		Name: "test", ArrayRows: 4, ArrayCols: 4, Cores: 1,
		SPMBytes: 4096, DRAMBandwidth: 16e9, DRAMLatency: 0,
		FrequencyHz: 1e9, ElemBytes: 4, Batch: 1,
	}
}

func params(d tensor.Dims, tl schedule.Tiling) schedule.TileParams {
	return schedule.TileParams{Dims: d, Tiling: tl, ElemBytes: 4, Layer: 1}
}

// pairedBackward builds a dXmajor-style fused stream: each dY tile feeds
// its dX op and its dW op back to back.
func pairedBackward(p schedule.TileParams) []schedule.Op {
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	var ops []schedule.Op
	for mo := 0; mo < mt; mo++ {
		for no := 0; no < nt; no++ {
			for ko := 0; ko < kt; ko++ {
				ops = append(ops, p.DXOp(mo, ko, no, nt), p.DWOp(ko, no, mo, mt))
			}
		}
	}
	return ops
}

func TestSequentialBaselineReadsDYTwice(t *testing.T) {
	p := params(tensor.Dims{M: 16, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	dxK := schedule.Schedule{Ops: schedule.BaselineDX(p)}
	dwK := schedule.Schedule{Ops: schedule.BaselineDW(p)}
	r := RunSchedules(testCfg(), Options{}, dxK, dwK)

	dyBytes := int64(16 * 16 * 4)
	if r.Traffic.Read[dram.ClassDY] != 2*dyBytes {
		t.Fatalf("baseline dY reads = %d, want %d (once per kernel)",
			r.Traffic.Read[dram.ClassDY], 2*dyBytes)
	}
}

func TestPairedInterleaveReadsDYOnce(t *testing.T) {
	// K is kept small so the carried dW partials fit in the scratchpad —
	// the regime where the paper's dXmajor order is profitable.
	p := params(tensor.Dims{M: 32, K: 8, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	r := RunSchedules(testCfg(), Options{}, schedule.Schedule{Ops: pairedBackward(p)})

	dyBytes := int64(32 * 16 * 4)
	if r.Traffic.Read[dram.ClassDY] != dyBytes {
		t.Fatalf("fused dY reads = %d, want %d (single pass)",
			r.Traffic.Read[dram.ClassDY], dyBytes)
	}
	// On a bandwidth-starved configuration (memory-bound, like the paper's
	// NPUs) the single dY pass must beat the flushed sequential baseline.
	starved := testCfg()
	starved.DRAMBandwidth = 2e9
	fused := RunSchedules(starved, Options{}, schedule.Schedule{Ops: pairedBackward(p)})
	base := RunSchedules(starved, Options{},
		schedule.Schedule{Ops: schedule.BaselineDX(p)},
		schedule.Schedule{Ops: schedule.BaselineDW(p)})
	if fused.Cycles >= base.Cycles {
		t.Fatalf("fused %d cycles not faster than baseline %d", fused.Cycles, base.Cycles)
	}
}

func TestFlushForcesRefetch(t *testing.T) {
	p := params(tensor.Dims{M: 8, K: 8, N: 8}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	dx := schedule.BaselineDX(p)

	// Same kernel twice without flush: second pass hits.
	e := NewEngine(testCfg(), Options{})
	e.Run(dx)
	firstReads := e.Result().Traffic.TotalRead()
	e.Run(dx)
	if got := e.Result().Traffic.TotalRead(); got != firstReads {
		t.Fatalf("warm rerun fetched %d extra bytes", got-firstReads)
	}
	// With a flush, everything is refetched.
	e.FlushSPM()
	e.Run(dx)
	if got := e.Result().Traffic.TotalRead(); got != 2*firstReads {
		t.Fatalf("post-flush reads = %d, want %d", got, 2*firstReads)
	}
}

func TestFreeDYOnDW(t *testing.T) {
	p := params(tensor.Dims{M: 16, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	dwK := schedule.Schedule{Ops: schedule.BaselineDW(p)}
	plain := RunSchedules(testCfg(), Options{}, dwK)
	free := RunSchedules(testCfg(), Options{FreeDYOnDW: true}, dwK)
	if free.Traffic.Read[dram.ClassDY] != 0 {
		t.Fatalf("free-dY run still read %d dY bytes", free.Traffic.Read[dram.ClassDY])
	}
	if free.Cycles >= plain.Cycles {
		t.Fatal("free dY reads should reduce cycles")
	}
	if free.Traffic.Read[dram.ClassX] != plain.Traffic.Read[dram.ClassX] {
		t.Fatal("free-dY option must not touch X traffic")
	}
}

func TestWritebackTraffic(t *testing.T) {
	p := params(tensor.Dims{M: 8, K: 8, N: 8}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	r := RunSchedules(testCfg(), Options{}, schedule.Schedule{Ops: schedule.BaselineDX(p)})
	if got := r.Traffic.Write[dram.ClassDX]; got != 8*8*4 {
		t.Fatalf("dX writeback = %d, want %d", got, 8*8*4)
	}
}

func TestSpillAccounting(t *testing.T) {
	// A dWmajor-style stream on a tiny SPM: dX partials (the whole M x K)
	// cannot stay resident, so spills must appear as acc traffic.
	cfg := testCfg()
	cfg.SPMBytes = 1024 // 512 B residency, tiles are 64 B
	d := tensor.Dims{M: 16, K: 16, N: 16}
	p := params(d, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	mt, kt, nt := p.Tiling.Counts(d)
	var ops []schedule.Op
	for no := 0; no < nt; no++ {
		for mo := 0; mo < mt; mo++ {
			for ko := 0; ko < kt; ko++ {
				ops = append(ops, p.DWOp(ko, no, mo, mt), p.DXOp(mo, ko, no, nt))
			}
		}
	}
	r := RunSchedules(cfg, Options{}, schedule.Schedule{Ops: ops})
	if r.Spills == 0 {
		t.Fatal("expected partial-sum spills on a tiny SPM")
	}
	if r.Traffic.Write[dram.ClassAcc] == 0 || r.Traffic.Read[dram.ClassAcc] == 0 {
		t.Fatalf("spilled partials must produce acc traffic, got %+v", r.Traffic)
	}
}

func TestPipelineBounds(t *testing.T) {
	p := params(tensor.Dims{M: 32, K: 32, N: 32}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	r := RunSchedules(testCfg(), Options{}, schedule.BaselineBackward(p))
	if r.Cycles > r.ComputeCycles+r.MemCycles {
		t.Fatalf("makespan %d exceeds serial bound %d", r.Cycles, r.ComputeCycles+r.MemCycles)
	}
	if r.Cycles < r.ComputeCycles || r.Cycles < r.MemCycles {
		t.Fatalf("makespan %d below stage bounds (%d, %d)", r.Cycles, r.ComputeCycles, r.MemCycles)
	}
}

func TestBurstLatencyCharged(t *testing.T) {
	p := params(tensor.Dims{M: 8, K: 8, N: 8}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	fast := testCfg()
	slow := testCfg()
	slow.DRAMLatency = 50
	rf := RunSchedules(fast, Options{}, schedule.BaselineBackward(p))
	rs := RunSchedules(slow, Options{}, schedule.BaselineBackward(p))
	if rs.Cycles <= rf.Cycles {
		t.Fatal("burst latency should increase cycles")
	}
	if rs.Traffic.Total() != rf.Traffic.Total() {
		t.Fatal("burst latency must not change traffic")
	}
}

func TestEngineReset(t *testing.T) {
	p := params(tensor.Dims{M: 8, K: 8, N: 8}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	e := NewEngine(testCfg(), Options{})
	e.Run(schedule.BaselineDX(p))
	e.Reset()
	r := e.Result()
	if r.Cycles != 0 || r.Traffic.Total() != 0 || r.Ops != 0 {
		t.Fatalf("reset left state: %+v", r)
	}
}

func TestResultAdd(t *testing.T) {
	a := Result{Cycles: 10, ComputeCycles: 5, MemCycles: 7, Ops: 2, Spills: 1}
	a.Traffic.AddRead(dram.ClassX, 100)
	b := Result{Cycles: 20, ComputeCycles: 15, MemCycles: 17, Ops: 3}
	b.Traffic.AddWrite(dram.ClassDW, 50)
	a.Add(b)
	if a.Cycles != 30 || a.ComputeCycles != 20 || a.Ops != 5 || a.Spills != 1 {
		t.Fatalf("Add result %+v", a)
	}
	if a.Traffic.Total() != 150 {
		t.Fatalf("merged traffic %d", a.Traffic.Total())
	}
}

func TestReduceCost(t *testing.T) {
	cfg := testCfg()
	r := ReduceCost(cfg, 4, 1000, dram.ClassDW)
	if r.Traffic.Read[dram.ClassAcc] != 4000 {
		t.Fatalf("reduce reads = %d", r.Traffic.Read[dram.ClassAcc])
	}
	if r.Traffic.Write[dram.ClassDW] != 1000 {
		t.Fatalf("reduce writes = %d", r.Traffic.Write[dram.ClassDW])
	}
	if r.Cycles <= 0 {
		t.Fatal("reduce must cost cycles")
	}
	if got := ReduceCost(cfg, 1, 1000, dram.ClassDW); got.Cycles != 0 {
		t.Fatal("single-partition reduce must be free")
	}
}

func TestSeconds(t *testing.T) {
	r := Result{Cycles: 2e9}
	if got := r.Seconds(testCfg()); got != 2.0 {
		t.Fatalf("seconds = %g", got)
	}
}

func TestDeterminism(t *testing.T) {
	p := params(tensor.Dims{M: 24, K: 24, N: 24}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	a := RunSchedules(testCfg(), Options{}, schedule.BaselineBackward(p))
	b := RunSchedules(testCfg(), Options{}, schedule.BaselineBackward(p))
	if a != b {
		t.Fatal("simulation is not deterministic")
	}
}
