package sim

import (
	"testing"

	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/tensor"
)

func TestRunMultiMakespanIsMaxCore(t *testing.T) {
	cfg := testCfg().WithCores(2)
	p := params(tensor.Dims{M: 16, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	long := schedule.BaselineDX(p)
	short := long[:4]
	r := RunMulti(cfg, Options{}, [][]schedule.Op{long, short})
	if len(r.PerCore) != 2 {
		t.Fatalf("per-core results: %d", len(r.PerCore))
	}
	want := max(r.PerCore[0].Cycles, r.PerCore[1].Cycles)
	if r.Cycles != want {
		t.Fatalf("makespan %d, want %d", r.Cycles, want)
	}
}

func TestSharedSPMDeduplicatesSharedTensor(t *testing.T) {
	cfg := testCfg().WithCores(2)
	// Two cores read the SAME W tiles (weight-sharing): with shared
	// placement W is fetched once; with private placement twice.
	p := params(tensor.Dims{M: 8, K: 8, N: 8}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	stream := schedule.BaselineDX(p) // reads dY + W
	shared := RunMultiPhased(cfg, Options{}, [][][]schedule.Op{{stream, stream}}, true)
	private := RunMultiPhased(cfg, Options{}, [][][]schedule.Op{{stream, stream}}, false)

	if shared.Traffic.Read[dram.ClassW] != 8*8*4 {
		t.Fatalf("shared W reads = %d, want one copy", shared.Traffic.Read[dram.ClassW])
	}
	if private.Traffic.Read[dram.ClassW] != 2*8*8*4 {
		t.Fatalf("private W reads = %d, want two copies", private.Traffic.Read[dram.ClassW])
	}
	if shared.SharedHits == 0 {
		t.Fatal("shared run recorded no cross-core hits")
	}
	if private.SharedHits != 0 {
		t.Fatal("private run must not record cross-core hits")
	}
}

func TestPhasesFlushSharedBuffer(t *testing.T) {
	cfg := testCfg().WithCores(1)
	p := params(tensor.Dims{M: 8, K: 8, N: 8}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	dx := schedule.BaselineDX(p)

	onePhase := RunMultiPhased(cfg, Options{}, [][][]schedule.Op{{dx}, {dx}}, true)
	// Second phase reloads everything after the flush: total reads double.
	single := RunMultiPhased(cfg, Options{}, [][][]schedule.Op{{dx}}, true)
	if onePhase.Traffic.TotalRead() != 2*single.Traffic.TotalRead() {
		t.Fatalf("phased reads = %d, want %d", onePhase.Traffic.TotalRead(), 2*single.Traffic.TotalRead())
	}
}

func TestMultiMatchesSingleForOneCore(t *testing.T) {
	cfg := testCfg()
	p := params(tensor.Dims{M: 16, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	ops := schedule.BaselineBackward(p).Ops
	single := RunSchedules(cfg, Options{}, schedule.Schedule{Ops: ops})
	multi := RunMulti(cfg, Options{}, [][]schedule.Op{ops})
	if single.Cycles != multi.Cycles {
		t.Fatalf("single %d vs multi-1 %d cycles", single.Cycles, multi.Cycles)
	}
	if single.Traffic != multi.Traffic {
		t.Fatalf("traffic differs: %+v vs %+v", single.Traffic, multi.Traffic)
	}
}

func TestTooManyStreamsPanics(t *testing.T) {
	cfg := testCfg() // 1 core
	p := params(tensor.Dims{M: 4, K: 4, N: 4}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	ops := schedule.BaselineDX(p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for more streams than cores")
		}
	}()
	RunMulti(cfg, Options{}, [][]schedule.Op{ops, ops})
}

func TestEmptyPhasesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero phases")
		}
	}()
	RunMultiPhased(testCfg(), Options{}, nil, true)
}

func TestMultiDeterminism(t *testing.T) {
	cfg := testCfg().WithCores(4)
	p := params(tensor.Dims{M: 32, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	ops := schedule.BaselineBackward(p).Ops
	streams := [][]schedule.Op{ops[:30], ops[30:60], ops[60:90], ops[90:]}
	a := RunMulti(cfg, Options{}, streams)
	b := RunMulti(cfg, Options{}, streams)
	if a.Cycles != b.Cycles || a.Traffic != b.Traffic || a.SharedHits != b.SharedHits {
		t.Fatal("multi-core simulation is not deterministic")
	}
}
