package sim

import (
	"strconv"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/systolic"
	"igosim/internal/trace"
)

// Compiled multi-core execution: RunMultiPhased's fast path. One compiler
// interns tiles across every phase and stream, so a tile shared between
// cores (the duplicated dY of ifmap-sharing partitioning) carries one ID
// everywhere and the shared-residency logic runs on dense arrays — the
// live-bytes and loaded-by maps of the interpreter become flat slices.

// runMultiPhasedCompiled mirrors RunMultiPhased's interpreter loop exactly:
// same round-robin merge, same residency decisions, counters and trace
// events. Inputs are pre-validated by RunMultiPhased.
func runMultiPhasedCompiled(cfg config.NPU, opts Options, phases [][][]schedule.Op, shared bool) MultiResult {
	cores := 0
	for _, streams := range phases {
		cores = max(cores, len(streams))
	}
	c := schedule.NewCompiler()
	code := make([][][]schedule.CompiledOp, len(phases))
	for pi, streams := range phases {
		code[pi] = make([][]schedule.CompiledOp, len(streams))
		for si, ops := range streams {
			code[pi][si] = c.CompileOps(ops)
		}
	}
	n := c.NumTiles()
	keys := c.Table().Keys

	arr := systolic.New(cfg)
	chn := dram.Channel{
		BytesPerCycle: cfg.BytesPerCycle(), // per core
		BurstLatency:  cfg.DRAMLatency,
	}
	var bufs []*residency
	if shared {
		bufs = []*residency{{capacity: cfg.TotalSPMBytes() / 2}}
	} else {
		bufs = make([]*residency, cores)
		for ci := range bufs {
			bufs[ci] = &residency{capacity: cfg.SPMBytes / 2}
		}
	}
	for _, b := range bufs {
		b.grow(n)
		b.reset()
	}
	bufFor := func(ci int) *residency {
		if shared {
			return bufs[0]
		}
		return bufs[ci]
	}
	liveBytes := make([]int64, n)
	loadedBy := make([]int32, n)
	for i := range loadedBy {
		loadedBy[i] = noCore
	}

	pipes := make([]corePipe, cores)
	var sharedHits int64

	// Tracing mirrors the interpreter: one track per core, one per residency
	// set; occupancy timestamps use the latest DMA completion among the
	// cores using the buffer.
	var coreTr []*trace.Track
	var occ []func(used int64) // per buffer index; nil when not traced
	if opts.Trace != nil {
		label := opts.TraceLabel
		if label == "" {
			label = "multicore"
		}
		coreTr = make([]*trace.Track, cores)
		for ci := range coreTr {
			coreTr[ci] = opts.Trace.NewTrack(label + "/core" + strconv.Itoa(ci))
		}
		occTS := func(bi int) int64 {
			if !shared {
				return pipes[bi].memDone
			}
			var ts int64
			for ci := range pipes {
				ts = max(ts, pipes[ci].memDone)
			}
			return ts
		}
		occ = make([]func(used int64), len(bufs))
		for bi, b := range bufs {
			name := label + "/spm"
			if !shared {
				name += strconv.Itoa(bi)
			}
			st := opts.Trace.NewTrack(name)
			st.SetCapacity(b.capacity)
			bi := bi
			occ[bi] = func(used int64) { st.Occupancy(occTS(bi), used) }
		}
	}
	occFor := func(ci int) func(used int64) {
		if occ == nil {
			return nil
		}
		if shared {
			return occ[0]
		}
		return occ[ci]
	}

	for pi, streams := range code {
		if pi > 0 {
			for bi, b := range bufs {
				b.reset()
				if occ != nil {
					occ[bi](0)
				}
			}
			clear(liveBytes)
			for i := range loadedBy {
				loadedBy[i] = noCore
			}
		}
		var phaseStart []int64
		if coreTr != nil {
			phaseStart = make([]int64, cores)
			for ci := range pipes {
				phaseStart[ci] = pipes[ci].compDone
			}
		}
		next := make([]int, len(streams))
		for round := 0; ; round++ {
			progressed := false
			for i := range streams {
				ci := (round + i) % len(streams)
				if next[ci] >= len(streams[ci]) {
					continue
				}
				op := &streams[ci][next[ci]]
				next[ci]++
				progressed = true
				var tr *trace.Track
				if coreTr != nil {
					tr = coreTr[ci]
				}
				stepSharedCompiled(op, int32(ci), arr, chn, bufFor(ci), liveBytes,
					loadedBy, keys, &pipes[ci], opts.FreeDYOnDW, &sharedHits, tr, occFor(ci))
			}
			if !progressed {
				break
			}
		}
		if coreTr != nil {
			name := "phase" + strconv.Itoa(pi)
			for ci := range pipes {
				coreTr[ci].Phase(name, phaseStart[ci], pipes[ci].compDone)
			}
		}
	}

	out := MultiResult{PerCore: make([]Result, len(pipes)), SharedHits: sharedHits}
	if !shared {
		out.SharedHits = 0
	}
	for ci := range pipes {
		pipes[ci].res.Cycles = pipes[ci].compDone
		out.PerCore[ci] = pipes[ci].res
		out.Traffic.Merge(pipes[ci].res.Traffic)
		if pipes[ci].compDone > out.Cycles {
			out.Cycles = pipes[ci].compDone
		}
	}
	if len(out.PerCore) > 0 {
		out.PerCore[0].SPM = bufFor(0).stats
	}
	return out
}

// noCore marks a tile no core currently claims in the loadedBy table.
const noCore = int32(-1)

// stepSharedCompiled is the compiled counterpart of stepShared.
//
//lint:hotpath
func stepSharedCompiled(op *schedule.CompiledOp, core int32, arr systolic.Array, chn dram.Channel,
	buf *residency, liveBytes []int64, loadedBy []int32, keys []schedule.TileKey,
	p *corePipe, freeDY bool, sharedHits *int64, tr *trace.Track, occ func(used int64)) {

	var fetchBytes, writeBytes, spillBytes int64
	var bursts, spillBursts int

	insert := func(id schedule.TileID, bytes int64) {
		victims, changed := buf.insert(id, bytes)
		if changed && occ != nil {
			occ(buf.used)
		}
		for _, v := range victims {
			vb := liveBytes[v]
			loadedBy[v] = noCore
			if vb == 0 {
				continue
			}
			spillBytes += vb
			spillBursts++
			p.res.Traffic.AddWrite(dram.ClassAcc, vb)
			p.res.Spills++
			tr.Spill(p.memDone, vb)
		}
		loadedBy[id] = core
	}

	out := op.Out
	if op.Flags&schedule.FlagOutFirst != 0 {
		if op.Flags&schedule.FlagOutLast == 0 {
			liveBytes[out] = op.OutBytes
		}
		insert(out, op.OutBytes)
	} else if !buf.touch(out) {
		fetchBytes += op.OutBytes
		bursts++
		p.res.Traffic.AddRead(dram.ClassAcc, op.OutBytes)
		insert(out, op.OutBytes)
	}
	if tr != nil {
		tr.Access(keys[out])
	}

	if tr != nil {
		tr.Access(keys[op.A])
	}
	if buf.touch(op.A) {
		if by := loadedBy[op.A]; by != noCore && by != core {
			*sharedHits++
		}
	} else {
		if !(freeDY && op.Flags&schedule.FlagFreeDYA != 0) {
			fetchBytes += op.ABytes
			bursts++
			p.res.Traffic.AddRead(op.AClass, op.ABytes)
		}
		insert(op.A, op.ABytes)
	}
	if tr != nil {
		tr.Access(keys[op.B])
	}
	if buf.touch(op.B) {
		if by := loadedBy[op.B]; by != noCore && by != core {
			*sharedHits++
		}
	} else {
		if !(freeDY && op.Flags&schedule.FlagFreeDYB != 0) {
			fetchBytes += op.BBytes
			bursts++
			p.res.Traffic.AddRead(op.BClass, op.BBytes)
		}
		insert(op.B, op.BBytes)
	}

	if op.Flags&schedule.FlagOutLast != 0 {
		writeBytes += op.OutBytes
		bursts++
		p.res.Traffic.AddWrite(op.OutClass, op.OutBytes)
		if buf.remove(out) && occ != nil {
			occ(buf.used)
		}
		liveBytes[out] = 0
		loadedBy[out] = noCore
	}

	memCycles := chn.TransferCycles(fetchBytes+writeBytes+spillBytes, bursts+spillBursts)
	compCycles := arr.TileCycles(int(op.Tm), int(op.Tk), int(op.Tn))

	memStart := max(p.memDone, p.prevCompEnd)
	memEnd := memStart + memCycles
	compStart := max(p.compDone, memEnd)
	compEnd := compStart + compCycles

	if tr != nil {
		tr.DMA(memStart, memCycles, fetchBytes, writeBytes, spillBytes, bursts+spillBursts)
		tr.Compute(op.Kind.String(), compStart, compCycles, int(op.Tm), int(op.Tk), int(op.Tn))
		tr.Stall(splitStall(chn, compStart-p.compDone, memCycles, spillBytes, spillBursts))
	}

	p.memDone = memEnd
	p.prevCompEnd = p.compDone
	p.compDone = compEnd

	p.res.ComputeCycles += compCycles
	p.res.MemCycles += memCycles
	p.res.Ops++
}
