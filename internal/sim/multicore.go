package sim

import (
	"strconv"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/spm"
	"igosim/internal/systolic"
	"igosim/internal/trace"
)

// MultiResult is the outcome of a multi-core simulation.
type MultiResult struct {
	// Cycles is the makespan: the slowest core's completion time.
	Cycles int64
	// PerCore holds each core's individual result.
	PerCore []Result
	// Traffic is the aggregate DRAM traffic of all cores.
	Traffic dram.Traffic
	// SharedHits counts scratchpad hits on tiles a *different* core loaded,
	// the benefit of the paper's shared-SPM organisation.
	SharedHits int64
}

// Seconds converts the makespan to wall-clock time. A configuration without
// a valid clock (FrequencyHz <= 0) yields 0 rather than +Inf/NaN.
func (r MultiResult) Seconds(cfg config.NPU) float64 {
	if cfg.FrequencyHz <= 0 {
		return 0
	}
	return float64(r.Cycles) / cfg.FrequencyHz
}

// corePipe is the per-core pipeline state of the multi-core engine.
type corePipe struct {
	memDone     int64
	compDone    int64
	prevCompEnd int64
	res         Result
}

// RunMulti executes one op stream per core with deliberate shared-SPM
// placement (the paper's inter-core distribution). See RunMultiPhased for
// the phase semantics; RunMulti is the single-phase shared case.
func RunMulti(cfg config.NPU, opts Options, streams [][]schedule.Op) MultiResult {
	return RunMultiPhased(cfg, opts, [][][]schedule.Op{streams}, true)
}

// RunMultiPhased executes phases of concurrent per-core op streams on an
// NPU whose cores share the scratchpad: residency is simulated on the
// combined SPM over a round-robin merge of each phase's streams, so a tile
// loaded by one core (for example the duplicated dY of ifmap-sharing
// partitioning) hits for every other core. Each core owns its systolic
// array and its per-core slice of DRAM bandwidth.
//
// Phases model synchronized kernel boundaries (for example the dX kernels
// of all cores followed by the dW kernels under conventional data
// parallelism): the scratchpad is flushed between phases, while per-core
// pipeline time carries across.
//
// The scratchpad is physically shared by all cores (Section 2.2), but how
// software uses it differs: conventional data-parallel execution allocates
// each core's kernel buffers privately (shared == false — a tile loaded by
// one core is invisible to the others), whereas the paper's inter-core
// distribution step places partition-shared tensors once for all cores
// (shared == true).
//
// Every phase must have between 1 and cfg.Cores streams; empty streams are
// allowed (an idle core).
func RunMultiPhased(cfg config.NPU, opts Options, phases [][][]schedule.Op, shared bool) MultiResult {
	if len(phases) == 0 {
		panic("sim: no phases")
	}
	cores := 0
	for _, streams := range phases {
		if err := validateStreams(streams); err != nil {
			panic(err)
		}
		if len(streams) > cfg.Cores {
			panic("sim: more op streams than cores")
		}
		cores = max(cores, len(streams))
	}
	if opts.useCompiled() {
		res := runMultiPhasedCompiled(cfg, opts, phases, shared)
		countMulti(res)
		return res
	}
	arr := systolic.New(cfg)
	chn := dram.Channel{
		BytesPerCycle: cfg.BytesPerCycle(), // per core
		BurstLatency:  cfg.DRAMLatency,
	}
	// Shared placement: one residency set over the whole SPM. Private
	// placement: each core owns an equal slice.
	var bufs []*spm.Buffer[schedule.TileKey]
	if shared {
		bufs = []*spm.Buffer[schedule.TileKey]{spm.New[schedule.TileKey](cfg.TotalSPMBytes() / 2)}
	} else {
		bufs = make([]*spm.Buffer[schedule.TileKey], cores)
		for c := range bufs {
			bufs[c] = spm.New[schedule.TileKey](cfg.SPMBytes / 2)
		}
	}
	bufFor := func(c int) *spm.Buffer[schedule.TileKey] {
		if shared {
			return bufs[0]
		}
		return bufs[c]
	}
	live := make(map[schedule.TileKey]int64)
	loadedBy := make(map[schedule.TileKey]int, 1024)

	pipes := make([]corePipe, cores)
	var sharedHits int64

	// Tracing: one cycle-domain track per core, plus one per residency set
	// for occupancy (the scratchpad is a separate component the cores share,
	// so its samples get their own track). Occupancy timestamps use the
	// latest DMA completion among the cores using the buffer — the closest
	// observable proxy for "now" in the round-robin residency merge.
	var coreTr []*trace.Track
	if opts.Trace != nil {
		label := opts.TraceLabel
		if label == "" {
			label = "multicore"
		}
		coreTr = make([]*trace.Track, cores)
		for c := range coreTr {
			coreTr[c] = opts.Trace.NewTrack(label + "/core" + strconv.Itoa(c))
		}
		occTS := func(bi int) int64 {
			if !shared {
				return pipes[bi].memDone
			}
			var ts int64
			for c := range pipes {
				ts = max(ts, pipes[c].memDone)
			}
			return ts
		}
		for bi, b := range bufs {
			name := label + "/spm"
			if !shared {
				name += strconv.Itoa(bi)
			}
			st := opts.Trace.NewTrack(name)
			st.SetCapacity(b.Capacity())
			bi := bi
			b.OnChange = func(used int64) { st.Occupancy(occTS(bi), used) }
		}
	}

	for pi, streams := range phases {
		if pi > 0 {
			for _, b := range bufs {
				b.Flush()
			}
			clear(live)
			clear(loadedBy)
		}
		var phaseStart []int64
		if coreTr != nil {
			phaseStart = make([]int64, cores)
			for c := range pipes {
				phaseStart[c] = pipes[c].compDone
			}
		}
		next := make([]int, len(streams))
		// Round-robin merge approximates concurrent execution for residency
		// purposes; timing is tracked per core. The service order rotates
		// every round so no single core systematically pays for the first
		// fetch of tiles the partitions share.
		for round := 0; ; round++ {
			progressed := false
			for i := range streams {
				c := (round + i) % len(streams)
				if next[c] >= len(streams[c]) {
					continue
				}
				op := &streams[c][next[c]]
				next[c]++
				progressed = true
				var tr *trace.Track
				if coreTr != nil {
					tr = coreTr[c]
				}
				stepShared(op, c, arr, chn, bufFor(c), live, loadedBy, &pipes[c], opts, &sharedHits, tr)
			}
			if !progressed {
				break
			}
		}
		if coreTr != nil {
			name := "phase" + strconv.Itoa(pi)
			for c := range pipes {
				coreTr[c].Phase(name, phaseStart[c], pipes[c].compDone)
			}
		}
	}

	out := MultiResult{PerCore: make([]Result, len(pipes)), SharedHits: sharedHits}
	if !shared {
		out.SharedHits = 0
	}
	for c := range pipes {
		pipes[c].res.Cycles = pipes[c].compDone
		out.PerCore[c] = pipes[c].res
		out.Traffic.Merge(pipes[c].res.Traffic)
		if pipes[c].compDone > out.Cycles {
			out.Cycles = pipes[c].compDone
		}
	}
	// Hit/miss stats live in the shared (or core-0) buffer; surface them on
	// core 0's result.
	if len(out.PerCore) > 0 {
		out.PerCore[0].SPM = bufFor(0).Stats
	}
	countMulti(out)
	return out
}

// stepShared is the multi-core variant of Engine.step operating on the
// shared residency set.
func stepShared(op *schedule.Op, core int, arr systolic.Array, chn dram.Channel,
	buf *spm.Buffer[schedule.TileKey], live map[schedule.TileKey]int64,
	loadedBy map[schedule.TileKey]int, p *corePipe, opts Options, sharedHits *int64,
	tr *trace.Track) {

	var fetchBytes, writeBytes, spillBytes int64
	var bursts, spillBursts int

	insert := func(k schedule.TileKey, bytes int64) {
		for _, victim := range buf.Insert(k, bytes) {
			vb, isLive := live[victim]
			delete(loadedBy, victim)
			if !isLive {
				continue
			}
			spillBytes += vb
			spillBursts++
			p.res.Traffic.AddWrite(dram.ClassAcc, vb)
			p.res.Spills++
			tr.Spill(p.memDone, vb)
		}
		loadedBy[k] = core
	}

	out := op.Out
	if op.OutFirst {
		if !op.OutLast {
			live[out.Key] = out.Bytes
		}
		insert(out.Key, out.Bytes)
	} else if !buf.Touch(out.Key) {
		fetchBytes += out.Bytes
		bursts++
		p.res.Traffic.AddRead(dram.ClassAcc, out.Bytes)
		insert(out.Key, out.Bytes)
	}
	tr.Access(out.Key)

	for _, t := range [2]schedule.Tile{op.A, op.B} {
		tr.Access(t.Key)
		if buf.Touch(t.Key) {
			if by, ok := loadedBy[t.Key]; ok && by != core {
				*sharedHits++
			}
			continue
		}
		free := opts.FreeDYOnDW && op.Kind == schedule.KindDW && t.Key.Class == dram.ClassDY
		if !free {
			fetchBytes += t.Bytes
			bursts++
			p.res.Traffic.AddRead(t.Key.Class, t.Bytes)
		}
		insert(t.Key, t.Bytes)
	}

	if op.OutLast {
		writeBytes += out.Bytes
		bursts++
		p.res.Traffic.AddWrite(out.Key.Class, out.Bytes)
		buf.Remove(out.Key)
		delete(live, out.Key)
		delete(loadedBy, out.Key)
	}

	memCycles := chn.TransferCycles(fetchBytes+writeBytes+spillBytes, bursts+spillBursts)
	compCycles := arr.TileCycles(op.Tm, op.Tk, op.Tn)

	memStart := max(p.memDone, p.prevCompEnd)
	memEnd := memStart + memCycles
	compStart := max(p.compDone, memEnd)
	compEnd := compStart + compCycles

	if tr != nil {
		tr.DMA(memStart, memCycles, fetchBytes, writeBytes, spillBytes, bursts+spillBursts)
		tr.Compute(op.Kind.String(), compStart, compCycles, op.Tm, op.Tk, op.Tn)
		tr.Stall(splitStall(chn, compStart-p.compDone, memCycles, spillBytes, spillBursts))
	}

	p.memDone = memEnd
	p.prevCompEnd = p.compDone
	p.compDone = compEnd

	p.res.ComputeCycles += compCycles
	p.res.MemCycles += memCycles
	p.res.Ops++
}
