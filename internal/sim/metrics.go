package sim

import "igosim/internal/metrics"

// Pass-level engine counters: residency, eviction, spill and traffic
// totals aggregated once per executed schedule/stream pass — never per op,
// so the compiled engine's allocation-free hot loop stays untouched (the
// adds below are single atomics on the pass epilogue).
//
// Wall domain, deliberately: memoization means the set of passes that
// actually execute depends on cache state and worker interleaving, so
// these totals are host-execution facts. The deterministic counterparts
// live in sim.Result (returned to callers) and in the manifest's workload
// section.
var (
	mPasses = metrics.NewCounter("sim_passes_total",
		"schedule/stream executions (execution-dependent under memoization)", metrics.Wall)
	mPassCycles = metrics.NewCounter("sim_pass_cycles_total",
		"simulated cycles summed over executed passes", metrics.Wall)
	mEvictions = metrics.NewCounter("sim_spm_evictions_total",
		"scratchpad evictions summed over executed passes", metrics.Wall)
	mSpills = metrics.NewCounter("sim_spill_tiles_total",
		"partial-sum tiles spilled to DRAM summed over executed passes", metrics.Wall)
	mTraffic = metrics.NewCounterVec("sim_dram_bytes_total", "dir",
		"DRAM bytes moved summed over executed passes, by direction", metrics.Wall)
	// Children resolved once at init: With allocates on first use, and the
	// pass epilogue must stay allocation-free.
	mTrafficRead  = mTraffic.With("read")
	mTrafficWrite = mTraffic.With("write")
)

// countPass publishes one completed single-engine pass.
func countPass(res Result) {
	mPasses.Inc()
	mPassCycles.Add(res.Cycles)
	mEvictions.Add(res.SPM.Evictions)
	mSpills.Add(res.Spills)
	mTrafficRead.Add(res.Traffic.TotalRead())
	mTrafficWrite.Add(res.Traffic.TotalWrite())
}

// countMulti publishes one completed multi-core pass.
func countMulti(res MultiResult) {
	mPasses.Inc()
	mPassCycles.Add(res.Cycles)
	mTrafficRead.Add(res.Traffic.TotalRead())
	mTrafficWrite.Add(res.Traffic.TotalWrite())
}
