package sim

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/spm"
	"igosim/internal/systolic"
	"igosim/internal/trace"
)

// Compiled execution (DESIGN.md §3g). schedule.Compile lowers a kernel
// sequence into a dense program — tile keys interned to int32 IDs, byte
// sizes, classes and protocol flags resolved per op — and CompiledEngine
// replays it against array-indexed residency state: an intrusive
// doubly-linked LRU over the tile-ID space with no map lookups and no
// allocations in steady state. The engine is a cycle- and counter-exact
// replacement for the interpreter (Engine.step); PropCompiledEquivalence
// and the refmodel oracle hold the two to bit-exact agreement, and traced
// runs emit the identical event sequence so the golden trace bytes and
// Sink.Check reconciliation are unchanged.

// nilID terminates the intrusive LRU list.
const nilID = int32(-1)

// residency is the compiled engines' scratchpad model: spm.Buffer semantics
// (byte-capacity LRU, hit/miss/eviction stats, identical eviction order)
// over dense tile-ID arrays instead of a map of heap nodes.
type residency struct {
	capacity, used int64
	head, tail     int32
	prev, next     []int32
	resident       []bool
	resBytes       []int64
	stats          spm.Stats
	victims        []int32 // eviction scratch, reused across inserts
}

// grow sizes the arrays for a table of n tiles, reusing capacity. Contents
// are stale afterwards; callers must reset before use.
func (r *residency) grow(n int) {
	if cap(r.prev) >= n {
		r.prev = r.prev[:n]
		r.next = r.next[:n]
		r.resident = r.resident[:n]
		r.resBytes = r.resBytes[:n]
		return
	}
	r.prev = make([]int32, n)
	r.next = make([]int32, n)
	r.resident = make([]bool, n)
	r.resBytes = make([]int64, n)
}

// reset empties the residency set. Stats are preserved (mirroring
// spm.Buffer.Flush); zero them separately when starting a fresh run.
func (r *residency) reset() {
	clear(r.resident)
	r.used = 0
	r.head, r.tail = nilID, nilID
}

// touch marks id as most recently used if resident, counting a hit or miss.
//
//lint:hotpath
func (r *residency) touch(id schedule.TileID) bool {
	i := int32(id)
	if !r.resident[i] {
		r.stats.Misses++
		return false
	}
	r.stats.Hits++
	if r.head != i {
		r.unlink(i)
		r.pushFront(i)
	}
	return true
}

// insert adds id, evicting LRU tiles as needed. The returned victim slice
// (oldest first, valid until the next insert) lists evicted IDs; changed is
// false when id was already resident (recency refreshed, nothing evicted) —
// the cases spm.Buffer.Insert reports by returning early.
//
//lint:hotpath
func (r *residency) insert(id schedule.TileID, bytes int64) (evicted []int32, changed bool) {
	i := int32(id)
	if bytes <= 0 {
		panic(fmt.Sprintf("sim: invalid tile size %d", bytes))
	}
	if bytes > r.capacity {
		panic(fmt.Sprintf("sim: tile of %d bytes exceeds SPM capacity %d", bytes, r.capacity))
	}
	if r.resident[i] {
		if r.head != i {
			r.unlink(i)
			r.pushFront(i)
		}
		return nil, false
	}
	r.victims = r.victims[:0]
	for r.used+bytes > r.capacity {
		v := r.tail
		if v == nilID {
			break
		}
		r.unlink(v)
		r.resident[v] = false
		r.used -= r.resBytes[v]
		r.stats.Evictions++
		r.victims = append(r.victims, v)
	}
	r.resident[i] = true
	r.resBytes[i] = bytes
	r.used += bytes
	r.pushFront(i)
	return r.victims, true
}

// remove drops id, reporting whether it was resident.
//
//lint:hotpath
func (r *residency) remove(id schedule.TileID) bool {
	i := int32(id)
	if !r.resident[i] {
		return false
	}
	r.unlink(i)
	r.resident[i] = false
	r.used -= r.resBytes[i]
	return true
}

//lint:hotpath
func (r *residency) unlink(i int32) {
	p, n := r.prev[i], r.next[i]
	if p != nilID {
		r.next[p] = n
	} else {
		r.head = n
	}
	if n != nilID {
		r.prev[n] = p
	} else {
		r.tail = p
	}
}

//lint:hotpath
func (r *residency) pushFront(i int32) {
	r.prev[i] = nilID
	r.next[i] = r.head
	if r.head != nilID {
		r.prev[r.head] = i
	}
	r.head = i
	if r.tail == nilID {
		r.tail = i
	}
}

// CompiledEngine executes compiled programs on one NPU core. It is the
// fast path behind RunSchedules; the interpreter (Engine) remains as the
// checkable slow path. Reuse pattern: Init (per configuration) -> Bind (per
// program) -> Execute; Result reads the accumulated outcome.
type CompiledEngine struct {
	cfg  config.NPU
	arr  systolic.Array
	chn  dram.Channel
	opts Options
	tr   *trace.Track // nil when tracing is disabled

	resv      residency
	liveBytes []int64 // active partial-sum bytes per tile ID (0 = not live)
	keys      []schedule.TileKey
	comp      []int64 // per-op systolic cycles, precomputed at Bind
	prog      *schedule.Program

	freeDY bool

	// Trace recording (resolved.go): when rec is non-nil, step captures
	// each op's resolved transfer totals and tile-dimension index. recTm/
	// recTk/recTn/recDim are a last-value cache over the dimension table.
	rec                 *ResolvedTrace
	recOK               bool
	recTm, recTk, recTn int32
	recDim              uint16

	memDone     int64
	compDone    int64
	prevCompEnd int64

	res Result
}

// NewCompiledEngine builds a compiled-path engine for cfg.
func NewCompiledEngine(cfg config.NPU, opts Options) *CompiledEngine {
	e := &CompiledEngine{}
	e.Init(cfg, opts)
	return e
}

// Init (re)configures the engine for cfg and opts, clearing all run state.
// It makes pooled reuse safe: after Init the engine is indistinguishable
// from a freshly constructed one.
func (e *CompiledEngine) Init(cfg config.NPU, opts Options) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e.cfg = cfg
	e.arr = systolic.New(cfg)
	e.chn = dram.Channel{
		BytesPerCycle: cfg.BytesPerCycle(),
		BurstLatency:  cfg.DRAMLatency,
	}
	// Half of the SPM is the double-buffer fill target; the residency set
	// models the other half (Section 2.2) — same split as the interpreter.
	e.resv.capacity = cfg.SPMBytes / 2
	e.opts = opts
	e.freeDY = opts.FreeDYOnDW
	e.tr = nil
	if opts.Trace != nil {
		label := opts.TraceLabel
		if label == "" {
			label = "engine"
		}
		e.tr = opts.Trace.NewTrack(label)
		e.tr.SetCapacity(e.resv.capacity)
	}
	e.prog = nil
	e.keys = nil
	e.rec, e.recOK = nil, false
	e.recTm, e.recTk, e.recTn = -1, -1, -1
	e.recDim = 0
	e.resv.stats = spm.Stats{}
	e.memDone, e.compDone, e.prevCompEnd = 0, 0, 0
	e.res = Result{}
}

// Bind attaches a compiled program: residency arrays are sized to its tile
// table and the systolic cost of every op is computed once. Run state
// (residency, pipeline, counters) is preserved, so Bind only follows Init
// or Reset on a fresh measurement.
func (e *CompiledEngine) Bind(prog *schedule.Program) {
	n := prog.Table.Len()
	e.resv.grow(n)
	if cap(e.liveBytes) >= n {
		e.liveBytes = e.liveBytes[:n]
	} else {
		e.liveBytes = make([]int64, n)
	}
	e.resv.reset()
	clear(e.liveBytes)
	e.keys = prog.Table.Keys
	e.prog = prog

	if cap(e.comp) >= len(prog.Code) {
		e.comp = e.comp[:len(prog.Code)]
	} else {
		e.comp = make([]int64, len(prog.Code))
	}
	// Tile dimensions repeat massively (only edge tiles differ), so a
	// last-value cache removes nearly every TileCycles call.
	lm, lk, ln := int32(-1), int32(-1), int32(-1)
	var lc int64
	for i := range prog.Code {
		op := &prog.Code[i]
		if op.Tm != lm || op.Tk != lk || op.Tn != ln {
			lm, lk, ln = op.Tm, op.Tk, op.Tn
			lc = e.arr.TileCycles(int(lm), int(lk), int(ln))
		}
		e.comp[i] = lc
	}
}

// Reset clears scratchpad contents, pipeline state and accumulated results,
// keeping the configuration and bound program.
func (e *CompiledEngine) Reset() {
	e.resv.reset()
	e.resv.stats = spm.Stats{}
	clear(e.liveBytes)
	e.memDone, e.compDone, e.prevCompEnd = 0, 0, 0
	e.res = Result{}
}

// flushSPM empties the scratchpad at a kernel boundary, mirroring
// Engine.FlushSPM (including the occupancy sample a traced run records).
func (e *CompiledEngine) flushSPM() {
	e.resv.reset()
	clear(e.liveBytes)
	if e.tr != nil {
		e.tr.Occupancy(e.memDone, 0)
	}
}

// Execute runs the bound program: kernels in order, scratchpad flushed at
// every kernel boundary, phase spans on the trace track.
func (e *CompiledEngine) Execute() {
	prog := e.prog
	if prog == nil {
		panic("sim: Execute before Bind")
	}
	for ki := range prog.Kernels {
		k := &prog.Kernels[ki]
		if ki > 0 {
			e.flushSPM()
		}
		start := e.compDone
		for i := k.Start; i < k.End; i++ {
			e.step(&prog.Code[i], e.comp[i])
		}
		e.tr.Phase(k.Name, start, e.compDone)
	}
}

// RunProgram is Bind + Execute.
func (e *CompiledEngine) RunProgram(prog *schedule.Program) {
	e.Bind(prog)
	e.Execute()
}

// Result returns the accumulated result of all Execute calls since Reset.
func (e *CompiledEngine) Result() Result {
	r := e.res
	r.Cycles = e.compDone
	r.SPM = e.resv.stats
	return r
}

// step mirrors Engine.step exactly — same residency decisions, counter
// updates, pipeline advance and trace-event sequence — over compiled ops.
//
//lint:hotpath
func (e *CompiledEngine) step(op *schedule.CompiledOp, compCycles int64) {
	var fetchBytes, writeBytes, spillBytes int64
	var bursts, spillBursts int

	// Output (partial-sum) tile handling.
	out := op.Out
	if op.Flags&schedule.FlagOutFirst != 0 {
		if op.Flags&schedule.FlagOutLast == 0 {
			e.liveBytes[out] = op.OutBytes
		}
		e.insert(out, op.OutBytes, &spillBytes, &spillBursts)
	} else {
		if !e.resv.touch(out) {
			// The partial was spilled earlier; bring it back.
			fetchBytes += op.OutBytes
			bursts++
			e.res.Traffic.AddRead(dram.ClassAcc, op.OutBytes)
			e.insert(out, op.OutBytes, &spillBytes, &spillBursts)
		}
	}
	if e.tr != nil {
		e.tr.Access(e.keys[out])
	}

	// Operand tiles.
	if e.tr != nil {
		e.tr.Access(e.keys[op.A])
	}
	if !e.resv.touch(op.A) {
		if !(e.freeDY && op.Flags&schedule.FlagFreeDYA != 0) {
			fetchBytes += op.ABytes
			bursts++
			e.res.Traffic.AddRead(op.AClass, op.ABytes)
		}
		e.insert(op.A, op.ABytes, &spillBytes, &spillBursts)
	}
	if e.tr != nil {
		e.tr.Access(e.keys[op.B])
	}
	if !e.resv.touch(op.B) {
		if !(e.freeDY && op.Flags&schedule.FlagFreeDYB != 0) {
			fetchBytes += op.BBytes
			bursts++
			e.res.Traffic.AddRead(op.BClass, op.BBytes)
		}
		e.insert(op.B, op.BBytes, &spillBytes, &spillBursts)
	}

	// Final accumulation: stream the finished output back to DRAM.
	if op.Flags&schedule.FlagOutLast != 0 {
		writeBytes += op.OutBytes
		bursts++
		e.res.Traffic.AddWrite(op.OutClass, op.OutBytes)
		if e.resv.remove(out) && e.tr != nil {
			e.tr.Occupancy(e.memDone, e.resv.used)
		}
		e.liveBytes[out] = 0
	}

	memCycles := e.chn.TransferCycles(fetchBytes+writeBytes+spillBytes, bursts+spillBursts)

	if e.rec != nil {
		e.record(op, fetchBytes+writeBytes+spillBytes, bursts+spillBursts)
	}

	// Double-buffered pipeline: the DMA may run at most one op ahead of the
	// compute stage (prefetch depth 2).
	memStart := max(e.memDone, e.prevCompEnd)
	memEnd := memStart + memCycles
	compStart := max(e.compDone, memEnd)
	compEnd := compStart + compCycles

	if e.tr != nil {
		e.tr.DMA(memStart, memCycles, fetchBytes, writeBytes, spillBytes, bursts+spillBursts)
		e.tr.Compute(op.Kind.String(), compStart, compCycles, int(op.Tm), int(op.Tk), int(op.Tn))
		e.tr.Stall(splitStall(e.chn, compStart-e.compDone, memCycles, spillBytes, spillBursts))
	}

	e.memDone = memEnd
	e.prevCompEnd = e.compDone
	e.compDone = compEnd

	e.res.ComputeCycles += compCycles
	e.res.MemCycles += memCycles
	e.res.Ops++
}

// insert places a tile in the residency set, charging spill writes for any
// live partial-sum tiles that get evicted. Trace events keep the
// interpreter's order: the occupancy sample (spm.Buffer.OnChange fires as
// Insert returns) precedes the spill instants (charged by the caller).
//
//lint:hotpath
func (e *CompiledEngine) insert(id schedule.TileID, bytes int64, spillBytes *int64, spillBursts *int) {
	victims, changed := e.resv.insert(id, bytes)
	if !changed {
		return
	}
	if e.tr != nil {
		e.tr.Occupancy(e.memDone, e.resv.used)
	}
	for _, v := range victims {
		vb := e.liveBytes[v]
		if vb == 0 {
			continue // clean operand tile: dropping it is free
		}
		*spillBytes += vb
		*spillBursts++
		e.res.Traffic.AddWrite(dram.ClassAcc, vb)
		e.res.Spills++
		e.tr.Spill(e.memDone, vb)
	}
}

// compiledRunner bundles the per-call state of the compiled path — engine,
// compiler and program buffers — so a pooled runner executes a steady
// stream of RunSchedules calls with no per-call allocations: the interning
// table, code buffer, residency arrays and cost table all grow to the
// largest program a worker sees and are then reused.
type compiledRunner struct {
	eng     CompiledEngine
	comp    *schedule.Compiler
	code    []schedule.CompiledOp
	kernels []schedule.Kernel
}

var compiledPool = runner.NewPool(func() *compiledRunner {
	return &compiledRunner{comp: schedule.NewCompiler()}
})

// run compiles into the reusable buffers, executes, and leaves no dangling
// references in the pooled state.
func (cr *compiledRunner) run(cfg config.NPU, opts Options, compile func(*compiledRunner)) Result {
	cr.comp.Reset()
	cr.code = cr.code[:0]
	cr.kernels = cr.kernels[:0]
	compile(cr)
	prog := schedule.Program{Code: cr.code, Kernels: cr.kernels, Table: cr.comp.Table()}
	e := &cr.eng
	e.Init(cfg, opts)
	e.RunProgram(&prog)
	r := e.Result()
	e.prog, e.keys, e.tr = nil, nil, nil // don't retain the program view or sink
	return r
}

// runSchedulesCompiled is RunSchedules' compiled path: lower, execute,
// return the runner to the pool.
func runSchedulesCompiled(cfg config.NPU, opts Options, scheds []schedule.Schedule) Result {
	cr := compiledPool.Get()
	r := cr.run(cfg, opts, func(cr *compiledRunner) {
		for _, s := range scheds {
			start := len(cr.code)
			for i := range s.Ops {
				cr.code = append(cr.code, cr.comp.Lower(&s.Ops[i]))
			}
			cr.kernels = append(cr.kernels, schedule.Kernel{Name: s.Name, Start: start, End: len(cr.code)})
		}
	})
	compiledPool.Put(cr)
	return r
}

// runStreamsCompiled compiles kernels directly from their streams (no
// materialized []Op) and executes the program.
func runStreamsCompiled(cfg config.NPU, opts Options, kernels []schedule.StreamKernel) Result {
	cr := compiledPool.Get()
	r := cr.run(cfg, opts, func(cr *compiledRunner) {
		for _, k := range kernels {
			start := len(cr.code)
			k.Ops(func(op *schedule.Op) bool {
				cr.code = append(cr.code, cr.comp.Lower(op))
				return true
			})
			cr.kernels = append(cr.kernels, schedule.Kernel{Name: k.Name, Start: start, End: len(cr.code)})
		}
	})
	compiledPool.Put(cr)
	return r
}
