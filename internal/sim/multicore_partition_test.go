// Multicore partitioning tests live in an external test package: they need
// internal/core (which imports internal/sim) and the proptest coverage
// checker, neither of which an in-package test could import.
package sim_test

import (
	"testing"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/dram"
	"igosim/internal/proptest"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/tensor"
)

// TestMultiSingleStreamMatchesEngine pins the degenerate multi-core case:
// one core, one stream through RunMulti must be bit-identical to the
// single-core engine on every counter — the round-robin merge, shared
// residency set and per-core pipe bookkeeping must all collapse to exactly
// the plain pipeline.
func TestMultiSingleStreamMatchesEngine(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		c := proptest.GenCase(proptest.NewSource(seed))
		cfg := c.Config() // Cores == 1 by construction
		for _, s := range c.Schedules() {
			want := sim.RunSchedules(cfg, sim.Options{}, s)
			got := sim.RunMulti(cfg, sim.Options{}, [][]schedule.Op{s.Ops})
			if len(got.PerCore) != 1 {
				t.Fatalf("seed %d: %d per-core results, want 1", seed, len(got.PerCore))
			}
			if got.PerCore[0] != want {
				t.Fatalf("seed %d %s: single-stream RunMulti diverges from engine\n  multi:  %+v\n  engine: %+v",
					seed, s.Name, got.PerCore[0], want)
			}
			if got.Cycles != want.Cycles || got.Traffic != want.Traffic {
				t.Fatalf("seed %d %s: aggregate (cycles %d, traffic %+v) != engine (cycles %d, traffic %+v)",
					seed, s.Name, got.Cycles, got.Traffic, want.Cycles, want.Traffic)
			}
			if got.SharedHits != 0 {
				t.Fatalf("seed %d %s: %d shared hits with a single core", seed, s.Name, got.SharedHits)
			}
		}
	}
}

// TestSinglePartitionPlanIsIdentity pins PartitionLayer with one partition:
// for every scheme the plan must hold exactly the parent parameters, carry
// no reduction, and simulate to the same result as the unpartitioned layer.
func TestSinglePartitionPlanIsIdentity(t *testing.T) {
	d := tensor.Dims{M: 33, K: 22, N: 11}
	tl := schedule.Tiling{Tm: 7, Tk: 6, Tn: 4}
	p := schedule.TileParams{Dims: d, Tiling: tl, ElemBytes: 4, Layer: 1}
	cfg := config.SmallNPU()

	base := core.Interleaved(p, core.SelectOrder(p.Dims))
	want := sim.RunSchedules(cfg, sim.Options{}, base)

	for _, scheme := range core.Schemes() {
		plan := core.PartitionLayer(p, scheme, 1)
		if len(plan.Parts) != 1 {
			t.Fatalf("%v: %d partitions from parts=1", scheme, len(plan.Parts))
		}
		if len(plan.Reductions) != 0 {
			t.Fatalf("%v: single-partition plan requires a reduction", scheme)
		}
		if plan.Parts[0] != p {
			t.Fatalf("%v: single partition drifted from parent params\n  got  %+v\n  want %+v", scheme, plan.Parts[0], p)
		}
		s := core.Interleaved(plan.Parts[0], core.SelectOrder(plan.Parts[0].Dims))
		got := sim.RunSchedules(cfg, sim.Options{}, s)
		if got != want {
			t.Fatalf("%v: single-partition result diverges from unpartitioned\n  got  %+v\n  want %+v", scheme, got, want)
		}
	}
}

// TestUnevenPartitionCoverage splits tile grids that do not divide evenly
// (5, 4 and 3 tiles into 2..5 partitions) along each of M, N and K and
// proves the union of partition streams covers the parent tile grid exactly
// once per gradient — no dropped, duplicated or out-of-range tile work —
// and that the multi-core engine executes the full op count.
func TestUnevenPartitionCoverage(t *testing.T) {
	// mt=5, kt=4, nt=3: every scheme gets a grid its partition counts
	// cannot split evenly.
	d := tensor.Dims{M: 33, K: 22, N: 11}
	tl := schedule.Tiling{Tm: 7, Tk: 6, Tn: 4}
	p := schedule.TileParams{Dims: d, Tiling: tl, ElemBytes: 4, Layer: 1}
	mt, kt, nt := tl.Counts(d)
	wantOps := int64(2 * mt * kt * nt)

	for _, scheme := range core.Schemes() {
		for parts := 2; parts <= 5; parts++ {
			plan := core.PartitionLayer(p, scheme, parts)
			if got := plan.Dims(); got != d {
				t.Fatalf("%v x%d: plan dims %v != parent %v", scheme, parts, got, d)
			}
			streams := make([][]schedule.Op, len(plan.Parts))
			var total int64
			for i, sub := range plan.Parts {
				s := core.Interleaved(sub, core.SelectOrder(sub.Dims))
				if err := schedule.VerifyBackward(sub, s.Ops, false); err != nil {
					t.Fatalf("%v x%d partition %d: %v", scheme, parts, i, err)
				}
				streams[i] = s.Ops
				total += int64(len(s.Ops))
			}
			if total != wantOps {
				t.Fatalf("%v x%d: %d ops across partitions, want %d", scheme, parts, total, wantOps)
			}
			if err := proptest.CheckCoverage(d, tl, streams); err != nil {
				t.Fatalf("%v x%d: %v", scheme, parts, err)
			}

			cfg := config.SmallNPU()
			cfg.Cores = len(streams)
			res := sim.RunMulti(cfg, sim.Options{}, streams)
			var ops int64
			for _, r := range res.PerCore {
				ops += r.Ops
			}
			if ops != wantOps {
				t.Fatalf("%v x%d: multicore executed %d ops, want %d", scheme, parts, ops, wantOps)
			}
		}
	}
}

// TestPartitionSpillsAccountedUnderPressure runs an uneven K split on a
// deliberately tiny shared scratchpad and checks the multi-core engine's
// pressure accounting stays consistent: spill writebacks appear as
// accumulator-class traffic, and every spill has its writeback.
func TestPartitionSpillsAccountedUnderPressure(t *testing.T) {
	d := tensor.Dims{M: 8, K: 40, N: 40}
	tl := schedule.Tiling{Tm: 4, Tk: 4, Tn: 4}
	p := schedule.TileParams{Dims: d, Tiling: tl, ElemBytes: 4, Layer: 1}

	plan := core.PartitionLayer(p, core.IfmapSharing, 3)
	streams := plan.PartitionStreams(config.SmallNPU())

	cfg := config.SmallNPU()
	cfg.Cores = len(streams)
	cfg.SPMBytes = 1 << 10 // ~0.5 KiB residency half per core: forces spills
	res := sim.RunMulti(cfg, sim.Options{}, streams)

	var spills int64
	for _, r := range res.PerCore {
		spills += r.Spills
	}
	if spills == 0 {
		t.Fatal("tiny scratchpad produced no spills; pressure path untested")
	}
	var accWrites int64
	for _, r := range res.PerCore {
		accWrites += r.Traffic.Write[dram.ClassAcc]
	}
	if accWrites == 0 {
		t.Fatal("spills recorded without accumulator writeback traffic")
	}
}
