package core

import (
	"testing"

	"igosim/internal/config"
	"igosim/internal/sim"
	"igosim/internal/tensor"
)

// TestProgramCacheBitEquivalent proves the shared-program path changes no
// results: for every policy, a backward pass through the compiled-program
// cache must be bit-identical to the reference interpreter (which never
// touches the cache), and the forward pass likewise.
func TestProgramCacheBitEquivalent(t *testing.T) {
	ResetCaches()
	cfg := config.SmallNPU()
	p := LayerParams(tensor.Dims{M: 96, K: 384, N: 160}, 7, cfg)

	for _, pol := range Policies() {
		for _, skipDX := range []bool{false, true} {
			ResetCaches()
			got := RunBackward(cfg, sim.Options{Compiled: sim.EngineCompiled}, p, pol, skipDX)
			ResetCaches()
			want := RunBackward(cfg, sim.Options{Compiled: sim.EngineInterpreted}, p, pol, skipDX)
			if got != want {
				t.Errorf("policy %v skipDX=%v: program-cache path diverged:\n got %+v\nwant %+v",
					pol, skipDX, got, want)
			}
		}
	}

	ResetCaches()
	gotF := RunForward(cfg, sim.Options{Compiled: sim.EngineCompiled}, p)
	ResetCaches()
	wantF := RunForward(cfg, sim.Options{Compiled: sim.EngineInterpreted}, p)
	if gotF != wantF {
		t.Errorf("forward: program-cache path diverged:\n got %+v\nwant %+v", gotF, wantF)
	}
}

// TestProgramCacheSharesAcrossTimings proves the point of the cache: two
// configurations that differ only in DRAM bandwidth (a timing fact the
// emitted tile streams cannot see) share one compiled program per layer
// point, while the layer memo — keyed on the full hardware fingerprint —
// must treat them as distinct.
func TestProgramCacheSharesAcrossTimings(t *testing.T) {
	ResetCaches()
	fast := config.SmallNPU()
	slow := fast.WithBandwidth(fast.DRAMBandwidth / 2)
	p := LayerParams(tensor.Dims{M: 128, K: 256, N: 128}, 3, fast)

	opts := sim.Options{Compiled: sim.EngineCompiled}
	a := RunBackward(fast, opts, p, PolBaseline, false)
	entries := ProgramCacheLen()
	if entries == 0 {
		t.Fatal("compiled-program cache stayed empty on the compiled path")
	}
	b := RunBackward(slow, opts, p, PolBaseline, false)
	if ProgramCacheLen() != entries {
		t.Errorf("bandwidth-only change grew the program cache %d -> %d; the program should be shared",
			entries, ProgramCacheLen())
	}
	if a.Cycles == b.Cycles {
		t.Error("halving bandwidth left cycles unchanged; shared program must still be re-timed per config")
	}
	if a.Traffic != b.Traffic {
		t.Errorf("traffic changed with bandwidth: %+v vs %+v", a.Traffic, b.Traffic)
	}

	// Different layer ids of the same shape share the program too.
	p9 := p
	p9.Layer = 9
	_ = RunBackward(fast, opts, p9, PolBaseline, false)
	if ProgramCacheLen() != entries {
		t.Errorf("layer-id change grew the program cache %d -> %d; ids are normalized out of the key",
			entries, ProgramCacheLen())
	}

	ResetCaches()
	if ProgramCacheLen() != 0 {
		t.Errorf("ResetCaches left %d compiled programs cached", ProgramCacheLen())
	}
}
