package core

import (
	"testing"

	"igosim/internal/sim"
	"igosim/internal/tensor"
)

func TestSchemeFeaturesShape(t *testing.T) {
	f := SchemeFeatures(tensor.Dims{M: 1024, K: 256, N: 64})
	if len(f) != 6 {
		t.Fatalf("feature vector has %d entries", len(f))
	}
	// log2(1024)=10, log2(256)=8, log2(64)=6; products are sums of logs.
	if f[0] != 10 || f[1] != 8 || f[2] != 6 || f[3] != 18 || f[4] != 14 || f[5] != 16 {
		t.Fatalf("features = %v", f)
	}
}

func TestTrainSchemeSelectorPredicts(t *testing.T) {
	// Layers with a dominant M prefer weight-sharing; dominant N prefers
	// dY-sharing; dominant K prefers ifmap-sharing. A KNN trained on such
	// labels must recover the pattern.
	var samples []SchemeSample
	for i := 1; i <= 6; i++ {
		samples = append(samples,
			SchemeSample{Dims: tensor.Dims{M: 1024 * i, K: 64, N: 64}, Best: WeightSharing},
			SchemeSample{Dims: tensor.Dims{M: 64, K: 64, N: 1024 * i}, Best: DYSharing},
			SchemeSample{Dims: tensor.Dims{M: 64, K: 1024 * i, N: 64}, Best: IfmapSharing},
		)
	}
	sel, err := TrainSchemeSelector(samples, DefaultSchemeK)
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Predict(tensor.Dims{M: 3000, K: 60, N: 70}); got != WeightSharing {
		t.Fatalf("M-heavy: %v", got)
	}
	if got := sel.Predict(tensor.Dims{M: 70, K: 60, N: 3000}); got != DYSharing {
		t.Fatalf("N-heavy: %v", got)
	}
	if got := sel.Predict(tensor.Dims{M: 60, K: 3000, N: 70}); got != IfmapSharing {
		t.Fatalf("K-heavy: %v", got)
	}
}

func TestBestSchemeEmpiricalReturnsBest(t *testing.T) {
	cfg := tinyCfg()
	p := LayerParams(tensor.Dims{M: 96, K: 48, N: 48}, 1, cfg)
	best, out := BestSchemeEmpirical(cfg, sim.Options{}, p, 2)
	for _, sch := range Schemes() {
		cand := RunPartitionedScheme(cfg, sim.Options{}, p, sch, 2)
		if cand.Cycles < out.Cycles {
			t.Fatalf("scheme %v (%d cycles) beats reported best %v (%d)", sch, cand.Cycles, best, out.Cycles)
		}
	}
	if out.Policy != PolPartition {
		t.Fatalf("outcome policy = %v", out.Policy)
	}
}

func TestRunPartitionedSchemeDegenerate(t *testing.T) {
	cfg := tinyCfg()
	// K too small to split: ifmap-sharing degenerates to whole-layer run.
	p := LayerParams(tensor.Dims{M: 64, K: 8, N: 32}, 1, cfg)
	out := RunPartitionedScheme(cfg, sim.Options{}, p, IfmapSharing, 4)
	whole := RunBackward(cfg, sim.Options{}, p, PolRearrange, false)
	if out.Cycles != whole.Cycles {
		t.Fatalf("degenerate plan %d cycles, whole layer %d", out.Cycles, whole.Cycles)
	}
}
