package core

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/tensor"
)

// Scheme is a data-partitioning scheme for the fused backward GEMM
// (Figure 11). The scheme determines which dimension is split, which
// tensor every partition shares, and which gradient needs a
// cross-partition reduction.
type Scheme uint8

const (
	// NoPartition leaves the layer whole.
	NoPartition Scheme = iota
	// WeightSharing splits the batch dimension M (the conventional
	// batch-basis data parallelism): dY and X are split by rows, W is
	// shared, and each partition produces a *partial* dW that must be
	// accumulated across partitions.
	WeightSharing
	// DYSharing splits the output-column dimension N: dY and W are split
	// by columns, X is duplicated in every partition, dW portions are
	// independent, and dX requires accumulation.
	DYSharing
	// IfmapSharing splits the contraction dimension K: X and W are split
	// along K, dY is duplicated in every partition (and therefore shareable
	// in a shared SPM), and *neither* gradient requires accumulation.
	IfmapSharing
)

func (s Scheme) String() string {
	switch s {
	case NoPartition:
		return "none"
	case WeightSharing:
		return "weight-sharing"
	case DYSharing:
		return "dY-sharing"
	case IfmapSharing:
		return "ifmap-sharing"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// Schemes lists the three real partitioning schemes of Figure 11.
func Schemes() []Scheme { return []Scheme{WeightSharing, DYSharing, IfmapSharing} }

// Reduction describes the cross-partition accumulation a plan requires.
type Reduction struct {
	// Parts is the number of partial tensors to combine.
	Parts int
	// Bytes is the size of one partial (and of the final tensor).
	Bytes int64
	// FinalClass is the tensor class of the reduced result (dX or dW).
	FinalClass dram.Class
}

// Plan is a concrete partitioning of one layer's backward pass.
type Plan struct {
	Scheme Scheme
	// Parts holds the per-partition tile parameters. A plan degenerates to
	// a single partition when the split dimension has too few tiles.
	Parts []schedule.TileParams
	// Reductions lists the accumulation phases the plan requires.
	Reductions []Reduction
}

// span is a contiguous chunk of a tile grid.
type span struct{ start, count int }

// splitGrid divides `total` tiles into at most `parts` contiguous
// near-equal chunks, dropping empty ones.
func splitGrid(total, parts int) []span {
	if parts > total {
		parts = total
	}
	out := make([]span, 0, parts)
	base := total / parts
	rem := total % parts
	start := 0
	for i := 0; i < parts; i++ {
		c := base
		if i < rem {
			c++
		}
		if c == 0 {
			continue
		}
		out = append(out, span{start: start, count: c})
		start += c
	}
	return out
}

// localExtent returns the element extent covered by a chunk of the tile
// grid: full tiles except that the final chunk absorbs the edge tile.
func localExtent(s span, tile, dim, totalTiles int) int {
	if s.start+s.count == totalTiles {
		return dim - s.start*tile
	}
	return s.count * tile
}

// PartitionLayer builds the partitioning plan for one layer. parts is the
// requested partition count; the plan holds fewer partitions when the split
// dimension does not have enough tiles (the Section 5 observation that
// splitting a dimension smaller than the array is useless is captured by
// the tile grid running out).
func PartitionLayer(p schedule.TileParams, scheme Scheme, parts int) Plan {
	if parts < 1 {
		panic(fmt.Sprintf("core: invalid partition count %d", parts))
	}
	if parts > schedule.MaxPartitions {
		parts = schedule.MaxPartitions
	}
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	elem := int64(p.ElemBytes)

	plan := Plan{Scheme: scheme}
	switch scheme {
	case NoPartition:
		plan.Parts = []schedule.TileParams{p}
		return plan

	case WeightSharing:
		spans := splitGrid(mt, parts)
		for i, s := range spans {
			sub := p
			sub.Part = i
			sub.OffM = p.OffM + s.start
			sub.Dims.M = localExtent(s, p.Tiling.Tm, p.Dims.M, mt)
			sub.DWPartial = len(spans) > 1
			plan.Parts = append(plan.Parts, sub)
		}
		if len(spans) > 1 {
			plan.Reductions = append(plan.Reductions, Reduction{
				Parts:      len(spans),
				Bytes:      int64(p.Dims.K) * int64(p.Dims.N) * elem,
				FinalClass: dram.ClassDW,
			})
		}
		return plan

	case DYSharing:
		spans := splitGrid(nt, parts)
		for i, s := range spans {
			sub := p
			sub.Part = i
			sub.OffN = p.OffN + s.start
			sub.Dims.N = localExtent(s, p.Tiling.Tn, p.Dims.N, nt)
			sub.DXPartial = len(spans) > 1
			plan.Parts = append(plan.Parts, sub)
		}
		if len(spans) > 1 {
			plan.Reductions = append(plan.Reductions, Reduction{
				Parts:      len(spans),
				Bytes:      int64(p.Dims.M) * int64(p.Dims.K) * elem,
				FinalClass: dram.ClassDX,
			})
		}
		return plan

	case IfmapSharing:
		spans := splitGrid(kt, parts)
		for i, s := range spans {
			sub := p
			sub.Part = i
			sub.OffK = p.OffK + s.start
			sub.Dims.K = localExtent(s, p.Tiling.Tk, p.Dims.K, kt)
			plan.Parts = append(plan.Parts, sub)
		}
		return plan

	default:
		panic(fmt.Sprintf("core: unknown scheme %v", scheme))
	}
}

// PartitionStreams returns one rearranged op stream per partition,
// selecting the access order per partition shape (Section 5: "the optimal
// memory access order within a single core changes according to the
// layer's dimensions").
func (pl Plan) PartitionStreams(cfg config.NPU) [][]schedule.Op {
	streams := make([][]schedule.Op, len(pl.Parts))
	for i, sub := range pl.Parts {
		sched, _ := RearrangedTuned(cfg, sub)
		streams[i] = sched.Ops
	}
	return streams
}

// BaselinePhases returns the conventional sequential backward pass of the
// plan as synchronized kernel phases — the vanilla multi-core baseline
// (batch-basis parallelism without any of the paper's techniques): first
// every core's dX kernel, then every core's dW kernel.
func (pl Plan) BaselinePhases(cfg config.NPU) [][][]schedule.Op {
	dxPhase := make([][]schedule.Op, len(pl.Parts))
	dwPhase := make([][]schedule.Op, len(pl.Parts))
	for i, sub := range pl.Parts {
		dxK, dwK := TunedBaselineKernels(cfg, sub)
		dxPhase[i] = dxK.Ops
		dwPhase[i] = dwK.Ops
	}
	return [][][]schedule.Op{dxPhase, dwPhase}
}

// ReduceResults returns the simulation cost of the plan's reductions.
func (pl Plan) ReduceResults(cfg config.NPU) []sim.ReduceResult {
	out := make([]sim.ReduceResult, 0, len(pl.Reductions))
	for _, r := range pl.Reductions {
		out = append(out, sim.ReduceCost(cfg, r.Parts, r.Bytes, r.FinalClass))
	}
	return out
}

// Dims echoes the parent GEMM dimensions of the plan (all partitions share
// the same parent).
func (pl Plan) Dims() tensor.Dims {
	if len(pl.Parts) == 0 {
		return tensor.Dims{}
	}
	d := pl.Parts[0].Dims
	for _, sub := range pl.Parts[1:] {
		switch pl.Scheme {
		case WeightSharing:
			d.M += sub.Dims.M
		case DYSharing:
			d.N += sub.Dims.N
		case IfmapSharing:
			d.K += sub.Dims.K
		}
	}
	return d
}
