package core

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/spm"
	"igosim/internal/tensor"
)

// Policy selects how much of the interleaved-gradient-order stack is
// applied to the backward pass. Policies are cumulative, matching the bars
// of Figure 12: each level includes all previous techniques.
type Policy uint8

const (
	// PolBaseline is the conventional sequential backward pass.
	PolBaseline Policy = iota
	// PolInterleave adds gradient interleaving (Section 4.2).
	PolInterleave
	// PolRearrange adds the Algorithm 1 access-order selection
	// (Section 4.3) on top of interleaving.
	PolRearrange
	// PolPartition adds data partitioning (Section 5) on top of
	// rearrangement.
	PolPartition
)

func (p Policy) String() string {
	switch p {
	case PolBaseline:
		return "baseline"
	case PolInterleave:
		return "interleaving"
	case PolRearrange:
		return "+rearrangement"
	case PolPartition:
		return "+datapartitioning"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Policies lists the four cumulative policy levels.
func Policies() []Policy {
	return []Policy{PolBaseline, PolInterleave, PolRearrange, PolPartition}
}

// LayerParams builds the tile parameters for one layer under a
// configuration, using the baseline tiling strategy.
func LayerParams(d tensor.Dims, layerID uint16, cfg config.NPU) schedule.TileParams {
	return schedule.TileParams{
		Dims:      d,
		Tiling:    schedule.ChooseTiling(d, cfg),
		ElemBytes: cfg.ElemBytes,
		Layer:     layerID,
	}
}

// LayerOutcome reports the simulated backward (or forward) pass of one
// layer under one policy.
type LayerOutcome struct {
	Name    string
	Dims    tensor.Dims
	Policy  Policy
	Order   Order  // access order used (meaningful from PolRearrange up)
	Scheme  Scheme // partition scheme used (meaningful at PolPartition)
	Parts   int    // partition count used
	Cycles  int64
	Compute int64
	Mem     int64
	Traffic dram.Traffic
	Spills  int64
	// SPM reports scratchpad hit/miss/eviction counts (on multi-core runs,
	// of the shared or core-0 residency set).
	SPM spm.Stats
	// SharedHits counts cross-core SPM hits (multi-core runs only).
	SharedHits int64
}

// Seconds converts the outcome to wall-clock time under cfg. A
// configuration without a valid clock (FrequencyHz <= 0) yields 0 rather
// than +Inf/NaN.
func (l LayerOutcome) Seconds(cfg config.NPU) float64 {
	if cfg.FrequencyHz <= 0 {
		return 0
	}
	return float64(l.Cycles) / cfg.FrequencyHz
}

func outcomeFromResult(r sim.Result) LayerOutcome {
	return LayerOutcome{
		Cycles:  r.Cycles,
		Compute: r.ComputeCycles,
		Mem:     r.MemCycles,
		Traffic: r.Traffic,
		Spills:  r.Spills,
		SPM:     r.SPM,
	}
}

func (l *LayerOutcome) addReductions(reds []sim.ReduceResult) {
	for _, r := range reds {
		l.Cycles += r.Cycles
		l.Mem += r.Cycles
		l.Traffic.Merge(r.Traffic)
	}
}

// BackwardKernels emits the backward-pass kernels for the non-partitioned
// policies. The baseline returns its two gradient GEMMs as separate kernels
// (the scratchpad is flushed between kernels, so dY cannot be reused across
// them); the fused policies return a single kernel. skipDX marks the
// network's first layer, which has no upstream to propagate into: only dW
// is computed and interleaving does not apply (Section 6.2).
func BackwardKernels(cfg config.NPU, p schedule.TileParams, pol Policy, skipDX bool) ([]schedule.Schedule, Order) {
	if skipDX {
		return []schedule.Schedule{TunedDWOnly(cfg, p)}, OnlyInterleave
	}
	switch pol {
	case PolBaseline:
		dxK, dwK := TunedBaselineKernels(cfg, p)
		return []schedule.Schedule{dxK, dwK}, OnlyInterleave
	case PolInterleave:
		return []schedule.Schedule{TunedInterleave(cfg, p)}, OnlyInterleave
	default: // PolRearrange and above
		sched, o := RearrangedTuned(cfg, p)
		return []schedule.Schedule{sched}, o
	}
}

// RearrangedTuned emits the rearranged (interleaved + reordered) schedule
// with the simulated-best access order.
func RearrangedTuned(cfg config.NPU, p schedule.TileParams) (schedule.Schedule, Order) {
	return RearrangedWithOrder(cfg, p, BestOrderSimulated(cfg, p))
}

// RearrangedStatic emits the rearranged schedule with the order chosen by
// the static Algorithm 1 cost model (constant-time, dimensions only).
func RearrangedStatic(cfg config.NPU, p schedule.TileParams) (schedule.Schedule, Order) {
	return RearrangedWithOrder(cfg, p, SelectOrderFor(p, cfg.SPMBytes))
}

// RearrangedWithOrder emits the rearranged schedule for an explicit order.
func RearrangedWithOrder(cfg config.NPU, p schedule.TileParams, o Order) (schedule.Schedule, Order) {
	switch o {
	case DXMajor:
		return FusedDXMajor(cfg, p), o
	case DWMajor:
		return FusedDWMajor(cfg, p), o
	default:
		return TunedInterleave(cfg, p), OnlyInterleave
	}
}

// RunBackward simulates one layer's backward pass on a single core.
//
// For PolPartition the partitioning plan is chosen empirically: the
// rearranged layer is simulated whole and under every scheme of Figure 11
// with 2 and 4 partitions, and the fastest wins. (The KNN-driven selection
// the paper evaluates in Section 5 lives in SelectSchemeKNN; Figure 12 uses
// the empirically best plan.)
func RunBackward(cfg config.NPU, opts sim.Options, p schedule.TileParams, pol Policy, skipDX bool) LayerOutcome {
	if pol != PolPartition || skipDX {
		var out LayerOutcome
		var order Order
		if useProgramCache(opts) {
			// Untraced compiled runs replay a shared pre-lowered program:
			// emission, tuning lookups and interning happen once per
			// (shape, policy, tuned-candidate) point, then every layer and
			// every hardware timing that maps to it just executes.
			prog, o := backwardProgram(cfg, p, pol, skipDX)
			out = outcomeFromResult(sim.RunProgram(cfg, opts, prog))
			order = o
		} else {
			kernels, o := BackwardKernels(cfg, p, pol, skipDX)
			out = outcomeFromResult(sim.RunSchedules(cfg, opts, kernels...))
			order = o
		}
		out.Dims = p.Dims
		out.Policy = pol
		out.Order = order
		out.Scheme = NoPartition
		out.Parts = 1
		return out
	}

	best := RunBackward(cfg, opts, p, PolRearrange, skipDX)
	best.Policy = PolPartition
	for _, scheme := range Schemes() {
		for _, parts := range []int{2, 4} {
			cand, ok := runPartitionedSingle(cfg, opts, p, scheme, parts)
			if ok && cand.Cycles < best.Cycles {
				cand.Policy = PolPartition
				best = cand
			}
		}
	}
	return best
}

// runPartitionedSingle simulates a partitioned plan on a single core:
// partitions execute one after another (Section 5: "processed one partition
// at a time on a single-core NPU over time"), followed by the reduction
// phases the scheme requires. ok is false when the plan degenerates to a
// single partition.
func runPartitionedSingle(cfg config.NPU, opts sim.Options, p schedule.TileParams, scheme Scheme, parts int) (LayerOutcome, bool) {
	plan := PartitionLayer(p, scheme, parts)
	if len(plan.Parts) < 2 {
		return LayerOutcome{}, false
	}
	// Partitions are separate kernels on one core: the scratchpad is flushed
	// between them, so this matches per-part FlushSPM exactly. Untraced
	// compiled runs replay a shared pre-lowered program (per-part orders
	// resolved first, mirroring backwardProgram); otherwise the kernels are
	// emitted and simulated directly, letting Options.Compiled pick the
	// executor.
	var out LayerOutcome
	var orderList []Order
	if useProgramCache(opts) {
		if prog, orders, ok := partitionedProgram(cfg, p, scheme, parts, plan); ok {
			out = outcomeFromResult(sim.RunProgram(cfg, opts, prog))
			orderList = orders
		}
	}
	if orderList == nil {
		scheds := make([]schedule.Schedule, 0, len(plan.Parts))
		orderList = make([]Order, 0, len(plan.Parts))
		for _, sub := range plan.Parts {
			sched, o := RearrangedTuned(cfg, sub)
			orderList = append(orderList, o)
			scheds = append(scheds, sched)
		}
		out = outcomeFromResult(sim.RunSchedules(cfg, opts, scheds...))
	}
	out.addReductions(plan.ReduceResults(cfg))
	out.Dims = p.Dims
	out.Scheme = scheme
	out.Parts = len(plan.Parts)
	for _, o := range orderList {
		out.Order = o // representative order (identical across equal splits)
	}
	return out, true
}

// RunBackwardOrder simulates one layer's backward pass with an explicitly
// chosen access order (used by the Section 4.3 ideal-vs-Algorithm-1 study).
// Results are memoized per layer shape.
func RunBackwardOrder(cfg config.NPU, opts sim.Options, p schedule.TileParams, o Order) LayerOutcome {
	key := layerKeyFor(cfg, p, memoBackwardOrder, opts)
	key.order = o
	return memoLayer(key, opts, func() LayerOutcome {
		out := outcomeFromResult(sim.RunSchedules(cfg, opts, Interleaved(p, o)))
		out.Dims = p.Dims
		out.Policy = PolRearrange
		out.Order = o
		out.Scheme = NoPartition
		out.Parts = 1
		return out
	})
}

// RunForward simulates one layer's forward pass (always the baseline
// schedule: the paper's techniques only transform the backward pass). Only
// the tracing fields of opts apply; schedule-shaping options are ignored.
func RunForward(cfg config.NPU, opts sim.Options, p schedule.TileParams) LayerOutcome {
	fopts := sim.Options{Trace: opts.Trace, TraceLabel: opts.TraceLabel}
	var out LayerOutcome
	if useProgramCache(fopts) {
		out = outcomeFromResult(sim.RunProgram(cfg, fopts, forwardProgram(p)))
	} else {
		out = outcomeFromResult(sim.RunSchedules(cfg, fopts, schedule.Forward(p)))
	}
	out.Dims = p.Dims
	out.Parts = 1
	return out
}

// RunBackwardMulti simulates one layer's backward pass on a multi-core NPU
// with shared SPM. It is the per-layer entry point of every training-step
// loop, and its outcomes are memoized per layer shape: repeated blocks
// (ResNet stages, BERT encoder layers) and repeated grid points across
// experiments simulate once.
//
// The baseline policy uses conventional batch-basis data parallelism
// (weight-sharing partitioning) with sequential per-core backward passes.
// PolInterleave/PolRearrange keep batch-basis partitioning but transform
// each core's stream. PolPartition additionally searches the three schemes
// of Figure 11 for the best inter-core distribution.
func RunBackwardMulti(cfg config.NPU, opts sim.Options, p schedule.TileParams, pol Policy, skipDX bool) LayerOutcome {
	key := layerKeyFor(cfg, p, memoBackward, opts)
	key.pol, key.skipDX = pol, skipDX
	return memoLayer(key, opts, func() LayerOutcome {
		return runBackwardMulti(cfg, opts, p, pol, skipDX)
	})
}

func runBackwardMulti(cfg config.NPU, opts sim.Options, p schedule.TileParams, pol Policy, skipDX bool) LayerOutcome {
	if cfg.Cores == 1 {
		return RunBackward(cfg, opts, p, pol, skipDX)
	}
	if skipDX {
		// dW-only layer: batch-split with partial-dW reduction for every
		// policy; the techniques do not apply.
		out := runMultiPlan(cfg, opts, PartitionLayer(p, WeightSharing, cfg.Cores), true)
		out.Policy = pol
		out.Dims = p.Dims
		return out
	}

	switch pol {
	case PolBaseline, PolInterleave, PolRearrange:
		plan := PartitionLayer(p, WeightSharing, cfg.Cores)
		out := runMultiPlanPolicy(cfg, opts, plan, pol, false)
		out.Policy = pol
		out.Dims = p.Dims
		return out
	default: // PolPartition: search the inter-core distribution
		var best LayerOutcome
		first := true
		for _, scheme := range Schemes() {
			plan := PartitionLayer(p, scheme, cfg.Cores)
			cand := runMultiPlanPolicy(cfg, opts, plan, PolRearrange, true)
			cand.Scheme = scheme
			if first || cand.Cycles < best.Cycles {
				best = cand
				first = false
			}
		}
		best.Policy = PolPartition
		best.Dims = p.Dims
		return best
	}
}

// runMultiPlanPolicy executes a plan's partitions concurrently, one per
// core, with each partition's stream generated per the policy. Kernel
// boundaries are synchronized across cores (data parallelism launches each
// gradient kernel on all cores together), so the baseline runs as two
// phases with a shared-SPM flush in between.
func runMultiPlanPolicy(cfg config.NPU, opts sim.Options, plan Plan, pol Policy, sharedSPM bool) LayerOutcome {
	orders := make(map[Order]bool)
	var phases [][][]schedule.Op
	for _, sub := range plan.Parts {
		kernels, o := BackwardKernels(cfg, sub, pol, false)
		orders[o] = true
		for k, kernel := range kernels {
			if k >= len(phases) {
				phases = append(phases, nil)
			}
			phases[k] = append(phases[k], kernel.Ops)
		}
	}
	out := finishMulti(cfg, sim.RunMultiPhased(cfg, opts, phases, sharedSPM), plan)
	for o := range orders {
		out.Order = o
	}
	out.Scheme = plan.Scheme
	out.Parts = len(plan.Parts)
	return out
}

// runMultiPlan executes a plan with dW-only per-core streams.
func runMultiPlan(cfg config.NPU, opts sim.Options, plan Plan, dwOnly bool) LayerOutcome {
	if !dwOnly {
		return runMultiPlanPolicy(cfg, opts, plan, PolBaseline, false)
	}
	var streams [][]schedule.Op
	for _, sub := range plan.Parts {
		streams = append(streams, TunedDWOnly(cfg, sub).Ops)
	}
	// dW-only layers run as conventional data parallelism: private buffers.
	out := finishMulti(cfg, sim.RunMultiPhased(cfg, opts, [][][]schedule.Op{streams}, false), plan)
	out.Scheme = plan.Scheme
	out.Parts = len(plan.Parts)
	return out
}

func finishMulti(cfg config.NPU, mr sim.MultiResult, plan Plan) LayerOutcome {
	out := LayerOutcome{
		Cycles:     mr.Cycles,
		Traffic:    mr.Traffic,
		SharedHits: mr.SharedHits,
	}
	for _, r := range mr.PerCore {
		out.Compute += r.ComputeCycles
		out.Mem += r.MemCycles
		out.Spills += r.Spills
	}
	if len(mr.PerCore) > 0 {
		out.SPM = mr.PerCore[0].SPM
	}
	out.addReductions(plan.ReduceResults(cfg))
	return out
}

// RunForwardMulti simulates the forward pass on a multi-core NPU using
// batch-basis parallelism (rows of Y are independent, so no reduction).
// Outcomes are memoized per layer shape, like RunBackwardMulti's. Only the
// tracing fields of opts apply; schedule-shaping options are ignored.
func RunForwardMulti(cfg config.NPU, opts sim.Options, p schedule.TileParams) LayerOutcome {
	key := layerKeyFor(cfg, p, memoForward, sim.Options{})
	return memoLayer(key, opts, func() LayerOutcome {
		return runForwardMulti(cfg, opts, p)
	})
}

func runForwardMulti(cfg config.NPU, opts sim.Options, p schedule.TileParams) LayerOutcome {
	if cfg.Cores == 1 {
		return RunForward(cfg, opts, p)
	}
	plan := PartitionLayer(p, WeightSharing, cfg.Cores)
	var streams [][]schedule.Op
	for _, sub := range plan.Parts {
		sub.DWPartial = false // forward pass computes Y, not dW
		streams = append(streams, schedule.Forward(sub).Ops)
	}
	// The forward pass runs as conventional data parallelism: private
	// per-core buffers.
	fopts := sim.Options{Trace: opts.Trace, TraceLabel: opts.TraceLabel}
	mr := sim.RunMultiPhased(cfg, fopts, [][][]schedule.Op{streams}, false)
	out := LayerOutcome{
		Cycles:     mr.Cycles,
		Traffic:    mr.Traffic,
		SharedHits: mr.SharedHits,
		Parts:      len(plan.Parts),
	}
	for _, r := range mr.PerCore {
		out.Compute += r.ComputeCycles
		out.Mem += r.MemCycles
	}
	out.Dims = p.Dims
	return out
}
