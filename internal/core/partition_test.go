package core

import (
	"testing"
	"testing/quick"

	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/tensor"
)

func TestPartitionLayerWeightSharing(t *testing.T) {
	p := testParams(tensor.Dims{M: 40, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	plan := PartitionLayer(p, WeightSharing, 4)
	if len(plan.Parts) != 4 {
		t.Fatalf("parts = %d", len(plan.Parts))
	}
	var mSum int
	for i, sub := range plan.Parts {
		mSum += sub.Dims.M
		if sub.Dims.K != 16 || sub.Dims.N != 16 {
			t.Fatalf("part %d changed K/N: %v", i, sub.Dims)
		}
		if !sub.DWPartial {
			t.Fatalf("part %d missing DWPartial", i)
		}
		if sub.DXPartial {
			t.Fatalf("part %d must not mark dX partial", i)
		}
	}
	if mSum != 40 {
		t.Fatalf("M coverage %d, want 40", mSum)
	}
	if len(plan.Reductions) != 1 || plan.Reductions[0].FinalClass != dram.ClassDW {
		t.Fatalf("reductions = %+v", plan.Reductions)
	}
	if plan.Reductions[0].Bytes != 16*16*4 {
		t.Fatalf("reduction bytes = %d", plan.Reductions[0].Bytes)
	}
}

func TestPartitionLayerDYSharing(t *testing.T) {
	p := testParams(tensor.Dims{M: 16, K: 16, N: 40}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	plan := PartitionLayer(p, DYSharing, 2)
	if len(plan.Parts) != 2 {
		t.Fatalf("parts = %d", len(plan.Parts))
	}
	var nSum int
	for _, sub := range plan.Parts {
		nSum += sub.Dims.N
		if !sub.DXPartial || sub.DWPartial {
			t.Fatalf("partial flags wrong: %+v", sub)
		}
	}
	if nSum != 40 {
		t.Fatalf("N coverage %d", nSum)
	}
	if len(plan.Reductions) != 1 || plan.Reductions[0].FinalClass != dram.ClassDX {
		t.Fatalf("reductions = %+v", plan.Reductions)
	}
}

func TestPartitionLayerIfmapSharingNoReduction(t *testing.T) {
	p := testParams(tensor.Dims{M: 16, K: 40, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	plan := PartitionLayer(p, IfmapSharing, 2)
	if len(plan.Reductions) != 0 {
		t.Fatal("ifmap-sharing must not need accumulation (Section 5)")
	}
	for _, sub := range plan.Parts {
		if sub.DXPartial || sub.DWPartial {
			t.Fatalf("ifmap-sharing marked partials: %+v", sub)
		}
	}
	// dY tiles must alias across partitions (the shared tensor).
	a := plan.Parts[0].DYTile(0, 0)
	b := plan.Parts[1].DYTile(0, 0)
	if a.Key != b.Key {
		t.Fatalf("shared dY tiles differ: %v vs %v", a.Key, b.Key)
	}
	// X tiles must NOT alias (split along K).
	xa := plan.Parts[0].XTile(0, 0)
	xb := plan.Parts[1].XTile(0, 0)
	if xa.Key == xb.Key {
		t.Fatal("split X tiles alias across partitions")
	}
}

func TestPartitionDegeneratesGracefully(t *testing.T) {
	// M has only 2 tiles: asking for 8 partitions yields 2.
	p := testParams(tensor.Dims{M: 8, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	plan := PartitionLayer(p, WeightSharing, 8)
	if len(plan.Parts) != 2 {
		t.Fatalf("parts = %d, want 2", len(plan.Parts))
	}
	// A single-tile dimension cannot be split at all.
	p2 := testParams(tensor.Dims{M: 4, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	plan2 := PartitionLayer(p2, WeightSharing, 4)
	if len(plan2.Parts) != 1 {
		t.Fatalf("parts = %d, want 1", len(plan2.Parts))
	}
	if len(plan2.Reductions) != 0 {
		t.Fatal("degenerate plan must not reduce")
	}
	for _, sub := range plan2.Parts {
		if sub.DWPartial {
			t.Fatal("degenerate plan must not mark partials")
		}
	}
}

func TestPartitionedStreamsEquivalence(t *testing.T) {
	// All three schemes, executed partition after partition, must produce
	// gradients identical to the unpartitioned reference (the implicit
	// cross-partition reduction happens in the executor's accumulation).
	d := tensor.Dims{M: 24, K: 20, N: 28}
	tl := schedule.Tiling{Tm: 4, Tk: 4, Tn: 4}
	p := testParams(d, tl)
	for _, scheme := range Schemes() {
		for _, parts := range []int{2, 3} {
			plan := PartitionLayer(p, scheme, parts)
			var ops []schedule.Op
			for _, sub := range plan.Parts {
				ops = append(ops, InterleaveDXMajor(sub).Ops...)
			}
			if err := CheckEquivalence(d, tl, ops, 1e-8); err != nil {
				t.Errorf("%v x%d: %v", scheme, parts, err)
			}
		}
	}
}

func TestPartitionedStreamsEquivalenceRandom(t *testing.T) {
	f := func(m, k, n, sc, parts uint8) bool {
		d := tensor.Dims{M: int(m%20) + 4, K: int(k%20) + 4, N: int(n%20) + 4}
		tl := schedule.Tiling{Tm: 3, Tk: 3, Tn: 3}
		p := testParams(d, tl)
		scheme := Schemes()[int(sc)%3]
		plan := PartitionLayer(p, scheme, int(parts%3)+2)
		var ops []schedule.Op
		for _, sub := range plan.Parts {
			sched, _ := RearrangedWithOrderUntuned(sub)
			ops = append(ops, sched.Ops...)
		}
		return CheckEquivalence(d, tl, ops, 1e-8) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanDims(t *testing.T) {
	p := testParams(tensor.Dims{M: 40, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	for _, scheme := range Schemes() {
		plan := PartitionLayer(p, scheme, 3)
		if got := plan.Dims(); got != p.Dims {
			t.Errorf("%v: plan dims %v, want %v", scheme, got, p.Dims)
		}
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		NoPartition:   "none",
		WeightSharing: "weight-sharing",
		DYSharing:     "dY-sharing",
		IfmapSharing:  "ifmap-sharing",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if len(Schemes()) != 3 {
		t.Fatal("Schemes() must list the three real schemes")
	}
}

func TestInvalidPartitionCountPanics(t *testing.T) {
	p := testParams(tensor.Dims{M: 8, K: 8, N: 8}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero partitions")
		}
	}()
	PartitionLayer(p, WeightSharing, 0)
}

// RearrangedWithOrderUntuned picks an order without engine simulation (for
// fuzz tests that only need schedule structure).
func RearrangedWithOrderUntuned(p schedule.TileParams) (schedule.Schedule, Order) {
	o := SelectOrder(p.Dims)
	return Interleaved(p, o), o
}
