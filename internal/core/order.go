// Package core implements the paper's contribution: the interleaved
// gradient order. Its three techniques transform the backward pass of one
// layer —
//
//  1. Interleaving (Section 4.2): fuse the dX and dW tile streams so the
//     shared dY operand can be reused while resident in SPM.
//  2. Rearrangement (Section 4.3): force both streams to walk dY in the
//     same order (dXmajor or dWmajor), guaranteeing dY reuse at the cost of
//     extra partial-sum pressure for one output; Algorithm 1 selects the
//     order from tensor shape.
//  3. Data partitioning (Section 5): split the fused GEMM along M, N or K
//     to shrink working sets and to distribute work across cores sharing
//     the SPM.
//
// All transformations are pure schedule rewrites: they emit exactly the
// same multiset of tile operations as the sequential baseline, so the
// computed gradients are identical (verified by CheckEquivalence).
package core

import (
	"fmt"

	"igosim/internal/schedule"
	"igosim/internal/tensor"
)

// Order is the tile access order used for the interleaved gradient
// computation (Figure 10).
type Order uint8

const (
	// OnlyInterleave fuses the two gradient streams but keeps each one's
	// traditional access order: dX walks dY row-major, dW walks dY
	// column-major.
	OnlyInterleave Order = iota
	// DXMajor walks dY row-major for *both* computations: dX completes one
	// output row-band at a time while dW accumulates partial sums across
	// the whole sweep.
	DXMajor
	// DWMajor walks dY column-major for both computations: dW completes one
	// output column-band at a time while dX accumulates partial sums.
	DWMajor
)

func (o Order) String() string {
	switch o {
	case OnlyInterleave:
		return "interleave"
	case DXMajor:
		return "interleave+dXmajor"
	case DWMajor:
		return "interleave+dWmajor"
	default:
		return fmt.Sprintf("order(%d)", uint8(o))
	}
}

// Orders lists the three candidate access orders.
func Orders() []Order { return []Order{OnlyInterleave, DXMajor, DWMajor} }

// AlmostSquareRatio is the paper's threshold for "nearly square" tensors:
// the largest of M, K, N must be less than four times the smallest.
const AlmostSquareRatio = 4.0

// SelectOrder implements Algorithm 1: the static memory-access-order
// selection. Nearly-square computations keep the traditional orders (they
// already reuse dX and dW well). For skewed computations the paper's prose
// gives the economic rule: "we roughly opt for Interleaving+dXmajor when
// the size of dX_i is larger than the size of dW_i, and choose
// Interleaving+dWmajor otherwise" — i.e. the output that keeps live partial
// sums across the whole sweep (dW under dXmajor, dX under dWmajor) should
// be the *smaller* tensor, minimising the spill traffic of Section 4.3.
// With dX = MxK and dW = KxN that reduces to comparing M against N.
//
// The paper's Algorithm 1 listing states the branch as "K > N and K > M ->
// dWmajor", which contradicts the prose (it would pin the larger M*K
// partial set whenever K dominates, maximising spills); we follow the
// prose. SelectOrderLiteral implements the listing verbatim for the
// ablation benchmarks.
func SelectOrder(d tensor.Dims) Order {
	switch {
	case d.AlmostSquare(AlmostSquareRatio):
		return OnlyInterleave
	case d.M >= d.N:
		return DXMajor
	default:
		return DWMajor
	}
}

// SelectOrderLiteral implements the Algorithm 1 listing verbatim:
// dWmajor when K exceeds both M and N, dXmajor otherwise.
func SelectOrderLiteral(d tensor.Dims) Order {
	switch {
	case d.AlmostSquare(AlmostSquareRatio):
		return OnlyInterleave
	case d.K > d.N && d.K > d.M:
		return DWMajor
	default:
		return DXMajor
	}
}

// PartialFootprint returns the live partial-sum bytes the order keeps
// resident for the whole dY sweep: the entire dW tensor under dXmajor, the
// entire dX tensor under dWmajor (Section 4.3's "intermediate results").
func PartialFootprint(d tensor.Dims, o Order, elemBytes int) int64 {
	switch o {
	case DXMajor:
		return d.SizeW() * int64(elemBytes) // dW is K x N
	case DWMajor:
		return d.SizeX() * int64(elemBytes) // dX is M x K
	default:
		return 0
	}
}

// OrderCosts is the closed-form traffic penalty (bytes beyond a
// read-every-tensor-once ideal) the static selector assigns to each access
// order. All terms derive from tensor dimensions, the tiling and the SPM
// capacity, so the selection stays a constant-time static decision as
// Algorithm 1 requires.
type OrderCosts struct {
	Interleave, DXMajor, DWMajor float64
}

// EstimateOrderCosts models the Section 4.3 trade-off quantitatively:
//
//   - Interleave-only pays a second dY pass unless dY fits comfortably in
//     the scratchpad streaming half (the Figure 9 reuse-distance argument).
//   - dXmajor walks dY once but carries the whole dW as live partials; when
//     W plus those partials overflow the SPM, W is re-streamed once per row
//     chunk and overflowing partials spill to DRAM.
//   - dWmajor is the mirror image: it carries dX and re-streams X (whose
//     DRAM footprint is scaled by the im2col reuse factor) once per column
//     chunk.
func EstimateOrderCosts(p schedule.TileParams, spmBytes int64) OrderCosts {
	d := p.Dims
	e := float64(p.ElemBytes)
	xf := p.XFactor
	if xf <= 0 || xf > 1 {
		xf = 1
	}
	cap := float64(spmBytes / 2)
	dyB := float64(d.SizeY()) * e
	dwB := float64(d.SizeW()) * e
	dxB := float64(d.SizeX()) * e
	xB := dxB * xf

	var c OrderCosts

	// Interleave-only: the dW-side dY pass hits only while dY stays
	// resident alongside the streams' bands.
	if dyB > 0.5*cap {
		c.Interleave = dyB
	}

	// dXmajor: live set is dW partials + the W stream + row-chunk bands.
	if 2*dwB > 0.75*cap {
		chunkRows := chunkTiles(cap*fusedChunkShare, float64(p.Tiling.Tm)*float64(d.K)*e)
		mt, _, _ := p.Tiling.Counts(d)
		chunks := ceilDivInt(mt, chunkRows)
		c.DXMajor = float64(chunks-1) * dwB // W re-streamed per chunk
		if dwB > 0.625*cap {
			c.DXMajor += 2 * dwB // carried partials overflow: spill+refill
		}
	}

	// dWmajor: live set is dX partials + the X stream + column-chunk bands.
	if dxB+xB > 0.75*cap {
		chunkCols := chunkTiles(cap*fusedChunkShare, float64(d.K)*float64(p.Tiling.Tn)*e)
		_, _, nt := p.Tiling.Counts(d)
		chunks := ceilDivInt(nt, chunkCols)
		c.DWMajor = float64(chunks-1) * xB // X re-streamed per chunk
		if dxB > 0.625*cap {
			c.DWMajor += 2 * dxB
		}
	}
	return c
}

func chunkTiles(budget, perTile float64) int {
	if perTile <= 0 {
		return 1
	}
	c := int(budget / perTile)
	if c < 1 {
		c = 1
	}
	return c
}

func ceilDivInt(a, b int) int { return (a + b - 1) / b }

// SelectOrderFor is the static access-order selection the tuned pipeline
// uses: Algorithm 1's structure (nearly-square computations keep the
// traditional orders) with the Section 4.3 capacity qualification made
// quantitative — the paper notes that intermediate results beyond SPM
// capacity cost additional memory traffic and that "some layers might
// perform better without using dWmajor or dXmajor"; this selector compares
// those closed-form costs and keeps the cheapest order. It remains fully
// static: only tensor dimensions, the tiling and the SPM capacity enter.
func SelectOrderFor(p schedule.TileParams, spmBytes int64) Order {
	if p.Dims.AlmostSquare(AlmostSquareRatio) {
		return OnlyInterleave
	}
	c := EstimateOrderCosts(p, spmBytes)
	switch {
	case c.Interleave <= c.DXMajor && c.Interleave <= c.DWMajor:
		return OnlyInterleave
	case c.DXMajor <= c.DWMajor:
		return DXMajor
	default:
		return DWMajor
	}
}

// InterleaveOnly fuses the two gradient GEMMs at tile granularity
// (Figure 8b) using the default baseline loop orders. See
// InterleaveOnlyOrdered for explicit orders.
func InterleaveOnly(p schedule.TileParams) schedule.Schedule {
	return InterleaveOnlyOrdered(p, schedule.DXOrderMK, schedule.DWOrderKN)
}

// InterleaveOnlyOrdered fuses the two gradient GEMMs at tile granularity:
// the i-th tile op of the conventional dX stream alternates with the i-th
// tile op of the conventional dW stream. Both streams keep their
// traditional access orders, so the fusion is a pure reordering of the
// baseline's op multiset.
func InterleaveOnlyOrdered(p schedule.TileParams, dxo schedule.DXLoopOrder, dwo schedule.DWLoopOrder) schedule.Schedule {
	dx := schedule.BaselineDXOrdered(p, dxo)
	dw := schedule.BaselineDWOrdered(p, dwo)
	if len(dx) != len(dw) {
		// Both streams enumerate the same (mo, ko, no) grid.
		panic(fmt.Sprintf("core: interleave stream mismatch %d vs %d", len(dx), len(dw)))
	}
	ops := make([]schedule.Op, 0, len(dx)+len(dw))
	for i := range dx {
		ops = append(ops, dx[i], dw[i])
	}
	return schedule.Schedule{Name: "interleave", Ops: ops}
}

// InterleaveDXMajor emits the Interleaving+dXmajor schedule (Figure 10b):
// dY is walked row-major once; each dY tile feeds its dX accumulation ops
// and then its dW accumulation ops before the walk advances. dX output
// tiles complete row-band by row-band; every dW output tile stays a partial
// sum for the entire M sweep, and the engine charges any overflow of those
// partials as the "additional memory traffic" of Section 4.3.
func InterleaveDXMajor(p schedule.TileParams) schedule.Schedule {
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	ops := make([]schedule.Op, 0, 2*mt*kt*nt)
	for mo := 0; mo < mt; mo++ {
		for no := 0; no < nt; no++ {
			for ko := 0; ko < kt; ko++ {
				ops = append(ops, p.DXOp(mo, ko, no, nt))
				ops = append(ops, p.DWOp(ko, no, mo, mt))
			}
		}
	}
	return schedule.Schedule{Name: "interleave+dXmajor", Ops: ops}
}

// InterleaveDWMajor emits the Interleaving+dWmajor schedule (Figure 10c):
// dY is walked column-major once; dW output tiles complete column-band by
// column-band while every dX output tile stays a partial sum for the entire
// N sweep.
func InterleaveDWMajor(p schedule.TileParams) schedule.Schedule {
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	ops := make([]schedule.Op, 0, 2*mt*kt*nt)
	for no := 0; no < nt; no++ {
		for mo := 0; mo < mt; mo++ {
			for ko := 0; ko < kt; ko++ {
				ops = append(ops, p.DWOp(ko, no, mo, mt))
				ops = append(ops, p.DXOp(mo, ko, no, nt))
			}
		}
	}
	return schedule.Schedule{Name: "interleave+dWmajor", Ops: ops}
}

// InterleaveDXMajorChunked is the dXmajor order with the dX row sweep
// processed in chunks of chunkRows tile-rows, so the completing output's
// live partials are bounded by construction (the reduction-inner structure
// and the single dY pass are preserved):
//
//	for each chunk of dX tile-rows:
//	    for no: for mo in chunk: for ko: dX op; dW op
func InterleaveDXMajorChunked(p schedule.TileParams, chunkRows int) schedule.Schedule {
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	if chunkRows < 1 {
		chunkRows = 1
	}
	if chunkRows > mt {
		chunkRows = mt
	}
	ops := make([]schedule.Op, 0, 2*mt*kt*nt)
	for mc := 0; mc < mt; mc += chunkRows {
		hi := min(mc+chunkRows, mt)
		for no := 0; no < nt; no++ {
			for mo := mc; mo < hi; mo++ {
				for ko := 0; ko < kt; ko++ {
					ops = append(ops, p.DXOp(mo, ko, no, nt))
					ops = append(ops, p.DWOp(ko, no, mo, mt))
				}
			}
		}
	}
	return schedule.Schedule{Name: "interleave+dXmajor", Ops: ops}
}

// InterleaveDWMajorChunked is the dWmajor order with the dW column sweep
// processed in chunks of chunkCols tile-columns.
func InterleaveDWMajorChunked(p schedule.TileParams, chunkCols int) schedule.Schedule {
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	if chunkCols < 1 {
		chunkCols = 1
	}
	if chunkCols > nt {
		chunkCols = nt
	}
	ops := make([]schedule.Op, 0, 2*mt*kt*nt)
	for nc := 0; nc < nt; nc += chunkCols {
		hi := min(nc+chunkCols, nt)
		for mo := 0; mo < mt; mo++ {
			for no := nc; no < hi; no++ {
				for ko := 0; ko < kt; ko++ {
					ops = append(ops, p.DWOp(ko, no, mo, mt))
					ops = append(ops, p.DXOp(mo, ko, no, nt))
				}
			}
		}
	}
	return schedule.Schedule{Name: "interleave+dWmajor", Ops: ops}
}

// Interleaved dispatches on the access order (unchunked variants; the tuned
// pipeline uses the chunked forms via RearrangedTuned).
func Interleaved(p schedule.TileParams, o Order) schedule.Schedule {
	switch o {
	case DXMajor:
		return InterleaveDXMajor(p)
	case DWMajor:
		return InterleaveDWMajor(p)
	default:
		return InterleaveOnly(p)
	}
}

// Rearranged applies Algorithm 1 to pick the order and emits the
// corresponding interleaved schedule — the paper's "rearrangement"
// (interleaving + access-order change).
func Rearranged(p schedule.TileParams) schedule.Schedule {
	return Interleaved(p, SelectOrder(p.Dims))
}
