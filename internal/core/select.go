package core

import (
	"math"

	"igosim/internal/config"
	"igosim/internal/knn"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/tensor"
)

// SchemeSample is one labelled layer for the partition-scheme selector.
type SchemeSample struct {
	Dims tensor.Dims
	Best Scheme
}

// SchemeFeatures maps a layer's GEMM dimensions to the KNN feature vector.
// The paper uses "the dimensions of dX, dW, and dY as features"; those six
// numbers are (M,K), (K,N) and (M,N), which the log-scaled triple (M,K,N)
// plus their pairwise products' logs span. Log scaling keeps the classifier
// sensitive to shape ratios rather than raw magnitudes.
func SchemeFeatures(d tensor.Dims) []float64 {
	lm, lk, ln := math.Log2(float64(d.M)), math.Log2(float64(d.K)), math.Log2(float64(d.N))
	return []float64{
		lm, lk, ln, // tensor extents
		lm + lk, // size of dX
		lk + ln, // size of dW
		lm + ln, // size of dY
	}
}

// DefaultSchemeK is the KNN neighbourhood size used by the selector.
const DefaultSchemeK = 3

// BestSchemeEmpirical simulates the three partitioning schemes of Figure 11
// (each with `parts` partitions, rearranged per partition) and returns the
// fastest, mirroring how the paper labels its KNN training set
// ("we empirically determine the most efficient data partitioning scheme
// ... for each layer in the training set").
func BestSchemeEmpirical(cfg config.NPU, opts sim.Options, p schedule.TileParams, parts int) (Scheme, LayerOutcome) {
	var bestScheme Scheme
	var best LayerOutcome
	first := true
	for _, scheme := range Schemes() {
		cand := RunPartitionedScheme(cfg, opts, p, scheme, parts)
		if first || cand.Cycles < best.Cycles {
			best = cand
			bestScheme = scheme
			first = false
		}
	}
	return bestScheme, best
}

// RunPartitionedScheme simulates one specific scheme with `parts`
// partitions: concurrently across cores on a multi-core configuration,
// sequentially on a single core. Plans that degenerate to one partition
// are simulated whole. Results are memoized per layer shape.
func RunPartitionedScheme(cfg config.NPU, opts sim.Options, p schedule.TileParams, scheme Scheme, parts int) LayerOutcome {
	key := layerKeyFor(cfg, p, memoPartitionScheme, opts)
	key.scheme, key.parts = scheme, parts
	return layerMemo.GetOrCompute(key, func() LayerOutcome {
		return runPartitionedScheme(cfg, opts, p, scheme, parts)
	})
}

func runPartitionedScheme(cfg config.NPU, opts sim.Options, p schedule.TileParams, scheme Scheme, parts int) LayerOutcome {
	plan := PartitionLayer(p, scheme, parts)
	var out LayerOutcome
	if cfg.Cores > 1 {
		out = runMultiPlanPolicy(cfg, opts, plan, PolRearrange, true)
	} else if len(plan.Parts) < 2 {
		out = RunBackward(cfg, opts, p, PolRearrange, false)
	} else {
		var ok bool
		out, ok = runPartitionedSingle(cfg, opts, p, scheme, parts)
		if !ok {
			out = RunBackward(cfg, opts, p, PolRearrange, false)
		}
	}
	out.Scheme = scheme
	out.Dims = p.Dims
	out.Policy = PolPartition
	return out
}

// TrainSchemeSelector fits the KNN partition-scheme selector on labelled
// layers.
func TrainSchemeSelector(samples []SchemeSample, k int) (*SchemeSelector, error) {
	train := make([]knn.Sample, len(samples))
	for i, s := range samples {
		train[i] = knn.Sample{Features: SchemeFeatures(s.Dims), Label: int(s.Best)}
	}
	cls, err := knn.Train(train, k)
	if err != nil {
		return nil, err
	}
	return &SchemeSelector{cls: cls}, nil
}

// SchemeSelector predicts a partitioning scheme from layer dimensions.
type SchemeSelector struct {
	cls *knn.Classifier
}

// Predict returns the scheme the selector picks for the given layer.
func (s *SchemeSelector) Predict(d tensor.Dims) Scheme {
	return Scheme(s.cls.Predict(SchemeFeatures(d)))
}
