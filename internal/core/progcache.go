package core

import (
	"igosim/internal/config"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/sim"
)

// Compiled-program cache (DESIGN.md §3k). The layer memo (memo.go) caches
// *outcomes*, so it only helps when the full (hardware fingerprint, shape,
// policy) point repeats. A serving workload's near-duplicate queries vary
// exactly the timing half of the fingerprint — DRAM bandwidth, latency,
// clock — while the emitted tile streams stay identical: op emission
// depends on the configuration only through ElemBytes and SPMBytes (chunk
// sizing) plus the *tuned candidate choices*, never on how fast the
// simulated DRAM moves. Caching the compiled program under that narrower
// key means a what-if bandwidth sweep pays schedule emission, interning
// and lowering once and replays the same dense program under each timing.
//
// Soundness: the tuned candidates ARE bandwidth-dependent (the tuner
// simulates to pick them), so they are resolved first — through their own
// fingerprint-keyed caches — and included in the key. Two configurations
// that tune to different candidates get different programs; two that tune
// alike share one. Tile ids are normalized (Layer/Part zeroed) exactly as
// in the layer memo: a bijective renaming of tile keys cannot change
// residency behaviour, so the shared program's results are identical to a
// per-layer compilation — but its trace labels would not be, which is why
// the cache is bypassed for traced runs.

// progKey identifies one compiled kernel sequence up to tensor renaming
// and hardware timing.
type progKey struct {
	p      schedule.TileParams // Layer/Part zeroed
	spm    int64               // cfg.SPMBytes: sizes baseline/fused chunks
	elem   int                 // cfg.ElemBytes: sizes every tile transfer
	kind   memoKind
	pol    Policy
	order  Order
	skipDX bool
	tuned  ordersVal // zero when the stream uses no tuned candidates
}

var progCache = runner.NewCache[progKey, *schedule.Program]("core/compiled-prog")

// useProgramCache reports whether a RunBackward/RunForward call can go
// through the shared compiled-program cache: the compiled executor must be
// the resolved choice, and the run must be untraced (a shared program
// carries normalized tile ids, which results are invariant to but trace
// labels are not).
func useProgramCache(opts sim.Options) bool {
	return opts.Trace == nil && opts.CompiledResolved()
}

// backwardProgram returns the retained compiled program for one layer's
// non-partitioned backward pass, sharing it across layers and hardware
// timings that emit the same stream. The access order is resolved the same
// way BackwardKernels resolves it.
func backwardProgram(cfg config.NPU, p schedule.TileParams, pol Policy, skipDX bool) (*schedule.Program, Order) {
	np := p
	np.Layer, np.Part = 0, 0
	key := progKey{
		p: np, spm: cfg.SPMBytes, elem: cfg.ElemBytes,
		kind: memoBackward, pol: pol, skipDX: skipDX,
		order: OnlyInterleave,
	}
	switch {
	case skipDX, pol == PolBaseline:
		key.tuned = baselineChoices(cfg, np)
	case pol == PolInterleave:
		key.tuned = interleaveChoices(cfg, np)
	default: // PolRearrange and above
		key.order = BestOrderSimulated(cfg, np)
		if key.order == OnlyInterleave {
			key.tuned = interleaveChoices(cfg, np)
		}
	}
	// Shared (canonical) result: the program pointer keys the sim layer's
	// resolved-trace cache, so a miss race must converge on one pointer per
	// logical program or the distinct-key census would vary with -j.
	prog := progCache.GetOrComputeShared(key, func() *schedule.Program {
		kernels, _ := BackwardKernels(cfg, np, pol, skipDX)
		return sim.CompileSchedules(kernels...)
	})
	return prog, key.order
}

// forwardProgram returns the retained compiled program for one layer's
// forward pass. The forward schedule depends on the tile parameters alone,
// so the key carries no configuration fields beyond the element size
// already inside TileParams.
func forwardProgram(p schedule.TileParams) *schedule.Program {
	np := p
	np.Layer, np.Part = 0, 0
	key := progKey{p: np, elem: np.ElemBytes, kind: memoForward}
	return progCache.GetOrComputeShared(key, func() *schedule.Program {
		return sim.CompileSchedules(schedule.Forward(np))
	})
}

// ProgramCacheLen returns the number of retained compiled programs (tests
// and the serving layer's diagnostics read it).
func ProgramCacheLen() int { return progCache.Len() }

// Candidate-program panels. The tuners (baselineChoices, interleaveChoices,
// BestOrderSimulated) re-simulate their candidate schedules for every
// hardware fingerprint, because the winner is timing-dependent — but the
// candidate *streams* themselves depend on the configuration only through
// SPMBytes (chunk sizing) and ElemBytes, exactly like the tuned programs
// above. A panel retains one canonical shape's candidate family as
// compiled programs under that narrower key, so a bandwidth sweep's
// re-tuning does ONE cache lookup per family and then replays retained
// programs through the sim layer's resolved-trace cache. (An earlier
// revision keyed each candidate individually; hashing the wide
// per-candidate key ~30k times per sweep cost as much as the replays it
// guarded.) Panels are per tuner family — baseline pair, fusion set,
// chunked majors — and built only when that tuner first reaches the
// shape, so a shape that only ever tunes its baseline never compiles (or
// allocates the op streams of) the twelve fusion candidates.

// panelKey identifies one shape's candidate panel up to tensor renaming
// and hardware timing.
type panelKey struct {
	p    schedule.TileParams // Layer/Part zeroed
	spm  int64
	elem int
}

// basePanel holds the baseline tuner's isolated candidates, indexed by
// the candidate ids it explores (dxMK/dxKM, dwKN/dwNK).
type basePanel struct {
	dx [2]*schedule.Program
	dw [2]*schedule.Program
}

// mergeProg is one fused-stream candidate: its (dx order, dw order,
// granularity) choice and the retained program.
type mergeProg struct {
	v    ordersVal
	prog *schedule.Program
}

// mergeSet lists one shape's valid fusion combinations in the joint
// tuner's exploration order, so ties break identically whether the tuner
// walks the panel or re-emits under the interpreter.
type mergeSet []mergeProg

// majorPanel holds the two chunked-major rearranged candidates.
type majorPanel struct {
	dxMajor *schedule.Program
	dwMajor *schedule.Program
}

var (
	basePanels  = runner.NewCache[panelKey, *basePanel]("core/baseline-panel")
	mergePanels = runner.NewCache[panelKey, mergeSet]("core/merge-panel")
	majorPanels = runner.NewCache[panelKey, *majorPanel]("core/major-panel")
)

// panelOpBudget bounds the single-GEMM op count up to which candidate
// panels are compiled and retained. A panel pays off when the same shape
// is re-tuned under many hardware fingerprints (bandwidth sweeps), whose
// shapes are small; for the huge op grids of tiny-SPM configurations (the
// GPU validation study's 128 KB buffer) retaining a dozen multi-megabyte
// candidate programs per shape grows the heap far faster than the replays
// repay. Oversized shapes fall back to emit-and-interpret, which reaches
// bit-identical tuning decisions (the candidate orders match and the
// executors are equivalence-tested).
const panelOpBudget = 1 << 13

// panelFor wraps the shared compute of one panel family: nil (tuners then
// emit and RunSchedules per candidate) when the interpreter is the
// resolved executor or the shape's op grid exceeds the panel budget.
// Shared values: a miss race converges on one panel, so the program
// pointers keying the sim layer's resolved-trace cache stay canonical at
// any -j.
func panelFor[V any](cache *runner.Cache[panelKey, V], single config.NPU, np schedule.TileParams, build func() V) V {
	if !(sim.Options{}).CompiledResolved() || np.OpCount() > panelOpBudget {
		var zero V
		return zero
	}
	key := panelKey{p: np, spm: single.SPMBytes, elem: single.ElemBytes}
	return cache.GetOrComputeShared(key, build)
}

func baselinePanel(single config.NPU, np schedule.TileParams) *basePanel {
	return panelFor(basePanels, single, np, func() *basePanel {
		pn := &basePanel{}
		for _, c := range []dxCandidate{dxMK, dxKM} {
			pn.dx[c] = sim.CompileSchedules(schedule.Schedule{Ops: baselineDXOps(single, np, c)})
		}
		for _, c := range []dwCandidate{dwKN, dwNK} {
			pn.dw[c] = sim.CompileSchedules(schedule.Schedule{Ops: baselineDWOps(single, np, c)})
		}
		return pn
	})
}

func mergePanel(single config.NPU, np schedule.TileParams) mergeSet {
	return panelFor(mergePanels, single, np, func() mergeSet {
		var set mergeSet
		dxLen := np.OpCount()
		for _, dc := range []dxCandidate{dxMK, dxKM} {
			dxOps := baselineDXOps(single, np, dc)
			for _, wc := range []dwCandidate{dwKN, dwNK} {
				dwOps := baselineDWOps(single, np, wc)
				for _, blk := range interleaveBlocks {
					// A block at least as long as a stream degenerates to the
					// sequential baseline; the fusion must actually alternate.
					if blk > 1 && blk >= dxLen {
						continue
					}
					set = append(set, mergeProg{
						v:    ordersVal{dx: dc, dw: wc, block: blk},
						prog: sim.CompileSchedules(schedule.Schedule{Ops: mergeStreams(dxOps, dwOps, blk)}),
					})
				}
			}
		}
		return set
	})
}

func majorPanelFor(single config.NPU, np schedule.TileParams) *majorPanel {
	return panelFor(majorPanels, single, np, func() *majorPanel {
		return &majorPanel{
			dxMajor: sim.CompileSchedules(FusedDXMajor(single, np)),
			dwMajor: sim.CompileSchedules(FusedDWMajor(single, np)),
		}
	})
}

// dxProg / dwProg / progFor / *MajorProg return the retained program for
// one candidate, or nil on a nil (interpreter-mode) panel — tuneCycles
// then falls back to emitting the schedule.
func (pn *basePanel) dxProg(c dxCandidate) *schedule.Program {
	if pn == nil {
		return nil
	}
	return pn.dx[c]
}

func (pn *basePanel) dwProg(c dwCandidate) *schedule.Program {
	if pn == nil {
		return nil
	}
	return pn.dw[c]
}

func (s mergeSet) progFor(v ordersVal) *schedule.Program {
	for i := range s {
		if s[i].v == v {
			return s[i].prog
		}
	}
	return nil
}

func (pn *majorPanel) dxMajorProg() *schedule.Program {
	if pn == nil {
		return nil
	}
	return pn.dxMajor
}

func (pn *majorPanel) dwMajorProg() *schedule.Program {
	if pn == nil {
		return nil
	}
	return pn.dwMajor
}

// tuneParams canonicalizes tile parameters to the equivalence the tuning
// caches already declare (ordersKey keys on dims/tiling/elem/xfactor
// only): tensor-instance ids, partition offsets and partial-output
// redirection are bijective tile renamings that cannot change residency
// or cycle outcomes. Tuning closures emit candidates from the canonical
// representative so the candidate-program census does not depend on which
// equivalent variant reached the tuner first (a -j determinism property
// the manifest gate checks).
func tuneParams(p schedule.TileParams) schedule.TileParams {
	p.Layer, p.Part = 0, 0
	p.OffM, p.OffK, p.OffN = 0, 0, 0
	p.DXPartial, p.DWPartial = false, false
	return p
}

// tuneCycles simulates one tuning candidate and returns its makespan:
// the retained panel program through RunProgram's two-phase path, or —
// when prog is nil because the interpreter is the resolved executor — a
// plain RunSchedules of the freshly emitted schedule. Both paths are
// bit-identical (the engine-equivalence property suite holds this), so
// which one runs never changes a tuner's choice.
func tuneCycles(single config.NPU, prog *schedule.Program, emit func() schedule.Schedule) int64 {
	opts := sim.Options{}
	if prog != nil && opts.CompiledResolved() {
		return sim.RunProgram(single, opts, prog).Cycles
	}
	return sim.RunSchedules(single, opts, emit()).Cycles
}

// partKey identifies one single-core partitioned plan's compiled program
// up to tensor renaming and hardware timing: the parent shape, the plan
// axes, and the per-part tuned choices (access order, and for interleave
// orders the fused-stream candidates) that shape each part's stream.
type partKey struct {
	p      schedule.TileParams // Layer/Part zeroed (parent)
	spm    int64
	elem   int
	scheme Scheme
	parts  int
	orders [4]Order
	tuned  [4]ordersVal
}

var partCache = runner.NewCache[partKey, *schedule.Program]("core/partitioned-prog")

// partitionedProgram returns the retained compiled program for one
// single-core partitioned plan (partitions as separate kernels, scratchpad
// flushed between them). The per-part tuned choices are resolved first and
// folded into the key, mirroring backwardProgram; plans with more parts
// than the key holds are not cached (ok=false).
func partitionedProgram(cfg config.NPU, p schedule.TileParams, scheme Scheme, parts int, plan Plan) (*schedule.Program, []Order, bool) {
	if len(plan.Parts) > len(partKey{}.orders) {
		return nil, nil, false
	}
	// Same size discipline as the candidate panels: retaining a compiled
	// program per huge-grid plan would pin more memory than replays repay.
	if p.OpCount() > panelOpBudget {
		return nil, nil, false
	}
	np := p
	np.Layer, np.Part = 0, 0
	key := partKey{
		p: np, spm: cfg.SPMBytes, elem: cfg.ElemBytes,
		scheme: scheme, parts: len(plan.Parts),
	}
	orders := make([]Order, len(plan.Parts))
	for i, sub := range plan.Parts {
		o := BestOrderSimulated(cfg, sub)
		orders[i] = o
		key.orders[i] = o
		if o == OnlyInterleave {
			key.tuned[i] = interleaveChoices(cfg, sub)
		}
	}
	prog := partCache.GetOrComputeShared(key, func() *schedule.Program {
		// Rebuild from the normalized parent so the retained program's tile
		// ids are canonical regardless of which layer resolved it first.
		nplan := PartitionLayer(np, scheme, parts)
		scheds := make([]schedule.Schedule, 0, len(nplan.Parts))
		for i, sub := range nplan.Parts {
			sched, _ := RearrangedWithOrder(cfg, sub, key.orders[i])
			scheds = append(scheds, sched)
		}
		return sim.CompileSchedules(scheds...)
	})
	return prog, orders, true
}
