package core

import (
	"igosim/internal/config"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/sim"
)

// Compiled-program cache (DESIGN.md §3k). The layer memo (memo.go) caches
// *outcomes*, so it only helps when the full (hardware fingerprint, shape,
// policy) point repeats. A serving workload's near-duplicate queries vary
// exactly the timing half of the fingerprint — DRAM bandwidth, latency,
// clock — while the emitted tile streams stay identical: op emission
// depends on the configuration only through ElemBytes and SPMBytes (chunk
// sizing) plus the *tuned candidate choices*, never on how fast the
// simulated DRAM moves. Caching the compiled program under that narrower
// key means a what-if bandwidth sweep pays schedule emission, interning
// and lowering once and replays the same dense program under each timing.
//
// Soundness: the tuned candidates ARE bandwidth-dependent (the tuner
// simulates to pick them), so they are resolved first — through their own
// fingerprint-keyed caches — and included in the key. Two configurations
// that tune to different candidates get different programs; two that tune
// alike share one. Tile ids are normalized (Layer/Part zeroed) exactly as
// in the layer memo: a bijective renaming of tile keys cannot change
// residency behaviour, so the shared program's results are identical to a
// per-layer compilation — but its trace labels would not be, which is why
// the cache is bypassed for traced runs.

// progKey identifies one compiled kernel sequence up to tensor renaming
// and hardware timing.
type progKey struct {
	p      schedule.TileParams // Layer/Part zeroed
	spm    int64               // cfg.SPMBytes: sizes baseline/fused chunks
	elem   int                 // cfg.ElemBytes: sizes every tile transfer
	kind   memoKind
	pol    Policy
	order  Order
	skipDX bool
	tuned  ordersVal // zero when the stream uses no tuned candidates
}

var progCache = runner.NewCache[progKey, *schedule.Program]("core/compiled-prog")

// useProgramCache reports whether a RunBackward/RunForward call can go
// through the shared compiled-program cache: the compiled executor must be
// the resolved choice, and the run must be untraced (a shared program
// carries normalized tile ids, which results are invariant to but trace
// labels are not).
func useProgramCache(opts sim.Options) bool {
	return opts.Trace == nil && opts.CompiledResolved()
}

// backwardProgram returns the retained compiled program for one layer's
// non-partitioned backward pass, sharing it across layers and hardware
// timings that emit the same stream. The access order is resolved the same
// way BackwardKernels resolves it.
func backwardProgram(cfg config.NPU, p schedule.TileParams, pol Policy, skipDX bool) (*schedule.Program, Order) {
	np := p
	np.Layer, np.Part = 0, 0
	key := progKey{
		p: np, spm: cfg.SPMBytes, elem: cfg.ElemBytes,
		kind: memoBackward, pol: pol, skipDX: skipDX,
		order: OnlyInterleave,
	}
	switch {
	case skipDX, pol == PolBaseline:
		key.tuned = baselineChoices(cfg, np)
	case pol == PolInterleave:
		key.tuned = interleaveChoices(cfg, np)
	default: // PolRearrange and above
		key.order = BestOrderSimulated(cfg, np)
		if key.order == OnlyInterleave {
			key.tuned = interleaveChoices(cfg, np)
		}
	}
	prog := progCache.GetOrCompute(key, func() *schedule.Program {
		kernels, _ := BackwardKernels(cfg, np, pol, skipDX)
		return sim.CompileSchedules(kernels...)
	})
	return prog, key.order
}

// forwardProgram returns the retained compiled program for one layer's
// forward pass. The forward schedule depends on the tile parameters alone,
// so the key carries no configuration fields beyond the element size
// already inside TileParams.
func forwardProgram(p schedule.TileParams) *schedule.Program {
	np := p
	np.Layer, np.Part = 0, 0
	key := progKey{p: np, elem: np.ElemBytes, kind: memoForward}
	return progCache.GetOrCompute(key, func() *schedule.Program {
		return sim.CompileSchedules(schedule.Forward(np))
	})
}

// ProgramCacheLen returns the number of retained compiled programs (tests
// and the serving layer's diagnostics read it).
func ProgramCacheLen() int { return progCache.Len() }
