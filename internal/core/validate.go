package core

import (
	"fmt"

	"igosim/internal/schedule"
	"igosim/internal/tensor"
)

// Executor numerically executes tile-op streams against real matrices.
// It backs the correctness claim of Section 4.2: every transformation in
// this package is a pure reordering of the baseline's tile operations, so
// the computed gradients are identical. Tile coordinates in op keys are
// parent-grid coordinates (partitions included), so the executor needs no
// knowledge of partitioning: partial sums land in the same output matrices
// and the cross-partition reduction happens implicitly.
type Executor struct {
	Tiling schedule.Tiling
	X, W   *tensor.Matrix
	DY     *tensor.Matrix
	Y      *tensor.Matrix
	DX, DW *tensor.Matrix
}

// NewExecutor prepares an executor for one layer. X, W and dY are filled
// with a deterministic position-dependent pattern so any mis-indexed tile
// in a schedule changes the results.
func NewExecutor(d tensor.Dims, t schedule.Tiling) *Executor {
	e := &Executor{
		Tiling: t,
		X:      tensor.NewMatrix(d.M, d.K),
		W:      tensor.NewMatrix(d.K, d.N),
		DY:     tensor.NewMatrix(d.M, d.N),
		Y:      tensor.NewMatrix(d.M, d.N),
		DX:     tensor.NewMatrix(d.M, d.K),
		DW:     tensor.NewMatrix(d.K, d.N),
	}
	e.X.FillPattern(1.25)
	e.W.FillPattern(-0.75)
	e.DY.FillPattern(0.5)
	return e
}

// Run executes the op stream, accumulating into Y, DX and DW.
func (e *Executor) Run(ops []schedule.Op) {
	for i := range ops {
		e.step(&ops[i])
	}
}

func (e *Executor) step(op *schedule.Op) {
	t := e.Tiling
	switch op.Kind {
	case schedule.KindDX:
		// dX[m-block, k-block] += dY[m-block, n-block] x W[k-block, n-block]^T
		mBase := int(op.Out.Key.Row) * t.Tm
		kBase := int(op.Out.Key.Col) * t.Tk
		nBase := int(op.A.Key.Col) * t.Tn
		for i := 0; i < op.Tm; i++ { // rows of dX (M)
			for j := 0; j < op.Tn; j++ { // cols of dX (K)
				var sum float64
				for r := 0; r < op.Tk; r++ { // reduction (N)
					sum += e.DY.At(mBase+i, nBase+r) * e.W.At(kBase+j, nBase+r)
				}
				e.DX.Add(mBase+i, kBase+j, sum)
			}
		}
	case schedule.KindDW:
		// dW[k-block, n-block] += X[m-block, k-block]^T x dY[m-block, n-block]
		kBase := int(op.Out.Key.Row) * t.Tk
		nBase := int(op.Out.Key.Col) * t.Tn
		mBase := int(op.A.Key.Row) * t.Tm
		for i := 0; i < op.Tm; i++ { // rows of dW (K)
			for j := 0; j < op.Tn; j++ { // cols of dW (N)
				var sum float64
				for r := 0; r < op.Tk; r++ { // reduction (M)
					sum += e.X.At(mBase+r, kBase+i) * e.DY.At(mBase+r, nBase+j)
				}
				e.DW.Add(kBase+i, nBase+j, sum)
			}
		}
	case schedule.KindFwd:
		// Y[m-block, n-block] += X[m-block, k-block] x W[k-block, n-block]
		mBase := int(op.Out.Key.Row) * t.Tm
		nBase := int(op.Out.Key.Col) * t.Tn
		kBase := int(op.A.Key.Col) * t.Tk
		for i := 0; i < op.Tm; i++ {
			for j := 0; j < op.Tn; j++ {
				var sum float64
				for r := 0; r < op.Tk; r++ {
					sum += e.X.At(mBase+i, kBase+r) * e.W.At(kBase+r, nBase+j)
				}
				e.Y.Add(mBase+i, nBase+j, sum)
			}
		}
	default:
		panic(fmt.Sprintf("core: executor cannot run op kind %v", op.Kind))
	}
}

// ReferenceGradients computes dX and dW with plain matrix products.
func (e *Executor) ReferenceGradients() (dx, dw *tensor.Matrix) {
	dx = tensor.MatMul(e.DY, e.W.Transpose())
	dw = tensor.MatMul(e.X.Transpose(), e.DY)
	return dx, dw
}

// CheckEquivalence executes the op stream and verifies the accumulated
// gradients match the reference matrix products within tol. It returns a
// descriptive error on mismatch.
func CheckEquivalence(d tensor.Dims, t schedule.Tiling, ops []schedule.Op, tol float64) error {
	e := NewExecutor(d, t)
	e.Run(ops)
	refDX, refDW := e.ReferenceGradients()
	if diff := tensor.MaxAbsDiff(e.DX, refDX); diff > tol {
		return fmt.Errorf("core: dX deviates from reference by %g (tol %g) for %v", diff, tol, d)
	}
	if diff := tensor.MaxAbsDiff(e.DW, refDW); diff > tol {
		return fmt.Errorf("core: dW deviates from reference by %g (tol %g) for %v", diff, tol, d)
	}
	return nil
}
