package core

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/trace"
	"igosim/internal/workload"
)

// ModelRun is the simulated training step (forward + backward) of one model
// under one policy.
type ModelRun struct {
	Model  string
	Config string
	Policy Policy
	// Fwd and Bwd hold per-layer outcomes in network order.
	Fwd []LayerOutcome
	Bwd []LayerOutcome
	// FwdCycles/BwdCycles are the summed per-pass makespans.
	FwdCycles int64
	BwdCycles int64
	// BwdTraffic aggregates backward-pass DRAM traffic (Figure 5's basis).
	BwdTraffic dram.Traffic
}

// TotalCycles returns the training-step makespan (forward + backward).
func (r ModelRun) TotalCycles() int64 { return r.FwdCycles + r.BwdCycles }

// Seconds converts the training-step makespan to wall-clock time. A
// configuration without a valid clock (FrequencyHz <= 0) yields 0 rather
// than +Inf/NaN.
func (r ModelRun) Seconds(cfg config.NPU) float64 {
	if cfg.FrequencyHz <= 0 {
		return 0
	}
	return float64(r.TotalCycles()) / cfg.FrequencyHz
}

// traceOpts injects the process-wide active trace sink into opts when the
// caller did not pass one explicitly, and labels the layer's trace tracks
// "model/layer pass". Returns opts unchanged when tracing is off entirely.
func traceOpts(opts sim.Options, model, layer, pass string) sim.Options {
	if opts.Trace == nil {
		opts.Trace = trace.Active()
	}
	if opts.Trace != nil {
		opts.TraceLabel = model + "/" + layer + " " + pass
	}
	return opts
}

// LayerPlan pairs a workload layer with its tile parameters, fixing ids and
// tiling once so every policy simulates identical tile grids.
type LayerPlan struct {
	Layer  workload.Layer
	Params schedule.TileParams
}

// PlanModel lowers a model to per-layer tile parameters under cfg. The
// batch is the configuration's total batch (scaled per model for
// recommendation workloads inside the zoo).
func PlanModel(cfg config.NPU, m workload.Model) []LayerPlan {
	layers := m.Layers(cfg.TotalBatch())
	if len(layers) > schedule.MaxLayers {
		panic(fmt.Sprintf("core: model %s has %d layers, max %d", m.Abbr, len(layers), schedule.MaxLayers))
	}
	plans := make([]LayerPlan, len(layers))
	for i, l := range layers {
		params := LayerParams(l.Dims, uint16(i), cfg)
		params.XFactor = l.XReuse
		plans[i] = LayerPlan{Layer: l, Params: params}
	}
	return plans
}

// layerPair is one layer's forward/backward outcome, produced by the
// runner fan-out and folded back into a ModelRun in network order.
type layerPair struct {
	fwd, bwd LayerOutcome
}

// RunTraining simulates one training step of the model: the forward pass
// (always baseline — the techniques only transform the backward pass) and
// the backward pass under the given policy. Multi-core configurations are
// handled transparently. Layers are independent simulations, so they fan
// out over the runner's worker pool; outcomes are folded back in network
// order, keeping results identical to the sequential walk.
func RunTraining(cfg config.NPU, opts sim.Options, m workload.Model, pol Policy) ModelRun {
	run := ModelRun{Model: m.Abbr, Config: cfg.Name, Policy: pol}
	outs := runner.Map(PlanModel(cfg, m), func(lp LayerPlan) layerPair {
		fwd := RunForwardMulti(cfg, traceOpts(opts, m.Abbr, lp.Layer.Name, "fwd"), lp.Params)
		fwd.Name = lp.Layer.Name
		bwd := RunBackwardMulti(cfg, traceOpts(opts, m.Abbr, lp.Layer.Name, "bwd"), lp.Params, pol, lp.Layer.SkipDX)
		bwd.Name = lp.Layer.Name
		return layerPair{fwd: fwd, bwd: bwd}
	})
	for _, o := range outs {
		run.Fwd = append(run.Fwd, o.fwd)
		run.FwdCycles += o.fwd.Cycles
		run.Bwd = append(run.Bwd, o.bwd)
		run.BwdCycles += o.bwd.Cycles
		run.BwdTraffic.Merge(o.bwd.Traffic)
	}
	countModelRun(run)
	return run
}

// RunBackwardOnly simulates just the backward pass of the model under the
// given policy (used by the Figure 17 GPU study, which measures only the
// backward pass).
func RunBackwardOnly(cfg config.NPU, opts sim.Options, m workload.Model, pol Policy) ModelRun {
	run := ModelRun{Model: m.Abbr, Config: cfg.Name, Policy: pol}
	outs := runner.Map(PlanModel(cfg, m), func(lp LayerPlan) LayerOutcome {
		bwd := RunBackwardMulti(cfg, traceOpts(opts, m.Abbr, lp.Layer.Name, "bwd"), lp.Params, pol, lp.Layer.SkipDX)
		bwd.Name = lp.Layer.Name
		return bwd
	})
	for _, bwd := range outs {
		run.Bwd = append(run.Bwd, bwd)
		run.BwdCycles += bwd.Cycles
		run.BwdTraffic.Merge(bwd.Traffic)
	}
	countModelRun(run)
	return run
}

// Improvement returns the fractional execution-time reduction of run
// against base (paper metric: "reduce the execution time by X%").
func Improvement(base, run ModelRun) float64 {
	b := base.TotalCycles()
	if b == 0 {
		return 0
	}
	return 1 - float64(run.TotalCycles())/float64(b)
}
