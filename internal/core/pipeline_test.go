package core

import (
	"testing"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/tensor"
	"igosim/internal/workload"
)

// tinyCfg keeps pipeline tests fast: a scaled-down NPU.
func tinyCfg() config.NPU {
	return config.NPU{
		Name: "tiny", ArrayRows: 8, ArrayCols: 8, Cores: 1,
		SPMBytes: 32 << 10, DRAMBandwidth: 8e9, DRAMLatency: 10,
		FrequencyHz: 1e9, ElemBytes: 4, Batch: 2,
	}
}

func TestTunedBaselineKernelsVerify(t *testing.T) {
	cfg := tinyCfg()
	p := LayerParams(tensor.Dims{M: 64, K: 48, N: 32}, 1, cfg)
	dxK, dwK := TunedBaselineKernels(cfg, p)
	ops := append(append([]schedule.Op{}, dxK.Ops...), dwK.Ops...)
	if err := schedule.VerifyBackward(p, ops, false); err != nil {
		t.Fatal(err)
	}
}

func TestTunedInterleaveVerifiesAndIsEquivalent(t *testing.T) {
	cfg := tinyCfg()
	d := tensor.Dims{M: 64, K: 48, N: 32}
	p := LayerParams(d, 1, cfg)
	s := TunedInterleave(cfg, p)
	if err := schedule.VerifyBackward(p, s.Ops, false); err != nil {
		t.Fatal(err)
	}
	if err := CheckEquivalence(d, p.Tiling, s.Ops, 1e-8); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardKernelsBaselineHasTwoKernels(t *testing.T) {
	cfg := tinyCfg()
	p := LayerParams(tensor.Dims{M: 32, K: 32, N: 32}, 1, cfg)
	kernels, _ := BackwardKernels(cfg, p, PolBaseline, false)
	if len(kernels) != 2 {
		t.Fatalf("baseline kernels = %d, want 2 (dX then dW)", len(kernels))
	}
	for _, pol := range []Policy{PolInterleave, PolRearrange} {
		kernels, _ := BackwardKernels(cfg, p, pol, false)
		if len(kernels) != 1 {
			t.Fatalf("%v kernels = %d, want 1 (fused)", pol, len(kernels))
		}
	}
	kernels, _ = BackwardKernels(cfg, p, PolPartition, true)
	if len(kernels) != 1 {
		t.Fatal("skipDX should produce a single dW kernel")
	}
}

func TestRunBackwardPartitionNeverWorseThanRearrange(t *testing.T) {
	cfg := tinyCfg()
	for _, d := range []tensor.Dims{
		{M: 128, K: 64, N: 32},
		{M: 16, K: 256, N: 64},
		{M: 64, K: 64, N: 64},
	} {
		p := LayerParams(d, 1, cfg)
		rea := RunBackward(cfg, sim.Options{}, p, PolRearrange, false)
		par := RunBackward(cfg, sim.Options{}, p, PolPartition, false)
		if par.Cycles > rea.Cycles {
			t.Errorf("%v: partition %d cycles worse than rearrange %d", d, par.Cycles, rea.Cycles)
		}
	}
}

func TestRearrangeNeverWorseThanInterleave(t *testing.T) {
	// BestOrderSimulated includes interleave-only as a candidate, so the
	// rearranged schedule can never lose to it.
	cfg := tinyCfg()
	for _, d := range []tensor.Dims{
		{M: 128, K: 64, N: 32},
		{M: 16, K: 256, N: 64},
	} {
		p := LayerParams(d, 1, cfg)
		ilv := RunBackward(cfg, sim.Options{}, p, PolInterleave, false)
		rea := RunBackward(cfg, sim.Options{}, p, PolRearrange, false)
		if rea.Cycles > ilv.Cycles {
			t.Errorf("%v: rearrange %d worse than interleave %d", d, rea.Cycles, ilv.Cycles)
		}
	}
}

func TestSkipDXSkipsDX(t *testing.T) {
	cfg := tinyCfg()
	p := LayerParams(tensor.Dims{M: 32, K: 32, N: 32}, 1, cfg)
	out := RunBackward(cfg, sim.Options{}, p, PolPartition, true)
	if out.Traffic.Write[dram.ClassDX] != 0 {
		t.Fatal("skipDX layer wrote dX")
	}
	if out.Traffic.Write[dram.ClassDW] == 0 {
		t.Fatal("skipDX layer must still write dW")
	}
}

func TestRunForwardWritesY(t *testing.T) {
	cfg := tinyCfg()
	p := LayerParams(tensor.Dims{M: 32, K: 32, N: 32}, 1, cfg)
	out := RunForward(cfg, sim.Options{}, p)
	if out.Traffic.Write[dram.ClassY] != 32*32*4 {
		t.Fatalf("Y writeback = %d", out.Traffic.Write[dram.ClassY])
	}
}

func TestRunBackwardMultiMatchesSingleOnOneCore(t *testing.T) {
	cfg := tinyCfg()
	p := LayerParams(tensor.Dims{M: 64, K: 32, N: 32}, 1, cfg)
	single := RunBackward(cfg, sim.Options{}, p, PolBaseline, false)
	multi := RunBackwardMulti(cfg, sim.Options{}, p, PolBaseline, false)
	if single.Cycles != multi.Cycles {
		t.Fatalf("single %d vs multi %d", single.Cycles, multi.Cycles)
	}
}

func TestMultiCoreBaselineIncludesReduction(t *testing.T) {
	cfg := tinyCfg().WithCores(2)
	p := LayerParams(tensor.Dims{M: 64, K: 32, N: 32}, 1, cfg)
	out := RunBackwardMulti(cfg, sim.Options{}, p, PolBaseline, false)
	// Batch-split baseline accumulates partial dW across cores.
	if out.Traffic.Read[dram.ClassAcc] == 0 {
		t.Fatal("multi-core batch-split baseline must pay a dW reduction")
	}
	if out.Scheme != WeightSharing || out.Parts != 2 {
		t.Fatalf("baseline plan: %v/%d", out.Scheme, out.Parts)
	}
}

func TestRunTrainingShape(t *testing.T) {
	cfg := tinyCfg()
	m := workload.Model{
		Name: "toy", Abbr: "toy",
	}
	_ = m // workload models require a build func; use a zoo model instead.
	ncf, err := workload.ByAbbr(workload.ServerSuite(), "ncf")
	if err != nil {
		t.Fatal(err)
	}
	run := RunTraining(cfg, sim.Options{}, ncf, PolBaseline)
	if len(run.Fwd) != len(run.Bwd) || len(run.Fwd) == 0 {
		t.Fatalf("per-layer outcomes: %d fwd vs %d bwd", len(run.Fwd), len(run.Bwd))
	}
	if run.FwdCycles <= 0 || run.BwdCycles <= 0 {
		t.Fatal("non-positive pass cycles")
	}
	if run.TotalCycles() != run.FwdCycles+run.BwdCycles {
		t.Fatal("TotalCycles mismatch")
	}
	// ncf is tiny and its first layer (the largest) skips dX, so only a
	// loose sanity bound applies here; the Fig03 experiment asserts the
	// backward pass dominates across the full suite.
	if run.BwdCycles*2 < run.FwdCycles {
		t.Fatal("backward pass implausibly cheap")
	}
}

func TestImprovement(t *testing.T) {
	base := ModelRun{FwdCycles: 50, BwdCycles: 50}
	run := ModelRun{FwdCycles: 50, BwdCycles: 25}
	if got := Improvement(base, run); got != 0.25 {
		t.Fatalf("improvement = %g", got)
	}
	if Improvement(ModelRun{}, run) != 0 {
		t.Fatal("zero baseline must yield zero improvement")
	}
}

func TestPolicyStrings(t *testing.T) {
	if len(Policies()) != 4 {
		t.Fatal("Policies() incomplete")
	}
	for _, p := range Policies() {
		if p.String() == "" {
			t.Fatalf("policy %d has empty name", p)
		}
	}
}

func TestRunTrainingSelectorMatchesIdeal(t *testing.T) {
	cfg := tinyCfg()
	ncf, _ := workload.ByAbbr(workload.ServerSuite(), "ncf")
	ideal := RunTrainingSelector(cfg, sim.Options{}, ncf, func(c config.NPU, p schedule.TileParams) Order {
		return BestOrderSimulated(c, p)
	})
	rea := RunTraining(cfg, sim.Options{}, ncf, PolRearrange)
	if ideal.BwdCycles != rea.BwdCycles {
		t.Fatalf("selector(ideal) %d != PolRearrange %d", ideal.BwdCycles, rea.BwdCycles)
	}
}

func TestConcatKernels(t *testing.T) {
	a := schedule.Schedule{Ops: make([]schedule.Op, 3)}
	b := schedule.Schedule{Ops: make([]schedule.Op, 2)}
	if got := len(ConcatKernels(a, b).Ops); got != 5 {
		t.Fatalf("concat ops = %d", got)
	}
}
