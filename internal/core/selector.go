package core

import (
	"igosim/internal/config"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/workload"
)

// OrderSelector chooses the interleaved access order for one layer. It
// abstracts the Section 4.3 selection policies: the Algorithm 1 listing,
// the prose rule, the static cost model, or the ideal (simulated) choice.
type OrderSelector func(cfg config.NPU, p schedule.TileParams) Order

// RunTrainingSelector simulates one single-core training step with the
// backward pass rearranged per the given order selector (used by the
// Section 4.3 Algorithm-1-vs-ideal study). Layers fan out over the runner
// pool and each (shape, chosen order) simulation is memoized, so the four
// selector variants of the study mostly re-use each other's results.
func RunTrainingSelector(cfg config.NPU, opts sim.Options, m workload.Model, sel OrderSelector) ModelRun {
	run := ModelRun{Model: m.Abbr, Config: cfg.Name, Policy: PolRearrange}
	outs := runner.Map(PlanModel(cfg, m), func(lp LayerPlan) layerPair {
		fwd := RunForwardMulti(cfg, traceOpts(opts, m.Abbr, lp.Layer.Name, "fwd"), lp.Params)
		fwd.Name = lp.Layer.Name

		bopts := traceOpts(opts, m.Abbr, lp.Layer.Name, "bwd")
		var bwd LayerOutcome
		if lp.Layer.SkipDX {
			bwd = runSelectorDWOnly(cfg, bopts, lp.Params)
		} else {
			bwd = runSelectorBackward(cfg, bopts, lp.Params, sel(cfg, lp.Params))
		}
		bwd.Name = lp.Layer.Name
		bwd.Dims = lp.Params.Dims
		bwd.Policy = PolRearrange
		bwd.Parts = 1
		return layerPair{fwd: fwd, bwd: bwd}
	})
	for _, o := range outs {
		run.Fwd = append(run.Fwd, o.fwd)
		run.FwdCycles += o.fwd.Cycles
		run.Bwd = append(run.Bwd, o.bwd)
		run.BwdCycles += o.bwd.Cycles
		run.BwdTraffic.Merge(o.bwd.Traffic)
	}
	return run
}

// runSelectorBackward simulates the rearranged backward pass under an
// explicit order choice, memoized per (shape, order).
func runSelectorBackward(cfg config.NPU, opts sim.Options, p schedule.TileParams, o Order) LayerOutcome {
	key := layerKeyFor(cfg, p, memoSelectorBwd, opts)
	key.order = o
	return memoLayer(key, opts, func() LayerOutcome {
		sched, chosen := RearrangedWithOrder(cfg, p, o)
		out := outcomeFromResult(sim.RunSchedules(cfg, opts, sched))
		out.Order = chosen
		return out
	})
}

// runSelectorDWOnly simulates the dW-only first layer, memoized per shape.
func runSelectorDWOnly(cfg config.NPU, opts sim.Options, p schedule.TileParams) LayerOutcome {
	key := layerKeyFor(cfg, p, memoSelectorBwd, opts)
	key.skipDX = true
	return memoLayer(key, opts, func() LayerOutcome {
		return outcomeFromResult(sim.RunSchedules(cfg, opts, TunedDWOnly(cfg, p)))
	})
}

// ConcatKernels joins kernels into one schedule (no flush between them) —
// the "single kernel that sequentially calculates dX and dW without
// interleaving" baseline variant of the Figure 17 GPU study.
func ConcatKernels(kernels ...schedule.Schedule) schedule.Schedule {
	var ops []schedule.Op
	for _, k := range kernels {
		ops = append(ops, k.Ops...)
	}
	return schedule.Schedule{Name: "fused-sequential", Ops: ops}
}
