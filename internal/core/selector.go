package core

import (
	"igosim/internal/config"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/workload"
)

// OrderSelector chooses the interleaved access order for one layer. It
// abstracts the Section 4.3 selection policies: the Algorithm 1 listing,
// the prose rule, the static cost model, or the ideal (simulated) choice.
type OrderSelector func(cfg config.NPU, p schedule.TileParams) Order

// RunTrainingSelector simulates one single-core training step with the
// backward pass rearranged per the given order selector (used by the
// Section 4.3 Algorithm-1-vs-ideal study).
func RunTrainingSelector(cfg config.NPU, opts sim.Options, m workload.Model, sel OrderSelector) ModelRun {
	run := ModelRun{Model: m.Abbr, Config: cfg.Name, Policy: PolRearrange}
	for _, lp := range PlanModel(cfg, m) {
		fwd := RunForward(cfg, lp.Params)
		fwd.Name = lp.Layer.Name
		run.Fwd = append(run.Fwd, fwd)
		run.FwdCycles += fwd.Cycles

		var bwd LayerOutcome
		if lp.Layer.SkipDX {
			bwd = outcomeFromResult(sim.RunSchedules(cfg, opts, TunedDWOnly(cfg, lp.Params)))
		} else {
			sched, o := RearrangedWithOrder(cfg, lp.Params, sel(cfg, lp.Params))
			bwd = outcomeFromResult(sim.RunSchedules(cfg, opts, sched))
			bwd.Order = o
		}
		bwd.Name = lp.Layer.Name
		bwd.Dims = lp.Params.Dims
		bwd.Policy = PolRearrange
		bwd.Parts = 1
		run.Bwd = append(run.Bwd, bwd)
		run.BwdCycles += bwd.Cycles
		run.BwdTraffic.Merge(bwd.Traffic)
	}
	return run
}

// ConcatKernels joins kernels into one schedule (no flush between them) —
// the "single kernel that sequentially calculates dX and dW without
// interleaving" baseline variant of the Figure 17 GPU study.
func ConcatKernels(kernels ...schedule.Schedule) schedule.Schedule {
	var ops []schedule.Op
	for _, k := range kernels {
		ops = append(ops, k.Ops...)
	}
	return schedule.Schedule{Name: "fused-sequential", Ops: ops}
}
