package core

import (
	"igosim/internal/config"
	"igosim/internal/metrics"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/stats"
)

// Memo execution counters. Wall domain, not cycle: under a miss race two
// workers may both compute the same key (GetOrCompute documents this), and
// tuning caches can re-enter memoLayer from a racing compute, so the
// executed/served split varies legitimately with -j. The deterministic view
// of the same cache lives in its stats entry count (manifest hit rate).
var (
	mLayerSims = metrics.NewCounter("core_layer_sims_total",
		"layer simulations actually executed (memo misses)", metrics.Wall)
	mLayerMemoHits = metrics.NewCounter("core_layer_memo_hits_total",
		"layer simulations served from the memo", metrics.Wall)
)

// Layer-level memoization.
//
// Every per-layer simulation is a pure function of (NPU fingerprint, tile
// parameters, policy, engine options): the engine starts cold, runs one
// layer, and its cycle/traffic outcome is invariant under renaming of
// tensor-instance ids. Models repeat layer shapes heavily (ResNet blocks,
// BERT encoder layers), and the experiment grids re-simulate the same
// (config, layer, policy) points across figures, so memoizing at the layer
// level removes most of the simulation work — and the saving compounds
// with the runner's parallelism.
//
// The key deliberately zeroes TileParams.Layer and TileParams.Part: those
// fields only bias tensor-instance ids, and a bijective renaming of tile
// keys cannot change LRU residency behaviour, spills, or timing. Two
// layers of different networks with identical GEMM shape, tiling and
// XFactor therefore share one simulation.

// memoKind discriminates the simulation entry points sharing the layer
// memo (they emit different schedules for the same tile parameters).
type memoKind uint8

const (
	memoForward memoKind = iota
	memoBackward
	memoBackwardOrder   // RunBackwardOrder: Interleaved(p, o)
	memoSelectorBwd     // order-selector study: RearrangedWithOrder(cfg, p, o)
	memoPartitionScheme // RunPartitionedScheme: one scheme, fixed parts
)

// layerKey identifies one layer simulation up to tensor renaming.
type layerKey struct {
	fp     config.Fingerprint
	p      schedule.TileParams
	kind   memoKind
	pol    Policy
	order  Order
	scheme Scheme
	parts  int
	skipDX bool
	opts   sim.Options
}

var layerMemo = runner.NewCache[layerKey, LayerOutcome]("core/layer-sim")

func layerKeyFor(cfg config.NPU, p schedule.TileParams, kind memoKind, opts sim.Options) layerKey {
	p.Layer, p.Part = 0, 0
	// Tracing never changes simulation outcomes, so traced and untraced runs
	// share cache entries; keeping the sink or label in the key would both
	// fragment the cache and defeat memoization whenever tracing is on.
	opts.Trace, opts.TraceLabel = nil, ""
	// The executor choice cannot change outcomes either — the compiled
	// engine is bit-exact against the interpreter (PropCompiledEquivalence)
	// — so both modes share cache entries.
	opts.Compiled = sim.EngineDefault
	return layerKey{fp: cfg.Fingerprint(), p: p, kind: kind, opts: opts}
}

// memoLayer wraps the layer-memo lookup for traced runs: a served result has
// no engine spans in the trace (the simulation never ran), so the sink gets
// a memo-hit instant naming what was skipped instead.
func memoLayer(key layerKey, opts sim.Options, compute func() LayerOutcome) LayerOutcome {
	computed := false
	out := layerMemo.GetOrCompute(key, func() LayerOutcome {
		computed = true
		return compute()
	})
	if computed {
		mLayerSims.Inc()
	} else {
		mLayerMemoHits.Inc()
		if opts.Trace != nil {
			opts.Trace.MemoHit("core/layer-sim", opts.TraceLabel)
		}
	}
	return out
}

// LayerMemoStats returns the layer memo cache's hit/miss snapshot.
func LayerMemoStats() stats.CacheSnapshot { return layerMemo.Stats() }

// ResetCaches drops the layer memo and every schedule-tuning cache,
// returning the simulator to a cold state, and zeroes the hit/miss counters
// of every cache registered with the stats registry (including caches owned
// by other packages, such as the KNN feature cache). Benchmarks and
// determinism tests use it to measure uncached behaviour; results are
// unaffected (cached and recomputed values are identical).
func ResetCaches() {
	layerMemo.Reset()
	ordersCache.Reset()
	ilvCache.Reset()
	reCache.Reset()
	progCache.Reset()
	basePanels.Reset()
	mergePanels.Reset()
	majorPanels.Reset()
	partCache.Reset()
	sim.ResetResolvedCache()
	stats.ResetAllCacheCounters()
}
