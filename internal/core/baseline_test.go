package core

import (
	"testing"

	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/tensor"
)

func TestBaselineChoicesAreBest(t *testing.T) {
	cfg := tinyCfg()
	p := LayerParams(tensor.Dims{M: 96, K: 80, N: 48}, 1, cfg)
	dxK, dwK := TunedBaselineKernels(cfg, p)
	chosenDX := sim.RunSchedules(cfg, sim.Options{}, dxK).Cycles
	chosenDW := sim.RunSchedules(cfg, sim.Options{}, dwK).Cycles
	for _, o := range []schedule.DXLoopOrder{schedule.DXOrderMK, schedule.DXOrderKM} {
		c := sim.RunSchedules(cfg, sim.Options{}, schedule.Schedule{Ops: schedule.BaselineDXOrdered(p, o)}).Cycles
		if c < chosenDX {
			t.Fatalf("dX order %v (%d cycles) beats tuned choice (%d)", o, c, chosenDX)
		}
	}
	for _, o := range []schedule.DWLoopOrder{schedule.DWOrderKN, schedule.DWOrderNK} {
		c := sim.RunSchedules(cfg, sim.Options{}, schedule.Schedule{Ops: schedule.BaselineDWOrdered(p, o)}).Cycles
		if c < chosenDW {
			t.Fatalf("dW order %v (%d cycles) beats tuned choice (%d)", o, c, chosenDW)
		}
	}
}

func TestTunedBaselineDeterministicAndCached(t *testing.T) {
	cfg := tinyCfg()
	p := LayerParams(tensor.Dims{M: 64, K: 64, N: 64}, 1, cfg)
	dx1, dw1 := TunedBaselineKernels(cfg, p)
	dx2, dw2 := TunedBaselineKernels(cfg, p)
	if len(dx1.Ops) != len(dx2.Ops) || len(dw1.Ops) != len(dw2.Ops) {
		t.Fatal("tuned baseline not deterministic")
	}
	for i := range dx1.Ops {
		if dx1.Ops[i] != dx2.Ops[i] {
			t.Fatal("tuned dX kernel differs between calls")
		}
	}
}

func TestTunedInterleaveAlternatesKinds(t *testing.T) {
	cfg := tinyCfg()
	p := LayerParams(tensor.Dims{M: 64, K: 48, N: 48}, 1, cfg)
	s := TunedInterleave(cfg, p)
	var dx, dw int
	for _, op := range s.Ops {
		switch op.Kind {
		case schedule.KindDX:
			dx++
		case schedule.KindDW:
			dw++
		}
	}
	if dx != dw || dx == 0 {
		t.Fatalf("interleave has %d dX and %d dW ops", dx, dw)
	}
	// Fused streams must interleave: the first half of the stream cannot be
	// all dX ops (that would be the sequential baseline).
	half := s.Ops[:len(s.Ops)/2]
	onlyDX := true
	for _, op := range half {
		if op.Kind == schedule.KindDW {
			onlyDX = false
			break
		}
	}
	if onlyDX {
		t.Fatal("fused stream is not interleaved")
	}
}

func TestMergeStreamsBlocks(t *testing.T) {
	mk := func(kind schedule.Kind, n int) []schedule.Op {
		ops := make([]schedule.Op, n)
		for i := range ops {
			ops[i].Kind = kind
		}
		return ops
	}
	merged := mergeStreams(mk(schedule.KindDX, 5), mk(schedule.KindDW, 5), 2)
	wantKinds := []schedule.Kind{
		schedule.KindDX, schedule.KindDX, schedule.KindDW, schedule.KindDW,
		schedule.KindDX, schedule.KindDX, schedule.KindDW, schedule.KindDW,
		schedule.KindDX, schedule.KindDW,
	}
	if len(merged) != len(wantKinds) {
		t.Fatalf("merged %d ops", len(merged))
	}
	for i, k := range wantKinds {
		if merged[i].Kind != k {
			t.Fatalf("op %d kind %v, want %v", i, merged[i].Kind, k)
		}
	}
	// Degenerate block clamps to 1.
	if got := mergeStreams(mk(schedule.KindDX, 2), mk(schedule.KindDW, 2), 0); len(got) != 4 {
		t.Fatalf("block 0 merge lost ops: %d", len(got))
	}
}

func TestFusedMajorsVerifyWithConfigChunks(t *testing.T) {
	cfg := tinyCfg()
	for _, d := range []tensor.Dims{
		{M: 96, K: 48, N: 32},
		{M: 24, K: 200, N: 48},
	} {
		p := LayerParams(d, 1, cfg)
		for _, s := range []schedule.Schedule{FusedDXMajor(cfg, p), FusedDWMajor(cfg, p)} {
			if err := schedule.VerifyBackward(p, s.Ops, false); err != nil {
				t.Errorf("%v %s: %v", d, s.Name, err)
			}
			if err := CheckEquivalence(d, p.Tiling, s.Ops, 1e-8); err != nil {
				t.Errorf("%v %s: %v", d, s.Name, err)
			}
		}
	}
}

func TestBestOrderSimulatedIsBest(t *testing.T) {
	cfg := tinyCfg()
	p := LayerParams(tensor.Dims{M: 128, K: 32, N: 32}, 1, cfg)
	best := BestOrderSimulated(cfg, p)
	sched, _ := RearrangedWithOrder(cfg, p, best)
	bestCycles := sim.RunSchedules(cfg, sim.Options{}, sched).Cycles
	for _, o := range Orders() {
		s, _ := RearrangedWithOrder(cfg, p, o)
		if c := sim.RunSchedules(cfg, sim.Options{}, s).Cycles; c < bestCycles {
			t.Fatalf("order %v (%d cycles) beats reported best %v (%d)", o, c, best, bestCycles)
		}
	}
}
