package core

import (
	"igosim/internal/config"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/tensor"
)

// The evaluation baseline "includes relevant prior DNN scheduling
// techniques" (Section 6.1): a production scheduler explores loop orders
// and multi-level tilings per GEMM and keeps the fastest. We reproduce
// that by simulating four candidate schedules for each gradient GEMM in
// isolation — the two reduction-inner loop orders plus the two chunked
// partial-stationary orders of the multi-level tiling studies — and
// caching the winner per (configuration, layer shape).

// dxCandidate / dwCandidate index the baseline schedule candidates.
type dxCandidate uint8

const (
	dxMK       dxCandidate = iota // m outer, k middle, reduction inner
	dxKM                          // k outer, m middle, reduction inner
	dxRowChunk                    // row-chunked partial-stationary
	dxColChunk                    // column-chunked partial-stationary
	numDXCandidates
)

type dwCandidate uint8

const (
	dwKN       dwCandidate = iota // k outer, n middle, reduction inner
	dwNK                          // n outer, k middle, reduction inner
	dwRowChunk                    // row-chunked partial-stationary (over K)
	dwColChunk                    // column-chunked partial-stationary (over N)
	numDWCandidates
)

// ordersKey keys the per-shape tuning caches: the hardware fingerprint
// (with Cores pinned to 1, since tuning always simulates a single core)
// plus the shape facts the candidate schedules depend on. Tensor-instance
// ids (TileParams.Layer/Part) are deliberately absent — renaming them
// cannot change which candidate wins.
type ordersKey struct {
	fp      config.Fingerprint
	d       tensor.Dims
	t       schedule.Tiling
	elem    int
	xfactor float64
}

var ordersCache = runner.NewCache[ordersKey, ordersVal]("core/baseline-tune")

type ordersVal struct {
	dx dxCandidate
	dw dwCandidate
	// block is the fusion granularity (ops per stream per turn); only the
	// interleave cache uses it.
	block int
}

func keyFor(cfg config.NPU, p schedule.TileParams) ordersKey {
	cfg.Cores = 1
	return ordersKey{
		fp: cfg.Fingerprint(), d: p.Dims, t: p.Tiling,
		elem: p.ElemBytes, xfactor: p.XFactor,
	}
}

// baselineChunkShare is the fraction of the SPM streaming half a baseline
// partial-stationary chunk may occupy (the rest carries operand bands).
const baselineChunkShare = 0.5

func chunkFor(spmBytes int64, perUnitBytes int64) int {
	if perUnitBytes <= 0 {
		return 1
	}
	share := int64(float64(spmBytes/2) * baselineChunkShare)
	c := int(share / perUnitBytes)
	if c < 1 {
		c = 1
	}
	return c
}

// baselineDXOps emits the dX candidate schedule.
func baselineDXOps(cfg config.NPU, p schedule.TileParams, c dxCandidate) []schedule.Op {
	e := int64(cfg.ElemBytes)
	switch c {
	case dxKM:
		return schedule.BaselineDXOrdered(p, schedule.DXOrderKM)
	case dxRowChunk:
		perRow := int64(p.Tiling.Tm) * int64(p.Dims.K) * e
		return schedule.PartialStationaryDX(p, chunkFor(cfg.SPMBytes, perRow))
	case dxColChunk:
		perCol := int64(p.Dims.M) * int64(p.Tiling.Tk) * e
		return schedule.PartialStationaryDXCols(p, chunkFor(cfg.SPMBytes, perCol))
	default:
		return schedule.BaselineDXOrdered(p, schedule.DXOrderMK)
	}
}

// baselineDWOps emits the dW candidate schedule.
func baselineDWOps(cfg config.NPU, p schedule.TileParams, c dwCandidate) []schedule.Op {
	e := int64(cfg.ElemBytes)
	switch c {
	case dwNK:
		return schedule.BaselineDWOrdered(p, schedule.DWOrderNK)
	case dwRowChunk:
		perRow := int64(p.Tiling.Tk) * int64(p.Dims.N) * e
		return schedule.PartialStationaryDW(p, chunkFor(cfg.SPMBytes, perRow))
	case dwColChunk:
		perCol := int64(p.Dims.K) * int64(p.Tiling.Tn) * e
		return schedule.PartialStationaryDWCols(p, chunkFor(cfg.SPMBytes, perCol))
	default:
		return schedule.BaselineDWOrdered(p, schedule.DWOrderKN)
	}
}

// baselineChoices returns the tuned candidate for each gradient GEMM,
// choosing each GEMM's fastest schedule by simulation. Tuning always runs
// without study-specific engine options so every study compares against the
// same baseline schedule.
func baselineChoices(cfg config.NPU, p schedule.TileParams) ordersVal {
	return ordersCache.GetOrCompute(keyFor(cfg, p), func() ordersVal {
		single := cfg
		single.Cores = 1
		// Candidates are emitted from the canonical shape so their retained
		// programs are shared; cycle outcomes are renaming-invariant.
		np := tuneParams(p)

		// The baseline explores the two reduction-inner loop orders per GEMM:
		// conventional accelerators (TPUv3 + XLA) accumulate each output tile's
		// reduction inside the PE array, so cross-tile partial-stationary
		// orders (which park partial sums in the SPM) are not part of the
		// baseline space — those appear only through the paper's
		// transformations.
		pn := baselinePanel(single, np)
		var v ordersVal
		best := int64(-1)
		for _, c := range []dxCandidate{dxMK, dxKM} {
			cyc := tuneCycles(single, pn.dxProg(c), func() schedule.Schedule {
				return schedule.Schedule{Ops: baselineDXOps(single, np, c)}
			})
			if best < 0 || cyc < best {
				best = cyc
				v.dx = c
			}
		}
		best = -1
		for _, c := range []dwCandidate{dwKN, dwNK} {
			cyc := tuneCycles(single, pn.dwProg(c), func() schedule.Schedule {
				return schedule.Schedule{Ops: baselineDWOps(single, np, c)}
			})
			if best < 0 || cyc < best {
				best = cyc
				v.dw = c
			}
		}
		return v
	})
}

// TunedBaselineKernels emits the two schedule-tuned gradient kernels of the
// conventional sequential backward pass: the baseline every evaluation
// figure normalises against. They are separate kernels — the scratchpad is
// flushed between them (Figure 8a), which is why the baseline streams dY
// from DRAM twice.
func TunedBaselineKernels(cfg config.NPU, p schedule.TileParams) (dxK, dwK schedule.Schedule) {
	v := baselineChoices(cfg, p)
	dxK = schedule.Schedule{Name: "baseline-dX", Ops: baselineDXOps(cfg, p, v.dx)}
	dwK = schedule.Schedule{Name: "baseline-dW", Ops: baselineDWOps(cfg, p, v.dw)}
	return dxK, dwK
}

// TunedDWOnly emits the schedule-tuned dW-only pass used for the network's
// first layer (no dX needed).
func TunedDWOnly(cfg config.NPU, p schedule.TileParams) schedule.Schedule {
	v := baselineChoices(cfg, p)
	return schedule.Schedule{Name: "dW-only", Ops: baselineDWOps(cfg, p, v.dw)}
}

// ilvCache holds the jointly tuned order pair for the fused stream.
var ilvCache = runner.NewCache[ordersKey, ordersVal]("core/interleave-tune")

// interleaveBlocks are the fusion granularities the joint tuner explores:
// how many tile ops of each stream run per alternation turn. Finer blocks
// shorten the dY reuse distance; coarser blocks reduce working-set
// interference between the two streams.
var interleaveBlocks = []int{1, 16, 128}

// interleaveChoices picks the per-stream access orders and the fusion
// granularity of the *fused* schedule jointly: fusing the two gradient
// GEMMs makes their working sets share the scratchpad, so the compiler
// co-schedules them — it simulates every (dX order, dW order, granularity)
// combination and keeps the fastest. Each stream still walks dY in a
// traditional order (Figure 10a); only the combination is chosen jointly.
func interleaveChoices(cfg config.NPU, p schedule.TileParams) ordersVal {
	return ilvCache.GetOrCompute(keyFor(cfg, p), func() ordersVal {
		single := cfg
		single.Cores = 1
		np := tuneParams(p)
		var v ordersVal
		best := int64(-1)
		// On a bandwidth sweep the candidate panel is already retained, so
		// this loop is pure replays of shared programs (DESIGN.md §3l).
		if set := mergePanel(single, np); set != nil {
			for i := range set {
				cyc := sim.RunProgram(single, sim.Options{}, set[i].prog).Cycles
				if best < 0 || cyc < best {
					best = cyc
					v = set[i].v
				}
			}
			return v
		}
		// Interpreter fallback: emit each combination in the same order the
		// panel lists them, so ties break identically across executors.
		dxLen := np.OpCount()
		for _, dc := range []dxCandidate{dxMK, dxKM} {
			for _, wc := range []dwCandidate{dwKN, dwNK} {
				for _, blk := range interleaveBlocks {
					// A block at least as long as a stream degenerates to the
					// sequential baseline; the fusion must actually alternate.
					if blk > 1 && blk >= dxLen {
						continue
					}
					cyc := tuneCycles(single, nil, func() schedule.Schedule {
						return schedule.Schedule{Ops: mergeStreams(
							baselineDXOps(single, np, dc),
							baselineDWOps(single, np, wc), blk)}
					})
					if best < 0 || cyc < best {
						best = cyc
						v = ordersVal{dx: dc, dw: wc, block: blk}
					}
				}
			}
		}
		return v
	})
}

// mergeStreams alternates the two gradient streams at tile-op granularity,
// `block` ops per stream per turn.
func mergeStreams(dx, dw []schedule.Op, block int) []schedule.Op {
	if block < 1 {
		block = 1
	}
	ops := make([]schedule.Op, 0, len(dx)+len(dw))
	for i := 0; i < len(dx) || i < len(dw); i += block {
		if i < len(dx) {
			ops = append(ops, dx[i:min(i+block, len(dx))]...)
		}
		if i < len(dw) {
			ops = append(ops, dw[i:min(i+block, len(dw))]...)
		}
	}
	return ops
}

// TunedInterleave emits the interleave-only schedule: the gradient streams
// fused 1:1 at tile-op granularity (Section 4.2), each keeping a
// traditional access order, with the pair chosen jointly for the fusion.
func TunedInterleave(cfg config.NPU, p schedule.TileParams) schedule.Schedule {
	v := interleaveChoices(cfg, p)
	dx := baselineDXOps(cfg, p, v.dx)
	dw := baselineDWOps(cfg, p, v.dw)
	return schedule.Schedule{Name: "interleave", Ops: mergeStreams(dx, dw, v.block)}
}

// fusedChunkShare is the fraction of the SPM streaming half granted to the
// completing output's live partials in the chunked major orders; the
// carried output's partials and the operand bands use the rest.
const fusedChunkShare = 0.25

// FusedDXMajor emits the chunked dXmajor schedule sized for cfg.
func FusedDXMajor(cfg config.NPU, p schedule.TileParams) schedule.Schedule {
	perRow := int64(p.Tiling.Tm) * int64(p.Dims.K) * int64(cfg.ElemBytes)
	share := int64(float64(cfg.SPMBytes/2) * fusedChunkShare)
	chunk := int(share / max(perRow, 1))
	return InterleaveDXMajorChunked(p, chunk)
}

// FusedDWMajor emits the chunked dWmajor schedule sized for cfg.
func FusedDWMajor(cfg config.NPU, p schedule.TileParams) schedule.Schedule {
	perCol := int64(p.Dims.K) * int64(p.Tiling.Tn) * int64(cfg.ElemBytes)
	share := int64(float64(cfg.SPMBytes/2) * fusedChunkShare)
	chunk := int(share / max(perCol, 1))
	return InterleaveDWMajorChunked(p, chunk)
}

// reCache holds the simulated-best access order per layer.
var reCache = runner.NewCache[ordersKey, Order]("core/order-tune")

// BestOrderSimulated picks the access order of the rearranged schedule by
// simulating the three candidates of Figure 10 and keeping the fastest —
// the paper's "ideal" order selection (Section 4.3). The static Algorithm 1
// selectors (SelectOrder*, SelectOrderFor) predict this choice from tensor
// dimensions alone; the alg1 experiment quantifies their gap.
func BestOrderSimulated(cfg config.NPU, p schedule.TileParams) Order {
	return reCache.GetOrCompute(keyFor(cfg, p), func() Order {
		single := cfg
		single.Cores = 1
		np := tuneParams(p)
		best := OnlyInterleave
		// The interleave candidate is exactly the joint tuner's winning
		// merge, so its retained program (and thus its resolved trace) is
		// shared with the tuner's exploration above.
		v := interleaveChoices(single, np)
		bestCycles := tuneCycles(single, mergePanel(single, np).progFor(v), func() schedule.Schedule {
			return TunedInterleave(single, np)
		})
		mj := majorPanelFor(single, np)
		if cyc := tuneCycles(single, mj.dxMajorProg(), func() schedule.Schedule {
			return FusedDXMajor(single, np)
		}); cyc < bestCycles {
			best, bestCycles = DXMajor, cyc
		}
		if cyc := tuneCycles(single, mj.dwMajorProg(), func() schedule.Schedule {
			return FusedDWMajor(single, np)
		}); cyc < bestCycles {
			best = DWMajor
		}
		return best
	})
}
