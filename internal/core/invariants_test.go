package core

import (
	"testing"
	"testing/quick"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/sim"
	"igosim/internal/tensor"
	"igosim/internal/workload"
)

// TestFusedMajorsSingleDYPass asserts the paper's central property at the
// traffic level: under dXmajor and dWmajor every dY tile is fetched from
// DRAM exactly once, for arbitrary layer shapes and chunk sizes.
func TestFusedMajorsSingleDYPass(t *testing.T) {
	cfg := tinyCfg()
	f := func(m, k, n uint8) bool {
		d := tensor.Dims{M: int(m%96) + 8, K: int(k%96) + 8, N: int(n%96) + 8}
		p := LayerParams(d, 1, cfg)
		dyBytes := d.SizeY() * int64(cfg.ElemBytes)
		for _, s := range []func() int64{
			func() int64 {
				r := sim.RunSchedules(cfg, sim.Options{}, FusedDXMajor(cfg, p))
				return r.Traffic.Read[dram.ClassDY]
			},
			func() int64 {
				r := sim.RunSchedules(cfg, sim.Options{}, FusedDWMajor(cfg, p))
				return r.Traffic.Read[dram.ClassDY]
			},
		} {
			if got := s(); got != dyBytes {
				t.Logf("%v: dY reads %d, want %d", d, got, dyBytes)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBaselineReadsDYAtLeastTwice asserts the dual property: the
// two-kernel sequential baseline always streams dY at least twice.
func TestBaselineReadsDYAtLeastTwice(t *testing.T) {
	cfg := tinyCfg()
	for _, d := range []tensor.Dims{
		{M: 64, K: 48, N: 32},
		{M: 16, K: 128, N: 64},
		{M: 96, K: 16, N: 96},
	} {
		p := LayerParams(d, 1, cfg)
		dxK, dwK := TunedBaselineKernels(cfg, p)
		r := sim.RunSchedules(cfg, sim.Options{}, dxK, dwK)
		dyBytes := d.SizeY() * int64(cfg.ElemBytes)
		if r.Traffic.Read[dram.ClassDY] < 2*dyBytes {
			t.Errorf("%v: baseline dY reads %d < 2x tensor size %d",
				d, r.Traffic.Read[dram.ClassDY], 2*dyBytes)
		}
	}
}

// TestPolicyTrafficNeverBelowCompulsory guards against accounting bugs
// that would under-count traffic: no policy can read less than each
// operand tensor once.
func TestPolicyTrafficNeverBelowCompulsory(t *testing.T) {
	cfg := tinyCfg()
	d := tensor.Dims{M: 80, K: 64, N: 48}
	p := LayerParams(d, 1, cfg)
	e := int64(cfg.ElemBytes)
	minReads := (d.SizeY() + d.SizeX() + d.SizeW()) * e
	minWrites := (d.SizeX() + d.SizeW()) * e
	for _, pol := range Policies() {
		out := RunBackward(cfg, sim.Options{}, p, pol, false)
		if out.Traffic.TotalRead() < minReads {
			t.Errorf("%v: reads %d below compulsory %d", pol, out.Traffic.TotalRead(), minReads)
		}
		if out.Traffic.TotalWrite() < minWrites {
			t.Errorf("%v: writes %d below compulsory %d", pol, out.Traffic.TotalWrite(), minWrites)
		}
	}
}

// TestMultiCoreImprovementPositiveSample checks the Figure 14 direction on
// the real dual-core server configuration with the smallest zoo model: the
// full stack must beat the same-core baseline. (Individual toy layers can
// legitimately regress — the paper's claim is about real workloads.)
func TestMultiCoreImprovementPositiveSample(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-core sample is slow")
	}
	cfg := config.LargeNPU().WithCores(2)
	m, err := workloadNCF()
	if err != nil {
		t.Fatal(err)
	}
	base := RunBackwardOnly(cfg, sim.Options{}, m, PolBaseline)
	full := RunBackwardOnly(cfg, sim.Options{}, m, PolPartition)
	if full.BwdCycles >= base.BwdCycles {
		t.Errorf("dual-core full stack %d cycles not better than baseline %d",
			full.BwdCycles, base.BwdCycles)
	}
}

// TestSchemesCoverAllSplitAxes pins the Figure 11 semantics: each scheme
// splits exactly its dimension.
func TestSchemesCoverAllSplitAxes(t *testing.T) {
	cfg := config.LargeNPU()
	p := LayerParams(tensor.Dims{M: 1024, K: 1024, N: 1024}, 1, cfg)
	axes := map[Scheme]func(a, b tensor.Dims) bool{
		WeightSharing: func(a, b tensor.Dims) bool { return a.M != b.M || a.M < 1024 },
		DYSharing:     func(a, b tensor.Dims) bool { return a.N != b.N || a.N < 1024 },
		IfmapSharing:  func(a, b tensor.Dims) bool { return a.K != b.K || a.K < 1024 },
	}
	for scheme, split := range axes {
		plan := PartitionLayer(p, scheme, 2)
		if len(plan.Parts) != 2 {
			t.Fatalf("%v: %d parts", scheme, len(plan.Parts))
		}
		if !split(plan.Parts[0].Dims, plan.Parts[1].Dims) {
			t.Errorf("%v did not split its axis: %v / %v", scheme, plan.Parts[0].Dims, plan.Parts[1].Dims)
		}
	}
}

func workloadNCF() (workload.Model, error) {
	return workload.ByAbbr(workload.ServerSuite(), "ncf")
}
