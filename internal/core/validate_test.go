package core

import (
	"strings"
	"testing"

	"igosim/internal/schedule"
	"igosim/internal/tensor"
)

func TestExecutorMatchesReference(t *testing.T) {
	d := tensor.Dims{M: 13, K: 9, N: 11}
	tl := schedule.Tiling{Tm: 4, Tk: 3, Tn: 5}
	e := NewExecutor(d, tl)
	p := testParams(d, tl)
	e.Run(schedule.BaselineBackward(p).Ops)
	refDX, refDW := e.ReferenceGradients()
	if diff := tensor.MaxAbsDiff(e.DX, refDX); diff > 1e-9 {
		t.Fatalf("dX off by %g", diff)
	}
	if diff := tensor.MaxAbsDiff(e.DW, refDW); diff > 1e-9 {
		t.Fatalf("dW off by %g", diff)
	}
}

func TestExecutorForward(t *testing.T) {
	d := tensor.Dims{M: 10, K: 8, N: 6}
	tl := schedule.Tiling{Tm: 3, Tk: 3, Tn: 3}
	e := NewExecutor(d, tl)
	p := testParams(d, tl)
	e.Run(schedule.Forward(p).Ops)
	want := tensor.MatMul(e.X, e.W)
	if diff := tensor.MaxAbsDiff(e.Y, want); diff > 1e-9 {
		t.Fatalf("forward off by %g", diff)
	}
}

func TestCheckEquivalenceDetectsCorruption(t *testing.T) {
	d := tensor.Dims{M: 8, K: 8, N: 8}
	tl := schedule.Tiling{Tm: 4, Tk: 4, Tn: 4}
	p := testParams(d, tl)
	ops := schedule.BaselineBackward(p).Ops

	// Drop one accumulation op: the gradients must deviate.
	if err := CheckEquivalence(d, tl, ops[1:], 1e-8); err == nil {
		t.Fatal("missing op not detected numerically")
	}
	// Swap a tile coordinate: mis-indexed reads must deviate.
	bad := append([]schedule.Op{}, ops...)
	bad[0].A.Key.Col ^= 1
	if err := CheckEquivalence(d, tl, bad, 1e-8); err == nil {
		t.Fatal("mis-indexed operand not detected")
	}
}

func TestCheckEquivalenceErrorMessage(t *testing.T) {
	d := tensor.Dims{M: 4, K: 4, N: 4}
	tl := schedule.Tiling{Tm: 2, Tk: 2, Tn: 2}
	p := testParams(d, tl)
	ops := schedule.BaselineBackward(p).Ops
	err := CheckEquivalence(d, tl, ops[2:], 1e-8)
	if err == nil || !strings.Contains(err.Error(), "deviates") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestExecutorRejectsUnknownKind(t *testing.T) {
	d := tensor.Dims{M: 4, K: 4, N: 4}
	tl := schedule.Tiling{Tm: 2, Tk: 2, Tn: 2}
	e := NewExecutor(d, tl)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown op kind")
		}
	}()
	e.Run([]schedule.Op{{Kind: schedule.Kind(7)}})
}
