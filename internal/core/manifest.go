package core

import (
	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/metrics"
)

// Model-run counters. Cycle domain: RunTraining/RunBackwardOnly are only
// ever called from deterministic top-level request streams (CLI loops,
// experiment harnesses, sweep waves), never from inside a racing cache
// compute, so their counts are identical at every -j — which is what lets
// run manifests embed them.
var (
	mModelRuns = metrics.NewCounter("core_model_runs_total",
		"training-step simulations requested (deterministic request stream)", metrics.Cycle)
	mModelCycles = metrics.NewCounter("core_model_cycles_total",
		"simulated cycles summed over requested training steps", metrics.Cycle)
)

// countModelRun publishes one completed model run into the registry.
func countModelRun(r ModelRun) {
	mModelRuns.Inc()
	mModelCycles.Add(r.TotalCycles())
}

// ManifestWorkload flattens one (baseline, run) pair into the manifest's
// WorkloadResult: total/fwd/bwd cycles, per-class backward traffic,
// scratchpad pressure and the paper's headline reduction. Every field is a
// pure function of the simulation's inputs (cycle domain), so manifests
// embedding it stay byte-identical across -j.
func ManifestWorkload(cfg config.NPU, base, run ModelRun) metrics.WorkloadResult {
	w := metrics.WorkloadResult{
		Model:           run.Model,
		Policy:          run.Policy.String(),
		TotalCycles:     run.TotalCycles(),
		FwdCycles:       run.FwdCycles,
		BwdCycles:       run.BwdCycles,
		BwdTrafficBytes: run.BwdTraffic.Total(),
		Seconds:         run.Seconds(cfg),
	}
	if base.TotalCycles() != run.TotalCycles() || base.Policy != run.Policy {
		w.BaseCycles = base.TotalCycles()
		w.Reduction = Improvement(base, run)
	}
	for _, c := range dram.Classes() {
		if v := run.BwdTraffic.Read[c]; v != 0 {
			if w.BwdRead == nil {
				w.BwdRead = make(map[string]int64)
			}
			w.BwdRead[c.String()] = v
		}
		if v := run.BwdTraffic.Write[c]; v != 0 {
			if w.BwdWrite == nil {
				w.BwdWrite = make(map[string]int64)
			}
			w.BwdWrite[c.String()] = v
		}
	}
	for _, l := range run.Bwd {
		w.Evictions += l.SPM.Evictions
		w.Spills += l.Spills
	}
	return w
}
