package core

import (
	"reflect"
	"sync"
	"testing"

	"igosim/internal/config"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/workload"
)

// layerResults snapshots everything the tuned simulation paths produce for
// one layer: the tuning caches (baseline, interleave, order selection) and
// the memoized per-layer outcomes of three policies.
type layerResults struct {
	base LayerOutcome
	ilv  LayerOutcome
	rea  LayerOutcome
	ord  Order
	tune ordersVal
	itun ordersVal
}

func computeLayer(cfg config.NPU, p LayerPlan) layerResults {
	return layerResults{
		base: RunBackwardMulti(cfg, sim.Options{}, p.Params, PolBaseline, p.Layer.SkipDX),
		ilv:  RunBackwardMulti(cfg, sim.Options{}, p.Params, PolInterleave, p.Layer.SkipDX),
		rea:  RunBackwardMulti(cfg, sim.Options{}, p.Params, PolRearrange, p.Layer.SkipDX),
		ord:  BestOrderSimulated(cfg, p.Params),
		tune: baselineChoices(cfg, p.Params),
		itun: interleaveChoices(cfg, p.Params),
	}
}

// TestParallelHammerMatchesSequential drives the tuning caches and the
// layer memo from 16 goroutines at once against a cold cache and asserts
// every goroutine sees results identical to a sequential cold run. Run
// with -race: this is the test that catches unsynchronized cache state.
func TestParallelHammerMatchesSequential(t *testing.T) {
	cfg := config.SmallNPU()
	m, err := workload.ByAbbr(workload.EdgeSuite(), "ncf")
	if err != nil {
		t.Fatal(err)
	}
	plans := PlanModel(cfg, m)
	if len(plans) == 0 {
		t.Fatal("no plans")
	}

	// Sequential cold reference.
	prev := runner.SetParallelism(1)
	defer runner.SetParallelism(prev)
	ResetCaches()
	ref := make([]layerResults, len(plans))
	for i, p := range plans {
		ref[i] = computeLayer(cfg, p)
	}

	// 16 goroutines recompute every layer concurrently against cold
	// caches: misses race, GetOrCompute may compute twice, and every
	// goroutine must still observe the sequential answer.
	runner.SetParallelism(16)
	ResetCaches()
	const goroutines = 16
	got := make([][]layerResults, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			out := make([]layerResults, len(plans))
			for i, p := range plans {
				out[i] = computeLayer(cfg, p)
			}
			got[g] = out
		}()
	}
	wg.Wait()

	for g := range got {
		for i := range plans {
			if !reflect.DeepEqual(got[g][i], ref[i]) {
				t.Fatalf("goroutine %d layer %d: parallel result differs from sequential\nparallel:   %+v\nsequential: %+v",
					g, i, got[g][i], ref[i])
			}
		}
	}
}

// TestRunTrainingParallelMatchesSequential asserts a whole-model training
// run is bit-identical at width 1 (cold) and width 8 (cold).
func TestRunTrainingParallelMatchesSequential(t *testing.T) {
	cfg := config.SmallNPU()
	m, err := workload.ByAbbr(workload.EdgeSuite(), "ncf")
	if err != nil {
		t.Fatal(err)
	}
	prev := runner.SetParallelism(1)
	defer runner.SetParallelism(prev)
	ResetCaches()
	seq := RunTraining(cfg, sim.Options{}, m, PolRearrange)

	runner.SetParallelism(8)
	ResetCaches()
	par := RunTraining(cfg, sim.Options{}, m, PolRearrange)

	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("training run differs across widths\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestLayerMemoHitRate checks the shape-keyed memo pays on a repeated-block
// workload: one cold ResNet training step must hit the layer memo on more
// than half its lookups, since most blocks repeat the same GEMM shapes.
func TestLayerMemoHitRate(t *testing.T) {
	cfg := config.LargeNPU()
	m, err := workload.ByAbbr(workload.ServerSuite(), "res")
	if err != nil {
		t.Fatal(err)
	}
	prev := runner.SetParallelism(4)
	defer runner.SetParallelism(prev)
	ResetCaches()
	RunTraining(cfg, sim.Options{}, m, PolBaseline)
	snap := LayerMemoStats()
	if snap.Lookups() == 0 {
		t.Fatal("training did not consult the layer memo")
	}
	if snap.HitRate() <= 0.5 {
		t.Fatalf("layer memo hit rate %.1f%% on ResNet (%d hits / %d lookups), want > 50%%",
			100*snap.HitRate(), snap.Hits, snap.Lookups())
	}
	t.Logf("layer memo on ResNet: %s", snap)
}
