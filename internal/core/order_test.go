package core

import (
	"sort"
	"testing"
	"testing/quick"

	"igosim/internal/config"
	"igosim/internal/schedule"
	"igosim/internal/tensor"
)

func testParams(d tensor.Dims, t schedule.Tiling) schedule.TileParams {
	return schedule.TileParams{Dims: d, Tiling: t, ElemBytes: 4, Layer: 2}
}

var orderDims = []struct {
	d  tensor.Dims
	tl schedule.Tiling
}{
	{tensor.Dims{M: 16, K: 16, N: 16}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4}},
	{tensor.Dims{M: 37, K: 23, N: 19}, schedule.Tiling{Tm: 8, Tk: 6, Tn: 4}},
	{tensor.Dims{M: 5, K: 40, N: 9}, schedule.Tiling{Tm: 5, Tk: 16, Tn: 3}},
	{tensor.Dims{M: 48, K: 6, N: 30}, schedule.Tiling{Tm: 16, Tk: 6, Tn: 10}},
}

// TestTransformedStreamsVerify checks the structural invariants of every
// transformed schedule: same op multiset as the baseline, exactly one
// OutFirst/OutLast per output tile.
func TestTransformedStreamsVerify(t *testing.T) {
	for _, c := range orderDims {
		p := testParams(c.d, c.tl)
		scheds := []schedule.Schedule{
			InterleaveOnly(p),
			InterleaveDXMajor(p),
			InterleaveDWMajor(p),
			InterleaveDXMajorChunked(p, 2),
			InterleaveDWMajorChunked(p, 2),
		}
		for _, s := range scheds {
			if err := schedule.VerifyBackward(p, s.Ops, false); err != nil {
				t.Errorf("%v %s: %v", c.d, s.Name, err)
			}
		}
	}
}

// TestNumericalEquivalence executes every transformed schedule on real
// matrices and checks the gradients are identical to the plain matrix
// products — the paper's "the input and weight gradients in the modified
// code are identical to those in the previous sequential execution".
func TestNumericalEquivalence(t *testing.T) {
	for _, c := range orderDims {
		p := testParams(c.d, c.tl)
		scheds := []schedule.Schedule{
			schedule.BaselineBackward(p),
			InterleaveOnly(p),
			InterleaveDXMajor(p),
			InterleaveDWMajor(p),
			InterleaveDXMajorChunked(p, 1),
			InterleaveDWMajorChunked(p, 3),
		}
		for _, s := range scheds {
			if err := CheckEquivalence(c.d, c.tl, s.Ops, 1e-8); err != nil {
				t.Errorf("%v %s: %v", c.d, s.Name, err)
			}
		}
	}
}

// TestNumericalEquivalenceRandom fuzzes the equivalence over random dims
// and tilings.
func TestNumericalEquivalenceRandom(t *testing.T) {
	f := func(m, k, n, tm, tk, tn, chunk uint8) bool {
		d := tensor.Dims{M: int(m%24) + 1, K: int(k%24) + 1, N: int(n%24) + 1}
		tl := schedule.Tiling{
			Tm: min(int(tm%6)+1, d.M),
			Tk: min(int(tk%6)+1, d.K),
			Tn: min(int(tn%6)+1, d.N),
		}
		p := testParams(d, tl)
		for _, s := range []schedule.Schedule{
			InterleaveDXMajorChunked(p, int(chunk%4)+1),
			InterleaveDWMajorChunked(p, int(chunk%4)+1),
			InterleaveOnly(p),
		} {
			if err := CheckEquivalence(d, tl, s.Ops, 1e-8); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOpMultisetPreserved compares the sorted op signatures of baseline and
// dXmajor streams: interleaving is a pure reordering.
func TestOpMultisetPreserved(t *testing.T) {
	p := testParams(tensor.Dims{M: 16, K: 12, N: 8}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	sig := func(ops []schedule.Op) []schedule.Op {
		out := append([]schedule.Op{}, ops...)
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.Out.Key != b.Out.Key {
				return lessKey(a.Out.Key, b.Out.Key)
			}
			return lessKey(a.A.Key, b.A.Key)
		})
		// Endpoint flags depend on position, not identity.
		for i := range out {
			out[i].OutFirst, out[i].OutLast = false, false
		}
		return out
	}
	base := sig(schedule.BaselineBackward(p).Ops)
	for _, s := range []schedule.Schedule{InterleaveOnly(p), InterleaveDXMajor(p), InterleaveDWMajor(p)} {
		got := sig(s.Ops)
		if len(got) != len(base) {
			t.Fatalf("%s: %d ops vs %d", s.Name, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("%s: op %d differs: %+v vs %+v", s.Name, i, got[i], base[i])
			}
		}
	}
}

func lessKey(a, b schedule.TileKey) bool {
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.Tensor != b.Tensor {
		return a.Tensor < b.Tensor
	}
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Col < b.Col
}

func TestSelectOrderAlgorithm1Structure(t *testing.T) {
	// Nearly-square -> plain interleaving.
	if got := SelectOrder(tensor.Dims{M: 100, K: 120, N: 90}); got != OnlyInterleave {
		t.Fatalf("square case: %v", got)
	}
	// Skewed with dX larger than dW (M > N) -> dXmajor (prose rule).
	if got := SelectOrder(tensor.Dims{M: 4096, K: 64, N: 64}); got != DXMajor {
		t.Fatalf("M-heavy case: %v", got)
	}
	// Skewed with dW larger (N > M) -> dWmajor.
	if got := SelectOrder(tensor.Dims{M: 64, K: 64, N: 4096}); got != DWMajor {
		t.Fatalf("N-heavy case: %v", got)
	}
}

func TestSelectOrderLiteral(t *testing.T) {
	// K dominates both -> dWmajor per the listing.
	if got := SelectOrderLiteral(tensor.Dims{M: 64, K: 4096, N: 64}); got != DWMajor {
		t.Fatalf("K-heavy literal: %v", got)
	}
	if got := SelectOrderLiteral(tensor.Dims{M: 4096, K: 64, N: 64}); got != DXMajor {
		t.Fatalf("M-heavy literal: %v", got)
	}
	if got := SelectOrderLiteral(tensor.Dims{M: 100, K: 120, N: 90}); got != OnlyInterleave {
		t.Fatalf("square literal: %v", got)
	}
}

func TestPartialFootprint(t *testing.T) {
	d := tensor.Dims{M: 10, K: 20, N: 30}
	if got := PartialFootprint(d, DXMajor, 4); got != 20*30*4 {
		t.Fatalf("dXmajor footprint = %d", got)
	}
	if got := PartialFootprint(d, DWMajor, 4); got != 10*20*4 {
		t.Fatalf("dWmajor footprint = %d", got)
	}
	if got := PartialFootprint(d, OnlyInterleave, 4); got != 0 {
		t.Fatalf("interleave footprint = %d", got)
	}
}

func TestSelectOrderForRespectsCapacity(t *testing.T) {
	cfg := config.LargeNPU()
	// Huge carried partials on both sides: fall back to interleaving.
	p := LayerParams(tensor.Dims{M: 4096, K: 4096, N: 16384}, 1, cfg)
	if got := SelectOrderFor(p, cfg.SPMBytes); got != OnlyInterleave {
		t.Fatalf("oversized partials: %v", got)
	}
	// Tiny dW: dXmajor is free.
	p2 := LayerParams(tensor.Dims{M: 25088, K: 64, N: 64}, 1, cfg)
	if got := SelectOrderFor(p2, cfg.SPMBytes); got != DXMajor {
		t.Fatalf("tiny dW: %v", got)
	}
}

func TestEstimateOrderCosts(t *testing.T) {
	cfg := config.LargeNPU()
	// dY far larger than SPM: interleave-only pays a second pass.
	p := LayerParams(tensor.Dims{M: 8192, K: 256, N: 8192}, 1, cfg)
	c := EstimateOrderCosts(p, cfg.SPMBytes)
	if c.Interleave == 0 {
		t.Fatal("interleave cost should be positive for huge dY")
	}
	// Small everything: all costs zero.
	p2 := LayerParams(tensor.Dims{M: 64, K: 64, N: 64}, 1, cfg)
	c2 := EstimateOrderCosts(p2, cfg.SPMBytes)
	if c2.Interleave != 0 || c2.DXMajor != 0 || c2.DWMajor != 0 {
		t.Fatalf("small layer costs %+v", c2)
	}
}

func TestOrdersString(t *testing.T) {
	if OnlyInterleave.String() != "interleave" ||
		DXMajor.String() != "interleave+dXmajor" ||
		DWMajor.String() != "interleave+dWmajor" {
		t.Fatal("order names wrong")
	}
	if len(Orders()) != 3 {
		t.Fatal("Orders() incomplete")
	}
}
