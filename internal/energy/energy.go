// Package energy estimates the energy of simulated training steps. The
// paper motivates the interleaved gradient order with throughput and
// *power efficiency* (Section 2.1); this model turns the simulator's
// traffic and work counters into energy so the reduction can be quantified
// — DRAM transfers dominate NPU energy, which is why traffic reductions
// translate almost one-to-one.
//
// The default coefficients follow the widely used 45nm estimates
// (Horowitz, ISSCC'14, scaled to FP32 words): a DRAM access costs roughly
// two orders of magnitude more than a MAC, and an SPM (SRAM) access sits
// in between.
package energy

import (
	"fmt"

	"igosim/internal/core"
	"igosim/internal/tensor"
)

// Model holds per-event energy coefficients in picojoules.
type Model struct {
	// DRAMPerByte is the off-chip transfer energy per byte.
	DRAMPerByte float64
	// SPMPerByte is the scratchpad access energy per byte.
	SPMPerByte float64
	// PerMAC is the FP32 multiply-accumulate energy.
	PerMAC float64
	// StaticPerCycle is leakage + clocking energy per core cycle.
	StaticPerCycle float64
}

// Default45nm returns the Horowitz-derived coefficient set.
func Default45nm() Model {
	return Model{
		DRAMPerByte:    160,  // ~640 pJ per 32-bit DRAM word
		SPMPerByte:     1.25, // ~5 pJ per 32-bit SRAM word (large array)
		PerMAC:         4.6,  // FP32 multiply + add
		StaticPerCycle: 50,   // core-wide leakage/clock proxy
	}
}

// Validate reports whether the coefficients are usable.
func (m Model) Validate() error {
	if m.DRAMPerByte <= 0 || m.SPMPerByte < 0 || m.PerMAC < 0 || m.StaticPerCycle < 0 {
		return fmt.Errorf("energy: invalid coefficients %+v", m)
	}
	return nil
}

// Breakdown is the per-component energy of a run, in joules.
type Breakdown struct {
	DRAM    float64
	SPM     float64
	Compute float64
	Static  float64
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 { return b.DRAM + b.SPM + b.Compute + b.Static }

const pJ = 1e-12

// Layer estimates the energy of one simulated layer outcome. MACs are
// derived from the layer dimensions (2 GEMMs in the backward pass, 1 in
// the forward; the caller passes the appropriate gemms count).
func (m Model) Layer(out core.LayerOutcome, gemms int) Breakdown {
	macs := float64(out.Dims.FLOPs()) / 2 * float64(gemms)
	dramBytes := float64(out.Traffic.Total())
	// Every DRAM transfer is written into the SPM and read back at least
	// once by the array; intra-array operand reuse is part of PerMAC.
	spmBytes := 2 * dramBytes
	return Breakdown{
		DRAM:    dramBytes * m.DRAMPerByte * pJ,
		SPM:     spmBytes * m.SPMPerByte * pJ,
		Compute: macs * m.PerMAC * pJ,
		Static:  float64(out.Cycles) * m.StaticPerCycle * pJ,
	}
}

// TrainingStep estimates the energy of one full training step.
func (m Model) TrainingStep(run core.ModelRun) Breakdown {
	var total Breakdown
	for _, l := range run.Fwd {
		b := m.Layer(l, 1)
		total = add(total, b)
	}
	for _, l := range run.Bwd {
		gemms := 2
		if l.Dims == (tensor.Dims{}) {
			gemms = 0
		}
		b := m.Layer(l, gemms)
		total = add(total, b)
	}
	return total
}

func add(a, b Breakdown) Breakdown {
	return Breakdown{
		DRAM:    a.DRAM + b.DRAM,
		SPM:     a.SPM + b.SPM,
		Compute: a.Compute + b.Compute,
		Static:  a.Static + b.Static,
	}
}

// Savings returns the fractional energy reduction of run against base.
func (m Model) Savings(base, run core.ModelRun) float64 {
	b := m.TrainingStep(base).Total()
	if b == 0 {
		return 0
	}
	return 1 - m.TrainingStep(run).Total()/b
}
