package energy

import (
	"testing"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/sim"
	"igosim/internal/workload"
)

func TestDefaultModelValid(t *testing.T) {
	if err := Default45nm().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadCoefficients(t *testing.T) {
	m := Default45nm()
	m.DRAMPerByte = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero DRAM energy accepted")
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{DRAM: 1, SPM: 2, Compute: 3, Static: 4}
	if b.Total() != 10 {
		t.Fatalf("total = %g", b.Total())
	}
}

func TestDRAMIsDominantComponent(t *testing.T) {
	// The architectural premise: for a memory-bound training step, DRAM
	// energy dominates compute energy.
	cfg := config.SmallNPU()
	model, _ := workload.ByAbbr(workload.EdgeSuite(), "mob")
	run := core.RunTraining(cfg, sim.Options{}, model, core.PolBaseline)
	b := Default45nm().TrainingStep(run)
	if b.DRAM <= b.Compute {
		t.Fatalf("DRAM %g J should dominate compute %g J on the edge NPU", b.DRAM, b.Compute)
	}
	if b.Total() <= 0 {
		t.Fatal("non-positive energy")
	}
}

func TestIGOSavesEnergy(t *testing.T) {
	// The full technique stack reduces traffic, so it must reduce energy.
	cfg := config.SmallNPU()
	model, _ := workload.ByAbbr(workload.EdgeSuite(), "mob")
	base := core.RunTraining(cfg, sim.Options{}, model, core.PolBaseline)
	igo := core.RunTraining(cfg, sim.Options{}, model, core.PolPartition)
	m := Default45nm()
	if sav := m.Savings(base, igo); sav <= 0 || sav >= 1 {
		t.Fatalf("implausible energy savings %g", sav)
	}
}

func TestSavingsZeroBaseline(t *testing.T) {
	if Default45nm().Savings(core.ModelRun{}, core.ModelRun{}) != 0 {
		t.Fatal("empty baseline must yield zero savings")
	}
}

func TestLayerScalesWithGEMMCount(t *testing.T) {
	out := core.LayerOutcome{Dims: struct{ M, K, N int }{64, 64, 64}}
	m := Default45nm()
	one := m.Layer(out, 1)
	two := m.Layer(out, 2)
	if two.Compute != 2*one.Compute {
		t.Fatalf("compute energy not linear in GEMM count: %g vs %g", one.Compute, two.Compute)
	}
	if two.DRAM != one.DRAM {
		t.Fatal("traffic energy must not depend on GEMM count")
	}
}
