package knn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func clusters() []Sample {
	return []Sample{
		{Features: []float64{0, 0}, Label: 0},
		{Features: []float64{0.1, -0.1}, Label: 0},
		{Features: []float64{-0.1, 0.2}, Label: 0},
		{Features: []float64{10, 10}, Label: 1},
		{Features: []float64{10.2, 9.9}, Label: 1},
		{Features: []float64{9.8, 10.1}, Label: 1},
	}
}

func TestPredictSeparableClusters(t *testing.T) {
	c, err := Train(clusters(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Predict([]float64{0.5, 0.5}); got != 0 {
		t.Fatalf("near origin: predicted %d", got)
	}
	if got := c.Predict([]float64{9, 11}); got != 1 {
		t.Fatalf("near (10,10): predicted %d", got)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 3); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train(clusters(), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Train([]Sample{{Features: nil, Label: 0}}, 1); err == nil {
		t.Error("featureless sample accepted")
	}
	bad := clusters()
	bad[1].Features = []float64{1}
	if _, err := Train(bad, 1); err == nil {
		t.Error("ragged features accepted")
	}
}

func TestKClampedToTrainingSize(t *testing.T) {
	c, err := Train(clusters()[:2], 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 2 {
		t.Fatalf("k = %d, want clamp to 2", c.K())
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPredictDimensionMismatchPanics(t *testing.T) {
	c, _ := Train(clusters(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on feature-dimension mismatch")
		}
	}()
	c.Predict([]float64{1})
}

func TestNormalizationInvariance(t *testing.T) {
	// Scaling one feature axis by a constant must not change predictions
	// (z-score normalisation).
	base := clusters()
	scaled := make([]Sample, len(base))
	for i, s := range base {
		scaled[i] = Sample{Features: []float64{s.Features[0] * 1000, s.Features[1]}, Label: s.Label}
	}
	a, _ := Train(base, 3)
	b, _ := Train(scaled, 3)
	probes := [][2]float64{{0.3, 0.1}, {9.5, 10.4}, {5, 5.2}}
	for _, p := range probes {
		if a.Predict([]float64{p[0], p[1]}) != b.Predict([]float64{p[0] * 1000, p[1]}) {
			t.Fatalf("normalisation not scale invariant at %v", p)
		}
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	samples := []Sample{
		{Features: []float64{1, 0}, Label: 0},
		{Features: []float64{1, 10}, Label: 1},
	}
	c, err := Train(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Predict([]float64{1, 9}); got != 1 {
		t.Fatalf("constant feature broke prediction: %d", got)
	}
}

func TestK1MemorisesTrainingSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var samples []Sample
	for i := 0; i < 30; i++ {
		samples = append(samples, Sample{
			Features: []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64()},
			Label:    i % 4,
		})
	}
	c, _ := Train(samples, 1)
	for i, s := range samples {
		if got := c.Predict(s.Features); got != s.Label {
			t.Fatalf("sample %d: 1-NN mispredicted its own training point: %d != %d", i, got, s.Label)
		}
	}
}

func TestTieBreaksToLowestLabel(t *testing.T) {
	// Two labels, equidistant neighbourhoods, k=2: one vote each. The
	// majority vote must break the tie to the lowest label no matter how
	// the training set is ordered.
	forward := []Sample{
		{Features: []float64{-1, 0}, Label: 2},
		{Features: []float64{1, 0}, Label: 5},
	}
	reversed := []Sample{forward[1], forward[0]}
	for name, samples := range map[string][]Sample{"forward": forward, "reversed": reversed} {
		c, err := Train(samples, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Predict([]float64{0, 0}); got != 2 {
			t.Fatalf("%s order: tie predicted label %d, want lowest label 2", name, got)
		}
	}

	// Equal distances at the neighbourhood boundary must also resolve by
	// label, not sort instability: four points at distance 1, k=2.
	ring := []Sample{
		{Features: []float64{0, 1}, Label: 9},
		{Features: []float64{0, -1}, Label: 4},
		{Features: []float64{1, 0}, Label: 7},
		{Features: []float64{-1, 0}, Label: 1},
	}
	c, err := Train(ring, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Neighbourhood = labels {1, 4}; one vote each; winner must be 1.
	if got := c.Predict([]float64{0, 0}); got != 1 {
		t.Fatalf("boundary tie predicted %d, want 1", got)
	}
}

func TestPredictReturnsTrainingLabel(t *testing.T) {
	f := func(seed int64, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		labels := map[int]bool{}
		samples := make([]Sample, n)
		for i := range samples {
			l := rng.Intn(3)
			labels[l] = true
			samples[i] = Sample{Features: []float64{rng.NormFloat64(), rng.NormFloat64()}, Label: l}
		}
		c, err := Train(samples, int(k%5)+1)
		if err != nil {
			return false
		}
		return labels[c.Predict([]float64{rng.NormFloat64(), rng.NormFloat64()})]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
