// Package knn implements the K-nearest-neighbours classifier the paper uses
// to select a data-partitioning scheme per layer (Section 5). Features are
// z-score normalised; prediction is a majority vote over the K nearest
// training samples by Euclidean distance. All ties break deterministically
// toward the lowest label: equal distances prefer the lower label when
// choosing the neighbourhood, and equal vote counts prefer the lower label
// when choosing the winner, so a prediction never depends on sort
// instability or map iteration order.
package knn

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sample is one labelled training point.
type Sample struct {
	Features []float64
	Label    int
}

// Classifier is a trained KNN model.
type Classifier struct {
	k       int
	dims    int
	samples []Sample
	mean    []float64
	std     []float64
}

// Train fits a KNN classifier with neighbourhood size k.
func Train(samples []Sample, k int) (*Classifier, error) {
	if len(samples) == 0 {
		return nil, errors.New("knn: no training samples")
	}
	if k <= 0 {
		return nil, fmt.Errorf("knn: invalid k %d", k)
	}
	if k > len(samples) {
		k = len(samples)
	}
	dims := len(samples[0].Features)
	if dims == 0 {
		return nil, errors.New("knn: samples have no features")
	}
	for i, s := range samples {
		if len(s.Features) != dims {
			return nil, fmt.Errorf("knn: sample %d has %d features, want %d", i, len(s.Features), dims)
		}
	}

	mean := make([]float64, dims)
	for _, s := range samples {
		for j, f := range s.Features {
			mean[j] += f
		}
	}
	for j := range mean {
		mean[j] /= float64(len(samples))
	}
	std := make([]float64, dims)
	for _, s := range samples {
		for j, f := range s.Features {
			d := f - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(samples)))
		if std[j] == 0 {
			std[j] = 1 // constant feature: normalisation is a no-op
		}
	}

	c := &Classifier{k: k, dims: dims, mean: mean, std: std}
	c.samples = make([]Sample, len(samples))
	for i, s := range samples {
		norm := make([]float64, dims)
		for j, f := range s.Features {
			norm[j] = (f - mean[j]) / std[j]
		}
		c.samples[i] = Sample{Features: norm, Label: s.Label}
	}
	return c, nil
}

// K returns the effective neighbourhood size.
func (c *Classifier) K() int { return c.k }

// Len returns the training-set size.
func (c *Classifier) Len() int { return len(c.samples) }

// Predict returns the majority label among the k nearest neighbours.
func (c *Classifier) Predict(features []float64) int {
	if len(features) != c.dims {
		panic(fmt.Sprintf("knn: got %d features, want %d", len(features), c.dims))
	}
	type hit struct {
		dist  float64
		label int
	}
	hits := make([]hit, len(c.samples))
	for i, s := range c.samples {
		var d float64
		for j, f := range features {
			nf := (f - c.mean[j]) / c.std[j]
			diff := nf - s.Features[j]
			d += diff * diff
		}
		hits[i] = hit{dist: d, label: s.Label}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].dist != hits[b].dist {
			return hits[a].dist < hits[b].dist
		}
		return hits[a].label < hits[b].label
	})

	votes := make(map[int]int)
	for i := 0; i < c.k; i++ {
		votes[hits[i].label]++
	}
	// Majority vote with ties broken by lowest label: scanning labels in
	// ascending order and requiring strictly more votes to displace the
	// leader makes the winner independent of map iteration order.
	labels := make([]int, 0, len(votes))
	for label := range votes {
		labels = append(labels, label)
	}
	sort.Ints(labels)
	best := labels[0]
	for _, label := range labels[1:] {
		if votes[label] > votes[best] {
			best = label
		}
	}
	return best
}
