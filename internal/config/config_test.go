package config

import (
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []NPU{SmallNPU(), LargeNPU(), GPULike()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestSmallNPUMatchesTable3(t *testing.T) {
	c := SmallNPU()
	if c.ArrayRows != 45 || c.ArrayCols != 45 {
		t.Errorf("PE array %dx%d, want 45x45", c.ArrayRows, c.ArrayCols)
	}
	if c.SPMBytes != 1<<20 {
		t.Errorf("SPM %d, want 1 MiB", c.SPMBytes)
	}
	if c.DRAMBandwidth != 22e9 {
		t.Errorf("bandwidth %g, want 22 GB/s", c.DRAMBandwidth)
	}
	if c.FrequencyHz != 1e9 {
		t.Errorf("frequency %g, want 1 GHz", c.FrequencyHz)
	}
	if c.Batch != 4 {
		t.Errorf("batch %d, want 4", c.Batch)
	}
}

func TestLargeNPUMatchesTable3(t *testing.T) {
	c := LargeNPU()
	if c.ArrayRows != 128 || c.ArrayCols != 128 {
		t.Errorf("PE array %dx%d, want 128x128", c.ArrayRows, c.ArrayCols)
	}
	if c.SPMBytes != 8<<20 {
		t.Errorf("SPM %d, want 8 MiB", c.SPMBytes)
	}
	if c.DRAMBandwidth != 150e9 {
		t.Errorf("bandwidth %g, want 150 GB/s", c.DRAMBandwidth)
	}
	if c.FrequencyHz != 1.05e9 {
		t.Errorf("frequency %g, want 1.05 GHz", c.FrequencyHz)
	}
	if c.Batch != 8 {
		t.Errorf("batch %d, want 8", c.Batch)
	}
}

func TestValidateRejectsEachField(t *testing.T) {
	base := LargeNPU()
	mutations := []struct {
		name string
		mut  func(*NPU)
	}{
		{"rows", func(c *NPU) { c.ArrayRows = 0 }},
		{"cols", func(c *NPU) { c.ArrayCols = -1 }},
		{"cores", func(c *NPU) { c.Cores = 0 }},
		{"spm", func(c *NPU) { c.SPMBytes = 0 }},
		{"bw", func(c *NPU) { c.DRAMBandwidth = 0 }},
		{"freq", func(c *NPU) { c.FrequencyHz = -1 }},
		{"elem", func(c *NPU) { c.ElemBytes = 0 }},
		{"batch", func(c *NPU) { c.Batch = 0 }},
		{"latency", func(c *NPU) { c.DRAMLatency = -5 }},
	}
	for _, m := range mutations {
		c := base
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %q not rejected", m.name)
		}
	}
}

func TestScalingWithCores(t *testing.T) {
	c := LargeNPU().WithCores(4)
	if c.Cores != 4 {
		t.Fatalf("cores = %d", c.Cores)
	}
	if c.TotalSPMBytes() != 4*(8<<20) {
		t.Errorf("total SPM %d", c.TotalSPMBytes())
	}
	if c.TotalBandwidth() != 4*150e9 {
		t.Errorf("total bandwidth %g", c.TotalBandwidth())
	}
	if c.TotalBatch() != 32 {
		t.Errorf("total batch %d", c.TotalBatch())
	}
	if !strings.Contains(c.Name, "x4") {
		t.Errorf("name %q should mention core count", c.Name)
	}
}

func TestWithOverrides(t *testing.T) {
	c := LargeNPU().WithBandwidth(75e9).WithBatch(16)
	if c.DRAMBandwidth != 75e9 || c.Batch != 16 {
		t.Fatalf("overrides not applied: %g %d", c.DRAMBandwidth, c.Batch)
	}
}

func TestBytesPerCycle(t *testing.T) {
	c := SmallNPU()
	if got := c.BytesPerCycle(); got != 22 {
		t.Fatalf("BytesPerCycle = %g, want 22", got)
	}
}

func TestPeakMACs(t *testing.T) {
	if got := SmallNPU().PeakMACsPerCycle(); got != 45*45 {
		t.Fatalf("peak MACs = %d", got)
	}
}

func TestDataflowString(t *testing.T) {
	if OutputStationary.String() != "output-stationary" || WeightStationary.String() != "weight-stationary" {
		t.Fatal("dataflow names wrong")
	}
	if !strings.Contains(Dataflow(9).String(), "9") {
		t.Fatal("unknown dataflow should include its value")
	}
}
