// Package config defines NPU hardware configurations for the simulator.
//
// The two primary presets reproduce Table 3 of the paper: a small
// edge-class NPU modelled after the ARM Ethos-N77 and a large server-class
// NPU modelled after a single Google TPUv4 systolic array. A third,
// GPU-like preset backs the Figure 17 validation study.
package config

import (
	"errors"
	"fmt"
)

// Dataflow selects the systolic-array mapping used by the timing model.
type Dataflow uint8

const (
	// OutputStationary keeps the output tile pinned on the PE array while
	// operand tiles stream through. This is the mapping the simulator uses
	// by default; it matches the tiling assumptions in the paper's baseline.
	OutputStationary Dataflow = iota
	// WeightStationary preloads the weight tile and streams activations.
	WeightStationary
)

func (d Dataflow) String() string {
	switch d {
	case OutputStationary:
		return "output-stationary"
	case WeightStationary:
		return "weight-stationary"
	default:
		return fmt.Sprintf("dataflow(%d)", uint8(d))
	}
}

// NPU describes one simulated accelerator.
//
// Multi-core NPUs follow the paper's organisation: every core has its own
// systolic array and DMA bandwidth, while the scratchpad is shared by all
// cores (Section 2.2). SPMBytes and DRAMBandwidth are *per core*; the
// effective shared SPM is Cores*SPMBytes and the aggregate DRAM bandwidth is
// Cores*DRAMBandwidth, matching Section 6.3 ("DRAM bandwidth, SPM size, and
// batch size increase proportionally with the number of cores").
type NPU struct {
	Name string

	// ArrayRows and ArrayCols give the PE array dimensions of one core.
	ArrayRows, ArrayCols int

	// Cores is the number of systolic-array cores.
	Cores int

	// SPMBytes is the scratchpad capacity per core, in bytes.
	SPMBytes int64

	// DRAMBandwidth is the off-chip bandwidth per core, in bytes/second.
	DRAMBandwidth float64

	// DRAMLatency is the fixed per-burst DRAM access latency in cycles,
	// charged once per contiguous tile transfer.
	DRAMLatency int64

	// FrequencyHz is the core clock.
	FrequencyHz float64

	// ElemBytes is the datatype width (4 for FP32).
	ElemBytes int

	// Batch is the per-core training batch size used by the workloads.
	Batch int

	// Dataflow selects the compute-timing mapping.
	Dataflow Dataflow

	// TkCap caps the contraction-dimension tile the baseline tiling
	// strategy (schedule.ChooseTiling) may pick; zero selects the built-in
	// default. It is a software tiling knob rather than a hardware
	// parameter: it only shapes the tile grid, which the memoization keys
	// already capture through TileParams, so it is excluded from
	// Fingerprint. The design-space sweep uses it as its tiling axis.
	TkCap int
}

// Validate reports a descriptive error when the configuration is unusable.
func (c NPU) Validate() error {
	switch {
	case c.ArrayRows <= 0 || c.ArrayCols <= 0:
		return fmt.Errorf("config: %q has invalid PE array %dx%d", c.Name, c.ArrayRows, c.ArrayCols)
	case c.Cores <= 0:
		return fmt.Errorf("config: %q has invalid core count %d", c.Name, c.Cores)
	case c.SPMBytes <= 0:
		return fmt.Errorf("config: %q has invalid SPM size %d", c.Name, c.SPMBytes)
	case c.DRAMBandwidth <= 0:
		return fmt.Errorf("config: %q has invalid DRAM bandwidth %g", c.Name, c.DRAMBandwidth)
	case c.FrequencyHz <= 0:
		return fmt.Errorf("config: %q has invalid frequency %g", c.Name, c.FrequencyHz)
	case c.ElemBytes <= 0:
		return fmt.Errorf("config: %q has invalid element size %d", c.Name, c.ElemBytes)
	case c.Batch <= 0:
		return fmt.Errorf("config: %q has invalid batch size %d", c.Name, c.Batch)
	case c.DRAMLatency < 0:
		return errors.New("config: negative DRAM latency")
	case c.TkCap < 0:
		return fmt.Errorf("config: %q has negative contraction-tile cap %d", c.Name, c.TkCap)
	}
	return nil
}

// Fingerprint identifies the simulation-relevant hardware parameters of a
// configuration: two NPUs with equal fingerprints produce identical cycle
// and traffic results for identical tile streams. Name is presentation
// only and excluded; Batch only shapes workload lowering (it is already
// captured by the resulting GEMM dimensions) and is excluded too. The
// fingerprint keys the simulator's tuning and memoization caches.
type Fingerprint struct {
	ArrayRows, ArrayCols int
	Cores                int
	SPMBytes             int64
	DRAMBandwidth        float64
	DRAMLatency          int64
	FrequencyHz          float64
	ElemBytes            int
	Dataflow             Dataflow
}

// Fingerprint returns the configuration's simulation fingerprint.
func (c NPU) Fingerprint() Fingerprint {
	return Fingerprint{
		ArrayRows: c.ArrayRows, ArrayCols: c.ArrayCols,
		Cores:         c.Cores,
		SPMBytes:      c.SPMBytes,
		DRAMBandwidth: c.DRAMBandwidth,
		DRAMLatency:   c.DRAMLatency,
		FrequencyHz:   c.FrequencyHz,
		ElemBytes:     c.ElemBytes,
		Dataflow:      c.Dataflow,
	}
}

// TotalSPMBytes returns the shared scratchpad capacity across all cores.
func (c NPU) TotalSPMBytes() int64 { return int64(c.Cores) * c.SPMBytes }

// TotalBandwidth returns the aggregate DRAM bandwidth across all cores.
func (c NPU) TotalBandwidth() float64 { return float64(c.Cores) * c.DRAMBandwidth }

// TotalBatch returns the aggregate batch size across all cores.
func (c NPU) TotalBatch() int { return c.Cores * c.Batch }

// BytesPerCycle converts the per-core DRAM bandwidth into bytes per core
// clock cycle, the unit the engine's memory stage works in.
func (c NPU) BytesPerCycle() float64 { return c.DRAMBandwidth / c.FrequencyHz }

// PeakMACsPerCycle returns the per-core MAC throughput upper bound.
func (c NPU) PeakMACsPerCycle() int64 { return int64(c.ArrayRows) * int64(c.ArrayCols) }

// WithCores returns a copy configured with n cores (per-core resources
// unchanged, so SPM/bandwidth/batch scale with n as in Section 6.3).
func (c NPU) WithCores(n int) NPU {
	c.Cores = n
	if n > 1 {
		c.Name = fmt.Sprintf("%s-x%d", c.Name, n)
	}
	return c
}

// WithBandwidth returns a copy with the per-core DRAM bandwidth replaced.
func (c NPU) WithBandwidth(bytesPerSec float64) NPU {
	c.DRAMBandwidth = bytesPerSec
	return c
}

// WithBatch returns a copy with the per-core batch size replaced.
func (c NPU) WithBatch(b int) NPU {
	c.Batch = b
	return c
}

// WithTkCap returns a copy with the contraction-tile cap replaced (0
// restores the built-in default).
func (c NPU) WithTkCap(cap int) NPU {
	c.TkCap = cap
	return c
}

const (
	kib = int64(1) << 10
	mib = int64(1) << 20
	gb  = 1e9
)

// SmallNPU reproduces the "Small NPU" row of Table 3: an edge-class NPU
// based on the ARM Ethos-N77 — one 45x45 PE array, 1 MB scratchpad,
// 22 GB/s DRAM, 1 GHz, batch size 4.
func SmallNPU() NPU {
	return NPU{
		Name:          "small-npu",
		ArrayRows:     45,
		ArrayCols:     45,
		Cores:         1,
		SPMBytes:      1 * mib,
		DRAMBandwidth: 22 * gb,
		DRAMLatency:   100,
		FrequencyHz:   1e9,
		ElemBytes:     4,
		Batch:         4,
		Dataflow:      OutputStationary,
	}
}

// LargeNPU reproduces the "Large NPU" row of Table 3: a server-class NPU
// based on a Google TPUv4 core — 128x128 PE array, 8 MB scratchpad and
// 150 GB/s DRAM per core, 1.05 GHz, batch size 8 per core, 1-8 cores.
func LargeNPU() NPU {
	return NPU{
		Name:          "large-npu",
		ArrayRows:     128,
		ArrayCols:     128,
		Cores:         1,
		SPMBytes:      8 * mib,
		DRAMBandwidth: 150 * gb,
		DRAMLatency:   100,
		FrequencyHz:   1.05e9,
		ElemBytes:     4,
		Batch:         8,
		Dataflow:      OutputStationary,
	}
}

// GPULike backs the Figure 17 validation study. The paper runs its
// transformation as CUDA kernels on an RTX 3090, using SM shared memory as
// the reuse buffer. We substitute a configuration whose on-chip store and
// bandwidth-per-FLOP match one 3090 SM working from GDDR6X: a 128 KB
// shared-memory-sized buffer, a modest PE array standing in for the SM's
// tensor throughput, and the per-SM share of device bandwidth.
func GPULike() NPU {
	return NPU{
		Name:          "gpu-like",
		ArrayRows:     64,
		ArrayCols:     64,
		Cores:         1,
		SPMBytes:      128 * kib,
		DRAMBandwidth: 11 * gb, // ~936 GB/s across 82 SMs
		DRAMLatency:   60,
		FrequencyHz:   1.4e9,
		ElemBytes:     4,
		Batch:         4, // same batch as the small NPU, per Section 6.6
		Dataflow:      OutputStationary,
	}
}
