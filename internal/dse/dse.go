// Package dse is the design-space exploration engine: it scales cmd/sweep
// from the paper's ~dozen-point Section 6.4 grid to NeuSim-class sweeps of
// a million NPU design points. Three mechanisms make that tractable:
//
//   - an analytic pruner (bounds.go, prune.go) that computes per-point
//     lower bounds on cycles and DRAM traffic from internal/analytic's
//     distinct-tile floors and skips simulating points whose bounds are
//     already dominated by a simulated point on the (cycles, traffic,
//     reduction) frontier;
//   - sharded execution (run.go, checkpoint.go) that partitions the
//     flattened grid into deterministic runner.Shards, simulates each
//     shard through the runner's worker pool, writes one checkpoint file
//     per completed shard, and resumes interrupted sweeps byte-identically;
//   - Pareto extraction (pareto.go) over the simulated rows, plus a budget
//     mode that ranks unpruned points by bound tightness and spends a fixed
//     simulation budget where the analytic model is least certain.
//
// Everything is deterministic by construction: point order is a fixed
// mixed-radix decode of the grid index, shard boundaries are pure
// arithmetic, pruning decisions are made wave-by-wave against a frontier
// that only changes at wave boundaries, and all tie-breaking is by point
// index. The worker count (-j) affects wall-clock time only.
package dse

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/workload"
)

// Space is a sweep's design-space specification: the cross product of the
// axis slices, flattened in fixed mixed-radix order (Cores slowest, then
// BWGBs, SPMMiB, TkCaps, Policies fastest). Axis values are taken in the
// order given — the spec is part of the checkpoint fingerprint, so a
// resumed sweep must use the identical Space.
type Space struct {
	// Model is the workload swept over.
	Model workload.Model
	// Base supplies every parameter the axes do not override.
	Base config.NPU
	// Cores, BWGBs (per-core GB/s), SPMMiB (per-core MiB) and TkCaps
	// (contraction-tile caps, 0 = default) are the hardware/tiling axes.
	Cores  []int
	BWGBs  []float64
	SPMMiB []float64
	TkCaps []int
	// Policies is the schedule-policy axis. Reduction at each point is
	// measured against the baseline policy on the same hardware.
	Policies []core.Policy
}

// Point is one decoded grid point.
type Point struct {
	Index  int
	Cores  int
	BWGB   float64
	SPMMiB float64
	TkCap  int
	Policy core.Policy
}

// Size returns the number of grid points.
func (s Space) Size() int {
	return len(s.Cores) * len(s.BWGBs) * len(s.SPMMiB) * len(s.TkCaps) * len(s.Policies)
}

// Validate reports an unusable specification (any empty axis).
func (s Space) Validate() error {
	switch {
	case len(s.Cores) == 0:
		return fmt.Errorf("dse: empty cores axis")
	case len(s.BWGBs) == 0:
		return fmt.Errorf("dse: empty bandwidth axis")
	case len(s.SPMMiB) == 0:
		return fmt.Errorf("dse: empty SPM axis")
	case len(s.TkCaps) == 0:
		return fmt.Errorf("dse: empty tiling axis")
	case len(s.Policies) == 0:
		return fmt.Errorf("dse: empty policy axis")
	}
	return nil
}

// Point decodes flat grid index i (0 <= i < Size) into its axis values.
func (s Space) Point(i int) Point {
	p := Point{Index: i}
	p.Policy = s.Policies[i%len(s.Policies)]
	i /= len(s.Policies)
	p.TkCap = s.TkCaps[i%len(s.TkCaps)]
	i /= len(s.TkCaps)
	p.SPMMiB = s.SPMMiB[i%len(s.SPMMiB)]
	i /= len(s.SPMMiB)
	p.BWGB = s.BWGBs[i%len(s.BWGBs)]
	i /= len(s.BWGBs)
	p.Cores = s.Cores[i]
	return p
}

// Config materialises the NPU configuration of one point. The result may be
// invalid (e.g. a zero-core corner); Run records Validate failures as
// skipped rows rather than aborting.
func (s Space) Config(p Point) config.NPU {
	cfg := s.Base.WithCores(p.Cores).WithBandwidth(p.BWGB * 1e9).WithTkCap(p.TkCap)
	cfg.SPMBytes = int64(math.Round(p.SPMMiB * float64(int64(1)<<20)))
	cfg.Name = fmt.Sprintf("sweep-%dc-%gGB-%gMiB-tk%d", p.Cores, p.BWGB, p.SPMMiB, p.TkCap)
	return cfg
}

// Fingerprint hashes the specification (model, base configuration and all
// axes). Checkpoint files carry it so a resume against a different spec is
// rejected instead of silently merging foreign rows.
func (s Space) Fingerprint() string {
	enc, err := json.Marshal(struct {
		Model    string
		Base     config.NPU
		Cores    []int
		BWGBs    []float64
		SPMMiB   []float64
		TkCaps   []int
		Policies []core.Policy
	}{s.Model.Abbr, s.Base, s.Cores, s.BWGBs, s.SPMMiB, s.TkCaps, s.Policies})
	if err != nil {
		panic("dse: unencodable space: " + err.Error())
	}
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:])
}

// Status classifies how a sweep decided one grid point.
type Status string

const (
	// StatusSimulated rows carry full simulation results.
	StatusSimulated Status = "sim"
	// StatusPruned rows were skipped because a simulated point dominates
	// their analytic bounds; PrunedBy names the witness.
	StatusPruned Status = "pruned"
	// StatusSkipped rows had an invalid configuration; Reason says why.
	StatusSkipped Status = "skipped"
	// StatusBudget rows were unpruned but beyond the -budget simulation
	// allowance.
	StatusBudget Status = "budget"
)

// Row is the outcome of one grid point. Analytic fields (CyclesLB,
// TrafficLB, RedCap, Balance) are filled for every valid point; simulation
// fields only on StatusSimulated rows.
type Row struct {
	Index  int    `json:"index"`
	Status Status `json:"status"`
	// Reason explains StatusSkipped rows (the Validate error).
	Reason string `json:"reason,omitempty"`

	// CyclesLB and TrafficLB are sound lower bounds on the point's
	// training-step cycles and total DRAM traffic; RedCap is an engineered
	// (conservative but unproven) upper estimate of its execution-time
	// reduction; Balance in [0,1] measures bound looseness (1 = least
	// certain), the budget mode's ranking key.
	CyclesLB  int64   `json:"cycles_lb"`
	TrafficLB int64   `json:"traffic_lb"`
	RedCap    float64 `json:"red_cap"`
	Balance   float64 `json:"balance"`
	// PrunedBy is the grid index of the dominating simulated point, -1
	// otherwise.
	PrunedBy int `json:"pruned_by"`

	// Simulation results (StatusSimulated only): baseline-policy and
	// point-policy training-step cycles, the point policy's total DRAM
	// traffic, its reduction vs baseline, and backward-pass residency
	// pressure.
	BaseCycles int64   `json:"base_cycles,omitempty"`
	IgoCycles  int64   `json:"igo_cycles,omitempty"`
	Traffic    int64   `json:"traffic,omitempty"`
	Reduction  float64 `json:"reduction,omitempty"`
	Evictions  int64   `json:"evictions,omitempty"`
	Spills     int64   `json:"spills,omitempty"`
}
