package dse

// Pareto returns the grid indices of the simulated rows on the
// (cycles, traffic, reduction) Pareto frontier — lower IgoCycles, lower
// Traffic, higher Reduction — in ascending index order. Duplicate objective
// vectors keep only their lowest-indexed representative (the canonical
// beats relation), so the result is a pure function of the row set.
func Pareto(rows []Row) []int {
	var f frontier
	for _, r := range rows {
		if r.Status != StatusSimulated {
			continue
		}
		f.Add(simPoint{r.Index, r.IgoCycles, r.Traffic, r.Reduction})
	}
	out := make([]int, len(f.pts))
	for i, p := range f.pts {
		out[i] = p.Index
	}
	return out
}
