package dse

import (
	"fmt"
	"os"
	"sort"

	"igosim/internal/core"
	"igosim/internal/metrics"
	"igosim/internal/runner"
	"igosim/internal/sim"
)

// Sweep counters. Cycle domain: absorb() runs on the sequential shard loop
// and rows carry deterministic statuses (the wave/prune schedule is
// byte-identical for any worker count), so these totals are manifest-safe.
// Checkpoint replays count too — a resumed sweep reports the same totals a
// fresh run would.
var mPoints = metrics.NewCounterVec("dse_points_total", "status",
	"design-space grid points absorbed, by row status", metrics.Cycle)

// Options steers one sweep execution.
type Options struct {
	// Prune enables the analytic pruner. Eps and EpsRed are the dominance
	// relaxations (see frontier.Dominates); negative values select the
	// defaults, zero means exactly-conservative pruning.
	Prune  bool
	Eps    float64
	EpsRed float64
	// Budget caps the number of simulated points (0 = unlimited). Within
	// the budget, waves are filled with the least analytically certain
	// points first (largest Balance).
	Budget int
	// ShardSize is the checkpoint granularity in grid points; WaveSize is
	// the pruning granularity (the frontier only changes between waves).
	// Zero selects the defaults. Both are part of the deterministic
	// schedule: changing either changes which points get pruned, so a
	// resume must use the values of the original run.
	ShardSize int
	WaveSize  int
	// CheckpointDir enables per-shard checkpoint files; Resume loads
	// completed shards from it instead of recomputing them. MaxShards > 0
	// stops after that many shards (exercises kill+resume in tests).
	CheckpointDir string
	Resume        bool
	MaxShards     int
	// Opts is passed through to the simulations.
	Opts sim.Options
	// Progress, when non-nil, is called after each shard with points
	// processed so far and the total.
	Progress func(done, total int)
}

// DefaultEps and DefaultEpsRed are the dominance relaxations used when
// Options leaves them negative: 2% on the cycle and traffic legs, 10
// percentage points on the reduction leg. The reduction default is wider
// because the engineered cap structurally overestimates achievable
// reduction by roughly the lower bound's own slack (see DESIGN.md section
// 3h); -eps-red 0 restores exactly-conservative pruning on that leg.
const (
	DefaultEps       = 0.02
	DefaultEpsRed    = 0.10
	defaultShardSize = 4096
	// The default wave still saturates a typical worker pool while keeping
	// the frontier fresh: points simulated within one wave can never prune
	// each other, so a wave much larger than the parallelism only costs
	// pruning opportunities.
	defaultWaveSize = 64
)

// Result is one sweep's outcome.
type Result struct {
	// Rows holds every grid point in index order.
	Rows []Row
	// Simulated/Pruned/Skipped/Budgeted count row statuses.
	Simulated, Pruned, Skipped, Budgeted int
	// Frontier holds the grid indices of the Pareto-optimal simulated rows.
	Frontier []int
	// Complete is false when MaxShards stopped the sweep early.
	Complete bool
}

// Run executes the sweep. Shards are processed sequentially in index order;
// within a shard, analytic bounds fan out over the runner's workers, then
// unpruned points are simulated in fixed-size waves. All ordering is by
// grid index and all frontier updates happen at wave boundaries, so results
// are byte-identical for any worker count, and a resumed run replays
// completed shards into exactly the state the original run had.
func Run(space Space, o Options) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	if o.Eps < 0 {
		o.Eps = DefaultEps
	}
	if o.EpsRed < 0 {
		o.EpsRed = DefaultEpsRed
	}
	if o.ShardSize <= 0 {
		o.ShardSize = defaultShardSize
	}
	if o.WaveSize <= 0 {
		o.WaveSize = defaultWaveSize
	}
	if o.Resume && o.CheckpointDir == "" {
		return Result{}, fmt.Errorf("dse: -resume requires a checkpoint directory")
	}
	if o.CheckpointDir != "" {
		if err := os.MkdirAll(o.CheckpointDir, 0o755); err != nil {
			return Result{}, err
		}
	}

	total := space.Size()
	st := &sweepState{
		space:       space,
		o:           o,
		fingerprint: space.Fingerprint(),
		bounds:      newBoundsCtx(space),
		rows:        make([]Row, 0, total),
		budgetLeft:  o.Budget,
	}
	shards := runner.Shards(total, o.ShardSize)
	done := len(shards)
	if o.MaxShards > 0 && o.MaxShards < done {
		done = o.MaxShards
	}
	for _, s := range shards[:done] {
		rows, err := st.shardRows(s)
		if err != nil {
			return Result{}, err
		}
		st.absorb(rows)
		if o.Progress != nil {
			o.Progress(s.Hi, total)
		}
	}

	res := Result{Rows: st.rows, Complete: done == len(shards)}
	for _, r := range st.rows {
		switch r.Status {
		case StatusSimulated:
			res.Simulated++
		case StatusPruned:
			res.Pruned++
		case StatusSkipped:
			res.Skipped++
		case StatusBudget:
			res.Budgeted++
		}
	}
	res.Frontier = Pareto(st.rows)
	return res, nil
}

// sweepState threads the cross-shard state: the frontier archive, the
// remaining simulation budget, and the accumulated rows.
type sweepState struct {
	space       Space
	o           Options
	fingerprint string
	bounds      *boundsCtx
	front       frontier
	rows        []Row
	budgetLeft  int
}

// absorb appends a shard's rows and feeds its simulated points into the
// frontier and budget accounting — identically whether the rows were just
// computed or replayed from a checkpoint, which is the resume determinism
// argument: the archive is a canonical (insertion-order-independent) set of
// maxima, so replay reconstructs the exact pre-shard state.
func (st *sweepState) absorb(rows []Row) {
	for _, r := range rows {
		mPoints.With(string(r.Status)).Inc()
		if r.Status == StatusSimulated {
			st.front.Add(simPoint{r.Index, r.IgoCycles, r.Traffic, r.Reduction})
			if st.o.Budget > 0 {
				st.budgetLeft--
			}
		}
	}
	st.rows = append(st.rows, rows...)
}

// shardRows produces one shard's rows, from the checkpoint when resuming or
// by computing (and then checkpointing) them.
func (st *sweepState) shardRows(s runner.Shard) ([]Row, error) {
	if st.o.Resume {
		rows, err := loadShard(st.o.CheckpointDir, s, st.fingerprint)
		if err != nil {
			return nil, err
		}
		if rows != nil {
			return rows, nil
		}
	}
	rows := st.computeShard(s)
	if st.o.CheckpointDir != "" {
		if err := writeShard(st.o.CheckpointDir, s, st.fingerprint, rows); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// computeShard runs one shard: bounds for every point (invalid configs
// become skipped rows instead of aborting the sweep), then wave-by-wave
// pruning and simulation against the frontier as of the shard start.
func (st *sweepState) computeShard(s runner.Shard) []Row {
	o := st.o
	// Budget accounting here is a local projection; absorb() applies the
	// authoritative decrement once the rows are committed (the same code
	// path a checkpoint replay takes).
	budgetLeft := st.budgetLeft
	idxs := make([]int, s.Len())
	for i := range idxs {
		idxs[i] = s.Lo + i
	}
	rows := runner.Map(idxs, func(idx int) Row {
		p := st.space.Point(idx)
		cfg := st.space.Config(p)
		row := Row{Index: idx, PrunedBy: -1}
		if err := cfg.Validate(); err != nil {
			row.Status = StatusSkipped
			row.Reason = err.Error()
			return row
		}
		b := st.bounds.bounds(cfg, p.Policy)
		row.CyclesLB, row.TrafficLB = b.Cycles, b.Traffic
		row.RedCap, row.Balance = b.RedCap, b.Balance
		return row
	})

	// Pending points in simulation priority order. The default order
	// (cheapest cycle bound first) seeds the frontier with points likely to
	// dominate many others; budget mode instead spends simulations where
	// the analytic model is least certain.
	var pending []int // positions into rows
	for i, r := range rows {
		if r.Status == "" {
			pending = append(pending, i)
		}
	}
	sort.SliceStable(pending, func(a, b int) bool {
		ra, rb := rows[pending[a]], rows[pending[b]]
		if o.Budget > 0 {
			if ra.Balance != rb.Balance {
				return ra.Balance > rb.Balance
			}
		} else if ra.CyclesLB != rb.CyclesLB {
			return ra.CyclesLB < rb.CyclesLB
		}
		return ra.Index < rb.Index
	})

	// Each pending point is classified exactly once, when it is popped as a
	// wave candidate, against the frontier as of that wave boundary. This is
	// equivalent to re-scanning the whole tail every wave — the archive only
	// grows, and a point that evicts a witness dominates everything the
	// witness dominated, so waiting can only confirm a prune, never undo one
	// — but costs O(pending) frontier scans per shard instead of
	// O(waves × pending). Only PrunedBy provenance can differ (a later
	// witness), and it stays deterministic. Pruning decisions within a wave
	// never see the wave's own simulations, so selection is independent of
	// simulation timing.
	for pos := 0; pos < len(pending); {
		var wave []int
		for pos < len(pending) && len(wave) < o.WaveSize && (o.Budget == 0 || budgetLeft-len(wave) > 0) {
			i := pending[pos]
			pos++
			r := &rows[i]
			if o.Prune {
				if w := st.front.Dominates(boundsOf(*r), o.Eps, o.EpsRed); w >= 0 {
					r.Status = StatusPruned
					r.PrunedBy = w
					continue
				}
			}
			wave = append(wave, i)
		}
		if len(wave) == 0 {
			// Budget exhausted: classify the tail against the final
			// frontier — pruned where a witness exists, over-budget
			// otherwise.
			for _, i := range pending[pos:] {
				r := &rows[i]
				if o.Prune {
					if w := st.front.Dominates(boundsOf(*r), o.Eps, o.EpsRed); w >= 0 {
						r.Status = StatusPruned
						r.PrunedBy = w
						continue
					}
				}
				r.Status = StatusBudget
			}
			break
		}
		sims := st.simulateWave(rows, wave)
		for k, i := range wave {
			rows[i] = sims[k]
			st.front.Add(simPoint{sims[k].Index, sims[k].IgoCycles, sims[k].Traffic, sims[k].Reduction})
			if o.Budget > 0 {
				budgetLeft--
			}
		}
	}
	return rows
}

func boundsOf(r Row) Bounds {
	return Bounds{Cycles: r.CyclesLB, Traffic: r.TrafficLB, RedCap: r.RedCap, Balance: r.Balance}
}

// simulateWave runs one wave's simulations, grouped by residency subkey:
// the point axes minus bandwidth ({cores, SPM, TkCap, policy}) determine
// the resolved hit/miss traces a simulation produces, so a wave holding a
// bandwidth sweep of one configuration resolves each trace exactly once.
// The first point of each subkey group runs in a leader pass; the rest run
// afterwards and replay the leaders' traces from the residency cache
// instead of racing the same resolution across workers. Results are
// scattered back in wave order, so classification and frontier updates are
// byte-identical to the ungrouped loop at any parallelism.
func (st *sweepState) simulateWave(rows []Row, wave []int) []Row {
	type subkey struct {
		cores  int
		spmMiB float64
		tkCap  int
		pol    core.Policy
	}
	sims := make([]Row, len(wave))
	var leaders, followers []int // positions within the wave
	seen := make(map[subkey]bool, len(wave))
	for k, i := range wave {
		p := st.space.Point(rows[i].Index)
		sk := subkey{p.Cores, p.SPMMiB, p.TkCap, p.Policy}
		if seen[sk] {
			followers = append(followers, k)
		} else {
			seen[sk] = true
			leaders = append(leaders, k)
		}
	}
	lead := runner.Map(leaders, func(k int) Row { return st.simulate(rows[wave[k]]) })
	for j, k := range leaders {
		sims[k] = lead[j]
	}
	if len(followers) > 0 {
		fol := runner.Map(followers, func(k int) Row { return st.simulate(rows[wave[k]]) })
		for j, k := range followers {
			sims[k] = fol[j]
		}
	}
	return sims
}

// simulate runs one point's baseline and point-policy training steps and
// fills the row's simulation fields. Baseline-policy points reuse the
// baseline run for both sides (reduction is identically zero there).
func (st *sweepState) simulate(row Row) Row {
	p := st.space.Point(row.Index)
	cfg := st.space.Config(p)
	base := core.RunTraining(cfg, st.o.Opts, st.space.Model, core.PolBaseline)
	run := base
	if p.Policy != core.PolBaseline {
		run = core.RunTraining(cfg, st.o.Opts, st.space.Model, p.Policy)
	}
	row.Status = StatusSimulated
	row.BaseCycles = base.TotalCycles()
	row.IgoCycles = run.TotalCycles()
	row.Traffic = run.BwdTraffic.Total()
	for _, l := range run.Fwd {
		row.Traffic += l.Traffic.Total()
	}
	row.Reduction = core.Improvement(base, run)
	for _, l := range run.Bwd {
		row.Evictions += l.SPM.Evictions
		row.Spills += l.Spills
	}
	return row
}
