package dse

import "sort"

// simPoint is one simulated row's position in objective space: the three
// coordinates the dominance rule compares (lower cycles, lower traffic,
// higher reduction are better).
type simPoint struct {
	Index     int
	Cycles    int64
	Traffic   int64
	Reduction float64
}

// beats reports whether a weakly dominates b in the canonical order: no
// worse on all three objectives and either strictly better somewhere or
// lower-indexed. The index tie-break makes the "is a maximum" predicate a
// property of the simulated point *set* — identical-objective duplicates
// keep exactly the lowest-indexed representative — so the frontier archive
// is independent of insertion order. That is what makes wave-order runs and
// index-order checkpoint replays produce byte-identical pruning decisions.
func beats(a, b simPoint) bool {
	if a.Cycles > b.Cycles || a.Traffic > b.Traffic || a.Reduction < b.Reduction {
		return false
	}
	return a.Cycles < b.Cycles || a.Traffic < b.Traffic || a.Reduction > b.Reduction ||
		a.Index < b.Index
}

// frontier is the canonical archive of non-dominated simulated points,
// kept sorted by grid index.
type frontier struct {
	pts []simPoint
}

// Add inserts a simulated point, dropping it if beaten and evicting points
// it beats. The resulting archive equals the set of maxima over all points
// ever added, in index order, regardless of addition order.
func (f *frontier) Add(p simPoint) {
	// In-place filtering is safe to abandon at the early return: beats is
	// transitive and the archive holds mutually unbeaten points, so if some
	// q beats p, p cannot have beaten any earlier archive point (that point
	// would be beaten by q too) — nothing has been dropped yet and the
	// prefix was rewritten with its own values.
	keep := f.pts[:0]
	for _, q := range f.pts {
		if q.Index == p.Index || beats(q, p) {
			return // re-adding an archived point is a no-op (rows are deterministic)
		}
		if !beats(p, q) {
			keep = append(keep, q)
		}
	}
	f.pts = keep
	i := sort.Search(len(f.pts), func(k int) bool { return f.pts[k].Index >= p.Index })
	f.pts = append(f.pts, simPoint{})
	copy(f.pts[i+1:], f.pts[i:])
	f.pts[i] = p
}

// Dominates scans the archive in index order for the first simulated point
// that epsilon-dominates the candidate bounds: cycles and traffic within a
// (1+eps) relative relaxation of the candidate's lower bounds, reduction at
// least the candidate's cap minus epsRed. It returns the witness index, or
// -1.
//
// With eps = epsRed = 0 the rule is exactly conservative: the witness is
// certainly no worse than the candidate could possibly be on all three
// objectives, so pruning loses nothing. Nonzero epsilons trade exactness
// for pruning power — sound lower bounds sit strictly below simulated
// values on compute plateaus, so the exact rule almost never fires; the
// relaxed rule retains an epsilon-approximate Pareto set instead (see
// DESIGN.md section 3h).
func (f *frontier) Dominates(b Bounds, eps, epsRed float64) int {
	cyc := relax(b.Cycles, eps)
	traf := relax(b.Traffic, eps)
	red := b.RedCap - epsRed
	for _, q := range f.pts {
		if q.Cycles <= cyc && q.Traffic <= traf && q.Reduction >= red {
			return q.Index
		}
	}
	return -1
}

// relax scales a lower bound by (1+eps), saturating instead of overflowing.
func relax(v int64, eps float64) int64 {
	if eps <= 0 {
		return v
	}
	r := float64(v) * (1 + eps)
	if r >= 1<<62 {
		return 1 << 62
	}
	return int64(r)
}
