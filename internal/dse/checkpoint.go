package dse

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"igosim/internal/runner"
)

// shardFile is the checkpoint written after each completed shard. The
// fingerprint binds it to one exact Space (model, base config, axes): a
// resume under any other spec rejects the file instead of merging foreign
// rows. Rows hold every grid point in [Lo, Hi) in index order, so replaying
// completed shards reproduces the original run's state exactly.
type shardFile struct {
	Fingerprint string `json:"fingerprint"`
	Shard       int    `json:"shard"`
	Lo          int    `json:"lo"`
	Hi          int    `json:"hi"`
	Complete    bool   `json:"complete"`
	Rows        []Row  `json:"rows"`
}

// shardPath names shard i's checkpoint file inside dir.
func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%06d.json", i))
}

// writeShard persists one completed shard atomically: the JSON is written
// to a temp file in the same directory and renamed into place, so a kill
// mid-write leaves either the old state or the new one, never a torn file.
func writeShard(dir string, s runner.Shard, fingerprint string, rows []Row) error {
	f := shardFile{Fingerprint: fingerprint, Shard: s.Index, Lo: s.Lo, Hi: s.Hi, Complete: true, Rows: rows}
	enc, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("dse: encoding shard %d: %w", s.Index, err)
	}
	tmp, err := os.CreateTemp(dir, fmt.Sprintf(".shard-%06d-*", s.Index))
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(enc); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), shardPath(dir, s.Index))
}

// loadShard reads shard s's checkpoint. It returns (nil, nil) when the file
// does not exist — the shard simply has not run yet — and an error when a
// file exists but belongs to a different spec or disagrees with the shard
// geometry (resuming would silently corrupt the sweep).
func loadShard(dir string, s runner.Shard, fingerprint string) ([]Row, error) {
	enc, err := os.ReadFile(shardPath(dir, s.Index))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f shardFile
	if err := json.Unmarshal(enc, &f); err != nil {
		return nil, fmt.Errorf("dse: corrupt checkpoint %s: %w", shardPath(dir, s.Index), err)
	}
	if f.Fingerprint != fingerprint {
		return nil, fmt.Errorf("dse: checkpoint %s was written by a different sweep spec (fingerprint %.12s, want %.12s); use a fresh -checkpoint directory", shardPath(dir, s.Index), f.Fingerprint, fingerprint)
	}
	if f.Shard != s.Index || f.Lo != s.Lo || f.Hi != s.Hi || len(f.Rows) != s.Len() {
		return nil, fmt.Errorf("dse: checkpoint %s covers [%d,%d) with %d rows, want shard %d [%d,%d)", shardPath(dir, s.Index), f.Lo, f.Hi, len(f.Rows), s.Index, s.Lo, s.Hi)
	}
	if !f.Complete {
		return nil, nil // recompute incomplete shards from scratch
	}
	return f.Rows, nil
}
