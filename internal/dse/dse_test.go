package dse

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/runner"
	"igosim/internal/workload"
)

// testSpace is a small but fully heterogeneous grid: every axis has at
// least two values, one SPM corner is invalid (exercising skipped rows),
// and both a baseline and the full policy stack are swept.
func testSpace() Space {
	return Space{
		Model:    workload.BERTTiny(),
		Base:     config.SmallNPU(),
		Cores:    []int{1, 2},
		BWGBs:    []float64{22, 11},
		SPMMiB:   []float64{1, 0.5},
		TkCaps:   []int{0, 64},
		Policies: []core.Policy{core.PolBaseline, core.PolPartition},
	}
}

func mustRun(t *testing.T, s Space, o Options) Result {
	t.Helper()
	res, err := Run(s, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func rowBytes(t *testing.T, r Row) []byte {
	t.Helper()
	enc, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestPointDecode(t *testing.T) {
	s := testSpace()
	if got, want := s.Size(), 32; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	seen := map[Point]bool{}
	for i := 0; i < s.Size(); i++ {
		p := s.Point(i)
		if p.Index != i {
			t.Fatalf("Point(%d).Index = %d", i, p.Index)
		}
		key := p
		key.Index = 0
		if seen[key] {
			t.Fatalf("duplicate axis combination at index %d: %+v", i, p)
		}
		seen[key] = true
	}
	// Policy is the fastest axis, cores the slowest.
	if s.Point(0).Policy != core.PolBaseline || s.Point(1).Policy != core.PolPartition {
		t.Fatal("policy should be the fastest-varying axis")
	}
	if s.Point(0).Cores != 1 || s.Point(s.Size()-1).Cores != 2 {
		t.Fatal("cores should be the slowest-varying axis")
	}
}

// TestBoundsBelowSimulation checks every simulated row against its own
// analytic bounds: the sound legs must hold exactly, and the engineered
// reduction cap must not under-estimate any observed reduction.
func TestBoundsBelowSimulation(t *testing.T) {
	res := mustRun(t, testSpace(), Options{})
	if res.Simulated == 0 {
		t.Fatal("no simulated rows")
	}
	for _, r := range res.Rows {
		if r.Status != StatusSimulated {
			continue
		}
		if r.CyclesLB > r.IgoCycles || r.CyclesLB > r.BaseCycles {
			t.Errorf("point %d: cycle bound %d above simulated (igo %d, base %d)", r.Index, r.CyclesLB, r.IgoCycles, r.BaseCycles)
		}
		if r.TrafficLB > r.Traffic {
			t.Errorf("point %d: traffic bound %d above simulated %d", r.Index, r.TrafficLB, r.Traffic)
		}
		if r.Reduction > r.RedCap {
			t.Errorf("point %d: reduction %.4f above cap %.4f", r.Index, r.Reduction, r.RedCap)
		}
	}
}

// TestPrunedMatchesUnpruned is the satellite equivalence check: every point
// the pruned sweep does simulate must be byte-identical to the unpruned
// sweep's row, and pruned rows must name a simulated witness.
func TestPrunedMatchesUnpruned(t *testing.T) {
	s := testSpace()
	full := mustRun(t, s, Options{})
	for _, tc := range []struct {
		name        string
		eps, epsRed float64
	}{
		{"exact", 0, 0},
		{"default", -1, -1},
		{"loose", 0.2, 0.2},
	} {
		pruned := mustRun(t, s, Options{Prune: true, Eps: tc.eps, EpsRed: tc.epsRed})
		if len(full.Rows) != len(pruned.Rows) {
			t.Fatalf("%s: row counts differ: %d vs %d", tc.name, len(full.Rows), len(pruned.Rows))
		}
		status := map[int]Status{}
		for i, r := range pruned.Rows {
			status[r.Index] = r.Status
			switch r.Status {
			case StatusSimulated:
				if got, want := rowBytes(t, r), rowBytes(t, full.Rows[i]); string(got) != string(want) {
					t.Errorf("%s point %d: pruned row %s != unpruned row %s", tc.name, r.Index, got, want)
				}
			case StatusPruned:
				if r.PrunedBy < 0 {
					t.Errorf("%s: point %d pruned without witness", tc.name, r.Index)
				}
			case StatusSkipped:
				if full.Rows[i].Status != StatusSkipped {
					t.Errorf("%s: point %d skipped only when pruning", tc.name, r.Index)
				}
			}
		}
		for _, r := range pruned.Rows {
			if r.Status == StatusPruned && status[r.PrunedBy] != StatusSimulated {
				t.Errorf("%s: point %d pruned by non-simulated point %d", tc.name, r.Index, r.PrunedBy)
			}
		}
		t.Logf("%s: pruned %d of %d (%d simulated, %d skipped)", tc.name, pruned.Pruned, len(pruned.Rows), pruned.Simulated, pruned.Skipped)
	}
}

// TestDeterministicAcrossWorkers re-runs the pruned sweep under different
// worker-pool widths and requires byte-identical rows.
func TestDeterministicAcrossWorkers(t *testing.T) {
	s := testSpace()
	o := Options{Prune: true, Eps: -1, EpsRed: -1, WaveSize: 4, ShardSize: 8}
	prev := runner.SetParallelism(1)
	defer runner.SetParallelism(prev)
	seq := mustRun(t, s, o)
	runner.SetParallelism(8)
	par := mustRun(t, s, o)
	a, _ := json.Marshal(seq)
	b, _ := json.Marshal(par)
	if string(a) != string(b) {
		t.Fatal("sweep results depend on worker count")
	}
}

// TestCheckpointResume kills a checkpointed sweep after one shard and
// resumes it, requiring the final result to be byte-identical to an
// uninterrupted run — including pruning decisions and witnesses.
func TestCheckpointResume(t *testing.T) {
	s := testSpace()
	base := Options{Prune: true, Eps: -1, EpsRed: -1, WaveSize: 4, ShardSize: 8}
	ref := mustRun(t, s, base)

	dir := t.TempDir()
	o := base
	o.CheckpointDir = dir
	o.MaxShards = 1
	killed := mustRun(t, s, o)
	if killed.Complete {
		t.Fatal("MaxShards run reported complete")
	}
	if len(killed.Rows) != 8 {
		t.Fatalf("killed run produced %d rows, want 8", len(killed.Rows))
	}

	o.MaxShards = 0
	o.Resume = true
	resumed := mustRun(t, s, o)
	if !resumed.Complete {
		t.Fatal("resumed run incomplete")
	}
	a, _ := json.Marshal(ref)
	b, _ := json.Marshal(resumed)
	if string(a) != string(b) {
		t.Fatal("resumed sweep differs from uninterrupted run")
	}

	// All four shard files must now exist and be complete.
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(shardPath(dir, i)); err != nil {
			t.Fatalf("missing checkpoint for shard %d: %v", i, err)
		}
	}

	// A resume against a different spec must be rejected.
	s2 := s
	s2.TkCaps = []int{0, 128}
	o2 := o
	if _, err := Run(s2, o2); err == nil {
		t.Fatal("resume accepted checkpoints from a different spec")
	}
}

// TestCorruptCheckpointRejected makes sure a torn or foreign file fails
// loudly instead of merging garbage rows.
func TestCorruptCheckpointRejected(t *testing.T) {
	s := testSpace()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "shard-000000.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Run(s, Options{ShardSize: 8, CheckpointDir: dir, Resume: true})
	if err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// TestBudget caps simulations and checks the cap is spent on the least
// certain points.
func TestBudget(t *testing.T) {
	s := testSpace()
	res := mustRun(t, s, Options{Budget: 5, ShardSize: 8, WaveSize: 4})
	if res.Simulated > 5 {
		t.Fatalf("budget 5 exceeded: %d simulations", res.Simulated)
	}
	if res.Budgeted == 0 {
		t.Fatal("no rows marked over-budget")
	}
	// The budget must go to the highest-Balance valid points of the first
	// shard (within it, simulation order is balance-descending).
	var maxSkippedBal, minSimBal float64 = 0, 2
	for _, r := range res.Rows[:8] {
		switch r.Status {
		case StatusSimulated:
			minSimBal = min(minSimBal, r.Balance)
		case StatusBudget:
			maxSkippedBal = max(maxSkippedBal, r.Balance)
		}
	}
	if minSimBal < maxSkippedBal {
		t.Fatalf("budget spent on balance %.4f while %.4f was skipped", minSimBal, maxSkippedBal)
	}
}

// TestSkippedRows drives an invalid corner (zero-byte SPM) through the
// sweep: it must land as a skipped row with a reason, not abort the run.
func TestSkippedRows(t *testing.T) {
	s := testSpace()
	s.SPMMiB = []float64{1, 0}
	res := mustRun(t, s, Options{})
	if res.Skipped == 0 {
		t.Fatal("invalid corner not skipped")
	}
	if res.Simulated == 0 {
		t.Fatal("valid points not simulated")
	}
	for _, r := range res.Rows {
		if r.Status == StatusSkipped && r.Reason == "" {
			t.Errorf("point %d skipped without reason", r.Index)
		}
	}
}

func TestParetoCanonical(t *testing.T) {
	rows := []Row{
		{Index: 0, Status: StatusSimulated, IgoCycles: 100, Traffic: 100, Reduction: 0.1},
		{Index: 1, Status: StatusSimulated, IgoCycles: 90, Traffic: 80, Reduction: 0.1},    // frontier
		{Index: 2, Status: StatusSimulated, IgoCycles: 100, Traffic: 100, Reduction: 0.1}, // dup of 0
		{Index: 3, Status: StatusSimulated, IgoCycles: 80, Traffic: 90, Reduction: 0.2},   // beats 0, 2
		{Index: 4, Status: StatusPruned, IgoCycles: 1, Traffic: 1, Reduction: 1},          // not simulated
		{Index: 5, Status: StatusSimulated, IgoCycles: 120, Traffic: 70, Reduction: 0.05}, // frontier
	}
	got := Pareto(rows)
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Pareto = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Pareto = %v, want %v", got, want)
		}
	}
	// Order independence: any permutation yields the same frontier.
	perm := []Row{rows[5], rows[3], rows[0], rows[2], rows[4], rows[1]}
	got2 := Pareto(perm)
	for i := range got2 {
		if got2[i] != want[i] {
			t.Fatalf("Pareto(permuted) = %v, want %v", got2, want)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	s := testSpace()
	fp := s.Fingerprint()
	s2 := testSpace()
	if s2.Fingerprint() != fp {
		t.Fatal("fingerprint not reproducible")
	}
	s2.BWGBs = []float64{22, 12}
	if s2.Fingerprint() == fp {
		t.Fatal("fingerprint ignores axis values")
	}
	s3 := testSpace()
	s3.Base.DRAMLatency++
	if s3.Fingerprint() == fp {
		t.Fatal("fingerprint ignores base config")
	}
}
