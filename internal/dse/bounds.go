package dse

import (
	"sync"

	"igosim/internal/analytic"
	"igosim/internal/config"
	"igosim/internal/core"
)

// Bounds carries one point's analytic estimates: two sound lower bounds,
// one engineered upper estimate, and a looseness score.
//
//   - Cycles and Traffic are proven lower bounds on the point policy's
//     training-step cycles and total DRAM bytes: per-layer PassBounds
//     (analytic.Floors) summed over the model. Per-layer bounds hold for
//     every policy the tree generates (coverage theorem), and both the
//     simulated totals and the bounds are sums over layers, so the model
//     totals inherit soundness. proptest's CheckAnalyticBounds enforces the
//     per-layer inequality over the generator's space.
//   - RedCap over-estimates the point's execution-time reduction as
//     1 - LB(any policy)/Est(baseline), where Est is an engineered estimate
//     of the baseline's cycles (baseEstimate). The cycles and traffic legs
//     of the dominance rule are theorem-backed; this leg is deliberately
//     conservative engineering (see DESIGN.md section 3h) — a wrong cap can
//     cost pruning precision, never simulation accuracy, because pruned
//     points are never reported as simulated.
//   - Balance in [0,1] is the relative LB/Est gap: large means the analytic
//     model is least certain, which is where the -budget mode spends its
//     simulations.
type Bounds struct {
	Cycles  int64
	Traffic int64
	RedCap  float64
	Balance float64
}

// layerFloors caches the tiling-dependent per-layer floors of one
// (cores, SPM, TkCap) combination: the tile grid depends on those axes but
// not on bandwidth or policy, so a bandwidth-heavy sweep reuses each entry
// across many points.
type layerFloors struct {
	floors analytic.Floors
	skipDX bool
}

type floorsKey struct {
	cores    int
	spmBytes int64
	tkCap    int
}

// boundsCtx computes per-point bounds for one Space, memoizing the
// per-layer floors across points. It is safe for concurrent use by the
// runner's workers.
type boundsCtx struct {
	space Space
	mu    sync.Mutex
	memo  map[floorsKey][]layerFloors
}

func newBoundsCtx(s Space) *boundsCtx {
	return &boundsCtx{space: s, memo: make(map[floorsKey][]layerFloors)}
}

func (b *boundsCtx) layers(cfg config.NPU) []layerFloors {
	key := floorsKey{cfg.Cores, cfg.SPMBytes, cfg.TkCap}
	b.mu.Lock()
	lf, ok := b.memo[key]
	b.mu.Unlock()
	if ok {
		return lf
	}
	plan := core.PlanModel(cfg, b.space.Model)
	lf = make([]layerFloors, len(plan))
	for i, lp := range plan {
		lf[i] = layerFloors{floors: analytic.FloorsOf(cfg, lp.Params), skipDX: lp.Layer.SkipDX}
	}
	b.mu.Lock()
	b.memo[key] = lf
	b.mu.Unlock()
	return lf
}

// redCapScale/redCapSlack turn the raw LB/Est reduction gap into the cap;
// the affine headroom absorbs the ways a real baseline exceeds its estimate
// (reuse below the perfect-reuse assumption, imbalance beyond the ceil
// model). Validated empirically by the dse tests' reduction-vs-cap
// assertion over heterogeneous grids.
const (
	redCapScale = 1.05
	redCapSlack = 0.02
)

// capRefetchFactor scales the capacity-forced re-fetch estimate folded
// into the reduction cap (see capacityExtra). Deliberately below 1: only
// a conservative fraction of the working-set excess is charged, so the
// cap keeps over-estimating achievable reductions (the dse tests'
// reduction-vs-cap assertion validates the margin empirically).
const capRefetchFactor = 0.5

// capacityExtra estimates the extra DMA cycles capacity pressure forces
// on *any* backward-pass policy of one layer: when the distinct operand
// working set exceeds the per-core streaming half of the scratchpad, no
// ordering can keep every operand resident between uses, so some tiles
// are re-fetched regardless of interleaving or rearrangement. The charge
// is a conservative fraction (capRefetchFactor) of the excess bytes
// through the per-core channel. This is the ROADMAP §3 capacity-aware
// leg of the reduction cap: it replaces the flat LB/Est gap on
// memory-bound points, where the capacity-oblivious gap structurally
// overshoots (both the baseline and the fused policies drown in the same
// re-fetch traffic, so their *ratio* — the achievable reduction — shrinks
// even as the absolute gap grows). Engineering, not a theorem, like the
// cap itself: a wrong estimate costs pruning precision, never accuracy.
func capacityExtra(cfg config.NPU, f analytic.Floors, skipDX bool) float64 {
	bpc := cfg.BytesPerCycle()
	if bpc <= 0 {
		return 0
	}
	cores := float64(cfg.Cores)
	if cores < 1 {
		cores = 1
	}
	ws := float64(f.X + f.DY)
	if !skipDX {
		ws += float64(f.W)
	}
	excess := ws/cores - float64(cfg.SPMBytes)/2
	if excess <= 0 {
		return 0
	}
	return capRefetchFactor * excess / bpc
}

// bounds computes one valid point's Bounds. cfg must have passed Validate.
// The cycle/traffic legs are policy-independent (they bound every policy);
// the reduction cap is exactly zero for baseline-policy points — their
// reduction is zero by definition — and the engineered estimate otherwise.
func (b *boundsCtx) bounds(cfg config.NPU, pol core.Policy) Bounds {
	var lb, lbSeq, trafficLB, dyCycles int64
	var baseEst, capExtra float64
	for _, lf := range b.layers(cfg) {
		fwd := lf.floors.Forward(cfg)
		bwd := lf.floors.Backward(cfg, lf.skipDX, false)
		lb += fwd.Cycles + bwd.Cycles
		lbSeq += fwd.CyclesSeq + bwd.CyclesSeq
		dyCycles += bwd.MemSeq - bwd.Mem
		trafficLB += fwd.Traffic + bwd.Traffic
		baseEst += baseEstimate(cfg, lf.floors, fwd, bwd)
		capExtra += capacityExtra(cfg, lf.floors, lf.skipDX)
	}
	out := Bounds{Cycles: lb, Traffic: trafficLB}
	if baseEst > float64(lb) {
		out.Balance = 1 - float64(lb)/baseEst
		if pol != core.PolBaseline {
			// Flat leg, now capacity-aware on the policy side: the sound
			// floor plus the forced re-fetch charge (clamped so the gap
			// cannot go negative when the charge overshoots the estimate).
			polEst := min(baseEst, float64(lb)+capExtra)
			gap := 1 - polEst/baseEst
			// Traffic-delta leg: the fused policies' byte floor differs
			// from the sequential baseline's by exactly the extra dY sweep
			// (TrafficSeq − Traffic), so their cycle advantage is capped by
			// that sweep's DMA cycles over the baseline's own sound cycle
			// floor — everything else (compute, other fetches, pipelining)
			// is a common multiset both sides pay. On the dense bandwidth
			// plateaus this leg is several times tighter than the flat one.
			if lbSeq > 0 {
				gap = min(gap, float64(dyCycles)/float64(lbSeq))
			}
			out.RedCap = min(1, redCapScale*gap+redCapSlack)
		}
	}
	return out
}

// baseEstimate is an engineered estimate of one layer's baseline-policy
// cycles: fully serial compute + DMA stages (the baseline's interleaving
// slack is what the fused policies reclaim) over the perfect-reuse byte
// floors with the sequential baseline's extra dY sweep. Multi-core runs
// scale the backward term by the M-partition imbalance (ceil share over
// mean share) and add a partial-gradient reduction term. It deliberately
// leans high — overestimating the baseline only loosens the cap — but it
// is an estimate, not a bound: redCapScale/redCapSlack supply the margin.
func baseEstimate(cfg config.NPU, f analytic.Floors, fwd, bwd analytic.PassBounds) float64 {
	cores := float64(cfg.Cores)
	if cores < 1 {
		cores = 1
	}
	est := (float64(fwd.Compute) + float64(fwd.Mem)) / cores
	imb := 1.0
	if cfg.Cores > 1 && f.Mt > 0 {
		c := int64(cfg.Cores)
		imb = float64((f.Mt+c-1)/c) * cores / float64(f.Mt)
	}
	est += (float64(bwd.Compute) + float64(bwd.MemSeq)) / cores * imb
	if cfg.Cores > 1 {
		if bpc := cfg.BytesPerCycle(); bpc > 0 {
			est += 2 * cores * float64(f.DW+f.DX) / bpc
		}
	}
	return est
}
