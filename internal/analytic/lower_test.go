package analytic

import (
	"testing"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/tensor"
)

func testParams(d tensor.Dims, t schedule.Tiling, elem int, xf float64) schedule.TileParams {
	return schedule.TileParams{Dims: d, Tiling: t, ElemBytes: elem, Layer: 1, XFactor: xf}
}

// TestFloorsMatchBoundsOf pins the closed-form distinct-tile sums to
// BoundsOf over the materialised baseline stream, per class, including
// edge tiles and the XFactor truncation.
func TestFloorsMatchBoundsOf(t *testing.T) {
	t.Parallel()
	cfg := config.SmallNPU()
	cases := []struct {
		d  tensor.Dims
		tl schedule.Tiling
		xf float64
	}{
		{tensor.Dims{M: 64, K: 64, N: 64}, schedule.Tiling{Tm: 16, Tk: 16, Tn: 16}, 0},
		{tensor.Dims{M: 65, K: 33, N: 17}, schedule.Tiling{Tm: 16, Tk: 16, Tn: 16}, 0},
		{tensor.Dims{M: 7, K: 50, N: 3}, schedule.Tiling{Tm: 8, Tk: 12, Tn: 8}, 0.37},
		{tensor.Dims{M: 1, K: 1, N: 1}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4}, 0.05},
		{tensor.Dims{M: 40, K: 9, N: 31}, schedule.Tiling{Tm: 13, Tk: 3, Tn: 10}, 0.93},
	}
	for _, c := range cases {
		p := testParams(c.d, c.tl, 4, c.xf)
		f := FloorsOf(cfg, p)
		sb := BoundsOf(schedule.BaselineBackward(p).Ops)
		for _, chk := range []struct {
			name      string
			got, want int64
		}{
			{"X", f.X, sb.MinRead[dram.ClassX]},
			{"W", f.W, sb.MinRead[dram.ClassW]},
			{"DY", f.DY, sb.MinRead[dram.ClassDY]},
			{"DX", f.DX, sb.MinWrite[dram.ClassDX]},
			{"DW", f.DW, sb.MinWrite[dram.ClassDW]},
		} {
			if chk.got != chk.want {
				t.Errorf("%v xf=%g: %s floor %d, BoundsOf %d", c.d, c.xf, chk.name, chk.got, chk.want)
			}
		}
		fb := BoundsOf(schedule.Forward(p).Ops)
		if f.Y != fb.MinWrite[dram.ClassY] {
			t.Errorf("%v: Y floor %d, BoundsOf %d", c.d, f.Y, fb.MinWrite[dram.ClassY])
		}
		if f.Ops != int64(p.OpCount()) {
			t.Errorf("%v: ops %d, OpCount %d", c.d, f.Ops, p.OpCount())
		}
	}
}

// TestComputeSumExact pins the closed-form compute totals to the simulated
// ComputeCycles of the corresponding streams — equality, not just a bound:
// the compute stage is order-independent.
func TestComputeSumExact(t *testing.T) {
	t.Parallel()
	for _, ws := range []bool{false, true} {
		cfg := config.SmallNPU()
		if ws {
			cfg.Dataflow = config.WeightStationary
		}
		cfg.ArrayRows, cfg.ArrayCols = 10, 14
		for _, d := range []tensor.Dims{
			{M: 64, K: 64, N: 64},
			{M: 65, K: 33, N: 17},
			{M: 3, K: 41, N: 9},
		} {
			p := testParams(d, schedule.Tiling{Tm: 16, Tk: 12, Tn: 16}, 4, 0)
			f := FloorsOf(cfg, p)
			bwd := sim.RunSchedules(cfg, sim.Options{}, schedule.BaselineBackward(p))
			if got := f.CompDX + f.CompDW; got != bwd.ComputeCycles {
				t.Errorf("ws=%v %v: backward compute %d, simulated %d", ws, d, got, bwd.ComputeCycles)
			}
			fwd := sim.RunSchedules(cfg, sim.Options{}, schedule.Forward(p))
			if f.CompFwd != fwd.ComputeCycles {
				t.Errorf("ws=%v %v: forward compute %d, simulated %d", ws, d, f.CompFwd, fwd.ComputeCycles)
			}
		}
	}
}

// TestPassBoundsBelowSimulation spot-checks the assembled bounds against
// full simulations (the property suite covers the generator's space; this
// keeps a deterministic anchor in this package).
func TestPassBoundsBelowSimulation(t *testing.T) {
	t.Parallel()
	cfg := config.SmallNPU()
	for _, d := range []tensor.Dims{
		{M: 128, K: 96, N: 80},
		{M: 33, K: 17, N: 65},
	} {
		p := testParams(d, schedule.ChooseTiling(d, cfg), cfg.ElemBytes, 0)
		pb := BackwardBounds(cfg, p, false, false)
		r := sim.RunSchedules(cfg, sim.Options{},
			schedule.Schedule{Name: "dx", Ops: schedule.BaselineDX(p)},
			schedule.Schedule{Name: "dw", Ops: schedule.BaselineDW(p)},
		)
		if pb.Cycles > r.Cycles {
			t.Errorf("%v: cycle bound %d above simulated %d", d, pb.Cycles, r.Cycles)
		}
		if pb.CyclesSeq > r.Cycles {
			t.Errorf("%v: sequential cycle bound %d above simulated %d", d, pb.CyclesSeq, r.Cycles)
		}
		if pb.Traffic > r.Traffic.Total() {
			t.Errorf("%v: traffic floor %d above simulated %d", d, pb.Traffic, r.Traffic.Total())
		}
		if pb.TrafficSeq > r.Traffic.Total() {
			t.Errorf("%v: sequential traffic floor %d above simulated %d", d, pb.TrafficSeq, r.Traffic.Total())
		}
		if pb.Mem > r.MemCycles {
			t.Errorf("%v: mem floor %d above simulated %d", d, pb.Mem, r.MemCycles)
		}
		fb := ForwardBounds(cfg, p)
		fr := sim.RunSchedules(cfg, sim.Options{}, schedule.Forward(p))
		if fb.Cycles > fr.Cycles || fb.Traffic > fr.Traffic.Total() {
			t.Errorf("%v: forward bounds (%d cyc, %d B) above simulated (%d cyc, %d B)",
				d, fb.Cycles, fb.Traffic, fr.Cycles, fr.Traffic.Total())
		}
	}
}
