package analytic

import (
	"testing"

	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/tensor"
)

func TestBoundsMatchLayerModel(t *testing.T) {
	// For a full unpartitioned backward stream (XFactor unset) the
	// op-stream floor and the closed-form compulsory traffic coincide.
	d := tensor.Dims{M: 13, K: 9, N: 7}
	p := schedule.TileParams{Dims: d, Tiling: schedule.Tiling{Tm: 4, Tk: 3, Tn: 2}, ElemBytes: 4, Layer: 1}
	b := BoundsOf(schedule.BaselineBackward(p).Ops)

	lm := LayerModel{Dims: d, ElemBytes: 4}
	if got, want := float64(b.TotalRead()+b.TotalWrite()), lm.CompulsoryTraffic(); got != want {
		t.Fatalf("stream floor %g != closed-form compulsory %g", got, want)
	}
	if b.MinRead[dram.ClassDY] != d.SizeY()*4 {
		t.Fatalf("dY floor = %d, want %d", b.MinRead[dram.ClassDY], d.SizeY()*4)
	}
	if b.MinWrite[dram.ClassDX] != d.SizeX()*4 || b.MinWrite[dram.ClassDW] != d.SizeW()*4 {
		t.Fatalf("write floors = dX %d dW %d", b.MinWrite[dram.ClassDX], b.MinWrite[dram.ClassDW])
	}
}

func TestBoundsCheck(t *testing.T) {
	p := schedule.TileParams{
		Dims:   tensor.Dims{M: 8, K: 8, N: 8},
		Tiling: schedule.Tiling{Tm: 4, Tk: 4, Tn: 4}, ElemBytes: 4, Layer: 1,
	}
	b := BoundsOf(schedule.BaselineBackward(p).Ops)

	// Exactly at the floor: legal.
	var tr dram.Traffic
	for _, c := range dram.Classes() {
		tr.Read[c] = b.MinRead[c]
		tr.Write[c] = b.MinWrite[c]
	}
	if err := b.Check(tr); err != nil {
		t.Fatalf("floor traffic rejected: %v", err)
	}

	// Extra reads and accumulator writebacks (spill behaviour): legal.
	over := tr
	over.AddRead(dram.ClassDY, 128)
	over.AddWrite(dram.ClassAcc, 256)
	over.AddRead(dram.ClassAcc, 256)
	if err := b.Check(over); err != nil {
		t.Fatalf("above-floor traffic rejected: %v", err)
	}

	// A missing read violates conservation.
	under := tr
	under.Read[dram.ClassW] -= 4
	if err := b.Check(under); err == nil {
		t.Fatal("under-floor W reads accepted")
	}

	// Writing a gradient class more than once is not a spill, it is a bug.
	dup := tr
	dup.AddWrite(dram.ClassDW, 64)
	if err := b.Check(dup); err == nil {
		t.Fatal("duplicate dW writes accepted")
	}
}
