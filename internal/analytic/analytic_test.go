package analytic

import (
	"testing"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/sim"
	"igosim/internal/tensor"
	"igosim/internal/workload"
)

func TestCompulsoryTraffic(t *testing.T) {
	l := LayerModel{Dims: tensor.Dims{M: 10, K: 20, N: 30}, ElemBytes: 4}
	// reads: dY 1200 + X 800 + W 2400; writes: dX 800 + dW 2400.
	if got := l.CompulsoryTraffic(); got != 7600 {
		t.Fatalf("compulsory = %g", got)
	}
	if got := l.SequentialTraffic(); got != 7600+1200 {
		t.Fatalf("sequential = %g", got)
	}
}

func TestXReuseScalesBound(t *testing.T) {
	base := LayerModel{Dims: tensor.Dims{M: 9, K: 9, N: 9}, ElemBytes: 4}
	conv := base
	conv.XReuse = 1.0 / 9
	if conv.CompulsoryTraffic() >= base.CompulsoryTraffic() {
		t.Fatal("im2col reuse must lower the bound")
	}
}

func TestDYSavingsBoundRange(t *testing.T) {
	l := LayerModel{Dims: tensor.Dims{M: 4096, K: 16, N: 4096}, ElemBytes: 4}
	s := l.DYSavingsBound()
	if s <= 0 || s >= 0.5 {
		t.Fatalf("savings bound %g out of (0, 0.5)", s)
	}
}

func TestRidge(t *testing.T) {
	cfg := config.LargeNPU()
	// 16384 MACs/cycle * 1.05 GHz / 150 GB/s ~= 114.7 MACs per byte.
	r := Ridge(cfg)
	if r < 100 || r > 130 {
		t.Fatalf("ridge = %g", r)
	}
}

func TestClassify(t *testing.T) {
	cfg := config.LargeNPU()
	// A skinny FC layer is memory-bound; a giant square GEMM is
	// compute-bound.
	fc := LayerModel{Dims: tensor.Dims{M: 8, K: 4096, N: 1000}, ElemBytes: 4}
	if fc.Classify(cfg) != MemoryBound {
		t.Fatal("skinny FC should be memory-bound")
	}
	big := LayerModel{Dims: tensor.Dims{M: 8192, K: 8192, N: 8192}, ElemBytes: 4}
	if big.Classify(cfg) != ComputeBound {
		t.Fatal("giant GEMM should be compute-bound")
	}
	if MemoryBound.String() == ComputeBound.String() {
		t.Fatal("bound names must differ")
	}
}

func TestSpeedupBoundAtLeastOne(t *testing.T) {
	cfg := config.SmallNPU()
	for _, d := range []tensor.Dims{
		{M: 8, K: 64, N: 64}, {M: 4096, K: 64, N: 4096}, {M: 512, K: 512, N: 512},
	} {
		l := LayerModel{Dims: d, ElemBytes: 4}
		if sp := l.SpeedupBound(cfg); sp < 1 {
			t.Fatalf("%v: speedup bound %g < 1", d, sp)
		}
	}
}

// TestSimulatorRespectsLowerBounds cross-validates the cycle simulator:
// no simulated backward pass may move less DRAM data than the compulsory
// bound, and no simulated baseline may move less than the sequential bound.
func TestSimulatorRespectsLowerBounds(t *testing.T) {
	cfg := config.SmallNPU()
	model, err := workload.ByAbbr(workload.EdgeSuite(), "mob")
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []core.Policy{core.PolBaseline, core.PolInterleave, core.PolRearrange} {
		run := core.RunBackwardOnly(cfg, sim.Options{}, model, pol)
		layers := model.Layers(cfg.TotalBatch())
		for i, out := range run.Bwd {
			if layers[i].SkipDX {
				continue
			}
			l := LayerModel{Dims: out.Dims, ElemBytes: cfg.ElemBytes, XReuse: layers[i].XReuse}
			min := l.CompulsoryTraffic()
			if got := float64(out.Traffic.Total()); got < min*0.999 {
				t.Fatalf("%v layer %d (%v): simulated %g bytes below compulsory bound %g",
					pol, i, out.Dims, got, min)
			}
			if pol == core.PolBaseline {
				seq := l.SequentialTraffic()
				if got := float64(out.Traffic.Total()); got < seq*0.999 {
					t.Fatalf("baseline layer %d moved %g bytes, below sequential bound %g", i, got, seq)
				}
			}
		}
	}
}

// TestSimulatorRespectsTimeBound checks the roofline time lower bound.
func TestSimulatorRespectsTimeBound(t *testing.T) {
	cfg := config.SmallNPU()
	model, _ := workload.ByAbbr(workload.EdgeSuite(), "ncf")
	run := core.RunBackwardOnly(cfg, sim.Options{}, model, core.PolPartition)
	layers := model.Layers(cfg.TotalBatch())
	for i, out := range run.Bwd {
		if layers[i].SkipDX {
			continue
		}
		l := LayerModel{Dims: out.Dims, ElemBytes: cfg.ElemBytes, XReuse: layers[i].XReuse}
		if got := out.Seconds(cfg); got < l.MinSeconds(cfg)*0.999 {
			t.Fatalf("layer %d: simulated %gs beats roofline bound %gs", i, got, l.MinSeconds(cfg))
		}
	}
}
