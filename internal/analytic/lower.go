package analytic

import (
	"igosim/internal/config"
	"igosim/internal/schedule"
	"igosim/internal/systolic"
)

// This file holds the integer-exact lower bounds the design-space pruner
// (internal/dse) is built on. Unlike LayerModel's float estimates, these
// are theorem-backed against the engine's own accounting:
//
//   - Traffic floors sum the engine's per-tile byte accounting (including
//     the im2col XFactor truncation) over the distinct-tile grid, so they
//     equal BoundsOf on an unpartitioned stream. Every schedule the tree
//     generates covers the parent tile grid exactly once per GEMM
//     (proptest's CheckCoverage), so each distinct tile is fetched and each
//     output written at least once whatever the policy, partitioning or
//     scratchpad behaviour — the floor never exceeds simulated traffic.
//   - Compute totals sum systolic.TileCycles over the same grid. The
//     compute stage is serial per core and every transformation is a
//     permutation of the parent op multiset, so the per-core makespan is at
//     least the per-core mean of the total.
//   - Memory-stage floors convert byte floors to cycles through the
//     channel model: each TransferCycles call rounds (not ceils) its
//     bandwidth term, undershooting by at most 1/2 cycle, but charges at
//     least one burst latency whenever it moves bytes, so with a non-zero
//     DRAM latency the rounding loss is always covered. With zero latency
//     the caller supplies an upper bound on the number of transfer calls
//     and half of it is subtracted.
//
// The bound-never-exceeds-simulation property is enforced over the
// generator's GEMM x tiling x config space by proptest's CheckAnalyticBounds.
type PassBounds struct {
	// Compute is the exact total compute-cycle count of the pass's tile
	// ops (summed over all cores; order- and policy-independent).
	Compute int64
	// Mem lower-bounds the summed DMA-stage cycles across all cores.
	Mem int64
	// Cycles lower-bounds the pass makespan.
	Cycles int64
	// Traffic lower-bounds the total DRAM bytes moved (reads + writes).
	Traffic int64
	// TrafficSeq, MemSeq and CyclesSeq are the same bounds for the
	// *sequential* two-kernel baseline, which stages dY once per gradient
	// kernel (Figure 4): its floor gains one extra dY sweep. For a dW-only
	// layer they equal Traffic/Mem/Cycles.
	TrafficSeq int64
	MemSeq     int64
	CyclesSeq  int64
}

// Floors carries the distinct-tile byte totals and per-kernel compute
// totals of one layer under a tiling — the integer counterparts of
// LayerModel's float estimates, exact against the engine's accounting.
type Floors struct {
	// Per-tensor distinct-tile bytes (X and DX include the XFactor
	// truncation the engine applies per tile).
	X, W, Y, DY, DX, DW int64
	// Exact compute-cycle sums of each kernel's tile-op grid.
	CompFwd, CompDX, CompDW int64
	// MinX, MinW, MinDY are the smallest single-tile byte sizes of each
	// operand tensor over the distinct-tile grid — the least any op's cold
	// fetch of that operand can move (pipeline-fill term, see passBounds).
	MinX, MinW, MinDY int64
	// FillFwd, FillDX, FillDW are the smallest single-op compute-cycle
	// counts of each kernel's grid — the least compute the pipeline's last
	// op can add after the final DMA transfer completes.
	FillFwd, FillDX, FillDW int64
	// Mt, Kt, Nt are the tile-grid counts; Ops is their product, the op
	// count of one full GEMM grid.
	Mt, Kt, Nt, Ops int64
}

// tileIndices returns representative tile indices and multiplicities for
// one dimension: index 0 stands for the dim/tile full-size tiles, index
// dim/tile for the single edge tile (count zero when the tile divides the
// dimension, or when the dimension is smaller than the tile and only the
// edge exists).
func tileIndices(dim, tile int) (idx [2]int, cnt [2]int64) {
	n := dim / tile
	idx = [2]int{0, n}
	cnt = [2]int64{int64(n), 0}
	if dim-n*tile > 0 {
		cnt[1] = 1
	}
	return idx, cnt
}

// tensorFloor sums the distinct-tile bytes of one two-dimensional tensor
// through its TileParams accessor, so the floor uses the engine's own
// per-tile byte accounting (XFactor truncation included) instead of
// re-deriving it.
func tensorFloor(d1, t1, d2, t2 int, tile func(i, j int) schedule.Tile) int64 {
	i1, c1 := tileIndices(d1, t1)
	i2, c2 := tileIndices(d2, t2)
	var s int64
	for a := range i1 {
		for b := range i2 {
			if c1[a] == 0 || c2[b] == 0 {
				continue
			}
			s += c1[a] * c2[b] * tile(i1[a], i2[b]).Bytes
		}
	}
	return s
}

// tensorMin returns the smallest distinct-tile byte size of one
// two-dimensional tensor (the edge tiles are the candidates besides the
// full tile; every schedule's op fetches whole grid tiles, so no transfer
// of the tensor moves fewer bytes).
func tensorMin(d1, t1, d2, t2 int, tile func(i, j int) schedule.Tile) int64 {
	i1, c1 := tileIndices(d1, t1)
	i2, c2 := tileIndices(d2, t2)
	m := int64(-1)
	for a := range i1 {
		for b := range i2 {
			if c1[a] == 0 || c2[b] == 0 {
				continue
			}
			if v := tile(i1[a], i2[b]).Bytes; m < 0 || v < m {
				m = v
			}
		}
	}
	if m < 0 {
		return 0
	}
	return m
}

// clipSizes returns the distinct tile extents and multiplicities of one
// dimension (full tiles and the edge tile).
func clipSizes(dim, tile int) (sz [2]int, cnt [2]int64) {
	n := dim / tile
	sz = [2]int{tile, dim - n*tile}
	cnt = [2]int64{int64(n), 0}
	if sz[1] > 0 {
		cnt[1] = 1
	}
	return sz, cnt
}

// gridCompute sums f over the mt x kt x nt tile grid, evaluating f once
// per distinct (cm, ck, cn) extent combination (at most eight).
func gridCompute(d schedule.Dims, t schedule.Tiling, f func(cm, ck, cn int) int64) int64 {
	ms, mc := clipSizes(d.M, t.Tm)
	ks, kc := clipSizes(d.K, t.Tk)
	ns, nc := clipSizes(d.N, t.Tn)
	var s int64
	for a := range ms {
		for b := range ks {
			for c := range ns {
				n := mc[a] * kc[b] * nc[c]
				if n == 0 {
					continue
				}
				s += n * f(ms[a], ks[b], ns[c])
			}
		}
	}
	return s
}

// gridMin returns the minimum of f over the distinct (cm, ck, cn) extent
// combinations of the mt x kt x nt tile grid (at most eight).
func gridMin(d schedule.Dims, t schedule.Tiling, f func(cm, ck, cn int) int64) int64 {
	ms, mc := clipSizes(d.M, t.Tm)
	ks, kc := clipSizes(d.K, t.Tk)
	ns, nc := clipSizes(d.N, t.Tn)
	m := int64(-1)
	for a := range ms {
		for b := range ks {
			for c := range ns {
				if mc[a] == 0 || kc[b] == 0 || nc[c] == 0 {
					continue
				}
				if v := f(ms[a], ks[b], ns[c]); m < 0 || v < m {
					m = v
				}
			}
		}
	}
	if m < 0 {
		return 0
	}
	return m
}

// FloorsOf computes the layer's distinct-tile byte totals and exact
// per-kernel compute totals under cfg's array timing. p must be the
// unpartitioned parent parameters (zero offsets, no partial redirects).
func FloorsOf(cfg config.NPU, p schedule.TileParams) Floors {
	d, t := p.Dims, p.Tiling
	arr := systolic.New(cfg)
	mt, kt, nt := t.Counts(d)
	f := Floors{
		X:   tensorFloor(d.M, t.Tm, d.K, t.Tk, func(i, j int) schedule.Tile { return p.XTile(i, j) }),
		W:   tensorFloor(d.K, t.Tk, d.N, t.Tn, func(i, j int) schedule.Tile { return p.WTile(i, j) }),
		Y:   tensorFloor(d.M, t.Tm, d.N, t.Tn, func(i, j int) schedule.Tile { return p.YTile(i, j) }),
		DY:  tensorFloor(d.M, t.Tm, d.N, t.Tn, func(i, j int) schedule.Tile { return p.DYTile(i, j) }),
		DX:  tensorFloor(d.M, t.Tm, d.K, t.Tk, func(i, j int) schedule.Tile { return p.DXTile(i, j) }),
		DW:  tensorFloor(d.K, t.Tk, d.N, t.Tn, func(i, j int) schedule.Tile { return p.DWTile(i, j) }),
		Mt:  int64(mt), Kt: int64(kt), Nt: int64(nt),
		Ops: int64(mt) * int64(kt) * int64(nt),
	}
	// Op tile-GEMM extents per kind (see DXOp/DWOp: the reduction dimension
	// of dX is N and of dW is M, so the TileCycles arguments permute).
	f.CompFwd = gridCompute(d, t, func(cm, ck, cn int) int64 { return arr.TileCycles(cm, ck, cn) })
	f.CompDX = gridCompute(d, t, func(cm, ck, cn int) int64 { return arr.TileCycles(cm, cn, ck) })
	f.CompDW = gridCompute(d, t, func(cm, ck, cn int) int64 { return arr.TileCycles(ck, cm, cn) })
	f.MinX = tensorMin(d.M, t.Tm, d.K, t.Tk, func(i, j int) schedule.Tile { return p.XTile(i, j) })
	f.MinW = tensorMin(d.K, t.Tk, d.N, t.Tn, func(i, j int) schedule.Tile { return p.WTile(i, j) })
	f.MinDY = tensorMin(d.M, t.Tm, d.N, t.Tn, func(i, j int) schedule.Tile { return p.DYTile(i, j) })
	f.FillFwd = gridMin(d, t, func(cm, ck, cn int) int64 { return arr.TileCycles(cm, ck, cn) })
	f.FillDX = gridMin(d, t, func(cm, ck, cn int) int64 { return arr.TileCycles(cm, cn, ck) })
	f.FillDW = gridMin(d, t, func(cm, ck, cn int) int64 { return arr.TileCycles(ck, cm, cn) })
	return f
}

// MemFloorCycles lower-bounds the DMA-stage cycles of moving at least
// `bytes` through cfg's per-core channel in at most `calls` TransferCycles
// invocations. One cycle of slack absorbs float rounding differences
// between this closed form and the engine's per-call arithmetic.
func MemFloorCycles(cfg config.NPU, bytes, calls int64) int64 {
	bpc := cfg.BytesPerCycle()
	if bpc <= 0 || bytes <= 0 {
		return 0
	}
	lb := float64(bytes) / bpc
	if cfg.DRAMLatency == 0 {
		// Each call's bandwidth term rounds to nearest: up to 1/2 cycle
		// under per call, uncompensated when no burst latency is charged.
		lb -= float64(calls) / 2
	}
	flb := int64(lb) - 1
	if flb < 0 {
		return 0
	}
	return flb
}

// passBounds assembles PassBounds from byte floors and an exact compute
// total. Multi-core makespans are bounded by the per-core mean of each
// stage: partitions cover the parent grid exactly once, so the summed
// per-core compute equals the parent total, and aggregate traffic still
// meets the distinct-tile floor (each core's channel has cfg.BytesPerCycle
// of its own).
//
// Single-core makespans additionally carry the pipeline-fill terms
// (ROADMAP §3). The engine's per-op recurrence places each op's DMA block
// before its compute block, so on one core:
//
//   - the first op's operands are fetched cold before any compute starts
//     (fillMem lower-bounds that DMA prefix: the smallest cold operand
//     fetch any first op can make), hence makespan >= fillMem + comp;
//   - the last grid op's compute runs after its DMA block, which is after
//     every earlier transfer, hence makespan >= mem + fillComp (partition
//     reductions are costed outside the op stream, so the stream's last op
//     is always a grid op).
//
// Multi-core runs keep the per-core-mean form: a core's first op may reuse
// another partition's timing slack, and the fill terms are per-stream, not
// per-mean.
func passBounds(cfg config.NPU, comp, bytes, bytesSeq, calls, fillMem, fillComp int64) PassBounds {
	cores := int64(cfg.Cores)
	if cores < 1 {
		cores = 1
	}
	mem := MemFloorCycles(cfg, bytes, calls)
	memSeq := MemFloorCycles(cfg, bytesSeq, calls)
	cycles := max(comp/cores, mem/cores)
	cyclesSeq := max(comp/cores, memSeq/cores)
	if cores == 1 {
		cycles = max(comp+fillMem, mem+fillComp)
		cyclesSeq = max(comp+fillMem, memSeq+fillComp)
	}
	return PassBounds{
		Compute:    comp,
		Mem:        mem,
		Cycles:     cycles,
		Traffic:    bytes,
		TrafficSeq: bytesSeq,
		MemSeq:     memSeq,
		CyclesSeq:  cyclesSeq,
	}
}

// Forward assembles the forward-pass bounds (Y = X x W): X and W read at
// least once per distinct tile, Y written exactly once. Separated from
// FloorsOf so sweeps can cache the tiling-dependent floors and reassemble
// bounds cheaply as bandwidth-only axes vary.
func (f Floors) Forward(cfg config.NPU) PassBounds {
	bytes := f.X + f.W + f.Y
	// The first forward op fetches one X and one W tile cold (two calls).
	fillMem := MemFloorCycles(cfg, f.MinX+f.MinW, 2)
	return passBounds(cfg, f.CompFwd, bytes, bytes, f.Ops, fillMem, f.FillFwd)
}

// ForwardBounds lower-bounds one layer's forward pass.
func ForwardBounds(cfg config.NPU, p schedule.TileParams) PassBounds {
	return FloorsOf(cfg, p).Forward(cfg)
}

// BackwardBounds lower-bounds one layer's backward pass under any policy
// the tree generates. skipDX marks first layers that compute only dW.
// The transfer-call budget behind the zero-latency mem floor covers kernel
// streams (which have exactly one call per grid op); partition reduction
// phases add calls, so with DRAMLatency == 0 the Mem/Cycles legs are
// certified for unpartitioned policies only — every sweep configuration
// models a non-zero burst latency, where the floor holds unconditionally.
// freeDY mirrors sim.Options.FreeDYOnDW, the Section 3.3 limit study whose
// dW-kernel dY fetches are free: the dY floor is dropped entirely then,
// because a free fetch can make the tile resident for later counted uses.
func BackwardBounds(cfg config.NPU, p schedule.TileParams, skipDX, freeDY bool) PassBounds {
	return FloorsOf(cfg, p).Backward(cfg, skipDX, freeDY)
}

// Backward assembles the backward-pass bounds from precomputed floors (see
// BackwardBounds for semantics).
func (f Floors) Backward(cfg config.NPU, skipDX, freeDY bool) PassBounds {
	var reads, writes, comp, calls, fillBytes, fillComp int64
	if skipDX {
		reads = f.X
		if !freeDY {
			reads += f.DY
		}
		writes = f.DW
		comp = f.CompDW
		calls = f.Ops
		// A dW op fetches dY and X cold; under freeDY the dY fetch is free.
		fillBytes = f.MinX
		if !freeDY {
			fillBytes += f.MinDY
		}
		fillComp = f.FillDW
	} else {
		reads = f.X + f.W
		if !freeDY {
			reads += f.DY
		}
		writes = f.DX + f.DW
		comp = f.CompDX + f.CompDW
		calls = 2 * f.Ops
		// The first op is either dX (fetching dY+W) or dW (fetching dY+X);
		// under freeDY the dW kernel's dY fetches cost nothing.
		if freeDY {
			fillBytes = min(f.MinDY+f.MinW, f.MinX)
		} else {
			fillBytes = f.MinDY + min(f.MinW, f.MinX)
		}
		fillComp = min(f.FillDX, f.FillDW)
	}
	bytes := reads + writes
	// The sequential baseline flushes the scratchpad between its two
	// kernels, so dY is staged once per kernel: one extra dY sweep.
	bytesSeq := bytes
	if !skipDX && !freeDY {
		bytesSeq += f.DY
	}
	fillMem := MemFloorCycles(cfg, fillBytes, 2)
	return passBounds(cfg, comp, bytes, bytesSeq, calls, fillMem, fillComp)
}
