// Package analytic provides closed-form first-order models of the backward
// pass: per-layer traffic lower bounds, arithmetic intensity, and roofline
// classification. Architects use it for instant design-space scans; the
// test suite uses it to cross-validate the cycle simulator — a simulated
// run can never move less data than the compulsory bound, and a fused
// schedule can never beat the single-pass dY bound.
package analytic

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/tensor"
)

// LayerModel is the closed-form view of one layer's backward pass.
type LayerModel struct {
	Dims tensor.Dims
	// ElemBytes is the datatype width.
	ElemBytes int
	// XReuse scales X/dX bytes to the unique feature-map bytes behind the
	// im2col expansion (0 means 1).
	XReuse float64
}

func (l LayerModel) xBytes() float64 {
	b := float64(l.Dims.SizeX()) * float64(l.ElemBytes)
	if l.XReuse > 0 && l.XReuse < 1 {
		b *= l.XReuse
	}
	return b
}

func (l LayerModel) wBytes() float64  { return float64(l.Dims.SizeW()) * float64(l.ElemBytes) }
func (l LayerModel) dyBytes() float64 { return float64(l.Dims.SizeY()) * float64(l.ElemBytes) }

// CompulsoryTraffic returns the information-theoretic minimum DRAM bytes of
// the backward pass: every operand read once (dY once — the fused
// optimum), every gradient written once.
func (l LayerModel) CompulsoryTraffic() float64 {
	reads := l.dyBytes() + l.xBytes() + l.wBytes()
	writes := l.xBytes() + l.wBytes() // dX and dW
	return reads + writes
}

// SequentialTraffic returns the minimum DRAM bytes of the *sequential*
// baseline, whose two kernels each stage dY independently: dY is read
// twice (the Figure 4 redundancy the paper removes).
func (l LayerModel) SequentialTraffic() float64 {
	return l.CompulsoryTraffic() + l.dyBytes()
}

// DYSavingsBound returns the largest possible fractional traffic reduction
// interleaving can deliver against the sequential minimum: one dY pass.
func (l LayerModel) DYSavingsBound() float64 {
	seq := l.SequentialTraffic()
	if seq == 0 {
		return 0
	}
	return l.dyBytes() / seq
}

// MACs returns the multiply-accumulate count of the backward pass (two
// GEMMs).
func (l LayerModel) MACs() float64 { return float64(l.Dims.FLOPs()) }

// ArithmeticIntensity returns backward MACs per compulsory DRAM byte.
func (l LayerModel) ArithmeticIntensity() float64 {
	t := l.CompulsoryTraffic()
	if t == 0 {
		return 0
	}
	return l.MACs() / t
}

// Bound classifies a layer on a configuration's roofline.
type Bound uint8

const (
	// MemoryBound layers cannot hide their compulsory traffic behind
	// compute even with perfect overlap.
	MemoryBound Bound = iota
	// ComputeBound layers saturate the PE array.
	ComputeBound
)

func (b Bound) String() string {
	if b == ComputeBound {
		return "compute-bound"
	}
	return "memory-bound"
}

// Ridge returns the configuration's roofline ridge point in MACs per byte:
// layers below it are memory-bound.
func Ridge(cfg config.NPU) float64 {
	macsPerSec := float64(cfg.PeakMACsPerCycle()) * cfg.FrequencyHz
	return macsPerSec / cfg.DRAMBandwidth
}

// Classify places the layer on cfg's roofline using compulsory traffic —
// the most favourable case; a layer that is memory-bound here is
// memory-bound under every real schedule.
func (l LayerModel) Classify(cfg config.NPU) Bound {
	if l.ArithmeticIntensity() < Ridge(cfg) {
		return MemoryBound
	}
	return ComputeBound
}

// MinSeconds returns the roofline execution-time lower bound of the
// backward pass under cfg (single core): max of compute time at peak and
// compulsory traffic at full bandwidth.
func (l LayerModel) MinSeconds(cfg config.NPU) float64 {
	compute := l.MACs() / (float64(cfg.PeakMACsPerCycle()) * cfg.FrequencyHz)
	memory := l.CompulsoryTraffic() / cfg.DRAMBandwidth
	return max(compute, memory)
}

// MinSecondsSequential is MinSeconds with the sequential baseline's
// double-dY traffic.
func (l LayerModel) MinSecondsSequential(cfg config.NPU) float64 {
	compute := l.MACs() / (float64(cfg.PeakMACsPerCycle()) * cfg.FrequencyHz)
	memory := l.SequentialTraffic() / cfg.DRAMBandwidth
	return max(compute, memory)
}

// SpeedupBound returns the best-case speedup of perfect dY reuse over the
// sequential minimum on cfg — the analytic analogue of the paper's
// Figure 6 limit study.
func (l LayerModel) SpeedupBound(cfg config.NPU) float64 {
	ideal := l.MinSeconds(cfg)
	if ideal == 0 {
		return 1
	}
	return l.MinSecondsSequential(cfg) / ideal
}

func (l LayerModel) String() string {
	return fmt.Sprintf("analytic{%v, AI=%.1f MACs/B}", l.Dims, l.ArithmeticIntensity())
}
