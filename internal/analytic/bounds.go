package analytic

import (
	"fmt"

	"igosim/internal/dram"
	"igosim/internal/schedule"
)

// StreamBounds is the integer-exact compulsory-traffic floor of one op
// stream: every distinct operand tile must be read at least once and every
// distinct output tile written at least once, whatever the scratchpad does.
// It is the op-stream analogue of LayerModel.CompulsoryTraffic — for a full
// unpartitioned backward stream the two totals coincide exactly — and the
// property suite holds every simulated run to it per tensor class.
type StreamBounds struct {
	// MinRead and MinWrite are per-class byte floors.
	MinRead  [dram.NumClasses]int64
	MinWrite [dram.NumClasses]int64
}

// BoundsOf derives the floor from the stream itself: distinct A/B operand
// tiles by key, distinct output tiles by key. Re-fetches of spilled
// partials and pressure writebacks are legitimately above the floor; a
// simulated count below it is a conservation violation.
func BoundsOf(ops []schedule.Op) StreamBounds {
	var b StreamBounds
	seenRead := make(map[schedule.TileKey]bool)
	seenWrite := make(map[schedule.TileKey]bool)
	for i := range ops {
		for _, t := range [2]schedule.Tile{ops[i].A, ops[i].B} {
			if !seenRead[t.Key] {
				seenRead[t.Key] = true
				b.MinRead[t.Key.Class] += t.Bytes
			}
		}
		out := ops[i].Out
		if !seenWrite[out.Key] {
			seenWrite[out.Key] = true
			b.MinWrite[out.Key.Class] += out.Bytes
		}
	}
	return b
}

// TotalRead returns the summed read floor.
func (b StreamBounds) TotalRead() int64 {
	var s int64
	for _, v := range b.MinRead {
		s += v
	}
	return s
}

// TotalWrite returns the summed write floor.
func (b StreamBounds) TotalWrite() int64 {
	var s int64
	for _, v := range b.MinWrite {
		s += v
	}
	return s
}

// Check verifies a simulated traffic breakdown against the floor:
// reads must meet the per-class minimum, and writes must *equal* it for
// every class except the intermediate (accumulator) class, whose extra
// writebacks are exactly the pressure spills. A free-read option (the
// Section 3.3 limit study) breaks read conservation by design; callers
// simulating with it should not check against BoundsOf.
func (b StreamBounds) Check(tr dram.Traffic) error {
	for _, c := range dram.Classes() {
		if tr.Read[c] < b.MinRead[c] {
			return fmt.Errorf("analytic: %v reads %d below compulsory floor %d", c, tr.Read[c], b.MinRead[c])
		}
		switch {
		case c == dram.ClassAcc:
			if tr.Write[c] < b.MinWrite[c] {
				return fmt.Errorf("analytic: %v writes %d below compulsory floor %d", c, tr.Write[c], b.MinWrite[c])
			}
		case tr.Write[c] != b.MinWrite[c]:
			return fmt.Errorf("analytic: %v writes %d, conservation requires exactly %d", c, tr.Write[c], b.MinWrite[c])
		}
	}
	return nil
}
