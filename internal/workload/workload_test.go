package workload

import (
	"testing"
)

func TestSuitesComplete(t *testing.T) {
	for _, suite := range [][]Model{EdgeSuite(), ServerSuite()} {
		if len(suite) != 9 {
			t.Fatalf("suite has %d models, want 9 (Table 4)", len(suite))
		}
		want := []string{"rcnn", "goo", "ncf", "res", "dlrm", "mob", "yolo", "bert", "T5"}
		for i, m := range suite {
			if m.Abbr != want[i] {
				t.Errorf("position %d: %s, want %s", i, m.Abbr, want[i])
			}
		}
	}
}

func TestSuiteFor(t *testing.T) {
	if _, err := SuiteFor("edge"); err != nil {
		t.Fatal(err)
	}
	if _, err := SuiteFor("server"); err != nil {
		t.Fatal(err)
	}
	if _, err := SuiteFor("bogus"); err == nil {
		t.Fatal("bogus suite accepted")
	}
}

func TestByAbbr(t *testing.T) {
	m, err := ByAbbr(ServerSuite(), "res")
	if err != nil || m.Name != "Resnet50" {
		t.Fatalf("ByAbbr(res) = %v, %v", m.Name, err)
	}
	if _, err := ByAbbr(ServerSuite(), "nope"); err == nil {
		t.Fatal("unknown abbreviation accepted")
	}
}

func TestAbbrs(t *testing.T) {
	if got := Abbrs(ServerSuite()); len(got) != 9 || got[3] != "res" {
		t.Fatalf("Abbrs = %v", got)
	}
}

// TestParameterCounts checks the GEMM parameter counts against the
// published architectures (tolerances cover head/variant details).
func TestParameterCounts(t *testing.T) {
	cases := []struct {
		model    Model
		want     int64
		tolPct   float64
		citation string
	}{
		{ResNet50(), 25.5e6, 5, "ResNet-50 ~25.5M"},
		{GoogLeNet(), 7e6, 15, "Inception v1 ~7M (Table 4 lists 62M; see zoo note)"},
		{MobileNet(), 4.2e6, 10, "MobileNet v1 ~4.2M"},
		{FasterRCNN(), 20e6, 10, "Table 4 lists 19M"},
		{YOLOv2Tiny(), 11e6, 20, "YOLOv2-tiny ~11M"},
		{YOLOv5L(), 46.5e6, 15, "YOLOv5-L ~46.5M"},
		{BERTLarge(), 303e6, 15, "BERT-large encoder stack (340M incl. embeddings)"},
		{T5Large(), 737e6, 10, "T5-large ~770M incl. embeddings"},
		{T5Small(), 60e6, 30, "T5-small ~60M"},
	}
	for _, c := range cases {
		got := c.model.Params()
		lo := c.want * int64(100-c.tolPct) / 100
		hi := c.want * int64(100+c.tolPct) / 100
		if got < lo || got > hi {
			t.Errorf("%s: %d params, want %d +/- %.0f%% (%s)", c.model.Abbr, got, c.want, c.tolPct, c.citation)
		}
	}
}

func TestLayersValidAndFirstSkipsDX(t *testing.T) {
	for _, suite := range [][]Model{EdgeSuite(), ServerSuite()} {
		for _, m := range suite {
			layers := m.Layers(8)
			if len(layers) == 0 {
				t.Fatalf("%s: no layers", m.Abbr)
			}
			if !layers[0].SkipDX {
				t.Errorf("%s: first layer must skip dX", m.Abbr)
			}
			for i, l := range layers {
				if !l.Dims.Valid() {
					t.Errorf("%s layer %d (%s): invalid dims %v", m.Abbr, i, l.Name, l.Dims)
				}
				if i > 0 && l.SkipDX {
					t.Errorf("%s layer %d: only the first layer skips dX", m.Abbr, i)
				}
				if l.XReuse < 0 || l.XReuse > 1 {
					t.Errorf("%s layer %d: XReuse %g out of range", m.Abbr, i, l.XReuse)
				}
			}
		}
	}
}

func TestBatchScalesM(t *testing.T) {
	for _, m := range ServerSuite() {
		l8 := m.Layers(8)
		l16 := m.Layers(16)
		if len(l8) != len(l16) {
			t.Fatalf("%s: layer count changed with batch", m.Abbr)
		}
		for i := range l8 {
			if l16[i].Dims.M != 2*l8[i].Dims.M {
				t.Errorf("%s layer %d: M did not scale with batch (%d vs %d)",
					m.Abbr, i, l8[i].Dims.M, l16[i].Dims.M)
			}
			if l16[i].Dims.K != l8[i].Dims.K || l16[i].Dims.N != l8[i].Dims.N {
				t.Errorf("%s layer %d: K/N must not depend on batch", m.Abbr, i)
			}
		}
	}
}

func TestRecommendationBatchScale(t *testing.T) {
	for _, abbr := range []string{"ncf", "dlrm"} {
		m, _ := ByAbbr(ServerSuite(), abbr)
		if m.BatchScale != 128 {
			t.Errorf("%s: BatchScale = %d, want 128", abbr, m.BatchScale)
		}
	}
	res, _ := ByAbbr(ServerSuite(), "res")
	if res.BatchScale > 1 {
		t.Error("vision models must not scale the batch")
	}
}

func TestConvXReuse(t *testing.T) {
	res := ResNet50()
	layers := res.Layers(1)
	// conv1 is 7x7 stride 2: reuse 4/49.
	if got := layers[0].XReuse; got < 4.0/49-1e-9 || got > 4.0/49+1e-9 {
		t.Fatalf("conv1 XReuse = %g, want %g", got, 4.0/49)
	}
	// 1x1 convolutions have no im2col expansion.
	for _, l := range layers {
		if l.Name == "conv2_1_1x1a" && l.XReuse != 1 {
			t.Fatalf("1x1 conv XReuse = %g, want 1", l.XReuse)
		}
	}
}

func TestResNet50LayerShapes(t *testing.T) {
	layers := ResNet50().Layers(1)
	if len(layers) != 54 {
		t.Fatalf("ResNet-50 emits %d layers, want 54 (53 conv + fc)", len(layers))
	}
	// conv1 im2col at batch 1: M=112*112, K=3*49, N=64.
	if d := layers[0].Dims; d.M != 12544 || d.K != 147 || d.N != 64 {
		t.Fatalf("conv1 dims %v", d)
	}
	last := layers[len(layers)-1]
	if last.Dims.K != 2048 || last.Dims.N != 1000 {
		t.Fatalf("classifier dims %v", last.Dims)
	}
}

func TestTransformerLayerCounts(t *testing.T) {
	// BERT-large: 24 blocks x 6 GEMMs + pooler + classifier.
	if got := len(BERTLarge().Layers(1)); got != 24*6+2 {
		t.Fatalf("bert-large layers = %d", got)
	}
	// T5-large: 24 enc x 6 + 24 dec x 10 + lm_head.
	if got := len(T5Large().Layers(1)); got != 24*6+24*10+1 {
		t.Fatalf("t5-large layers = %d", got)
	}
}

func TestDLRMInteractionWidth(t *testing.T) {
	layers := DLRM().Layers(1)
	for _, l := range layers {
		if l.Name == "top1" && l.Dims.K != 479 {
			t.Fatalf("DLRM top MLP input = %d, want 479 (128 + 27*26/2)", l.Dims.K)
		}
	}
}

func TestModelsAreDeterministic(t *testing.T) {
	a := YOLOv5L().Layers(8)
	b := YOLOv5L().Layers(8)
	if len(a) != len(b) {
		t.Fatal("nondeterministic layer count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("layer %d differs between builds", i)
		}
	}
}

func TestInvalidBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive batch")
		}
	}()
	ResNet50().Layers(0)
}
