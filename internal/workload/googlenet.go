package workload

import "fmt"

// inceptionSpec gives the branch widths of one GoogLeNet inception module:
// 1x1 branch, 3x3 reduce + 3x3, 5x5 reduce + 5x5, and pool projection.
type inceptionSpec struct {
	name                               string
	c1, c3red, c3, c5red, c5, poolProj int
}

// GoogLeNet builds the paper's "goo" workload: GoogLeNet (Inception v1) on
// 224x224 inputs. All nine inception modules are emitted with their
// standard branch widths, plus the stem and classifier.
//
// Table 4 of the paper lists 62M parameters for "Googlenet"; the published
// Inception v1 has ~7M (13M with auxiliary heads). We implement the
// published architecture and record the discrepancy here — layer *shapes*,
// which are what the simulator consumes, are unaffected.
func GoogLeNet() Model {
	return Model{Name: "Googlenet", Abbr: "goo", build: buildGoogLeNet}
}

func inception(b *builder, s inceptionSpec) {
	entry := b.snapshot()
	h, w := b.spatial()
	// Branch 1: 1x1.
	b.conv(s.name+"_1x1", s.c1, 1, 1, 0)
	// Branch 2: 1x1 reduce then 3x3.
	b.restore(entry)
	b.conv(s.name+"_3x3red", s.c3red, 1, 1, 0)
	b.conv(s.name+"_3x3", s.c3, 3, 1, 1)
	// Branch 3: 1x1 reduce then 5x5.
	b.restore(entry)
	b.conv(s.name+"_5x5red", s.c5red, 1, 1, 0)
	b.conv(s.name+"_5x5", s.c5, 5, 1, 2)
	// Branch 4: pool then 1x1 projection.
	b.restore(entry)
	b.conv(s.name+"_pool_proj", s.poolProj, 1, 1, 0)
	// Concatenate branches.
	b.restore(shape{h: h, w: w, c: s.c1 + s.c3 + s.c5 + s.poolProj})
}

func buildGoogLeNet(batch int) []Layer {
	b := newBuilder(batch, 224, 224, 3)
	b.conv("conv1", 64, 7, 2, 3)
	b.pool(3, 2, 1)
	b.conv("conv2_red", 64, 1, 1, 0)
	b.conv("conv2", 192, 3, 1, 1)
	b.pool(3, 2, 1)

	specs3 := []inceptionSpec{
		{"inc3a", 64, 96, 128, 16, 32, 32},
		{"inc3b", 128, 128, 192, 32, 96, 64},
	}
	for _, s := range specs3 {
		inception(b, s)
	}
	b.pool(3, 2, 1)

	specs4 := []inceptionSpec{
		{"inc4a", 192, 96, 208, 16, 48, 64},
		{"inc4b", 160, 112, 224, 24, 64, 64},
		{"inc4c", 128, 128, 256, 24, 64, 64},
		{"inc4d", 112, 144, 288, 32, 64, 64},
		{"inc4e", 256, 160, 320, 32, 128, 128},
	}
	for _, s := range specs4 {
		inception(b, s)
	}
	b.pool(3, 2, 1)

	specs5 := []inceptionSpec{
		{"inc5a", 256, 160, 320, 32, 128, 128},
		{"inc5b", 384, 192, 384, 48, 128, 128},
	}
	for _, s := range specs5 {
		inception(b, s)
	}

	b.globalPool()
	b.fc("fc1000", batch, 1024, 1000)

	// Sanity: the concatenated channel walk must land on 1024.
	if b.c != 1024 {
		panic(fmt.Sprintf("workload: googlenet channel walk ended at %d, want 1024", b.c))
	}
	return b.layers
}
