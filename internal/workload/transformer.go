package workload

import (
	"fmt"

	"igosim/internal/tensor"
)

// transformerSpec captures what the zoo needs of an encoder/decoder stack:
// the weighted GEMMs of each block. Attention score/context matmuls carry
// no trainable weights, so — like the paper, which applies its techniques
// to layers with trainable parameters — they are not part of the layer
// list.
type transformerSpec struct {
	name      string
	seqLen    int
	dModel    int
	dFF       int
	encLayers int
	decLayers int // 0 for encoder-only models
	vocabProj int // output projection width (0 to omit)
}

func (t transformerSpec) build(batch int) []Layer {
	m := batch * t.seqLen
	b := &builder{batch: batch}

	attn := func(prefix string) {
		b.linear(prefix+"_q", tensor.Dims{M: m, K: t.dModel, N: t.dModel})
		b.linear(prefix+"_k", tensor.Dims{M: m, K: t.dModel, N: t.dModel})
		b.linear(prefix+"_v", tensor.Dims{M: m, K: t.dModel, N: t.dModel})
		b.linear(prefix+"_o", tensor.Dims{M: m, K: t.dModel, N: t.dModel})
	}
	ffn := func(prefix string) {
		b.linear(prefix+"_ffn_up", tensor.Dims{M: m, K: t.dModel, N: t.dFF})
		b.linear(prefix+"_ffn_down", tensor.Dims{M: m, K: t.dFF, N: t.dModel})
	}

	for i := 0; i < t.encLayers; i++ {
		prefix := fmt.Sprintf("enc%d", i+1)
		attn(prefix + "_self")
		ffn(prefix)
	}
	for i := 0; i < t.decLayers; i++ {
		prefix := fmt.Sprintf("dec%d", i+1)
		attn(prefix + "_self")
		attn(prefix + "_cross")
		ffn(prefix)
	}
	if t.vocabProj > 0 {
		b.linear("lm_head", tensor.Dims{M: m, K: t.dModel, N: t.vocabProj})
	}
	return b.layers
}

// BERTLarge builds the large-NPU "bert" variant: BERT-large (24 encoder
// blocks, hidden 1024, FFN 4096, ~340M parameters) fine-tuned at sequence
// length 128 with a small classification head.
func BERTLarge() Model {
	spec := transformerSpec{
		name: "bert-large", seqLen: 128, dModel: 1024, dFF: 4096, encLayers: 24,
	}
	return Model{Name: "BERT-large", Abbr: "bert", build: func(batch int) []Layer {
		ls := spec.build(batch)
		ls = append(ls, Layer{Name: "pooler", Dims: tensor.Dims{M: batch, K: 1024, N: 1024}})
		ls = append(ls, Layer{Name: "classifier", Dims: tensor.Dims{M: batch, K: 1024, N: 2}})
		return ls
	}}
}

// BERTTiny builds the small-NPU "bert" variant: BERT-tiny-class model
// (2 encoder blocks, hidden 128, FFN 512) at sequence length 128.
// Table 4 lists 14M parameters, which the token embeddings dominate;
// the GEMM-lowered trainable layers are what the simulator consumes.
func BERTTiny() Model {
	spec := transformerSpec{
		name: "bert-tiny", seqLen: 128, dModel: 128, dFF: 512, encLayers: 2,
	}
	return Model{Name: "BERT-tiny", Abbr: "bert", build: func(batch int) []Layer {
		ls := spec.build(batch)
		ls = append(ls, Layer{Name: "pooler", Dims: tensor.Dims{M: batch, K: 128, N: 128}})
		ls = append(ls, Layer{Name: "classifier", Dims: tensor.Dims{M: batch, K: 128, N: 2}})
		return ls
	}}
}

// T5Large builds the large-NPU "T5" variant: T5-large (24 encoder + 24
// decoder blocks, d_model 1024, d_ff 4096, ~770M parameters) at sequence
// length 128 with the 32128-token vocabulary projection.
func T5Large() Model {
	spec := transformerSpec{
		name: "t5-large", seqLen: 128, dModel: 1024, dFF: 4096,
		encLayers: 24, decLayers: 24, vocabProj: 32128,
	}
	return Model{Name: "T5-large", Abbr: "T5", build: spec.build}
}

// T5Small builds the small-NPU "T5" variant: T5-small (6+6 blocks, d_model
// 512, d_ff 2048, ~60M parameters) at sequence length 128.
func T5Small() Model {
	spec := transformerSpec{
		name: "t5-small", seqLen: 128, dModel: 512, dFF: 2048,
		encLayers: 6, decLayers: 6, vocabProj: 32128,
	}
	return Model{Name: "T5-small", Abbr: "T5", build: spec.build}
}
