package workload

import "fmt"

// YOLOv2Tiny builds the small-NPU "yolo" variant of Table 4: YOLOv2-tiny
// (~11M parameters) on 416x416 inputs — nine convolutions with max-pool
// downsampling between them.
func YOLOv2Tiny() Model {
	return Model{Name: "YOLOv2-tiny", Abbr: "yolo", build: buildYOLOv2Tiny}
}

func buildYOLOv2Tiny(batch int) []Layer {
	b := newBuilder(batch, 416, 416, 3)
	widths := []int{16, 32, 64, 128, 256, 512}
	for i, c := range widths {
		b.conv(fmt.Sprintf("conv%d", i+1), c, 3, 1, 1)
		stride := 2
		if i == len(widths)-1 {
			stride = 1 // final pool in YOLOv2-tiny keeps spatial size
		}
		b.pool(2, stride, 0)
	}
	b.conv("conv7", 1024, 3, 1, 1)
	// A 1024->512 3x3 stage keeps the total at the ~11M parameters Table 4
	// lists for the small yolo variant.
	b.conv("conv8", 512, 3, 1, 1)
	b.conv("conv9", 125, 1, 1, 0) // 5 anchors x (20 classes + 5)
	return b.layers
}

// YOLOv5L builds the large-NPU "yolo" variant: YOLOv5-L (~47M parameters)
// on 640x640 inputs. The CSP bottlenecks are emitted as their constituent
// 1x1/3x3 convolutions; the SPPF block and the PANet head's convolutions
// are included with their published widths.
func YOLOv5L() Model {
	return Model{Name: "YOLOv5-L", Abbr: "yolo", build: buildYOLOv5L}
}

// c3Block appends a YOLOv5 C3 module: two 1x1 entry convs, n bottlenecks
// (1x1 + 3x3 each), and a 1x1 fuse conv.
func c3Block(b *builder, name string, outC, n int) {
	half := outC / 2
	entry := b.snapshot()
	b.conv(name+"_cv1", half, 1, 1, 0)
	for i := 0; i < n; i++ {
		b.conv(fmt.Sprintf("%s_m%d_cv1", name, i+1), half, 1, 1, 0)
		b.conv(fmt.Sprintf("%s_m%d_cv2", name, i+1), half, 3, 1, 1)
	}
	b.restore(entry)
	b.conv(name+"_cv2", half, 1, 1, 0)
	b.setChannels(outC) // concat of the two paths
	b.conv(name+"_cv3", outC, 1, 1, 0)
}

func buildYOLOv5L(batch int) []Layer {
	b := newBuilder(batch, 640, 640, 3)
	// Backbone (depth multiple 1.0, width multiple 1.0).
	b.conv("stem", 64, 6, 2, 2)
	b.conv("down1", 128, 3, 2, 1)
	c3Block(b, "c3_1", 128, 3)
	b.conv("down2", 256, 3, 2, 1)
	c3Block(b, "c3_2", 256, 6)
	b.conv("down3", 512, 3, 2, 1)
	c3Block(b, "c3_3", 512, 9)
	b.conv("down4", 1024, 3, 2, 1)
	c3Block(b, "c3_4", 1024, 3)
	// SPPF.
	b.conv("sppf_cv1", 512, 1, 1, 0)
	b.setChannels(2048) // concat of four pooled copies
	b.conv("sppf_cv2", 1024, 1, 1, 0)

	// PANet head (upsample path then downsample path).
	b.conv("head_cv1", 512, 1, 1, 0)
	b.restore(shape{h: 40, w: 40, c: 1024}) // upsampled + concat with P4
	c3Block(b, "head_c3_1", 512, 3)
	b.conv("head_cv2", 256, 1, 1, 0)
	b.restore(shape{h: 80, w: 80, c: 512}) // upsampled + concat with P3
	c3Block(b, "head_c3_2", 256, 3)
	p3 := b.snapshot()
	b.conv("head_down1", 256, 3, 2, 1)
	b.setChannels(512) // concat
	c3Block(b, "head_c3_3", 512, 3)
	p4 := b.snapshot()
	b.conv("head_down2", 512, 3, 2, 1)
	b.setChannels(1024) // concat
	c3Block(b, "head_c3_4", 1024, 3)
	p5 := b.snapshot()

	// Detect convs on the three scales (3 anchors x 85).
	b.restore(p3)
	b.conv("detect_p3", 255, 1, 1, 0)
	b.restore(p4)
	b.conv("detect_p4", 255, 1, 1, 0)
	b.restore(p5)
	b.conv("detect_p5", 255, 1, 1, 0)
	return b.layers
}
