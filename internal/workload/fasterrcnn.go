package workload

// FasterRCNN builds the paper's "rcnn" workload (~19-20M parameters): a
// two-stage detector with a ResNet-18 feature extractor, the region
// proposal network, and the per-RoI detection head. The head processes
// RoIsPerImage pooled regions per image, so its FC layers run with
// M = batch * RoIsPerImage.
func FasterRCNN() Model {
	return Model{Name: "FasterRCNN", Abbr: "rcnn", build: buildFasterRCNN}
}

// RoIsPerImage is the number of sampled region proposals trained per image.
const RoIsPerImage = 32

func buildFasterRCNN(batch int) []Layer {
	b := newBuilder(batch, 224, 224, 3)
	resNet18Trunk(b)

	// Region proposal network on the C5 feature map (9 anchors).
	b.conv("rpn_conv", 512, 3, 1, 1)
	rpnEntry := b.snapshot()
	b.conv("rpn_cls", 18, 1, 1, 0)
	b.restore(rpnEntry)
	b.conv("rpn_bbox", 36, 1, 1, 0)
	b.restore(rpnEntry)

	// Detection head: RoIAlign produces 7x7x512 features per proposal.
	rois := batch * RoIsPerImage
	b.fc("head_fc6", rois, 512*7*7, 256)
	b.fc("head_fc7", rois, 256, 256)
	b.fc("head_cls", rois, 256, 21)
	b.fc("head_bbox", rois, 256, 84)
	return b.layers
}
