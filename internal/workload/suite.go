package workload

import "fmt"

// ServerSuite returns the nine workloads of Table 4 with the model sizes
// the paper uses on the large (server) NPU: yolo=YOLOv5-L,
// bert=BERT-large, T5=T5-large.
func ServerSuite() []Model {
	return []Model{
		FasterRCNN(),
		GoogLeNet(),
		NCF(),
		ResNet50(),
		DLRM(),
		MobileNet(),
		YOLOv5L(),
		BERTLarge(),
		T5Large(),
	}
}

// EdgeSuite returns the nine workloads with the small variants the paper
// uses on the small (edge) NPU: yolo=YOLOv2-tiny, bert=BERT-tiny,
// T5=T5-small.
func EdgeSuite() []Model {
	return []Model{
		FasterRCNN(),
		GoogLeNet(),
		NCF(),
		ResNet50(),
		DLRM(),
		MobileNet(),
		YOLOv2Tiny(),
		BERTTiny(),
		T5Small(),
	}
}

// SuiteFor returns the edge or server suite by name ("edge" or "server").
func SuiteFor(class string) ([]Model, error) {
	switch class {
	case "edge", "small":
		return EdgeSuite(), nil
	case "server", "large":
		return ServerSuite(), nil
	default:
		return nil, fmt.Errorf("workload: unknown suite %q (want edge or server)", class)
	}
}

// ByAbbr finds a model in the given suite by its Table 4 abbreviation.
func ByAbbr(suite []Model, abbr string) (Model, error) {
	for _, m := range suite {
		if m.Abbr == abbr || m.Name == abbr {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("workload: no model %q in suite", abbr)
}

// Abbrs lists the suite's abbreviations in order.
func Abbrs(suite []Model) []string {
	out := make([]string, len(suite))
	for i, m := range suite {
		out[i] = m.Abbr
	}
	return out
}
