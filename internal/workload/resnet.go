package workload

import "fmt"

// ResNet50 builds the paper's "res" workload: ResNet-50 on 224x224 inputs
// (~25M parameters). Every convolution of the four bottleneck stages is
// emitted, including the projection shortcuts, plus the final classifier.
func ResNet50() Model {
	return Model{Name: "Resnet50", Abbr: "res", build: buildResNet50}
}

// bottleneckStage appends `blocks` ResNet bottleneck blocks: 1x1 reduce,
// 3x3, 1x1 expand, with a 1x1 projection shortcut on the first block.
func bottleneckStage(b *builder, stage, blocks, mid, out, stride int) {
	for blk := 0; blk < blocks; blk++ {
		s := 1
		if blk == 0 {
			s = stride
		}
		entry := b.snapshot()
		prefix := fmt.Sprintf("conv%d_%d", stage, blk+1)
		b.conv(prefix+"_1x1a", mid, 1, s, 0)
		b.conv(prefix+"_3x3", mid, 3, 1, 1)
		b.conv(prefix+"_1x1b", out, 1, 1, 0)
		if blk == 0 {
			// Projection shortcut runs on the block's input.
			exit := b.snapshot()
			b.restore(entry)
			b.conv(prefix+"_proj", out, 1, s, 0)
			b.restore(exit)
		}
	}
}

func buildResNet50(batch int) []Layer {
	b := newBuilder(batch, 224, 224, 3)
	b.conv("conv1", 64, 7, 2, 3)
	b.pool(3, 2, 1)
	bottleneckStage(b, 2, 3, 64, 256, 1)
	bottleneckStage(b, 3, 4, 128, 512, 2)
	bottleneckStage(b, 4, 6, 256, 1024, 2)
	bottleneckStage(b, 5, 3, 512, 2048, 2)
	b.globalPool()
	b.fc("fc1000", batch, 2048, 1000)
	return b.layers
}

// ResNet18Trunk appends a ResNet-18 feature extractor (used as the
// FasterRCNN backbone) and returns the builder for further layers.
func resNet18Trunk(b *builder) {
	b.conv("conv1", 64, 7, 2, 3)
	b.pool(3, 2, 1)
	basicStage(b, 2, 2, 64, 1)
	basicStage(b, 3, 2, 128, 2)
	basicStage(b, 4, 2, 256, 2)
	basicStage(b, 5, 2, 512, 2)
}

// basicStage appends `blocks` ResNet basic blocks (two 3x3 convs each) with
// a projection shortcut when the stage downsamples.
func basicStage(b *builder, stage, blocks, out, stride int) {
	for blk := 0; blk < blocks; blk++ {
		s := 1
		if blk == 0 {
			s = stride
		}
		entry := b.snapshot()
		prefix := fmt.Sprintf("conv%d_%d", stage, blk+1)
		b.conv(prefix+"_3x3a", out, 3, s, 1)
		b.conv(prefix+"_3x3b", out, 3, 1, 1)
		if blk == 0 && (s != 1 || entry.c != out) {
			exit := b.snapshot()
			b.restore(entry)
			b.conv(prefix+"_proj", out, 1, s, 0)
			b.restore(exit)
		}
	}
}
