// Package workload defines the DNN model zoo of Table 4. Every model is a
// list of trainable layers lowered to GEMM dimensions (convolutions via
// im2col, as the paper's simulator assumes). The simulator consumes only
// shapes, so the zoo is a faithful substitute for the authors' checkpoints:
// training data never influences the paper's measurements.
package workload

import (
	"fmt"

	"igosim/internal/tensor"
)

// Layer is one trainable layer lowered to its forward GEMM dimensions.
type Layer struct {
	Name string
	Dims tensor.Dims
	// SkipDX marks the network's first trainable layer: there is no
	// upstream activation to propagate into, so only dW is computed and the
	// interleaving techniques do not apply (Section 6.2).
	SkipDX bool
	// XReuse is the fraction of unique DRAM bytes behind the layer's
	// im2col-expanded X (and dX) matrix. im2col duplicates overlapping
	// receptive fields (9x for a stride-1 3x3 convolution); an NPU performs
	// the expansion on-chip and only moves the underlying feature map, so
	// X/dX tile traffic is scaled by stride^2/(KH*KW), capped at 1.
	// Zero means 1 (no expansion: FC/linear layers).
	XReuse float64
}

// Model is one workload of Table 4.
type Model struct {
	// Name is the full model name; Abbr matches the paper's x-axis labels.
	Name, Abbr string
	// BatchScale multiplies the NPU batch size. Vision and language models
	// use 1; recommendation models (ncf, dlrm) train with batches orders of
	// magnitude larger (the MLPerf references use 2^15-ish), so they scale
	// the configured batch by 128 to stay proportional across configs.
	BatchScale int
	build      func(batch int) []Layer
}

// Layers instantiates the model's trainable layers for the given base batch
// size (the NPU configuration's total batch).
func (m Model) Layers(batch int) []Layer {
	if batch <= 0 {
		panic(fmt.Sprintf("workload: invalid batch %d", batch))
	}
	scale := m.BatchScale
	if scale < 1 {
		scale = 1
	}
	ls := m.build(batch * scale)
	if len(ls) == 0 {
		panic(fmt.Sprintf("workload: model %s built no layers", m.Abbr))
	}
	ls[0].SkipDX = true
	for i, l := range ls {
		if !l.Dims.Valid() {
			panic(fmt.Sprintf("workload: model %s layer %d (%s) has invalid dims %v", m.Abbr, i, l.Name, l.Dims))
		}
	}
	return ls
}

// Params returns the trainable parameter count of the GEMM-lowered layers
// (K*N per layer — weights are batch independent).
func (m Model) Params() int64 {
	var total int64
	for _, l := range m.build(1) {
		total += l.Dims.SizeW()
	}
	return total
}

// builder tracks spatial dimensions through a convolutional trunk so layer
// GEMMs can be emitted as the architecture is walked.
type builder struct {
	layers []Layer
	batch  int
	h, w   int // current feature-map spatial dims
	c      int // current channel count
}

func newBuilder(batch, inH, inW, inC int) *builder {
	return &builder{batch: batch, h: inH, w: inW, c: inC}
}

// shape is a snapshot of the trunk state, used for branches.
type shape struct{ h, w, c int }

func (b *builder) snapshot() shape     { return shape{b.h, b.w, b.c} }
func (b *builder) restore(s shape)     { b.h, b.w, b.c = s.h, s.w, s.c }
func (b *builder) setChannels(c int)   { b.c = c }
func (b *builder) spatial() (int, int) { return b.h, b.w }

// conv appends a convolution layer and advances the trunk state.
func (b *builder) conv(name string, outC, k, stride, pad int) {
	cv := tensor.Conv2D{
		Batch: b.batch, InC: b.c, InH: b.h, InW: b.w,
		OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
	}
	reuse := float64(stride*stride) / float64(k*k)
	if reuse > 1 {
		reuse = 1
	}
	b.layers = append(b.layers, Layer{Name: name, Dims: cv.Im2Col(), XReuse: reuse})
	b.h, b.w, b.c = cv.OutH(), cv.OutW(), outC
}

// pool applies a pooling layer: spatial reduction only, no GEMM emitted.
func (b *builder) pool(k, stride, pad int) {
	b.h = (b.h+2*pad-k)/stride + 1
	b.w = (b.w+2*pad-k)/stride + 1
}

// globalPool collapses the spatial dims to 1x1.
func (b *builder) globalPool() { b.h, b.w = 1, 1 }

// fc appends a fully connected layer with M rows (usually the batch).
func (b *builder) fc(name string, rows, in, out int) {
	b.layers = append(b.layers, Layer{Name: name, Dims: tensor.FC{Batch: rows, In: in, Out: out}.Dims()})
}

// linear appends a GEMM layer with explicit dimensions.
func (b *builder) linear(name string, d tensor.Dims) {
	b.layers = append(b.layers, Layer{Name: name, Dims: d})
}
