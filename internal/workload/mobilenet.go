package workload

import "fmt"

// MobileNet builds the paper's "mob" workload: MobileNet v1 (width 1.0) on
// 224x224 inputs, ~4.2M GEMM parameters.
//
// Depthwise convolutions are grouped per channel: their im2col lowering
// degenerates to a batch of tiny independent GEMMs rather than one large
// GEMM, so — like the paper, which applies its techniques to "layers where
// weight gradients and input gradients can be computed using GEMM or
// convolution" — we model the GEMM-shaped layers: the stem convolution,
// all thirteen pointwise (1x1) convolutions, and the classifier. The
// depthwise layers' spatial effect (stride-2 downsampling) is preserved.
func MobileNet() Model {
	return Model{Name: "Mobilenet", Abbr: "mob", build: buildMobileNet}
}

// dwSep appends one depthwise-separable block: the depthwise 3x3 stage
// adjusts spatial dims (stride) without emitting a GEMM; the pointwise 1x1
// stage is the emitted layer.
func dwSep(b *builder, idx, outC, stride int) {
	// Depthwise 3x3 stage: spatial change only.
	b.pool(3, stride, 1)
	b.conv(fmt.Sprintf("pw%d_1x1", idx), outC, 1, 1, 0)
}

func buildMobileNet(batch int) []Layer {
	b := newBuilder(batch, 224, 224, 3)
	b.conv("conv1", 32, 3, 2, 1)
	specs := []struct{ outC, stride int }{
		{64, 1},
		{128, 2}, {128, 1},
		{256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	for i, s := range specs {
		dwSep(b, i+1, s.outC, s.stride)
	}
	b.globalPool()
	b.fc("fc1000", batch, 1024, 1000)
	return b.layers
}
