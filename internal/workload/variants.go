package workload

import "fmt"

// Additional model variants beyond the Table 4 suites, for custom studies
// with cmd/sweep and the public API. They reuse the same builders with the
// published architecture parameters.

// BERTBase builds BERT-base: 12 encoder blocks, hidden 768, FFN 3072
// (~110M parameters including embeddings; ~85M in GEMM layers).
func BERTBase() Model {
	spec := transformerSpec{
		name: "bert-base", seqLen: 128, dModel: 768, dFF: 3072, encLayers: 12,
	}
	return Model{Name: "BERT-base", Abbr: "bert-base", build: spec.build}
}

// T5Base builds T5-base: 12+12 blocks, d_model 768, d_ff 3072 (~220M).
func T5Base() Model {
	spec := transformerSpec{
		name: "t5-base", seqLen: 128, dModel: 768, dFF: 3072,
		encLayers: 12, decLayers: 12, vocabProj: 32128,
	}
	return Model{Name: "T5-base", Abbr: "T5-base", build: spec.build}
}

// YOLOv5S builds YOLOv5-S (~7.2M parameters): the YOLOv5-L topology at
// width multiple 0.5 and depth multiple 1/3.
func YOLOv5S() Model {
	return Model{Name: "YOLOv5-S", Abbr: "yolo-s", build: buildYOLOv5S}
}

func buildYOLOv5S(batch int) []Layer {
	b := newBuilder(batch, 640, 640, 3)
	b.conv("stem", 32, 6, 2, 2)
	b.conv("down1", 64, 3, 2, 1)
	c3Block(b, "c3_1", 64, 1)
	b.conv("down2", 128, 3, 2, 1)
	c3Block(b, "c3_2", 128, 2)
	b.conv("down3", 256, 3, 2, 1)
	c3Block(b, "c3_3", 256, 3)
	b.conv("down4", 512, 3, 2, 1)
	c3Block(b, "c3_4", 512, 1)
	b.conv("sppf_cv1", 256, 1, 1, 0)
	b.setChannels(1024)
	b.conv("sppf_cv2", 512, 1, 1, 0)

	b.conv("head_cv1", 256, 1, 1, 0)
	b.restore(shape{h: 40, w: 40, c: 512})
	c3Block(b, "head_c3_1", 256, 1)
	b.conv("head_cv2", 128, 1, 1, 0)
	b.restore(shape{h: 80, w: 80, c: 256})
	c3Block(b, "head_c3_2", 128, 1)
	p3 := b.snapshot()
	b.conv("head_down1", 128, 3, 2, 1)
	b.setChannels(256)
	c3Block(b, "head_c3_3", 256, 1)
	p4 := b.snapshot()
	b.conv("head_down2", 256, 3, 2, 1)
	b.setChannels(512)
	c3Block(b, "head_c3_4", 512, 1)
	p5 := b.snapshot()

	b.restore(p3)
	b.conv("detect_p3", 255, 1, 1, 0)
	b.restore(p4)
	b.conv("detect_p4", 255, 1, 1, 0)
	b.restore(p5)
	b.conv("detect_p5", 255, 1, 1, 0)
	return b.layers
}

// ResNet18 builds a standalone ResNet-18 classifier (~11M parameters).
func ResNet18() Model {
	return Model{Name: "Resnet18", Abbr: "res18", build: func(batch int) []Layer {
		b := newBuilder(batch, 224, 224, 3)
		resNet18Trunk(b)
		b.globalPool()
		b.fc("fc1000", batch, 512, 1000)
		return b.layers
	}}
}

// Variants lists the extra models (not part of the Table 4 suites).
func Variants() []Model {
	return []Model{BERTBase(), T5Base(), YOLOv5S(), ResNet18()}
}

// AllModels returns every model the zoo knows: the requested suite plus
// the extra variants.
func AllModels(class string) ([]Model, error) {
	suite, err := SuiteFor(class)
	if err != nil {
		return nil, err
	}
	return append(suite, Variants()...), nil
}

// FindModel looks a model up across a suite and the extra variants.
func FindModel(class, abbr string) (Model, error) {
	models, err := AllModels(class)
	if err != nil {
		return Model{}, err
	}
	m, err := ByAbbr(models, abbr)
	if err != nil {
		return Model{}, fmt.Errorf("workload: %q not found in %s suite or variants", abbr, class)
	}
	return m, nil
}
