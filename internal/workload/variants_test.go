package workload

import "testing"

func TestVariantParams(t *testing.T) {
	cases := []struct {
		model  Model
		want   int64
		tolPct int64
	}{
		{BERTBase(), 85e6, 10},  // GEMM layers of BERT-base (110M incl. embeddings)
		{T5Base(), 222e6, 15},   // ~220M
		{YOLOv5S(), 7.2e6, 15},  // ~7.2M
		{ResNet18(), 11.7e6, 5}, // ~11.7M
	}
	for _, c := range cases {
		got := c.model.Params()
		lo := c.want * (100 - c.tolPct) / 100
		hi := c.want * (100 + c.tolPct) / 100
		if got < lo || got > hi {
			t.Errorf("%s: %d params, want %d +/- %d%%", c.model.Abbr, got, c.want, c.tolPct)
		}
	}
}

func TestVariantsBuild(t *testing.T) {
	for _, m := range Variants() {
		layers := m.Layers(8)
		if len(layers) == 0 {
			t.Fatalf("%s built no layers", m.Abbr)
		}
		for i, l := range layers {
			if !l.Dims.Valid() {
				t.Fatalf("%s layer %d invalid: %v", m.Abbr, i, l.Dims)
			}
		}
	}
}

func TestFindModel(t *testing.T) {
	if _, err := FindModel("server", "bert-base"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindModel("server", "res"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindModel("server", "missing"); err == nil {
		t.Fatal("missing model accepted")
	}
	if _, err := FindModel("bogus-suite", "res"); err == nil {
		t.Fatal("bogus suite accepted")
	}
}

func TestAllModelsDisjointAbbrs(t *testing.T) {
	models, err := AllModels("server")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, m := range models {
		if seen[m.Abbr] {
			t.Fatalf("duplicate abbreviation %q", m.Abbr)
		}
		seen[m.Abbr] = true
	}
}
