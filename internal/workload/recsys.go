package workload

import "igosim/internal/tensor"

// Recommendation models: the paper's "ncf" (3B parameters) and "dlrm"
// (25B parameters) workloads. Their parameter counts are dominated by
// embedding tables, whose gradients are sparse scatters rather than dense
// GEMMs; the layers the paper's techniques apply to are the MLP towers and
// per-feature projections, which is what we emit.
//
// Both models carry BatchScale=128: recommendation training uses batches
// orders of magnitude larger than vision training (the MLPerf DLRM
// reference uses 32768), and the paper's Figure 5 dY-traffic shares for
// dlrm (68.3% of reads) are only reachable when the GEMM row dimension
// dominates — i.e. with realistic recommendation batch sizes.

// NCF builds the "ncf" workload: Neural Collaborative Filtering with a GMF
// branch and an MLP tower over concatenated user/item embeddings.
func NCF() Model {
	return Model{Name: "NCF-recommendation", Abbr: "ncf", BatchScale: 128, build: buildNCF}
}

func buildNCF(batch int) []Layer {
	const emb = 128 // user/item embedding width
	b := &builder{batch: batch}
	// MLP tower over concatenated [user, item] embeddings.
	b.linear("mlp1", tensor.Dims{M: batch, K: 2 * emb, N: 256})
	b.linear("mlp2", tensor.Dims{M: batch, K: 256, N: 128})
	b.linear("mlp3", tensor.Dims{M: batch, K: 128, N: 64})
	// NeuMF fusion: concat(GMF elementwise product [emb], MLP output [64]).
	b.linear("neumf", tensor.Dims{M: batch, K: emb + 64, N: 1})
	return b.layers
}

// DLRM builds the "dlrm" workload: the Facebook DLRM recommendation model
// (MLPerf configuration): a bottom MLP over 13 dense features, 26 sparse
// embedding lookups of width 128, pairwise feature interaction, and a top
// MLP over the interaction output.
//
// The per-feature embedding projections run once per (sample, sparse
// feature), so their GEMM row dimension is batch*26.
func DLRM() Model {
	return Model{Name: "DLRM", Abbr: "dlrm", BatchScale: 128, build: buildDLRM}
}

func buildDLRM(batch int) []Layer {
	const (
		emb        = 128                       // embedding width
		sparse     = 26                        // sparse feature count
		interactIn = 128 + (sparse+1)*sparse/2 // dense feature + pairwise dots = 479
	)
	b := &builder{batch: batch}
	// Bottom MLP over the 13 dense features.
	b.linear("bot1", tensor.Dims{M: batch, K: 13, N: 512})
	b.linear("bot2", tensor.Dims{M: batch, K: 512, N: 256})
	b.linear("bot3", tensor.Dims{M: batch, K: 256, N: emb})
	// Per-feature embedding projection ahead of the interaction (learned
	// per-feature transform; rows = batch x sparse features).
	b.linear("emb_proj", tensor.Dims{M: batch * sparse, K: emb, N: emb})
	// Top MLP over the pairwise-interaction output.
	b.linear("top1", tensor.Dims{M: batch, K: interactIn, N: 1024})
	b.linear("top2", tensor.Dims{M: batch, K: 1024, N: 1024})
	b.linear("top3", tensor.Dims{M: batch, K: 1024, N: 512})
	b.linear("top4", tensor.Dims{M: batch, K: 512, N: 256})
	b.linear("top5", tensor.Dims{M: batch, K: 256, N: 1})
	return b.layers
}
