// Exposition: Prometheus text format, JSON snapshots, and an opt-in
// net/http handler — the seed of the future igoserved surface. Everything
// here is stdlib-only and read-only over the registry; serving metrics can
// never perturb a simulation.
package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms are rendered summary-style (quantile
// labels plus _sum and _count); every sample carries a domain label so a
// scraper can split deterministic simulated quantities from host-execution
// ones.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range r.Snapshot() {
		if help := r.help(s.Name); help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", s.Name, help)
		}
		typ := s.Kind
		if typ == "histogram" {
			typ = "summary"
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", s.Name, typ)
		switch s.Kind {
		case "histogram":
			fmt.Fprintf(bw, "%s{domain=%q,quantile=\"0.5\"} %d\n", s.Name, s.Domain, s.P50)
			fmt.Fprintf(bw, "%s{domain=%q,quantile=\"0.99\"} %d\n", s.Name, s.Domain, s.P99)
			fmt.Fprintf(bw, "%s_sum{domain=%q} %d\n", s.Name, s.Domain, s.Sum)
			fmt.Fprintf(bw, "%s_count{domain=%q} %d\n", s.Name, s.Domain, s.Value)
		default:
			if s.Label != "" {
				fmt.Fprintf(bw, "%s{domain=%q,%s=%q} %d\n", s.Name, s.Domain, r.labelKey(s.Name), s.Label, s.Value)
			} else {
				fmt.Fprintf(bw, "%s{domain=%q} %d\n", s.Name, s.Domain, s.Value)
			}
		}
	}
	return bw.Flush()
}

// WriteJSON writes the registry snapshot as indented JSON (all domains),
// sorted by metric name — the same Sample schema manifests embed.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = []Sample{}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Handler serves the registry over HTTP: Prometheus text by default, the
// JSON snapshot with ?format=json. Mount it wherever the embedding process
// wants a /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := r.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Handler serves the default registry (see Registry.Handler).
func Handler() http.Handler { return defaultRegistry.Handler() }
