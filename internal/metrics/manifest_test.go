package metrics_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/metrics"
	"igosim/internal/runner"
	"igosim/internal/sim"
	"igosim/internal/workload"
)

// buildManifest mirrors cmd/igosim's -manifest path in-process: run every
// model in the suite under the partition policy and encode the canonical
// record to bytes.
func buildManifest(t *testing.T, cfg config.NPU, models []workload.Model) []byte {
	t.Helper()
	var workloads []metrics.WorkloadResult
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Abbr
		base := core.RunTraining(cfg, sim.Options{}, m, core.PolBaseline)
		run := core.RunTraining(cfg, sim.Options{}, m, core.PolPartition)
		workloads = append(workloads, core.ManifestWorkload(cfg, base, run))
	}
	m := metrics.NewManifest("igosim")
	if err := m.SetFingerprint(struct {
		Tool     string     `json:"tool"`
		Config   config.NPU `json:"config"`
		Models   []string   `json:"models"`
		Policy   string     `json:"policy"`
		Compiled bool       `json:"compiled"`
	}{"igosim", cfg, names, "partition", true}); err != nil {
		t.Fatal(err)
	}
	m.Config = &cfg
	m.Workloads = workloads
	m.Finalize(metrics.Default())
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestManifestDeterministicAcrossJ is the satellite-4 golden: the manifest
// bytes must be identical at -j1 and -j8 on both model zoos. Everything a
// manifest carries is cycle-domain by construction; this test is the gate
// that keeps it so.
func TestManifestDeterministicAcrossJ(t *testing.T) {
	zoos := []struct {
		name   string
		cfg    config.NPU
		models []workload.Model
	}{
		{"edge", config.SmallNPU(), workload.EdgeSuite()},
		{"server", config.LargeNPU(), workload.ServerSuite()},
	}
	prevJ := runner.SetParallelism(0)
	defer runner.SetParallelism(prevJ)
	for _, zoo := range zoos {
		t.Run(zoo.name, func(t *testing.T) {
			var got [][]byte
			for _, j := range []int{1, 8} {
				core.ResetCaches()
				metrics.Reset()
				runner.SetParallelism(j)
				got = append(got, buildManifest(t, zoo.cfg, zoo.models))
			}
			if !bytes.Equal(got[0], got[1]) {
				t.Fatalf("manifest bytes differ between -j1 and -j8:\n-j1:\n%s\n-j8:\n%s", got[0], got[1])
			}
			// The manifest must self-diff clean under zero tolerance.
			res, err := metrics.Diff(got[0], got[1], nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("self-diff regressed: %+v", res.Regressions)
			}
			if res.Compared == 0 {
				t.Fatal("self-diff compared nothing")
			}
		})
	}
}

// TestManifestCorruptionCaught injects a one-cycle regression into a real
// manifest and requires igostat's engine to catch it and name the metric —
// the acceptance scenario behind `make manifest-check`.
func TestManifestCorruptionCaught(t *testing.T) {
	core.ResetCaches()
	metrics.Reset()
	good := buildManifest(t, config.SmallNPU(), workload.EdgeSuite()[:2])

	marker := `"total_cycles": `
	i := bytes.Index(good, []byte(marker))
	if i < 0 {
		t.Fatalf("manifest has no total_cycles field:\n%s", good)
	}
	start := i + len(marker)
	end := start
	for end < len(good) && good[end] >= '0' && good[end] <= '9' {
		end++
	}
	var cycles int64
	fmt.Sscanf(string(good[start:end]), "%d", &cycles)
	bad := append([]byte{}, good[:start]...)
	bad = append(bad, []byte(fmt.Sprintf("%d", cycles+1))...)
	bad = append(bad, good[end:]...)

	res, err := metrics.Diff(good, bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("one-cycle regression not caught")
	}
	found := false
	for _, r := range res.Regressions {
		if strings.Contains(r.Path, "total_cycles") {
			found = true
		}
	}
	if !found {
		t.Fatalf("regression does not name total_cycles: %+v", res.Regressions)
	}
}

// TestManifestWallMetrics pins the wall-domain opt-in: FinalizeWall records
// Wall samples under wall_metrics, while manifests that never call it must
// not carry the field at all — that omission is what keeps the simulator
// CLIs' manifests byte-identical at any -j.
func TestManifestWallMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	cycle := reg.NewGauge("test_points", "cycle-domain sample", metrics.Cycle)
	wall := reg.NewGauge("test_wall_ms", "wall-domain sample", metrics.Wall)
	cycle.Set(7)
	wall.Set(1234)

	withoutWall := metrics.NewManifest("test")
	withoutWall.Finalize(reg)
	var buf bytes.Buffer
	if err := withoutWall.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "wall_metrics") {
		t.Errorf("manifest without FinalizeWall carries wall_metrics:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "test_points") {
		t.Errorf("cycle sample missing from manifest:\n%s", buf.String())
	}

	withWall := metrics.NewManifest("test")
	withWall.Finalize(reg)
	withWall.FinalizeWall(reg)
	buf.Reset()
	if err := withWall.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wall_metrics") || !strings.Contains(buf.String(), "test_wall_ms") {
		t.Errorf("FinalizeWall did not record the wall sample:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), `"test_wall_ms"`) && strings.Contains(buf.String(), `"metrics": [`) &&
		strings.Index(buf.String(), "test_wall_ms") < strings.Index(buf.String(), "wall_metrics") {
		t.Errorf("wall sample leaked into the cycle-domain metrics field:\n%s", buf.String())
	}
}
