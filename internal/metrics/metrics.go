// Package metrics is the simulator's process-wide metrics registry: named
// counters, gauges and stats.Histogram-backed histograms, plus labeled
// counter families, each registered under one of two domains.
//
// The domain split is the package's load-bearing idea:
//
//   - Cycle-domain metrics derive purely from simulated quantities and the
//     deterministic request stream — they are byte-identical across worker
//     counts (-j) and are the only metrics a run manifest may carry. The
//     wallclock lint analyzer covers this package, so no wall-clock read
//     can leak in silently.
//
//   - Wall-domain metrics describe host execution (task latency, pool
//     width, which simulations actually executed under memo races). They
//     are legitimate observability but vary run to run, so they are
//     exposition-only: Prometheus text, JSON snapshots and the opt-in
//     HTTP handler (expose.go) serve them; manifests never do.
//
// Counters and gauges are single atomic adds — safe on per-pass and
// per-layer paths (never per-op; the compiled engine's hot loop stays
// untouched). Time-based instrumentation is additionally gated behind
// SetTiming so that, when nothing asked for metrics, no clock is read.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"igosim/internal/stats"
)

// Domain classifies a metric as deterministic-simulated or host-execution.
type Domain uint8

const (
	// Cycle marks metrics derived from simulated quantities or the
	// deterministic request stream: byte-identical across -j, manifest-safe.
	Cycle Domain = iota
	// Wall marks metrics describing host execution: exposition-only.
	Wall
)

func (d Domain) String() string {
	if d == Cycle {
		return "cycle"
	}
	return "wall"
}

// Counter is a monotonically increasing metric. Construct with NewCounter
// (or CounterVec.With) so the registry can reset and expose it; the ctrreg
// lint analyzer flags package-level counters built any other way.
//
//lint:registered
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d < 0 is a programming error; the registry does not check).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a set-to-current-value metric. Construct with NewGauge.
//
//lint:registered
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a registered stats.Histogram behind a mutex (the underlying
// histogram is a plain value type). Observe cost is a lock plus integer
// bucketing — fine for per-task latencies, too slow for per-op paths.
// Construct with NewHistogram.
//
//lint:registered
type Histogram struct {
	mu sync.Mutex
	h  stats.Histogram
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// Snapshot returns a copy of the underlying histogram.
func (h *Histogram) Snapshot() stats.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.h.Reset()
	h.mu.Unlock()
}

// CounterVec is a family of counters distinguished by one label value
// (e.g. dse point status). Children are created on first use; for a
// deterministic input stream the resulting child set is deterministic too.
// Construct with NewCounterVec.
//
//lint:registered
type CounterVec struct {
	labelKey string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(label string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.children == nil {
		v.children = make(map[string]*Counter)
	}
	c := v.children[label]
	if c == nil {
		c = &Counter{}
		v.children[label] = c
	}
	return c
}

// Value returns the child's count without creating it (0 when absent).
func (v *CounterVec) Value(label string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.children[label]; c != nil {
		return c.Value()
	}
	return 0
}

func (v *CounterVec) reset() {
	v.mu.Lock()
	v.children = nil
	v.mu.Unlock()
}

// labels returns the child label values, sorted.
func (v *CounterVec) labels() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.children))
	for l := range v.children {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// metric is one registry entry: exactly one of c/g/h/vec is non-nil.
type metric struct {
	name   string
	help   string
	domain Domain
	c      *Counter
	g      *Gauge
	h      *Histogram
	vec    *CounterVec
}

func (m *metric) kind() string {
	switch {
	case m.c != nil || m.vec != nil:
		return "counter"
	case m.g != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds named metrics. The zero value is unusable; use Default()
// or NewRegistry(). Registration sorts by name at snapshot time, so
// exposition and manifest order never depend on init order.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	entries []*metric
}

// NewRegistry returns an empty registry (tests; production code shares
// Default()).
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every package-level metric
// registers into.
func Default() *Registry { return defaultRegistry }

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", m.name))
	}
	r.byName[m.name] = m
	r.entries = append(r.entries, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string, d Domain) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, domain: d, c: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string, d Domain) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, domain: d, g: g})
	return g
}

// NewHistogram registers and returns a histogram.
func (r *Registry) NewHistogram(name, help string, d Domain) *Histogram {
	h := &Histogram{}
	r.register(&metric{name: name, help: help, domain: d, h: h})
	return h
}

// NewCounterVec registers and returns a counter family keyed by labelKey.
func (r *Registry) NewCounterVec(name, labelKey, help string, d Domain) *CounterVec {
	v := &CounterVec{labelKey: labelKey}
	r.register(&metric{name: name, help: help, domain: d, vec: v})
	return v
}

// Value looks a scalar metric's current value up by name (counter or gauge;
// for a histogram it returns the observation count). A label selects a
// CounterVec child. Unknown names and absent children return 0 — callers
// like progress lines should not fail on a metric that has not fired yet.
func (r *Registry) Value(name string, label ...string) int64 {
	r.mu.Lock()
	m := r.byName[name]
	r.mu.Unlock()
	if m == nil {
		return 0
	}
	switch {
	case m.vec != nil && len(label) > 0:
		return m.vec.Value(label[0])
	case m.c != nil:
		return m.c.Value()
	case m.g != nil:
		return m.g.Value()
	case m.h != nil:
		h := m.h.Snapshot()
		return h.Count()
	}
	return 0
}

// Reset zeroes every registered metric (counters and gauges to 0, histogram
// observations and family children dropped). Registrations survive; only
// values reset. Back-to-back measurement runs use it the way
// stats.ResetAllCacheCounters is used for cache counters.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.entries {
		switch {
		case m.c != nil:
			m.c.v.Store(0)
		case m.g != nil:
			m.g.v.Store(0)
		case m.h != nil:
			m.h.Reset()
		case m.vec != nil:
			m.vec.reset()
		}
	}
}

// Sample is one metric's value at a point in time, in the flattened form
// manifests and JSON snapshots carry. For histograms Value holds the
// observation count and the quantile fields are populated.
type Sample struct {
	Name   string `json:"name"`
	Label  string `json:"label,omitempty"`
	Domain string `json:"domain"`
	Kind   string `json:"kind"`
	Value  int64  `json:"value"`
	Sum    int64  `json:"sum,omitempty"`
	Min    int64  `json:"min,omitempty"`
	Max    int64  `json:"max,omitempty"`
	P50    int64  `json:"p50,omitempty"`
	P99    int64  `json:"p99,omitempty"`
}

// Snapshot returns every registered metric in the given domains (no
// domains = all), sorted by name then label — a deterministic order
// regardless of registration or observation order.
func (r *Registry) Snapshot(domains ...Domain) []Sample {
	want := func(d Domain) bool {
		if len(domains) == 0 {
			return true
		}
		for _, w := range domains {
			if w == d {
				return true
			}
		}
		return false
	}
	r.mu.Lock()
	entries := make([]*metric, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	var out []Sample
	for _, m := range entries {
		if !want(m.domain) {
			continue
		}
		base := Sample{Name: m.name, Domain: m.domain.String(), Kind: m.kind()}
		switch {
		case m.c != nil:
			base.Value = m.c.Value()
			out = append(out, base)
		case m.g != nil:
			base.Value = m.g.Value()
			out = append(out, base)
		case m.h != nil:
			h := m.h.Snapshot()
			base.Value = h.Count()
			if h.Count() > 0 {
				base.Sum = h.Sum()
				base.Min, base.Max = h.Min(), h.Max()
				base.P50, base.P99 = h.Quantile(0.5), h.Quantile(0.99)
			}
			out = append(out, base)
		case m.vec != nil:
			for _, l := range m.vec.labels() {
				s := base
				s.Label = l
				s.Value = m.vec.Value(l)
				out = append(out, s)
			}
		}
	}
	return out
}

// help returns the registered help string (exposition).
func (r *Registry) help(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byName[name]; m != nil {
		return m.help
	}
	return ""
}

// labelKey returns a family's label key ("" for scalars).
func (r *Registry) labelKey(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byName[name]; m != nil && m.vec != nil {
		return m.vec.labelKey
	}
	return ""
}

// Package-level constructors and accessors over the default registry.

// NewCounter registers a counter in the default registry.
func NewCounter(name, help string, d Domain) *Counter {
	return defaultRegistry.NewCounter(name, help, d)
}

// NewGauge registers a gauge in the default registry.
func NewGauge(name, help string, d Domain) *Gauge {
	return defaultRegistry.NewGauge(name, help, d)
}

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name, help string, d Domain) *Histogram {
	return defaultRegistry.NewHistogram(name, help, d)
}

// NewCounterVec registers a counter family in the default registry.
func NewCounterVec(name, labelKey, help string, d Domain) *CounterVec {
	return defaultRegistry.NewCounterVec(name, labelKey, help, d)
}

// Value reads a metric from the default registry (see Registry.Value).
func Value(name string, label ...string) int64 {
	return defaultRegistry.Value(name, label...)
}

// Reset zeroes every metric in the default registry.
func Reset() { defaultRegistry.Reset() }

// timing gates instrumentation that must read the host clock (runner task
// latency). Off by default so a run that asked for no metrics output pays
// zero clock reads; CLIs turn it on when exposition is requested.
var timing atomic.Bool

// SetTiming enables or disables wall-clock timing collection process-wide,
// returning the previous setting.
func SetTiming(on bool) bool { return timing.Swap(on) }

// TimingEnabled reports whether wall-clock timing collection is on.
func TimingEnabled() bool { return timing.Load() }
