package metrics_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"igosim/internal/metrics"
)

func exposeRegistry() *metrics.Registry {
	r := metrics.NewRegistry()
	r.NewCounter("cyc_total", "a cycle-domain counter", metrics.Cycle).Add(7)
	v := r.NewCounterVec("fam_total", "status", "a labeled family", metrics.Cycle)
	v.With("ok").Add(3)
	v.With("fail").Inc()
	h := r.NewHistogram("lat_us", "a wall-domain histogram", metrics.Wall)
	h.Observe(10)
	h.Observe(20)
	return r
}

func TestWritePrometheus(t *testing.T) {
	r := exposeRegistry()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP cyc_total a cycle-domain counter",
		"# TYPE cyc_total counter",
		`cyc_total{domain="cycle"} 7`,
		`fam_total{domain="cycle",status="ok"} 3`,
		`fam_total{domain="cycle",status="fail"} 1`,
		"# TYPE lat_us summary",
		`lat_us{domain="wall",quantile="0.5"}`,
		`lat_us_sum{domain="wall"} 30`,
		`lat_us_count{domain="wall"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := exposeRegistry()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var samples []metrics.Sample
	if err := json.Unmarshal([]byte(b.String()), &samples); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v\n%s", err, b.String())
	}
	if len(samples) != 4 { // cyc + fam{fail,ok} + lat
		t.Fatalf("snapshot has %d samples, want 4: %+v", len(samples), samples)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i-1].Name > samples[i].Name {
			t.Fatalf("snapshot out of order: %+v", samples)
		}
	}

	// An empty registry serializes as [], not null.
	b.Reset()
	if err := metrics.NewRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("empty registry JSON = %q, want []", b.String())
	}
}

func TestHandler(t *testing.T) {
	r := exposeRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(url string) (string, string) {
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String(), resp.Header.Get("Content-Type")
	}

	body, ctype := get(srv.URL)
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("default content type = %q", ctype)
	}
	if !strings.Contains(body, `cyc_total{domain="cycle"} 7`) {
		t.Fatalf("text body missing counter:\n%s", body)
	}

	body, ctype = get(srv.URL + "?format=json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("json content type = %q", ctype)
	}
	var samples []metrics.Sample
	if err := json.Unmarshal([]byte(body), &samples); err != nil {
		t.Fatalf("handler JSON does not parse: %v", err)
	}
	if len(samples) != 4 {
		t.Fatalf("handler returned %d samples, want 4", len(samples))
	}
}
