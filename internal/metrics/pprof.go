// pprof wiring shared by the four CLIs: -cpuprofile/-memprofile flags call
// StartProfiles once and defer the returned stop. Kept here (rather than
// per-command) so every tool profiles identically.
package metrics

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling to cpuPath and arranges a heap
// profile at memPath; empty paths disable the respective profile. The
// returned stop function finishes both and must be called before exit
// (a profile truncated by os.Exit is useless).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
