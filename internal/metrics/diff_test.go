package metrics_test

import (
	"strings"
	"testing"

	"igosim/internal/metrics"
)

func TestParseTolerances(t *testing.T) {
	tols, err := metrics.ParseTolerances(" cycles=0, wall=15%,traffic=100 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(tols) != 3 {
		t.Fatalf("parsed %d tolerances, want 3: %+v", len(tols), tols)
	}
	if tols[0].Key != "cycles" || tols[0].Abs != 0 || tols[0].Frac != 0 {
		t.Fatalf("tols[0] = %+v", tols[0])
	}
	if tols[1].Key != "wall" || tols[1].Frac != 0.15 || tols[1].Abs != 0 {
		t.Fatalf("tols[1] = %+v", tols[1])
	}
	if tols[2].Key != "traffic" || tols[2].Abs != 100 {
		t.Fatalf("tols[2] = %+v", tols[2])
	}
	if tols, err := metrics.ParseTolerances("  "); err != nil || tols != nil {
		t.Fatalf("blank spec: %v, %v", tols, err)
	}
	for _, bad := range []string{"cycles", "=5", "cycles=-1", "wall=-5%", "wall=x%"} {
		if _, err := metrics.ParseTolerances(bad); err == nil {
			t.Fatalf("ParseTolerances(%q) did not fail", bad)
		}
	}
}

func TestDiffSelfIsOK(t *testing.T) {
	doc := []byte(`{"total_cycles": 100, "tool": "igosim", "runs": [{"name": "a", "ns_op": 5}]}`)
	res, err := metrics.Diff(doc, doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("self-diff regressed: %+v", res.Regressions)
	}
	if res.Compared == 0 {
		t.Fatal("self-diff compared nothing")
	}
}

func TestDiffRegressionNamed(t *testing.T) {
	oldDoc := []byte(`{"sim": {"total_cycles": 100, "spill_tiles": 4}}`)
	newDoc := []byte(`{"sim": {"total_cycles": 101, "spill_tiles": 4}}`)
	res, err := metrics.Diff(oldDoc, newDoc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || len(res.Regressions) != 1 {
		t.Fatalf("result = %+v", res)
	}
	r := res.Regressions[0]
	if r.Path != "sim.total_cycles" {
		t.Fatalf("regression path = %q", r.Path)
	}
	if msg := r.String(); !strings.Contains(msg, "total_cycles") || !strings.Contains(msg, "100") || !strings.Contains(msg, "101") {
		t.Fatalf("regression message %q does not name the metric and values", msg)
	}
	// Improvements (cycle count down) pass and are counted.
	res, err = metrics.Diff(newDoc, oldDoc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Improved != 1 {
		t.Fatalf("improvement misjudged: %+v", res)
	}
}

func TestDiffHigherBetter(t *testing.T) {
	oldDoc := []byte(`{"speedup": 10, "hit_rate": 0.9}`)
	slower := []byte(`{"speedup": 8, "hit_rate": 0.9}`)
	res, err := metrics.Diff(oldDoc, slower, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Regressions[0].Path != "speedup" {
		t.Fatalf("speedup drop not gated: %+v", res)
	}
	faster := []byte(`{"speedup": 12, "hit_rate": 0.95}`)
	res, err = metrics.Diff(oldDoc, faster, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Improved != 2 {
		t.Fatalf("speedup rise misjudged: %+v", res)
	}
}

func TestDiffTolerances(t *testing.T) {
	oldDoc := []byte(`{"total_cycles": 100, "ns_op": 1000}`)
	newDoc := []byte(`{"total_cycles": 104, "ns_op": 1100}`)

	// No tolerance: both regress.
	res, err := metrics.Diff(oldDoc, newDoc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 2 {
		t.Fatalf("expected 2 regressions, got %+v", res)
	}

	// "wall" pseudo-tolerance covers ns_op but not total_cycles.
	tols, _ := metrics.ParseTolerances("wall=15%")
	res, err = metrics.Diff(oldDoc, newDoc, tols)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 || res.Regressions[0].Path != "total_cycles" {
		t.Fatalf("wall tolerance misapplied: %+v", res)
	}

	// Absolute allowance on cycles passes 4 of slack; last matching tol wins.
	tols, _ = metrics.ParseTolerances("cycles=0,wall=15%,cycles=5")
	res, err = metrics.Diff(oldDoc, newDoc, tols)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("last-tol-wins failed: %+v", res)
	}
}

func TestDiffStructuralChanges(t *testing.T) {
	oldDoc := []byte(`{"a": 1, "tool": "igosim"}`)
	// Missing numeric leaf regresses.
	res, err := metrics.Diff(oldDoc, []byte(`{"tool": "igosim"}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || !strings.Contains(res.Regressions[0].String(), "missing from new") {
		t.Fatalf("missing leaf not gated: %+v", res)
	}
	// New leaf not in the baseline regresses too (forces regeneration).
	res, err = metrics.Diff(oldDoc, []byte(`{"a": 1, "b": 2, "tool": "igosim"}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || !strings.Contains(res.Regressions[0].String(), "not in old") {
		t.Fatalf("added leaf not gated: %+v", res)
	}
	// A changed string field regresses regardless of tolerances.
	tols, _ := metrics.ParseTolerances("tool=100%")
	res, err = metrics.Diff(oldDoc, []byte(`{"a": 1, "tool": "other"}`), tols)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || !strings.Contains(res.Regressions[0].String(), "changed") {
		t.Fatalf("string change not gated: %+v", res)
	}
}

func TestFlattenArrayKeying(t *testing.T) {
	// Unique "name" fields key the elements, so reordering is harmless.
	a := []byte(`{"runs": [{"name": "x", "v": 1}, {"name": "y", "v": 2}]}`)
	b := []byte(`{"runs": [{"name": "y", "v": 2}, {"name": "x", "v": 1}]}`)
	res, err := metrics.Diff(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("reordered named array regressed: %+v", res)
	}
	nums, _, err := metrics.Flatten(a)
	if err != nil {
		t.Fatal(err)
	}
	if nums["runs[x].v"] != 1 || nums["runs[y].v"] != 2 {
		t.Fatalf("name-keyed paths missing: %v", nums)
	}
	// Without a unique key, elements fall back to index keying.
	c := []byte(`{"vals": [10, 20]}`)
	nums, _, err = metrics.Flatten(c)
	if err != nil {
		t.Fatal(err)
	}
	if nums["vals[0]"] != 10 || nums["vals[1]"] != 20 {
		t.Fatalf("index-keyed paths missing: %v", nums)
	}
	// Duplicate names also fall back to indices rather than colliding.
	d := []byte(`{"runs": [{"name": "x", "v": 1}, {"name": "x", "v": 2}]}`)
	nums, _, err = metrics.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	if nums["runs[0].v"] != 1 || nums["runs[1].v"] != 2 {
		t.Fatalf("duplicate-name fallback wrong: %v", nums)
	}
	// Booleans and nulls land in the string map.
	_, strs, err := metrics.Flatten([]byte(`{"ok": true, "none": null}`))
	if err != nil {
		t.Fatal(err)
	}
	if strs["ok"] != "true" || strs["none"] != "null" {
		t.Fatalf("bool/null flattening wrong: %v", strs)
	}
}
