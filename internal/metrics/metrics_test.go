package metrics_test

import (
	"testing"

	"igosim/internal/metrics"
)

func TestRegistryDuplicatePanics(t *testing.T) {
	r := metrics.NewRegistry()
	r.NewCounter("dup_total", "first", metrics.Cycle)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup_total", "second", metrics.Wall)
}

func TestRegistryValueAndReset(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.NewCounter("c_total", "", metrics.Cycle)
	g := r.NewGauge("g", "", metrics.Wall)
	h := r.NewHistogram("h_us", "", metrics.Wall)
	v := r.NewCounterVec("v_total", "status", "", metrics.Cycle)

	c.Inc()
	c.Add(2)
	g.Set(10)
	g.Add(-3)
	h.Observe(5)
	h.Observe(50)
	v.With("ok").Inc()
	v.With("fail").Add(4)

	if got := r.Value("c_total"); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if got := r.Value("g"); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	if got := r.Value("h_us"); got != 2 {
		t.Fatalf("histogram count = %d, want 2", got)
	}
	if got := r.Value("v_total", "fail"); got != 4 {
		t.Fatalf("vec child = %d, want 4", got)
	}
	if got := r.Value("v_total", "absent"); got != 0 {
		t.Fatalf("absent child = %d, want 0", got)
	}
	if got := r.Value("no_such_metric"); got != 0 {
		t.Fatalf("unknown metric = %d, want 0", got)
	}

	r.Reset()
	for _, name := range []string{"c_total", "g", "h_us"} {
		if got := r.Value(name); got != 0 {
			t.Fatalf("%s after Reset = %d, want 0", name, got)
		}
	}
	if got := r.Value("v_total", "ok"); got != 0 {
		t.Fatalf("vec child after Reset = %d, want 0", got)
	}
	// Registrations survive a reset.
	c.Inc()
	if got := r.Value("c_total"); got != 1 {
		t.Fatalf("counter after Reset+Inc = %d, want 1", got)
	}
}

func TestSnapshotSortedAndDomainFiltered(t *testing.T) {
	r := metrics.NewRegistry()
	r.NewCounter("zz_total", "", metrics.Wall).Inc()
	r.NewCounter("aa_total", "", metrics.Cycle).Add(2)
	v := r.NewCounterVec("mm_total", "dir", "", metrics.Cycle)
	v.With("write").Inc()
	v.With("read").Add(3)

	all := r.Snapshot()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name + "/" + s.Label
	}
	want := []string{"aa_total/", "mm_total/read", "mm_total/write", "zz_total/"}
	if len(names) != len(want) {
		t.Fatalf("snapshot = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", names, want)
		}
	}

	cyc := r.Snapshot(metrics.Cycle)
	for _, s := range cyc {
		if s.Domain != "cycle" {
			t.Fatalf("cycle snapshot contains %s (domain %s)", s.Name, s.Domain)
		}
	}
	if len(cyc) != 3 {
		t.Fatalf("cycle snapshot has %d samples, want 3", len(cyc))
	}
}

func TestSnapshotHistogramFields(t *testing.T) {
	r := metrics.NewRegistry()
	h := r.NewHistogram("lat_us", "", metrics.Wall)
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	s := snap[0]
	if s.Kind != "histogram" || s.Value != 4 || s.Sum != 106 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("histogram sample = %+v", s)
	}
	if s.P50 == 0 || s.P99 == 0 {
		t.Fatalf("quantiles not populated: %+v", s)
	}
}

func TestSetTiming(t *testing.T) {
	prev := metrics.SetTiming(true)
	defer metrics.SetTiming(prev)
	if !metrics.TimingEnabled() {
		t.Fatal("timing not enabled")
	}
	if was := metrics.SetTiming(false); !was {
		t.Fatal("SetTiming did not report the previous setting")
	}
	if metrics.TimingEnabled() {
		t.Fatal("timing not disabled")
	}
}

// TestCounterZeroAllocs pins the acceptance criterion that registry
// counters add no allocations to hot paths: Inc/Add on a registered
// counter and on a pre-resolved CounterVec child are single atomic adds.
func TestCounterZeroAllocs(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.NewCounter("hot_total", "", metrics.Wall)
	child := r.NewCounterVec("hot_vec_total", "dir", "", metrics.Wall).With("read")
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Inc/Add allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { child.Add(64) }); n != 0 {
		t.Fatalf("CounterVec child Add allocates %.1f per run, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := metrics.NewRegistry()
	c := r.NewCounter("bench_total", "", metrics.Wall)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
