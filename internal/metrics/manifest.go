// Run manifests: one canonical JSON record per CLI invocation stating what
// was measured, under which configuration, with which outcome. The schema
// is deliberately restricted to the cycle domain — every field is a pure
// function of the run's inputs, so a manifest's bytes are identical at any
// -j (golden-tested) and `igostat diff` can gate on them exactly.
//
// Sorted output comes for free: encoding/json emits struct fields in
// declaration order and map keys sorted, and the embedded registry
// snapshot is sorted by Snapshot itself.
package metrics

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"igosim/internal/config"
	"igosim/internal/stats"
)

// ManifestSchema names the manifest's JSON schema version.
const ManifestSchema = "igosim.manifest/1"

// Manifest is one run's canonical record.
type Manifest struct {
	Schema      string            `json:"schema"`
	Tool        string            `json:"tool"`
	Fingerprint string            `json:"fingerprint"`
	Config      *config.NPU       `json:"config,omitempty"`
	Workloads   []WorkloadResult  `json:"workloads,omitempty"`
	Reports     []ReportDigest    `json:"reports,omitempty"`
	Validate    *ValidateSummary  `json:"validate,omitempty"`
	Sweep       *SweepSummary     `json:"sweep,omitempty"`
	Trace       *TraceSummary     `json:"trace,omitempty"`
	Caches      []CacheInfo       `json:"caches"`
	Metrics     []Sample          `json:"metrics"`
	WallMetrics []Sample          `json:"wall_metrics,omitempty"`
	Extra       map[string]string `json:"extra,omitempty"`
}

// WorkloadResult is one (model, policy) training-step simulation: the
// sim.Result-derived counters the paper's claims rest on.
type WorkloadResult struct {
	Model           string           `json:"model"`
	Policy          string           `json:"policy"`
	TotalCycles     int64            `json:"total_cycles"`
	FwdCycles       int64            `json:"fwd_cycles"`
	BwdCycles       int64            `json:"bwd_cycles"`
	BaseCycles      int64            `json:"base_cycles,omitempty"`
	Reduction       float64          `json:"reduction"`
	BwdTrafficBytes int64            `json:"bwd_traffic_bytes"`
	BwdRead         map[string]int64 `json:"bwd_read,omitempty"`
	BwdWrite        map[string]int64 `json:"bwd_write,omitempty"`
	Evictions       int64            `json:"spm_evictions"`
	Spills          int64            `json:"spills"`
	Seconds         float64          `json:"seconds"`
}

// ReportDigest pins one regenerated figure/table by content hash, so a
// manifest diff catches any change to an evaluation artifact without
// embedding the whole table.
type ReportDigest struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	SHA256 string `json:"sha256"`
}

// ValidateSummary is the validation pass's outcome (cmd/validate).
type ValidateSummary struct {
	Layers    int   `json:"layers"`
	Checks    int   `json:"checks"`
	RefChecks int   `json:"ref_checks"`
	SPMHits   int64 `json:"spm_hits"`
	SPMMisses int64 `json:"spm_misses"`
	Evictions int64 `json:"spm_evictions"`
	Spills    int64 `json:"spills"`
}

// SweepSummary is a design-space sweep's prune efficacy and outcome.
type SweepSummary struct {
	Points         int     `json:"points"`
	Simulated      int     `json:"simulated"`
	Pruned         int     `json:"pruned"`
	Skipped        int     `json:"skipped"`
	Budgeted       int     `json:"budgeted"`
	PrunedFraction float64 `json:"pruned_fraction"`
	FrontierSize   int     `json:"frontier_size"`
	Complete       bool    `json:"complete"`
}

// TraceSummary is the stall/occupancy digest of a traced run. It is only
// present when tracing was requested; under memoization the set of
// simulations that actually execute (and hence the traced totals) depends
// on cache state, so byte-identity across -j is guaranteed only for
// untraced manifests.
type TraceSummary struct {
	Cycles      int64 `json:"cycles"`
	ComputeBusy int64 `json:"compute_busy"`
	StallDMA    int64 `json:"stall_dma"`
	StallSpill  int64 `json:"stall_spill"`
	Spills      int64 `json:"spills"`
	OccHWMBytes int64 `json:"occ_hwm_bytes"`
	OccCapBytes int64 `json:"occ_cap_bytes"`
}

// CacheInfo is one memo cache's parallelism-independent statistics:
// Entries is the final distinct-key count (-1 when the cache has no sizer).
// Lookup and hit/miss counts are deliberately absent — they vary across -j,
// both through miss races and because an outer cache's hit suppresses the
// lookups a recomputation would have issued against nested caches. The
// distinct-key set is the same under any interleaving, so the entry count
// is the one cache statistic a manifest may carry.
type CacheInfo struct {
	Name    string `json:"name"`
	Entries int64  `json:"entries"`
}

// NewManifest starts a manifest for the named tool.
func NewManifest(tool string) *Manifest {
	return &Manifest{Schema: ManifestSchema, Tool: tool}
}

// SetFingerprint stores the SHA-256 of spec's canonical JSON as the run
// fingerprint. Pass a struct carrying everything that determines the run:
// tool, config, workload names, policy, relevant flags.
func (m *Manifest) SetFingerprint(spec any) error {
	fp, err := Fingerprint(spec)
	if err != nil {
		return err
	}
	m.Fingerprint = fp
	return nil
}

// Fingerprint returns the SHA-256 hex digest of v's canonical JSON.
func Fingerprint(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("metrics: fingerprint: %w", err)
	}
	return Digest(data), nil
}

// Digest returns the SHA-256 hex digest of raw bytes (report tables).
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Finalize fills the manifest's cache report and cycle-domain registry
// snapshot. Call it once, after the run, before writing.
func (m *Manifest) Finalize(r *Registry) {
	m.Caches = cacheInfos(stats.CacheReport())
	snap := r.Snapshot(Cycle)
	if snap == nil {
		snap = []Sample{}
	}
	m.Metrics = snap
}

// FinalizeWall additionally records the Wall-domain registry snapshot
// (timings, budgets). Wall samples vary run to run by nature, so this is
// opt-in and the field is omitted when unused: the simulator CLIs never
// call it and their manifests stay byte-identical at any -j; tooling whose
// manifest IS about wall time (igolint's budget record) does.
func (m *Manifest) FinalizeWall(r *Registry) {
	m.WallMetrics = r.Snapshot(Wall)
}

func cacheInfos(snaps []stats.CacheSnapshot) []CacheInfo {
	out := make([]CacheInfo, 0, len(snaps))
	for _, s := range snaps {
		out = append(out, CacheInfo{Name: s.Name, Entries: s.Entries})
	}
	return out
}

// Encode writes the manifest as indented JSON with a trailing newline.
func (m *Manifest) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
