// Manifest/benchmark diffing: the engine behind cmd/igostat and the
// make perf-check gate. Two JSON documents (run manifests or BENCH_*.json
// artifacts) are flattened to dotted metric paths and compared leaf by
// leaf; any worsening beyond its tolerance is a named regression.
//
// Direction matters: most metrics are costs (cycles, traffic, allocs —
// lower is better), a known set are benefits (speedup, hit_rate,
// points_per_sec — higher is better). Structural changes — a metric
// missing from one side, a string field changing — always fail: the gate's
// job is to force the baseline to be regenerated deliberately, in the same
// change that moved the numbers.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tolerance is one allowance from a -tol spec: Key selects metrics (a
// substring of the leaf field name, a full path substring, or the pseudo-key
// "wall" matching all wall-clock-derived leaves); the allowance is Frac
// (relative, from "15%") or Abs (absolute units). The last matching
// tolerance in the list wins.
type Tolerance struct {
	Key  string
	Frac float64
	Abs  float64
}

// ParseTolerances parses a comma-separated "key=value" list where value is
// either an absolute number ("cycles=0") or a percentage ("wall=15%").
func ParseTolerances(s string) ([]Tolerance, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Tolerance
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		key, val, ok := strings.Cut(part, "=")
		if !ok || key == "" {
			return nil, fmt.Errorf("bad tolerance %q (want key=value or key=pct%%)", part)
		}
		t := Tolerance{Key: key}
		if pct, isRel := strings.CutSuffix(val, "%"); isRel {
			f, err := strconv.ParseFloat(pct, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("bad tolerance %q (want a non-negative percentage)", part)
			}
			t.Frac = f / 100
		} else {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("bad tolerance %q (want a non-negative number)", part)
			}
			t.Abs = f
		}
		out = append(out, t)
	}
	return out, nil
}

// wallLeaves are leaf field names measuring (or derived from) host
// execution time — the only leaves the "wall" pseudo-tolerance matches.
var wallLeaves = map[string]bool{
	"ns_op":          true,
	"mb_s":           true,
	"wall_seconds":   true,
	"points_per_sec": true,
	"speedup":        true,
	"allocs_ratio":   true,
	"seconds":        true,
	"p50_us":         true,
	"p99_us":         true,
	"rps":            true,
	// Two-phase executor statistics that lose a few events to miss races
	// under -j (the deterministic counterpart, "resolutions", is the
	// residency cache's distinct-key census and is gated exactly).
	"replays":            true,
	"reuse_ratio":        true,
	"residency_hit_rate": true,
}

// higherBetter are leaf field names where an increase is an improvement;
// every other numeric leaf is treated as a cost.
var higherBetter = map[string]bool{
	"speedup":            true,
	"mb_s":               true,
	"points_per_sec":     true,
	"hit_rate":           true,
	"reduction":          true,
	"pruned_fraction":    true,
	"allocs_ratio":       true,
	"rps":                true,
	"reuse_ratio":        true,
	"residency_hit_rate": true,
}

// Regression is one gate violation.
type Regression struct {
	Path    string
	Old     string
	New     string
	Allowed float64
	Note    string
}

func (r Regression) String() string {
	if r.Note != "" {
		return fmt.Sprintf("%s: %s -> %s (%s)", r.Path, r.Old, r.New, r.Note)
	}
	return fmt.Sprintf("%s: %s -> %s (allowed %g)", r.Path, r.Old, r.New, r.Allowed)
}

// DiffResult is one comparison's outcome.
type DiffResult struct {
	Compared    int
	Improved    int
	Regressions []Regression
}

// OK reports whether the gate passes.
func (d DiffResult) OK() bool { return len(d.Regressions) == 0 }

// Diff compares two JSON documents under the given tolerances and returns
// every regression, sorted by metric path.
func Diff(oldData, newData []byte, tols []Tolerance) (DiffResult, error) {
	oldNums, oldStrs, err := Flatten(oldData)
	if err != nil {
		return DiffResult{}, fmt.Errorf("old: %w", err)
	}
	newNums, newStrs, err := Flatten(newData)
	if err != nil {
		return DiffResult{}, fmt.Errorf("new: %w", err)
	}

	var res DiffResult
	for _, path := range sortedKeys(oldNums) {
		oldV := oldNums[path]
		newV, ok := newNums[path]
		if !ok {
			res.Regressions = append(res.Regressions, Regression{
				Path: path, Old: fmtNum(oldV), New: "-", Note: "missing from new"})
			continue
		}
		res.Compared++
		leaf := leafName(path)
		worse := newV - oldV
		if higherBetter[leaf] {
			worse = oldV - newV
		}
		if worse <= 0 {
			if worse < 0 {
				res.Improved++
			}
			continue
		}
		allowed := allowance(path, leaf, oldV, tols)
		if worse > allowed {
			res.Regressions = append(res.Regressions, Regression{
				Path: path, Old: fmtNum(oldV), New: fmtNum(newV), Allowed: allowed})
		}
	}
	for _, path := range sortedKeys(newNums) {
		if _, ok := oldNums[path]; !ok {
			res.Regressions = append(res.Regressions, Regression{
				Path: path, Old: "-", New: fmtNum(newNums[path]), Note: "not in old (regenerate the baseline)"})
		}
	}
	for _, path := range sortedKeys(oldStrs) {
		oldV := oldStrs[path]
		newV, ok := newStrs[path]
		switch {
		case !ok:
			res.Regressions = append(res.Regressions, Regression{
				Path: path, Old: oldV, New: "-", Note: "missing from new"})
		case oldV != newV:
			res.Compared++
			res.Regressions = append(res.Regressions, Regression{
				Path: path, Old: oldV, New: newV, Note: "changed"})
		default:
			res.Compared++
		}
	}
	for _, path := range sortedKeys(newStrs) {
		if _, ok := oldStrs[path]; !ok {
			res.Regressions = append(res.Regressions, Regression{
				Path: path, Old: "-", New: newStrs[path], Note: "not in old (regenerate the baseline)"})
		}
	}
	sort.Slice(res.Regressions, func(i, j int) bool { return res.Regressions[i].Path < res.Regressions[j].Path })
	return res, nil
}

// allowance resolves the effective tolerance for one leaf: the last
// matching -tol entry wins, default zero.
func allowance(path, leaf string, oldV float64, tols []Tolerance) float64 {
	out := 0.0
	for _, t := range tols {
		match := false
		if t.Key == "wall" {
			match = wallLeaves[leaf]
		} else {
			match = strings.Contains(leaf, t.Key) || strings.Contains(path, t.Key)
		}
		if match {
			out = t.Abs + t.Frac*abs(oldV)
		}
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Flatten decodes a JSON document into dotted numeric and string leaf
// maps. Arrays of objects are keyed by their "name" (or "model", "id")
// field when those values are unique, by index otherwise, so a benchmark
// list survives reordering.
func Flatten(data []byte) (map[string]float64, map[string]string, error) {
	var v any
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return nil, nil, err
	}
	nums := map[string]float64{}
	strs := map[string]string{}
	flattenInto("", v, nums, strs)
	return nums, strs, nil
}

func flattenInto(path string, v any, nums map[string]float64, strs map[string]string) {
	switch v := v.(type) {
	case map[string]any:
		for _, k := range sortedAnyKeys(v) {
			flattenInto(join(path, k), v[k], nums, strs)
		}
	case []any:
		keys := elementKeys(v)
		for i, e := range v {
			flattenInto(path+"["+keys[i]+"]", e, nums, strs)
		}
	case json.Number:
		f, err := v.Float64()
		if err == nil {
			nums[path] = f
		} else {
			strs[path] = v.String()
		}
	case string:
		strs[path] = v
	case bool:
		strs[path] = strconv.FormatBool(v)
	case nil:
		strs[path] = "null"
	}
}

// elementKeys names each array element: a unique "name"/"model"/"id"
// string field when every element has one, the index otherwise.
func elementKeys(arr []any) []string {
	for _, field := range []string{"name", "model", "id"} {
		keys := make([]string, len(arr))
		seen := map[string]bool{}
		ok := true
		for i, e := range arr {
			obj, isObj := e.(map[string]any)
			if !isObj {
				ok = false
				break
			}
			s, isStr := obj[field].(string)
			if !isStr || seen[s] {
				ok = false
				break
			}
			seen[s] = true
			keys[i] = s
		}
		if ok && len(arr) > 0 {
			return keys
		}
	}
	keys := make([]string, len(arr))
	for i := range arr {
		keys[i] = strconv.Itoa(i)
	}
	return keys
}

func join(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

func leafName(path string) string {
	if i := strings.LastIndex(path, "."); i >= 0 {
		return path[i+1:]
	}
	return path
}

func fmtNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedAnyKeys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
