package refmodel

import (
	"strings"
	"testing"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/tensor"
)

func testCfg(spmBytes int64) config.NPU {
	return config.NPU{
		Name: "ref-test", ArrayRows: 4, ArrayCols: 4, Cores: 1,
		SPMBytes: spmBytes, DRAMBandwidth: 16e9, DRAMLatency: 7,
		FrequencyHz: 1e9, ElemBytes: 4, Batch: 1,
	}
}

func params(d tensor.Dims, tl schedule.Tiling) schedule.TileParams {
	return schedule.TileParams{Dims: d, Tiling: tl, ElemBytes: 4, Layer: 1}
}

// TestLRUSetBasics pins the slow residency set's semantics on a
// hand-computed sequence.
func TestLRUSetBasics(t *testing.T) {
	key := func(i int32) schedule.TileKey { return schedule.TileKey{Row: i} }
	l := newLRUSet(100)

	if l.touch(key(1)) {
		t.Fatal("empty set reported a hit")
	}
	if ev := l.insert(key(1), 40); ev != nil {
		t.Fatalf("insert into empty set evicted %v", ev)
	}
	if ev := l.insert(key(2), 40); ev != nil {
		t.Fatalf("fitting insert evicted %v", ev)
	}
	if !l.touch(key(1)) {
		t.Fatal("resident tile missed")
	}
	// Key 2 is now least recently used; a 40-byte insert must evict it only.
	ev := l.insert(key(3), 40)
	if len(ev) != 1 || ev[0] != key(2) {
		t.Fatalf("evicted %v, want [key 2]", ev)
	}
	if l.used != 80 {
		t.Fatalf("used = %d, want 80", l.used)
	}
	// Oversized inserts drain the set oldest-first.
	ev = l.insert(key(4), 100)
	if len(ev) != 2 || ev[0] != key(1) || ev[1] != key(3) {
		t.Fatalf("evicted %v, want [key 1, key 3]", ev)
	}
	if l.hits != 1 || l.misses != 1 || l.evictions != 3 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/3", l.hits, l.misses, l.evictions)
	}
	l.remove(key(4))
	if l.used != 0 || len(l.order) != 0 {
		t.Fatalf("remove left used=%d len=%d", l.used, len(l.order))
	}
}

// TestHandComputedTinyStream replays one op and checks every counter
// against a by-hand derivation, independent of both implementations.
func TestHandComputedTinyStream(t *testing.T) {
	p := params(tensor.Dims{M: 2, K: 2, N: 2}, schedule.Tiling{Tm: 2, Tk: 2, Tn: 2})
	op := p.DXOp(0, 0, 0, 1) // single-tile dX GEMM: OutFirst and OutLast
	cfg := testCfg(4096)
	r := New(cfg, Options{})
	r.Run([]schedule.Op{op})
	c := r.Counts()

	// Accesses: alloc dX out (no traffic), load dY miss (16 B), load W miss
	// (16 B), drain dX (16 B write). Misses: 2, hits: 0, no evictions.
	if c.Misses != 2 || c.Hits != 0 || c.Evictions != 0 || c.Spills != 0 {
		t.Fatalf("hits/misses/evictions/spills = %d/%d/%d/%d", c.Hits, c.Misses, c.Evictions, c.Spills)
	}
	if c.Traffic.Read[dram.ClassDY] != 16 || c.Traffic.Read[dram.ClassW] != 16 {
		t.Fatalf("reads = %+v", c.Traffic.Read)
	}
	if c.Traffic.Write[dram.ClassDX] != 16 || c.Traffic.Total() != 48 {
		t.Fatalf("writes = %+v total %d", c.Traffic.Write, c.Traffic.Total())
	}
	// 48 bytes at 16 B/cycle = 3 cycles + 3 bursts x 7 latency = 24 mem
	// cycles; compute = 1 fold x tk(2) + (4+4-2) = 8 cycles.
	if c.MemCycles != 24 || c.ComputeCycles != 8 {
		t.Fatalf("mem/comp = %d/%d, want 24/8", c.MemCycles, c.ComputeCycles)
	}
	if c.Cycles != 32 || c.Ops != 1 {
		t.Fatalf("cycles/ops = %d/%d, want 32/1", c.Cycles, c.Ops)
	}
}

// TestAgreesWithEngine sweeps deterministic schedules — all access orders,
// chunked variants, roomy and pressure-tight scratchpads, the dY limit
// study, and multi-schedule kernel boundaries — and demands bit-exact
// agreement with the engine.
func TestAgreesWithEngine(t *testing.T) {
	dims := []tensor.Dims{
		{M: 2, K: 2, N: 2},
		{M: 13, K: 9, N: 7},
		{M: 5, K: 24, N: 3},
		{M: 31, K: 4, N: 17},
		{M: 8, K: 40, N: 40},
	}
	tilings := []schedule.Tiling{
		{Tm: 4, Tk: 4, Tn: 4},
		{Tm: 5, Tk: 3, Tn: 2},
	}
	// 1.5 KiB residency forces evictions and partial-sum spills on the
	// larger layers; 64 KiB keeps everything resident.
	for _, spm := range []int64{3 * 1024, 128 * 1024} {
		cfg := testCfg(spm)
		for _, d := range dims {
			for _, tl := range tilings {
				p := params(d, tl)
				scheds := []schedule.Schedule{
					schedule.BaselineBackward(p),
					schedule.BaselineBackwardOrdered(p, schedule.DXOrderKM, schedule.DWOrderNK),
					core.InterleaveOnly(p),
					core.InterleaveDXMajor(p),
					core.InterleaveDWMajor(p),
					core.InterleaveDXMajorChunked(p, 2),
					core.InterleaveDWMajorChunked(p, 2),
				}
				for _, s := range scheds {
					for _, opts := range []sim.Options{{}, {FreeDYOnDW: true}} {
						got := sim.RunSchedules(cfg, opts, s)
						want := ReplaySchedules(cfg, Options{FreeDYOnDW: opts.FreeDYOnDW}, s)
						if err := Compare(got, want); err != nil {
							t.Fatalf("%v %v spm=%d free=%v: %v", d, s.Name, spm, opts.FreeDYOnDW, err)
						}
					}
				}
				// Kernel boundaries: dX and dW as separate flushed schedules.
				dx := schedule.Schedule{Name: "dx", Ops: schedule.BaselineDX(p)}
				dw := schedule.Schedule{Name: "dw", Ops: schedule.BaselineDW(p)}
				got := sim.RunSchedules(cfg, sim.Options{}, dx, dw)
				want := ReplaySchedules(cfg, Options{}, dx, dw)
				if err := Compare(got, want); err != nil {
					t.Fatalf("%v two-kernel spm=%d: %v", d, spm, err)
				}
			}
		}
	}
}

// TestSpillsExercised proves the agreement sweep actually covers the spill
// path: under the tight scratchpad at least one schedule must spill.
func TestSpillsExercised(t *testing.T) {
	cfg := testCfg(3 * 1024)
	p := params(tensor.Dims{M: 8, K: 40, N: 40}, schedule.Tiling{Tm: 4, Tk: 4, Tn: 4})
	want := ReplaySchedules(cfg, Options{}, core.InterleaveDXMajor(p))
	if want.Spills == 0 {
		t.Fatal("tight configuration spilled nothing; agreement sweep is not covering pressure")
	}
	if want.Traffic.Write[dram.ClassAcc] == 0 || want.Traffic.Read[dram.ClassAcc] == 0 {
		t.Fatalf("spilled partials moved no intermediate traffic: %+v", want.Traffic)
	}
}

// TestCompareReportsEveryDivergence corrupts each comparable field in turn
// and checks Compare names it.
func TestCompareReportsEveryDivergence(t *testing.T) {
	cfg := testCfg(4096)
	p := params(tensor.Dims{M: 4, K: 4, N: 4}, schedule.Tiling{Tm: 2, Tk: 2, Tn: 2})
	s := core.InterleaveDXMajor(p)
	res := sim.RunSchedules(cfg, sim.Options{}, s)
	want := ReplaySchedules(cfg, Options{}, s)
	if err := Compare(res, want); err != nil {
		t.Fatalf("clean comparison failed: %v", err)
	}

	for _, tc := range []struct {
		name    string
		corrupt func(*sim.Result)
	}{
		{"Cycles", func(r *sim.Result) { r.Cycles++ }},
		{"ComputeCycles", func(r *sim.Result) { r.ComputeCycles-- }},
		{"MemCycles", func(r *sim.Result) { r.MemCycles++ }},
		{"Ops", func(r *sim.Result) { r.Ops++ }},
		{"SPM.Hits", func(r *sim.Result) { r.SPM.Hits++ }},
		{"SPM.Misses", func(r *sim.Result) { r.SPM.Misses-- }},
		{"SPM.Evictions", func(r *sim.Result) { r.SPM.Evictions++ }},
		{"Spills", func(r *sim.Result) { r.Spills++ }},
		{"Traffic.Read[dY]", func(r *sim.Result) { r.Traffic.Read[dram.ClassDY]++ }},
		{"Traffic.Write[dW]", func(r *sim.Result) { r.Traffic.Write[dram.ClassDW]-- }},
	} {
		bad := res
		tc.corrupt(&bad)
		err := Compare(bad, want)
		if err == nil {
			t.Fatalf("%s corruption not detected", tc.name)
		}
		if !strings.Contains(err.Error(), tc.name) {
			t.Fatalf("%s corruption reported as %q", tc.name, err)
		}
	}
}
