// Package refmodel is the differential oracle for the cycle simulator: a
// deliberately slow, obviously-correct reference interpreter that replays a
// tile-op stream ([]schedule.Op) against a fully-associative LRU scratchpad
// with exact byte accounting and reports independent traffic, hit/miss,
// eviction, spill and cycle counts.
//
// The oracle re-derives everything observable from the op-stream semantics
// (DESIGN.md §3f): which accesses hit or miss, what traffic each miss and
// writeback generates, which live partial sums spill under pressure, and
// how the two-stage double-buffered pipeline advances. Only the primitive
// hardware cost functions — dram.Channel.TransferCycles and
// systolic.Array.TileCycles — are shared with the engine: they are model
// parameters, not engine logic, and sharing them keeps the comparison
// bit-exact instead of bit-close.
//
// internal/sim is the fast engine; this package is the slow specification.
// Every counter the two produce must agree bit-exactly on every op stream
// (internal/proptest asserts this on hundreds of random cases per run, and
// `validate -refcheck` on every golden workload). The implementations are
// kept structurally different on purpose: the engine threads accounting
// through an incremental step function and an intrusive-list LRU, while the
// oracle lowers each op to an explicit access list and replays it against
// an O(n)-scan residency slice.
package refmodel

import (
	"fmt"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/systolic"
)

// Options mirrors the sim.Options knobs that change simulation results.
// Observability options (tracing) have no counterpart here: the oracle is
// the thing results are checked against, so it carries none.
type Options struct {
	// FreeDYOnDW makes dY reads issued by dW-side operations free, matching
	// the Section 3.3 limit study in sim.Options.
	FreeDYOnDW bool
}

// Counts is the oracle's independent tally of one replay. Field for field
// it mirrors sim.Result (with spm.Stats flattened) so the two can be
// compared exactly; see Compare.
type Counts struct {
	Cycles        int64
	ComputeCycles int64
	MemCycles     int64
	Traffic       dram.Traffic
	Ops           int64
	Hits          int64
	Misses        int64
	Evictions     int64
	Spills        int64
}

// accessKind labels one scratchpad access lowered from a tile op.
type accessKind uint8

const (
	// accAlloc places a partial-sum output tile without fetching it.
	accAlloc accessKind = iota
	// accLoad requires the tile resident, fetching it on a miss.
	accLoad
	// accLoadFree is accLoad with the fetch traffic waived (limit study).
	accLoadFree
	// accDrain writes the finished output tile back and frees it.
	accDrain
)

// access is one scratchpad access: a tile plus what must happen to it.
type access struct {
	kind  accessKind
	tile  schedule.Tile
	class dram.Class // traffic class charged on fetch (loads only)
	live  bool       // allocs only: tile is a live partial after this op
}

// lower translates one tile op into its ordered access list — the
// specification of what Engine.step does, written as data. The order
// matters: it fixes LRU recency and therefore who gets evicted.
func lower(op *schedule.Op, free bool) []access {
	acc := make([]access, 0, 4)
	if op.OutFirst {
		acc = append(acc, access{kind: accAlloc, tile: op.Out, live: !op.OutLast})
	} else {
		// Re-accumulation: the partial must be resident; a miss means it was
		// spilled earlier and is fetched back as intermediate traffic.
		acc = append(acc, access{kind: accLoad, tile: op.Out, class: dram.ClassAcc})
	}
	for _, t := range [2]schedule.Tile{op.A, op.B} {
		k := accLoad
		if free && op.Kind == schedule.KindDW && t.Key.Class == dram.ClassDY {
			k = accLoadFree
		}
		acc = append(acc, access{kind: k, tile: t, class: t.Key.Class})
	}
	if op.OutLast {
		acc = append(acc, access{kind: accDrain, tile: op.Out})
	}
	return acc
}

// Replay is the reference interpreter. Like sim.Engine, scratchpad state
// persists across Run calls; Flush models a kernel boundary.
type Replay struct {
	arr  systolic.Array
	chn  dram.Channel
	spm  *lruSet
	live map[schedule.TileKey]int64
	opts Options

	// Two-stage pipeline recurrence (double buffering, prefetch depth 2).
	memDone     int64
	compDone    int64
	prevCompEnd int64

	c Counts
}

// New builds a reference interpreter for cfg. The residency capacity is the
// streaming half of the scratchpad, exactly as the engine models it.
func New(cfg config.NPU, opts Options) *Replay {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Replay{
		arr: systolic.New(cfg),
		chn: dram.Channel{
			BytesPerCycle: cfg.BytesPerCycle(),
			BurstLatency:  cfg.DRAMLatency,
		},
		spm:  newLRUSet(cfg.SPMBytes / 2),
		live: make(map[schedule.TileKey]int64),
		opts: opts,
	}
}

// Flush empties the scratchpad without touching pipeline time or counters —
// the kernel boundary between schedules.
func (r *Replay) Flush() {
	r.spm.flush()
	clear(r.live)
}

// Counts returns the accumulated tallies of all Run calls.
func (r *Replay) Counts() Counts {
	c := r.c
	c.Cycles = r.compDone
	c.Hits = r.spm.hits
	c.Misses = r.spm.misses
	c.Evictions = r.spm.evictions
	return c
}

// Run replays one op stream, continuing the pipeline from previous calls.
func (r *Replay) Run(ops []schedule.Op) {
	for i := range ops {
		r.step(&ops[i])
	}
}

// step replays a single tile op: lower it to accesses, apply them to the
// residency set while tallying traffic, then advance the pipeline.
func (r *Replay) step(op *schedule.Op) {
	var fetchBytes, writeBytes, spillBytes int64
	var bursts, spillBursts int

	place := func(t schedule.Tile) {
		for _, v := range r.spm.insert(t.Key, t.Bytes) {
			bytes, isLive := r.live[v]
			if !isLive {
				continue // clean tile: dropping it costs nothing
			}
			spillBytes += bytes
			spillBursts++
			r.c.Traffic.AddWrite(dram.ClassAcc, bytes)
			r.c.Spills++
		}
	}

	for _, a := range lower(op, r.opts.FreeDYOnDW) {
		switch a.kind {
		case accAlloc:
			if a.live {
				r.live[a.tile.Key] = a.tile.Bytes
			}
			place(a.tile)
		case accLoad, accLoadFree:
			if r.spm.touch(a.tile.Key) {
				continue
			}
			if a.kind == accLoad {
				fetchBytes += a.tile.Bytes
				bursts++
				r.c.Traffic.AddRead(a.class, a.tile.Bytes)
			}
			place(a.tile)
		case accDrain:
			writeBytes += a.tile.Bytes
			bursts++
			r.c.Traffic.AddWrite(a.tile.Key.Class, a.tile.Bytes)
			r.spm.remove(a.tile.Key)
			delete(r.live, a.tile.Key)
		}
	}

	memCycles := r.chn.TransferCycles(fetchBytes+writeBytes+spillBytes, bursts+spillBursts)
	compCycles := r.arr.TileCycles(op.Tm, op.Tk, op.Tn)

	// The DMA stage may run at most one op ahead of compute.
	memEnd := max(r.memDone, r.prevCompEnd) + memCycles
	compEnd := max(r.compDone, memEnd) + compCycles
	r.memDone = memEnd
	r.prevCompEnd = r.compDone
	r.compDone = compEnd

	r.c.ComputeCycles += compCycles
	r.c.MemCycles += memCycles
	r.c.Ops++
}

// ReplaySchedules replays the given schedules in order on a fresh
// interpreter, flushing the scratchpad at each schedule boundary — the
// oracle twin of sim.RunSchedules.
func ReplaySchedules(cfg config.NPU, opts Options, scheds ...schedule.Schedule) Counts {
	r := New(cfg, opts)
	for i, s := range scheds {
		if i > 0 {
			r.Flush()
		}
		r.Run(s.Ops)
	}
	return r.Counts()
}

// lruSet is the oracle's fully-associative byte-capacity LRU residency set:
// a plain slice ordered most-recently-used first, manipulated with O(n)
// scans. Slow and obviously correct — the point of this package.
type lruSet struct {
	capacity int64
	used     int64
	order    []lruEntry // index 0 is most recently used

	hits, misses, evictions int64
}

type lruEntry struct {
	key   schedule.TileKey
	bytes int64
}

func newLRUSet(capacity int64) *lruSet {
	if capacity <= 0 {
		panic(fmt.Sprintf("refmodel: invalid capacity %d", capacity))
	}
	return &lruSet{capacity: capacity}
}

// find returns the position of key in the recency order, or -1.
func (l *lruSet) find(key schedule.TileKey) int {
	for i := range l.order {
		if l.order[i].key == key {
			return i
		}
	}
	return -1
}

// front moves the entry at position i to the most-recently-used slot.
func (l *lruSet) front(i int) {
	e := l.order[i]
	copy(l.order[1:i+1], l.order[:i])
	l.order[0] = e
}

// touch marks key most recently used if resident, counting a hit or miss.
func (l *lruSet) touch(key schedule.TileKey) bool {
	i := l.find(key)
	if i < 0 {
		l.misses++
		return false
	}
	l.hits++
	l.front(i)
	return true
}

// insert places key, evicting from the least-recently-used end until it
// fits, and returns the evicted keys oldest-first. Inserting a resident key
// only refreshes recency. Neither a hit nor a miss is counted: residency
// checks happen in touch, placement here.
func (l *lruSet) insert(key schedule.TileKey, bytes int64) []schedule.TileKey {
	if bytes <= 0 {
		panic(fmt.Sprintf("refmodel: invalid tile size %d", bytes))
	}
	if bytes > l.capacity {
		panic(fmt.Sprintf("refmodel: tile of %d bytes exceeds capacity %d", bytes, l.capacity))
	}
	if i := l.find(key); i >= 0 {
		l.front(i)
		return nil
	}
	var evicted []schedule.TileKey
	for l.used+bytes > l.capacity && len(l.order) > 0 {
		last := l.order[len(l.order)-1]
		l.order = l.order[:len(l.order)-1]
		l.used -= last.bytes
		l.evictions++
		evicted = append(evicted, last.key)
	}
	l.order = append([]lruEntry{{key: key, bytes: bytes}}, l.order...)
	l.used += bytes
	return evicted
}

// remove drops key from the set if resident.
func (l *lruSet) remove(key schedule.TileKey) {
	i := l.find(key)
	if i < 0 {
		return
	}
	l.used -= l.order[i].bytes
	l.order = append(l.order[:i], l.order[i+1:]...)
}

// flush empties the set, preserving counters.
func (l *lruSet) flush() {
	l.order = nil
	l.used = 0
}
