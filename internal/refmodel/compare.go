package refmodel

import (
	"fmt"
	"strings"

	"igosim/internal/dram"
	"igosim/internal/sim"
)

// Compare checks a simulator result against the oracle's counts and returns
// a descriptive error listing every field that disagrees, or nil when the
// two are bit-identical. The comparison is exact: the engine and the oracle
// consume the same hardware cost primitives, so even cycle counts must
// match to the last digit.
func Compare(got sim.Result, want Counts) error {
	var diffs []string
	add := func(field string, g, w int64) {
		if g != w {
			diffs = append(diffs, fmt.Sprintf("%s: sim %d, oracle %d", field, g, w))
		}
	}
	add("Cycles", got.Cycles, want.Cycles)
	add("ComputeCycles", got.ComputeCycles, want.ComputeCycles)
	add("MemCycles", got.MemCycles, want.MemCycles)
	add("Ops", got.Ops, want.Ops)
	add("SPM.Hits", got.SPM.Hits, want.Hits)
	add("SPM.Misses", got.SPM.Misses, want.Misses)
	add("SPM.Evictions", got.SPM.Evictions, want.Evictions)
	add("Spills", got.Spills, want.Spills)
	for _, c := range dram.Classes() {
		add(fmt.Sprintf("Traffic.Read[%v]", c), got.Traffic.Read[c], want.Traffic.Read[c])
		add(fmt.Sprintf("Traffic.Write[%v]", c), got.Traffic.Write[c], want.Traffic.Write[c])
	}
	if len(diffs) == 0 {
		return nil
	}
	return fmt.Errorf("refmodel: simulator disagrees with oracle on %d field(s): %s",
		len(diffs), strings.Join(diffs, "; "))
}
